package realtime

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"argus/internal/obs"

	"argus/internal/transport/transporttest"
)

// TestStreamEndToEnd serves a hub through the obs mux and tails it with the
// client: the attach greeting (hello + snapshot), a live span and a live
// data frame all arrive over real HTTP.
func TestStreamEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	hub := New(noTicker(Config{Registry: reg, Tracer: tr}))
	defer hub.Close()
	srv := httptest.NewServer(obs.NewMux(reg, tr, obs.WithStream(hub.StreamHandler())))
	defer srv.Close()

	tr.Record(obs.Span{Session: 7, Name: "discover", Phase: "total", Level: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	types := map[string]int{}
	var spanSession uint64
	err := Tail(ctx, srv.URL+"/events", func(ev Event) error {
		if ev.Type == EventHello {
			// Now that the subscription exists, exercise the live path (the
			// span above arrives via replay; this frame arrives live).
			if err := hub.PublishData("wave", map[string]int{"wave": 1}); err != nil {
				return err
			}
		}
		types[ev.Type]++
		if ev.Type == EventSpan {
			spanSession = ev.Span.Session
		}
		if types[EventHello] > 0 && types[EventSnapshot] > 0 &&
			types[EventSpan] > 0 && types["wave"] > 0 {
			return Stop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Tail: %v", err)
	}
	if spanSession != 7 {
		t.Fatalf("span session = %d, want 7", spanSession)
	}
}

// TestStreamMaxClientsHTTP: the subscriber bound surfaces as 503 on the wire.
func TestStreamMaxClientsHTTP(t *testing.T) {
	hub := New(noTicker(Config{MaxClients: 1}))
	defer hub.Close()
	srv := httptest.NewServer(hub.StreamHandler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attached := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Tail(ctx, srv.URL, func(ev Event) error {
			if ev.Type == EventHello {
				close(attached)
			}
			return nil
		})
	}()
	<-attached

	err := Tail(context.Background(), srv.URL, func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("second tail err = %v, want 503", err)
	}

	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("first tail err = %v, want context.Canceled", err)
	}
	// The slot frees once the handler notices the disconnect.
	transporttest.WaitUntil(t, 5*time.Second, func() bool {
		return hub.Subscribers() == 0
	}, "subscriber slot release")
}

// TestStreamSSE: Accept: text/event-stream selects the SSE framing.
func TestStreamSSE(t *testing.T) {
	hub := New(noTicker(Config{}))
	srv := httptest.NewServer(hub.StreamHandler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() || sc.Text() != "event: hello" {
		t.Fatalf("first SSE line = %q", sc.Text())
	}
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), `data: {"type":"hello"`) {
		t.Fatalf("second SSE line = %q", sc.Text())
	}
	hub.Close() // ends the stream; the deferred body close unblocks the server
}
