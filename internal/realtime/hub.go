// Package realtime turns the pull-only obs plane into a push plane: a
// bounded-fanout event hub that streams periodic metric-snapshot frames and
// live span/operational events to subscribed clients.
//
// The hub's contract (DESIGN.md §11) is that observation can never stall the
// fleet:
//
//   - Hard subscriber bound. Subscribe fails with ErrMaxClients past
//     Config.MaxClients; the HTTP face turns that into a 503.
//   - Per-subscriber ring buffers. Each subscriber owns a bounded queue;
//     when a slow consumer's queue is full the oldest frame is evicted and
//     counted (argus_realtime_subscriber_drops_total by evicted kind) —
//     never blocked on, never silent. A fast consumer loses nothing.
//   - Non-blocking publish. Publishing touches per-subscriber mutexes only
//     for an append; no channel sends, no writer goroutines to outrun.
//
// Span events additionally land in a small replay ring, delivered to new
// subscribers at attach time so a client that connects after a burst (the CI
// smoke, a human mid-run) still sees recent protocol activity.
package realtime

import (
	"encoding/json"
	"errors"
	"sync"
	"time"

	"argus/internal/obs"
)

// Event frame types carried on the stream. Producers may publish additional
// free-form kinds via PublishData (the load harness emits "wave", "churn" and
// "gates" frames); consumers must ignore kinds they do not know.
const (
	EventHello    = "hello"    // first frame of every subscription
	EventSnapshot = "snapshot" // full registry snapshot
	EventSpan     = "span"     // one finished discovery-phase span
)

// Event is one frame on the ops stream. Seq is assigned in global publish
// order; frames replayed to a late subscriber keep their original Seq, so a
// consumer can deduplicate across reconnects. At is time since the hub
// started (monotonic).
type Event struct {
	Type string        `json:"type"`
	Seq  uint64        `json:"seq"`
	At   time.Duration `json:"at_ns"`

	Snapshot *obs.Snapshot   `json:"snapshot,omitempty"`
	Span     *obs.Span       `json:"span,omitempty"`
	Data     json.RawMessage `json:"data,omitempty"`
}

// Errors returned by Subscribe.
var (
	ErrMaxClients = errors.New("realtime: subscriber limit reached")
	ErrClosed     = errors.New("realtime: hub closed")
)

// Config configures a Hub. The zero value of each field selects a default.
type Config struct {
	// Registry is snapshotted for periodic frames and receives the hub's own
	// metrics. May be nil (frames carry empty snapshots, self-metrics off).
	Registry *obs.Registry
	// Tracer, when set, has the hub installed as its span sink: every
	// recorded span becomes a live EventSpan frame.
	Tracer *obs.Tracer
	// SnapshotEvery is the periodic snapshot-frame interval. 0 means
	// DefaultSnapshotEvery; negative disables the ticker (frames then only
	// appear at attach time or via PublishSnapshot).
	SnapshotEvery time.Duration
	// MaxClients bounds concurrent subscribers (default DefaultMaxClients).
	MaxClients int
	// RingSize bounds each subscriber's queue (default DefaultRingSize).
	RingSize int
	// ReplaySpans bounds the span replay ring delivered to new subscribers
	// (default DefaultReplaySpans).
	ReplaySpans int
}

// Defaults for Config fields left zero.
const (
	DefaultSnapshotEvery = time.Second
	DefaultMaxClients    = 16
	DefaultRingSize      = 256
	DefaultReplaySpans   = 32
)

// Hub is the bounded-fanout event hub. Create with New, stop with Close.
type Hub struct {
	cfg   Config
	start time.Time

	subsGauge *obs.Gauge

	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	seq    uint64
	replay []Event
	closed bool

	stop chan struct{}
	done chan struct{}
}

// New creates a hub, installs it as the tracer's span sink, and starts the
// periodic snapshot ticker (unless disabled).
func New(cfg Config) *Hub {
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = DefaultMaxClients
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.ReplaySpans <= 0 {
		cfg.ReplaySpans = DefaultReplaySpans
	}
	h := &Hub{
		cfg:   cfg,
		start: time.Now(),
		subs:  make(map[*Subscriber]struct{}),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	h.subsGauge = cfg.Registry.Gauge(obs.MRealtimeSubscribers,
		"Live event-stream subscribers.")
	cfg.Tracer.SetSink(h.publishSpan)
	if cfg.SnapshotEvery > 0 {
		go h.loop()
	} else {
		close(h.done)
	}
	return h
}

func (h *Hub) loop() {
	defer close(h.done)
	t := time.NewTicker(h.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.PublishSnapshot()
		}
	}
}

func (h *Hub) since() time.Duration { return time.Since(h.start) }

func (h *Hub) countEvent(kind string) {
	h.cfg.Registry.Counter(obs.MRealtimeEvents,
		"Events published to the realtime hub.", obs.L("kind", kind)).Inc()
}

func (h *Hub) countDrop(kind string) {
	h.cfg.Registry.Counter(obs.MRealtimeSubscriberDrop,
		"Events evicted from a slow subscriber's ring, by evicted kind.",
		obs.L("kind", kind)).Inc()
}

// publish assigns a sequence number, records span frames in the replay ring,
// and fans the event out to every subscriber without ever blocking on one.
func (h *Hub) publish(typ string, fill func(*Event)) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.seq++
	ev := Event{Type: typ, Seq: h.seq, At: h.since()}
	if fill != nil {
		fill(&ev)
	}
	if typ == EventSpan {
		h.replay = append(h.replay, ev)
		if len(h.replay) > h.cfg.ReplaySpans {
			h.replay = h.replay[1:]
		}
	}
	subs := make([]*Subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()

	h.countEvent(typ)
	for _, s := range subs {
		if evicted, ok := s.offer(ev); ok && evicted != "" {
			h.countDrop(evicted)
		}
	}
}

// PublishSnapshot publishes one full-registry snapshot frame now, regardless
// of the ticker — used for per-wave frames in the load harness and the final
// flush on shutdown.
func (h *Hub) PublishSnapshot() {
	snap := h.cfg.Registry.Snapshot()
	h.publish(EventSnapshot, func(ev *Event) { ev.Snapshot = snap })
}

func (h *Hub) publishSpan(s obs.Span) {
	h.publish(EventSpan, func(ev *Event) { sp := s; ev.Span = &sp })
}

// PublishData publishes a free-form event of the given kind with v as its
// JSON payload. Returns the marshal error, if any (nothing is published then).
func (h *Hub) PublishData(kind string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	h.publish(kind, func(ev *Event) { ev.Data = raw })
	return nil
}

// Subscribe registers a new subscriber and pre-loads its queue with a hello
// frame, a fresh snapshot frame and the span replay ring. Fails with
// ErrMaxClients at the bound and ErrClosed after Close.
func (h *Hub) Subscribe() (*Subscriber, error) {
	snap := h.cfg.Registry.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if len(h.subs) >= h.cfg.MaxClients {
		return nil, ErrMaxClients
	}
	s := newSubscriber(h, h.cfg.RingSize)
	hello, _ := json.Marshal(map[string]any{
		"max_clients":  h.cfg.MaxClients,
		"ring_size":    h.cfg.RingSize,
		"replay_spans": h.cfg.ReplaySpans,
		"snapshot_ms":  h.cfg.SnapshotEvery.Milliseconds(),
	})
	h.seq++
	s.offer(Event{Type: EventHello, Seq: h.seq, At: h.since(), Data: hello})
	h.seq++
	s.offer(Event{Type: EventSnapshot, Seq: h.seq, At: h.since(), Snapshot: snap})
	for _, ev := range h.replay {
		s.offer(ev)
	}
	h.subs[s] = struct{}{}
	h.subsGauge.Set(int64(len(h.subs)))
	return s, nil
}

func (h *Hub) remove(s *Subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.subsGauge.Set(int64(len(h.subs)))
	h.mu.Unlock()
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Close stops the ticker, uninstalls the span sink and closes every
// subscriber. Subscribers drain whatever their queues still hold, then their
// Next returns false — close-and-drain, not close-and-discard.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*Subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[*Subscriber]struct{})
	h.mu.Unlock()

	h.cfg.Tracer.SetSink(nil)
	close(h.stop)
	<-h.done
	for _, s := range subs {
		s.shutdown()
	}
	h.subsGauge.Set(0)
}

// Subscriber is one bounded event queue fed by the hub. Not safe for
// concurrent Next calls from multiple goroutines (one reader per stream).
type Subscriber struct {
	hub *Hub

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Event
	max     int
	dropped uint64
	closed  bool
}

func newSubscriber(h *Hub, ringSize int) *Subscriber {
	s := &Subscriber{hub: h, max: ringSize}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// offer appends one event, evicting the oldest when the ring is full.
// Returns the evicted event's kind ("" if nothing was evicted) and whether
// the subscriber was still open.
func (s *Subscriber) offer(ev Event) (evicted string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", false
	}
	if len(s.queue) >= s.max {
		evicted = s.queue[0].Type
		s.queue = s.queue[1:]
		s.dropped++
	}
	s.queue = append(s.queue, ev)
	s.cond.Signal()
	return evicted, true
}

// Next blocks until an event is available or the subscriber is closed with
// an empty queue. After Close, remaining queued events are still delivered.
func (s *Subscriber) Next() (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return Event{}, false
	}
	ev := s.queue[0]
	s.queue = s.queue[1:]
	return ev, true
}

// Dropped reports how many events were evicted from this subscriber's ring.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// shutdown marks the subscriber closed (wakes a blocked Next) without
// touching the hub's subscriber map — used by Hub.Close.
func (s *Subscriber) shutdown() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Close detaches the subscriber from the hub. Idempotent.
func (s *Subscriber) Close() {
	s.shutdown()
	s.hub.remove(s)
}
