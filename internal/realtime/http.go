package realtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// StreamHandler serves the hub's event stream over HTTP, designed to be
// mounted at /events via obs.WithStream. Frames are newline-delimited JSON
// (application/x-ndjson) by default; server-sent events when the request has
// `?format=sse` or an Accept header containing text/event-stream. Past the
// subscriber bound the response is 503 — the caller is shed, the fleet is
// not slowed.
func (h *Hub) StreamHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sub, err := h.Subscribe()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		defer sub.Close()
		// Unblock Next when the client goes away (or the handler returns).
		go func() {
			<-r.Context().Done()
			sub.Close()
		}()

		sse := r.URL.Query().Get("format") == "sse" ||
			strings.Contains(r.Header.Get("Accept"), "text/event-stream")
		if sse {
			w.Header().Set("Content-Type", "text/event-stream")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for {
			ev, ok := sub.Next()
			if !ok {
				return
			}
			if sse {
				b, err := json.Marshal(ev)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b); err != nil {
					return
				}
			} else if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
}

// Stop is the sentinel a Tail callback returns to end the tail cleanly.
var Stop = errors.New("realtime: stop tailing")
