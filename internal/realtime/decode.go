package realtime

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrameBytes bounds one NDJSON frame on the wire. The hub's own frames
// are far smaller (a full registry snapshot of the standard soak is tens of
// kilobytes), so anything larger is a corrupt or hostile stream, and the
// decoder refuses it instead of buffering without bound.
const MaxFrameBytes = 1 << 20

// DecodeStream reads an NDJSON event stream from r and invokes fn for every
// decoded frame. It is the decoding core of Tail, factored out so it can be
// driven (and fuzzed) without an HTTP server.
//
// Contract:
//   - a cleanly ended stream returns nil;
//   - a torn final frame (the producer died mid-write, no newline follows)
//     also returns nil — tails end by disconnection, not by epilogue;
//   - a malformed frame with more stream after it returns an error: that is
//     corruption, not truncation;
//   - a frame larger than MaxFrameBytes returns an error without buffering
//     the rest of it;
//   - fn returning Stop ends the stream with nil; any other error aborts
//     with that error.
//
// Blank lines between frames are tolerated (NDJSON keep-alives).
func DecodeStream(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxFrameBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Distinguish a torn tail from interior corruption: if nothing
			// follows this line, the producer was cut off mid-frame.
			if !sc.Scan() {
				return nil
			}
			return fmt.Errorf("realtime: malformed frame: %w", err)
		}
		if err := fn(ev); err != nil {
			if errors.Is(err, Stop) {
				return nil
			}
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("realtime: frame exceeds %d bytes: %w", MaxFrameBytes, err)
		}
		return err
	}
	return nil
}
