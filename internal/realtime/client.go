package realtime

import (
	"context"
	"fmt"
	"io"
	"net/http"
)

// Tail connects to an /events endpoint (NDJSON form) and invokes fn for
// every received frame. It returns nil when the stream ends or fn returns
// Stop, ctx.Err() when the context is canceled, fn's error when it aborts,
// and a descriptive error on a non-200 response (a full hub answers 503).
func Tail(ctx context.Context, url string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("realtime: %s: %s", resp.Status, string(body))
	}
	if err := DecodeStream(resp.Body, fn); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}
