package realtime

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"argus/internal/obs"
)

// noTicker builds a hub with the periodic snapshot loop disabled so tests
// control exactly which events exist.
func noTicker(cfg Config) Config {
	cfg.SnapshotEvery = -1
	return cfg
}

// TestFanout64Subscribers is the acceptance-criteria fanout test: 64 live
// subscribers, half reading at full speed and half stalled. Publishing must
// never block; fast consumers must receive every frame in order with zero
// drops; slow consumers must be shed down to their ring size with every
// eviction counted.
func TestFanout64Subscribers(t *testing.T) {
	const (
		nFast    = 32
		nSlow    = 32
		nEvents  = 200
		ringSize = 8
		preload  = 2 // hello + initial snapshot
	)
	reg := obs.NewRegistry()
	hub := New(noTicker(Config{Registry: reg, MaxClients: nFast + nSlow, RingSize: ringSize}))

	var fast [nFast]*Subscriber
	var slow [nSlow]*Subscriber
	var got [nFast][]Event
	var ticks [nFast]atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < nFast; i++ {
		sub, err := hub.Subscribe()
		if err != nil {
			t.Fatal(err)
		}
		fast[i] = sub
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				ev, ok := sub.Next()
				if !ok {
					return
				}
				got[i] = append(got[i], ev)
				if ev.Type == "tick" {
					ticks[i].Add(1)
				}
			}
		}(i)
	}
	for i := 0; i < nSlow; i++ {
		sub, err := hub.Subscribe()
		if err != nil {
			t.Fatal(err)
		}
		slow[i] = sub // never read until after the storm
	}
	if n := hub.Subscribers(); n != nFast+nSlow {
		t.Fatalf("subscribers = %d, want %d", n, nFast+nSlow)
	}

	// "Fast" means the consumer keeps up with the publish rate: the test
	// paces each publish on all fast readers having consumed the previous
	// one, so their lag stays under the ring bound by construction. The
	// slow readers never read at all.
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < nEvents; i++ {
		if err := hub.PublishData("tick", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < nFast; j++ {
			for ticks[j].Load() < uint64(i+1) {
				if time.Now().After(deadline) {
					t.Fatalf("fast reader %d stuck at %d/%d", j, ticks[j].Load(), i+1)
				}
				runtime.Gosched()
			}
		}
	}
	hub.Close() // close-and-drain: fast readers finish their queues
	wg.Wait()

	for i := 0; i < nFast; i++ {
		if d := fast[i].Dropped(); d != 0 {
			t.Fatalf("fast subscriber %d dropped %d events", i, d)
		}
		evs := got[i]
		if len(evs) != preload+nEvents {
			t.Fatalf("fast subscriber %d received %d events, want %d", i, len(evs), preload+nEvents)
		}
		if evs[0].Type != EventHello || evs[1].Type != EventSnapshot {
			t.Fatalf("fast subscriber %d greeting = %s,%s", i, evs[0].Type, evs[1].Type)
		}
		for j := 1; j < len(evs); j++ {
			if evs[j].Seq <= evs[j-1].Seq {
				t.Fatalf("fast subscriber %d: seq not increasing at %d (%d then %d)",
					i, j, evs[j-1].Seq, evs[j].Seq)
			}
		}
	}

	var totalDropped uint64
	for i := 0; i < nSlow; i++ {
		var drained []Event
		for {
			ev, ok := slow[i].Next()
			if !ok {
				break
			}
			drained = append(drained, ev)
		}
		if len(drained) != ringSize {
			t.Fatalf("slow subscriber %d drained %d events, want ring size %d", i, len(drained), ringSize)
		}
		// The survivors are the newest frames, still in order.
		if last := drained[len(drained)-1]; last.Type != "tick" {
			t.Fatalf("slow subscriber %d newest frame = %s", i, last.Type)
		}
		want := uint64(preload + nEvents - ringSize)
		if d := slow[i].Dropped(); d != want {
			t.Fatalf("slow subscriber %d dropped %d, want %d", i, d, want)
		}
		totalDropped += slow[i].Dropped()
	}

	snap := reg.Snapshot()
	var counted int64
	for _, m := range snap.Metrics {
		if m.Name == obs.MRealtimeSubscriberDrop {
			counted += int64(m.Value)
		}
	}
	if counted != int64(totalDropped) {
		t.Fatalf("drop counter = %d, want %d", counted, totalDropped)
	}
	if m := snap.Get(obs.MRealtimeEvents, obs.L("kind", "tick")); m == nil || m.Value != nEvents {
		t.Fatalf("events counter = %+v, want %d", m, nEvents)
	}
	if m := snap.Get(obs.MRealtimeSubscribers); m == nil || m.Value != 0 {
		t.Fatalf("subscribers gauge after close = %+v, want 0", m)
	}
}

func TestMaxClients(t *testing.T) {
	hub := New(noTicker(Config{MaxClients: 2}))
	defer hub.Close()
	a, err := hub.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Subscribe(); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Subscribe(); err != ErrMaxClients {
		t.Fatalf("third subscribe err = %v, want ErrMaxClients", err)
	}
	a.Close()
	if _, err := hub.Subscribe(); err != nil {
		t.Fatalf("subscribe after detach: %v", err)
	}
}

func TestSubscribeAfterClose(t *testing.T) {
	hub := New(noTicker(Config{}))
	hub.Close()
	if _, err := hub.Subscribe(); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	hub.Close() // idempotent
}

// TestSpanReplay: spans recorded before a subscriber attaches are replayed
// to it, so a late client still sees recent protocol activity.
func TestSpanReplay(t *testing.T) {
	tr := obs.NewTracer()
	hub := New(noTicker(Config{Tracer: tr, ReplaySpans: 4}))
	defer hub.Close()

	for i := 0; i < 6; i++ {
		tr.Record(obs.Span{Session: uint64(i), Name: "discover", Phase: "total"})
	}
	sub, err := hub.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	var spans []obs.Span
	for i := 0; i < 2+4; i++ { // hello, snapshot, then the replay ring
		ev, ok := sub.Next()
		if !ok {
			t.Fatal("stream ended early")
		}
		if ev.Type == EventSpan {
			spans = append(spans, *ev.Span)
		}
	}
	if len(spans) != 4 {
		t.Fatalf("replayed %d spans, want 4 (ring bound)", len(spans))
	}
	// The ring keeps the newest spans, in record order.
	for i, s := range spans {
		if want := uint64(2 + i); s.Session != want {
			t.Fatalf("replay[%d].Session = %d, want %d", i, s.Session, want)
		}
	}

	// A live span arrives as a live frame too.
	tr.Record(obs.Span{Session: 99, Name: "discover", Phase: "total"})
	ev, ok := sub.Next()
	if !ok || ev.Type != EventSpan || ev.Span.Session != 99 {
		t.Fatalf("live span frame = %+v ok=%v", ev, ok)
	}
}

// TestSnapshotTicker: the periodic loop publishes snapshot frames without
// any explicit PublishSnapshot call.
func TestSnapshotTicker(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("argus_test_total", "").Add(5)
	hub := New(Config{Registry: reg, SnapshotEvery: 2 * time.Millisecond})
	defer hub.Close()
	sub, err := hub.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for seen < 3 { // initial frame + at least two ticks
		ev, ok := sub.Next()
		if !ok {
			t.Fatal("stream ended early")
		}
		if ev.Type == EventSnapshot {
			if ev.Snapshot == nil || ev.Snapshot.Get("argus_test_total") == nil {
				t.Fatalf("snapshot frame missing registry content: %+v", ev)
			}
			seen++
		}
	}
}

// TestCloseUninstallsSink: spans recorded after Close must not panic or
// publish.
func TestCloseUninstallsSink(t *testing.T) {
	tr := obs.NewTracer()
	hub := New(noTicker(Config{Tracer: tr}))
	hub.Close()
	tr.Record(obs.Span{Session: 1}) // would deadlock/panic if the sink survived
	if tr.Len() != 1 {
		t.Fatal("tracer itself must keep recording")
	}
}
