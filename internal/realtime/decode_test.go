package realtime

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDecodeStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	want := []Event{
		{Type: EventHello, Seq: 1},
		{Type: EventSnapshot, Seq: 2},
		{Type: "wave", Seq: 3, Data: json.RawMessage(`{"index":0}`)},
	}
	for _, ev := range want {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	var got []Event
	if err := DecodeStream(&buf, func(ev Event) error { got = append(got, ev); return nil }); err != nil {
		t.Fatalf("DecodeStream: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].Seq != want[i].Seq {
			t.Fatalf("frame %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDecodeStreamTornTailTolerated(t *testing.T) {
	in := `{"type":"hello","seq":1}` + "\n" + `{"type":"snapsh`
	n := 0
	if err := DecodeStream(strings.NewReader(in), func(Event) error { n++; return nil }); err != nil {
		t.Fatalf("torn final frame must end the tail cleanly, got %v", err)
	}
	if n != 1 {
		t.Fatalf("decoded %d frames before the tear, want 1", n)
	}
}

func TestDecodeStreamInteriorCorruptionErrors(t *testing.T) {
	in := "not json at all\n" + `{"type":"hello","seq":1}` + "\n"
	err := DecodeStream(strings.NewReader(in), func(Event) error { return nil })
	if err == nil {
		t.Fatal("malformed frame followed by more stream must error")
	}
	if !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("error %v does not identify the malformed frame", err)
	}
}

func TestDecodeStreamBlankLinesTolerated(t *testing.T) {
	in := "\n\n" + `{"type":"hello","seq":1}` + "\n\n\n" + `{"type":"span","seq":2}` + "\n"
	n := 0
	if err := DecodeStream(strings.NewReader(in), func(Event) error { n++; return nil }); err != nil {
		t.Fatalf("DecodeStream: %v", err)
	}
	if n != 2 {
		t.Fatalf("decoded %d frames, want 2", n)
	}
}

func TestDecodeStreamOversizeFrameRefused(t *testing.T) {
	in := `{"type":"hello","data":"` + strings.Repeat("x", MaxFrameBytes) + `"}` + "\n"
	err := DecodeStream(strings.NewReader(in), func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversize frame must be refused with a size error, got %v", err)
	}
}

func TestDecodeStreamStopSentinel(t *testing.T) {
	in := `{"type":"hello","seq":1}` + "\n" + `{"type":"span","seq":2}` + "\n"
	n := 0
	err := DecodeStream(strings.NewReader(in), func(Event) error {
		n++
		return Stop
	})
	if err != nil {
		t.Fatalf("Stop must end the stream cleanly, got %v", err)
	}
	if n != 1 {
		t.Fatalf("callback ran %d times after Stop, want 1", n)
	}
}

func TestDecodeStreamCallbackErrorPropagates(t *testing.T) {
	in := `{"type":"hello","seq":1}` + "\n"
	want := "boom"
	err := DecodeStream(strings.NewReader(in), func(Event) error {
		return &json.UnsupportedValueError{Str: want}
	})
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("callback error must propagate, got %v", err)
	}
}

// FuzzTailDecode drives the NDJSON decoder with arbitrary bytes. The decoder
// must never panic, must be deterministic, and the Stop sentinel must always
// end a stream that yielded at least one frame cleanly — regardless of what
// garbage follows.
func FuzzTailDecode(f *testing.F) {
	f.Add([]byte(`{"type":"hello","seq":1}` + "\n" + `{"type":"snapshot","seq":2,"snapshot":{"metrics":[]}}` + "\n"))
	f.Add([]byte(`{"type":"span","seq":9,"at_ns":125000,"span":null}` + "\n"))
	f.Add([]byte(`{"type":"wave","seq":3,"data":{"index":0,"armed":144}}` + "\n" + `{"type":"snapsh`))
	f.Add([]byte("\n\n" + `{"type":"hello","seq":1}` + "\n\n"))
	f.Add([]byte(`{"seq":18446744073709551615,"at_ns":-1}` + "\n"))
	f.Add([]byte("not json\n{\"type\":\"hello\"}\n"))
	f.Add([]byte(`[1,2,3]` + "\n"))
	f.Add([]byte{0xff, 0xfe, '\n', '{', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		count := func() (int, error) {
			n := 0
			err := DecodeStream(bytes.NewReader(data), func(Event) error { n++; return nil })
			return n, err
		}
		n1, err1 := count()
		n2, err2 := count()
		if n1 != n2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic decode: (%d, %v) vs (%d, %v)", n1, err1, n2, err2)
		}
		if n1 > 0 {
			if err := DecodeStream(bytes.NewReader(data), func(Event) error { return Stop }); err != nil {
				t.Fatalf("Stop after first frame must end cleanly, got %v", err)
			}
		}
	})
}
