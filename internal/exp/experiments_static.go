package exp

import (
	"fmt"
	"time"

	"argus/internal/abe"
	"argus/internal/backend"
	"argus/internal/netsim"
	"argus/internal/pbc"
	"argus/internal/scale"
	"argus/internal/suite"
	"argus/internal/wire"
)

func init() {
	register("table1", runTable1)
	register("msgsize", runMsgSize)
	register("fig6a", runFig6a)
	register("fig6b", runFig6b)
	register("fig6c", runFig6c)
	register("fig6d", runFig6d)
}

// runTable1 regenerates Table I (updating overhead comparison) across the
// paper's N range, and prints the headline advantages.
func runTable1(quick bool) (*Result, error) {
	res := &Result{
		ID:      "table1",
		Title:   "Updating overhead: notifications per churn operation",
		Paper:   "add subject: N / 1 / 1; remove subject: N / ξoN+ξs(α−1) / N (Table I)",
		Columns: []string{"N", "alpha", "scheme", "add subject", "rmv subject"},
	}
	cases := []scale.Params{
		{N: 100, Alpha: 100, Beta: 50, Gamma: 10, XiO: 1.5, XiS: 1.5},
		{N: 500, Alpha: 1000, Beta: 100, Gamma: 10, XiO: 1.5, XiS: 1.5},
		{N: 1000, Alpha: 8000, Beta: 100, Gamma: 10, XiO: 1.2, XiS: 1.1},
	}
	if quick {
		cases = cases[2:]
	}
	for _, p := range cases {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		for _, row := range scale.Table1(p) {
			res.AddRow(p.N, p.Alpha, string(row.Scheme), row.AddSubject, row.RemoveSubject)
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"N=%d: Argus vs ID-ACL add-subject advantage %.0fx; vs ABE remove-subject advantage %.1fx",
			p.N, scale.AddSubjectAdvantage(p), scale.RemoveSubjectAdvantage(p)))
	}
	return res, nil
}

// runMsgSize regenerates the §IX-A message-overhead accounting by capturing
// a real Level 1 and Level 2 discovery on the simulator.
func runMsgSize(bool) (*Result, error) {
	res := &Result{
		ID:      "msgsize",
		Title:   "Message overhead at 128-bit strength",
		Paper:   "L1: QUE1 28 + RES1 200 ≈ 228 B; L2/3: 28 + 772 + 1008 + 280 = 2088 B (§IX-A)",
		Columns: []string{"level", "message", "measured B", "paper B"},
	}
	capture := func(level backend.Level) (map[wire.MsgType]int, error) {
		d, err := Deploy(DeployConfig{Levels: uniformLevels(level, 1), Fellow: true})
		if err != nil {
			return nil, err
		}
		sizes := make(map[wire.MsgType]int)
		d.Net.Snoop(func(_, _ netsim.NodeID, p []byte) {
			if m, err := wire.Decode(p); err == nil {
				sizes[m.Type()] = len(p)
			}
		})
		if _, err := d.Run(1); err != nil {
			return nil, err
		}
		return sizes, nil
	}

	l1, err := capture(backend.L1)
	if err != nil {
		return nil, err
	}
	res.AddRow("L1", "QUE1", l1[wire.TQUE1], 28)
	res.AddRow("L1", "RES1", l1[wire.TRES1], 200)
	res.AddRow("L1", "total", l1[wire.TQUE1]+l1[wire.TRES1], 228)

	l2, err := capture(backend.L2)
	if err != nil {
		return nil, err
	}
	total := l2[wire.TQUE1] + l2[wire.TRES1] + l2[wire.TQUE2] + l2[wire.TRES2]
	res.AddRow("L2/3", "QUE1", l2[wire.TQUE1], 28)
	res.AddRow("L2/3", "RES1", l2[wire.TRES1], 772)
	res.AddRow("L2/3", "QUE2", l2[wire.TQUE2], 1008)
	res.AddRow("L2/3", "RES2", l2[wire.TRES2], 280)
	res.AddRow("L2/3", "total", total, 2088)
	res.Notes = append(res.Notes,
		"measured values include our codec framing (type/version/length prefixes) and CBC padding the paper's arithmetic omits; nonce, KEXM, SIG, MAC field sizes are identical (28/64/64/32 B)")
	return res, nil
}

// runFig6a measures ECDSA and ECDH operation times on this host across the
// paper's four security strengths.
func runFig6a(quick bool) (*Result, error) {
	res := &Result{
		ID:      "fig6a",
		Title:   "ECDSA/ECDH computation time vs security strength (measured on this host)",
		Paper:   "subject signing: 4.7 ms at 112-bit → 26.0 ms at 256-bit; verification similar or slightly longer (Fig 6a)",
		Columns: []string{"strength", "sign", "verify", "ecdh gen", "ecdh shared"},
	}
	iters := 20
	if quick {
		iters = 3
	}
	var prevSign time.Duration
	for _, s := range suite.Strengths {
		c, err := MeasuredCosts(s, iters)
		if err != nil {
			return nil, err
		}
		res.AddRow(s.String(), fmtDur(c.Sign), fmtDur(c.Verify), fmtDur(c.KexGen), fmtDur(c.KexShared))
		if prevSign > 0 && c.Sign < prevSign/4 {
			res.Notes = append(res.Notes, fmt.Sprintf("%v sign unexpectedly cheaper than previous strength", s))
		}
		prevSign = c.Sign
	}
	res.Notes = append(res.Notes,
		"shape check: cost grows with strength (P-256 benefits from stdlib assembly, mirroring the paper's per-curve variation)")
	return res, nil
}

// runFig6b reports the per-discovery computation on each side at each level
// under the calibrated (paper-fitted) cost tables.
func runFig6b(bool) (*Result, error) {
	res := &Result{
		ID:      "fig6b",
		Title:   "Per-discovery computation time by level and side (128-bit, calibrated)",
		Paper:   "L1: subject 5.1 ms, object ≈0; L2/3: subject 27.4 ms, object 78.2 ms (Fig 6b)",
		Columns: []string{"level", "side", "operations", "time"},
	}
	phone, pi := PhoneCosts(), PiCosts()
	res.AddRow("L1", "subject", "1 verify (PROF_O)", fmtDur(SubjectComputeLevel1(phone)))
	res.AddRow("L1", "object", "none", fmtDur(0))
	res.AddRow("L2/3", "subject", "1 sign + 3 verify + 2 ECDH (+HMAC/AES)", fmtDur(SubjectComputeLevel23(phone)))
	res.AddRow("L2/3", "object", "1 sign + 3 verify + 2 ECDH (+HMAC/AES)", fmtDur(ObjectComputeLevel23(pi)))
	res.Notes = append(res.Notes,
		"Level 2 and Level 3 public-key operations are identical; Level 3 adds only HMACs (<1 ms) — the basis of timing indistinguishability (§VI-B)")
	return res, nil
}

// runFig6c measures real CP-ABE decryption time against the number of
// attributes in the ciphertext policy.
func runFig6c(quick bool) (*Result, error) {
	res := &Result{
		ID:      "fig6c",
		Title:   "ABE decryption time vs policy attribute count (measured, BSW07 on BN254)",
		Paper:   "decryption time well linear in attribute count, ≈1 s per attribute with [15] (Fig 6c)",
		Columns: []string{"attributes", "decrypt", "per attribute"},
	}
	pk, mk, err := abe.Setup()
	if err != nil {
		return nil, err
	}
	maxAttrs := 6
	if quick {
		maxAttrs = 2
	}
	attrs := make([]string, maxAttrs)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("attr-%d:v", i)
	}
	sk, err := abe.KeyGen(pk, mk, attrs)
	if err != nil {
		return nil, err
	}
	var first, last time.Duration
	for k := 1; k <= maxAttrs; k++ {
		leaves := make([]*abe.Policy, k)
		for i := range leaves {
			leaves[i] = abe.Leaf(attrs[i])
		}
		var policy *abe.Policy
		if k == 1 {
			policy = leaves[0]
		} else {
			policy = abe.And(leaves...)
		}
		ct, key, err := abe.Encrypt(pk, policy)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		got, err := abe.Decrypt(pk, sk, ct)
		el := time.Since(start)
		if err != nil || got != key {
			return nil, fmt.Errorf("fig6c: decrypt failed at k=%d: %v", k, err)
		}
		res.AddRow(k, fmtDur(el), fmtDur(el/time.Duration(k)))
		if k == 1 {
			first = el
		}
		last = el
	}
	if maxAttrs > 1 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"linearity: %d attributes cost %.1fx one attribute (2 pairings per attribute, structural)",
			maxAttrs, float64(last)/float64(first)))
	}
	res.Notes = append(res.Notes,
		"compare Argus Level 2 subject computation: 27.4 ms calibrated / sub-ms measured — the ≥10x gap of §IX holds structurally")
	return res, nil
}

// runFig6d measures the PBC secret-handshake pairing time per side.
func runFig6d(quick bool) (*Result, error) {
	res := &Result{
		ID:      "fig6d",
		Title:   "PBC pairing time per handshake side (measured, SOK on BN254)",
		Paper:   "pairing costs 2.2 s on the subject, 7.7 s on objects with jPBC (Fig 6d)",
		Columns: []string{"side", "operation", "time"},
	}
	auth, err := pbc.NewAuthority()
	if err != nil {
		return nil, err
	}
	subj := auth.Issue("subject-S")
	obj := auth.Issue("object-O")
	iters := 3
	if quick {
		iters = 1
	}
	timeSide := func(c *pbc.Credential, peer string) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			c.PairwiseKey(peer)
		}
		return time.Since(start) / time.Duration(iters)
	}
	ts := timeSide(subj, obj.ID)
	to := timeSide(obj, subj.ID)
	res.AddRow("subject", "1 pairing (pairwise key)", fmtDur(ts))
	res.AddRow("object", "1 pairing (pairwise key)", fmtDur(to))

	// Argus Level 3's extra work over Level 2 is two HMACs.
	c, err := MeasuredCosts(suite.S128, 5)
	if err != nil {
		return nil, err
	}
	argusExtra := 2 * c.HMAC
	res.AddRow("argus L3", "2 HMAC (K3 + MAC_{S,3})", fmtDur(argusExtra))
	if argusExtra > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"PBC/Argus per-handshake overhead ratio on this host: %.0fx (paper reports ≥10x)",
			float64(ts)/float64(argusExtra)))
	}
	return res, nil
}

// fmtDur renders durations with stable precision for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0f µs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2f s", float64(d)/float64(time.Second))
	}
}
