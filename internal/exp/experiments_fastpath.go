package exp

import (
	"fmt"
	"runtime"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/suite"
)

func init() {
	register("fastpath-handshake", runFastpathHandshake)
	register("fastpath-provision", runFastpathProvision)
}

// handshakePeer is one side's cacheable credentials: the certificate chain
// and the signed attribute profile a peer presents during an L2/L3 handshake.
type handshakePeer struct {
	chain []byte
	prof  *cert.Profile
	raw   []byte
}

func makeHandshakePeer(issuer *cert.Admin, name string, role cert.Role) (*handshakePeer, error) {
	key, err := suite.GenerateSigningKey(issuer.Strength(), nil)
	if err != nil {
		return nil, err
	}
	id := cert.IDFromName(name)
	chain, err := issuer.IssueCertChain(id, name, role, key.Public())
	if err != nil {
		return nil, err
	}
	p := &cert.Profile{
		Kind:    role,
		Entity:  id,
		Issued:  time.Now(),
		Expires: time.Now().Add(24 * time.Hour),
		Attrs:   attr.MustSet("type=device,room=R1"),
	}
	if role == cert.RoleObject {
		p.Functions = []string{"use"}
	}
	if err := issuer.SignProfile(p); err != nil {
		return nil, err
	}
	return &handshakePeer{chain: chain, prof: p, raw: p.Encode()}, nil
}

// runFastpathHandshake measures the credential-verification CPU cost of one
// L2/L3 handshake — the four cacheable checks both engines perform (subject
// verifies CERT_O + PROF_O, object verifies CERT_S + PROF_S; see §V-B/§V-C) —
// uncached versus through a warm cert.VerifyCache. Per-session nonce
// signatures are excluded: they are unique per handshake and never cached.
// The "warm ECDSA" column counts real signature verifications during the warm
// run via the cache's miss counter; the fast-path acceptance criterion is
// that it is 0 and the speedup is at least 2x.
func runFastpathHandshake(quick bool) (*Result, error) {
	res := &Result{
		ID:      "fastpath-handshake",
		Title:   "Credential verification per L2/L3 handshake: uncached vs warm cache",
		Paper:   "the paper reports sub-second discovery dominated by crypto (§IX-B Fig 6a); repeat encounters with already-seen peers re-verify the same static credentials",
		Columns: []string{"anchor", "uncached us/handshake", "warm us/handshake", "speedup", "warm ECDSA verifies"},
	}
	iters := 300
	if quick {
		iters = 40
	}
	for _, tc := range []struct {
		name      string
		hierarchy bool
	}{
		{"root admin", false},
		{"2-level hierarchy", true},
	} {
		root, err := cert.NewAdmin(suite.S128, "argus root")
		if err != nil {
			return nil, err
		}
		issuer := root
		if tc.hierarchy {
			if issuer, err = root.NewSubordinate("floor-3"); err != nil {
				return nil, err
			}
		}
		subj, err := makeHandshakePeer(issuer, "bench-subject", cert.RoleSubject)
		if err != nil {
			return nil, err
		}
		obj, err := makeHandshakePeer(issuer, "bench-object", cert.RoleObject)
		if err != nil {
			return nil, err
		}
		rootDER, rootPub := root.CACert(), root.Public()
		now := time.Now()

		verifyAll := func(vc *cert.VerifyCache) error {
			for _, p := range []*handshakePeer{subj, obj} {
				if _, err := vc.VerifyCert(rootDER, p.chain, suite.S128); err != nil {
					return err
				}
				if err := vc.VerifyProfileAnchored(p.prof, p.raw, rootDER, rootPub, now); err != nil {
					return err
				}
			}
			return nil
		}

		// Uncached: a nil *VerifyCache passes every call straight through.
		var uncached *cert.VerifyCache
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := verifyAll(uncached); err != nil {
				return nil, err
			}
		}
		cold := time.Since(start)

		vc := cert.NewVerifyCache(0)
		if err := verifyAll(vc); err != nil { // warm-up: the one real verification pass
			return nil, err
		}
		_, missesBefore, _ := vc.Stats()
		start = time.Now()
		for i := 0; i < iters; i++ {
			if err := verifyAll(vc); err != nil {
				return nil, err
			}
		}
		warm := time.Since(start)
		_, missesAfter, _ := vc.Stats()

		coldUS := float64(cold.Microseconds()) / float64(iters)
		warmUS := float64(warm.Microseconds()) / float64(iters)
		res.AddRow(tc.name,
			fmt.Sprintf("%.1f", coldUS),
			fmt.Sprintf("%.1f", warmUS),
			fmt.Sprintf("%.1fx", coldUS/warmUS),
			missesAfter-missesBefore)
	}
	res.Notes = append(res.Notes,
		"a warm handshake replaces every ECDSA chain/profile verification with one SHA-256 cache lookup; the hierarchy row doubles the uncached cost (two signatures per chain) while the warm cost stays flat",
		fmt.Sprintf("%d handshakes per cell; per-session nonce signatures excluded (never cached)", iters))
	return res, nil
}

// runFastpathProvision measures wall-clock deployment bootstrap — key
// generation, certificate issuance and profile signing for N objects —
// sequentially versus through the backend's batch worker pool. The fixed-seed
// simulation transcript is identical either way (see
// TestParallelProvisioningDeterministic); only real CPU time moves.
func runFastpathProvision(quick bool) (*Result, error) {
	workers := runtime.GOMAXPROCS(0)
	res := &Result{
		ID:      "fastpath-provision",
		Title:   fmt.Sprintf("Object registration+provisioning wall time, serial vs %d workers", workers),
		Paper:   "§VIII provisions a 20-object testbed and §II-C projects thousands of devices per enterprise; bootstrap is dominated by embarrassingly parallel per-entity crypto",
		Columns: []string{"objects", "serial ms", "parallel ms", "speedup"},
	}
	sizes := []int{20, 60}
	if quick {
		sizes = []int{10}
	}
	provision := func(n, workers int) (time.Duration, error) {
		b, err := backend.New(suite.S128)
		if err != nil {
			return 0, err
		}
		if _, _, err := b.AddPolicy(attr.MustParse("position=='staff'"),
			attr.MustParse("type=='device'"), []string{"use"}); err != nil {
			return 0, err
		}
		specs := make([]backend.ObjectSpec, n)
		for i := range specs {
			specs[i] = backend.ObjectSpec{
				Name:      fmt.Sprintf("object-%03d", i),
				Level:     backend.L2,
				Attrs:     attr.MustSet("type=device,room=R1"),
				Functions: []string{"use"},
			}
		}
		start := time.Now()
		ids, err := b.RegisterObjects(specs, workers)
		if err != nil {
			return 0, err
		}
		if _, err := b.ProvisionObjects(ids, workers); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	if _, err := provision(2, 1); err != nil { // warm-up: one-time curve table init
		return nil, err
	}
	for _, n := range sizes {
		serial, err := provision(n, 1)
		if err != nil {
			return nil, err
		}
		parallel, err := provision(n, workers)
		if err != nil {
			return nil, err
		}
		res.AddRow(n,
			fmt.Sprintf("%.1f", float64(serial.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(parallel.Microseconds())/1000),
			fmt.Sprintf("%.1fx", float64(serial)/float64(parallel)))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("worker pool sized to GOMAXPROCS=%d on this host; on a single-CPU container the speedup is ~1x by construction — the column shows what the pool buys on multi-core hardware", workers))
	return res, nil
}
