package exp

import (
	"reflect"
	"testing"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/obs"
)

func telemetryTestConfig(reg *obs.Registry, tr *obs.Tracer) DeployConfig {
	return DeployConfig{
		Levels:       []backend.Level{backend.L1, backend.L2, backend.L3, backend.L1, backend.L2, backend.L3},
		SubjectCosts: PhoneCosts(),
		ObjectCosts:  PiCosts(),
		Fellow:       true,
		Seed:         42,
		Registry:     reg,
		Tracer:       tr,
	}
}

// TestTelemetryDoesNotPerturb is the determinism guarantee of the telemetry
// layer: a fixed-seed deployment produces identical discoveries, network
// statistics and per-link traffic whether or not a registry and tracer are
// attached. Telemetry only reads the virtual clock — it draws no randomness
// and schedules no events. (Certificate DER sizes are pinned at issuance, so
// two same-seed deployments are byte-identical on the air.)
func TestTelemetryDoesNotPerturb(t *testing.T) {
	run := func(reg *obs.Registry, tr *obs.Tracer) ([]core.Discovery, netsim.Stats, map[netsim.LinkKey]netsim.LinkStat) {
		d, err := Deploy(telemetryTestConfig(reg, tr))
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		return res, d.Net.Stats(), d.Net.LinkStats()
	}

	plain, plainStats, plainLinks := run(nil, nil)
	instr, instrStats, instrLinks := run(obs.NewRegistry(), obs.NewTracer())

	if plainStats != instrStats {
		t.Errorf("network stats diverged:\n  plain = %+v\n  instr = %+v", plainStats, instrStats)
	}
	if !reflect.DeepEqual(plainLinks, instrLinks) {
		t.Errorf("per-link traffic diverged:\n  plain = %v\n  instr = %v", plainLinks, instrLinks)
	}
	if len(plain) != len(instr) {
		t.Fatalf("discovery counts diverged: %d vs %d", len(plain), len(instr))
	}
	for i := range plain {
		p, q := plain[i], instr[i]
		// Entity IDs and keys are freshly random per deployment; everything
		// the simulation *computes* must match exactly.
		if p.Node != q.Node || p.Level != q.Level || p.At != q.At || p.Round != q.Round {
			t.Errorf("discovery %d diverged:\n  plain = {node %s %v at %v}\n  instr = {node %s %v at %v}",
				i, p.Node, p.Level, p.At, q.Node, q.Level, q.At)
		}
	}
}

// TestDeploymentMetricsContent checks that an instrumented fixed-seed run
// populates the metric families the acceptance criteria name: per-level
// discovery-phase histograms with quantiles, netsim byte/latency metrics and
// backend churn counters — and that they agree with the simulation's own
// accounting.
func TestDeploymentMetricsContent(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	d, err := Deploy(telemetryTestConfig(reg, tr))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	perLevel := map[backend.Level]int{}
	for _, r := range res {
		perLevel[backend.Level(r.Level)]++
	}
	snap := reg.Snapshot()

	for _, level := range []string{"1", "2", "3"} {
		m := snap.Get(obs.MDiscoveryPhaseSeconds, obs.L("level", level), obs.L("phase", obs.PhaseAll))
		if m == nil {
			t.Fatalf("no phase histogram for level %s", level)
		}
		if int(m.Count) != perLevel[backend.Level(level[0]-'0')] {
			t.Errorf("level %s phase count = %d, want %d", level, m.Count, perLevel[backend.Level(level[0]-'0')])
		}
		if m.Count > 0 && (m.P50 <= 0 || m.P95 < m.P50) {
			t.Errorf("level %s quantiles implausible: p50=%g p95=%g p99=%g", level, m.P50, m.P95, m.P99)
		}
	}
	for _, level := range []string{"2", "3"} {
		for _, phase := range []string{obs.PhaseQUE1, obs.PhaseRES1, obs.PhaseQUE2, obs.PhaseRES2} {
			if m := snap.Get(obs.MDiscoveryPhaseSeconds, obs.L("level", level), obs.L("phase", phase)); m == nil || m.Count == 0 {
				t.Errorf("level %s phase %s histogram missing or empty", level, phase)
			}
		}
	}

	stats := d.Net.Stats()
	if m := snap.Get(obs.MNetBytesOnAir); m == nil || int64(m.Value) != stats.BytesOnAir {
		t.Errorf("bytes-on-air metric = %+v, stats say %d", m, stats.BytesOnAir)
	}
	if m := snap.Get(obs.MNetTransmissions); m == nil || int(m.Value) != stats.Transmissions {
		t.Errorf("transmissions metric = %+v, stats say %d", m, stats.Transmissions)
	}
	if m := snap.Get(obs.MNetHopLatency); m == nil || int(m.Count) != stats.Transmissions {
		t.Errorf("hop-latency histogram = %+v, want one observation per transmission (%d)", m, stats.Transmissions)
	}
	var linkBytes int64
	for _, ls := range d.Net.LinkStats() {
		linkBytes += ls.Bytes
	}
	if linkBytes != stats.BytesOnAir {
		t.Errorf("per-link bytes sum %d != bytes on air %d", linkBytes, stats.BytesOnAir)
	}

	if m := snap.Get(obs.MBackendChurnOps, obs.L("op", "register_object")); m == nil || int(m.Value) != len(d.Objects) {
		t.Errorf("register_object churn counter = %+v, want %d", m, len(d.Objects))
	}
	if m := snap.Get(obs.MCryptoOps, obs.L("role", "subject"), obs.L("op", "verify")); m == nil || m.Value == 0 {
		t.Errorf("subject verify counter missing: %+v", m)
	}

	// Revoke the subject: churn counters advance by exactly the report.
	notifiedBefore := 0.0
	if m := snap.Get(obs.MBackendNotified, obs.L("kind", "object")); m != nil {
		notifiedBefore = m.Value
	}
	rep, err := d.Backend.RevokeSubject(d.Subject.ID())
	if err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if m := snap.Get(obs.MBackendChurnOps, obs.L("op", "revoke_subject")); m == nil || m.Value != 1 {
		t.Errorf("revoke_subject churn counter = %+v", m)
	}
	if m := snap.Get(obs.MBackendNotified, obs.L("kind", "object")); m == nil || int(m.Value-notifiedBefore) != len(rep.NotifiedObjects) {
		t.Errorf("notified-objects counter = %+v, want +%d over %g", m, len(rep.NotifiedObjects), notifiedBefore)
	}

	// Tracer: every secure discovery contributes one span per phase plus a
	// total; Level 1 contributes que1, res2 and total.
	if tr.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	want := perLevel[backend.L1]*3 + (perLevel[backend.L2]+perLevel[backend.L3])*5
	if tr.Len() != want {
		t.Errorf("tracer spans = %d, want %d", tr.Len(), want)
	}
	for _, s := range tr.Spans() {
		if s.End < s.Start {
			t.Errorf("span %+v runs backwards", s)
		}
	}
}
