package exp

import (
	"testing"

	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/obs"
)

func fastpathConfig() DeployConfig {
	return DeployConfig{
		Levels:       uniformLevels(backend.L2, 4),
		SubjectCosts: PhoneCosts(),
		ObjectCosts:  PiCosts(),
		Seed:         7,
	}
}

// TestCacheDoesNotPerturbDiscovery is the determinism half of the fast-path
// acceptance criteria: a fixed-seed run with the verification cache enabled
// produces a byte-identical discovery fingerprint to the uncached run. The
// cache removes real CPU work; the modeled virtual Costs are charged
// unconditionally, so nothing observable to the simulation changes. Two
// rounds make the second one warm — the case where the cache actually acts.
func TestCacheDoesNotPerturbDiscovery(t *testing.T) {
	cold, err := RunFingerprint(fastpathConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastpathConfig()
	cfg.VerifyCache = cert.NewVerifyCache(0)
	warm, err := RunFingerprint(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cold != warm {
		t.Fatalf("cache changed the run:\n--- uncached ---\n%s--- cached ---\n%s", cold, warm)
	}
	if hits, _, _ := cfg.VerifyCache.Stats(); hits == 0 {
		t.Fatal("cache never hit — the warm round did not exercise it")
	}
}

// TestParallelProvisioningDeterministic: Deploy with a worker pool yields the
// same fixed-seed fingerprint as fully sequential provisioning — serials,
// node IDs and credential sizes are pinned, so parallelism moves only
// wall-clock time.
func TestParallelProvisioningDeterministic(t *testing.T) {
	serialCfg := fastpathConfig()
	serialCfg.Workers = 1
	serial, err := RunFingerprint(serialCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := fastpathConfig()
	parCfg.Workers = 8
	parallel, err := RunFingerprint(parCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("worker count changed the run:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}

// TestDeployCacheInstrumented: Deploy wires the shared cache into every
// engine and instruments it under the deployment registry.
func TestDeployCacheInstrumented(t *testing.T) {
	cfg := fastpathConfig()
	cfg.VerifyCache = cert.NewVerifyCache(0)
	cfg.Registry = obs.NewRegistry()
	d, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := d.Run(1); err != nil {
			t.Fatal(err)
		}
	}
	snap := cfg.Registry.Snapshot()
	hit := snap.Get(obs.MVerifyCacheEvents, obs.L("result", "hit"))
	miss := snap.Get(obs.MVerifyCacheEvents, obs.L("result", "miss"))
	if hit == nil || miss == nil || hit.Value == 0 || miss.Value == 0 {
		t.Fatalf("cache counters not populated: hit=%+v miss=%+v", hit, miss)
	}
	// Two rounds × 4 objects × 4 credential checks per L2 handshake = 32
	// lookups, split between hits and misses across both counter kinds.
	var total float64
	for _, m := range snap.Metrics {
		if m.Name == obs.MVerifyCacheEvents {
			total += m.Value
		}
	}
	if total != 32 {
		t.Fatalf("lookup volume = %g, want 32", total)
	}
}
