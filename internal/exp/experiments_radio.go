package exp

import (
	"fmt"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/wire"
)

func init() {
	register("ablation-radio", runAblationRadio)
}

// bleLink models a BLE-class constrained radio (§II-A lists Bluetooth and
// ZigBee alongside WiFi): low throughput, and per-hop latency dominated by
// the connection interval.
func bleLink() netsim.LinkModel {
	return netsim.LinkModel{
		PerMessage:       15 * time.Millisecond,
		BytesPerSecond:   20_000,
		PropagationDelay: 50 * time.Millisecond,
		JitterFrac:       0.1,
	}
}

// runAblationRadio quantifies §II-A's claim that the design is orthogonal to
// radios: the same Level 2 discovery over WiFi, over BLE, and across a
// WiFi→BLE bridging device. Correctness is identical; only latency moves with
// the radio's throughput and per-hop cost.
func runAblationRadio(bool) (*Result, error) {
	res := &Result{
		ID:      "ablation-radio",
		Title:   "One Level 2 discovery across radio technologies (extension experiment)",
		Paper:   "\"we focus on security design above the network layer ... network connectivity exists among all nodes (e.g., via bridging devices with multiple radios)\" (§II-A)",
		Columns: []string{"path", "hops", "completion"},
	}
	run := func(label string, build func(net *netsim.Network, sn, on netsim.NodeID)) error {
		b, err := backend.New(suite.S128)
		if err != nil {
			return err
		}
		if _, _, err := b.AddPolicy(attr.MustParse("position=='staff'"),
			attr.MustParse("type=='device'"), []string{"use"}); err != nil {
			return err
		}
		sid, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
		if err != nil {
			return err
		}
		oid, _, err := b.RegisterObject("device", backend.L2, attr.MustSet("type=device"), []string{"use"})
		if err != nil {
			return err
		}
		net := netsim.New(netsim.DefaultWiFi(), 17)
		sprov, err := b.ProvisionSubject(sid)
		if err != nil {
			return err
		}
		sep := net.NewEndpoint()
		sn := sep.Node()
		s := core.NewSubject(sprov, wire.V30, PhoneCosts(), core.WithEndpoint(sep))
		oprov, err := b.ProvisionObject(oid)
		if err != nil {
			return err
		}
		oep := net.NewEndpoint()
		on := oep.Node()
		core.NewObject(oprov, wire.V30, PiCosts(), core.WithEndpoint(oep))
		build(net, sn, on)

		if err := s.Discover(2); err != nil {
			return err
		}
		net.Run(0)
		results := s.Results()
		if len(results) != 1 {
			return fmt.Errorf("ablation-radio %s: %d discoveries", label, len(results))
		}
		hops := net.HopDistance(sn, on)
		res.AddRow(label, hops, fmtDur(results[0].At))
		return nil
	}

	if err := run("WiFi direct", func(net *netsim.Network, sn, on netsim.NodeID) {
		net.LinkOn(sn, on, 0, netsim.DefaultWiFi())
	}); err != nil {
		return nil, err
	}
	if err := run("BLE direct", func(net *netsim.Network, sn, on netsim.NodeID) {
		net.LinkOn(sn, on, 1, bleLink())
	}); err != nil {
		return nil, err
	}
	if err := run("WiFi → BLE bridge", func(net *netsim.Network, sn, on netsim.NodeID) {
		bridge := net.AddNode(nil)
		net.LinkOn(sn, bridge, 0, netsim.DefaultWiFi())
		net.LinkOn(bridge, on, 1, bleLink())
	}); err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"identical protocol outcome on every radio; the ~1 kB QUE2 dominates on BLE-class links (20 kB/s), so Level 2/3 discovery latency is radio-bound exactly where the paper's resource assumptions (§II-A) predict")
	return res, nil
}
