package exp

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"fmt"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/update"
	"argus/internal/wire"
)

func init() {
	register("propagation", runPropagation)
	register("ablation-rsa", runAblationRSA)
	register("ablation-versions", runAblationVersions)
	register("ablation-groups", runAblationGroups)
}

// runPropagation measures how long a revocation takes to *effectuate* across
// N objects when pushed over the ground network as signed notifications —
// the "immediately propagated and effectuated" requirement of §IV-A/§VIII
// turned into a latency curve.
func runPropagation(quick bool) (*Result, error) {
	res := &Result{
		ID:      "propagation",
		Title:   "Revocation effectuation latency vs N (extension experiment)",
		Paper:   "§VIII defines updating overhead as the notification count; this measures the on-air latency of those N notifications",
		Columns: []string{"N objects", "notifications", "propagation time", "per object"},
	}
	sizes := []int{5, 10, 20, 50}
	if quick {
		sizes = []int{5, 20}
	}
	for _, n := range sizes {
		b, err := backend.New(suite.S128)
		if err != nil {
			return nil, err
		}
		b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='lock'"), []string{"open"})
		sid, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
		if err != nil {
			return nil, err
		}

		net := netsim.New(netsim.DefaultWiFi(), int64(n))
		dep := net.NewEndpoint()
		dist := update.NewDistributor(b.Admin(), dep)
		hub := net.AddNode(nil)
		net.Link(dep.Node(), hub)

		effectuated := 0
		for i := 0; i < n; i++ {
			oid, _, err := b.RegisterObject(fmt.Sprintf("lock-%03d", i), backend.L2,
				attr.MustSet("type=lock"), []string{"open"})
			if err != nil {
				return nil, err
			}
			prov, err := b.ProvisionObject(oid)
			if err != nil {
				return nil, err
			}
			eng := core.NewObject(prov, wire.V30, PiCosts())
			agent := update.NewAgent(b.AdminPublic(), nil, func(u *update.Notification) {
				if u.Kind == update.KindRevokeSubject {
					eng.Revoke(u.Subject)
					effectuated++
				}
			})
			ep := net.NewEndpoint()
			eng.Bind(agent.Wrap(ep))
			net.Link(hub, ep.Node())
			dist.Register(oid, ep.Addr())
		}

		rep, err := b.RevokeSubject(sid)
		if err != nil {
			return nil, err
		}
		start := net.Now()
		if err := dist.RevokeSubject(sid, rep.NotifiedObjects); err != nil {
			return nil, err
		}
		net.Run(0)
		elapsed := net.Now() - start
		if effectuated != n {
			return nil, fmt.Errorf("propagation: effectuated %d/%d", effectuated, n)
		}
		res.AddRow(n, dist.Sent(), fmtDur(elapsed), fmtDur(elapsed/time.Duration(n)))
	}
	res.Notes = append(res.Notes,
		"notifications are admin-signed and sequence-numbered; objects verify before applying (internal/update)")
	return res, nil
}

// runAblationRSA substantiates the paper's §IX-B design choice: "ECDSA is
// preferred to RSA because the latter costs much longer (e.g., 18x for
// 128-bit strength)". RSA-3072 is the 128-bit-strength RSA parameter.
func runAblationRSA(quick bool) (*Result, error) {
	res := &Result{
		ID:      "ablation-rsa",
		Title:   "Design ablation: ECDSA P-256 vs RSA-3072 at 128-bit strength (measured)",
		Paper:   "RSA costs ~18x ECDSA for signing at 128-bit strength (§IX-B)",
		Columns: []string{"algorithm", "sign", "verify"},
	}
	iters := 5
	if quick {
		iters = 2
	}

	ec, err := MeasuredCosts(suite.S128, iters*4)
	if err != nil {
		return nil, err
	}
	res.AddRow("ECDSA P-256", fmtDur(ec.Sign), fmtDur(ec.Verify))

	rsaKey, err := rsa.GenerateKey(rand.Reader, 3072)
	if err != nil {
		return nil, err
	}
	digest := sha256.Sum256([]byte("argus"))
	var sig []byte
	start := time.Now()
	for i := 0; i < iters; i++ {
		sig, err = rsa.SignPKCS1v15(rand.Reader, rsaKey, 5 /*crypto.SHA256*/, digest[:])
		if err != nil {
			return nil, err
		}
	}
	rsaSign := time.Since(start) / time.Duration(iters)
	start = time.Now()
	for i := 0; i < iters*4; i++ {
		if err := rsa.VerifyPKCS1v15(&rsaKey.PublicKey, 5, digest[:], sig); err != nil {
			return nil, err
		}
	}
	rsaVerify := time.Since(start) / time.Duration(iters*4)
	res.AddRow("RSA-3072", fmtDur(rsaSign), fmtDur(rsaVerify))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"RSA/ECDSA signing ratio on this host: %.0fx (paper: ~18x on the phone); RSA verification is cheap but Argus signs on both sides every discovery, so signing dominates",
		float64(rsaSign)/float64(ec.Sign)))
	return res, nil
}

// runAblationVersions quantifies §VI's "Overhead of Extensions": what each
// protocol iteration adds on the wire and in computation, and what it buys.
func runAblationVersions(bool) (*Result, error) {
	res := &Result{
		ID:      "ablation-versions",
		Title:   "Design ablation: per-version wire overhead of one Level 2/3 discovery",
		Paper:   "v2.0 adds one 32 B HMAC to QUE2 during L3 discovery; v3.0 makes it mandatory — constant shapes at +32 B for everyone (§VI)",
		Columns: []string{"version", "subject", "QUE2 B", "RES2 B", "outcome"},
	}
	type scenario struct {
		version wire.Version
		fellow  bool
		label   string
	}
	cases := []scenario{
		{wire.V10, false, "any (no L3 support)"},
		{wire.V20, false, "plain subject"},
		{wire.V20, true, "fellow (L3 discovery)"},
		{wire.V30, false, "plain subject (cover-up)"},
		{wire.V30, true, "fellow"},
	}
	for _, c := range cases {
		d, err := Deploy(DeployConfig{
			Levels:  uniformLevels(backend.L3, 1),
			Version: c.version,
			Fellow:  c.fellow,
			Seed:    11,
		})
		if err != nil {
			return nil, err
		}
		var que2, res2 int
		d.Net.Snoop(func(_, _ netsim.NodeID, p []byte) {
			if m, err := wire.Decode(p); err == nil {
				switch m.Type() {
				case wire.TQUE2:
					que2 = len(p)
				case wire.TRES2:
					res2 = len(p)
				}
			}
		})
		results, err := d.Run(1)
		if err != nil {
			return nil, err
		}
		outcome := "no discovery"
		if len(results) > 0 {
			outcome = fmt.Sprintf("discovered as %v", results[0].Level)
		}
		res.AddRow(c.version.String(), c.label, que2, res2, outcome)
	}
	res.Notes = append(res.Notes,
		"v2.0 rows differ by one 32 B MAC in QUE2 — the distinguishability leak; v3.0 rows have identical composition and both succeed (double-faced object). ±1 B across rows is X.509 DER length variance of the subject CERT, which is public identity data either way")
	return res, nil
}

// runAblationGroups measures §VI-C key rotation: a subject in k secret groups
// runs k discovery rounds (one MAC_{S,3} per round); total time grows
// linearly in k.
func runAblationGroups(quick bool) (*Result, error) {
	res := &Result{
		ID:      "ablation-groups",
		Title:   "Multi-group rotation: DiscoverAll time vs held group keys (§VI-C)",
		Paper:   "a subject uses her group keys in turns, one round per key, until all covert services are found",
		Columns: []string{"groups", "rounds", "covert found", "total time"},
	}
	counts := []int{1, 2, 3, 5}
	if quick {
		counts = []int{1, 3}
	}
	for _, k := range counts {
		b, err := backend.New(suite.S128)
		if err != nil {
			return nil, err
		}
		sid, _, err := b.RegisterSubject("multi", attr.MustSet("position=staff"))
		if err != nil {
			return nil, err
		}
		net := netsim.New(netsim.DefaultWiFi(), int64(k))
		var sn netsim.NodeID
		for i := 0; i < k; i++ {
			g, err := b.Groups.CreateGroup(fmt.Sprintf("group-%d", i))
			if err != nil {
				return nil, err
			}
			if err := b.AddSubjectToGroup(sid, g.ID()); err != nil {
				return nil, err
			}
			oid, _, err := b.RegisterObject(fmt.Sprintf("covert-%d", i), backend.L3,
				attr.MustSet("type=kiosk"), []string{"use"})
			if err != nil {
				return nil, err
			}
			if err := b.AddCovertService(oid, g.ID(), []string{"use", fmt.Sprintf("covert-%d", i)}); err != nil {
				return nil, err
			}
		}
		sprov, err := b.ProvisionSubject(sid)
		if err != nil {
			return nil, err
		}
		sep := net.NewEndpoint()
		sn = sep.Node()
		subj := core.NewSubject(sprov, wire.V30, PhoneCosts(), core.WithEndpoint(sep))
		for _, oid := range b.Objects() {
			rec, err := b.Object(oid)
			if err != nil || rec.Level != backend.L3 {
				continue
			}
			prov, err := b.ProvisionObject(oid)
			if err != nil {
				return nil, err
			}
			oep := net.NewEndpoint()
			core.NewObject(prov, wire.V30, PiCosts(), core.WithEndpoint(oep))
			net.Link(sn, oep.Node())
		}
		if err := subj.DiscoverAll(1, func() { net.Run(0) }); err != nil {
			return nil, err
		}
		covert := 0
		for _, r := range subj.Results() {
			if r.Level == backend.L3 {
				covert++
			}
		}
		if covert != k {
			return nil, fmt.Errorf("ablation-groups: found %d/%d covert services", covert, k)
		}
		res.AddRow(k, k, covert, fmtDur(net.Now()))
	}
	res.Notes = append(res.Notes,
		"rounds (and thus time) scale linearly with held keys — the cost of one-key-per-QUE2; the paper accepts this because subjects rarely hold more than a few sensitive attributes")
	return res, nil
}
