// Package exp is the experiment harness: one runner per table/figure of the
// paper's evaluation (§VIII Table I, §IX-A message overhead, Fig 6a–6h),
// each producing the same rows/series the paper reports.
//
// Computation time enters the simulator through core.Costs tables. Two modes:
//
//   - Calibrated (default): per-operation costs derived from the paper's own
//     measurements (Fig 6a/6b: 128-bit ECDSA ≈ 5 ms on the phone, object ≈
//     2.85× slower), so discovery-time experiments reproduce the testbed's
//     arithmetic deterministically.
//   - Measured: per-operation costs measured on this host at init. Useful to
//     sanity-check that relative op costs match; absolute numbers differ from
//     2016-era hardware, which EXPERIMENTS.md discusses.
package exp

import (
	"crypto/sha256"
	"time"

	"argus/internal/core"
	"argus/internal/suite"
)

// piSlowdown is the object/subject computation ratio from Fig 6(b):
// 78.2 ms / 27.4 ms on identical operation sequences.
const piSlowdown = 2.854

// PhoneCosts returns the calibrated per-operation costs of the subject
// device (Nexus 6) at 128-bit strength, fitted to Fig 6(a)/(b):
// Level 1 subject = one verification = 5.1 ms; Level 2/3 subject =
// 1 sign + 3 verify + 2 ECDH ≈ 27.4 ms.
func PhoneCosts() core.Costs {
	return core.Costs{
		Sign:      5000 * time.Microsecond,
		Verify:    5100 * time.Microsecond,
		KexGen:    3500 * time.Microsecond,
		KexShared: 3600 * time.Microsecond,
		HMAC:      40 * time.Microsecond,  // "less than 1 ms" (§IX-B)
		Cipher:    300 * time.Microsecond, // AES, "less than 1 ms"
	}
}

// PiCosts returns the calibrated object-side (Raspberry Pi 3) costs:
// the same operations, 2.854× slower (Fig 6b: 78.2 ms vs 27.4 ms).
func PiCosts() core.Costs {
	p := PhoneCosts()
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * piSlowdown)
	}
	return core.Costs{
		Sign:      scale(p.Sign),
		Verify:    scale(p.Verify),
		KexGen:    scale(p.KexGen),
		KexShared: scale(p.KexShared),
		HMAC:      scale(p.HMAC),
		Cipher:    scale(p.Cipher),
	}
}

// MeasuredCosts times the real crypto operations on this host at the given
// strength and returns them as a cost table. iters controls averaging.
func MeasuredCosts(s suite.Strength, iters int) (core.Costs, error) {
	if iters < 1 {
		iters = 1
	}
	key, err := suite.GenerateSigningKey(s, nil)
	if err != nil {
		return core.Costs{}, err
	}
	msg := make([]byte, 256)
	sig, err := key.Sign(msg)
	if err != nil {
		return core.Costs{}, err
	}
	pub := key.Public()

	timeIt := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start) / time.Duration(iters)
	}

	var c core.Costs
	c.Sign = timeIt(func() { key.Sign(msg) })
	c.Verify = timeIt(func() { pub.Verify(msg, sig) })

	peer, err := suite.NewKeyExchange(s, nil)
	if err != nil {
		return core.Costs{}, err
	}
	var kex *suite.KeyExchange
	c.KexGen = timeIt(func() { kex, _ = suite.NewKeyExchange(s, nil) })
	c.KexShared = timeIt(func() { kex.Shared(peer.Public()) })

	k := make([]byte, suite.KeySize)
	h := sha256.Sum256(msg)
	c.HMAC = timeIt(func() { suite.FinishedMAC(k, suite.LabelSubjectFinished, h) })
	plain := make([]byte, 200)
	c.Cipher = timeIt(func() { suite.EncryptProfile(k, plain, nil) })
	return c, nil
}

// SubjectComputeLevel1 returns the subject's total per-discovery computation
// in Level 1 under a cost table: one PROF verification (Fig 6b).
func SubjectComputeLevel1(c core.Costs) time.Duration { return c.Verify }

// SubjectComputeLevel23 returns the subject's total per-discovery
// computation in Level 2/3: 1 signing, 3 verifications, 2 ECDH operations
// plus the symmetric housekeeping (Fig 6b).
func SubjectComputeLevel23(c core.Costs) time.Duration {
	return c.Sign + 3*c.Verify + c.KexGen + c.KexShared + 6*c.HMAC + c.Cipher
}

// ObjectComputeLevel23 returns the object's total per-discovery computation
// in Level 2/3 (same public-key operations as the subject, Fig 6b).
func ObjectComputeLevel23(c core.Costs) time.Duration {
	return c.Sign + 3*c.Verify + c.KexGen + c.KexShared + 4*c.HMAC + c.Cipher
}
