package exp

import (
	"fmt"
	"time"

	"argus/internal/abe"
	"argus/internal/backend"
	"argus/internal/baseline"
	"argus/internal/netsim"
	"argus/internal/pbc"
)

func init() {
	register("comparison", runComparison)
}

// runComparison is the paper's headline end-to-end claim (§IX): discovering
// the same set of objects under Argus versus the ABE and PBC alternatives,
// all on the same simulated testbed. Argus runs with costs calibrated to the
// paper's phone/Pi; the baselines run their real pairing cryptography with
// measured cost charged to the virtual clock (our big.Int BN254 is
// comparable in speed to the paper's jPBC).
func runComparison(quick bool) (*Result, error) {
	n := 3
	if quick {
		n = 2
	}
	res := &Result{
		ID:      "comparison",
		Title:   fmt.Sprintf("End-to-end discovery of %d objects: Argus vs ABE (L2) vs PBC (L3)", n),
		Paper:   "Argus needs ~105 ms of computation per discovery while ABE and PBC cost at least 10x (§IX)",
		Columns: []string{"scheme", "level", "discovered", "completion"},
	}

	// --- Argus Level 2 and Level 3 (calibrated testbed costs) ---
	for _, level := range []backend.Level{backend.L2, backend.L3} {
		got, at, _, err := completionTime(DeployConfig{
			Levels:       uniformLevels(level, n),
			SubjectCosts: PhoneCosts(),
			ObjectCosts:  PiCosts(),
			Fellow:       true,
			Seed:         5,
		}, 1)
		if err != nil {
			return nil, err
		}
		res.AddRow("Argus", level.String(), fmt.Sprintf("%d/%d", got, n), fmtDur(at))
	}

	// --- ABE-based Level 2 discovery (real decryption, 2 attributes) ---
	pk, mk, err := abe.Setup()
	if err != nil {
		return nil, err
	}
	net := netsim.New(netsim.DefaultWiFi(), 5)
	sk, err := abe.KeyGen(pk, mk, []string{"position:staff", "department:X"})
	if err != nil {
		return nil, err
	}
	asubj := &baseline.ABESubject{PK: pk, SK: sk}
	sn := net.AddNode(asubj)
	asubj.Attach(sn)
	policy := abe.And(abe.Leaf("position:staff"), abe.Leaf("department:X"))
	for i := 0; i < n; i++ {
		v, err := baseline.EncryptVariant(pk, policy, []byte(fmt.Sprintf("profile-%d", i)))
		if err != nil {
			return nil, err
		}
		obj := &baseline.ABEObject{Variants: []baseline.ABEVariant{v}}
		on := net.AddNode(obj)
		obj.Attach(on)
		net.Link(sn, on)
	}
	asubj.Discover(net, 1)
	net.Run(0)
	var abeLast time.Duration
	for _, r := range asubj.Results {
		if r.At > abeLast {
			abeLast = r.At
		}
	}
	res.AddRow("ABE (BSW07)", "Level 2", fmt.Sprintf("%d/%d", len(asubj.Results), n), fmtDur(abeLast))

	// --- PBC-based Level 3 discovery (real pairings) ---
	auth, err := pbc.NewAuthority()
	if err != nil {
		return nil, err
	}
	pnet := netsim.New(netsim.DefaultWiFi(), 5)
	var candidates []string
	for i := 0; i < n; i++ {
		candidates = append(candidates, fmt.Sprintf("kiosk-%d", i))
	}
	psubj := &baseline.PBCSubject{Cred: auth.Issue("subject"), Candidates: candidates}
	pn := pnet.AddNode(psubj)
	psubj.Attach(pn)
	for _, cand := range candidates {
		obj := &baseline.PBCObject{Cred: auth.Issue(cand), Profile: []byte("covert-" + cand)}
		on := pnet.AddNode(obj)
		obj.Attach(on)
		pnet.Link(pn, on)
	}
	if err := psubj.Discover(pnet, 1); err != nil {
		return nil, err
	}
	pnet.Run(0)
	var pbcLast time.Duration
	for _, r := range psubj.Results {
		if r.At > pbcLast {
			pbcLast = r.At
		}
	}
	res.AddRow("PBC (SOK)", "Level 3", fmt.Sprintf("%d/%d", len(psubj.Results), n), fmtDur(pbcLast))

	if len(asubj.Results) != n || len(psubj.Results) != n {
		return nil, fmt.Errorf("comparison: baselines incomplete (%d, %d of %d)",
			len(asubj.Results), len(psubj.Results), n)
	}
	res.Notes = append(res.Notes,
		"Argus rows use calibrated 2019-testbed costs; baseline rows run real BN254 pairings with measured cost on the virtual clock — the ≥10x gap of §IX is structural and holds under either accounting")
	return res, nil
}
