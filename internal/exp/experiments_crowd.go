package exp

import (
	"fmt"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/wire"
)

func init() {
	register("ablation-crowd", runAblationCrowd)
}

// runAblationCrowd is an extension experiment motivated by §II-C ("thousands
// of users interact with ten times or more devices"): k subjects discover
// the same 10-object cell simultaneously. Completion grows with k because
// the shared medium and each object's CPU serialize the interleaved
// handshakes — quantifying how far the paper's single-subject latencies
// stretch under enterprise crowding.
func runAblationCrowd(quick bool) (*Result, error) {
	res := &Result{
		ID:      "ablation-crowd",
		Title:   "Concurrent subjects sharing one cell (extension experiment)",
		Paper:   "the paper evaluates one subject; §II-C's scale estimates motivate measuring contention among simultaneous discoverers",
		Columns: []string{"subjects", "discoveries", "last completion", "per subject"},
	}
	const nObjects = 10
	crowds := []int{1, 2, 4, 8}
	if quick {
		crowds = []int{1, 4}
	}
	for _, k := range crowds {
		b, err := backend.New(suite.S128)
		if err != nil {
			return nil, err
		}
		if _, _, err := b.AddPolicy(attr.MustParse("position=='staff'"),
			attr.MustParse("type=='device'"), []string{"use"}); err != nil {
			return nil, err
		}
		net := netsim.New(netsim.DefaultWiFi(), int64(k))

		var subjects []*core.Subject
		var subjNodes []netsim.NodeID
		for i := 0; i < k; i++ {
			sid, _, err := b.RegisterSubject(fmt.Sprintf("subject-%02d", i), attr.MustSet("position=staff"))
			if err != nil {
				return nil, err
			}
			prov, err := b.ProvisionSubject(sid)
			if err != nil {
				return nil, err
			}
			sep := net.NewEndpoint()
			s := core.NewSubject(prov, wire.V30, PhoneCosts(), core.WithEndpoint(sep))
			subjects = append(subjects, s)
			subjNodes = append(subjNodes, sep.Node())
		}
		for i := 0; i < nObjects; i++ {
			oid, _, err := b.RegisterObject(fmt.Sprintf("object-%02d", i), backend.L2,
				attr.MustSet("type=device"), []string{"use"})
			if err != nil {
				return nil, err
			}
			prov, err := b.ProvisionObject(oid)
			if err != nil {
				return nil, err
			}
			oep := net.NewEndpoint()
			core.NewObject(prov, wire.V30, PiCosts(), core.WithEndpoint(oep))
			on := oep.Node()
			for _, sn := range subjNodes {
				net.Link(sn, on)
			}
		}

		for _, s := range subjects {
			if err := s.Discover(1); err != nil {
				return nil, err
			}
		}
		net.Run(0)

		total := 0
		var last time.Duration
		for _, s := range subjects {
			rs := s.Results()
			total += len(rs)
			for _, r := range rs {
				if r.At > last {
					last = r.At
				}
			}
		}
		if total != k*nObjects {
			return nil, fmt.Errorf("ablation-crowd: %d/%d discoveries", total, k*nObjects)
		}
		res.AddRow(k, total, fmtDur(last), fmtDur(last/time.Duration(k)))
	}
	res.Notes = append(res.Notes,
		"objects serialize their own per-subject handshakes (one CPU each) and all traffic shares the medium; completion grows sub-linearly in k because object CPUs work the crowd in parallel")
	return res, nil
}
