package exp

import (
	"fmt"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/wire"
)

func init() {
	register("ablation-strength", runAblationStrength)
}

// runAblationStrength sweeps the security strength (§IX-B: "we use 128-bit
// due to its fast speed while sufficient strength") through a full simulated
// discovery: per-operation costs are MEASURED on this host at each strength
// and injected into the virtual clock, and message sizes grow with the
// curve's coordinate width. This quantifies what the paper's strength choice
// buys end to end, not just per operation (Fig 6a).
func runAblationStrength(quick bool) (*Result, error) {
	res := &Result{
		ID:      "ablation-strength",
		Title:   "Level 2 discovery (5 objects) vs security strength (measured costs)",
		Paper:   "the paper selects 128-bit after measuring per-operation costs (Fig 6a, §IX-B); this runs the whole discovery at each strength",
		Columns: []string{"strength", "KEXM/SIG B", "completion"},
	}
	iters := 10
	if quick {
		iters = 3
	}
	strengths := suite.Strengths
	if quick {
		strengths = []suite.Strength{suite.S128, suite.S256}
	}
	for _, s := range strengths {
		costs, err := MeasuredCosts(s, iters)
		if err != nil {
			return nil, err
		}
		// Objects are slower than the subject by the paper's hardware ratio.
		objCosts := core.Costs{
			Sign:      costs.Sign * 3,
			Verify:    costs.Verify * 3,
			KexGen:    costs.KexGen * 3,
			KexShared: costs.KexShared * 3,
			HMAC:      costs.HMAC * 3,
			Cipher:    costs.Cipher * 3,
		}

		b, err := backend.New(s)
		if err != nil {
			return nil, err
		}
		if _, _, err := b.AddPolicy(
			mustPred("position=='staff'"), mustPred("type=='device'"), []string{"use"}); err != nil {
			return nil, err
		}
		sid, _, err := b.RegisterSubject("alice", mustAttrs("position=staff"))
		if err != nil {
			return nil, err
		}
		net := netsim.New(netsim.DefaultWiFi(), int64(s))
		sprov, err := b.ProvisionSubject(sid)
		if err != nil {
			return nil, err
		}
		sep := net.NewEndpoint()
		sn := sep.Node()
		subj := core.NewSubject(sprov, wire.V30, costs, core.WithEndpoint(sep))
		const n = 5
		for i := 0; i < n; i++ {
			oid, _, err := b.RegisterObject(fmt.Sprintf("device-%d", i), backend.L2,
				mustAttrs("type=device"), []string{"use"})
			if err != nil {
				return nil, err
			}
			prov, err := b.ProvisionObject(oid)
			if err != nil {
				return nil, err
			}
			oep := net.NewEndpoint()
			core.NewObject(prov, wire.V30, objCosts, core.WithEndpoint(oep))
			net.Link(sn, oep.Node())
		}
		if err := subj.Discover(1); err != nil {
			return nil, err
		}
		net.Run(0)
		results := subj.Results()
		if len(results) != n {
			return nil, fmt.Errorf("ablation-strength %v: %d/%d discoveries", s, len(results), n)
		}
		var last = results[0].At
		for _, r := range results {
			if r.At > last {
				last = r.At
			}
		}
		res.AddRow(s.String(), s.PointSize(), fmtDur(last))
	}
	res.Notes = append(res.Notes,
		"completion grows with strength through both channels: slower ECC operations (Fig 6a) and wider KEXM/SIG fields on the wire; 128-bit remains the knee of the curve, as the paper chose")
	return res, nil
}
