package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one regenerated table or figure, rendered as the rows/series the
// paper reports.
type Result struct {
	ID      string // "table1", "fig6a", ...
	Title   string
	Paper   string // one-line summary of what the paper reports
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells (stringified).
func (r *Result) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the result as a GitHub-flavored Markdown table, for
// pasting into EXPERIMENTS.md or issue reports.
func (r *Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "*paper: %s*\n\n", r.Paper)
	}
	b.WriteString("| " + strings.Join(r.Columns, " | ") + " |\n")
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// Runner produces one experiment result. Quick mode trades accuracy for
// speed (fewer iterations, smaller sweeps) — used by tests.
type Runner func(quick bool) (*Result, error)

// Registry maps experiment IDs to runners.
var Registry = map[string]Runner{}

// register is called from experiment files' init.
func register(id string, r Runner) { Registry[id] = r }

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
