package exp

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/suite"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-crowd", "ablation-groups", "ablation-radio", "ablation-rsa",
		"ablation-strength", "ablation-versions", "comparison",
		"fastpath-handshake", "fastpath-provision",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig6g", "fig6h",
		"mesh-throughput", "msgsize", "propagation", "table1",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registered experiments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered experiments = %v, want %v", got, want)
		}
	}
}

func TestCalibratedCostsMatchPaper(t *testing.T) {
	// Fig 6b anchor points at 128-bit.
	phone, pi := PhoneCosts(), PiCosts()
	l1 := SubjectComputeLevel1(phone)
	if l1 != 5100*time.Microsecond {
		t.Errorf("L1 subject compute = %v, want 5.1 ms", l1)
	}
	l23s := SubjectComputeLevel23(phone)
	if l23s < 26*time.Millisecond || l23s > 29*time.Millisecond {
		t.Errorf("L2/3 subject compute = %v, want ≈27.4 ms", l23s)
	}
	l23o := ObjectComputeLevel23(pi)
	if l23o < 74*time.Millisecond || l23o > 83*time.Millisecond {
		t.Errorf("L2/3 object compute = %v, want ≈78.2 ms", l23o)
	}
}

func TestMeasuredCosts(t *testing.T) {
	c, err := MeasuredCosts(suite.S128, 20)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sign <= 0 || c.Verify <= 0 || c.KexGen <= 0 || c.KexShared <= 0 || c.HMAC <= 0 || c.Cipher <= 0 {
		t.Fatalf("non-positive measured cost: %+v", c)
	}
	// Public-key operations cost more than symmetric ones (loose factor —
	// single-digit-µs measurements are noisy under CI scheduling).
	if c.Sign < 2*c.HMAC {
		t.Errorf("sign (%v) should be well above HMAC (%v)", c.Sign, c.HMAC)
	}
}

func TestDeployBuildsRequestedTopology(t *testing.T) {
	d, err := Deploy(DeployConfig{
		Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
		HopOf:  []int{1, 2, 3, 1},
		Fellow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantHops := []int{1, 2, 3, 1}
	for i, n := range d.ObjNode {
		if got := d.Net.HopDistance(d.SubjNode, n); got != wantHops[i] {
			t.Errorf("object %d at %d hops, want %d", i, got, wantHops[i])
		}
	}
	res, err := d.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("discovered %d, want 4", len(res))
	}
}

func TestTable1Experiment(t *testing.T) {
	r, err := runTable1(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Argus add-subject cell must be 1, ID-ACL must be N.
	if !strings.Contains(r.Rows[2][3], "= 1") {
		t.Errorf("Argus add-subject = %q", r.Rows[2][3])
	}
	if !strings.Contains(r.Rows[0][3], "= 1000") {
		t.Errorf("ID-ACL add-subject = %q", r.Rows[0][3])
	}
}

func TestMsgSizeExperiment(t *testing.T) {
	r, err := runMsgSize(true)
	if err != nil {
		t.Fatal(err)
	}
	get := func(level, msg string) int {
		for _, row := range r.Rows {
			if row[0] == level && row[1] == msg {
				v, _ := strconv.Atoi(row[2])
				return v
			}
		}
		t.Fatalf("row %s/%s missing", level, msg)
		return 0
	}
	// §IX-A shape: measured sizes within 15% of the paper's accounting
	// (framing and CBC padding explain the delta).
	checks := []struct {
		level, msg string
		paper      int
	}{
		{"L1", "QUE1", 28}, {"L1", "RES1", 200},
		{"L2/3", "RES1", 772}, {"L2/3", "QUE2", 1008}, {"L2/3", "RES2", 280}, {"L2/3", "total", 2088},
	}
	for _, c := range checks {
		got := get(c.level, c.msg)
		lo, hi := c.paper*70/100, c.paper*140/100
		if got < lo || got > hi {
			t.Errorf("%s %s = %d B, paper %d B (outside [%d,%d])", c.level, c.msg, got, c.paper, lo, hi)
		}
	}
	// Level 2/3 exchange is an order of magnitude heavier than Level 1.
	if get("L2/3", "total") < 5*get("L1", "total") {
		t.Error("L2/3 total should far exceed L1 total")
	}
}

func TestFig6bExperiment(t *testing.T) {
	r, err := runFig6b(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func parseDur(t *testing.T, s string) time.Duration {
	t.Helper()
	fields := strings.Fields(s)
	if len(fields) != 2 && s != "0" {
		t.Fatalf("bad duration cell %q", s)
	}
	if s == "0" {
		return 0
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("bad duration cell %q", s)
	}
	switch fields[1] {
	case "µs":
		return time.Duration(v * float64(time.Microsecond))
	case "ms":
		return time.Duration(v * float64(time.Millisecond))
	case "s":
		return time.Duration(v * float64(time.Second))
	}
	t.Fatalf("bad unit in %q", s)
	return 0
}

func TestFig6eShape(t *testing.T) {
	r, err := runFig6e(true)
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode: rows for 5 and 20 objects.
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		l1 := parseDur(t, row[1])
		l2 := parseDur(t, row[2])
		l3 := parseDur(t, row[3])
		// L1 is the cheapest (2-way vs 4-way).
		if l1 >= l2 {
			t.Errorf("n=%s: L1 (%v) not cheaper than L2 (%v)", row[0], l1, l2)
		}
		// L2 and L3 overlap (indistinguishable cost): within 2%.
		diff := float64(absDur(l2 - l3))
		if diff/float64(l2) > 0.02 {
			t.Errorf("n=%s: L2/L3 curves diverge: %v vs %v", row[0], l2, l3)
		}
	}
	// Time grows with object count.
	if parseDur(t, r.Rows[0][2]) >= parseDur(t, r.Rows[1][2]) {
		t.Error("discovery time does not grow with object count")
	}
	// 20-object headline numbers within 2x of the paper.
	l1 := parseDur(t, r.Rows[1][1])
	l2 := parseDur(t, r.Rows[1][2])
	if l1 < 125*time.Millisecond || l1 > 500*time.Millisecond {
		t.Errorf("20-object L1 = %v, paper 0.25 s (want within 2x)", l1)
	}
	if l2 < 315*time.Millisecond || l2 > 1260*time.Millisecond {
		t.Errorf("20-object L2 = %v, paper 0.63 s (want within 2x)", l2)
	}
}

func TestFig6fShape(t *testing.T) {
	r, err := runFig6f(true)
	if err != nil {
		t.Fatal(err)
	}
	share := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "%"), 64)
		if err != nil {
			t.Fatalf("bad share %q", row[4])
		}
		return v
	}
	// L1 is transmission-dominated; L2/3 much less so (Fig 6f: 89% vs 45%).
	if share(r.Rows[0]) <= share(r.Rows[1]) {
		t.Errorf("L1 transmission share (%v%%) should exceed L2's (%v%%)", share(r.Rows[0]), share(r.Rows[1]))
	}
	if share(r.Rows[0]) < 75 {
		t.Errorf("L1 transmission share = %v%%, paper ≈89%%", share(r.Rows[0]))
	}
	// One L2/3 discovery lands near the paper's 0.32 s.
	total := parseDur(t, r.Rows[1][1])
	if total < 160*time.Millisecond || total > 640*time.Millisecond {
		t.Errorf("single L2 discovery = %v, paper 0.32 s (want within 2x)", total)
	}
}

func TestFig6gShape(t *testing.T) {
	r, err := runFig6g(true)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[len(r.Rows)-1] // 20 objects
	l1 := parseDur(t, row[1])
	l2 := parseDur(t, row[2])
	if l1 >= l2 {
		t.Error("multi-hop L1 not cheaper than L2")
	}
	// Paper: 0.72 s and 1.15 s; accept within 2x.
	if l1 < 360*time.Millisecond/2 || l1 > 1440*time.Millisecond {
		t.Errorf("multi-hop L1 = %v, paper 0.72 s", l1)
	}
	if l2 < 575*time.Millisecond/2 || l2 > 2300*time.Millisecond {
		t.Errorf("multi-hop L2 = %v, paper 1.15 s", l2)
	}
}

func TestFig6hShape(t *testing.T) {
	r, err := runFig6h(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Latency grows with hop count for every level.
	for col := 1; col <= 3; col++ {
		prev := time.Duration(0)
		for _, row := range r.Rows {
			cur := parseDur(t, row[col])
			if cur <= prev {
				t.Errorf("column %d not increasing with hops: %v after %v", col, cur, prev)
			}
			prev = cur
		}
	}
	// Roughly linear: 4-hop ≤ ~6x 1-hop for L1.
	h1 := parseDur(t, r.Rows[0][1])
	h4 := parseDur(t, r.Rows[3][1])
	if float64(h4)/float64(h1) > 6 {
		t.Errorf("L1 hop scaling %v → %v superlinear", h1, h4)
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		ID: "x", Title: "T", Paper: "P",
		Columns: []string{"a", "bb"},
		Notes:   []string{"n1"},
	}
	r.AddRow(1, "v")
	r.AddRow(2.5, core.L2.String())
	out := r.String()
	for _, want := range []string{"== x — T ==", "paper: P", "a", "bb", "2.50", "Level 2", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered result missing %q:\n%s", want, out)
		}
	}
}

func TestPropagationExperiment(t *testing.T) {
	r, err := runPropagation(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Notifications equal N; propagation time grows with N.
	if r.Rows[0][1] != "5" || r.Rows[1][1] != "20" {
		t.Fatalf("notification counts = %v, %v", r.Rows[0][1], r.Rows[1][1])
	}
	if parseDur(t, r.Rows[0][2]) >= parseDur(t, r.Rows[1][2]) {
		t.Error("propagation time does not grow with N")
	}
}

func TestAblationVersionsExperiment(t *testing.T) {
	r, err := runAblationVersions(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	que2 := func(i int) int {
		v, err := strconv.Atoi(r.Rows[i][2])
		if err != nil {
			t.Fatalf("row %d QUE2 = %q", i, r.Rows[i][2])
		}
		return v
	}
	// v2.0: the fellow's QUE2 (row 2) is ~32 B longer than the plain
	// subject's (row 1) — the leak. Allow ±2 B for X.509 DER variance.
	delta := que2(2) - que2(1)
	if delta < 30 || delta > 36 {
		t.Errorf("v2.0 QUE2 delta = %d B, want ≈32+2 (MAC + length prefix)", delta)
	}
	// v3.0 rows (3 and 4) agree within DER variance.
	d30 := que2(4) - que2(3)
	if d30 < -2 || d30 > 2 {
		t.Errorf("v3.0 QUE2 lengths differ by %d B", d30)
	}
	// Outcomes: v2.0 plain subject fails, v3.0 plain subject succeeds as L2.
	if r.Rows[1][4] != "no discovery" {
		t.Errorf("v2.0 plain outcome = %q", r.Rows[1][4])
	}
	if r.Rows[3][4] != "discovered as Level 2" {
		t.Errorf("v3.0 plain outcome = %q", r.Rows[3][4])
	}
	if r.Rows[4][4] != "discovered as Level 3" {
		t.Errorf("v3.0 fellow outcome = %q", r.Rows[4][4])
	}
}

func TestAblationGroupsExperiment(t *testing.T) {
	r, err := runAblationGroups(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Time grows with group count (linear rotation).
	if parseDur(t, r.Rows[0][3]) >= parseDur(t, r.Rows[1][3]) {
		t.Error("DiscoverAll time does not grow with group count")
	}
}

func TestResultMarkdown(t *testing.T) {
	r := &Result{ID: "x", Title: "T", Paper: "P", Columns: []string{"a", "b"}, Notes: []string{"n"}}
	r.AddRow(1, "v")
	md := r.Markdown()
	for _, want := range []string{"### x — T", "*paper: P*", "| a | b |", "| --- | --- |", "| 1 | v |", "> n"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestMeasuredExperimentsQuick runs the experiments that execute real
// pairing cryptography, in quick mode. Skipped under -short.
func TestMeasuredExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("pairing-heavy experiments skipped in -short mode")
	}
	// Fig 6a: measured ECDSA/ECDH sweep.
	r, err := runFig6a(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("fig6a rows = %d", len(r.Rows))
	}

	// Fig 6c: ABE decryption, 2 attribute counts; time grows with attributes.
	r, err = runFig6c(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("fig6c rows = %d", len(r.Rows))
	}
	if parseDur(t, r.Rows[0][1]) >= parseDur(t, r.Rows[1][1]) {
		t.Error("ABE decryption not increasing with attribute count")
	}

	// Fig 6d: PBC pairing ≫ Argus's two HMACs.
	r, err = runFig6d(true)
	if err != nil {
		t.Fatal(err)
	}
	pairTime := parseDur(t, r.Rows[0][2])
	argusTime := parseDur(t, r.Rows[2][2])
	if pairTime < 100*argusTime {
		t.Errorf("pairing (%v) not ≫ Argus increment (%v)", pairTime, argusTime)
	}

	// RSA ablation: signing slower than ECDSA.
	r, err = runAblationRSA(true)
	if err != nil {
		t.Fatal(err)
	}
	if parseDur(t, r.Rows[1][1]) <= parseDur(t, r.Rows[0][1]) {
		t.Error("RSA signing not slower than ECDSA")
	}

	// Comparison: Argus beats both baselines end to end.
	r, err = runComparison(true)
	if err != nil {
		t.Fatal(err)
	}
	argusL2 := parseDur(t, r.Rows[0][3])
	abeT := parseDur(t, r.Rows[2][3])
	pbcT := parseDur(t, r.Rows[3][3])
	if abeT <= argusL2 {
		t.Errorf("ABE (%v) not slower than Argus (%v)", abeT, argusL2)
	}
	if pbcT <= argusL2 {
		t.Errorf("PBC (%v) not slower than Argus (%v)", pbcT, argusL2)
	}
}

func TestAblationCrowdExperiment(t *testing.T) {
	r, err := runAblationCrowd(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// More subjects → later completion, but sub-linear growth.
	t1 := parseDur(t, r.Rows[0][2])
	t4 := parseDur(t, r.Rows[1][2])
	if t4 <= t1 {
		t.Error("crowding does not increase completion time")
	}
	if t4 > 4*t1 {
		t.Errorf("crowding superlinear: 1 subject %v, 4 subjects %v", t1, t4)
	}
}

func TestAblationRadioExperiment(t *testing.T) {
	r, err := runAblationRadio(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	wifi := parseDur(t, r.Rows[0][2])
	ble := parseDur(t, r.Rows[1][2])
	bridged := parseDur(t, r.Rows[2][2])
	if ble <= wifi {
		t.Error("BLE not slower than WiFi")
	}
	if bridged <= wifi {
		t.Error("bridged path not slower than direct WiFi")
	}
}

func TestAblationStrengthExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("measured sweep skipped in -short mode")
	}
	r, err := runAblationStrength(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// 256-bit strength costs more end to end than 128-bit.
	if parseDur(t, r.Rows[1][2]) <= parseDur(t, r.Rows[0][2]) {
		t.Error("discovery at 256-bit not slower than at 128-bit")
	}
}
