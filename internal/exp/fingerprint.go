package exp

import (
	"fmt"
	"sort"
	"strings"

	"argus/internal/core"
	"argus/internal/netsim"
)

// Fingerprint digests everything a simulation run computes — each
// discovery's node, level, group, virtual completion time and round, plus
// the network's aggregate and per-link statistics — into a deterministic
// string. Entity IDs and key material are excluded: they are freshly random
// per deployment by design. Two fixed-seed runs are behaviorally identical
// iff their fingerprints are byte-identical; the fast-path acceptance tests
// use this to prove the verification cache and parallel provisioning change
// wall-clock time only.
func Fingerprint(res []core.Discovery, stats netsim.Stats, links map[netsim.LinkKey]netsim.LinkStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "discoveries=%d\n", len(res))
	for i, r := range res {
		// %s on the transport address prints the decimal node ID under the
		// netsim adapter — byte-identical to the pre-refactor %d output
		// (locked by the golden fingerprint test).
		fmt.Fprintf(&b, "d%03d node=%s level=%d group=%d at=%d round=%d\n",
			i, r.Node, r.Level, r.Group, int64(r.At), r.Round)
	}
	fmt.Fprintf(&b, "stats=%+v\n", stats)
	keys := make([]netsim.LinkKey, 0, len(links))
	for k := range links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "link %d->%d %+v\n", k.From, k.To, links[k])
	}
	return b.String()
}

// RunFingerprint deploys cfg, performs rounds discovery rounds at TTL 1 and
// returns the run's Fingerprint.
func RunFingerprint(cfg DeployConfig, rounds int) (string, error) {
	d, err := Deploy(cfg)
	if err != nil {
		return "", err
	}
	for i := 0; i < rounds; i++ {
		if _, err := d.Run(1); err != nil {
			return "", err
		}
	}
	return Fingerprint(d.Subject.Results(), d.Net.Stats(), d.Net.LinkStats()), nil
}
