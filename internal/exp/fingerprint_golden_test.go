package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/wire"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/fingerprints.golden")

// goldenConfigs spans the deployment space the transport refactor must not
// perturb: levels, versions, multi-hop rings, fault injection with retry, and
// fellow runs. Each entry's Fingerprint is pinned in testdata so that the
// netsim adapter provably replays the exact event sequence of the direct
// engine↔simulator coupling it replaced.
func goldenConfigs() map[string]DeployConfig {
	return map[string]DeployConfig{
		"l1-uniform": {
			Levels: uniformLevels(backend.L1, 8),
			Seed:   7,
		},
		"l2-uniform": {
			Levels: uniformLevels(backend.L2, 8),
			Seed:   7,
		},
		"l3-fellow": {
			Levels: uniformLevels(backend.L3, 6),
			Seed:   11,
			Fellow: true,
		},
		"mixed-multihop": {
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2, backend.L3, backend.L1, backend.L2, backend.L3, backend.L2, backend.L1},
			HopOf:  paperHops(10),
			Seed:   3,
			Fellow: true,
		},
		"v20-mixed": {
			Levels:  []backend.Level{backend.L2, backend.L3, backend.L2, backend.L3},
			Version: wire.V20,
			Seed:    5,
			Fellow:  true,
		},
		"lossy-retry": {
			Levels: uniformLevels(backend.L2, 6),
			Seed:   13,
			Faults: netsim.FaultModel{Loss: 0.2},
			Retry: core.RetryPolicy{
				Que1Retries: 3,
				Que2Retries: 3,
				Timeout:     250 * time.Millisecond,
				Backoff:     2,
				SessionTTL:  4 * time.Second,
			},
		},
	}
}

// TestFingerprintGolden locks the fixed-seed simulation outputs across the
// transport refactor: run with -update before a behavior-preserving change,
// never after one.
func TestFingerprintGolden(t *testing.T) {
	path := filepath.Join("testdata", "fingerprints.golden")
	got := ""
	names := []string{"l1-uniform", "l2-uniform", "l3-fellow", "mixed-multihop", "v20-mixed", "lossy-retry"}
	cfgs := goldenConfigs()
	for _, name := range names {
		fp, err := RunFingerprint(cfgs[name], 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got += "== " + name + "\n" + fp
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(want) != got {
		t.Fatalf("fixed-seed fingerprints drifted from %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}
