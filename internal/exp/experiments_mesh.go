package exp

import (
	"fmt"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"
)

func init() {
	register("mesh-throughput", runMeshThroughput)
}

// runMeshThroughput measures discovery throughput on the wall clock: the
// concurrent in-memory Mesh transport, one actor goroutine per node, real
// crypto, no virtual-time modeling. Where the simulator experiments (fig6e–h)
// answer "how long would discovery take on the paper's radios", this one
// answers "how many verified discoveries per second does the engine itself
// sustain" — the number that bounds a gateway-class deployment
// (§II-C's thousands-of-devices estimates).
func runMeshThroughput(quick bool) (*Result, error) {
	res := &Result{
		ID:      "mesh-throughput",
		Title:   "Wall-clock discovery throughput on the concurrent Mesh transport",
		Paper:   "extension experiment: the paper reports per-discovery latency on simulated radios (Fig 6e); this measures engine-bound throughput with transport cost removed",
		Columns: []string{"objects", "rounds", "wall time", "discoveries/s"},
	}
	counts := []int{4, 16, 32}
	rounds := 5
	if quick {
		counts = []int{8}
		rounds = 2
	}
	retry := core.RetryPolicy{Que1Retries: 3, Que2Retries: 3,
		Timeout: 100 * time.Millisecond, Backoff: 2, SessionTTL: 5 * time.Second}

	for _, n := range counts {
		b, err := backend.New(suite.S128)
		if err != nil {
			return nil, err
		}
		if _, _, err := b.AddPolicy(mustPred("position=='staff'"),
			mustPred("type=='device'"), []string{"use"}); err != nil {
			return nil, err
		}
		sid, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
		if err != nil {
			return nil, err
		}
		mesh := transport.NewMesh()
		sprov, err := b.ProvisionSubject(sid)
		if err != nil {
			return nil, err
		}
		sep := mesh.Join()
		subj := core.NewSubject(sprov, wire.V30, core.Costs{},
			core.WithEndpoint(sep), core.WithRetry(retry))
		for i := 0; i < n; i++ {
			oid, _, err := b.RegisterObject(fmt.Sprintf("device-%02d", i), backend.L2,
				attr.MustSet("type=device"), []string{"use"})
			if err != nil {
				return nil, err
			}
			prov, err := b.ProvisionObject(oid)
			if err != nil {
				return nil, err
			}
			core.NewObject(prov, wire.V30, core.Costs{},
				core.WithEndpoint(mesh.Join()), core.WithRetry(retry))
		}

		start := time.Now()
		for r := 0; r < rounds; r++ {
			want := (r + 1) * n
			sep.Do(func() { subj.Discover(1) })
			deadline := time.Now().Add(30 * time.Second)
			for len(subj.Results()) < want {
				if time.Now().After(deadline) {
					mesh.Close()
					return nil, fmt.Errorf("mesh-throughput: round %d stalled at %d/%d discoveries",
						r, len(subj.Results()), want)
				}
				time.Sleep(time.Millisecond)
			}
		}
		elapsed := time.Since(start)
		total := rounds * n
		rate := float64(total) / elapsed.Seconds()
		res.AddRow(n, rounds, fmtDur(elapsed), fmt.Sprintf("%.0f", rate))
		mesh.Close()
	}
	res.Notes = append(res.Notes,
		"every discovery is a full 4-way handshake with real ECDSA/ECDH at 128-bit strength; throughput is crypto-bound, and objects answer a round's interleaved handshakes in parallel (one goroutine each), so discoveries/s grows with the cell size until cores saturate")
	return res, nil
}
