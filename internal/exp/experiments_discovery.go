package exp

import (
	"fmt"
	"time"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
)

func init() {
	register("fig6e", runFig6e)
	register("fig6f", runFig6f)
	register("fig6g", runFig6g)
	register("fig6h", runFig6h)
}

// completionTime runs one discovery round and returns (discovery count,
// virtual completion time = arrival of the last verified discovery).
func completionTime(cfg DeployConfig, ttl int) (int, time.Duration, []core.Discovery, error) {
	d, err := Deploy(cfg)
	if err != nil {
		return 0, 0, nil, err
	}
	res, err := d.Run(ttl)
	if err != nil {
		return 0, 0, nil, err
	}
	var last time.Duration
	for _, r := range res {
		if r.At > last {
			last = r.At
		}
	}
	return len(res), last, res, nil
}

// runFig6e regenerates the single-hop discovery-time curves: completion time
// vs number of objects, one curve per level.
func runFig6e(quick bool) (*Result, error) {
	res := &Result{
		ID:      "fig6e",
		Title:   "Single-hop discovery time vs object count (calibrated costs, simulated WiFi)",
		Paper:   "20 objects: 0.25 s at L1, 0.63 s at L2 and L3, with overlapping L2/L3 curves (Fig 6e)",
		Columns: []string{"objects", "L1", "L2", "L3"},
	}
	counts := []int{1, 5, 10, 15, 20}
	if quick {
		counts = []int{5, 20}
	}
	var t20 [4]time.Duration
	for _, n := range counts {
		var times [4]time.Duration
		for _, level := range []backend.Level{backend.L1, backend.L2, backend.L3} {
			got, at, _, err := completionTime(DeployConfig{
				Levels:       uniformLevels(level, n),
				SubjectCosts: PhoneCosts(),
				ObjectCosts:  PiCosts(),
				Fellow:       true,
				Seed:         int64(n),
			}, 1)
			if err != nil {
				return nil, err
			}
			if got != n {
				return nil, fmt.Errorf("fig6e: %v with %d objects discovered %d", level, n, got)
			}
			times[level] = at
		}
		res.AddRow(n, fmtDur(times[1]), fmtDur(times[2]), fmtDur(times[3]))
		if n == 20 {
			t20 = times
		}
	}
	if t20[1] > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"20 objects: L1 %s (paper 0.25 s), L2 %s, L3 %s (paper 0.63 s); L2/L3 delta %s — overlapping curves",
			fmtDur(t20[1]), fmtDur(t20[2]), fmtDur(t20[3]), fmtDur(absDur(t20[2]-t20[3]))))
	}
	return res, nil
}

// runFig6f regenerates the time-composition bars for discovering one
// single-hop object: transmission vs computation share.
func runFig6f(bool) (*Result, error) {
	res := &Result{
		ID:      "fig6f",
		Title:   "Time composition for one single-hop discovery",
		Paper:   "L1: ~89% transmission; L2/3: ~45% transmission (Fig 6f)",
		Columns: []string{"level", "total", "transmission", "computation", "transmission share"},
	}
	for _, level := range []backend.Level{backend.L1, backend.L2, backend.L3} {
		_, total, _, err := completionTime(DeployConfig{
			Levels:       uniformLevels(level, 1),
			SubjectCosts: PhoneCosts(),
			ObjectCosts:  PiCosts(),
			Fellow:       true,
			Seed:         7,
		}, 1)
		if err != nil {
			return nil, err
		}
		// Zero-cost run isolates the transmission component.
		_, trans, _, err := completionTime(DeployConfig{
			Levels: uniformLevels(level, 1),
			Fellow: true,
			Seed:   7,
		}, 1)
		if err != nil {
			return nil, err
		}
		comp := total - trans
		share := float64(trans) / float64(total) * 100
		res.AddRow(level.String(), fmtDur(total), fmtDur(trans), fmtDur(comp),
			fmt.Sprintf("%.0f%%", share))
	}
	return res, nil
}

// runFig6g regenerates the multi-hop discovery-time curves: 20 objects in
// four 5-object rings at hop distances 1–4.
func runFig6g(quick bool) (*Result, error) {
	res := &Result{
		ID:      "fig6g",
		Title:   "Multi-hop discovery time vs object count (rings of 5 at hops 1–4)",
		Paper:   "20 objects: 0.72 s at L1, 1.15 s at L2/L3 (Fig 6g)",
		Columns: []string{"objects", "L1", "L2", "L3"},
	}
	counts := []int{5, 10, 15, 20}
	if quick {
		counts = []int{20}
	}
	for _, n := range counts {
		var times [4]time.Duration
		for _, level := range []backend.Level{backend.L1, backend.L2, backend.L3} {
			got, at, _, err := completionTime(DeployConfig{
				Levels:       uniformLevels(level, n),
				HopOf:        paperHops(n),
				SubjectCosts: PhoneCosts(),
				ObjectCosts:  PiCosts(),
				Fellow:       true,
				Seed:         int64(100 + n),
			}, 4)
			if err != nil {
				return nil, err
			}
			if got != n {
				return nil, fmt.Errorf("fig6g: %v with %d objects discovered %d", level, n, got)
			}
			times[level] = at
		}
		res.AddRow(n, fmtDur(times[1]), fmtDur(times[2]), fmtDur(times[3]))
	}
	res.Notes = append(res.Notes,
		"multi-hop costs more than single-hop at equal object counts (each hop re-acquires the shared medium), but latency stays within interactive range — the paper's conclusion")
	return res, nil
}

// runFig6h regenerates the per-object latency vs hop count series.
func runFig6h(bool) (*Result, error) {
	res := &Result{
		ID:      "fig6h",
		Title:   "Per-object discovery latency vs hop count (average over the ring)",
		Paper:   "L1: 0.13 s at 1 hop → 0.53 s at 4 hops; L2/3: 0.32 s → 0.92 s, linear in hops (Fig 6h)",
		Columns: []string{"hops", "L1", "L2", "L3"},
	}
	perRing := func(level backend.Level) (map[int]time.Duration, error) {
		d, err := Deploy(DeployConfig{
			Levels:       uniformLevels(level, 20),
			HopOf:        paperHops(20),
			SubjectCosts: PhoneCosts(),
			ObjectCosts:  PiCosts(),
			Fellow:       true,
			Seed:         42,
		})
		if err != nil {
			return nil, err
		}
		results, err := d.Run(4)
		if err != nil {
			return nil, err
		}
		sums := make(map[int]time.Duration)
		cnt := make(map[int]int)
		for _, r := range results {
			node, ok := netsim.NodeOf(r.Node)
			if !ok {
				return nil, fmt.Errorf("non-simulator address %q in results", r.Node)
			}
			hop := d.Net.HopDistance(d.SubjNode, node)
			sums[hop] += r.At
			cnt[hop]++
		}
		for h := range sums {
			sums[h] /= time.Duration(cnt[h])
		}
		return sums, nil
	}
	byLevel := make(map[backend.Level]map[int]time.Duration)
	for _, level := range []backend.Level{backend.L1, backend.L2, backend.L3} {
		m, err := perRing(level)
		if err != nil {
			return nil, err
		}
		byLevel[level] = m
	}
	for h := 1; h <= 4; h++ {
		res.AddRow(h, fmtDur(byLevel[backend.L1][h]), fmtDur(byLevel[backend.L2][h]), fmtDur(byLevel[backend.L3][h]))
	}
	res.Notes = append(res.Notes,
		"average completion time per ring grows with hop distance; transmission grows roughly linearly per hop as in the paper")
	return res, nil
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
