package exp

import (
	"fmt"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/wire"
)

// Deployment is a provisioned testbed: a backend, a ground network, one
// subject and a set of objects — the simulation analogue of the paper's
// 1-phone + 20-Pi testbed.
type Deployment struct {
	Backend  *backend.Backend
	Net      *netsim.Network
	Subject  *core.Subject
	SubjNode netsim.NodeID
	Objects  []*core.Object
	ObjNode  []netsim.NodeID
	// relays[i] is the relay chain node at hop distance i+1 from the subject
	// (only populated for multi-hop topologies).
	relays []netsim.NodeID
}

// DeployConfig describes a testbed to build.
type DeployConfig struct {
	// Levels lists the level of each object to create (len = object count).
	Levels []backend.Level
	// HopOf maps object index → hop distance from the subject (1 = direct).
	// Nil means all objects are one hop away.
	HopOf []int
	// Version is the protocol iteration (default v3.0).
	Version wire.Version
	// SubjectCosts/ObjectCosts are the virtual compute tables (zero = free).
	SubjectCosts, ObjectCosts core.Costs
	// Link is the radio model (DefaultWiFi if zero).
	Link netsim.LinkModel
	// Seed fixes the simulator RNG.
	Seed int64
	// FellowOfGroup puts the subject in the covert group served by every
	// Level 3 object (true for fellow runs, false for cover-up runs).
	Fellow bool
	// Registry, when set, instruments the whole deployment (network,
	// backend, subject and every object). Telemetry never perturbs the
	// simulation: a fixed seed produces identical results either way.
	Registry *obs.Registry
	// Tracer, when set, records per-phase discovery spans on the subject.
	Tracer *obs.Tracer
	// Faults, when active, is installed as the network-wide fault model
	// (per-link overrides can be added on d.Net afterwards).
	Faults netsim.FaultModel
	// FaultSeed reseeds the fault RNG independently of Seed when non-zero,
	// so fault schedules can vary while airtime jitter stays fixed.
	FaultSeed int64
	// Retry, when enabled, is installed on the subject and every object so
	// the protocol survives Faults (see core.RetryPolicy).
	Retry core.RetryPolicy
	// Workers bounds the worker pool used for registration and provisioning
	// crypto (key generation, certificate and profile signing). <= 1 runs
	// fully sequentially. Parallelism changes wall-clock time only: the
	// provisioned deployment, and therefore any fixed-seed simulation run on
	// it, is identical for every worker count (see backend batch docs).
	Workers int
	// VerifyCache, when set, is shared by the subject and every object so
	// repeat handshakes skip credential re-verification (core.WithVerifyCache).
	// Like Workers it affects real CPU time only, never virtual-time results.
	// Instrumented under Registry when both are set.
	VerifyCache *cert.VerifyCache
}

// Deploy builds and provisions the testbed. Every object carries a Level 2
// policy face for staff ("use"); Level 3 objects additionally serve a secret
// group with a covert function.
func Deploy(cfg DeployConfig) (*Deployment, error) {
	if cfg.Version == 0 {
		cfg.Version = wire.V30
	}
	if cfg.Link.BytesPerSecond == 0 {
		cfg.Link = netsim.DefaultWiFi()
	}
	b, err := backend.New(suite.S128, backend.WithTelemetry(cfg.Registry))
	if err != nil {
		return nil, err
	}
	if _, _, err := b.AddPolicy(
		attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"),
		[]string{"use"}); err != nil {
		return nil, err
	}
	grp, err := b.Groups.CreateGroup("experiment secret group")
	if err != nil {
		return nil, err
	}

	sid, _, err := b.RegisterSubject("subject-device", attr.MustSet("position=staff"))
	if err != nil {
		return nil, err
	}
	if cfg.Fellow {
		if err := b.AddSubjectToGroup(sid, grp.ID()); err != nil {
			return nil, err
		}
	}

	d := &Deployment{Backend: b, Net: netsim.New(cfg.Link, cfg.Seed)}
	d.Net.Instrument(cfg.Registry)
	if cfg.FaultSeed != 0 {
		d.Net.FaultSeed(cfg.FaultSeed)
	}
	if cfg.Faults.Active() {
		d.Net.SetFaults(cfg.Faults)
	}

	if cfg.VerifyCache != nil && cfg.Registry != nil {
		cfg.VerifyCache.Instrument(cfg.Registry)
	}
	engineOpts := func() []core.Option {
		opts := []core.Option{core.WithVerifyCache(cfg.VerifyCache)}
		if cfg.Registry != nil || cfg.Tracer != nil {
			opts = append(opts, core.WithTelemetry(cfg.Registry, cfg.Tracer))
		}
		if cfg.Retry.Enabled() {
			opts = append(opts, core.WithRetry(cfg.Retry))
		}
		return opts
	}

	sprov, err := b.ProvisionSubject(sid)
	if err != nil {
		return nil, err
	}
	// Node allocation order (subject, relay chain, objects in index order) is
	// load-bearing: node IDs are transport addresses, and fixed-seed
	// fingerprints quote them.
	sep := d.Net.NewEndpoint()
	d.SubjNode = sep.Node()
	d.Subject = core.NewSubject(sprov, cfg.Version, cfg.SubjectCosts,
		append(engineOpts(), core.WithEndpoint(sep))...)

	// Relay chain for multi-hop rings (bridging devices, §II-A).
	maxHop := 1
	for _, h := range cfg.HopOf {
		if h > maxHop {
			maxHop = h
		}
	}
	prev := d.SubjNode
	for i := 1; i < maxHop; i++ {
		r := d.Net.AddNode(nil)
		d.Net.Link(prev, r)
		d.relays = append(d.relays, r)
		prev = r
	}

	// Object bootstrapping in three phases: batch registration (keygen and
	// certificate signing fan out across cfg.Workers), serial covert-service
	// wiring (mutates shared group state), batch provisioning (profile
	// signing fans out). Attachment stays serial so node IDs are assigned in
	// index order — the same ground network the sequential path builds.
	specs := make([]backend.ObjectSpec, len(cfg.Levels))
	for i, level := range cfg.Levels {
		specs[i] = backend.ObjectSpec{
			Name:      fmt.Sprintf("object-%02d", i),
			Level:     level,
			Attrs:     attr.MustSet("type=device,room=R1"),
			Functions: []string{"use"},
		}
	}
	oids, err := b.RegisterObjects(specs, cfg.Workers)
	if err != nil {
		return nil, err
	}
	for i, level := range cfg.Levels {
		if level == backend.L3 {
			if err := b.AddCovertService(oids[i], grp.ID(), []string{"use", "covert-use"}); err != nil {
				return nil, err
			}
		}
	}
	provs, err := b.ProvisionObjects(oids, cfg.Workers)
	if err != nil {
		return nil, err
	}
	for i, prov := range provs {
		oep := d.Net.NewEndpoint()
		node := oep.Node()
		o := core.NewObject(prov, cfg.Version, cfg.ObjectCosts,
			append(engineOpts(), core.WithEndpoint(oep))...)

		hop := 1
		if cfg.HopOf != nil {
			hop = cfg.HopOf[i]
		}
		if hop <= 1 {
			d.Net.Link(d.SubjNode, node)
		} else {
			d.Net.Link(d.relays[hop-2], node)
		}
		d.Objects = append(d.Objects, o)
		d.ObjNode = append(d.ObjNode, node)
	}
	return d, nil
}

// Run performs one discovery round with the given TTL and drains the
// network, returning the discoveries and the completion time (virtual time
// of the last discovery).
func (d *Deployment) Run(ttl int) ([]core.Discovery, error) {
	if err := d.Subject.Discover(ttl); err != nil {
		return nil, err
	}
	d.Net.Run(0)
	return d.Subject.Results(), nil
}

// uniformLevels returns n copies of one level.
func uniformLevels(level backend.Level, n int) []backend.Level {
	out := make([]backend.Level, n)
	for i := range out {
		out[i] = level
	}
	return out
}

// paperHops assigns the paper's multi-hop layout: objects i are 1+i/5 hops
// away (1–5 → 1 hop, 6–10 → 2 hops, ..., Fig 6g).
func paperHops(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1 + i/5
	}
	return out
}

// mustPred and mustAttrs are tiny fixtures for experiment setup.
func mustPred(text string) *attr.Predicate { return attr.MustParse(text) }
func mustAttrs(text string) attr.Set       { return attr.MustSet(text) }
