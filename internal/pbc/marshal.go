package pbc

import (
	"argus/internal/enc"
	"argus/internal/pairing"
)

// Marshal encodes a credential for issuance over the secure bootstrap
// channel.
func (c *Credential) Marshal() []byte {
	w := enc.NewWriter(256)
	w.String16(c.ID)
	w.Raw(c.S1.Marshal())
	w.Raw(c.S2.Marshal())
	return w.Bytes()
}

// UnmarshalCredential decodes and validates a credential (both key halves
// are checked on-curve, and S2 against the order-r subgroup).
func UnmarshalCredential(b []byte) (*Credential, error) {
	r := enc.NewReader(b)
	id := r.String16()
	s1b := r.Raw(pairing.G1MarshalLen)
	s2b := r.Raw(pairing.G2MarshalLen)
	if err := r.Done(); err != nil {
		return nil, err
	}
	s1, err := pairing.UnmarshalG1(s1b)
	if err != nil {
		return nil, err
	}
	s2, err := pairing.UnmarshalG2(s2b)
	if err != nil {
		return nil, err
	}
	return &Credential{ID: id, S1: s1, S2: s2}, nil
}
