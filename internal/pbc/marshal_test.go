package pbc

import "testing"

func TestCredentialMarshalRoundTrip(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	c := auth.Issue("alice@enterprise")
	b := c.Marshal()
	got, err := UnmarshalCredential(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != c.ID || !got.S1.Equal(c.S1) || !got.S2.Equal(c.S2) {
		t.Fatal("round trip mismatch")
	}
	// The deserialized credential still performs the handshake.
	peer := auth.Issue("bob")
	if got.PairwiseKey("bob") != peer.PairwiseKey("alice@enterprise") {
		t.Fatal("deserialized credential derives wrong key")
	}
	if _, err := UnmarshalCredential(b[:20]); err == nil {
		t.Error("truncated credential accepted")
	}
	bad := append([]byte(nil), b...)
	bad[len(bad)-1] ^= 1
	if _, err := UnmarshalCredential(bad); err == nil {
		t.Error("corrupted credential accepted")
	}
}
