package pbc

import (
	"bytes"
	"testing"
)

func TestFellowsDeriveSameKey(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	alice := auth.Issue("alice@enterprise")
	machine := auth.Issue("magazine-machine-07")
	ka := alice.PairwiseKey(machine.ID)
	kb := machine.PairwiseKey(alice.ID)
	if ka != kb {
		t.Fatal("fellows derived different pairwise keys")
	}
	var zero [32]byte
	if ka == zero {
		t.Fatal("degenerate key")
	}
}

func TestNonFellowsDeriveDifferentKeys(t *testing.T) {
	authA, _ := NewAuthority()
	authB, _ := NewAuthority()
	alice := authA.Issue("alice")
	mallory := authB.Issue("bob") // same protocol, different community
	realBob := authA.Issue("bob")

	if alice.PairwiseKey("bob") == mallory.PairwiseKey("alice") {
		t.Fatal("cross-community handshake derived a shared key")
	}
	if alice.PairwiseKey("bob") != realBob.PairwiseKey("alice") {
		t.Fatal("same-community handshake failed")
	}
}

func TestHandshake(t *testing.T) {
	auth, _ := NewAuthority()
	a := auth.Issue("subject-S")
	b := auth.Issue("object-O")
	transcript := []byte("QUE1|RES1|session-nonces")
	if !Handshake(a, b, transcript) {
		t.Fatal("fellow handshake rejected")
	}
	other, _ := NewAuthority()
	c := other.Issue("object-O") // impostor with foreign master secret
	if Handshake(a, c, transcript) {
		t.Fatal("impostor handshake accepted")
	}
}

func TestProveVerify(t *testing.T) {
	auth, _ := NewAuthority()
	a := auth.Issue("x")
	key := a.PairwiseKey("y")
	tr := []byte("transcript")
	mac := Prove(key, tr)
	if !Verify(key, tr, mac) {
		t.Fatal("valid MAC rejected")
	}
	if Verify(key, []byte("other"), mac) {
		t.Fatal("MAC valid for wrong transcript")
	}
	bad := append([]byte(nil), mac...)
	bad[0] ^= 1
	if Verify(key, tr, bad) {
		t.Fatal("tampered MAC accepted")
	}
}

func TestKeyDependsOnBothIdentities(t *testing.T) {
	auth, _ := NewAuthority()
	a := auth.Issue("a")
	k1 := a.PairwiseKey("b")
	k2 := a.PairwiseKey("c")
	if k1 == k2 {
		t.Fatal("pairwise key ignores peer identity")
	}
}

func TestOrderingConvention(t *testing.T) {
	// The G1/G2 slot assignment must be symmetric regardless of who asks.
	auth, _ := NewAuthority()
	zed := auth.Issue("zed") // lexicographically larger
	ann := auth.Issue("ann")
	if zed.PairwiseKey("ann") != ann.PairwiseKey("zed") {
		t.Fatal("slot convention asymmetric")
	}
	if !bytes.Equal(Prove(zed.PairwiseKey("ann"), []byte("t")), Prove(ann.PairwiseKey("zed"), []byte("t"))) {
		t.Fatal("proofs diverge")
	}
}
