// Package pbc implements the pairing-based secret-handshake baseline the
// paper compares Argus Level 3 against (§IX, Fig 6d): Sakai–Ohgishi–Kasahara
// identity-based key agreement as used for secret-community discovery by
// MASHaBLE [14].
//
// A group authority holds a master secret s. Each member of the secret
// community receives identity keys S1 = s·H1(ID) ∈ G1 and S2 = s·H2(ID) ∈ G2.
// Any two members derive the same pairwise key without interaction:
//
//	A computes e(S1_A, H2(ID_B)) = e(H1(ID_A), H2(ID_B))^s
//	B computes e(H1(ID_A), S2_B) = e(H1(ID_A), H2(ID_B))^s
//
// and then prove possession to each other with HMACs — the analogue of
// Argus's MAC_{S,3}/MAC_{O,3}, but costing one pairing per side per peer
// instead of two HMACs. That pairing is the entire cost gap of Fig 6(d).
package pbc

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"math/big"

	"argus/internal/pairing"
)

// Authority is a secret community's key issuer (run by the Argus backend in
// the comparison).
type Authority struct {
	master *big.Int
}

// NewAuthority draws a fresh master secret.
func NewAuthority() (*Authority, error) {
	s, err := pairing.RandomScalar(func(b []byte) error {
		_, err := rand.Read(b)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Authority{master: s}, nil
}

// Credential is one member's identity-based key material.
type Credential struct {
	ID string
	S1 pairing.G1 // s·H1(ID)
	S2 pairing.G2 // s·H2(ID)
}

// Issue creates the credential for an identity.
func (a *Authority) Issue(id string) *Credential {
	return &Credential{
		ID: id,
		S1: hashG1(id).ScalarMul(a.master),
		S2: hashG2(id).ScalarMul(a.master),
	}
}

func hashG1(id string) pairing.G1 { return pairing.HashToG1([]byte("pbc-id1:" + id)) }
func hashG2(id string) pairing.G2 { return pairing.HashToG2([]byte("pbc-id2:" + id)) }

// PairwiseKey derives the shared symmetric key between the credential holder
// and peerID. Cost: ONE PAIRING — this is what Fig 6(d) measures. The
// initiator role selects which identity hashes into which group so both
// sides agree: the lexicographically smaller ID takes the G1 slot.
func (c *Credential) PairwiseKey(peerID string) [32]byte {
	var gt pairing.GT
	if c.ID <= peerID {
		// We are the G1 side: e(s·H1(us), H2(peer)).
		gt = pairing.Pair(c.S1, hashG2(peerID))
	} else {
		// We are the G2 side: e(H1(peer), s·H2(us)).
		gt = pairing.Pair(hashG1(peerID), c.S2)
	}
	return sha256.Sum256(gt.Bytes())
}

// Prove produces the handshake MAC over a session transcript using the
// pairwise key (the PBC analogue of MAC_{S,3}).
func Prove(key [32]byte, transcript []byte) []byte {
	m := hmac.New(sha256.New, key[:])
	m.Write(transcript)
	return m.Sum(nil)
}

// Verify checks a handshake MAC in constant time.
func Verify(key [32]byte, transcript, mac []byte) bool {
	return hmac.Equal(Prove(key, transcript), mac)
}

// Handshake runs the full mutual proof between two credentials over a shared
// transcript and reports whether both sides accept — i.e. whether they belong
// to the same secret community (same authority).
func Handshake(a, b *Credential, transcript []byte) bool {
	ka := a.PairwiseKey(b.ID)
	kb := b.PairwiseKey(a.ID)
	return Verify(kb, transcript, Prove(ka, transcript)) &&
		Verify(ka, transcript, Prove(kb, transcript))
}
