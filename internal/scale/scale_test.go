package scale

import (
	"fmt"
	"testing"

	"argus/internal/acl"
	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/suite"
)

func TestTable1Shape(t *testing.T) {
	p := Typical()
	rows := Table1(p)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	idacl := Of(SchemeIDACL, p)
	abe := Of(SchemeABE, p)
	argus := Of(SchemeArgus, p)

	// Table I structure: add = N / 1 / 1; remove = N / ≈10N / N.
	if idacl.AddSubject != p.N || abe.AddSubject != 1 || argus.AddSubject != 1 {
		t.Fatalf("add-subject overheads: %d %d %d", idacl.AddSubject, abe.AddSubject, argus.AddSubject)
	}
	if idacl.RemoveSubject != p.N || argus.RemoveSubject != p.N {
		t.Fatalf("remove-subject overheads: %d %d", idacl.RemoveSubject, argus.RemoveSubject)
	}
	if abe.RemoveSubject <= argus.RemoveSubject {
		t.Fatalf("ABE removal (%d) should exceed Argus (%d)", abe.RemoveSubject, argus.RemoveSubject)
	}
}

func TestHeadlineRatios(t *testing.T) {
	// "Up to 1000x" vs ID-ACL: N = 10³.
	p := Typical()
	p.N = 1000
	if got := AddSubjectAdvantage(p); got != 1000 {
		t.Fatalf("add-subject advantage = %v, want 1000", got)
	}
	// "Up to 10x" vs ABE: a large category (α ≈ 10⁴, e.g. a whole college)
	// with amplification factors > 1.
	p = Params{N: 1000, Alpha: 8000, Beta: 100, Gamma: 10, XiO: 1.2, XiS: 1.1}
	got := RemoveSubjectAdvantage(p)
	if got < 9 || got > 12 {
		t.Fatalf("remove-subject advantage = %.1f, want ≈10", got)
	}
}

func TestLevel3OverheadSmall(t *testing.T) {
	// §VIII: Level 3 updating overhead is γ−1 — small by construction.
	p := Typical()
	o := Of(SchemeArgus, p)
	if o.RemoveGroupMember != p.Gamma-1 {
		t.Fatalf("group-member removal overhead = %d, want γ−1 = %d", o.RemoveGroupMember, p.Gamma-1)
	}
	if o.RemoveGroupMember >= o.RemoveSubject/10 {
		t.Fatalf("Level 3 overhead (%d) should be far below Level 2's (%d)", o.RemoveGroupMember, o.RemoveSubject)
	}
}

func TestParamsValidate(t *testing.T) {
	good := Typical()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Params{
		{N: 0, Alpha: 1, Gamma: 1, XiO: 1, XiS: 1},
		{N: 1, Alpha: 0, Gamma: 1, XiO: 1, XiS: 1},
		{N: 1, Alpha: 1, Gamma: 1, XiO: 0.5, XiS: 1},
		{N: 1, Alpha: 1, Gamma: 0, XiO: 1, XiS: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", bad)
		}
	}
}

// TestModelMatchesMeasuredArgus cross-checks the analytic Argus row against
// the real backend: revoke a subject who can access N objects and count the
// actual notifications.
func TestModelMatchesMeasuredArgus(t *testing.T) {
	const n = 40
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	sid, rep, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 0 {
		t.Fatalf("measured add-subject overhead = %d, model says 0 ground notifications", rep.Total())
	}
	for i := 0; i < n; i++ {
		b.RegisterObject(fmt.Sprintf("obj-%02d", i), backend.L2,
			attr.MustSet("type=lock"), []string{"open"})
	}
	b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='lock'"), []string{"open"})

	rm, err := b.RevokeSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	model := Of(SchemeArgus, Params{N: n, Alpha: 1, Beta: n, Gamma: 1, XiO: 1, XiS: 1})
	if len(rm.NotifiedObjects) != model.RemoveSubject {
		t.Fatalf("measured removal overhead %d ≠ model %d", len(rm.NotifiedObjects), model.RemoveSubject)
	}
}

// TestModelMatchesMeasuredIDACL cross-checks the ID-ACL row against the acl
// baseline implementation.
func TestModelMatchesMeasuredIDACL(t *testing.T) {
	const n = 40
	s := acl.New()
	objs := make([]string, n)
	for i := range objs {
		objs[i] = fmt.Sprintf("obj-%02d", i)
		s.AddObject(objs[i])
	}
	added, err := s.GrantAccess("alice", objs)
	if err != nil {
		t.Fatal(err)
	}
	model := Of(SchemeIDACL, Params{N: n, Alpha: 1, Beta: n, Gamma: 1, XiO: 1, XiS: 1})
	if added != model.AddSubject {
		t.Fatalf("measured add overhead %d ≠ model %d", added, model.AddSubject)
	}
	if got := len(s.RevokeSubject("alice")); got != model.RemoveSubject {
		t.Fatalf("measured remove overhead %d ≠ model %d", got, model.RemoveSubject)
	}
}

// TestModelMatchesMeasuredLevel3 cross-checks γ−1 against the groups manager.
func TestModelMatchesMeasuredLevel3(t *testing.T) {
	b, _ := backend.New(suite.S128)
	g, _ := b.Groups.CreateGroup("grp")
	const gamma = 8
	var first cert.ID
	for i := 0; i < gamma; i++ {
		id, _, _ := b.RegisterSubject(fmt.Sprintf("member-%d", i), attr.MustSet("position=student"))
		b.AddSubjectToGroup(id, g.ID())
		if i == 0 {
			first = id
		}
	}
	rm, err := b.RevokeSubject(first)
	if err != nil {
		t.Fatal(err)
	}
	model := Of(SchemeArgus, Params{N: 1, Alpha: 1, Beta: 1, Gamma: gamma, XiO: 1, XiS: 1})
	if len(rm.NotifiedSubjects) != model.RemoveGroupMember {
		t.Fatalf("measured rekey count %d ≠ γ−1 = %d", len(rm.NotifiedSubjects), model.RemoveGroupMember)
	}
}
