package scale

import (
	"math"
	"testing"
)

func TestCapacityCalibrateRoundtrip(t *testing.T) {
	// 1000 sessions in 1.25s on 4 cores → 800/s per process at unit
	// efficiency, 720/s at the default 0.9.
	m := Calibrate(1000, 1.25, 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Predict(1), 0.9*800.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Predict(1) = %v, want %v", got, want)
	}
}

func TestCapacityPredictSaturatesAtCores(t *testing.T) {
	m := CapacityModel{WarmSessionSeconds: 0.001, Cores: 2, Efficiency: 1}
	prev := 0.0
	for procs := 1; procs <= 2; procs++ {
		p := m.Predict(procs)
		if p <= prev {
			t.Errorf("Predict(%d) = %v not increasing past %v", procs, p, prev)
		}
		prev = p
	}
	// Beyond the core count, extra processes only time-slice.
	for procs := 3; procs <= 8; procs++ {
		if p := m.Predict(procs); p != prev {
			t.Errorf("Predict(%d) = %v, want flat at %v beyond %d cores", procs, p, prev, m.Cores)
		}
	}
	if m.Predict(0) != m.Predict(1) {
		t.Error("Predict clamps procs to >= 1")
	}
}

func TestCapacityValidate(t *testing.T) {
	bad := []CapacityModel{
		{},
		{WarmSessionSeconds: 0.001, Cores: 0, Efficiency: 0.9},
		{WarmSessionSeconds: 0.001, Cores: 1, Efficiency: 0},
		{WarmSessionSeconds: 0.001, Cores: 1, Efficiency: 1.5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d should not validate: %+v", i, m)
		}
		if m.Predict(1) != 0 {
			t.Errorf("invalid model %d must predict 0", i)
		}
	}
	if m := Calibrate(0, 0, 1); m.Validate() == nil {
		t.Error("calibrating from an empty measurement must not validate")
	}
}
