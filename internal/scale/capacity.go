package scale

import "fmt"

// CapacityModel predicts a fleet's sustainable discovery throughput from
// one measured per-session cost, extending the §VIII analysis from update
// overhead to runtime capacity. The model is deliberately first-order:
// sessions are CPU-bound (the equalized object compute plus the subject's
// verify/derive work), so capacity scales linearly with the processes the
// machine can actually run in parallel and saturates at the core count —
// the honest prediction for loopback scale-out on a small host, and the
// claim BENCH_10 checks against measurement.
type CapacityModel struct {
	// WarmSessionSeconds is the measured wall-clock cost of one warm
	// session at full concurrency (fleet warm wave: seconds / sessions).
	WarmSessionSeconds float64 `json:"warm_session_seconds"`
	// Cores bounds the useful process parallelism.
	Cores int `json:"cores"`
	// Efficiency discounts the open-loop sustainable rate below the warm
	// closed-wave rate: the Poisson arrival process leaves gaps and the SLO
	// gates demand headroom, so the knee sits below raw throughput.
	Efficiency float64 `json:"efficiency"`
}

// Calibrate builds a model from a warm-wave measurement.
func Calibrate(sessions int64, seconds float64, cores int) CapacityModel {
	m := CapacityModel{Cores: cores, Efficiency: 0.9}
	if sessions > 0 && seconds > 0 {
		m.WarmSessionSeconds = seconds / float64(sessions)
	}
	return m
}

// Validate rejects an uncalibrated or degenerate model.
func (m CapacityModel) Validate() error {
	if m.WarmSessionSeconds <= 0 {
		return fmt.Errorf("scale: capacity model not calibrated (warm session seconds %v)", m.WarmSessionSeconds)
	}
	if m.Cores < 1 {
		return fmt.Errorf("scale: capacity model needs >= 1 core, got %d", m.Cores)
	}
	if m.Efficiency <= 0 || m.Efficiency > 1 {
		return fmt.Errorf("scale: capacity efficiency %v outside (0, 1]", m.Efficiency)
	}
	return nil
}

// Predict returns the model's sustainable sessions/s for a fleet sharded
// across `procs` processes: linear in procs up to the core count, flat
// beyond it (extra processes time-slice, they don't add capacity).
func (m CapacityModel) Predict(procs int) float64 {
	if err := m.Validate(); err != nil {
		return 0
	}
	if procs < 1 {
		procs = 1
	}
	parallel := min(procs, m.Cores)
	return float64(parallel) * m.Efficiency / m.WarmSessionSeconds
}
