// Package scale implements the §VIII scalability analysis: the updating
// overhead (number of affected ground entities) of each scheme under every
// churn operation, parameterized by the enterprise scales of §II-C. It
// regenerates Table I and the headline ratios — Argus up to 1000x as
// efficient as ID-based ACL when adding a subject, and up to 10x as efficient
// as ABE when removing one.
package scale

import "fmt"

// Params are the enterprise-scale parameters of §II-C.
type Params struct {
	// N is the number of objects a subject can access (10²–10³).
	N int
	// Alpha is the number of subjects in a subject category (10⁰–10³,
	// possibly ≥10⁴).
	Alpha int
	// Beta is the number of objects in an object category (like Alpha).
	Beta int
	// Gamma is a secret group's size (10⁰–10¹, maybe 10²).
	Gamma int
	// XiO ≥ 1: ABE object-side amplification — re-encrypting every ciphertext
	// whose policy contains a revoked attribute touches more objects than the
	// subject could access.
	XiO float64
	// XiS ≥ 1: ABE subject-side amplification — re-keying an attribute
	// touches more subjects than the revoked subject's category.
	XiS float64
}

// Typical returns the paper's mid-range operating point.
func Typical() Params {
	return Params{N: 500, Alpha: 500, Beta: 100, Gamma: 10, XiO: 1.5, XiS: 1.5}
}

// Validate rejects out-of-model parameters.
func (p Params) Validate() error {
	if p.N < 1 || p.Alpha < 1 || p.Beta < 0 || p.Gamma < 1 {
		return fmt.Errorf("scale: non-positive scale parameter: %+v", p)
	}
	if p.XiO < 1 || p.XiS < 1 {
		return fmt.Errorf("scale: ξ factors must be ≥ 1: %+v", p)
	}
	return nil
}

// Overhead is the updating overhead (affected subjects + objects) of the
// churn operations analyzed in §VIII.
type Overhead struct {
	AddSubject    int
	RemoveSubject int
	AddObject     int
	RemoveObject  int
	AddPolicy     int
	RemovePolicy  int
	// RemoveGroupMember is the Level 3 operation: γ−1 re-keyed fellows.
	RemoveGroupMember int
}

// Scheme identifies a compared scheme.
type Scheme string

// The three Table I schemes.
const (
	SchemeIDACL Scheme = "ID-based ACL"
	SchemeABE   Scheme = "ABE"
	SchemeArgus Scheme = "Argus"
)

// Of returns the analytic overhead of a scheme at the given scales.
func Of(s Scheme, p Params) Overhead {
	switch s {
	case SchemeIDACL:
		// Every object enumerates identities: both adding and removing a
		// subject touch all N objects she can access.
		return Overhead{
			AddSubject:        p.N,
			RemoveSubject:     p.N,
			AddObject:         1,
			RemoveObject:      1,
			AddPolicy:         p.Beta,
			RemovePolicy:      p.Beta,
			RemoveGroupMember: p.Gamma - 1,
		}
	case SchemeABE:
		// A newcomer just fetches keys (1). Revocation is attribute-level
		// and global: re-encrypt ξo·N ciphertexts and re-key ξs·(α−1)
		// remaining category members.
		return Overhead{
			AddSubject:        1,
			RemoveSubject:     int(p.XiO*float64(p.N) + p.XiS*float64(p.Alpha-1) + 0.5),
			AddObject:         1,
			RemoveObject:      1,
			AddPolicy:         p.Beta,
			RemovePolicy:      p.Beta,
			RemoveGroupMember: p.Gamma - 1,
		}
	case SchemeArgus:
		// Attribute-based ACLs: a newcomer presents her PROF (overhead 1 at
		// the backend, nothing on the ground); revocation notifies the N
		// objects to blacklist her ID.
		return Overhead{
			AddSubject:        1,
			RemoveSubject:     p.N,
			AddObject:         1,
			RemoveObject:      1,
			AddPolicy:         p.Beta,
			RemovePolicy:      p.Beta,
			RemoveGroupMember: p.Gamma - 1,
		}
	}
	panic("scale: unknown scheme " + string(s))
}

// Row is one Table I line.
type Row struct {
	Scheme        Scheme
	AddSubject    string
	RemoveSubject string
	// AddValue and RemoveValue are the numeric overheads behind the
	// rendered cells (for plotting and assertions).
	AddValue    int
	RemoveValue int
}

// Table1 renders the paper's Table I (symbolically and numerically at p).
func Table1(p Params) []Row {
	mk := func(s Scheme, addSym, rmSym string) Row {
		o := Of(s, p)
		return Row{
			Scheme:        s,
			AddSubject:    fmt.Sprintf("%s = %d", addSym, o.AddSubject),
			RemoveSubject: fmt.Sprintf("%s = %d", rmSym, o.RemoveSubject),
			AddValue:      o.AddSubject,
			RemoveValue:   o.RemoveSubject,
		}
	}
	return []Row{
		mk(SchemeIDACL, "N", "N"),
		mk(SchemeABE, "1", "ξo·N + ξs·(α−1)"),
		mk(SchemeArgus, "1", "N"),
	}
}

// AddSubjectAdvantage returns the Argus-vs-ID-ACL ratio for adding a subject
// (up to 1000x when N reaches 10³).
func AddSubjectAdvantage(p Params) float64 {
	return float64(Of(SchemeIDACL, p).AddSubject) / float64(Of(SchemeArgus, p).AddSubject)
}

// RemoveSubjectAdvantage returns the Argus-vs-ABE ratio for removing a
// subject (≈10x when ξ factors exceed 1 or α is large).
func RemoveSubjectAdvantage(p Params) float64 {
	return float64(Of(SchemeABE, p).RemoveSubject) / float64(Of(SchemeArgus, p).RemoveSubject)
}
