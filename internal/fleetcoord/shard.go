// Package fleetcoord scales the load harness past one OS process: a
// coordinator shards a fleet of discovery engines across N child processes
// speaking real UDP loopback between them, scrapes each child's obs
// endpoint, and folds the per-process snapshot diffs into one fleet-wide
// SLO verdict — the same evaluation path (load.SnapshotReport + SLO gates)
// the in-process harness uses, now fed by a merged snapshot.
//
// Topology: every cell's objects live on process cell%N and its subjects on
// process (cell+1)%N, so with N >= 2 every single handshake crosses a
// process boundary. Trust chains through one shared enterprise: the
// coordinator registers the whole population (into a snapshot file or a
// live argus-backend), and each shard provisions its own entities from that
// source, exactly like a standalone argus-node.
//
// The child protocol is deliberately dumb — readiness lines on stdout, a
// command verb per line on stdin — because the interesting synchronization
// (which addresses exist, when a trial's window closed) must survive
// process crashes, and a text protocol makes the e2e test's kill-a-child
// assertions straightforward.
package fleetcoord

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"argus/internal/backend"
	"argus/internal/backendclient"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/obs"
	"argus/internal/transport"
	"argus/internal/transport/transporttest"
	"argus/internal/wire"
)

// SubjectName / ObjectName are the fleet's deterministic entity names; both
// sides derive cert IDs from them (cert.IDFromName), so the coordinator and
// the shards never exchange identities explicitly.
func SubjectName(cell, k int) string { return fmt.Sprintf("fc-s-%d-%d", cell, k) }
func ObjectName(cell, k int) string  { return fmt.Sprintf("fc-o-%d-%d", cell, k) }

// cellObjOwner / cellSubjOwner place a cell's two roles on different
// processes (for procs >= 2), so every handshake crosses the process
// boundary — the whole point of the exercise.
func cellObjOwner(cell, procs int) int  { return cell % procs }
func cellSubjOwner(cell, procs int) int { return (cell + 1) % procs }

// shardRetry is the engines' retry policy on loopback UDP: generous enough
// for a loaded single-core host, short enough that a saturated trial's
// expiries land inside its own measurement window.
func shardRetry() core.RetryPolicy {
	return core.RetryPolicy{Que1Retries: 3, Que2Retries: 3, Timeout: 250 * time.Millisecond, Backoff: 2, SessionTTL: 2 * time.Second}
}

// shardConfig is ShardMain's parsed flag set.
type shardConfig struct {
	index, procs                   int
	cells, subjPerCell, objPerCell int
	snapshot                       string
	backendURL, tenant, authKey    string
	addrFile                       string
	seed                           int64
}

// ShardMain is the child-process entry point, invoked by `argus-node -role
// shard -- <flags>` (and by the test trampoline). It owns its flags and its
// obs plane; args is everything after the `--`.
func ShardMain(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ContinueOnError)
	var cfg shardConfig
	fs.IntVar(&cfg.index, "shard-index", 0, "this shard's index in [0, shards)")
	fs.IntVar(&cfg.procs, "shards", 1, "total shard count")
	fs.IntVar(&cfg.cells, "cells", 1, "fleet cell count")
	fs.IntVar(&cfg.subjPerCell, "subjects-per-cell", 1, "subjects per cell")
	fs.IntVar(&cfg.objPerCell, "objects-per-cell", 1, "objects per cell")
	fs.StringVar(&cfg.snapshot, "snapshot", "", "backend snapshot file (the coordinator wrote it)")
	fs.StringVar(&cfg.backendURL, "backend", "", "argus-backend base URL instead of -snapshot")
	fs.StringVar(&cfg.tenant, "tenant", "demo", "tenant namespace on -backend")
	fs.StringVar(&cfg.authKey, "auth-key", "", "tenant auth key for -backend")
	fs.StringVar(&cfg.addrFile, "addr-file", "", "object address file the coordinator writes once all shards are ready")
	fs.Int64Var(&cfg.seed, "seed", 1, "open-loop arrival schedule seed (mixed with the shard index)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.procs < 1 || cfg.index < 0 || cfg.index >= cfg.procs {
		return fmt.Errorf("shard: index %d outside [0, %d)", cfg.index, cfg.procs)
	}
	if cfg.addrFile == "" {
		return fmt.Errorf("shard: -addr-file is required")
	}
	return serveShard(cfg, os.Stdin, os.Stdout)
}

// shardSlot mirrors the in-process harness's subjectSlot: the per-round
// expectation ledger one subject engine is held to.
type shardSlot struct {
	eng *core.Subject
	ep  transport.Endpoint

	mu        sync.Mutex
	round     int
	expected  int
	got       int
	busy      bool
	lostRound bool
}

// shard is one child process's fleet slice.
type shard struct {
	cfg shardConfig
	reg *obs.Registry
	rng *rand.Rand
	out io.Writer

	subjects []*shardSlot
	objects  []*core.Object
	eps      []*transport.UDPEndpoint

	roundsArmed, roundsDone atomic.Int64

	armedC, completionsC *obs.Counter
	lostC, skippedC      *obs.Counter
	inflightG, peakG     *obs.Gauge
	unexpectedC          *obs.Counter
}

// serveShard builds this shard's slice of the fleet and runs the stdin
// command loop until "quit" or EOF.
func serveShard(cfg shardConfig, in io.Reader, out io.Writer) error {
	reg := obs.NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("shard: obs listen: %w", err)
	}
	srv := &http.Server{Handler: obs.NewMux(reg, nil)}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(out, "obs listening addr=%s\n", ln.Addr())

	svc, err := shardService(cfg)
	if err != nil {
		return err
	}
	sh := &shard{
		cfg: cfg, reg: reg, out: out,
		rng: rand.New(rand.NewSource(cfg.seed*1023 + int64(cfg.index))),
	}
	sh.inflightG = reg.Gauge(obs.MLoadInflight, "armed discovery sessions not yet completed")
	sh.peakG = reg.Gauge(obs.MLoadPeakInflight, "high-water mark of inflight sessions")
	sh.armedC = reg.Counter(obs.MLoadRoundsArmed, "sessions armed (expected completions)")
	sh.completionsC = reg.Counter(obs.MLoadCompletions, "sessions completed")
	sh.lostC = reg.Counter(obs.MLoadLost, "sessions reaped at the drain deadline")
	sh.unexpectedC = reg.Counter(obs.MLoadUnexpected, "completions that violated the expectation ledger")
	sh.skippedC = reg.Counter(obs.MLoadSkipped, "open-loop arrivals that found every subject busy")
	defer sh.close()

	if err := sh.buildObjects(svc); err != nil {
		return err
	}
	fmt.Fprintf(out, "shard ready objs=%d\n", len(sh.objects))

	addrs, err := awaitAddrFile(cfg.addrFile, 60*time.Second)
	if err != nil {
		return err
	}
	if err := sh.buildSubjects(svc, addrs); err != nil {
		return err
	}
	fmt.Fprintf(out, "shard armed subjects=%d\n", len(sh.subjects))

	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "sweep":
			sessions, seconds := sh.sweep()
			fmt.Fprintf(out, "sweep done sessions=%d seconds=%.4f\n", sessions, seconds)
		case "trial":
			if len(fields) != 3 {
				return fmt.Errorf("shard: bad trial command %q", sc.Text())
			}
			rate, err1 := strconv.ParseFloat(fields[1], 64)
			durMS, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("shard: bad trial command %q", sc.Text())
			}
			sh.openLoop(rate, time.Duration(durMS)*time.Millisecond)
			sh.quiesce()
			fmt.Fprintf(out, "trial done\n")
		case "quit":
			return nil
		default:
			return fmt.Errorf("shard: unknown command %q", fields[0])
		}
	}
	return sc.Err()
}

// shardService picks the shard's credential source, mirroring argus-node.
func shardService(cfg shardConfig) (backend.Service, error) {
	if cfg.backendURL != "" {
		return backendclient.New(cfg.backendURL, cfg.tenant, cfg.authKey), nil
	}
	blob, err := os.ReadFile(cfg.snapshot)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	b, err := backend.Restore(blob)
	if err != nil {
		return nil, fmt.Errorf("shard: restore: %w", err)
	}
	return backend.NewLocal(b), nil
}

// buildObjects hosts every object this shard owns, one UDP socket per
// engine (a socket is a node identity), announcing each address so the
// coordinator can hand them to the subject-owning shards.
func (sh *shard) buildObjects(svc backend.Service) error {
	ctx := context.Background()
	for c := 0; c < sh.cfg.cells; c++ {
		if cellObjOwner(c, sh.cfg.procs) != sh.cfg.index {
			continue
		}
		vcache := cert.NewVerifyCache(1 << 14)
		vcache.Instrument(sh.reg)
		for k := 0; k < sh.cfg.objPerCell; k++ {
			name := ObjectName(c, k)
			prov, err := svc.ProvisionObject(ctx, cert.IDFromName(name))
			if err != nil {
				return fmt.Errorf("shard: provision %s: %w", name, err)
			}
			ep, err := transport.ListenUDP(transport.UDPConfig{Listen: "127.0.0.1:0", Registry: sh.reg})
			if err != nil {
				return err
			}
			sh.eps = append(sh.eps, ep)
			obj := core.NewObject(prov, wire.V30, core.Costs{},
				core.WithEndpoint(ep),
				core.WithRetry(shardRetry()),
				core.WithTelemetry(sh.reg, nil),
				core.WithVerifyCache(vcache))
			sh.objects = append(sh.objects, obj)
			fmt.Fprintf(sh.out, "shardobj cell=%d idx=%d addr=%s\n", c, k, ep.Addr())
		}
	}
	return nil
}

// awaitAddrFile polls for the coordinator's (atomically renamed) address
// file and parses its "cell=<c> idx=<k> addr=<a>" lines.
func awaitAddrFile(path string, timeout time.Duration) (map[[2]int]string, error) {
	var blob []byte
	ok := transporttest.Poll(timeout, 20*time.Millisecond, func() bool {
		b, err := os.ReadFile(path)
		if err != nil {
			return false
		}
		blob = b
		return true
	})
	if !ok {
		return nil, fmt.Errorf("shard: address file %s never appeared", path)
	}
	addrs := map[[2]int]string{}
	for _, line := range strings.Split(string(blob), "\n") {
		if line = strings.TrimSpace(line); line == "" {
			continue
		}
		var c, k int
		var a string
		if _, err := fmt.Sscanf(line, "cell=%d idx=%d addr=%s", &c, &k, &a); err != nil {
			return nil, fmt.Errorf("shard: bad address line %q: %w", line, err)
		}
		addrs[[2]int{c, k}] = a
	}
	return addrs, nil
}

// buildSubjects hosts every subject this shard owns, peered with its own
// cell's objects (which live on another shard — that's the topology).
func (sh *shard) buildSubjects(svc backend.Service, addrs map[[2]int]string) error {
	ctx := context.Background()
	for c := 0; c < sh.cfg.cells; c++ {
		if cellSubjOwner(c, sh.cfg.procs) != sh.cfg.index {
			continue
		}
		var peers []string
		for k := 0; k < sh.cfg.objPerCell; k++ {
			a, ok := addrs[[2]int{c, k}]
			if !ok {
				return fmt.Errorf("shard: no address for cell %d object %d", c, k)
			}
			peers = append(peers, a)
		}
		vcache := cert.NewVerifyCache(1 << 14)
		vcache.Instrument(sh.reg)
		for k := 0; k < sh.cfg.subjPerCell; k++ {
			name := SubjectName(c, k)
			prov, err := svc.ProvisionSubject(ctx, cert.IDFromName(name))
			if err != nil {
				return fmt.Errorf("shard: provision %s: %w", name, err)
			}
			ep, err := transport.ListenUDP(transport.UDPConfig{Listen: "127.0.0.1:0", Peers: peers, Registry: sh.reg})
			if err != nil {
				return err
			}
			sh.eps = append(sh.eps, ep)
			slot := &shardSlot{ep: ep, expected: sh.cfg.objPerCell}
			subj := core.NewSubject(prov, wire.V30, core.Costs{},
				core.WithEndpoint(ep),
				core.WithRetry(shardRetry()),
				core.WithTelemetry(sh.reg, nil),
				core.WithVerifyCache(vcache))
			slot.eng = subj
			subj.OnDiscovery = func(d core.Discovery) { sh.onDiscovery(slot, d) }
			sh.subjects = append(sh.subjects, slot)
		}
	}
	return nil
}

// onDiscovery runs on subject event loops; same ledger rules as the
// in-process harness.
func (sh *shard) onDiscovery(s *shardSlot, d core.Discovery) {
	s.mu.Lock()
	if d.Round != s.round || s.lostRound || s.got >= s.expected {
		s.mu.Unlock()
		sh.unexpectedC.Inc()
		return
	}
	s.got++
	done := s.got == s.expected
	if done {
		s.busy = false
	}
	s.mu.Unlock()
	sh.completionsC.Inc()
	sh.inflightG.Add(-1)
	if done {
		sh.roundsDone.Add(1)
		s.eng.CompleteRound()
	}
}

// arm opens the slot's next round; fire issues the Discover on the engine's
// event loop.
func (sh *shard) arm(s *shardSlot) {
	s.mu.Lock()
	s.round++
	s.got = 0
	s.busy = true
	s.lostRound = false
	s.mu.Unlock()
	sh.roundsArmed.Add(1)
	sh.armedC.Add(int64(s.expected))
	sh.inflightG.Add(int64(s.expected))
	eng := s.eng
	s.ep.Do(func() { _ = eng.Discover(1) })
}

// sweep fires one closed wave — every subject, one round — and waits for it
// to drain; it both warms the caches and measures per-session cost.
func (sh *shard) sweep() (sessions int64, seconds float64) {
	start := time.Now()
	before := sh.roundsDone.Load()
	for _, s := range sh.subjects {
		sh.arm(s)
	}
	target := before + int64(len(sh.subjects))
	if !transporttest.Poll(30*time.Second, 10*time.Millisecond, func() bool {
		return sh.roundsDone.Load() >= target
	}) {
		sh.reap()
	}
	seconds = time.Since(start).Seconds()
	sh.quiesce()
	return int64(len(sh.subjects) * sh.cfg.objPerCell), seconds
}

// openLoop offers `rate` arrivals/s (each arrival arms one subject round)
// for `duration`, with the same deterministic catch-up schedule as the
// in-process driver, then drains the armed tail.
func (sh *shard) openLoop(rate float64, duration time.Duration) {
	if rate <= 0 || len(sh.subjects) == 0 {
		return
	}
	start := time.Now()
	next := 0
	var tNext time.Duration
	for {
		tNext += time.Duration(sh.rng.ExpFloat64() / rate * float64(time.Second))
		if tNext >= duration {
			break
		}
		if wait := tNext - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		fired := false
		for i := 0; i < len(sh.subjects); i++ {
			s := sh.subjects[(next+i)%len(sh.subjects)]
			s.mu.Lock()
			idle := !s.busy
			s.mu.Unlock()
			if !idle {
				continue
			}
			next = (next + i + 1) % len(sh.subjects)
			sh.arm(s)
			fired = true
			break
		}
		if !fired {
			sh.skippedC.Inc()
		}
	}
	// A round whose peer process died can never complete; its subject
	// session expires at the TTL, so the drain deadline only needs to
	// outlive that before reaping the round as lost.
	target := sh.roundsArmed.Load()
	if !transporttest.Poll(shardRetry().SessionTTL+3*time.Second, 10*time.Millisecond, func() bool {
		return sh.roundsDone.Load() >= target
	}) {
		sh.reap()
	}
}

// reap retires every unfinished round, converting its missing completions
// to losses — the same accounting as the in-process harness.
func (sh *shard) reap() {
	for _, s := range sh.subjects {
		s.mu.Lock()
		if s.busy && !s.lostRound {
			missing := s.expected - s.got
			s.lostRound = true
			s.busy = false
			s.mu.Unlock()
			sh.lostC.Add(int64(missing))
			sh.inflightG.Add(int64(-missing))
			sh.roundsDone.Add(1)
			eng := s.eng
			s.ep.Do(func() { eng.CompleteRound() })
			continue
		}
		s.mu.Unlock()
	}
}

// quiesce waits for every engine's session table to empty, so a reaped
// round's expiries land in the window that caused them.
func (sh *shard) quiesce() {
	ttl := shardRetry().SessionTTL
	transporttest.Poll(ttl+3*time.Second, 50*time.Millisecond, func() bool {
		n := 0
		for _, s := range sh.subjects {
			n += s.eng.PendingSessions()
		}
		for _, o := range sh.objects {
			n += o.PendingSessions()
		}
		return n == 0
	})
}

func (sh *shard) close() {
	for _, ep := range sh.eps {
		ep.Close()
	}
}
