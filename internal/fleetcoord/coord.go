package fleetcoord

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/backendclient"
	"argus/internal/load"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport/transporttest"
)

// Config describes the fleet the coordinator shards out.
type Config struct {
	Procs           int
	Cells           int
	SubjectsPerCell int
	ObjectsPerCell  int

	// BinPath + BaseArgs launch one child: exec(BinPath, BaseArgs...,
	// <shard flags>). For argus-node: BaseArgs = ["-role","shard","--"].
	BinPath  string
	BaseArgs []string
	// Env entries are appended to the children's inherited environment
	// (the test trampoline rides on this).
	Env []string

	// Trust source: with BackendURL set the fleet registers into (and the
	// shards provision from) a live argus-backend; otherwise the
	// coordinator provisions a local backend and writes its snapshot to
	// WorkDir for the shards to restore.
	BackendURL, Tenant, AuthKey string

	// WorkDir holds the snapshot and the address file. Required.
	WorkDir string

	// TrialSLO gates each trial window (load.TrialSLO of a profile SLO);
	// MaxSkipFrac bounds the open-loop skip fraction (<=0 = 5%).
	TrialSLO    load.SLO
	MaxSkipFrac float64

	LaunchTimeout time.Duration
	Logf          func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if c.Procs < 1 || c.Cells < 1 || c.SubjectsPerCell < 1 || c.ObjectsPerCell < 1 {
		return c, fmt.Errorf("fleetcoord: non-positive topology: %+v", c)
	}
	if c.BinPath == "" {
		return c, fmt.Errorf("fleetcoord: BinPath is required")
	}
	if c.WorkDir == "" {
		return c, fmt.Errorf("fleetcoord: WorkDir is required")
	}
	if c.LaunchTimeout <= 0 {
		c.LaunchTimeout = 60 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Verdict is one multi-process trial's merged outcome.
type Verdict struct {
	Procs   int        `json:"procs"`
	Offered float64    `json:"offered_sessions_per_second"`
	Trial   load.Trial `json:"trial"`
	// ProcErrors documents children that died during the trial; each one is
	// also folded into Trial.Violations, so a degraded fleet fails loudly
	// instead of passing on the survivors' clean counters.
	ProcErrors []string `json:"proc_errors,omitempty"`
}

// proc is one child process's coordinator-side state. mu guards everything
// the stdout-scanner and Wait goroutines write.
type proc struct {
	index int
	cmd   *exec.Cmd
	stdin io.WriteCloser

	mu        sync.Mutex
	obsAddr   string
	objAddrs  map[[2]int]string
	ready     bool
	armed     bool
	sweeps    int
	trials    int
	sweepSess int64
	sweepSecs float64
	exited    bool
	exitErr   error
}

func (p *proc) state() (ready, armed, exited bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ready, p.armed, p.exited
}

// Coordinator owns the children for one multi-process run.
type Coordinator struct {
	cfg   Config
	procs []*proc

	// Warm sweep measurement across the fleet, for scale-model calibration.
	WarmSessions int64
	WarmSeconds  float64
}

// Launch provisions the enterprise, spawns the shards, distributes the
// object addresses and waits until every shard reports armed.
func Launch(cfg Config) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	snapPath := filepath.Join(cfg.WorkDir, "fleet.snap")
	if err := provisionFleet(cfg, snapPath); err != nil {
		return nil, err
	}
	addrFile := filepath.Join(cfg.WorkDir, "objects.addr")

	co := &Coordinator{cfg: cfg}
	ok := false
	defer func() {
		if !ok {
			co.kill()
		}
	}()
	for i := 0; i < cfg.Procs; i++ {
		args := append(append([]string(nil), cfg.BaseArgs...),
			"-shard-index", strconv.Itoa(i),
			"-shards", strconv.Itoa(cfg.Procs),
			"-cells", strconv.Itoa(cfg.Cells),
			"-subjects-per-cell", strconv.Itoa(cfg.SubjectsPerCell),
			"-objects-per-cell", strconv.Itoa(cfg.ObjectsPerCell),
			"-addr-file", addrFile,
			"-seed", strconv.Itoa(i+1),
		)
		if cfg.BackendURL != "" {
			args = append(args, "-backend", cfg.BackendURL, "-tenant", cfg.Tenant, "-auth-key", cfg.AuthKey)
		} else {
			args = append(args, "-snapshot", snapPath)
		}
		p := &proc{index: i, objAddrs: map[[2]int]string{}}
		p.cmd = exec.Command(cfg.BinPath, args...)
		p.cmd.Env = append(os.Environ(), cfg.Env...)
		p.cmd.Stderr = os.Stderr
		stdout, err := p.cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		p.stdin, err = p.cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		if err := p.cmd.Start(); err != nil {
			return nil, fmt.Errorf("fleetcoord: start shard %d: %w", i, err)
		}
		co.procs = append(co.procs, p)
		go p.scan(stdout, cfg.Logf)
		go func(p *proc) {
			err := p.cmd.Wait()
			p.mu.Lock()
			p.exited, p.exitErr = true, err
			p.mu.Unlock()
		}(p)
	}

	// Readiness barrier 1: every shard has bound its object sockets.
	if err := co.await(cfg.LaunchTimeout, func(p *proc) bool { r, _, _ := p.state(); return r }, "object readiness"); err != nil {
		return nil, err
	}
	// Distribute the union of object addresses, atomically (tmp + rename)
	// so no shard ever reads a torn file.
	var lines []string
	for _, p := range co.procs {
		p.mu.Lock()
		for key, addr := range p.objAddrs {
			lines = append(lines, fmt.Sprintf("cell=%d idx=%d addr=%s", key[0], key[1], addr))
		}
		p.mu.Unlock()
	}
	sort.Strings(lines)
	if len(lines) != cfg.Cells*cfg.ObjectsPerCell {
		return nil, fmt.Errorf("fleetcoord: %d object addresses announced, want %d", len(lines), cfg.Cells*cfg.ObjectsPerCell)
	}
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		return nil, err
	}
	// Readiness barrier 2: every shard has peered its subjects.
	if err := co.await(cfg.LaunchTimeout, func(p *proc) bool { _, a, _ := p.state(); return a }, "subject arming"); err != nil {
		return nil, err
	}
	cfg.Logf("fleetcoord: %d shards armed (%d cells, %d subj + %d obj per cell)",
		cfg.Procs, cfg.Cells, cfg.SubjectsPerCell, cfg.ObjectsPerCell)
	ok = true
	return co, nil
}

// provisionFleet registers the whole population through the Service seam —
// a local backend snapshotted to disk, or a live argus-backend over HTTP.
func provisionFleet(cfg Config, snapPath string) error {
	ctx := context.Background()
	var svc backend.Service
	var local *backend.Backend
	if cfg.BackendURL != "" {
		svc = backendclient.New(cfg.BackendURL, cfg.Tenant, cfg.AuthKey)
	} else {
		b, err := backend.New(suite.S128)
		if err != nil {
			return err
		}
		local, svc = b, backend.NewLocal(b)
	}
	if _, _, err := svc.AddPolicy(ctx,
		attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"),
		[]string{"use"}); err != nil {
		return fmt.Errorf("fleetcoord: policy: %w", err)
	}
	for c := 0; c < cfg.Cells; c++ {
		for k := 0; k < cfg.ObjectsPerCell; k++ {
			if _, _, err := svc.RegisterObject(ctx, ObjectName(c, k), backend.L2,
				attr.MustSet("type=device"), []string{"use"}); err != nil {
				return fmt.Errorf("fleetcoord: register %s: %w", ObjectName(c, k), err)
			}
		}
		for k := 0; k < cfg.SubjectsPerCell; k++ {
			if _, _, err := svc.RegisterSubject(ctx, SubjectName(c, k),
				attr.MustSet("position=staff")); err != nil {
				return fmt.Errorf("fleetcoord: register %s: %w", SubjectName(c, k), err)
			}
		}
	}
	if local != nil {
		if err := os.WriteFile(snapPath, local.Snapshot(), 0o600); err != nil {
			return err
		}
	}
	return nil
}

// scan consumes one child's stdout readiness protocol.
func (p *proc) scan(r io.Reader, logf func(string, ...any)) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		p.mu.Lock()
		switch {
		case strings.HasPrefix(line, "obs listening addr="):
			p.obsAddr = strings.TrimPrefix(line, "obs listening addr=")
		case strings.HasPrefix(line, "shardobj "):
			var c, k int
			var a string
			if _, err := fmt.Sscanf(line, "shardobj cell=%d idx=%d addr=%s", &c, &k, &a); err == nil {
				p.objAddrs[[2]int{c, k}] = a
			}
		case strings.HasPrefix(line, "shard ready"):
			p.ready = true
		case strings.HasPrefix(line, "shard armed"):
			p.armed = true
		case strings.HasPrefix(line, "sweep done"):
			var sess int64
			var secs float64
			if _, err := fmt.Sscanf(line, "sweep done sessions=%d seconds=%f", &sess, &secs); err == nil {
				p.sweepSess, p.sweepSecs = sess, secs
			}
			p.sweeps++
		case strings.HasPrefix(line, "trial done"):
			p.trials++
		}
		p.mu.Unlock()
		logf("fleetcoord: shard %d: %s", p.index, line)
	}
}

// await polls until cond holds for every child, failing fast when any child
// exits before reaching it.
func (co *Coordinator) await(timeout time.Duration, cond func(*proc) bool, what string) error {
	ok := transporttest.Poll(timeout, 20*time.Millisecond, func() bool {
		for _, p := range co.procs {
			if cond(p) {
				continue
			}
			if _, _, exited := p.state(); exited {
				return true // fail fast below
			}
			return false
		}
		return true
	})
	for _, p := range co.procs {
		if cond(p) {
			continue
		}
		p.mu.Lock()
		exited, exitErr := p.exited, p.exitErr
		p.mu.Unlock()
		if exited {
			return fmt.Errorf("fleetcoord: shard %d exited before %s: %v", p.index, what, exitErr)
		}
		if !ok {
			return fmt.Errorf("fleetcoord: shard %d did not reach %s in %s", p.index, what, timeout)
		}
	}
	return nil
}

// live returns the children still running.
func (co *Coordinator) live() []*proc {
	var out []*proc
	for _, p := range co.procs {
		if _, _, exited := p.state(); !exited {
			out = append(out, p)
		}
	}
	return out
}

// subjectsOf counts the subjects a shard owns — the weight its slice of the
// offered rate is proportional to.
func (co *Coordinator) subjectsOf(index int) int {
	n := 0
	for c := 0; c < co.cfg.Cells; c++ {
		if cellSubjOwner(c, co.cfg.Procs) == index {
			n += co.cfg.SubjectsPerCell
		}
	}
	return n
}

// Sweep runs one closed warm wave on every shard and records the fleet-wide
// per-session cost for the scale model.
func (co *Coordinator) Sweep() error {
	live := co.live()
	if len(live) == 0 {
		return fmt.Errorf("fleetcoord: no live shards")
	}
	before := make(map[int]int, len(live))
	for _, p := range live {
		p.mu.Lock()
		before[p.index] = p.sweeps
		p.mu.Unlock()
		if _, err := io.WriteString(p.stdin, "sweep\n"); err != nil {
			return fmt.Errorf("fleetcoord: shard %d: %w", p.index, err)
		}
	}
	if err := co.awaitCount(60*time.Second, live, func(p *proc) int { return p.sweeps }, before, "sweep"); err != nil {
		return err
	}
	co.WarmSessions, co.WarmSeconds = 0, 0
	for _, p := range live {
		p.mu.Lock()
		co.WarmSessions += p.sweepSess
		if p.sweepSecs > co.WarmSeconds {
			// Shards sweep concurrently; the fleet's wall time is the
			// slowest shard's.
			co.WarmSeconds = p.sweepSecs
		}
		p.mu.Unlock()
	}
	return nil
}

// awaitCount waits until each listed child's counter advances past its
// before-value — or the child exits, which is not an error here: the trial
// verdict folds the death in as a violation instead.
func (co *Coordinator) awaitCount(timeout time.Duration, procs []*proc, get func(*proc) int, before map[int]int, what string) error {
	ok := transporttest.Poll(timeout, 20*time.Millisecond, func() bool {
		for _, p := range procs {
			p.mu.Lock()
			done := get(p) > before[p.index]
			exited := p.exited
			p.mu.Unlock()
			if !done && !exited {
				return false
			}
		}
		return true
	})
	if !ok {
		return fmt.Errorf("fleetcoord: %s did not complete in %s", what, timeout)
	}
	return nil
}

// scrape fetches one child's obs snapshot over its HTTP endpoint.
func scrape(obsAddr string) (*obs.Snapshot, error) {
	resp, err := http.Get("http://" + obsAddr + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obs.ParseSnapshot(blob)
}

// Trial offers `offered` sessions/s fleet-wide for dur, splitting the
// arrival rate across shards by their subject share, and judges the merged
// per-process snapshot diffs with the same gates as the in-process search.
// A child that dies mid-trial degrades the verdict (documented violation)
// rather than hanging the coordinator or silently passing.
func (co *Coordinator) Trial(offered float64, dur time.Duration) (Verdict, error) {
	v := Verdict{Procs: co.cfg.Procs, Offered: offered}
	// Any already-dead child degrades this verdict too: its slice of the
	// fleet is dark, so a clean merge over the survivors would overstate
	// what the configured process count sustains.
	for _, p := range co.procs {
		p.mu.Lock()
		exited, exitErr := p.exited, p.exitErr
		p.mu.Unlock()
		if exited {
			v.ProcErrors = append(v.ProcErrors, fmt.Sprintf("process %d exited early: %v", p.index, exitErr))
		}
	}
	live := co.live()
	if len(live) == 0 {
		return v, fmt.Errorf("fleetcoord: no live shards")
	}
	totalSubj := 0
	for _, p := range live {
		totalSubj += co.subjectsOf(p.index)
	}
	if totalSubj == 0 {
		return v, fmt.Errorf("fleetcoord: live shards own no subjects")
	}
	arrivals := offered / float64(co.cfg.ObjectsPerCell)

	before := make(map[int]*obs.Snapshot, len(live))
	counts := make(map[int]int, len(live))
	for _, p := range live {
		p.mu.Lock()
		obsAddr := p.obsAddr
		counts[p.index] = p.trials
		p.mu.Unlock()
		snap, err := scrape(obsAddr)
		if err != nil {
			return v, fmt.Errorf("fleetcoord: scrape shard %d: %w", p.index, err)
		}
		before[p.index] = snap
	}
	for _, p := range live {
		share := arrivals * float64(co.subjectsOf(p.index)) / float64(totalSubj)
		cmd := fmt.Sprintf("trial %.4f %d\n", share, dur.Milliseconds())
		if _, err := io.WriteString(p.stdin, cmd); err != nil {
			// A write to a just-died child: degrade, don't abort.
			v.ProcErrors = append(v.ProcErrors, fmt.Sprintf("process %d rejected trial command: %v", p.index, err))
		}
	}
	// The window plus the shard's own drain + quiesce, with slack.
	wait := dur + shardRetry().SessionTTL + 25*time.Second
	if err := co.awaitCount(wait, live, func(p *proc) int { return p.trials }, counts, "trial"); err != nil {
		return v, err
	}

	var diffs []*obs.Snapshot
	for _, p := range live {
		p.mu.Lock()
		obsAddr := p.obsAddr
		exited, exitErr := p.exited, p.exitErr
		p.mu.Unlock()
		if exited {
			v.ProcErrors = append(v.ProcErrors, fmt.Sprintf("process %d exited mid-trial: %v", p.index, exitErr))
			continue
		}
		after, err := scrape(obsAddr)
		if err != nil {
			v.ProcErrors = append(v.ProcErrors, fmt.Sprintf("process %d unreachable after trial: %v", p.index, err))
			continue
		}
		diffs = append(diffs, obs.DiffSnapshots(after, before[p.index]))
	}
	merged := obs.MergeSnapshots(diffs...)
	rep := load.SnapshotReport(merged)
	v.Trial = load.EvalTrial(offered, dur.Seconds(), float64(co.cfg.ObjectsPerCell), rep, co.cfg.TrialSLO, co.cfg.MaxSkipFrac)
	if len(v.ProcErrors) > 0 {
		v.Trial.Violations = append(v.Trial.Violations, v.ProcErrors...)
		v.Trial.Pass = false
	}
	return v, nil
}

// Close asks every live child to quit, then kills stragglers.
func (co *Coordinator) Close() {
	for _, p := range co.live() {
		_, _ = io.WriteString(p.stdin, "quit\n")
	}
	done := transporttest.Poll(5*time.Second, 20*time.Millisecond, func() bool {
		return len(co.live()) == 0
	})
	if !done {
		co.kill()
	}
}

// Kill force-terminates one child — the e2e crash test's murder weapon.
func (co *Coordinator) Kill(index int) error {
	if index < 0 || index >= len(co.procs) {
		return fmt.Errorf("fleetcoord: no shard %d", index)
	}
	p := co.procs[index]
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	transporttest.Poll(5*time.Second, 10*time.Millisecond, func() bool {
		_, _, exited := p.state()
		return exited
	})
	return nil
}

func (co *Coordinator) kill() {
	for _, p := range co.procs {
		if p.cmd != nil && p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
		}
	}
	transporttest.Poll(5*time.Second, 20*time.Millisecond, func() bool {
		return len(co.live()) == 0
	})
}
