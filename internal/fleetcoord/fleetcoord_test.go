package fleetcoord

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"argus/internal/load"
)

// TestMain doubles as the shard-child trampoline: the e2e test re-executes
// this test binary with ARGUS_FLEETCOORD_SHARD=1 and the shard flags, and
// the child runs ShardMain instead of the test suite — the same entry point
// `argus-node -role shard` dispatches to.
func TestMain(m *testing.M) {
	if os.Getenv("ARGUS_FLEETCOORD_SHARD") == "1" {
		if err := ShardMain(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "shard:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestOwnersSplitRoles(t *testing.T) {
	// With >= 2 processes, a cell's objects and subjects must never share a
	// process — that's what makes the traffic cross-process.
	for procs := 2; procs <= 5; procs++ {
		for cell := 0; cell < 20; cell++ {
			if cellObjOwner(cell, procs) == cellSubjOwner(cell, procs) {
				t.Errorf("procs %d cell %d: both roles on process %d", procs, cell, cellObjOwner(cell, procs))
			}
		}
	}
	// Single-process fleets degenerate to everything on process 0.
	if cellObjOwner(3, 1) != 0 || cellSubjOwner(3, 1) != 0 {
		t.Error("procs=1 must place everything on process 0")
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Procs: 2, Cells: 2, SubjectsPerCell: 1, ObjectsPerCell: 1, BinPath: "/bin/true", WorkDir: "/tmp"}
	if _, err := good.withDefaults(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Procs: 2, Cells: 2, SubjectsPerCell: 1, ObjectsPerCell: 1, WorkDir: "/tmp"},      // no BinPath
		{Procs: 2, Cells: 2, SubjectsPerCell: 1, ObjectsPerCell: 1, BinPath: "/bin/true"}, // no WorkDir
		{Procs: 0, Cells: 2, SubjectsPerCell: 1, ObjectsPerCell: 1, BinPath: "x", WorkDir: "y"},
	}
	for i, c := range bad {
		if _, err := c.withDefaults(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestAddrFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "objects.addr")
	content := "cell=0 idx=0 addr=127.0.0.1:4001\ncell=0 idx=1 addr=127.0.0.1:4002\ncell=2 idx=0 addr=127.0.0.1:4003\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	addrs, err := awaitAddrFile(path, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]string{
		{0, 0}: "127.0.0.1:4001",
		{0, 1}: "127.0.0.1:4002",
		{2, 0}: "127.0.0.1:4003",
	}
	if len(addrs) != len(want) {
		t.Fatalf("parsed %d addresses, want %d", len(addrs), len(want))
	}
	for k, v := range want {
		if addrs[k] != v {
			t.Errorf("addrs[%v] = %q, want %q", k, addrs[k], v)
		}
	}

	// A missing file times out with a diagnostic, not a hang.
	if _, err := awaitAddrFile(filepath.Join(dir, "never.addr"), 50*time.Millisecond); err == nil {
		t.Error("missing address file must error")
	}
	// A torn/garbage file is an error, not a silent partial fleet.
	if err := os.WriteFile(path, []byte("cell=0 idx=0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := awaitAddrFile(path, time.Second); err == nil {
		t.Error("malformed address line must error")
	}
}

func TestSubjectsOfPartitionsFleet(t *testing.T) {
	co := &Coordinator{cfg: Config{Procs: 3, Cells: 7, SubjectsPerCell: 2}}
	total := 0
	for i := 0; i < 3; i++ {
		total += co.subjectsOf(i)
	}
	if total != 7*2 {
		t.Errorf("subject shares sum to %d, want %d", total, 14)
	}
}

func TestShardMainRejectsBadFlags(t *testing.T) {
	if err := ShardMain([]string{"-shard-index", "2", "-shards", "2", "-addr-file", "x"}); err == nil {
		t.Error("out-of-range shard index must error")
	}
	if err := ShardMain([]string{"-shard-index", "0", "-shards", "1"}); err == nil {
		t.Error("missing -addr-file must error")
	}
}

// TestFleetE2E is the subprocess end-to-end: three real shard processes,
// cross-process discovery over UDP loopback, one healthy merged trial, then
// a mid-run kill whose merged verdict must degrade with a documented error
// instead of hanging. ~15s of wall time, so -short skips it.
func TestFleetE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e skipped with -short")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Procs: 3, Cells: 3, SubjectsPerCell: 2, ObjectsPerCell: 2,
		BinPath: bin,
		Env:     []string{"ARGUS_FLEETCOORD_SHARD=1"},
		WorkDir: t.TempDir(),
		TrialSLO: load.TrialSLO(load.SLO{
			P50Ceiling: 4 * time.Second,
			P99Ceiling: 10 * time.Second,
		}),
		Logf: t.Logf,
	}
	co, err := Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// Cross-process discovery proof: the warm sweep completes every
	// subject-object pair across the process boundaries.
	if err := co.Sweep(); err != nil {
		t.Fatal(err)
	}
	wantSessions := int64(cfg.Cells * cfg.SubjectsPerCell * cfg.ObjectsPerCell)
	if co.WarmSessions != wantSessions {
		t.Fatalf("warm sweep armed %d sessions, want %d", co.WarmSessions, wantSessions)
	}

	// A gentle offered rate against the healthy 3-process fleet passes.
	v, err := co.Trial(8, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Trial.Pass {
		t.Fatalf("healthy trial failed: %v", v.Trial.Violations)
	}
	if v.Trial.Completed == 0 {
		t.Fatal("healthy trial completed no sessions")
	}

	// Kill one shard and re-run: the merged verdict must degrade with the
	// documented per-process error — and come back before the deadline, not
	// hang on the dead child's never-arriving "trial done".
	if err := co.Kill(1); err != nil {
		t.Fatal(err)
	}
	v2, err := co.Trial(8, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Trial.Pass {
		t.Fatal("trial with a dead shard must not pass")
	}
	if len(v2.ProcErrors) == 0 {
		t.Fatal("dead shard must be documented in ProcErrors")
	}
	found := false
	for _, e := range v2.ProcErrors {
		if strings.Contains(e, "process 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("ProcErrors must name the dead process: %v", v2.ProcErrors)
	}
	// The documented error is folded into the violations, so downstream
	// consumers (the capacity search, BENCH_10) see it without reading
	// ProcErrors.
	folded := false
	for _, viol := range v2.Trial.Violations {
		if strings.Contains(viol, "process 1") {
			folded = true
		}
	}
	if !folded {
		t.Errorf("dead process not folded into trial violations: %v", v2.Trial.Violations)
	}
}
