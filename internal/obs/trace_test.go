package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestTracerSessionsAndOrdering checks session allocation and the
// (Session, Start) ordering contract of Spans.
func TestTracerSessionsAndOrdering(t *testing.T) {
	tr := NewTracer()
	s1, s2 := tr.NewSession(), tr.NewSession()
	if s1 == s2 || s1 == 0 {
		t.Fatalf("bad session ids %d, %d", s1, s2)
	}
	tr.Record(Span{Session: s2, Phase: "b", Start: 10, End: 20})
	tr.Record(Span{Session: s1, Phase: "late", Start: 30, End: 40})
	tr.Record(Span{Session: s1, Phase: "early", Start: 5, End: 8})
	spans := tr.Spans()
	if len(spans) != 3 || tr.Len() != 3 {
		t.Fatalf("len = %d", len(spans))
	}
	if spans[0].Phase != "early" || spans[1].Phase != "late" || spans[2].Phase != "b" {
		t.Fatalf("wrong order: %+v", spans)
	}
	if d := spans[0].Duration(); d != 3 {
		t.Fatalf("duration = %v", d)
	}
}

// TestTracerConcurrent hammers Record/NewSession from many goroutines; run
// under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ses := tr.NewSession()
				tr.Record(Span{Session: ses, Start: time.Duration(i), End: time.Duration(i + 1)})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*500 {
		t.Fatalf("len = %d, want %d", tr.Len(), 8*500)
	}
}

// TestTracerJSON checks the wire shape (virtual-time nanoseconds) and that an
// empty tracer emits a valid empty array.
func TestTracerJSON(t *testing.T) {
	tr := NewTracer()
	ses := tr.NewSession()
	tr.Record(Span{Session: ses, Name: "discover", Phase: "que1_res1", Level: 3,
		Start: 5 * time.Millisecond, End: 7 * time.Millisecond})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0]["start_ns"].(float64) != 5e6 || out[0]["end_ns"].(float64) != 7e6 {
		t.Fatalf("bad JSON: %v", out)
	}

	buf.Reset()
	if err := NewTracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := bytes.TrimSpace(buf.Bytes()); string(got) != "[]" {
		t.Fatalf("empty tracer JSON = %q", got)
	}
}
