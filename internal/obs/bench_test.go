package obs

import "testing"

// The observe path sits inside the simulator's per-message hot loop, so the
// tentpole target is <50 ns per operation with zero allocations — handles are
// resolved once at Instrument time and observations are atomics only.
// Fixtures are index-derived (never time or global rand) and every benchmark
// reports allocations, so run-to-run deltas are attributable to code.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("argus_bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("argus_bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("argus_bench_seconds", "", LatencyBuckets())
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = 100e-6 * float64(1+i%256) // spread across the bucket range
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(vals[i&1023])
	}
}

// BenchmarkNil* pin the disabled-telemetry cost: a nil-receiver check only.

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1)
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("argus_bench_total", "", L("op", "x"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("argus_bench_total", "", L("op", "x")).Inc()
	}
}
