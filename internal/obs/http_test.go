package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerContentNegotiation covers the /metrics format selection:
// Prometheus text by default, JSON via ?format=json or an Accept header.
func TestHandlerContentNegotiation(t *testing.T) {
	reg := goldenRegistry()
	h := Handler(reg)

	cases := []struct {
		name     string
		target   string
		accept   string
		wantCT   string
		wantJSON bool
	}{
		{"default-prometheus", "/metrics", "", "text/plain; version=0.0.4; charset=utf-8", false},
		{"query-json", "/metrics?format=json", "", "application/json", true},
		{"accept-json", "/metrics", "application/json", "application/json", true},
		{"accept-other", "/metrics", "text/html", "text/plain; version=0.0.4; charset=utf-8", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, tc.target, nil)
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if rr.Code != http.StatusOK {
				t.Fatalf("status = %d", rr.Code)
			}
			if ct := rr.Header().Get("Content-Type"); ct != tc.wantCT {
				t.Fatalf("content-type = %q, want %q", ct, tc.wantCT)
			}
			body := rr.Body.String()
			if tc.wantJSON {
				var snap Snapshot
				if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
					t.Fatalf("body is not JSON: %v", err)
				}
				if snap.Get("argus_test_total", L("op", "x")) == nil {
					t.Fatal("counter missing from JSON snapshot")
				}
			} else {
				if !strings.Contains(body, `argus_test_total{op="x"} 3`) {
					t.Fatalf("prometheus body missing counter:\n%s", body)
				}
				if !strings.Contains(body, "# overflow argus_test_seconds 1") {
					t.Fatalf("prometheus body missing overflow comment:\n%s", body)
				}
			}
		})
	}
}

// TestHandlerNilRegistry: a nil registry serves an empty snapshot, not a panic.
func TestHandlerNilRegistry(t *testing.T) {
	rr := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
}

// TestMuxRouting covers snapshot-vs-stream routing on the mux: /metrics and
// /trace.json always answer; /events answers only when a stream handler is
// mounted and otherwise 404s.
func TestMuxRouting(t *testing.T) {
	reg := goldenRegistry()
	tr := NewTracer()
	tr.Record(Span{Session: 1, Name: "discover", Phase: "total"})

	get := func(mux *http.ServeMux, target string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, target, nil))
		return rr
	}

	plain := NewMux(reg, tr)
	if rr := get(plain, "/metrics"); rr.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rr.Code)
	}
	if rr := get(plain, "/trace.json"); rr.Code != http.StatusOK {
		t.Fatalf("/trace.json status = %d", rr.Code)
	} else {
		var spans []Span
		if err := json.Unmarshal(rr.Body.Bytes(), &spans); err != nil || len(spans) != 1 {
			t.Fatalf("trace body = %q (%v)", rr.Body.String(), err)
		}
	}
	if rr := get(plain, "/events"); rr.Code != http.StatusNotFound {
		t.Fatalf("/events without stream: status = %d, want 404", rr.Code)
	}

	// A stream handler that models a full hub: the first client streams, the
	// rest are rejected with 503 (the max-client bound's observable contract).
	clients := 0
	stream := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		clients++
		if clients > 1 {
			http.Error(w, "subscriber limit reached", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"type":"hello"}` + "\n"))
	})
	withStream := NewMux(reg, tr, WithStream(stream))
	if rr := get(withStream, "/events"); rr.Code != http.StatusOK {
		t.Fatalf("/events with stream: status = %d", rr.Code)
	} else if !strings.Contains(rr.Body.String(), `"hello"`) {
		t.Fatalf("/events body = %q", rr.Body.String())
	}
	if rr := get(withStream, "/events"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/events over limit: status = %d, want 503", rr.Code)
	}
	if rr := get(withStream, "/metrics"); rr.Code != http.StatusOK {
		t.Fatalf("/metrics still routed: status = %d", rr.Code)
	}
}
