package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseSnapshot reads a snapshot previously serialized with WriteJSON or
// WritePrometheus (auto-detected). Histogram quantiles are re-derived from
// the parsed buckets when the Prometheus form is read.
func ParseSnapshot(b []byte) (*Snapshot, error) {
	trimmed := bytes.TrimSpace(b)
	if len(trimmed) == 0 {
		return &Snapshot{}, nil
	}
	if trimmed[0] == '{' {
		var s Snapshot
		if err := json.Unmarshal(trimmed, &s); err != nil {
			return nil, fmt.Errorf("obs: bad JSON snapshot: %w", err)
		}
		return &s, nil
	}
	return parsePrometheus(trimmed)
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

func parsePrometheus(b []byte) (*Snapshot, error) {
	types := map[string]string{}
	helps := map[string]string{}
	var samples []promSample

	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			if len(fields) >= 4 && fields[1] == "HELP" {
				helps[fields[2]] = fields[3]
			}
			continue // quantile comments are derived values; recomputed below
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, err
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	snap := &Snapshot{}
	hists := map[string]*Metric{} // family+labels → metric under assembly
	var histOrder []string
	for _, s := range samples {
		family, part := s.name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.name, suffix)
			if base != s.name && types[base] == "histogram" {
				family, part = base, suffix
				break
			}
		}
		if part == "" {
			typ := types[s.name]
			if typ == "" {
				typ = "counter"
			}
			snap.Metrics = append(snap.Metrics, Metric{
				Name: s.name, Type: typ, Labels: s.labels,
				Help: helps[s.name], Value: s.value,
			})
			continue
		}
		le := s.labels["le"]
		labels := make(map[string]string, len(s.labels))
		for k, v := range s.labels {
			if k != "le" {
				labels[k] = v
			}
		}
		if len(labels) == 0 {
			labels = nil
		}
		key := family + labelString(labelsOf(labels))
		m, ok := hists[key]
		if !ok {
			m = &Metric{Name: family, Type: "histogram", Labels: labels, Help: helps[family]}
			hists[key] = m
			histOrder = append(histOrder, key)
		}
		switch part {
		case "_sum":
			m.Sum = s.value
		case "_count":
			m.Count = uint64(s.value)
		case "_bucket":
			if le == "+Inf" {
				break // the overflow bucket is implied by _count
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: bad le %q", le)
			}
			m.Buckets = append(m.Buckets, Bucket{LE: bound, Count: uint64(s.value)})
		}
	}
	for _, key := range histOrder {
		m := hists[key]
		sort.Slice(m.Buckets, func(i, j int) bool { return m.Buckets[i].LE < m.Buckets[j].LE })
		bounds, counts := decumulate(m.Buckets, m.Count)
		m.Overflow = counts[len(bounds)]
		m.P50 = bucketQuantile(0.50, bounds, counts, m.Count)
		m.P95 = bucketQuantile(0.95, bounds, counts, m.Count)
		m.P99 = bucketQuantile(0.99, bounds, counts, m.Count)
		snap.Metrics = append(snap.Metrics, *m)
	}
	sort.Slice(snap.Metrics, func(i, j int) bool {
		return snap.Metrics[i].id() < snap.Metrics[j].id()
	})
	return snap, nil
}

func labelsOf(m map[string]string) []Label {
	ls := make([]Label, 0, len(m))
	for k, v := range m {
		ls = append(ls, Label{k, v})
	}
	return ls
}

// decumulate converts cumulative buckets back to per-bucket counts plus the
// overflow bucket implied by the total count.
func decumulate(buckets []Bucket, total uint64) (bounds []float64, counts []uint64) {
	bounds = make([]float64, len(buckets))
	counts = make([]uint64, len(buckets)+1)
	var prev uint64
	for i, b := range buckets {
		bounds[i] = b.LE
		counts[i] = b.Count - prev
		prev = b.Count
	}
	counts[len(buckets)] = total - prev
	return bounds, counts
}

// parsePromLine parses `name{k="v",...} value` (labels optional).
func parsePromLine(line string) (promSample, error) {
	s := promSample{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("obs: unterminated labels in %q", line)
		}
		labels, err := parsePromLabels(rest[brace+1 : end])
		if err != nil {
			return s, fmt.Errorf("obs: %w in %q", err, line)
		}
		s.labels = labels
		rest = rest[end+1:]
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return s, fmt.Errorf("obs: no value in %q", line)
		}
		s.name = rest[:sp]
		rest = rest[sp:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "+Inf" {
		s.value = math.Inf(1)
		return s, nil
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("obs: bad value %q in %q", valStr, line)
	}
	s.value = v
	return s, nil
}

func parsePromLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label segment %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		val, n, err := unquotePrefix(rest)
		if err != nil {
			return nil, err
		}
		labels[key] = val
		body = strings.TrimPrefix(strings.TrimSpace(rest[n:]), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}

// unquotePrefix unquotes the Go-style quoted string at the start of s,
// returning the value and how many bytes it consumed.
func unquotePrefix(s string) (string, int, error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '"' && s[i-1] != '\\' {
			v, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", 0, err
			}
			return v, i + 1, nil
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}
