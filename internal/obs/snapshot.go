package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Metric is one exported metric in a point-in-time snapshot.
type Metric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"` // "counter", "gauge" or "histogram"
	Labels map[string]string `json:"labels,omitempty"`
	Help   string            `json:"help,omitempty"`

	// Counter / gauge value.
	Value float64 `json:"value,omitempty"`

	// Histogram fields.
	Count    uint64   `json:"count,omitempty"`
	Sum      float64  `json:"sum,omitempty"`
	Buckets  []Bucket `json:"buckets,omitempty"` // cumulative, ascending le
	Overflow uint64   `json:"overflow,omitempty"`
	P50      float64  `json:"p50,omitempty"`
	P95      float64  `json:"p95,omitempty"`
	P99      float64  `json:"p99,omitempty"`
}

// Bucket is one cumulative histogram bucket (count of observations <= LE).
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// id is the metric's stable sort key within a snapshot.
func (m *Metric) id() string {
	ls := make([]Label, 0, len(m.Labels))
	for k, v := range m.Labels {
		ls = append(ls, Label{k, v})
	}
	return m.Name + labelString(ls)
}

// Snapshot is a point-in-time copy of a registry, ordered by metric name
// then labels so identical states serialize identically.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Get returns the first metric with the given family name whose labels are a
// superset of the given labels, or nil.
func (s *Snapshot) Get(name string, labels ...Label) *Metric {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != name {
			continue
		}
		ok := true
		for _, l := range labels {
			if m.Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return m
		}
	}
	return nil
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot copies the registry's current state. Safe to call concurrently
// with observations (each metric is read atomically; cross-metric skew of
// in-flight updates is possible, as with any scrape). Returns an empty
// snapshot on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		snap.Metrics = append(snap.Metrics, Metric{
			Name: c.family, Type: "counter", Labels: labelMap(c.labels),
			Help: r.help[c.family], Value: float64(c.Value()),
		})
	}
	for _, g := range r.gauges {
		snap.Metrics = append(snap.Metrics, Metric{
			Name: g.family, Type: "gauge", Labels: labelMap(g.labels),
			Help: r.help[g.family], Value: float64(g.Value()),
		})
	}
	for _, h := range r.hists {
		m := Metric{
			Name: h.family, Type: "histogram", Labels: labelMap(h.labels),
			Help: r.help[h.family],
		}
		counts := make([]uint64, len(h.counts))
		var cum uint64
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
			m.Count += counts[i]
		}
		for i, b := range h.bounds {
			cum += counts[i]
			m.Buckets = append(m.Buckets, Bucket{LE: b, Count: cum})
		}
		m.Overflow = counts[len(h.bounds)]
		m.Sum = h.sum.load()
		m.P50 = bucketQuantile(0.50, h.bounds, counts, m.Count)
		m.P95 = bucketQuantile(0.95, h.bounds, counts, m.Count)
		m.P99 = bucketQuantile(0.99, h.bounds, counts, m.Count)
		snap.Metrics = append(snap.Metrics, m)
	}
	sort.Slice(snap.Metrics, func(i, j int) bool {
		return snap.Metrics[i].id() < snap.Metrics[j].id()
	})
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Snapshot quantiles are emitted as comment lines —
// they are derived values, not series.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != lastFamily {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		ls := sortedLabels(m.Labels)
		switch m.Type {
		case "histogram":
			for _, b := range m.Buckets {
				withLE := append(append([]Label(nil), ls...), L("le", formatFloat(b.LE)))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(withLE), b.Count); err != nil {
					return err
				}
			}
			withLE := append(append([]Label(nil), ls...), L("le", "+Inf"))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(withLE), m.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(ls), formatFloat(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(ls), m.Count); err != nil {
				return err
			}
			if m.Count > 0 {
				if _, err := fmt.Fprintf(w, "# quantiles %s%s p50=%s p95=%s p99=%s\n",
					m.Name, promLabels(ls), formatFloat(m.P50), formatFloat(m.P95), formatFloat(m.P99)); err != nil {
					return err
				}
				// The +Inf backstop count, as a derived comment so scrapers
				// see bucket-layout misfits without a new series.
				if _, err := fmt.Fprintf(w, "# overflow %s%s %d\n",
					m.Name, promLabels(ls), m.Overflow); err != nil {
					return err
				}
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(ls), formatFloat(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedLabels(m map[string]string) []Label {
	ls := make([]Label, 0, len(m))
	for k, v := range m {
		ls = append(ls, Label{k, v})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// promLabels renders labels for exposition ("" when empty).
func promLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
