package obs

// Canonical metric family names, shared by the instrumented packages, the
// cmd binaries and the tests so that producers and consumers never drift.
// Conventions (documented in DESIGN.md §Observability):
//
//   - families are `argus_<subsystem>_<noun>[_<unit>]`;
//   - counters end in `_total`;
//   - histograms use base units: `_seconds` for time, `_bytes` for sizes;
//   - labels are low-cardinality: level ("1".."3"), phase (protocol phase),
//     version ("v1"|"v2"|"v3"), op (crypto or churn operation), role
//     ("subject"|"object"), channel / from / to (small integers), kind,
//     result.
const (
	// internal/core — subject side.
	MDiscoveryRounds       = "argus_discovery_rounds_total"
	MDiscoveries           = "argus_discoveries_total"       // level
	MDiscoveryPhaseSeconds = "argus_discovery_phase_seconds" // level, phase, version
	MCryptoOps             = "argus_crypto_ops_total"        // op, role

	// internal/core — object side.
	MObjectQue1           = "argus_object_que1_total" // result
	MObjectQue2           = "argus_object_que2_total" // result
	MObjectComputeSeconds = "argus_object_equalized_compute_seconds"
	MObjectRes2Bytes      = "argus_object_res2_bytes"

	// internal/netsim.
	MNetMessages      = "argus_net_messages_total"
	MNetTransmissions = "argus_net_transmissions_total"
	MNetBytesOnAir    = "argus_net_bytes_on_air_total"
	MNetDrops         = "argus_net_drops_total"
	MNetPayloadBytes  = "argus_net_payload_bytes"
	MNetHopLatency    = "argus_net_hop_latency_seconds"
	MNetMediumWait    = "argus_net_medium_wait_seconds"
	MNetChannelBytes  = "argus_net_channel_bytes_total" // channel
	MNetLinkBytes     = "argus_net_link_bytes_total"    // from, to

	// internal/netsim — fault injection (see netsim.FaultModel).
	MNetFaultLost       = "argus_net_fault_lost_total"
	MNetFaultCorrupted  = "argus_net_fault_corrupted_total"
	MNetFaultDuplicated = "argus_net_fault_duplicated_total"
	MNetCrashDrops      = "argus_net_crash_drops_total"

	// internal/core — retransmission / robustness (both roles).
	MRetransmissions = "argus_retransmissions_total"  // role, msg
	MSessionsExpired = "argus_sessions_expired_total" // role
	MMalformedDrops  = "argus_malformed_drops_total"  // role

	// internal/cert — credential verification cache (handshake fast path).
	MVerifyCacheEvents = "argus_verify_cache_events_total" // kind, result

	// internal/transport — concurrent-transport mailboxes (Mesh/UDP actor
	// loops). Inbound frames shed under backpressure vs. frames delivered.
	MTransportMailboxDrops = "argus_transport_mailbox_drops_total" // addr
	MTransportDeliveries   = "argus_transport_deliveries_total"    // addr

	// internal/backend.
	MBackendChurnOps = "argus_backend_churn_ops_total" // op
	MBackendNotified = "argus_backend_notified_total"  // kind

	// internal/update.
	MUpdateSent        = "argus_update_sent_total" // kind
	MUpdateApplied     = "argus_update_applied_total"
	MUpdateRejected    = "argus_update_rejected_total"
	MUpdatePropagation = "argus_update_propagation_seconds"

	// internal/update — dead-letter queue for churn notifications that could
	// not be delivered (destination offline/unreachable). Undeliverable
	// counts every push that had to be parked instead of sent; evictions
	// count letters discarded at the per-destination bound (never silent);
	// redelivery lag is park time → actual send after the node reattaches.
	MUpdateUndeliverable = "argus_update_undeliverable_total" // kind
	MUpdateDLQDepth      = "argus_update_dlq_depth"
	MUpdateDLQEvictions  = "argus_update_dlq_evictions_total"
	MUpdateRedelivered   = "argus_update_redelivered_total" // kind
	MUpdateRedeliveryLag = "argus_update_redelivery_lag_seconds"

	// internal/backendsvc — the durable multi-tenant service fronting the
	// enterprise backends. Requests count the /v1 HTTP surface by route
	// pattern and status code; WAL appends/replays count effect records
	// written at churn time and re-applied at open; compactions count
	// snapshot+truncate cycles; auth failures count rejected bearer keys.
	MBackendsvcRequests    = "argus_backendsvc_requests_total"  // route, code
	MBackendsvcLatency     = "argus_backendsvc_request_seconds" // route
	MBackendsvcAuthFail    = "argus_backendsvc_auth_failures_total"
	MBackendsvcWALAppends  = "argus_backendsvc_wal_appends_total" // tenant, op
	MBackendsvcWALReplays  = "argus_backendsvc_wal_replays_total" // tenant, op
	MBackendsvcCompactions = "argus_backendsvc_compactions_total" // tenant
	MBackendsvcTenants     = "argus_backendsvc_tenants"

	// internal/realtime — streaming ops plane. Subscribers is the live
	// client count; events count everything published to the hub by kind;
	// subscriber drops count events shed from a slow consumer's ring (by the
	// kind of the evicted event) — drops are per-subscriber, so one stalled
	// client never stalls the fleet or its fellow subscribers.
	MRealtimeSubscribers    = "argus_realtime_subscribers"
	MRealtimeEvents         = "argus_realtime_events_total"           // kind
	MRealtimeSubscriberDrop = "argus_realtime_subscriber_drops_total" // kind

	// internal/load — load/soak harness bookkeeping. Inflight counts armed
	// discovery sessions (one subject↔object handshake each) not yet
	// completed; the peak gauge latches the high-water mark for the run.
	MLoadInflight     = "argus_load_inflight_sessions"
	MLoadPeakInflight = "argus_load_peak_inflight_sessions"
	MLoadRoundsArmed  = "argus_load_rounds_armed_total"
	MLoadCompletions  = "argus_load_completions_total"
	MLoadLost         = "argus_load_lost_total"
	MLoadUnexpected   = "argus_load_unexpected_total"
	// MLoadSkipped counts open-loop arrivals that found every subject busy —
	// offered load the fleet could not absorb (never queued, by definition of
	// open-loop). The capacity search's utilization gate reads this family, so
	// multi-process shards must emit it too.
	MLoadSkipped = "argus_load_skipped_arrivals_total"

	// internal/load — scenario diversity (mobility + duty cycling). Roams
	// count subject migrations between cells (each forces a fresh engine and
	// re-discovery in the destination cell); sleepy drops count frames a
	// duty-cycled object's radio missed while asleep (each one forces the
	// subject's RetryPolicy retransmission path).
	MLoadRoams       = "argus_load_roams_total"
	MLoadSleepyDrops = "argus_load_sleepy_drops_total"

	// internal/adversary — hostile personas driven by the load harness.
	// Injected counts frames a persona put on the air (by persona and msg);
	// samples count passive-observer measurements (by population); the
	// covertness gauge publishes the two-sample test p-value in parts per
	// million (by channel: "timing" | "length") so the Case-7 covertness
	// claim is visible on the ops plane.
	MAdversaryInjected  = "argus_adversary_injected_total"   // persona, msg
	MAdversarySamples   = "argus_adversary_samples_total"    // population
	MAdversaryCovertPpm = "argus_adversary_covertness_p_ppm" // channel
)

// Protocol phases of a discovery session, in wire order. Used as the
// `phase` label of MDiscoveryPhaseSeconds and as Span.Phase values.
const (
	PhaseQUE1 = "que1_res1"    // QUE1 broadcast → RES1 arrival
	PhaseRES1 = "res1_verify"  // RES1 arrival → QUE2 on the air (verify + ECDH + sign)
	PhaseQUE2 = "que2_res2"    // QUE2 sent → RES2 arrival (object turnaround + air)
	PhaseRES2 = "res2_decrypt" // RES2 arrival → discovery recorded (MAC + decrypt + verify)
	PhaseAll  = "total"        // QUE1 broadcast → discovery recorded
)
