// Package obs is the zero-dependency telemetry layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms with snapshot
// quantiles), a span tracer for discovery sessions keyed to the netsim
// virtual clock, and exposition in Prometheus text format and JSON.
//
// Two properties shape the design:
//
//   - Hot-path cheapness. Metric handles are resolved once (at Instrument
//     time) and observed through lock-free atomics; a counter increment or
//     histogram observation is tens of nanoseconds (see bench_test.go), so
//     the discovery engines and the simulator can be instrumented
//     unconditionally.
//   - Nil safety. Every method on *Registry, *Counter, *Gauge, *Histogram
//     and *Tracer is a no-op on a nil receiver. Code paths are written
//     against possibly-nil handles, so a deployment without telemetry runs
//     the exact same event sequence — fixed-seed experiment outputs are
//     byte-identical with and without a registry attached (proved by
//     internal/exp's determinism test).
//
// Naming follows the Prometheus conventions: `argus_<subsystem>_<noun>_
// <unit>` with `_total` for counters, base units (seconds, bytes) for
// histograms, and low-cardinality labels (level, phase, op, channel).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one metric dimension (a Prometheus label pair).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// LabelString renders sorted labels as `{k1="v1",k2="v2"}` (empty string for
// no labels). Metric identity within a registry is name + LabelString.
func LabelString(labels []Label) string { return labelString(labels) }

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds a process's metrics. The zero value is not usable; create
// with NewRegistry. A nil *Registry is a valid "telemetry off" registry:
// every constructor returns a nil metric handle whose methods no-op.
type Registry struct {
	mu       sync.RWMutex
	help     map[string]string // metric family → help text
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		help:     make(map[string]string),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func (r *Registry) setHelp(name, help string) {
	if help != "" {
		if _, ok := r.help[name]; !ok {
			r.help[name] = help
		}
	}
}

// Counter returns (creating on first use) the counter with the given family
// name and labels. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	id := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[id]; ok {
		return c
	}
	r.setHelp(name, help)
	c := &Counter{family: name, labels: append([]Label(nil), labels...)}
	r.counters[id] = c
	return c
}

// Gauge returns (creating on first use) the gauge with the given family name
// and labels. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	id := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[id]; ok {
		return g
	}
	r.setHelp(name, help)
	g := &Gauge{family: name, labels: append([]Label(nil), labels...)}
	r.gauges[id] = g
	return g
}

// Histogram returns (creating on first use) the histogram with the given
// family name, bucket upper bounds and labels. bounds must be sorted
// ascending; an implicit +Inf overflow bucket is always present. All
// histograms of one family must share bounds (the first registration wins).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	id := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[id]; ok {
		return h
	}
	r.setHelp(name, help)
	h := newHistogram(name, bounds, labels)
	r.hists[id] = h
	return h
}
