package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// goldenRegistry builds a small registry with exactly-representable values so
// the golden text below is stable across platforms.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("argus_test_total", "A counter.", L("op", "x")).Add(3)
	r.Gauge("argus_test_gauge", "A gauge.").Set(7)
	h := r.Histogram("argus_test_seconds", "A histogram.", []float64{0.25, 1})
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5)
	return r
}

// TestWritePrometheusGolden pins the exact exposition-format output.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP argus_test_gauge A gauge.`,
		`# TYPE argus_test_gauge gauge`,
		`argus_test_gauge 7`,
		`# HELP argus_test_seconds A histogram.`,
		`# TYPE argus_test_seconds histogram`,
		`argus_test_seconds_bucket{le="0.25"} 1`,
		`argus_test_seconds_bucket{le="1"} 2`,
		`argus_test_seconds_bucket{le="+Inf"} 3`,
		`argus_test_seconds_sum 5.5625`,
		`argus_test_seconds_count 3`,
		`# quantiles argus_test_seconds p50=0.625 p95=1 p99=1`,
		`# overflow argus_test_seconds 1`,
		`# HELP argus_test_total A counter.`,
		`# TYPE argus_test_total counter`,
		`argus_test_total{op="x"} 3`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSnapshotDeterminism checks that identical registry states serialize
// identically — the property fixed-seed simulation runs rely on.
func TestSnapshotDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenRegistry().Snapshot().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenRegistry().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical registries serialized differently")
	}
}

// TestParseRoundTrip feeds both serializations back through ParseSnapshot and
// checks the metrics survive — including histogram buckets and re-derived
// quantiles.
func TestParseRoundTrip(t *testing.T) {
	orig := goldenRegistry().Snapshot()
	for _, format := range []string{"json", "prometheus"} {
		var buf bytes.Buffer
		var err error
		if format == "json" {
			err = orig.WriteJSON(&buf)
		} else {
			err = orig.WritePrometheus(&buf)
		}
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseSnapshot(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if len(parsed.Metrics) != len(orig.Metrics) {
			t.Fatalf("%s: %d metrics, want %d", format, len(parsed.Metrics), len(orig.Metrics))
		}
		for i := range orig.Metrics {
			om := &orig.Metrics[i]
			pm := parsed.Get(om.Name, labelsOf(om.Labels)...)
			if pm == nil {
				t.Fatalf("%s: %s%v lost in round trip", format, om.Name, om.Labels)
			}
			if pm.Type != om.Type || pm.Value != om.Value || pm.Count != om.Count ||
				pm.Sum != om.Sum || pm.Overflow != om.Overflow {
				t.Errorf("%s: %s scalar fields differ: %+v vs %+v", format, om.Name, pm, om)
			}
			if !reflect.DeepEqual(pm.Buckets, om.Buckets) {
				t.Errorf("%s: %s buckets differ: %v vs %v", format, om.Name, pm.Buckets, om.Buckets)
			}
			if pm.P50 != om.P50 || pm.P95 != om.P95 || pm.P99 != om.P99 {
				t.Errorf("%s: %s quantiles differ: %g/%g/%g vs %g/%g/%g",
					format, om.Name, pm.P50, pm.P95, pm.P99, om.P50, om.P95, om.P99)
			}
		}
	}
}

// TestSnapshotGet exercises the label-subset lookup used by tests and tools.
func TestSnapshotGet(t *testing.T) {
	snap := goldenRegistry().Snapshot()
	if m := snap.Get("argus_test_total", L("op", "x")); m == nil || m.Value != 3 {
		t.Fatalf("Get with labels = %+v", m)
	}
	if m := snap.Get("argus_test_total"); m == nil {
		t.Fatal("Get by family alone failed")
	}
	if m := snap.Get("argus_test_total", L("op", "y")); m != nil {
		t.Fatal("Get matched wrong labels")
	}
	if m := snap.Get("nope"); m != nil {
		t.Fatal("Get matched missing family")
	}
}
