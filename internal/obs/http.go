package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's current state: Prometheus text format by
// default, JSON when the request has `?format=json` or an Accept header of
// application/json. Works with a nil registry (serves an empty snapshot).
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" || r.Header.Get("Accept") == "application/json" {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
}

// TraceHandler serves the tracer's spans as JSON.
func TraceHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	})
}

// MuxOption customizes NewMux.
type MuxOption func(*muxConfig)

type muxConfig struct {
	stream http.Handler
}

// WithStream mounts a live event-stream handler (typically a realtime hub's
// StreamHandler) at /events. Without it, /events answers 404 — a pull-only
// mux stays pull-only.
func WithStream(h http.Handler) MuxOption {
	return func(c *muxConfig) { c.stream = h }
}

// NewMux builds the introspection endpoint wired into the cmd binaries:
//
//	/metrics       registry snapshot (Prometheus text; ?format=json for JSON)
//	/trace.json    recorded discovery spans
//	/events        live event stream (only with WithStream; else 404)
//	/debug/vars    expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  CPU/heap/goroutine profiles
//
// tr may be nil (the trace endpoint then serves an empty array).
func NewMux(reg *Registry, tr *Tracer, opts ...MuxOption) *http.ServeMux {
	var cfg muxConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/trace.json", TraceHandler(tr))
	if cfg.stream != nil {
		mux.Handle("/events", cfg.stream)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
