package obs

import "sync/atomic"

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	family string
	labels []Label
	v      atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	family string
	labels []Label
	v      atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
