package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed protocol phase of a discovery session, measured against
// the netsim virtual clock — a trace of a fixed-seed run is reproducible
// bit for bit. Start/End are virtual times (nanoseconds since simulation
// start), not wall-clock times.
type Span struct {
	Session uint64 `json:"session"`          // groups the phases of one handshake
	Name    string `json:"name"`             // e.g. "discover"
	Phase   string `json:"phase"`            // que1, res1_verify, que2_ecdh, res2_decrypt
	Level   int    `json:"level,omitempty"`  // visibility level (1..3), when known
	Detail  string `json:"detail,omitempty"` // free-form (protocol version, peer)

	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

// Duration returns the span's virtual elapsed time.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Tracer collects spans. Safe for concurrent use; all methods no-op on a
// nil receiver, so engines can call it unconditionally.
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	nextSes uint64
	sink    func(Span)
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// NewSession allocates a fresh session ID (0 on a nil receiver — still a
// valid ID to stamp on spans that are then discarded).
func (t *Tracer) NewSession() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextSes++
	return t.nextSes
}

// SetSink installs a callback invoked for every subsequently recorded span,
// after it is appended. The sink runs outside the tracer lock on the
// recording goroutine, so it must be fast and must not call back into the
// tracer's write path. One sink at a time; nil uninstalls.
func (t *Tracer) SetSink(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// Record appends one finished span.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(s)
	}
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of all recorded spans ordered by (Session, Start).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// WriteJSON writes the spans as an indented JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}
