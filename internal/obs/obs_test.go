package obs

import (
	"sync"
	"testing"
)

// TestRegistryDedup checks that the same (family, labels) pair always yields
// the same handle, regardless of label order.
func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("argus_x_total", "help", L("a", "1"), L("b", "2"))
	b := r.Counter("argus_x_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed metric identity")
	}
	c := r.Counter("argus_x_total", "", L("a", "1"))
	if a == c {
		t.Fatal("different labels produced the same metric")
	}
	h1 := r.Histogram("argus_h_seconds", "", LatencyBuckets(), L("k", "v"))
	h2 := r.Histogram("argus_h_seconds", "", LatencyBuckets(), L("k", "v"))
	if h1 != h2 {
		t.Fatal("histogram not deduplicated")
	}
}

// TestNilSafety proves the "telemetry off" contract: every operation on a nil
// registry, metric handle or tracer is a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", LatencyBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h.Observe(1)
	h.ObserveDuration(1e6)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram has state")
	}
	snap := r.Snapshot()
	if len(snap.Metrics) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}

	var tr *Tracer
	if tr.NewSession() != 0 {
		t.Fatal("nil tracer session id")
	}
	tr.Record(Span{Session: 1})
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer recorded a span")
	}
}

// TestConcurrentHammer exercises counters, gauges and histograms from many
// goroutines — including concurrent create-or-lookup through the registry and
// concurrent snapshots — and verifies the totals. Run under -race.
func TestConcurrentHammer(t *testing.T) {
	const (
		workers = 8
		perG    = 10000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Re-resolve through the registry to race the dedup path too.
				r.Counter("argus_hammer_total", "").Inc()
				r.Gauge("argus_hammer_gauge", "").Add(1)
				r.Histogram("argus_hammer_seconds", "", LatencyBuckets()).
					Observe(float64(i%100) / 1000)
				if i%1000 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	const want = workers * perG
	if got := r.Counter("argus_hammer_total", "").Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("argus_hammer_gauge", "").Value(); got != want {
		t.Fatalf("gauge = %d, want %d", got, want)
	}
	h := r.Histogram("argus_hammer_seconds", "", LatencyBuckets())
	if got := h.Count(); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
}
