package obs

import "sort"

// This file implements snapshot algebra for the multi-process fleet: each
// argus-node shard serves its own registry, the coordinator scrapes all of
// them, subtracts the pre-trial baseline per process (DiffSnapshots) and sums
// the per-process windows into one fleet-wide view (MergeSnapshots) that
// load.SnapshotReport and the SLO gates consume unchanged.
//
// Merge semantics, by metric type:
//
//   - counters add;
//   - gauges take the value from the last argument holding the series
//     ("last writer wins" — gauges are point-in-time levels, and summing a
//     depth gauge across processes would be a different metric);
//   - histograms add bucket-by-bucket. Inputs with different bucket layouts
//     merge over the union of their bounds (every input bound appears in the
//     union, so each bucket's count lands exactly at its own bound); Count,
//     Sum and Overflow add, and the quantile estimates are recomputed from
//     the merged buckets.
//
// A series whose type disagrees with an earlier snapshot's series of the
// same identity is skipped — first type wins, deterministically — so merge
// is total over arbitrary (fuzzed, hostile) inputs and never panics.

// MergeSnapshots folds per-process snapshots into a single fleet-wide
// snapshot. The result is sorted like Registry.Snapshot output; inputs are
// not modified. Nil snapshots are ignored; with no usable input the result
// is empty.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	merged := map[string]*Metric{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for i := range s.Metrics {
			m := &s.Metrics[i]
			key := m.id()
			prev, ok := merged[key]
			if !ok {
				c := copyMetric(m)
				if c.Type == "histogram" {
					normalizeHistogram(c)
				}
				merged[key] = c
				continue
			}
			if prev.Type != m.Type {
				continue // first type wins
			}
			switch m.Type {
			case "counter":
				prev.Value += m.Value
			case "gauge":
				prev.Value = m.Value // last writer wins
			case "histogram":
				mergeHistogram(prev, m)
			}
		}
	}
	out := &Snapshot{Metrics: make([]Metric, 0, len(merged))}
	for _, m := range merged {
		out.Metrics = append(out.Metrics, *m)
	}
	sort.Slice(out.Metrics, func(i, j int) bool {
		return out.Metrics[i].id() < out.Metrics[j].id()
	})
	return out
}

// DiffSnapshots returns after − before, series by series: counter values and
// histogram bucket counts subtract (clamped at zero, so a restarted process
// reads as a fresh window rather than a negative one); gauges keep the
// `after` value. Series present only in `after` pass through unchanged;
// series only in `before` are dropped. Histogram quantiles are recomputed
// over the difference window. Nil inputs are treated as empty.
func DiffSnapshots(after, before *Snapshot) *Snapshot {
	out := &Snapshot{}
	if after == nil {
		return out
	}
	base := map[string]*Metric{}
	if before != nil {
		for i := range before.Metrics {
			m := &before.Metrics[i]
			base[m.id()] = m
		}
	}
	for i := range after.Metrics {
		m := copyMetric(&after.Metrics[i])
		if prev, ok := base[m.id()]; ok && prev.Type == m.Type {
			switch m.Type {
			case "counter":
				m.Value -= prev.Value
				if m.Value < 0 {
					m.Value = 0
				}
			case "histogram":
				diffHistogram(m, prev)
			}
		} else if m.Type == "histogram" {
			normalizeHistogram(m)
		}
		out.Metrics = append(out.Metrics, *m)
	}
	sort.Slice(out.Metrics, func(i, j int) bool {
		return out.Metrics[i].id() < out.Metrics[j].id()
	})
	return out
}

// copyMetric deep-copies the slices and map so snapshot algebra never
// aliases its inputs.
func copyMetric(m *Metric) *Metric {
	out := *m
	if m.Labels != nil {
		out.Labels = make(map[string]string, len(m.Labels))
		for k, v := range m.Labels {
			out.Labels[k] = v
		}
	}
	out.Buckets = append([]Bucket(nil), m.Buckets...)
	return &out
}

// normalizeHistogram re-derives a histogram's cumulative form from its own
// buckets, repairing non-monotone counts and a Count that disagrees with
// buckets+overflow. A registry-produced snapshot is already consistent and
// passes through bit-identically (quantiles recompute to the same values);
// the repair exists because merge promises totality over arbitrary parsed
// input, where a series seen by exactly one snapshot would otherwise skip
// every other consistency path.
func normalizeHistogram(m *Metric) {
	bounds, counts := bucketCounts(m)
	sum := m.Sum
	rebuild(m, bounds, counts, m.Overflow)
	m.Sum = sum
}

// bucketCounts lowers a metric's cumulative buckets to per-bucket counts.
// Non-monotone cumulative input (possible only in adversarial snapshots) is
// repaired by clamping each step at its predecessor.
func bucketCounts(m *Metric) (bounds []float64, counts []uint64) {
	bounds = make([]float64, len(m.Buckets))
	counts = make([]uint64, len(m.Buckets))
	var prev uint64
	for i, b := range m.Buckets {
		bounds[i] = b.LE
		c := b.Count
		if c < prev {
			c = prev
		}
		counts[i] = c - prev
		prev = c
	}
	return bounds, counts
}

// rebuild writes bounds plus per-bucket counts (and overflow) back into the
// metric's cumulative form, recomputing Count and the quantile estimates.
// Sum is left to the caller.
func rebuild(m *Metric, bounds []float64, counts []uint64, overflow uint64) {
	m.Buckets = make([]Bucket, len(bounds))
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		m.Buckets[i] = Bucket{LE: b, Count: cum}
	}
	m.Overflow = overflow
	m.Count = cum + overflow
	all := append(append([]uint64(nil), counts...), overflow)
	m.P50 = bucketQuantile(0.50, bounds, all, m.Count)
	m.P95 = bucketQuantile(0.95, bounds, all, m.Count)
	m.P99 = bucketQuantile(0.99, bounds, all, m.Count)
}

// mergeHistogram folds src into dst over the union of their bucket bounds.
func mergeHistogram(dst, src *Metric) {
	db, dc := bucketCounts(dst)
	sb, sc := bucketCounts(src)
	seen := map[float64]bool{}
	var union []float64
	for _, b := range append(append([]float64(nil), db...), sb...) {
		if !seen[b] {
			seen[b] = true
			union = append(union, b)
		}
	}
	sort.Float64s(union)
	at := make(map[float64]int, len(union))
	for i, b := range union {
		at[b] = i
	}
	counts := make([]uint64, len(union))
	for i, b := range db {
		counts[at[b]] += dc[i]
	}
	for i, b := range sb {
		counts[at[b]] += sc[i]
	}
	sum := dst.Sum + src.Sum
	rebuild(dst, union, counts, dst.Overflow+src.Overflow)
	dst.Sum = sum
}

// diffHistogram subtracts prev's window from m in place. Layout changes
// between scrapes of one process cannot happen (bounds are immutable per
// registry); if the layouts disagree anyway, m is kept as-is — the honest
// fallback for a restarted process.
func diffHistogram(m, prev *Metric) {
	mb, mc := bucketCounts(m)
	pb, pc := bucketCounts(prev)
	if len(mb) != len(pb) {
		return
	}
	for i := range mb {
		if mb[i] != pb[i] {
			return
		}
	}
	for i := range mc {
		if mc[i] >= pc[i] {
			mc[i] -= pc[i]
		} else {
			mc[i] = 0
		}
	}
	overflow := m.Overflow
	if overflow >= prev.Overflow {
		overflow -= prev.Overflow
	} else {
		overflow = 0
	}
	sum := m.Sum - prev.Sum
	if sum < 0 {
		sum = 0
	}
	rebuild(m, mb, mc, overflow)
	m.Sum = sum
}
