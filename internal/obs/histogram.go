package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution metric. Observations land in the
// first bucket whose upper bound is >= the value (Prometheus `le`
// semantics); values above the last bound land in an implicit +Inf bucket.
// Observe is lock-free: one binary search over the (small, immutable) bound
// slice plus two atomic adds. All methods no-op on a nil receiver.
type Histogram struct {
	family string
	labels []Label
	bounds []float64       // sorted upper bounds; immutable after creation
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
}

func newHistogram(name string, bounds []float64, labels []Label) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		family: name,
		labels: append([]Label(nil), labels...),
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
}

// ObserveDuration records a duration in seconds (the base unit for latency
// histograms).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Overflow returns the number of observations above the highest finite
// bound — the +Inf backstop bucket (0 on a nil receiver). A non-zero
// overflow means the bucket layout no longer covers the workload.
func (h *Histogram) Overflow() uint64 {
	if h == nil {
		return 0
	}
	return h.counts[len(h.bounds)].Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the containing bucket — the same estimator Prometheus's
// histogram_quantile uses. Values in the overflow bucket are reported as the
// highest finite bound. Returns 0 with no observations or a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return bucketQuantile(q, h.bounds, counts, total)
}

// bucketQuantile is the shared estimator, also used when re-deriving
// quantiles from a parsed snapshot.
func bucketQuantile(q float64, bounds []float64, counts []uint64, total uint64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no finite upper bound to interpolate toward.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - (cum - float64(c))) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// atomicFloat is a float64 accumulated with a CAS loop.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// ExponentialBuckets returns n upper bounds starting at start, each factor
// times the previous — the standard shape for latency and size histograms.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LatencyBuckets covers the simulator's latency range: 100 µs to ~26 s in
// factor-2 steps (discovery phases are 1 ms–2 s; medium waits are µs–ms).
func LatencyBuckets() []float64 { return ExponentialBuckets(100e-6, 2, 18) }

// SizeBuckets covers wire-message sizes: 16 B to 32 KiB in factor-2 steps
// (QUE1 is ~30 B; a padded RES2 is a few hundred bytes).
func SizeBuckets() []float64 { return ExponentialBuckets(16, 2, 12) }
