package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHistogramBuckets checks Prometheus `le` semantics: a value lands in the
// first bucket whose upper bound is >= the value; values above every bound
// land in the overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram("h", []float64{1, 2, 4}, nil)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // (..1], (1..2], (2..4], (4..+Inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0.5+1+1.5+2+3+4+5+100 {
		t.Errorf("sum = %g", h.Sum())
	}
}

// TestQuantileAgainstSortedReference draws random values and checks the
// bucket-interpolated quantile estimate against the exact quantile of the
// sorted sample: the estimate must stay within the bucket containing the
// exact value (that is the estimator's resolution guarantee).
func TestQuantileAgainstSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := ExponentialBuckets(0.001, 2, 16) // 1ms .. ~32s
	h := newHistogram("h", bounds, nil)
	const n = 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over the bucket range, like real latencies.
		vals[i] = 0.001 * math.Pow(2, rng.Float64()*15)
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99} {
		exact := vals[int(q*float64(n-1))]
		est := h.Quantile(q)
		// The containing bucket of the exact value bounds the estimate.
		i := sort.SearchFloat64s(bounds, exact)
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[len(bounds)-1]
		if i < len(bounds) {
			hi = bounds[i]
		}
		if est < lo || est > hi {
			t.Errorf("q=%g: estimate %g outside bucket [%g, %g] of exact %g",
				q, est, lo, hi, exact)
		}
	}
}

// TestQuantileEdgeCases pins the estimator's behavior at the extremes.
func TestQuantileEdgeCases(t *testing.T) {
	h := newHistogram("h", []float64{1, 2}, nil)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	h.Observe(10) // overflow only
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow-only quantile = %g, want highest finite bound 2", got)
	}
	h2 := newHistogram("h", []float64{1, 2}, nil)
	h2.Observe(0.5)
	if got := h2.Quantile(1.5); got < 0 || got > 1 {
		t.Errorf("clamped q>1 quantile = %g, want within first bucket", got)
	}
	if got := h2.Quantile(-1); got < 0 || got > 1 {
		t.Errorf("clamped q<0 quantile = %g, want within first bucket", got)
	}
}

// TestExponentialBuckets checks the generator used by the canonical bucket
// layouts.
func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(16, 2, 4)
	want := []float64{16, 32, 64, 128}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", got, want)
		}
	}
	if !sort.Float64sAreSorted(LatencyBuckets()) || !sort.Float64sAreSorted(SizeBuckets()) {
		t.Fatal("canonical buckets not sorted")
	}
}
