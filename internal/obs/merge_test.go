package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// mkCounter / mkGauge / mkHist build snapshot metrics directly, the way
// ParseSnapshot would deliver them from a scraped shard.
func mkCounter(name string, v float64, labels map[string]string) Metric {
	return Metric{Name: name, Type: "counter", Labels: labels, Value: v}
}

func mkGauge(name string, v float64) Metric {
	return Metric{Name: name, Type: "gauge", Value: v}
}

// mkHist builds a histogram metric from per-bucket (non-cumulative) counts.
func mkHist(name string, bounds []float64, counts []uint64, overflow uint64, sum float64) Metric {
	m := Metric{Name: name, Type: "histogram", Sum: sum}
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		m.Buckets = append(m.Buckets, Bucket{LE: b, Count: cum})
	}
	m.Overflow = overflow
	m.Count = cum + overflow
	all := append(append([]uint64(nil), counts...), overflow)
	m.P50 = bucketQuantile(0.50, bounds, all, m.Count)
	m.P95 = bucketQuantile(0.95, bounds, all, m.Count)
	m.P99 = bucketQuantile(0.99, bounds, all, m.Count)
	return m
}

func snap(ms ...Metric) *Snapshot { return &Snapshot{Metrics: ms} }

func TestMergeSnapshotsTable(t *testing.T) {
	cases := []struct {
		name string
		in   []*Snapshot
		want []Metric
	}{
		{
			name: "counters sum across processes and label sets stay distinct",
			in: []*Snapshot{
				snap(mkCounter("c", 3, map[string]string{"role": "subject"}), mkCounter("c", 1, map[string]string{"role": "object"})),
				snap(mkCounter("c", 4, map[string]string{"role": "subject"})),
				nil,
				snap(mkCounter("c", 2, map[string]string{"role": "subject"})),
			},
			want: []Metric{
				mkCounter("c", 1, map[string]string{"role": "object"}),
				mkCounter("c", 9, map[string]string{"role": "subject"}),
			},
		},
		{
			name: "gauges take the last writer",
			in: []*Snapshot{
				snap(mkGauge("depth", 7)),
				snap(mkGauge("depth", 3)),
				snap(mkCounter("other", 1, nil)),
			},
			want: []Metric{mkGauge("depth", 3), mkCounter("other", 1, nil)},
		},
		{
			name: "histograms with identical bounds add bucket-wise incl. overflow",
			in: []*Snapshot{
				snap(mkHist("h", []float64{1, 2, 4}, []uint64{1, 2, 0}, 1, 5)),
				snap(mkHist("h", []float64{1, 2, 4}, []uint64{0, 1, 3}, 2, 20)),
			},
			want: []Metric{mkHist("h", []float64{1, 2, 4}, []uint64{1, 3, 3}, 3, 25)},
		},
		{
			name: "histograms with different bounds merge over the union",
			in: []*Snapshot{
				snap(mkHist("h", []float64{1, 4}, []uint64{2, 1}, 0, 4)),
				snap(mkHist("h", []float64{2, 4, 8}, []uint64{1, 1, 1}, 1, 30)),
			},
			// union bounds {1,2,4,8}: 2@1 from the first input, 1@2 from the
			// second, 1+1@4 from both, 1@8, overflow 0+1.
			want: []Metric{mkHist("h", []float64{1, 2, 4, 8}, []uint64{2, 1, 2, 1}, 1, 34)},
		},
		{
			name: "type conflict: first seen wins, later series skipped",
			in: []*Snapshot{
				snap(mkCounter("x", 5, nil)),
				snap(mkGauge("x", 100)),
			},
			want: []Metric{mkCounter("x", 5, nil)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MergeSnapshots(tc.in...)
			if len(got.Metrics) != len(tc.want) {
				t.Fatalf("got %d metrics, want %d: %+v", len(got.Metrics), len(tc.want), got.Metrics)
			}
			for i := range tc.want {
				if !metricEq(&got.Metrics[i], &tc.want[i]) {
					t.Errorf("metric %d:\n got  %+v\n want %+v", i, got.Metrics[i], tc.want[i])
				}
			}
		})
	}
}

func TestMergeMatchesSingleRegistry(t *testing.T) {
	// Two registries observing disjoint halves of a workload must merge to
	// the same snapshot one registry observing everything produces.
	obsv := [][]float64{{0.001, 0.002, 0.5}, {0.004, 30}}
	var regs []*Registry
	all := NewRegistry()
	allH := all.Histogram("h", "lat", LatencyBuckets())
	allC := all.Counter("c", "count")
	for _, part := range obsv {
		r := NewRegistry()
		h := r.Histogram("h", "lat", LatencyBuckets())
		c := r.Counter("c", "count")
		for _, v := range part {
			h.Observe(v)
			allH.Observe(v)
			c.Inc()
			allC.Inc()
		}
		regs = append(regs, r)
	}
	merged := MergeSnapshots(regs[0].Snapshot(), regs[1].Snapshot())
	want := all.Snapshot()
	if len(merged.Metrics) != len(want.Metrics) {
		t.Fatalf("metric count %d != %d", len(merged.Metrics), len(want.Metrics))
	}
	for i := range want.Metrics {
		if !metricEq(&merged.Metrics[i], &want.Metrics[i]) {
			t.Errorf("metric %d:\n got  %+v\n want %+v", i, merged.Metrics[i], want.Metrics[i])
		}
	}
}

func TestDiffSnapshots(t *testing.T) {
	before := snap(
		mkCounter("c", 10, nil),
		mkCounter("gone", 3, nil),
		mkGauge("g", 5),
		mkHist("h", []float64{1, 2}, []uint64{2, 1}, 1, 4),
	)
	after := snap(
		mkCounter("c", 15, nil),
		mkCounter("fresh", 2, nil),
		mkGauge("g", 9),
		mkHist("h", []float64{1, 2}, []uint64{5, 1}, 3, 10),
	)
	got := DiffSnapshots(after, before)
	want := []Metric{
		mkCounter("c", 5, nil),
		mkCounter("fresh", 2, nil),
		mkGauge("g", 9),
		mkHist("h", []float64{1, 2}, []uint64{3, 0}, 2, 6),
	}
	if len(got.Metrics) != len(want) {
		t.Fatalf("got %d metrics, want %d: %+v", len(got.Metrics), len(want), got.Metrics)
	}
	for i := range want {
		if !metricEq(&got.Metrics[i], &want[i]) {
			t.Errorf("metric %d:\n got  %+v\n want %+v", i, got.Metrics[i], want[i])
		}
	}

	// A counter that went backwards (process restart) clamps to zero.
	clamped := DiffSnapshots(snap(mkCounter("c", 1, nil)), snap(mkCounter("c", 10, nil)))
	if v := clamped.Metrics[0].Value; v != 0 {
		t.Errorf("restart clamp: got %v, want 0", v)
	}
}

func TestDiffThenReportWindow(t *testing.T) {
	// The capacity trial's exact flow: observe, snapshot, observe more,
	// snapshot, diff — the diff must describe only the second window.
	r := NewRegistry()
	h := r.Histogram("argus_w_seconds", "w", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	before := r.Snapshot()
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5) // overflow
	diff := DiffSnapshots(r.Snapshot(), before)
	m := diff.Get("argus_w_seconds")
	if m == nil {
		t.Fatal("histogram missing from diff")
	}
	if m.Count != 3 || m.Overflow != 1 {
		t.Fatalf("window count %d overflow %d, want 3 and 1", m.Count, m.Overflow)
	}
	if m.P50 < 0.1 || m.P50 > 1 {
		t.Errorf("window p50 %v outside the 0.5s bucket", m.P50)
	}
}

// metricEq compares two metrics with float tolerance on the derived
// quantiles.
func metricEq(a, b *Metric) bool {
	if a.Name != b.Name || a.Type != b.Type || !reflect.DeepEqual(a.Labels, b.Labels) {
		return false
	}
	feq := func(x, y float64) bool { return math.Abs(x-y) < 1e-9 }
	if !feq(a.Value, b.Value) || !feq(a.Sum, b.Sum) {
		return false
	}
	if a.Count != b.Count || a.Overflow != b.Overflow || !reflect.DeepEqual(a.Buckets, b.Buckets) {
		return false
	}
	return feq(a.P50, b.P50) && feq(a.P95, b.P95) && feq(a.P99, b.P99)
}

// FuzzMergeSnapshots checks merge totality and conservation over arbitrary
// parsed snapshot pairs: never panic, cumulative buckets stay monotone,
// histogram Count equals buckets + overflow, and counters conserve their
// inputs' sum.
func FuzzMergeSnapshots(f *testing.F) {
	seed := func(s *Snapshot) {
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err == nil {
			f.Add(buf.Bytes(), buf.Bytes())
		}
	}
	seed(snap(mkCounter("c", 3, map[string]string{"role": "subject"}), mkGauge("g", 1)))
	seed(snap(mkHist("h", []float64{1, 2, 4}, []uint64{1, 2, 0}, 1, 5)))
	seed(snap(mkHist("h", []float64{2, 8}, []uint64{4, 1}, 0, 9)))
	f.Add([]byte(`{"metrics":[]}`), []byte(`not json`))

	f.Fuzz(func(t *testing.T, aRaw, bRaw []byte) {
		var a, b Snapshot
		okA := json.Unmarshal(aRaw, &a) == nil
		okB := json.Unmarshal(bRaw, &b) == nil
		var in []*Snapshot
		if okA {
			in = append(in, &a)
		}
		if okB {
			in = append(in, &b)
		}
		got := MergeSnapshots(in...)

		// Expected counter totals: first-seen type wins per id.
		wantCounter := map[string]float64{}
		typeOf := map[string]string{}
		for _, s := range in {
			for i := range s.Metrics {
				m := &s.Metrics[i]
				id := m.id()
				if prev, ok := typeOf[id]; ok && prev != m.Type {
					continue
				}
				typeOf[id] = m.Type
				if m.Type == "counter" {
					wantCounter[id] += m.Value
				}
			}
		}
		for i := range got.Metrics {
			m := &got.Metrics[i]
			switch m.Type {
			case "counter":
				if want := wantCounter[m.id()]; math.Abs(m.Value-want) > 1e-6*(1+math.Abs(want)) {
					t.Errorf("counter %s: merged %v, inputs sum to %v", m.id(), m.Value, want)
				}
			case "histogram":
				var prev uint64
				for _, b := range m.Buckets {
					if b.Count < prev {
						t.Errorf("histogram %s: cumulative buckets not monotone: %v", m.id(), m.Buckets)
						break
					}
					prev = b.Count
				}
				if len(m.Buckets) > 0 && m.Count != m.Buckets[len(m.Buckets)-1].Count+m.Overflow {
					t.Errorf("histogram %s: Count %d != last bucket %d + overflow %d",
						m.id(), m.Count, m.Buckets[len(m.Buckets)-1].Count, m.Overflow)
				}
			}
		}

		// Diff of the merge against one input must not panic and must keep
		// counters non-negative.
		if len(in) > 0 {
			d := DiffSnapshots(got, in[0])
			for i := range d.Metrics {
				if m := &d.Metrics[i]; m.Type == "counter" && m.Value < 0 {
					t.Errorf("diff counter %s negative: %v", m.id(), m.Value)
				}
			}
		}
	})
}
