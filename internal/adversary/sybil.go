package adversary

import (
	"fmt"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"
)

// RogueProvision mints a subject credential bundle from a rogue backend —
// Wu et al.'s unprovisioned adversary: the certificate chain and the
// attribute profile are internally consistent but anchor to the wrong CA,
// so every honest object must reject it at certificate verification,
// before any session crypto is spent.
func RogueProvision(strength suite.Strength) (*backend.SubjectProvision, error) {
	rogue, err := backend.New(strength)
	if err != nil {
		return nil, err
	}
	id, _, err := rogue.RegisterSubject("sybil", attr.MustSet("position=staff"))
	if err != nil {
		return nil, err
	}
	return rogue.ProvisionSubject(id)
}

// SybilStats ledgers one cell's flood.
type SybilStats struct {
	// Identities is the number of distinct attacker endpoints used (one per
	// flood round — a fresh address each time, as a Sybil swarm would).
	Identities int `json:"identities"`
	// Broadcasts is the number of QUE1 floods sent.
	Broadcasts int64 `json:"broadcasts"`
	// SecureRes1 counts handshake offers received (sessions the flood
	// opened at Level 2/3 objects); PublicRes1 counts Level 1 answers.
	SecureRes1 int64 `json:"secure_res1"`
	PublicRes1 int64 `json:"public_res1"`
	// Forged counts the structurally-valid QUE2s sent against those
	// sessions. Every one must show up as exactly one object-side
	// rejection: the rogue certificate fails verification.
	Forged int64 `json:"forged"`
}

func (s *SybilStats) add(o SybilStats) {
	s.Identities += o.Identities
	s.Broadcasts += o.Broadcasts
	s.SecureRes1 += o.SecureRes1
	s.PublicRes1 += o.PublicRes1
	s.Forged += o.Forged
}

// Merge accumulates per-cell stats into one fleet ledger.
func (s *SybilStats) Merge(o SybilStats) { s.add(o) }

// ExecuteSybil floods one cell with rounds of unprovisioned discovery
// traffic. Each round joins the segment as a fresh identity (so straggling
// RES1s are always attributable to that identity's single R_S), broadcasts
// a QUE1, waits for the responders to settle, and answers every secure
// RES1 with a forged QUE2 carrying the rogue credentials. join must return
// unbound endpoints on the target cell's segment.
func ExecuteSybil(join func() (transport.Endpoint, error), prov *backend.SubjectProvision,
	rounds int, timeout time.Duration, reg *obs.Registry) (SybilStats, error) {

	injQue1 := reg.Counter(obs.MAdversaryInjected,
		"Frames injected by adversarial personas.",
		obs.L("persona", PersonaSybil), obs.L("msg", "que1"))
	injQue2 := reg.Counter(obs.MAdversaryInjected,
		"Frames injected by adversarial personas.",
		obs.L("persona", PersonaSybil), obs.L("msg", "que2"))

	// Garbage key-exchange material, signature and MACs: rejection happens
	// at certificate verification, before any of these are inspected. Fixed
	// bytes keep fixed-seed runs deterministic.
	junk := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = 0x5b
		}
		return b
	}

	var stats SybilStats
	for r := 0; r < rounds; r++ {
		ep, err := join()
		if err != nil {
			return stats, fmt.Errorf("sybil: join: %w", err)
		}
		rec := newRecorder()
		ep.Bind(rec)
		stats.Identities++

		rs, err := suite.NewNonce(nil)
		if err != nil {
			ep.Close()
			return stats, err
		}
		que1 := (&wire.QUE1{Version: wire.V30, RS: rs}).Encode()
		ep.Do(func() { ep.Broadcast(que1, 1) })
		injQue1.Inc()
		stats.Broadcasts++

		// Wait for the cell's objects to answer; under honest load the
		// responder count is unknowable a priori, so settle on quiescence.
		rec.settle(30*time.Millisecond, timeout)

		rec.mu.Lock()
		responders := make(map[transport.Addr]wire.ResponseMode)
		for from, frames := range rec.frames {
			for _, f := range frames {
				msg, err := wire.Decode(f)
				if err != nil {
					continue
				}
				if m, ok := msg.(*wire.RES1); ok {
					responders[from] = m.Mode
				}
			}
		}
		rec.mu.Unlock()

		for from, mode := range responders {
			if mode == wire.ModePublic {
				stats.PublicRes1++
				continue
			}
			stats.SecureRes1++
			que2 := &wire.QUE2{
				Version: wire.V30,
				RS:      rs,
				ProfS:   prov.Profile.Encode(),
				CertS:   prov.CertDER,
				KEXMS:   junk(65),
				Sig:     junk(70),
				MACS2:   junk(suite.MACSize),
				MACS3:   junk(suite.MACSize),
			}
			enc := que2.Encode()
			target := from
			ep.Do(func() { ep.Send(target, enc) })
			injQue2.Inc()
			stats.Forged++
		}

		// Barrier: wait until every queued Send has executed on our event
		// loop (the frames are then in the targets' mailboxes) before the
		// identity disappears, as a hit-and-run attacker would.
		done := make(chan struct{})
		ep.Do(func() { close(done) })
		select {
		case <-done:
		case <-time.After(timeout):
		}
		ep.Close()
	}
	return stats, nil
}
