package adversary

import (
	"fmt"
	"sync"
	"time"

	"argus/internal/obs"
	"argus/internal/transport"
	"argus/internal/wire"
)

// Capture is a per-object wiretap that reassembles honest discovery
// transcripts: QUE1 (inbound, carrying R_S), the RES1 the object sent back,
// and the subject's QUE2. Install it with WrapTap on the target object's
// endpoint during honest waves; the replayer re-injects the captured frames
// later from its own address.
type Capture struct {
	mu       sync.Mutex
	sessions map[string]*capturedSession // by R_S
	byPeer   map[transport.Addr]string   // last R_S seen from each peer
}

type capturedSession struct {
	que1, res1, que2 []byte
}

func (s *capturedSession) complete() bool {
	return s.que1 != nil && s.res1 != nil && s.que2 != nil
}

// NewCapture returns an empty transcript recorder.
func NewCapture() *Capture {
	return &Capture{
		sessions: make(map[string]*capturedSession),
		byPeer:   make(map[transport.Addr]string),
	}
}

// captureCap bounds retained transcripts per object; one complete session is
// enough for the replayer, a few guard against half-captured stragglers.
const captureCap = 8

// Inbound implements Tap.
func (c *Capture) Inbound(peer transport.Addr, payload []byte, at time.Duration) {
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *wire.QUE1:
		c.mu.Lock()
		rs := string(m.RS)
		sess := c.sessions[rs]
		if sess == nil {
			if len(c.sessions) >= captureCap {
				c.mu.Unlock()
				return
			}
			sess = &capturedSession{}
			c.sessions[rs] = sess
		}
		if sess.que1 == nil {
			sess.que1 = append([]byte(nil), payload...)
		}
		c.byPeer[peer] = rs
		c.mu.Unlock()
	case *wire.QUE2:
		c.mu.Lock()
		if sess := c.sessions[string(m.RS)]; sess != nil && sess.que2 == nil {
			sess.que2 = append([]byte(nil), payload...)
		}
		c.mu.Unlock()
	}
}

// Outbound implements Tap. RES1 carries no R_S, so it is attributed to the
// peer's most recent QUE1 — exact on the object's serialized event loop.
func (c *Capture) Outbound(peer transport.Addr, payload []byte, at time.Duration) {
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	if m, ok := msg.(*wire.RES1); !ok || m.Mode != wire.ModeSecure {
		return
	}
	c.mu.Lock()
	if rs, ok := c.byPeer[peer]; ok {
		if sess := c.sessions[rs]; sess != nil && sess.res1 == nil {
			sess.res1 = append([]byte(nil), payload...)
		}
	}
	c.mu.Unlock()
}

// transcript returns one complete captured session, or nil.
func (c *Capture) transcript() *capturedSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.sessions {
		if s.complete() {
			return s
		}
	}
	return nil
}

// Complete reports whether at least one full QUE1/RES1/QUE2 transcript was
// captured.
func (c *Capture) Complete() bool { return c.transcript() != nil }

// ReplayTarget names one object to attack: its transport address and the
// transcripts captured at it.
type ReplayTarget struct {
	Object  transport.Addr
	Capture *Capture
}

// ReplayStats is the replayer's own ledger of injected frames, which the
// harness holds against the objects' outcome counters — exactly matching
// deltas are the acceptance bar.
type ReplayStats struct {
	Targets int `json:"targets"`
	// Skipped counts targets with no complete captured transcript.
	Skipped int `json:"skipped"`
	// OrphanQue2 replays landed before any session existed for the
	// replayer's address: each must count as exactly one object-side orphan.
	OrphanQue2 int64 `json:"orphan_que2"`
	// Que1 replays of the captured broadcast from the replayer's address:
	// each opens a fresh handshake (result=handshake) at the object.
	Que1 int64 `json:"que1"`
	// DupQue1 concurrent duplicates: each must earn a byte-identical cached
	// RES1 resend (result=duplicate).
	DupQue1 int64 `json:"dup_que1"`
	// StaleQue2 replays against the session the replayer itself opened: the
	// QUE2 signature covers the honest RES1 (a stale R_O), so each must be
	// rejected (result=rejected) — never answered.
	StaleQue2 int64 `json:"stale_que2"`
	// IdempotencyViolations counts duplicate-QUE1 responses that were not
	// byte-identical to the first RES1, and missing responses.
	IdempotencyViolations int64 `json:"idempotency_violations"`
}

// Merge accumulates per-cell stats into one fleet ledger.
func (s *ReplayStats) Merge(o ReplayStats) {
	s.Targets += o.Targets
	s.Skipped += o.Skipped
	s.OrphanQue2 += o.OrphanQue2
	s.Que1 += o.Que1
	s.DupQue1 += o.DupQue1
	s.StaleQue2 += o.StaleQue2
	s.IdempotencyViolations += o.IdempotencyViolations
}

// ExecuteReplay runs the transcript-replay persona from ep against targets,
// all concurrently. ep must be an unbound endpoint on the targets' segment;
// ExecuteReplay binds it. Per target the sequence is:
//
//  1. the captured QUE2 (no session for our address yet) → orphan;
//  2. the captured QUE1 → the object opens a session and answers a fresh
//     RES1 (new R_O, new KEXM_O);
//  3. two concurrent duplicates of the same QUE1 → the cached RES1 must be
//     resent byte-identically, twice;
//  4. the captured QUE2 again → a session now exists, but the signature
//     binds the honest transcript's RES1, so verification must reject it.
//
// The returned stats count what was injected; the caller asserts the
// object-side counters moved by exactly these amounts.
func ExecuteReplay(ep transport.Endpoint, targets []ReplayTarget, timeout time.Duration, reg *obs.Registry) (ReplayStats, error) {
	injQue1 := reg.Counter(obs.MAdversaryInjected,
		"Frames injected by adversarial personas.",
		obs.L("persona", PersonaReplay), obs.L("msg", "que1"))
	injQue2 := reg.Counter(obs.MAdversaryInjected,
		"Frames injected by adversarial personas.",
		obs.L("persona", PersonaReplay), obs.L("msg", "que2"))

	rec := newRecorder()
	ep.Bind(rec)

	var (
		mu    sync.Mutex
		stats = ReplayStats{Targets: len(targets)}
		errs  []error
		wg    sync.WaitGroup
	)
	for _, tgt := range targets {
		sess := tgt.Capture.transcript()
		if sess == nil {
			stats.Skipped++
			continue
		}
		wg.Add(1)
		go func(obj transport.Addr, sess *capturedSession) {
			defer wg.Done()
			fail := func(err error) {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}

			// 1. Orphan replay: QUE2 with no session for our address.
			ep.Do(func() { ep.Send(obj, sess.que2) })
			injQue2.Inc()
			mu.Lock()
			stats.OrphanQue2++
			mu.Unlock()

			// 2. Replay the captured QUE1; await the fresh RES1.
			ep.Do(func() { ep.Send(obj, sess.que1) })
			injQue1.Inc()
			mu.Lock()
			stats.Que1++
			mu.Unlock()
			frames := rec.awaitFrom(obj, 1, timeout)
			if len(frames) < 1 {
				fail(fmt.Errorf("replay: no RES1 from %s within %v", obj, timeout))
				return
			}
			first := frames[0]

			// 3. Two concurrent duplicates: the cached answer must come back
			// byte-identical, twice.
			ep.Do(func() { ep.Send(obj, sess.que1) })
			ep.Do(func() { ep.Send(obj, sess.que1) })
			injQue1.Add(2)
			mu.Lock()
			stats.DupQue1 += 2
			mu.Unlock()
			frames = rec.awaitFrom(obj, 3, timeout)
			if len(frames) < 3 {
				mu.Lock()
				stats.IdempotencyViolations += int64(3 - len(frames))
				mu.Unlock()
				fail(fmt.Errorf("replay: %d/3 RES1 frames from %s within %v", len(frames), obj, timeout))
				return
			}
			for _, f := range frames[1:3] {
				if string(f) != string(first) {
					mu.Lock()
					stats.IdempotencyViolations++
					mu.Unlock()
				}
			}

			// 4. Stale QUE2 against the session we just opened: its signature
			// covers the honest RES1, not the fresh one — must be rejected.
			ep.Do(func() { ep.Send(obj, sess.que2) })
			injQue2.Inc()
			mu.Lock()
			stats.StaleQue2++
			mu.Unlock()
		}(tgt.Object, sess)
	}
	wg.Wait()
	if len(errs) > 0 {
		return stats, errs[0]
	}
	return stats, nil
}
