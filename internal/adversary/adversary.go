// Package adversary implements the hostile personas of the Argus threat
// model (§III, §VII) as pluggable components the load harness drives at
// fleet scale:
//
//   - Replayer re-injects captured QUE1/QUE2 frames from a fresh address
//     and asserts the object's cached-answer/idempotency contract: replayed
//     QUE1s earn byte-identical RES1 resends, replayed QUE2s are rejected
//     by transcript-signature freshness, and QUE2s with no live session die
//     as counted orphans — never an answer.
//   - Sybil floods a cell with discovery traffic from a subject provisioned
//     by a rogue backend (Wu et al.'s unprovisioned-adversary model): its
//     forged QUE2s must all be rejected at certificate verification, with
//     bounded object work and no SLO impact on honest traffic.
//   - Observer passively samples response timing and message length during
//     live waves and runs two-sample statistical tests (Mann–Whitney U on
//     timing, Kolmogorov–Smirnov on length) asserting a Level 3 object's
//     cover-up answers are indistinguishable from a true Level 2 object's —
//     the paper's Case-7 covertness claim as a gated SLO.
//
// The package sits below internal/load in the import graph: personas speak
// transport.Endpoint and wire frames only, and the harness wires them into
// cells, budgets their traffic, and gates their outcomes.
package adversary

import (
	"sync"
	"time"

	"argus/internal/transport"
)

// Persona label values of obs.MAdversaryInjected.
const (
	PersonaReplay = "replay"
	PersonaSybil  = "sybil"
)

// Tap observes the frames crossing one endpoint, in both directions. Taps
// are invoked synchronously on the endpoint's paths: Inbound on the event
// loop (before the engine's handler), Outbound on whatever goroutine called
// Send/Broadcast. Implementations aggregating across endpoints must be
// safe for concurrent use; payloads are read-only and only valid for the
// duration of the call.
type Tap interface {
	Inbound(peer transport.Addr, payload []byte, at time.Duration)
	Outbound(peer transport.Addr, payload []byte, at time.Duration)
}

// WrapTap interposes taps on an endpoint. All other behavior delegates to
// the wrapped endpoint unchanged, so a tapped engine runs the exact same
// event sequence — taps are the adversary's antenna, not a man in the
// middle. Broadcast frames are reported with the empty peer address.
func WrapTap(ep transport.Endpoint, taps ...Tap) transport.Endpoint {
	if len(taps) == 0 {
		return ep
	}
	return &tapEndpoint{inner: ep, taps: taps}
}

type tapEndpoint struct {
	inner transport.Endpoint
	taps  []Tap
}

func (t *tapEndpoint) Addr() transport.Addr { return t.inner.Addr() }
func (t *tapEndpoint) Now() time.Duration   { return t.inner.Now() }

func (t *tapEndpoint) Send(to transport.Addr, payload []byte) {
	at := t.inner.Now()
	for _, tap := range t.taps {
		tap.Outbound(to, payload, at)
	}
	t.inner.Send(to, payload)
}

func (t *tapEndpoint) Broadcast(payload []byte, ttl int) {
	at := t.inner.Now()
	for _, tap := range t.taps {
		tap.Outbound("", payload, at)
	}
	t.inner.Broadcast(payload, ttl)
}

func (t *tapEndpoint) After(d time.Duration, fn func())          { t.inner.After(d, fn) }
func (t *tapEndpoint) Compute(cost time.Duration, fn func())     { t.inner.Compute(cost, fn) }
func (t *tapEndpoint) Do(fn func())                              { t.inner.Do(fn) }
func (t *tapEndpoint) Close() error                              { return t.inner.Close() }
func (t *tapEndpoint) Bind(h transport.Handler) {
	t.inner.Bind(transport.HandlerFunc(func(from transport.Addr, payload []byte) {
		at := t.inner.Now()
		for _, tap := range t.taps {
			tap.Inbound(from, payload, at)
		}
		h.Handle(from, payload)
	}))
}

// recorder is a minimal attacker-side inbound handler: it keeps every frame
// it receives, split by sender, so persona goroutines can await and inspect
// responses from specific targets.
type recorder struct {
	mu     sync.Mutex
	frames map[transport.Addr][][]byte
}

func newRecorder() *recorder {
	return &recorder{frames: make(map[transport.Addr][][]byte)}
}

func (r *recorder) Handle(from transport.Addr, payload []byte) {
	cp := append([]byte(nil), payload...)
	r.mu.Lock()
	r.frames[from] = append(r.frames[from], cp)
	r.mu.Unlock()
}

// from returns a snapshot of the frames received from one sender.
func (r *recorder) from(addr transport.Addr) [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]byte(nil), r.frames[addr]...)
}

// total returns the number of frames received from all senders.
func (r *recorder) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, fs := range r.frames {
		n += len(fs)
	}
	return n
}

// awaitFrom polls until at least n frames arrived from addr or the deadline
// passes, returning the snapshot either way.
func (r *recorder) awaitFrom(addr transport.Addr, n int, timeout time.Duration) [][]byte {
	deadline := time.Now().Add(timeout)
	for {
		fs := r.from(addr)
		if len(fs) >= n || time.Now().After(deadline) {
			return fs
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// settle polls until the total frame count stops growing for one quiet
// period (or the deadline passes) and returns it — used after a broadcast
// burst where the responder count is not known a priori.
func (r *recorder) settle(quiet, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	last := r.total()
	lastChange := time.Now()
	for {
		time.Sleep(2 * time.Millisecond)
		cur := r.total()
		now := time.Now()
		if cur != last {
			last, lastChange = cur, now
		}
		if now.Sub(lastChange) >= quiet || now.After(deadline) {
			return cur
		}
	}
}
