package adversary_test

import (
	"fmt"
	"testing"
	"time"

	"argus/internal/adversary"
	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"

	"argus/internal/transport/transporttest"
)

// rig is a one-cell honest deployment on a Mesh: a backend, one Level 2
// object, and one provisioned staff subject, with every engine instrumented
// into reg.
type rig struct {
	t    *testing.T
	b    *backend.Backend
	mesh *transport.Mesh
	reg  *obs.Registry

	obj     *core.Object
	objAddr transport.Addr
	subj    *core.Subject
	subjEP  transport.Endpoint
}

func newRig(t *testing.T, retry core.RetryPolicy, taps ...adversary.Tap) *rig {
	t.Helper()
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='device'"), []string{"use"})
	oid, _, err := b.RegisterObject("printer", backend.L2, attr.MustSet("type=device"), []string{"use"})
	if err != nil {
		t.Fatal(err)
	}
	sid, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	oprov, err := b.ProvisionObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	sprov, err := b.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}

	mesh := transport.NewMesh()
	t.Cleanup(mesh.Close)
	reg := obs.NewRegistry()
	vc := cert.NewVerifyCache(1 << 10)

	var objEP transport.Endpoint = mesh.Join()
	objAddr := objEP.Addr()
	objEP = adversary.WrapTap(objEP, taps...)
	obj := core.NewObject(oprov, wire.V30, core.Costs{},
		core.WithEndpoint(objEP), core.WithRetry(retry),
		core.WithTelemetry(reg, nil), core.WithVerifyCache(vc))
	_ = obj

	subjEP := mesh.Join()
	subj := core.NewSubject(sprov, wire.V30, core.Costs{},
		core.WithEndpoint(subjEP), core.WithRetry(retry),
		core.WithTelemetry(reg, nil), core.WithVerifyCache(vc))

	return &rig{t: t, b: b, mesh: mesh, reg: reg,
		obj: obj, objAddr: objAddr, subj: subj, subjEP: subjEP}
}

// counter reads the summed value of a family filtered by one label.
func (r *rig) counter(name, key, value string) int64 {
	var total int64
	snap := r.reg.Snapshot()
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		if m.Name != name {
			continue
		}
		if key != "" && m.Labels[key] != value {
			continue
		}
		total += int64(m.Value)
	}
	return total
}

func (r *rig) await(what string, cond func() bool) {
	r.t.Helper()
	transporttest.WaitUntil(r.t, 5*time.Second, cond, what)
}

// discover runs one honest discovery round and waits for it to complete.
func (r *rig) discover() {
	r.t.Helper()
	r.subjEP.Do(func() { _ = r.subj.Discover(1) })
	r.await("honest discovery", func() bool {
		return r.counter(obs.MDiscoveries, "", "") >= 1
	})
}

var quickRetry = core.RetryPolicy{
	Que1Retries: 3, Que2Retries: 3,
	Timeout: 150 * time.Millisecond, Backoff: 2, SessionTTL: 5 * time.Second,
}

// The replayer's whole contract against one real object: orphan QUE2 is
// silence, replayed QUE1 opens a handshake whose duplicates resend the
// cached RES1 byte-identically, and the stale QUE2 is rejected — with the
// object-side counters moving by exactly the injected amounts.
func TestReplayerContract(t *testing.T) {
	capture := adversary.NewCapture()
	r := newRig(t, quickRetry, capture)
	r.discover()

	if !capture.Complete() {
		t.Fatal("capture did not assemble a full QUE1/RES1/QUE2 transcript")
	}

	before := map[string]int64{}
	for _, result := range []string{"handshake", "duplicate", "rejected", "orphan", "fellow", "l2"} {
		before[result] = r.counter(obs.MObjectQue2, "result", result) + r.counter(obs.MObjectQue1, "result", result)
	}

	attacker := r.mesh.Join()
	stats, err := adversary.ExecuteReplay(attacker,
		[]adversary.ReplayTarget{{Object: r.objAddr, Capture: capture}},
		3*time.Second, r.reg)
	if err != nil {
		t.Fatalf("ExecuteReplay: %v", err)
	}
	if stats.Skipped != 0 || stats.IdempotencyViolations != 0 {
		t.Fatalf("replay stats: %+v", stats)
	}
	if stats.OrphanQue2 != 1 || stats.Que1 != 1 || stats.DupQue1 != 2 || stats.StaleQue2 != 1 {
		t.Fatalf("unexpected injection ledger: %+v", stats)
	}

	r.await("replay counters", func() bool {
		return r.counter(obs.MObjectQue2, "result", "rejected")-before["rejected"] >= 1
	})
	deltas := map[string]int64{
		"orphan":    r.counter(obs.MObjectQue2, "result", "orphan") - before["orphan"],
		"rejected":  r.counter(obs.MObjectQue2, "result", "rejected") - before["rejected"],
		"duplicate": r.counter(obs.MObjectQue1, "result", "duplicate") - before["duplicate"],
	}
	want := map[string]int64{"orphan": 1, "rejected": 1, "duplicate": 2}
	for k, w := range want {
		if deltas[k] != w {
			t.Errorf("object %s delta = %d, want %d (stats %+v)", k, deltas[k], w, stats)
		}
	}
	// The replayer must never be answered: no fellow/l2 results beyond the
	// honest session's.
	for _, result := range []string{"fellow", "l2"} {
		if got := r.counter(obs.MObjectQue2, "result", result); got != before[result] {
			t.Errorf("replayer was answered: %s moved %d → %d", result, before[result], got)
		}
	}
	if got := r.counter(obs.MAdversaryInjected, "persona", "replay"); got != 5 {
		t.Errorf("injected counter = %d, want 5 (3 QUE1 + 2 QUE2)", got)
	}
}

// A Sybil flood against a real object: every forged QUE2 is rejected at
// certificate verification, honest discovery still works afterwards, and
// the object's pending-session table stays bounded under a much larger
// flood than it will ever cache.
func TestSybilFloodRejectedAndBounded(t *testing.T) {
	r := newRig(t, quickRetry)

	prov, err := adversary.RogueProvision(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	rejected0 := r.counter(obs.MObjectQue2, "result", "rejected")

	stats, err := adversary.ExecuteSybil(
		func() (transport.Endpoint, error) { return r.mesh.Join(), nil },
		prov, 3, 2*time.Second, r.reg)
	if err != nil {
		t.Fatalf("ExecuteSybil: %v", err)
	}
	if stats.Identities != 3 || stats.Broadcasts != 3 {
		t.Fatalf("sybil stats: %+v", stats)
	}
	if stats.SecureRes1 != 3 || stats.Forged != 3 {
		t.Fatalf("expected one secure RES1 + one forged QUE2 per round: %+v", stats)
	}
	r.await("forged QUE2 rejections", func() bool {
		return r.counter(obs.MObjectQue2, "result", "rejected")-rejected0 >= stats.Forged
	})
	if got := r.counter(obs.MObjectQue2, "result", "rejected") - rejected0; got != stats.Forged {
		t.Fatalf("rejected delta = %d, want exactly %d", got, stats.Forged)
	}

	// Honest traffic is unaffected.
	r.discover()

	// Bounded work: a flood of unique QUE1s cannot grow the session table
	// past its cap — the overflow is refused, not stored.
	flood := r.mesh.Join()
	defer flood.Close()
	flood.Bind(transport.HandlerFunc(func(transport.Addr, []byte) {})) // deaf flooder; Bind starts the loop
	for i := 0; i < 400; i++ {
		rs, err := suite.NewNonce(nil)
		if err != nil {
			t.Fatal(err)
		}
		enc := (&wire.QUE1{Version: wire.V30, RS: rs}).Encode()
		flood.Do(func() { flood.Send(r.objAddr, enc) })
	}
	r.await("flood refusals", func() bool {
		return r.counter(obs.MObjectQue1, "result", "refused") > 0
	})
	r.await("session table bounded", func() bool {
		return r.obj.PendingSessions() <= 256
	})
	if got := r.obj.PendingSessions(); got > 256 {
		t.Fatalf("session table grew past its bound: %d", got)
	}
}

// The observer distinguishes nothing when both populations come from the
// same world, and decisively flags a deterministic length leak.
func TestObserverVerdict(t *testing.T) {
	reg := obs.NewRegistry()
	o := adversary.NewObserver(reg, 20, 0)
	plain := o.Tap(adversary.PopPlain)
	covert := o.Tap(adversary.PopCovert)

	que2 := (&wire.QUE2{Version: wire.V30, RS: []byte("0123456789abcdef0123456789ab"),
		MACS2: make([]byte, suite.MACSize)}).Encode()
	res2 := func(extra int) []byte {
		return (&wire.RES2{Version: wire.V30, Ciphertext: make([]byte, 160+extra),
			MACO: make([]byte, suite.MACSize)}).Encode()
	}

	feed := func(tap adversary.Tap, n int, extra int, jitter func(int) time.Duration) {
		for i := 0; i < n; i++ {
			peer := transport.Addr(fmt.Sprintf("peer-%d", i))
			at := time.Duration(i) * time.Millisecond
			tap.Inbound(peer, que2, at)
			tap.Outbound(peer, res2(extra), at+50*time.Microsecond+jitter(i))
		}
	}
	sameJitter := func(i int) time.Duration { return time.Duration(i%7) * time.Microsecond }

	feed(plain, 40, 0, sameJitter)
	feed(covert, 40, 0, sameJitter)
	v := o.Verdict()
	if !v.Evaluated {
		t.Fatalf("verdict not evaluated: %+v", v)
	}
	if !v.Pass(0.001) {
		t.Fatalf("identical worlds must pass the covertness gate: %s", v)
	}

	// A fresh observer over a leaky world: covert RES2s run 64 bytes long.
	o2 := adversary.NewObserver(reg, 20, 0)
	feed(o2.Tap(adversary.PopPlain), 40, 0, sameJitter)
	feed(o2.Tap(adversary.PopCovert), 40, 64, sameJitter)
	v2 := o2.Verdict()
	if !v2.Evaluated {
		t.Fatalf("verdict not evaluated: %+v", v2)
	}
	if v2.Pass(0.001) {
		t.Fatalf("a 64-byte length leak must fail the covertness gate: %s", v2)
	}
	if v2.LengthP > 1e-6 || v2.LengthD != 1 {
		t.Fatalf("length channel should be decisive: %s", v2)
	}

	// Starved observers never pass.
	o3 := adversary.NewObserver(reg, 1000, 0)
	if o3.Verdict().Pass(0.001) {
		t.Fatal("an unevaluated verdict must not pass")
	}
}
