package adversary

import (
	"math"
	"sort"
)

// Two-sample tests for the crowd observer, pure stdlib. Both return a
// two-sided p-value for the null hypothesis that the samples come from the
// same distribution; covertness holds while the null survives (p >= alpha).

// MannWhitneyU runs the Mann–Whitney U test (a.k.a. Wilcoxon rank-sum) on
// two samples, using the tie-corrected normal approximation with continuity
// correction. It returns the U statistic of x and the two-sided p-value.
// Degenerate inputs (an empty sample, or all observations identical) return
// p = 1: no evidence of a difference.
func MannWhitneyU(x, y []float64) (u, p float64) {
	nx, ny := len(x), len(y)
	if nx == 0 || ny == 0 {
		return 0, 1
	}
	type obsv struct {
		v     float64
		fromX bool
	}
	all := make([]obsv, 0, nx+ny)
	for _, v := range x {
		all = append(all, obsv{v, true})
	}
	for _, v := range y {
		all = append(all, obsv{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Average ranks across tie groups; accumulate the tie correction term
	// sum(t^3 - t) over groups of size t.
	n := nx + ny
	var rankX, tieSum float64
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			if all[k].fromX {
				rankX += avgRank
			}
		}
		tieSum += t*t*t - t
		i = j
	}

	fx, fy, fn := float64(nx), float64(ny), float64(n)
	u = rankX - fx*(fx+1)/2
	mean := fx * fy / 2
	variance := fx * fy / 12 * ((fn + 1) - tieSum/(fn*(fn-1)))
	if variance <= 0 {
		return u, 1 // every observation tied: distributions are identical
	}
	z := u - mean
	// Continuity correction toward the mean.
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	p = math.Erfc(math.Abs(z) / math.Sqrt2)
	if p > 1 {
		p = 1
	}
	return u, p
}

// KolmogorovSmirnov runs the two-sample Kolmogorov–Smirnov test, returning
// the D statistic (the maximum distance between the empirical CDFs) and the
// asymptotic two-sided p-value (Q_KS of Numerical Recipes §14.3).
// Degenerate inputs return p = 1.
func KolmogorovSmirnov(x, y []float64) (d, p float64) {
	nx, ny := len(x), len(y)
	if nx == 0 || ny == 0 {
		return 0, 1
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)

	var i, j int
	for i < nx && j < ny {
		v := xs[i]
		if ys[j] < v {
			v = ys[j]
		}
		for i < nx && xs[i] <= v {
			i++
		}
		for j < ny && ys[j] <= v {
			j++
		}
		if diff := math.Abs(float64(i)/float64(nx) - float64(j)/float64(ny)); diff > d {
			d = diff
		}
	}

	ne := float64(nx) * float64(ny) / float64(nx+ny)
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * d
	return d, ksProb(lambda)
}

// ksProb is the asymptotic Kolmogorov distribution tail
// Q_KS(lambda) = 2 * sum_{j>=1} (-1)^(j-1) exp(-2 j^2 lambda^2).
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	a2 := -2 * lambda * lambda
	var sum, term float64
	sign := 1.0
	prev := 0.0
	for j := 1; j <= 100; j++ {
		term = sign * 2 * math.Exp(a2*float64(j)*float64(j))
		sum += term
		if math.Abs(term) <= 1e-12*math.Abs(sum) || math.Abs(term) <= 1e-12*prev {
			break
		}
		prev = math.Abs(term)
		sign = -sign
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}
