package adversary

import (
	"math"
	"math/rand"
	"testing"
)

func TestMannWhitneyUIdenticalSamples(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	_, p := MannWhitneyU(x, x)
	if p < 0.9 {
		t.Fatalf("identical samples must not reject the null: p = %v", p)
	}
}

func TestMannWhitneyUAllTied(t *testing.T) {
	x := []float64{3, 3, 3, 3}
	y := []float64{3, 3, 3}
	_, p := MannWhitneyU(x, y)
	if p != 1 {
		t.Fatalf("fully tied samples: p = %v, want 1", p)
	}
}

func TestMannWhitneyUEmpty(t *testing.T) {
	if _, p := MannWhitneyU(nil, []float64{1, 2}); p != 1 {
		t.Fatalf("empty sample: p = %v, want 1", p)
	}
}

func TestMannWhitneyUSeparatedSamples(t *testing.T) {
	var x, y []float64
	for i := 0; i < 40; i++ {
		x = append(x, float64(i))
		y = append(y, float64(i)+1000)
	}
	u, p := MannWhitneyU(x, y)
	if u != 0 {
		t.Fatalf("fully separated samples: U = %v, want 0", u)
	}
	if p > 1e-6 {
		t.Fatalf("fully separated samples must reject the null: p = %v", p)
	}
}

// Reference case, worked by hand: ranks of x in the pooled sample are
// {2,3,4,5} so rankX = 14, U = 14 - 4·5/2 = 4, mean = 10, variance =
// (4·5/12)·10 = 16.67, z = (4 - 10 + 0.5)/4.082 = -1.347, two-sided
// p = erfc(1.347/√2) ≈ 0.178.
func TestMannWhitneyUReference(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 6, 7, 8, 0.5}
	u, p := MannWhitneyU(x, y)
	if u != 4 {
		t.Fatalf("U = %v, want 4", u)
	}
	if math.Abs(p-0.178) > 0.01 {
		t.Fatalf("p = %v, want ≈ 0.178", p)
	}
}

func TestMannWhitneyUSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var x, y []float64
	for i := 0; i < 300; i++ {
		x = append(x, rng.NormFloat64())
		y = append(y, rng.NormFloat64())
	}
	_, p := MannWhitneyU(x, y)
	if p < 0.001 {
		t.Fatalf("same-distribution draws should not reject at alpha=1e-3: p = %v", p)
	}
}

func TestKolmogorovSmirnovIdentical(t *testing.T) {
	x := []float64{100, 100, 100, 100, 100}
	d, p := KolmogorovSmirnov(x, x)
	if d != 0 || p != 1 {
		t.Fatalf("identical point masses: D = %v p = %v, want 0 and 1", d, p)
	}
}

func TestKolmogorovSmirnovDisjointPointMasses(t *testing.T) {
	var x, y []float64
	for i := 0; i < 50; i++ {
		x = append(x, 100)
		y = append(y, 164)
	}
	d, p := KolmogorovSmirnov(x, y)
	if d != 1 {
		t.Fatalf("disjoint point masses: D = %v, want 1", d)
	}
	if p > 1e-9 {
		t.Fatalf("disjoint point masses must reject decisively: p = %v", p)
	}
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var x, y []float64
	for i := 0; i < 400; i++ {
		x = append(x, rng.ExpFloat64())
		y = append(y, rng.ExpFloat64())
	}
	_, p := KolmogorovSmirnov(x, y)
	if p < 0.001 {
		t.Fatalf("same-distribution draws should not reject at alpha=1e-3: p = %v", p)
	}
}

func TestKolmogorovSmirnovShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var x, y []float64
	for i := 0; i < 400; i++ {
		x = append(x, rng.NormFloat64())
		y = append(y, rng.NormFloat64()+1)
	}
	d, p := KolmogorovSmirnov(x, y)
	if d < 0.3 {
		t.Fatalf("unit-shifted normals: D = %v, want > 0.3", d)
	}
	if p > 1e-6 {
		t.Fatalf("unit-shifted normals must reject: p = %v", p)
	}
}
