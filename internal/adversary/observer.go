package adversary

import (
	"fmt"
	"sync"
	"time"

	"argus/internal/obs"
	"argus/internal/transport"
	"argus/internal/wire"
)

// Population labels the two worlds the crowd observer compares. For the
// Case-7 claim the harness taps true Level 2 objects as the "plain" world
// (the covert service genuinely does not exist there) and Level 3 objects
// answering non-fellows as the "covert" world (the service exists but the
// subject is denied the Level 3 face). Covertness holds iff the two worlds
// are statistically indistinguishable on every passive channel.
type Population string

const (
	PopPlain  Population = "plain"
	PopCovert Population = "covert"
)

// Covertness is the observer's verdict: per-channel test statistics and
// p-values over the QUE2→RES2 turnaround time (Mann–Whitney U) and the RES2
// frame length (Kolmogorov–Smirnov).
type Covertness struct {
	PlainSamples  int     `json:"plain_samples"`
	CovertSamples int     `json:"covert_samples"`
	MinSamples    int     `json:"min_samples"`
	Evaluated     bool    `json:"evaluated"` // both populations reached MinSamples
	TimingU       float64 `json:"timing_u"`
	TimingP       float64 `json:"timing_p"`
	LengthD       float64 `json:"length_d"`
	LengthP       float64 `json:"length_p"`
}

// Pass reports whether the covertness SLO holds at significance alpha: the
// observer collected enough evidence and failed to reject the null on both
// channels. An unevaluated verdict never passes — a starved observer is a
// broken experiment, not a covert system.
func (c Covertness) Pass(alpha float64) bool {
	return c.Evaluated && c.TimingP >= alpha && c.LengthP >= alpha
}

func (c Covertness) String() string {
	if !c.Evaluated {
		return fmt.Sprintf("covertness: not evaluated (plain %d, covert %d, need %d each)",
			c.PlainSamples, c.CovertSamples, c.MinSamples)
	}
	return fmt.Sprintf("covertness: timing p=%.4g (U=%.0f), length p=%.4g (D=%.3f) over %d/%d samples",
		c.TimingP, c.TimingU, c.LengthP, c.LengthD, c.PlainSamples, c.CovertSamples)
}

// Observer is the passive crowd adversary: it taps object endpoints, pairs
// each inbound QUE2 with the next RES2 sent back to the same peer, and
// accumulates (turnaround, frame length) samples per population. It is an
// antenna in a crowd — it never transmits.
type Observer struct {
	minSamples int
	maxSamples int

	mu      sync.Mutex
	turnSec map[Population][]float64
	lenB    map[Population][]float64

	samplesC map[Population]*obs.Counter
	timingG  *obs.Gauge
	lengthG  *obs.Gauge
}

// NewObserver creates an observer that evaluates once both populations hold
// minSamples observations and stops sampling a population at maxSamples
// (bounding both memory and test power; 0 means 4*minSamples).
func NewObserver(reg *obs.Registry, minSamples, maxSamples int) *Observer {
	if minSamples <= 0 {
		minSamples = 50
	}
	if maxSamples <= 0 {
		maxSamples = 4 * minSamples
	}
	o := &Observer{
		minSamples: minSamples,
		maxSamples: maxSamples,
		turnSec:    make(map[Population][]float64),
		lenB:       make(map[Population][]float64),
		samplesC:   make(map[Population]*obs.Counter),
	}
	for _, pop := range []Population{PopPlain, PopCovert} {
		o.samplesC[pop] = reg.Counter(obs.MAdversarySamples,
			"Passive observer samples collected, by population.",
			obs.L("population", string(pop)))
	}
	o.timingG = reg.Gauge(obs.MAdversaryCovertPpm,
		"Covertness two-sample test p-value, in parts per million.",
		obs.L("channel", "timing"))
	o.lengthG = reg.Gauge(obs.MAdversaryCovertPpm,
		"Covertness two-sample test p-value, in parts per million.",
		obs.L("channel", "length"))
	// Pending verdicts read as -1 so "no data yet" never renders as p = 0
	// (which would look like a catastrophic leak on the ops plane).
	o.timingG.Set(-1)
	o.lengthG.Set(-1)
	return o
}

// Tap returns a Tap that attributes the endpoint's exchanges to pop.
// Install one per tapped object (taps carry per-endpoint pairing state).
func (o *Observer) Tap(pop Population) Tap {
	return &observerTap{o: o, pop: pop, pending: make(map[transport.Addr]time.Duration)}
}

type observerTap struct {
	o   *Observer
	pop Population

	mu      sync.Mutex
	pending map[transport.Addr]time.Duration // QUE2 arrival time, by peer
}

func (t *observerTap) Inbound(peer transport.Addr, payload []byte, at time.Duration) {
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	if _, ok := msg.(*wire.QUE2); ok {
		t.mu.Lock()
		t.pending[peer] = at
		t.mu.Unlock()
	}
}

func (t *observerTap) Outbound(peer transport.Addr, payload []byte, at time.Duration) {
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	if _, ok := msg.(*wire.RES2); !ok {
		return
	}
	t.mu.Lock()
	que2At, ok := t.pending[peer]
	if ok {
		delete(t.pending, peer)
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	t.o.add(t.pop, (at - que2At).Seconds(), float64(len(payload)))
}

func (o *Observer) add(pop Population, turnaroundSec, frameLen float64) {
	o.mu.Lock()
	if len(o.turnSec[pop]) >= o.maxSamples {
		o.mu.Unlock()
		return
	}
	o.turnSec[pop] = append(o.turnSec[pop], turnaroundSec)
	o.lenB[pop] = append(o.lenB[pop], frameLen)
	o.mu.Unlock()
	o.samplesC[pop].Inc()
}

// Samples returns the per-population sample counts.
func (o *Observer) Samples() (plain, covert int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.turnSec[PopPlain]), len(o.turnSec[PopCovert])
}

// Verdict runs the two-sample tests over everything collected so far and
// publishes the per-channel p-values as gauges (ppm). Unevaluated verdicts
// publish -1 so "no data" is distinguishable from "p = 0" on the ops plane.
func (o *Observer) Verdict() Covertness {
	o.mu.Lock()
	c := Covertness{
		PlainSamples:  len(o.turnSec[PopPlain]),
		CovertSamples: len(o.turnSec[PopCovert]),
		MinSamples:    o.minSamples,
	}
	plainT := append([]float64(nil), o.turnSec[PopPlain]...)
	covertT := append([]float64(nil), o.turnSec[PopCovert]...)
	plainL := append([]float64(nil), o.lenB[PopPlain]...)
	covertL := append([]float64(nil), o.lenB[PopCovert]...)
	o.mu.Unlock()

	if c.PlainSamples < o.minSamples || c.CovertSamples < o.minSamples {
		o.timingG.Set(-1)
		o.lengthG.Set(-1)
		return c
	}
	c.Evaluated = true
	c.TimingU, c.TimingP = MannWhitneyU(plainT, covertT)
	c.LengthD, c.LengthP = KolmogorovSmirnov(plainL, covertL)
	o.timingG.Set(int64(c.TimingP * 1e6))
	o.lengthG.Set(int64(c.LengthP * 1e6))
	return c
}
