package core

import (
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/wire"
)

// BenchmarkWarmHandshake measures one full L2 discovery round against a
// single object with a warm credential verify cache: QUE1 broadcast, RES1,
// QUE2, RES2, MAC checks, and the session bookkeeping around them. The
// per-session nonce signatures and ECDH are never cacheable, so this is the
// floor a warm handshake costs; the allocs/op figure is what the zero-alloc
// codec seam is held to (BENCH_9.json).
func BenchmarkWarmHandshake(b *testing.B) {
	be, err := backend.New(suite.S128)
	if err != nil {
		b.Fatal(err)
	}
	net := netsim.New(netsim.DefaultWiFi(), 1)
	vc := cert.NewVerifyCache(0)

	be.AddPolicy(
		attr.MustParse("position=='manager'"),
		attr.MustParse("type=='multimedia'"),
		[]string{"play"})
	sid, _, err := be.RegisterSubject("bench-subject", attr.MustSet("position=manager"))
	if err != nil {
		b.Fatal(err)
	}
	sprov, err := be.ProvisionSubject(sid)
	if err != nil {
		b.Fatal(err)
	}
	sep := net.NewEndpoint()
	subj := NewSubject(sprov, wire.V20, Costs{}, WithEndpoint(sep), WithVerifyCache(vc))

	oid, _, err := be.RegisterObject("bench-object", L2, attr.MustSet("type=multimedia"), []string{"play"})
	if err != nil {
		b.Fatal(err)
	}
	oprov, err := be.ProvisionObject(oid)
	if err != nil {
		b.Fatal(err)
	}
	oep := net.NewEndpoint()
	NewObject(oprov, wire.V20, Costs{}, WithEndpoint(oep), WithVerifyCache(vc))
	net.Link(sep.Node(), oep.Node())

	// Prime: first round pays the cold chain verifications.
	if err := subj.Discover(1); err != nil {
		b.Fatal(err)
	}
	net.Run(0)
	if got := len(subj.Results()); got != 1 {
		b.Fatalf("priming round: %d discoveries, want 1", got)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := subj.Discover(1); err != nil {
			b.Fatal(err)
		}
		net.Run(0)
	}
	b.StopTimer()
	if got := len(subj.Results()); got != b.N+1 {
		b.Fatalf("completed %d discoveries, want %d", len(subj.Results()), b.N+1)
	}
}
