package core

import (
	"testing"
	"time"
)

// The retransmission schedule is a protocol constant in all but name: the
// chaos harness's loss-rate math, the load harness's sleepy-object duty-cycle
// coverage proof, and DefaultRetry's documented cumulative schedule all
// assume these exact per-attempt delays. Pin them so timer tuning in the
// speed campaign cannot silently change semantics.

func TestRetryPolicyDelaySchedule(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name   string
		policy RetryPolicy
		want   []time.Duration // delay(1), delay(2), ...
	}{
		{
			name:   "default policy: 250ms doubling",
			policy: DefaultRetry(),
			want:   []time.Duration{ms(250), ms(500), ms(1000), ms(2000), ms(4000)},
		},
		{
			name:   "zero backoff defaults to 2",
			policy: RetryPolicy{Timeout: ms(100)},
			want:   []time.Duration{ms(100), ms(200), ms(400), ms(800)},
		},
		{
			name:   "fractional backoff below 1 defaults to 2",
			policy: RetryPolicy{Timeout: ms(100), Backoff: 0.5},
			want:   []time.Duration{ms(100), ms(200), ms(400)},
		},
		{
			name:   "backoff of exactly 1 keeps the delay flat",
			policy: RetryPolicy{Timeout: ms(300), Backoff: 1},
			want:   []time.Duration{ms(300), ms(300), ms(300), ms(300)},
		},
		{
			name:   "non-integer backoff",
			policy: RetryPolicy{Timeout: ms(100), Backoff: 1.5},
			want:   []time.Duration{ms(100), ms(150), ms(225)},
		},
		{
			name:   "cap at 10s",
			policy: RetryPolicy{Timeout: 4 * time.Second, Backoff: 2},
			want:   []time.Duration{4 * time.Second, 8 * time.Second, 10 * time.Second, 10 * time.Second},
		},
		{
			name:   "huge backoff hits the cap immediately after attempt 1",
			policy: RetryPolicy{Timeout: ms(1), Backoff: 1e9},
			want:   []time.Duration{ms(1), 10 * time.Second, 10 * time.Second},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i, want := range tc.want {
				attempt := i + 1
				if got := tc.policy.delay(attempt); got != want {
					t.Errorf("delay(%d) = %v, want %v", attempt, got, want)
				}
			}
		})
	}
}

func TestRetryPolicySchedule(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name    string
		policy  RetryPolicy
		retries int
		want    []time.Duration // cumulative offsets including the initial send
	}{
		{
			name:   "default policy matches the documented cumulative schedule",
			policy: DefaultRetry(), retries: 5,
			want: []time.Duration{0, ms(250), ms(750), ms(1750), ms(3750), ms(7750)},
		},
		{
			name:   "quick harness policy",
			policy: RetryPolicy{Timeout: ms(100), Backoff: 2}, retries: 3,
			want: []time.Duration{0, ms(100), ms(300), ms(700)},
		},
		{
			name:   "zero retries is just the initial send",
			policy: DefaultRetry(), retries: 0,
			want: []time.Duration{0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.policy.Schedule(tc.retries)
			if len(got) != len(tc.want) {
				t.Fatalf("Schedule(%d) = %v, want %v", tc.retries, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Schedule(%d)[%d] = %v, want %v", tc.retries, i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestRetryPolicyZeroValueDisabled(t *testing.T) {
	var p RetryPolicy
	if p.Enabled() {
		t.Fatal("zero-value RetryPolicy must be disabled (one-shot seed behavior)")
	}
	if (RetryPolicy{Que1Retries: 5, Que2Retries: 5, Backoff: 2}).Enabled() {
		t.Fatal("policy without a Timeout must stay disabled regardless of retry counts")
	}
	if !(RetryPolicy{Timeout: time.Millisecond}).Enabled() {
		t.Fatal("any positive Timeout enables the policy")
	}
}

func TestRetryPolicyTTL(t *testing.T) {
	if got := (RetryPolicy{}).ttl(); got != 8*time.Second {
		t.Fatalf("zero SessionTTL must default to 8s, got %v", got)
	}
	if got := (RetryPolicy{SessionTTL: 3 * time.Second}).ttl(); got != 3*time.Second {
		t.Fatalf("explicit SessionTTL not honored: got %v", got)
	}
	if got := DefaultRetry().ttl(); got != 8*time.Second {
		t.Fatalf("DefaultRetry SessionTTL = %v, want 8s", got)
	}
}

// The documented cumulative schedule (250, 750, 1750, 3750, 7750 ms) must
// stay inside DefaultRetry's SessionTTL: a rebroadcast after expiry would
// find the object's cached answer already garbage-collected.
func TestDefaultRetryScheduleInsideTTL(t *testing.T) {
	p := DefaultRetry()
	wantCumulative := []time.Duration{
		250 * time.Millisecond, 750 * time.Millisecond, 1750 * time.Millisecond,
		3750 * time.Millisecond, 7750 * time.Millisecond,
	}
	var cum time.Duration
	for i := 0; i < p.Que1Retries; i++ {
		cum += p.delay(i + 1)
		if cum != wantCumulative[i] {
			t.Fatalf("cumulative delay after attempt %d = %v, want %v", i+1, cum, wantCumulative[i])
		}
	}
	if cum >= p.ttl() {
		t.Fatalf("cumulative schedule %v must fit inside SessionTTL %v", cum, p.ttl())
	}
}
