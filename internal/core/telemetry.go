package core

import (
	"fmt"
	"strconv"
	"time"

	"argus/internal/obs"
	"argus/internal/transport"
	"argus/internal/wire"
)

// Telemetry for the discovery engines. Metric handles are resolved once at
// Instrument time so the per-message cost is a few atomic operations; every
// helper is a no-op on a nil receiver, so an uninstrumented engine executes
// the exact same event sequence (fixed-seed runs stay byte-identical — see
// internal/exp's determinism test).

// Crypto-op label values of obs.MCryptoOps, matching the Costs fields.
const (
	opSign      = "sign"
	opVerify    = "verify"
	opKexGen    = "kex_gen"
	opKexShared = "kex_shared"
	opHMAC      = "hmac"
	opCipher    = "cipher"
)

// cryptoOps is the per-role operation counter block.
type cryptoOps struct {
	sign, verify, kexGen, kexShared, hmac, cipher *obs.Counter
}

func newCryptoOps(reg *obs.Registry, role string) cryptoOps {
	c := func(op string) *obs.Counter {
		return reg.Counter(obs.MCryptoOps, "Cryptographic operations performed, by operation and role.",
			obs.L("op", op), obs.L("role", role))
	}
	return cryptoOps{
		sign: c(opSign), verify: c(opVerify), kexGen: c(opKexGen),
		kexShared: c(opKexShared), hmac: c(opHMAC), cipher: c(opCipher),
	}
}

// phaseNames is the fixed phase vocabulary, in wire order.
var phaseNames = []string{obs.PhaseQUE1, obs.PhaseRES1, obs.PhaseQUE2, obs.PhaseRES2, obs.PhaseAll}

// Message label values of obs.MRetransmissions: which message a role resent.
const (
	msgQUE1 = "que1"
	msgQUE2 = "que2"
	msgRES1 = "res1"
	msgRES2 = "res2"
)

// robustness is the per-role retransmission/expiry/malformed counter block
// shared by both engines (satellite of the fault-injection work: malformed
// traffic used to vanish without a trace).
type robustness struct {
	retrans   map[string]*obs.Counter // by msg label
	expired   *obs.Counter
	malformed *obs.Counter
}

func newRobustness(reg *obs.Registry, role string, msgs []string) robustness {
	r := robustness{
		retrans: make(map[string]*obs.Counter, len(msgs)),
		expired: reg.Counter(obs.MSessionsExpired,
			"Handshake sessions garbage-collected at SessionTTL without completing.",
			obs.L("role", role)),
		malformed: reg.Counter(obs.MMalformedDrops,
			"Received payloads dropped because wire decoding failed (corruption or noise).",
			obs.L("role", role)),
	}
	for _, m := range msgs {
		r.retrans[m] = reg.Counter(obs.MRetransmissions,
			"Protocol messages retransmitted (timeouts or duplicate-query resends).",
			obs.L("role", role), obs.L("msg", m))
	}
	return r
}

// subjectTelemetry instruments the subject engine.
type subjectTelemetry struct {
	tracer      *obs.Tracer
	rounds      *obs.Counter
	discoveries [4]*obs.Counter              // indexed by Level (1..3)
	phases      [4]map[string]*obs.Histogram // [level][phase]
	ops         cryptoOps
	rob         robustness
}

func newSubjectTelemetry(reg *obs.Registry, tr *obs.Tracer, version wire.Version) *subjectTelemetry {
	t := &subjectTelemetry{
		tracer: tr,
		rounds: reg.Counter(obs.MDiscoveryRounds, "Discovery rounds started (QUE1 broadcasts)."),
		ops:    newCryptoOps(reg, "subject"),
		rob:    newRobustness(reg, "subject", []string{msgQUE1, msgQUE2}),
	}
	ver := "v" + strconv.Itoa(int(version))
	for level := L1; level <= L3; level++ {
		lv := obs.L("level", strconv.Itoa(int(level)))
		t.discoveries[level] = reg.Counter(obs.MDiscoveries,
			"Verified discoveries, by perceived visibility level.", lv)
		t.phases[level] = make(map[string]*obs.Histogram, len(phaseNames))
		for _, ph := range phaseNames {
			t.phases[level][ph] = reg.Histogram(obs.MDiscoveryPhaseSeconds,
				"Virtual time spent per discovery protocol phase.",
				obs.LatencyBuckets(), lv, obs.L("phase", ph), obs.L("version", ver))
		}
	}
	return t
}

func (t *subjectTelemetry) roundStarted() {
	if t == nil {
		return
	}
	t.rounds.Inc()
}

// phaseStamps are the virtual times a session crossed each protocol
// boundary. Zero res1/que2 times mean the Level 1 short path (no phase 2).
type phaseStamps struct {
	session uint64
	secure  bool          // phase-2 handshake ran (Level 2/3 path)
	que1At  time.Duration // QUE1 broadcast
	res1At  time.Duration // RES1 arrival
	que2At  time.Duration // QUE2 on the air
	res2At  time.Duration // RES2 arrival
}

// sessionDone records the per-phase histograms and tracer spans of one
// completed discovery at doneAt. Only phases the session actually crossed
// are emitted (Level 1 skips phase 2 entirely).
func (t *subjectTelemetry) sessionDone(st phaseStamps, level Level, peer transport.Addr, version wire.Version, doneAt time.Duration) {
	if t == nil || !level.Valid() {
		return
	}
	t.discoveries[level].Inc()
	phases := t.phases[level]
	detail := fmt.Sprintf("%v peer=%s", version, peer)
	emit := func(phase string, from, to time.Duration) {
		phases[phase].ObserveDuration(to - from)
		t.tracer.Record(obs.Span{
			Session: st.session, Name: "discover", Phase: phase,
			Level: int(level), Detail: detail, Start: from, End: to,
		})
	}
	emit(obs.PhaseQUE1, st.que1At, st.res1At)
	if st.secure {
		emit(obs.PhaseRES1, st.res1At, st.que2At)
		emit(obs.PhaseQUE2, st.que2At, st.res2At)
		emit(obs.PhaseRES2, st.res2At, doneAt)
	} else {
		// Level 1: RES1 arrival → verified is the whole tail.
		emit(obs.PhaseRES2, st.res1At, doneAt)
	}
	emit(obs.PhaseAll, st.que1At, doneAt)
}

// count records n crypto operations on the given counter.
func (t *subjectTelemetry) count(c func(cryptoOps) *obs.Counter, n int64) {
	if t == nil {
		return
	}
	c(t.ops).Add(n)
}

// session allocates a tracer session ID (0 when tracing is off).
func (t *subjectTelemetry) session() uint64 {
	if t == nil {
		return 0
	}
	return t.tracer.NewSession()
}

func (t *subjectTelemetry) retransmit(msg string) {
	if t == nil {
		return
	}
	t.rob.retrans[msg].Inc()
}

func (t *subjectTelemetry) sessionExpired() {
	if t == nil {
		return
	}
	t.rob.expired.Inc()
}

func (t *subjectTelemetry) malformedDrop() {
	if t == nil {
		return
	}
	t.rob.malformed.Inc()
}

// objectTelemetry instruments the object engine.
type objectTelemetry struct {
	que1      map[string]*obs.Counter
	que2      map[string]*obs.Counter
	compute   *obs.Histogram
	res2Bytes *obs.Histogram
	ops       cryptoOps
	rob       robustness
}

// QUE1/QUE2 outcome label values.
const (
	resultPublic    = "public"    // Level 1 plaintext profile returned
	resultHandshake = "handshake" // secure RES1 sent, awaiting QUE2
	resultDuplicate = "duplicate" // flooded QUE1 seen via another path
	resultRefused   = "refused"   // session table full
	resultFellow    = "fellow"    // RES2 under K3 (Level 3 face)
	resultL2        = "l2"        // RES2 under K2 (Level 2 face)
	resultRejected  = "rejected"  // authentication/verification failed
	resultSilent    = "silent"    // no policy admits the subject
	resultOrphan    = "orphan"    // QUE2 with no live session (replay or late arrival)
)

func newObjectTelemetry(reg *obs.Registry) *objectTelemetry {
	t := &objectTelemetry{
		que1: make(map[string]*obs.Counter),
		que2: make(map[string]*obs.Counter),
		compute: reg.Histogram(obs.MObjectComputeSeconds,
			"Equalized object response compute time charged per QUE2 (§VI-B timing countermeasure).",
			obs.LatencyBuckets()),
		res2Bytes: reg.Histogram(obs.MObjectRes2Bytes,
			"RES2 ciphertext length — constant across levels in v3.0 (padding proof).",
			obs.SizeBuckets()),
		ops: newCryptoOps(reg, "object"),
		rob: newRobustness(reg, "object", []string{msgRES1, msgRES2}),
	}
	for _, r := range []string{resultPublic, resultHandshake, resultDuplicate, resultRefused} {
		t.que1[r] = reg.Counter(obs.MObjectQue1, "QUE1 messages handled, by outcome.", obs.L("result", r))
	}
	for _, r := range []string{resultFellow, resultL2, resultRejected, resultSilent, resultOrphan} {
		t.que2[r] = reg.Counter(obs.MObjectQue2, "QUE2 messages handled, by outcome.", obs.L("result", r))
	}
	return t
}

func (t *objectTelemetry) que1Result(r string) {
	if t == nil {
		return
	}
	t.que1[r].Inc()
}

func (t *objectTelemetry) que2Result(r string) {
	if t == nil {
		return
	}
	t.que2[r].Inc()
}

func (t *objectTelemetry) response(cost time.Duration, ciphertextLen int) {
	if t == nil {
		return
	}
	t.compute.ObserveDuration(cost)
	t.res2Bytes.Observe(float64(ciphertextLen))
}

func (t *objectTelemetry) count(c func(cryptoOps) *obs.Counter, n int64) {
	if t == nil {
		return
	}
	c(t.ops).Add(n)
}

func (t *objectTelemetry) retransmit(msg string) {
	if t == nil {
		return
	}
	t.rob.retrans[msg].Inc()
}

func (t *objectTelemetry) sessionExpired() {
	if t == nil {
		return
	}
	t.rob.expired.Inc()
}

func (t *objectTelemetry) malformedDrop() {
	if t == nil {
		return
	}
	t.rob.malformed.Inc()
}

// Counter selectors shared by both roles.
func opsSign(o cryptoOps) *obs.Counter      { return o.sign }
func opsVerify(o cryptoOps) *obs.Counter    { return o.verify }
func opsKexGen(o cryptoOps) *obs.Counter    { return o.kexGen }
func opsKexShared(o cryptoOps) *obs.Counter { return o.kexShared }
func opsHMAC(o cryptoOps) *obs.Counter      { return o.hmac }
func opsCipher(o cryptoOps) *obs.Counter    { return o.cipher }
