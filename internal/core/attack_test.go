package core

// §VII of the paper analyzes nine attack cases. This file makes each case
// executable: attackers eavesdrop via the simulator's Snoop tap or actively
// join the ground network with forged or rogue credentials, and the tests
// assert that every attack fails exactly as the analysis claims — plus one
// regression that the v2.0 distinguishability attack *succeeds*, which is the
// reason v3.0 exists.

import (
	"bytes"
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/wire"
)

// tap records every message on the air, by type.
type tap struct {
	msgs []tapped
}

type tapped struct {
	from, to netsim.NodeID
	payload  []byte
	msg      wire.Message
}

func (t *tap) install(net *netsim.Network) {
	net.Snoop(func(from, to netsim.NodeID, payload []byte) {
		m, err := wire.Decode(payload)
		if err != nil {
			return
		}
		t.msgs = append(t.msgs, tapped{from, to, append([]byte(nil), payload...), m})
	})
}

func (t *tap) byType(mt wire.MsgType) []tapped {
	var out []tapped
	for _, m := range t.msgs {
		if m.msg.Type() == mt {
			out = append(out, m)
		}
	}
	return out
}

// foreignSubject provisions a subject from a *different* backend (an external
// attacker: "not registered at the backend thus have no backend-signed public
// keys").
func foreignSubject(t *testing.T, attrs attr.Set) *backend.SubjectProvision {
	t.Helper()
	fb, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := fb.RegisterSubject("external-attacker", attrs)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := fb.ProvisionSubject(id)
	if err != nil {
		t.Fatal(err)
	}
	return prov
}

// Case 1: a passive eavesdropper on a Level 2 discovery must not obtain
// PROF_O — the RES2 ciphertext is opaque without K2, and ephemeral ECDH means
// even the long-term keys would not decrypt it (forward secrecy).
func TestCase1EavesdropperCannotReadLevel2Profile(t *testing.T) {
	d := newDeployment(t)
	tp := &tap{}
	tp.install(d.net)
	d.b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='safe'"), []string{"open-combination-1234"})
	d.addSubject("staff", attr.MustSet("position=staff"), wire.V30)
	d.addObject("safe", L2, attr.MustSet("type=safe"), []string{"open-combination-1234"}, wire.V30)

	if res := d.run(); len(res) != 1 {
		t.Fatalf("discovery failed: %d results", len(res))
	}
	res2s := tp.byType(wire.TRES2)
	if len(res2s) != 1 {
		t.Fatalf("captured %d RES2", len(res2s))
	}
	ct := res2s[0].msg.(*wire.RES2).Ciphertext
	// The service information never appears in the clear on the wire.
	marker := []byte("open-combination-1234")
	for _, m := range tp.msgs {
		if m.msg.Type() != wire.TRES1 && bytes.Contains(m.payload, marker) {
			t.Fatalf("service information in plaintext in %v", m.msg.Type())
		}
	}
	// Decryption attempts without K2 fail.
	for i := 0; i < 32; i++ {
		guess, _ := suite.NewGroupKey(nil)
		if _, err := suite.DecryptProfile(guess, ct); err == nil {
			t.Fatal("ciphertext decrypted under a guessed key")
		}
	}
}

// Case 2a: an external subject impostor (no backend-signed key) interacts
// with a Level 2 object; the object must return nothing.
func TestCase2SubjectImpostorGetsNothing(t *testing.T) {
	d := newDeployment(t)
	tp := &tap{}
	tp.install(d.net)
	d.b.AddPolicy(attr.MustParse("position=='manager'"),
		attr.MustParse("type=='safe'"), []string{"open"})
	// The attacker claims manager attributes — but her CERT and PROF chain to
	// a foreign admin.
	prov := foreignSubject(t, attr.MustSet("position=manager"))
	ep := d.net.NewEndpoint()
	atk := NewSubject(prov, wire.V30, Costs{}, WithEndpoint(ep))
	d.subjNode = ep.Node()
	d.subject = atk
	d.addObject("safe", L2, attr.MustSet("type=safe"), []string{"open"}, wire.V30)

	if res := d.run(); len(res) != 0 {
		t.Fatalf("impostor discovered %d services", len(res))
	}
	if got := len(tp.byType(wire.TRES2)); got != 0 {
		t.Fatalf("object answered an impostor with %d RES2", got)
	}
}

// Case 2b: an external object impostor cannot feed a subject fake service
// information — RES1 signatures chain to the admin and PROFs are admin-signed.
func TestCase2ObjectImpostorRejected(t *testing.T) {
	d := newDeployment(t)
	d.b.AddPolicy(attr.MustParse("true"), attr.MustParse("true"), []string{"x"})
	d.addSubject("alice", attr.MustSet("position=staff"), wire.V30)

	// Rogue object provisioned by a foreign backend, posing on the network.
	fb, _ := backend.New(suite.S128)
	oid, _, _ := fb.RegisterObject("fake-safe", L2, attr.MustSet("type=safe"), []string{"open"})
	fb.AddPolicy(attr.MustParse("true"), attr.MustParse("true"), []string{"open"})
	prov, err := fb.ProvisionObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	rep := d.net.NewEndpoint()
	NewObject(prov, wire.V30, Costs{}, WithEndpoint(rep))
	d.net.Link(d.subjNode, rep.Node())

	// A rogue Level 1 impostor too: its profile is signed by the wrong admin.
	l1id, _, _ := fb.RegisterObject("fake-thermo", L1, attr.MustSet("type=thermometer"), []string{"read"})
	l1prov, _ := fb.ProvisionObject(l1id)
	rep1 := d.net.NewEndpoint()
	NewObject(l1prov, wire.V30, Costs{}, WithEndpoint(rep1))
	d.net.Link(d.subjNode, rep1.Node())

	if res := d.run(); len(res) != 0 {
		t.Fatalf("subject accepted %d services from impostor objects", len(res))
	}
}

// Case 2c: replayed RES1 from an earlier session is rejected — the object's
// signature covers the fresh R_S.
func TestCase2ReplayedRES1Rejected(t *testing.T) {
	d := newDeployment(t)
	tp := &tap{}
	tp.install(d.net)
	d.b.AddPolicy(attr.MustParse("true"), attr.MustParse("type=='safe'"), []string{"open"})
	d.addSubject("alice", attr.MustSet("position=staff"), wire.V30)
	d.addObject("safe", L2, attr.MustSet("type=safe"), []string{"open"}, wire.V30)
	if res := d.run(); len(res) != 1 {
		t.Fatalf("setup discovery failed")
	}
	captured := tp.byType(wire.TRES1)
	if len(captured) == 0 {
		t.Fatal("no RES1 captured")
	}

	// The attacker replays the captured RES1 whenever it hears a new QUE1.
	replayed := captured[0].payload
	var replayer netsim.NodeID
	replayer = d.net.AddNode(netsim.HandlerFunc(func(net *netsim.Network, from netsim.NodeID, p []byte) {
		if m, err := wire.Decode(p); err == nil && m.Type() == wire.TQUE1 {
			net.Send(replayer, from, replayed)
		}
	}))
	d.net.Link(d.subjNode, replayer)

	before := len(d.subject.Results())
	d.run()
	// The genuine safe answers again (new round), the replayer's copy fails
	// signature verification against the fresh R_S.
	after := d.subject.Results()[before:]
	for _, r := range after {
		if r.Node == netsim.AddrOf(replayer) {
			t.Fatal("replayed RES1 accepted")
		}
	}
}

// Cases 3+4: the Level 3 analogues of Cases 1 and 2: an eavesdropper cannot
// decrypt a fellow's RES2 (needs K3), and a rogue *internal* subject with a
// valid key but no group key gets only the Level 2 face.
func TestCase3And4Level3SecrecyAgainstEavesdropperAndInternalImpostor(t *testing.T) {
	d, _ := covertFixture(t, wire.V30, true)
	tp := &tap{}
	tp.install(d.net)
	if res := d.run(); len(res) != 1 || res[0].Level != L3 {
		t.Fatalf("fellow discovery failed: %+v", res)
	}
	res2s := tp.byType(wire.TRES2)
	if len(res2s) != 1 {
		t.Fatalf("captured %d RES2", len(res2s))
	}
	for _, m := range tp.msgs {
		if bytes.Contains(m.payload, []byte("counseling-flyers")) {
			t.Fatalf("covert service information on the wire in plaintext (%v)", m.msg.Type())
		}
	}
	for i := 0; i < 32; i++ {
		guess, _ := suite.NewGroupKey(nil)
		if _, err := suite.DecryptProfile(guess, res2s[0].msg.(*wire.RES2).Ciphertext); err == nil {
			t.Fatal("covert ciphertext decrypted under guessed key")
		}
	}

	// Internal impostor: registered at the same backend, valid private key,
	// but not a fellow (cover-up key only). Covered by covertFixture with
	// subjectInGroup=false: she sees only the Level 2 face.
	d2, _ := covertFixture(t, wire.V30, false)
	res := d2.run()
	if len(res) != 1 || res[0].Level != L2 {
		t.Fatalf("internal impostor results = %+v, want L2 face only", res)
	}
}

// Case 5: sensitive-attribute secrecy against an eavesdropper. MAC_{S,3}
// reveals nothing without K2 and the group key: MACs from a real fellow and
// from a cover-up subject are structurally identical, and the group→attribute
// mapping never leaves the backend.
func TestCase5EavesdropperCannotIdentifyGroupMembership(t *testing.T) {
	collectMACS3 := func(inGroup bool) []byte {
		d, _ := covertFixture(t, wire.V30, inGroup)
		tp := &tap{}
		tp.install(d.net)
		d.run()
		que2s := tp.byType(wire.TQUE2)
		if len(que2s) != 1 {
			t.Fatalf("captured %d QUE2", len(que2s))
		}
		return que2s[0].msg.(*wire.QUE2).MACS3
	}
	fellow := collectMACS3(true)
	coverup := collectMACS3(false)
	if len(fellow) != suite.MACSize || len(coverup) != suite.MACSize {
		t.Fatalf("MAC_{S,3} sizes: fellow %d, cover-up %d", len(fellow), len(coverup))
	}
	if bytes.Equal(fellow, coverup) {
		t.Fatal("MACs identical — should be keyed differently")
	}
	// Without K2 and K_grp the attacker cannot verify either MAC against any
	// candidate group key: every verification fails identically.
	h := [32]byte{}
	for i := 0; i < 16; i++ {
		guess, _ := suite.NewGroupKey(nil)
		if suite.VerifyMAC(guess, suite.LabelSubjectFinished, h, fellow) ||
			suite.VerifyMAC(guess, suite.LabelSubjectFinished, h, coverup) {
			t.Fatal("MAC verified under guessed key")
		}
	}
}

// Case 7: indistinguishability against an eavesdropper. (i) Every v3.0 QUE2
// has the same composition whether the subject holds a real or a cover-up
// key. (ii) RES2 from a Level 3 object has identical shape and length to a
// fellow and to a non-fellow.
func TestCase7TrafficShapesIdentical(t *testing.T) {
	shape := func(inGroup bool) (que2Len, res2Len int) {
		d, _ := covertFixture(t, wire.V30, inGroup)
		tp := &tap{}
		tp.install(d.net)
		if res := d.run(); len(res) != 1 {
			t.Fatalf("discovery failed (inGroup=%v)", inGroup)
		}
		q := tp.byType(wire.TQUE2)
		r := tp.byType(wire.TRES2)
		if len(q) != 1 || len(r) != 1 {
			t.Fatalf("captured %d QUE2, %d RES2", len(q), len(r))
		}
		que2 := q[0].msg.(*wire.QUE2)
		if len(que2.MACS3) != suite.MACSize {
			t.Fatal("v3.0 QUE2 missing MAC_{S,3}")
		}
		// X.509 DER lengths naturally vary by a byte or two between
		// *identities*; CERT_S is public either way, so compare the QUE2
		// length net of the certificate field.
		return len(q[0].payload) - len(que2.CertS), len(r[0].payload)
	}
	fq, fr := shape(true)
	cq, cr := shape(false)
	if fq != cq {
		t.Errorf("QUE2 shapes differ: fellow %d vs cover-up %d (net of CERT)", fq, cq)
	}
	if fr != cr {
		t.Errorf("RES2 lengths differ: fellow %d vs non-fellow %d — length leaks Level 3", fr, cr)
	}
}

// Case 8: the elimination attack. An internal rogue subject verifies whether
// RES2 is a MAC_{O,2}; under v2.0 a Level 3 object always answers with
// MAC_{O,3}, so "not MAC_{O,2}" reveals Level 3 (the attack SUCCEEDS — this
// is the regression motivating v3.0). Under v3.0 the double-faced role sends
// the attacker a verifiable MAC_{O,2}: every object looks like Level 2.
func TestCase8EliminationAttack(t *testing.T) {
	probe := func(v wire.Version, level Level) (discoveries int, sawLevel Level) {
		d := newDeployment(t)
		// Attacker is a legitimately registered student with no sensitive
		// attribute (internal, gone rogue).
		d.b.AddPolicy(attr.MustParse("position=='student'"),
			attr.MustParse("type=='kiosk'"), []string{"use"})
		g, _ := d.b.Groups.CreateGroup("hidden-group")
		d.addSubject("rogue-student", attr.MustSet("position=student"), v)
		oid, _, _ := d.b.RegisterObject("kiosk", level, attr.MustSet("type=kiosk"), []string{"use"})
		if level == L3 {
			d.b.AddCovertService(oid, g.ID(), []string{"use", "covert"})
		}
		d.attachObject(oid, v)
		res := d.run()
		if len(res) == 0 {
			return 0, 0
		}
		return len(res), res[0].Level
	}

	// v2.0: L2 object → verifiable RES2; L3 object → nothing verifiable.
	// The attacker distinguishes by outcome.
	n2, _ := probe(wire.V20, L2)
	n3, _ := probe(wire.V20, L3)
	if n2 != 1 || n3 != 0 {
		t.Fatalf("v2.0 elimination attack should distinguish: L2→%d, L3→%d results", n2, n3)
	}

	// v3.0: both look like Level 2.
	n2, l2 := probe(wire.V30, L2)
	n3, l3 := probe(wire.V30, L3)
	if n2 != 1 || n3 != 1 {
		t.Fatalf("v3.0: L2→%d, L3→%d results, want 1 and 1", n2, n3)
	}
	if l2 != L2 || l3 != L2 {
		t.Fatalf("v3.0 perceived levels: %v and %v, want L2 and L2", l2, l3)
	}
}

// Case 9: timing. With calibrated compute costs, a Level 3 object charges an
// identical virtual computation time on its fellow and non-fellow paths, so
// response times cannot distinguish them.
func TestCase9ResponseTimeEqualized(t *testing.T) {
	res2SendTime := func(inGroup bool) (que2At, res2At int64) {
		d, _ := covertFixture(t, wire.V30, inGroup)
		// Calibrated costs make timing differences visible if present.
		costs := Costs{Sign: 10_000_000, Verify: 12_000_000, KexGen: 9_000_000,
			KexShared: 11_000_000, HMAC: 50_000, Cipher: 300_000}
		d.subject.costs = costs
		d.objects["magazine-machine"].costs = costs
		var qAt, rAt int64
		d.net.Snoop(func(from, to netsim.NodeID, p []byte) {
			if m, err := wire.Decode(p); err == nil {
				switch m.Type() {
				case wire.TQUE2:
					qAt = int64(d.net.Now())
				case wire.TRES2:
					rAt = int64(d.net.Now())
				}
			}
		})
		d.run()
		return qAt, rAt
	}
	fq, fr := res2SendTime(true)
	cq, cr := res2SendTime(false)
	if fr == 0 || cr == 0 {
		t.Fatal("RES2 not observed")
	}
	fellowDelta := fr - fq
	nonFellowDelta := cr - cq
	diff := fellowDelta - nonFellowDelta
	if diff < 0 {
		diff = -diff
	}
	// Identical compute charges; only link jitter differs. Allow the jitter
	// envelope of a single RES2 transmission (±15% of ~6 ms).
	if diff > 2_000_000 { // 2 ms
		t.Fatalf("fellow vs non-fellow RES2 latency differs by %d ns — timing side channel", diff)
	}
}

// Internal attackers (§VII-C): a rogue entity's own private key does not help
// it eavesdrop on other sessions; this is Case 1/3 with an internal identity,
// already enforced by the key schedule. Here we additionally verify the
// compromise-containment claim of §VII-D: possessing one group key exposes
// only that group.
func TestKeyCompromiseContainment(t *testing.T) {
	d := newDeployment(t)
	g1, _ := d.b.Groups.CreateGroup("group-1")
	g2, _ := d.b.Groups.CreateGroup("group-2")
	sid, _, _ := d.b.RegisterSubject("s", attr.MustSet("position=student"))
	d.b.AddSubjectToGroup(sid, g1.ID()) // attacker compromises group-1's key

	o2, _, _ := d.b.RegisterObject("covert-2", L3, attr.MustSet("type=kiosk"), []string{"use"})
	d.b.AddCovertService(o2, g2.ID(), []string{"use", "covert-2-secret"})

	d.attachSubject(sid, wire.V30)
	d.attachObject(o2, wire.V30)

	if err := d.subject.DiscoverAll(1, func() { d.net.Run(0) }); err != nil {
		t.Fatal(err)
	}
	for _, r := range d.subject.Results() {
		if r.Level == L3 {
			t.Fatalf("group-1 key discovered group-2's covert service")
		}
	}
}

// TestForwardSecrecyEphemeralKEXM: §VII Case 1 rests on ephemeral ECDH —
// "cracking a long-term key might be easier than a session key" but does not
// help because key-exchange material is fresh per session. Two rounds
// between the same subject and object must use distinct KEXM values on both
// sides; recording traffic today and stealing long-term keys tomorrow yields
// nothing.
func TestForwardSecrecyEphemeralKEXM(t *testing.T) {
	d := newDeployment(t)
	tp := &tap{}
	tp.install(d.net)
	d.b.AddPolicy(attr.MustParse("true"), attr.MustParse("type=='safe'"), []string{"open"})
	d.addSubject("alice", attr.MustSet("position=staff"), wire.V30)
	d.addObject("safe", L2, attr.MustSet("type=safe"), []string{"open"}, wire.V30)

	d.run() // round 1
	d.run() // round 2

	var kexmO, kexmS [][]byte
	for _, m := range tp.msgs {
		switch v := m.msg.(type) {
		case *wire.RES1:
			if v.Mode == wire.ModeSecure {
				kexmO = append(kexmO, v.KEXMO)
			}
		case *wire.QUE2:
			kexmS = append(kexmS, v.KEXMS)
		}
	}
	if len(kexmO) != 2 || len(kexmS) != 2 {
		t.Fatalf("captured %d RES1, %d QUE2", len(kexmO), len(kexmS))
	}
	if bytes.Equal(kexmO[0], kexmO[1]) {
		t.Fatal("object reused its ECDH value across sessions — forward secrecy broken")
	}
	if bytes.Equal(kexmS[0], kexmS[1]) {
		t.Fatal("subject reused her ECDH value across sessions — forward secrecy broken")
	}
	// And neither side's KEXM equals its long-term public key.
	for _, m := range tp.msgs {
		if q, ok := m.msg.(*wire.QUE2); ok {
			info, err := cert.VerifyCert(d.b.CACert(), q.CertS, suite.S128)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(q.KEXMS, info.Public.Bytes()) {
				t.Fatal("KEXM is the long-term key — static DH, no forward secrecy")
			}
		}
	}
}
