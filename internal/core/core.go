// Package core implements the Argus 3-in-1 discovery protocol — the paper's
// primary contribution: concurrent service discovery at three visibility
// levels (public, differentiated, covert), in the three iterations the paper
// develops:
//
//   - v1.0 (Fig 3): Level 1 + Level 2. A 4-way handshake (QUE1, RES1, QUE2,
//     RES2) embedding profile exchange: mutual ECDSA authentication,
//     ephemeral ECDH, session key K2, differentiated PROF variants selected
//     by predicates over the subject's non-sensitive attributes.
//   - v2.0 (Fig 4): adds Level 3 sensitive-attribute secrecy. Fellows prove
//     possession of a shared secret-group key through MAC_{S,3}/MAC_{O,3}
//     under K3 = HMAC(K2‖K_grp, ...). Level 3 traffic remains
//     distinguishable from Level 2 — the weakness v3.0 closes.
//   - v3.0 (Fig 5): indistinguishability. Every QUE2 carries both subject
//     MACs (cover-up keys make that possible for subjects with no sensitive
//     attribute); Level 3 objects are double-faced, answering fellows under
//     K3 and everyone else under K2 with byte-identical message shapes,
//     constant ciphertext lengths and equalized response times.
//
// Engines run real cryptography (internal/suite) and inject *modeled*
// computation time into the simulator's virtual clock through a Costs table,
// reproducing the phone/Pi asymmetry of the paper's testbed.
//
// # Concurrency contract
//
// An engine is single-writer: all message handling, session mutation and
// timer callbacks happen on one goroutine — the engine's event loop, owned by
// the transport.Endpoint the engine is bound to. For the netsim adapter that
// loop is the goroutine driving netsim.Network.Run; for the concurrent
// transports (Mesh, UDP) it is the endpoint's actor goroutine, which drains a
// mailbox of inbound frames, timer callbacks and Do closures strictly
// sequentially. Either way the engine itself never needs locks: Handle,
// Refresh, Revoke, NextGroup and the timer callbacks all execute on that one
// goroutine. Code outside the loop mutates engine state only by submitting a
// closure through Endpoint.Do.
//
// Exactly three read paths are safe from other goroutines while the loop
// runs, because telemetry consumers (the obs HTTP handler, progress
// reporters) poll them live: Results and PendingSessions on both engine
// kinds, and the obs registry itself. Results copies under an internal
// mutex; PendingSessions reads an atomic mirror of the session-table size
// that the event loop republishes after every mutation. Everything else is
// loop-private and intentionally unsynchronized — the -race tests
// TestConcurrentResultsReaders and TestMeshDiscoveryRace enforce exactly
// this boundary.
package core

import (
	"time"

	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"
)

// Level re-exports the backend's visibility level for API convenience.
type Level = backend.Level

// Visibility levels.
const (
	L1 = backend.L1
	L2 = backend.L2
	L3 = backend.L3
)

// Costs models the virtual compute time of each cryptographic operation on a
// device class. The zero value charges nothing (instant compute), which is
// what unit tests use; the exp package provides calibrated tables for the
// subject device (phone) and objects (Pi) matching Fig 6(a)/(b).
type Costs struct {
	Sign      time.Duration // ECDSA signature generation
	Verify    time.Duration // ECDSA verification (CERT, SIG, PROF)
	KexGen    time.Duration // ephemeral ECDH parameter generation
	KexShared time.Duration // ECDH shared-secret computation
	HMAC      time.Duration // one HMAC generation or verification
	Cipher    time.Duration // one AES profile encryption or decryption
}

// Discovery is one successfully discovered service.
type Discovery struct {
	// Object identifies the discovered device.
	Object cert.ID
	// Node is the object's transport address: the simulator node's decimal
	// ID under the netsim adapter, a mesh or UDP address otherwise. The type
	// is transport-neutral so results never leak simulator details.
	Node transport.Addr
	// Level is the visibility level the service was discovered at, as
	// perceived by the subject: L1 for public profiles, L2 when RES2
	// verified under K2, L3 when it verified under K3. (A Level 3 object
	// answering its Level 2 face is — correctly — reported as L2.)
	Level Level
	// Group is the secret group the covert service was found through
	// (0 unless Level == L3).
	Group uint64
	// Profile is the verified service information.
	Profile *cert.Profile
	// At is the virtual time the discovery completed.
	At time.Duration
	// Round is the subject's discovery round that produced this result.
	Round int
}

// sessionKey identifies an in-progress handshake: the peer's transport
// address plus the subject nonce, so concurrent discoveries by different
// subjects (or rounds) never collide.
type sessionKey struct {
	peer transport.Addr
	rs   [suite.NonceSize]byte
}

func mkSessionKey(peer transport.Addr, rs []byte) sessionKey {
	var k sessionKey
	k.peer = peer
	copy(k.rs[:], rs)
	return k
}

// transcriptS returns the transcript cut for the subject finished MACs:
// QUE1 ‖ RES1 ‖ QUE2 core fields ‖ subject signature ("*" at the point the
// subject finishes, §V).
func transcriptS(que1Enc, res1Enc []byte, q *wire.QUE2) *wire.Transcript {
	t := &wire.Transcript{}
	t.Add(wire.SigInputQUE2(que1Enc, res1Enc, q))
	t.Add(q.Sig)
	return t
}

// transcriptO extends the subject cut with the finished MACs of QUE2 and the
// RES2 ciphertext — everything sent and received when the object finishes.
func transcriptO(ts *wire.Transcript, q *wire.QUE2, ciphertext []byte) *wire.Transcript {
	t := ts.Clone()
	t.Add(q.MACS2)
	t.Add(q.MACS3)
	t.Add(ciphertext)
	return t
}

// transcriptOHash is the hot-path form of transcriptO: both engines only
// ever hash the object cut, so the extension lives in a pooled buffer that
// is released before returning instead of surviving as garbage.
func transcriptOHash(ts *wire.Transcript, q *wire.QUE2, ciphertext []byte) [32]byte {
	t := ts.CloneInto(len(q.MACS2) + len(q.MACS3) + len(ciphertext))
	t.Add(q.MACS2)
	t.Add(q.MACS3)
	t.Add(ciphertext)
	h := t.Hash()
	t.Release()
	return h
}
