package core

import (
	"argus/internal/cert"
	"argus/internal/obs"
	"argus/internal/transport"
)

// Option configures a Subject or Object engine at construction. The options
// pattern replaces the earlier mutator sprawl (Attach / SetRetry /
// Instrument), which forced every caller to know the right post-construction
// call order and grew a method per knob; options compose, apply atomically
// before the engine handles its first message, and keep NewSubject/NewObject
// signatures stable as knobs accumulate.
type Option func(*engineOptions)

type engineOptions struct {
	ep transport.Endpoint

	retry    RetryPolicy
	hasRetry bool

	reg    *obs.Registry
	tracer *obs.Tracer
	hasTel bool

	vcache *cert.VerifyCache
}

func applyOptions(opts []Option) engineOptions {
	var eo engineOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&eo)
		}
	}
	return eo
}

// WithEndpoint binds the engine to its transport endpoint at construction:
// the engine is installed as the endpoint's inbound handler before it can
// receive its first frame. Equivalent to calling Bind(ep) on the fresh
// engine. An engine built without this option is inert until Bind.
func WithEndpoint(ep transport.Endpoint) Option {
	return func(eo *engineOptions) { eo.ep = ep }
}

// WithRetry installs the retransmission policy (the former SetRetry mutator).
// The zero policy disables retransmission, duplicate-response resends and
// TTL-based session expiry, reproducing the one-shot seed protocol exactly.
func WithRetry(p RetryPolicy) Option {
	return func(eo *engineOptions) { eo.retry = p; eo.hasRetry = true }
}

// WithTelemetry attaches a metrics registry and, for subjects, an optional
// span tracer (the former Instrument mutator; objects ignore tr). Telemetry
// is purely observational — it consumes no randomness and schedules no
// events, so instrumented and uninstrumented runs of one seed are identical.
func WithTelemetry(reg *obs.Registry, tr *obs.Tracer) Option {
	return func(eo *engineOptions) { eo.reg = reg; eo.tracer = tr; eo.hasTel = true }
}

// WithVerifyCache shares a credential-verification cache with the engine: the
// CERT-chain and PROF checks of the Level 2/3 handshake consult it, so a peer
// seen before costs zero ECDSA credential verifications (only the per-session
// nonce signatures remain). A nil cache — and the default, when the option is
// absent — verifies every credential from scratch. The cache affects real
// wall-clock work only; the modeled virtual Costs are charged identically
// either way, so fixed-seed simulations are byte-identical with and without
// it (the engine cannot observe a hit, only the host's CPU can).
//
// Caches may be shared across engines: entries are keyed by trust anchor and
// credential bytes, so engines with different anchors never alias. The engine
// invalidates on Refresh (anchor change flushes; newly revoked peers are
// dropped) and Object.Revoke; rotated credentials miss inherently, because
// re-issued bytes hash to a different key.
func WithVerifyCache(c *cert.VerifyCache) Option {
	return func(eo *engineOptions) { eo.vcache = c }
}
