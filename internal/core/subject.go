package core

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/groups"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"
)

// errUnbound is returned by Discover on an engine with no endpoint.
var errUnbound = errors.New("core: engine not bound to a transport endpoint")

// Subject is the subject-side discovery engine (the user's device). It
// implements transport.Handler: broadcast QUE1, collect RES1s, run the
// phase-2 handshake with every Level 2/3 responder, and report verified
// discoveries.
type Subject struct {
	prov    *backend.SubjectProvision
	version wire.Version
	costs   Costs
	ep      transport.Endpoint

	// activeGroup indexes prov.Memberships: the group key used for
	// MAC_{S,3} this round. Devices rotate keys across rounds (§VI-C).
	activeGroup int
	round       int
	rs          []byte
	que1Enc     []byte
	que1At      time.Duration // transport time of the current round's broadcast

	sessions map[sessionKey]*subjSession

	// results is the one piece of engine state external goroutines read while
	// the event loop runs (see the concurrency contract in core.go), so it is
	// mutex-guarded; pendingN mirrors len(sessions) for the same reason.
	resMu    sync.Mutex
	results  []Discovery
	pendingN atomic.Int64

	// vcache, when non-nil, memoizes CERT/PROF credential verifications (see
	// WithVerifyCache). All call sites go through it; a nil cache verifies.
	vcache *cert.VerifyCache

	// retry drives retransmission and session expiry under lossy networks;
	// the zero value keeps the one-shot seed behavior (see RetryPolicy).
	retry   RetryPolicy
	lastTTL int // hop TTL of the current round, for QUE1 rebroadcasts

	// wheel coalesces retry/expiry deadlines when retry.Adaptive is set; nil
	// on the legacy per-attempt timer path. rtt feeds its deadlines with the
	// observed handshake round-trip, and que1Timer is the current round's
	// pending rebroadcast (deferred while responses keep arriving).
	wheel     *timerWheel
	rtt       rttEstimator
	que1Timer *wheelEntry
	// que1Attempt is the probe-chain position the pending rebroadcast will
	// fire at. Round activity resets it to 1: Que1Retries bounds CONSECUTIVE
	// silent probes, not total probes per round, so a round stalled behind a
	// long compute backlog (every probe in the budget fired unanswered, then
	// late responses finally arrived) gets its recovery chain back instead of
	// being stranded with expired sessions and an exhausted budget.
	que1Attempt int
	// completedRound is the last round a harness declared done via
	// CompleteRound: handshake traffic still processes normally, but no new
	// retry deadlines are armed for it (a responder answering after the
	// declared quota — e.g. an object silently refusing a revoked subject —
	// must not leave a retransmission timer ticking toward a misfire).
	completedRound int

	// l1Recorded dedupes Level 1 discoveries within a round: fault injection
	// can deliver the same plaintext RES1 twice (link-layer duplication or a
	// QUE1 rebroadcast), and a Level 1 exchange has no session to anchor on.
	l1Recorded map[transport.Addr]bool
	// secRecorded maps an object address to the last round a secure (L2/L3)
	// discovery from it was recorded. Adaptive-path only: once a handshake
	// restart is possible (the object re-answers a rebroadcast after its
	// session expired), a late restart RES1 can arrive AFTER the original
	// handshake already completed — re-handshaking it would double-credit
	// the round. Rounds start at 1, so the zero value never collides.
	secRecorded map[transport.Addr]int

	tel *subjectTelemetry

	// OnDiscovery, if set, is invoked for every verified discovery, on the
	// engine's event loop.
	OnDiscovery func(Discovery)
}

type subjSession struct {
	objAddr transport.Addr
	ro      []byte // object nonce, distinguishes RES1 resends from restarts
	k2      []byte
	k3      []byte
	group   groups.ID
	ts      *wire.Transcript // subject-cut transcript
	que2    *wire.QUE2
	que2Enc []byte // cached encoding, resent verbatim on timeout/duplicate RES1
	round   int
	stamps  phaseStamps

	// Adaptive-path state: wheel entries for the pending retransmission and
	// the TTL expiry, and the transport time of the last QUE2 (re)send the
	// RTO horizon is measured from. All nil/zero on the legacy path.
	que2Timer *wheelEntry
	expiry    *wheelEntry
	sentAt    time.Duration
}

// NewSubject creates an engine from a backend provision, applying any
// construction options (see Option).
func NewSubject(prov *backend.SubjectProvision, version wire.Version, costs Costs, opts ...Option) *Subject {
	s := &Subject{
		prov:       prov,
		version:    version,
		costs:      costs,
		sessions:   make(map[sessionKey]*subjSession),
		l1Recorded: make(map[transport.Addr]bool),
	}
	eo := applyOptions(opts)
	if eo.hasRetry {
		s.retry = eo.retry
	}
	if eo.hasTel {
		s.instrument(eo.reg, eo.tracer)
	}
	s.vcache = eo.vcache
	if eo.ep != nil {
		s.Bind(eo.ep)
	}
	return s
}

// Bind attaches the engine to a transport endpoint and installs it as the
// endpoint's inbound handler. Call once, before the first Discover; engines
// constructed with WithEndpoint are already bound.
func (s *Subject) Bind(ep transport.Endpoint) {
	s.ep = ep
	if s.retry.Enabled() && s.retry.Adaptive {
		s.wheel = newTimerWheel(ep)
	}
	ep.Bind(s)
}

// PendingSessions returns the number of in-progress phase-2 handshakes —
// the leak the chaos tests assert returns to zero after SessionTTL. Safe to
// call from any goroutine (it reads a mirror the event loop maintains).
func (s *Subject) PendingSessions() int { return int(s.pendingN.Load()) }

// syncPending republishes len(sessions) after a mutation; event-loop only.
func (s *Subject) syncPending() { s.pendingN.Store(int64(len(s.sessions))) }

// instrument attaches a metrics registry and an optional span tracer.
// Telemetry is purely observational — it consumes no randomness and
// schedules no events, so instrumented and uninstrumented runs of the same
// seed are identical.
func (s *Subject) instrument(reg *obs.Registry, tr *obs.Tracer) {
	if reg == nil && tr == nil {
		s.tel = nil
		return
	}
	s.tel = newSubjectTelemetry(reg, tr, s.version)
}

// ID returns the subject's registered identity.
func (s *Subject) ID() cert.ID { return s.prov.ID }

// Refresh applies a re-provision (new PROF, rotated group keys). A changed
// trust anchor (backend re-keying) flushes the verification cache: results
// proven against the old anchor say nothing about the new one.
func (s *Subject) Refresh(prov *backend.SubjectProvision) {
	if !bytes.Equal(s.prov.CACert, prov.CACert) {
		s.vcache.Flush()
	}
	s.prov = prov
	if s.activeGroup >= len(prov.Memberships) {
		s.activeGroup = 0
	}
}

// Results returns all verified discoveries so far. Safe to call from any
// goroutine while the engine runs (see the contract in core.go).
func (s *Subject) Results() []Discovery {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	return append([]Discovery(nil), s.results...)
}

// GroupCount returns how many group keys (incl. cover-up) the device holds.
func (s *Subject) GroupCount() int { return len(s.prov.Memberships) }

// NextGroup advances to the next group key for the following round (§VI-C:
// "her device can automatically use her group keys in turns"). It reports
// whether it wrapped around.
func (s *Subject) NextGroup() (wrapped bool) {
	if len(s.prov.Memberships) == 0 {
		return true
	}
	s.activeGroup++
	if s.activeGroup >= len(s.prov.Memberships) {
		s.activeGroup = 0
		return true
	}
	return false
}

// Discover starts one discovery round: broadcast QUE1 with a fresh R_S
// within ttl hops. Results accumulate as the transport delivers responses.
// Sessions left incomplete two or more rounds ago are pruned — their objects
// are out of range or declined to answer.
//
// Like every state-mutating engine method, Discover must run on the engine's
// event loop: call it inline when driving the simulator, or through
// Endpoint.Do on a concurrent transport.
func (s *Subject) Discover(ttl int) error {
	if s.ep == nil {
		return errUnbound
	}
	rs, err := suite.NewNonce(nil)
	if err != nil {
		return err
	}
	s.round++
	for k, sess := range s.sessions {
		if sess.round < s.round-1 {
			s.dropSessionTimers(sess)
			delete(s.sessions, k)
		}
	}
	if s.wheel != nil && s.que1Timer != nil {
		s.wheel.cancel(s.que1Timer)
		s.que1Timer = nil
	}
	s.syncPending()
	s.rs = rs
	s.que1At = s.ep.Now()
	s.lastTTL = ttl
	s.l1Recorded = make(map[transport.Addr]bool)
	s.tel.roundStarted()
	q := &wire.QUE1{Version: s.version, RS: rs}
	s.que1Enc = q.Encode()
	s.ep.Broadcast(s.que1Enc, ttl)
	if s.retry.Enabled() && s.retry.Que1Retries > 0 {
		if s.wheel != nil {
			s.armQue1Adaptive(1)
		} else {
			s.scheduleQue1Retry(1)
		}
	}
	return nil
}

// scheduleQue1Retry arms the attempt-th QUE1 rebroadcast. The rebroadcast is
// unconditional — the subject cannot know which objects exist, so it cannot
// tell "everyone answered" from "the rest lost my query" — but it is cheap:
// objects suppress the duplicate via R_S, and objects with a stalled
// handshake use it as a cue to resend RES1.
func (s *Subject) scheduleQue1Retry(attempt int) {
	round := s.round
	s.ep.After(s.retry.delay(attempt), func() {
		if s.round != round {
			return // a newer round superseded this one
		}
		s.tel.retransmit(msgQUE1)
		s.ep.Broadcast(s.que1Enc, s.lastTTL)
		if attempt < s.retry.Que1Retries {
			s.scheduleQue1Retry(attempt + 1)
		}
	})
}

// armQue1Adaptive arms the attempt-th QUE1 rebroadcast on the timer wheel.
// Unlike the legacy chain, the deadline is a quiescence detector: every
// response handled this round defers it to now + RTO (see noteActivity), so
// while discovery traffic keeps flowing the rebroadcast never fires. On a
// lossless network the round completes inside one deferral window and the
// entry dies canceled (CompleteRound) or superseded by the next round.
//
// The fire reads s.que1Attempt rather than its captured attempt so that
// noteActivity's chain reset takes effect on an already-armed probe.
func (s *Subject) armQue1Adaptive(attempt int) {
	if s.completedRound == s.round {
		return
	}
	s.que1Attempt = attempt
	round := s.round
	s.que1Timer = s.wheel.schedule(s.retry.delay(attempt), func() {
		s.que1Timer = nil
		if s.round != round {
			return // a newer round superseded this one
		}
		s.tel.retransmit(msgQUE1)
		s.ep.Broadcast(s.que1Enc, s.lastTTL)
		if s.que1Attempt < s.retry.Que1Retries {
			s.armQue1Adaptive(s.que1Attempt + 1)
		}
	})
}

// noteActivity records that current-round discovery traffic is still
// arriving: the pending QUE1 rebroadcast (a quiescence probe, not a response
// timeout) is pushed out to now + RTO, and the probe chain is reset to
// attempt 1 — activity is proof the round is live, so the retry budget
// guards consecutive silence, not lifetime probes. If the budget was already
// exhausted while the network (or a compute backlog) sat on the responses,
// the chain is re-armed: late traffic revives recovery for whatever sessions
// expired during the stall. The configured schedule remains the floor —
// deferTo never moves a deadline earlier.
func (s *Subject) noteActivity() {
	if s.wheel == nil || s.completedRound == s.round {
		return
	}
	s.que1Attempt = 1
	switch {
	case s.que1Timer != nil:
		s.wheel.deferTo(s.que1Timer, s.ep.Now()+s.rtt.rto(s.retry.Timeout))
	case s.retry.Que1Retries > 0:
		s.armQue1Adaptive(1)
	}
}

// dropSessionTimers cancels a session's pending wheel entries (no-op on the
// legacy path, whose timers guard on session liveness instead).
func (s *Subject) dropSessionTimers(sess *subjSession) {
	if s.wheel == nil {
		return
	}
	if sess.que2Timer != nil {
		s.wheel.cancel(sess.que2Timer)
		sess.que2Timer = nil
	}
	if sess.expiry != nil {
		s.wheel.cancel(sess.expiry)
		sess.expiry = nil
	}
}

// CompleteRound tells the engine the caller knows the current round is done
// — every expected responder answered — so its pending retransmission
// deadlines (the QUE1 rebroadcast probe and per-session QUE2 retries) are
// dropped before they can fire, and no new retry deadline is armed for the
// rest of the round: a handshake that progresses after the declaration (an
// object silently refusing a revoked subject, a straggler RES1) completes
// or expires without ever retransmitting. Only a harness that tracks expected response
// counts can know this; the protocol itself cannot distinguish "everyone
// answered" from "the rest lost my query", which is why the timers exist.
// Sessions and their TTL expiries are untouched: completion accounting and
// GC semantics stay exactly as without the call. No-op on the legacy
// (non-adaptive) path. Event-loop only, like every state-mutating method.
func (s *Subject) CompleteRound() {
	if s.wheel == nil {
		return
	}
	s.completedRound = s.round
	if s.que1Timer != nil {
		s.wheel.cancel(s.que1Timer)
		s.que1Timer = nil
	}
	for _, sess := range s.sessions {
		if sess.round == s.round && sess.que2Timer != nil {
			s.wheel.cancel(sess.que2Timer)
			sess.que2Timer = nil
		}
	}
}

// DiscoverAll runs one round per held group key, rotating keys between
// rounds, so every authorized covert service is found (§VI-C). settle is
// called between rounds to let in-flight traffic drain: pass a closure
// running the simulator's event loop (func() { net.Run(0) }), or a bounded
// wall-clock wait on a real transport. A nil settle starts rounds
// back-to-back.
func (s *Subject) DiscoverAll(ttl int, settle func()) error {
	for i := 0; i < max(1, len(s.prov.Memberships)); i++ {
		if err := s.Discover(ttl); err != nil {
			return err
		}
		if settle != nil {
			settle()
		}
		s.NextGroup()
	}
	return nil
}

// Handle implements transport.Handler.
func (s *Subject) Handle(from transport.Addr, payload []byte) {
	msg, err := wire.Decode(payload)
	if err != nil {
		s.tel.malformedDrop()
		return
	}
	switch m := msg.(type) {
	case *wire.RES1:
		s.handleRES1(from, m, payload)
	case *wire.RES2:
		s.handleRES2(from, m)
	}
}

func (s *Subject) handleRES1(from transport.Addr, m *wire.RES1, raw []byte) {
	switch m.Mode {
	case wire.ModePublic:
		s.handlePublicRES1(from, m)
	case wire.ModeSecure:
		s.handleSecureRES1(from, m, raw)
	}
}

// handlePublicRES1 processes a Level 1 response: verify the admin signature
// on the plaintext profile (the subject's only compute-intensive operation in
// Level 1, Fig 6b).
func (s *Subject) handlePublicRES1(from transport.Addr, m *wire.RES1) {
	prof, err := cert.DecodeProfile(m.Prof)
	if err != nil || prof.Kind != cert.RoleObject {
		return
	}
	if err := s.vcache.VerifyProfileAnchored(prof, m.Prof, s.prov.CACert, s.prov.AdminPub, time.Now()); err != nil {
		return
	}
	if s.l1Recorded[from] {
		return // duplicate delivery of this round's plaintext RES1
	}
	s.l1Recorded[from] = true
	if s.wheel != nil {
		s.rtt.observe(s.ep.Now() - s.que1At)
		s.noteActivity()
	}
	st := phaseStamps{session: s.tel.session(), que1At: s.que1At, res1At: s.ep.Now()}
	s.tel.count(opsVerify, 1)
	s.ep.Compute(s.costs.Verify, func() {
		s.tel.sessionDone(st, L1, from, s.version, s.ep.Now())
		s.record(Discovery{
			Object:  prof.Entity,
			Node:    from,
			Level:   L1,
			Profile: prof,
			At:      s.ep.Now(),
			Round:   s.round,
		})
	})
}

// handleSecureRES1 runs the subject side of phase 2: authenticate the
// object, establish K2 (and K3 from the active group key), and send QUE2.
func (s *Subject) handleSecureRES1(from transport.Addr, m *wire.RES1, raw []byte) {
	if s.rs == nil {
		return // no discovery in progress
	}
	if s.wheel != nil && s.secRecorded[from] == s.round {
		return // already credited this object this round: stale restart echo
	}
	if sess, ok := s.sessions[mkSessionKey(from, s.rs)]; ok {
		if s.wheel == nil || bytes.Equal(sess.ro, m.RO) {
			// Duplicate RES1 for a live handshake (link-layer duplication, or
			// the object resent it after a QUE1 rebroadcast). Deriving a fresh
			// KEX here would desync K2 with an object that already consumed
			// our QUE2, deadlocking the session until expiry — so never
			// re-handshake. On the legacy schedule the duplicate usually
			// means our QUE2 was lost, so it is resent verbatim. On the
			// adaptive path the session's own RTO timer owns QUE2
			// retransmission — resending here too turns one congested-start
			// quiescence probe into a probe→RES1→QUE2→RES2 echo storm across
			// the whole fleet; the duplicate is recorded as round activity
			// and nothing more.
			if s.wheel != nil {
				s.noteActivity()
			} else if s.retry.Enabled() && sess.que2Enc != nil {
				s.tel.retransmit(msgQUE2)
				s.ep.Send(from, sess.que2Enc)
			}
			return
		}
		// Fresh R_O under the same R_S: the object restarted the handshake
		// after its session aged out, so the state our cached QUE2's
		// signature covers no longer exists — resending it can only be
		// rejected. Supersede the doomed session and handshake anew.
		s.dropSessionTimers(sess)
		delete(s.sessions, mkSessionKey(from, s.rs))
		s.syncPending()
	}
	if s.wheel != nil {
		s.rtt.observe(s.ep.Now() - s.que1At)
		s.noteActivity()
	}
	info, err := s.vcache.VerifyCert(s.prov.CACert, m.CertO, s.prov.Strength)
	if err != nil || info.Role != cert.RoleObject {
		return
	}
	signed := m.AppendSignedPart(wire.GetScratch(), s.rs)
	sigOK := info.Public.Verify(signed, m.Sig)
	wire.PutScratch(signed)
	if !sigOK {
		return // forged or replayed RES1
	}
	kex, err := suite.NewKeyExchange(s.prov.Strength, nil)
	if err != nil {
		return
	}
	preK, err := kex.Shared(m.KEXMO)
	if err != nil {
		return
	}
	k2 := suite.SessionKey2(preK, s.rs, m.RO)

	q := &wire.QUE2{
		Version: s.version,
		RS:      s.rs,
		ProfS:   s.prov.Profile.Encode(),
		CertS:   s.prov.CertDER,
		KEXMS:   kex.Public(),
	}
	// The QUE2 signature input doubles as the transcript prefix: build it
	// once in pooled scratch, sign it, seed the session transcript from it.
	// (The transcript is retained for the session's lifetime, so it gets its
	// own buffer; the scratch goes straight back to the pool.)
	sigIn := wire.AppendSigInputQUE2(wire.GetScratch(), s.que1Enc, raw, q)
	sig, err := s.prov.Key.Sign(sigIn)
	if err != nil {
		wire.PutScratch(sigIn)
		return
	}
	q.Sig = sig

	ts := wire.NewTranscript(len(sigIn) + len(sig))
	ts.Add(sigIn)
	ts.Add(sig)
	wire.PutScratch(sigIn)
	tsHash := ts.Hash()
	q.MACS2 = suite.FinishedMAC(k2, suite.LabelSubjectFinished, tsHash)

	sess := &subjSession{objAddr: from, ro: append([]byte(nil), m.RO...), k2: k2, ts: ts, round: s.round}
	sess.stamps = phaseStamps{session: s.tel.session(), secure: true, que1At: s.que1At, res1At: s.ep.Now()}
	extraHMACs := 0
	if s.version != wire.V10 && len(s.prov.Memberships) > 0 {
		// v2.0: MAC_{S,3} is attached only when performing Level 3 discovery,
		// i.e. when the subject actually holds a real group key — the
		// composition leak §VI-B describes. v3.0: always attached; subjects
		// without sensitive attributes use their cover-up key, so every QUE2
		// looks the same.
		mem := s.prov.Memberships[s.activeGroup%len(s.prov.Memberships)]
		if s.version == wire.V30 || !mem.CoverUp {
			k3 := suite.SessionKey3(k2, mem.Key, s.rs, m.RO)
			q.MACS3 = suite.FinishedMAC(k3, suite.LabelSubjectFinished, tsHash)
			sess.k3 = k3
			sess.group = mem.Group
			extraHMACs = 2 // K3 derivation + MAC_{S,3}
		}
	}
	sess.que2 = q
	key := mkSessionKey(from, s.rs)
	s.sessions[key] = sess
	s.syncPending()
	if s.retry.Enabled() {
		s.scheduleExpiry(key, sess)
	}

	// Fig 6b subject cost in Level 2/3: 1 signing, 3 verifications (CERT_O,
	// KEXM_O signature, and later PROF_O), 2 ECDH operations. The PROF_O
	// verification and decryption are charged at RES2 time.
	cost := 2*s.costs.Verify + s.costs.KexGen + s.costs.KexShared +
		s.costs.Sign + (2+time.Duration(extraHMACs))*s.costs.HMAC
	if s.tel != nil {
		s.tel.count(opsVerify, 2)
		s.tel.count(opsKexGen, 1)
		s.tel.count(opsKexShared, 1)
		s.tel.count(opsSign, 1)
		s.tel.count(opsHMAC, int64(2+extraHMACs))
	}
	s.ep.Compute(cost, func() {
		sess.stamps.que2At = s.ep.Now()
		enc := q.Encode()
		sess.que2Enc = enc
		sess.sentAt = s.ep.Now()
		s.ep.Send(from, enc)
		if s.retry.Enabled() && s.retry.Que2Retries > 0 {
			if s.wheel != nil {
				s.armQue2Adaptive(key, sess, 1, s.rtt.rto(s.retry.delay(1)))
			} else {
				s.scheduleQue2Retry(key, 1)
			}
		}
	})
}

// scheduleQue2Retry arms the attempt-th QUE2 retransmission for the session
// under key. The timer is a no-op once the session completed (verified RES2)
// or expired.
func (s *Subject) scheduleQue2Retry(key sessionKey, attempt int) {
	s.ep.After(s.retry.delay(attempt), func() {
		sess, ok := s.sessions[key]
		if !ok || sess.que2Enc == nil {
			return
		}
		s.tel.retransmit(msgQUE2)
		s.ep.Send(sess.objAddr, sess.que2Enc)
		if attempt < s.retry.Que2Retries {
			s.scheduleQue2Retry(key, attempt+1)
		}
	})
}

// armQue2Adaptive arms a QUE2 retransmission deadline on the wheel. The
// wait starts at the configured backoff but never undercuts the observed
// round-trip horizon, and a deadline that fires early (the estimator grew
// after arming) re-arms for the remainder instead of retransmitting — on a
// lossless network the verified RES2 cancels the entry first and the wire
// never sees a duplicate QUE2.
func (s *Subject) armQue2Adaptive(key sessionKey, sess *subjSession, attempt int, wait time.Duration) {
	if s.completedRound == s.round && sess.round == s.round {
		return // round declared done: the answer is either in flight or refused
	}
	sess.que2Timer = s.wheel.schedule(wait, func() {
		sess.que2Timer = nil
		if cur, ok := s.sessions[key]; !ok || cur != sess || sess.que2Enc == nil {
			return
		}
		horizon := s.rtt.rto(s.retry.delay(attempt))
		if due := sess.sentAt + horizon; due > s.ep.Now() {
			s.armQue2Adaptive(key, sess, attempt, due-s.ep.Now())
			return
		}
		s.tel.retransmit(msgQUE2)
		s.ep.Send(sess.objAddr, sess.que2Enc)
		sess.sentAt = s.ep.Now()
		if attempt < s.retry.Que2Retries {
			next := attempt + 1
			s.armQue2Adaptive(key, sess, next, s.rtt.rto(s.retry.delay(next)))
		}
	})
}

// scheduleExpiry garbage-collects the session at SessionTTL if it has not
// completed: under total loss nothing else would ever delete it, and a
// leaked session both holds memory and blocks the object's duplicate
// suppression from converging. The pointer comparison protects a newer
// session that reused the key (same peer, same R_S — only possible across
// rounds with a nonce collision, but cheap to be exact about).
func (s *Subject) scheduleExpiry(key sessionKey, sess *subjSession) {
	expire := func() {
		if cur, ok := s.sessions[key]; ok && cur == sess {
			s.dropSessionTimers(sess)
			delete(s.sessions, key)
			s.syncPending()
			s.tel.sessionExpired()
		}
	}
	if s.wheel != nil {
		// On the wheel the expiry is a heap entry, not a live transport
		// timer, and completion cancels it — 20k concurrent sessions hold
		// one armed timer instead of 20k. Expiries are never deferred.
		sess.expiry = s.wheel.schedule(s.retry.ttl(), expire)
		return
	}
	s.ep.After(s.retry.ttl(), expire)
}

// handleRES2 completes the handshake: determine which key the object used
// (K2 → Level 2 face, K3 → Level 3 fellow), verify, decrypt, and verify the
// admin signature on the received PROF variant.
func (s *Subject) handleRES2(from transport.Addr, m *wire.RES2) {
	// RES2 carries no R_S echo, so locate the pending session by peer,
	// preferring the most recent round if several are outstanding.
	var key sessionKey
	var sess *subjSession
	for k, c := range s.sessions {
		if c.objAddr == from && (sess == nil || c.round > sess.round) {
			key, sess = k, c
		}
	}
	if sess == nil {
		// Orphaned RES2: our session expired before the answer arrived. The
		// payload is unusable, but it is still live round traffic — let it
		// defer (or revive) the quiescence probe so the rebroadcast chain
		// restarts the handshake instead of stranding the round.
		s.noteActivity()
		return
	}
	if !s.retry.Enabled() {
		delete(s.sessions, key)
		s.syncPending()
	}
	sess.stamps.res2At = s.ep.Now()
	if s.wheel != nil {
		s.noteActivity()
	}

	toHash := transcriptOHash(sess.ts, sess.que2, m.Ciphertext)

	var level Level
	var sk []byte
	var group groups.ID
	switch {
	// "S first tries to verify it with K2 ... Otherwise she uses K3" (§VI-A).
	case suite.VerifyMAC(sess.k2, suite.LabelObjectFinished, toHash, m.MACO):
		level, sk = L2, sess.k2
	case sess.k3 != nil && suite.VerifyMAC(sess.k3, suite.LabelObjectFinished, toHash, m.MACO):
		level, sk, group = L3, sess.k3, sess.group
	default:
		// Neither key verifies: corrupted or not for us. Under retry the
		// session stays pending — a QUE2 retransmission will fetch a clean
		// copy; the MAC guarantees any verified RES2 is byte-authentic.
		return
	}
	// An authenticated RES2 completes the session; a later duplicate finds
	// no session and is dropped, making delivery effectively exactly-once.
	if s.wheel != nil {
		s.rtt.observe(sess.stamps.res2At - sess.stamps.que2At)
		s.dropSessionTimers(sess)
		if s.secRecorded == nil {
			s.secRecorded = make(map[transport.Addr]int)
		}
		s.secRecorded[from] = sess.round
	}
	delete(s.sessions, key)
	s.syncPending()

	plain, err := suite.DecryptProfile(sk, m.Ciphertext)
	if err != nil {
		return
	}
	prof, err := cert.DecodeProfile(plain)
	if err != nil || prof.Kind != cert.RoleObject {
		return
	}
	if err := s.vcache.VerifyProfileAnchored(prof, plain, s.prov.CACert, s.prov.AdminPub, time.Now()); err != nil {
		return // service information is admin-signed end to end
	}

	cost := 2*s.costs.HMAC + s.costs.Cipher + s.costs.Verify
	if s.tel != nil {
		s.tel.count(opsHMAC, 2)
		s.tel.count(opsCipher, 1)
		s.tel.count(opsVerify, 1)
	}
	s.ep.Compute(cost, func() {
		s.tel.sessionDone(sess.stamps, level, from, s.version, s.ep.Now())
		s.record(Discovery{
			Object:  prof.Entity,
			Node:    from,
			Level:   level,
			Group:   uint64(group),
			Profile: prof,
			At:      s.ep.Now(),
			Round:   sess.round,
		})
	})
}

func (s *Subject) record(d Discovery) {
	s.resMu.Lock()
	s.results = append(s.results, d)
	s.resMu.Unlock()
	if s.OnDiscovery != nil {
		s.OnDiscovery(d)
	}
}
