package core

// Model-based testing: generate random enterprises (attributes, policies,
// secret groups, object levels) and check that what the simulated discovery
// returns is EXACTLY what the backend's policy database predicts — visibility
// scoping is congruent with access control (§II-B), with no object leaking to
// an unauthorized subject and no authorized service missed.

import (
	"fmt"
	"math/rand"
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/groups"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"
)

// randomEnterprise builds a randomized deployment and returns the expected
// visibility for the chosen subject.
type expectation struct {
	level backend.Level
	funcs map[string]bool
}

func TestDiscoveryMatchesPolicyModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	positions := []string{"manager", "staff", "student", "visitor"}
	departments := []string{"X", "Y"}
	types := []string{"lock", "light", "hvac", "vending"}

	for trial := 0; trial < 12; trial++ {
		b, err := backend.New(suite.S128)
		if err != nil {
			t.Fatal(err)
		}

		// Random policies: each grants one position (possibly qualified by
		// department) rights on one device type.
		nPolicies := 1 + rng.Intn(4)
		for i := 0; i < nPolicies; i++ {
			sub := fmt.Sprintf("position=='%s'", positions[rng.Intn(len(positions))])
			if rng.Intn(2) == 0 {
				sub += fmt.Sprintf(" && department=='%s'", departments[rng.Intn(len(departments))])
			}
			obj := fmt.Sprintf("type=='%s'", types[rng.Intn(len(types))])
			rights := []string{fmt.Sprintf("right-%d", i)}
			if _, _, err := b.AddPolicy(attr.MustParse(sub), attr.MustParse(obj), rights); err != nil {
				t.Fatal(err)
			}
		}

		// Two secret groups; the subject joins one at random (or none).
		g1, _ := b.Groups.CreateGroup("g1")
		g2, _ := b.Groups.CreateGroup("g2")
		subjectGroups := map[groups.ID]bool{}

		sattrs := attr.MustSet(fmt.Sprintf("position=%s,department=%s",
			positions[rng.Intn(len(positions))], departments[rng.Intn(len(departments))]))
		sid, _, err := b.RegisterSubject(fmt.Sprintf("subject-%d", trial), sattrs)
		if err != nil {
			t.Fatal(err)
		}
		switch rng.Intn(3) {
		case 0:
			b.AddSubjectToGroup(sid, g1.ID())
			subjectGroups[g1.ID()] = true
		case 1:
			b.AddSubjectToGroup(sid, g2.ID())
			subjectGroups[g2.ID()] = true
		}

		// Random objects.
		nObjects := 3 + rng.Intn(8)
		type objInfo struct {
			name  string
			level backend.Level
			attrs attr.Set
			group groups.ID // covert group if L3
		}
		objs := make([]objInfo, nObjects)
		for i := range objs {
			level := backend.Level(1 + rng.Intn(3))
			oattrs := attr.MustSet(fmt.Sprintf("type=%s,room=R%d", types[rng.Intn(len(types))], rng.Intn(3)))
			name := fmt.Sprintf("obj-%d-%d", trial, i)
			oid, _, err := b.RegisterObject(name, level, oattrs, []string{"base-func"})
			if err != nil {
				t.Fatal(err)
			}
			info := objInfo{name: name, level: level, attrs: oattrs}
			if level == backend.L3 {
				g := g1
				if rng.Intn(2) == 0 {
					g = g2
				}
				if err := b.AddCovertService(oid, g.ID(), []string{"covert-func"}); err != nil {
					t.Fatal(err)
				}
				info.group = g.ID()
			}
			objs[i] = info
		}

		// Expected visibility, computed from first principles:
		expect := map[string]expectation{}
		for _, o := range objs {
			switch o.level {
			case backend.L1:
				expect[o.name] = expectation{level: backend.L1, funcs: map[string]bool{"base-func": true}}
			case backend.L2, backend.L3:
				// Covert face first: fellows see the group variant.
				if o.level == backend.L3 && subjectGroups[o.group] {
					expect[o.name] = expectation{level: backend.L3, funcs: map[string]bool{"covert-func": true}}
					continue
				}
				// Otherwise: first policy (by ID order) whose subject pred
				// matches and whose object pred matches.
				for _, pol := range b.Policies() {
					if pol.Subject.Eval(sattrs) && pol.Object.Eval(o.attrs) {
						fs := map[string]bool{}
						for _, r := range pol.Rights {
							fs[r] = true
						}
						expect[o.name] = expectation{level: backend.L2, funcs: fs}
						break
					}
				}
			}
		}

		// Simulate.
		net := netsim.New(netsim.DefaultWiFi(), int64(trial))
		sprov, err := b.ProvisionSubject(sid)
		if err != nil {
			t.Fatal(err)
		}
		sep := net.NewEndpoint()
		subj := NewSubject(sprov, wire.V30, Costs{}, WithEndpoint(sep))
		sn := sep.Node()
		nameOf := map[transport.Addr]string{}
		for _, o := range objs {
			prov, err := b.ProvisionObject(cert16(o.name))
			if err != nil {
				t.Fatal(err)
			}
			oep := net.NewEndpoint()
			NewObject(prov, wire.V30, Costs{}, WithEndpoint(oep))
			net.Link(sn, oep.Node())
			nameOf[oep.Addr()] = o.name
		}
		if err := subj.DiscoverAll(1, func() { net.Run(0) }); err != nil {
			t.Fatal(err)
		}

		// Compare (DiscoverAll may rediscover the same object across rounds;
		// dedupe on the best = highest level result).
		got := map[string]Discovery{}
		for _, d := range subj.Results() {
			name := nameOf[d.Node]
			if prev, ok := got[name]; !ok || d.Level > prev.Level {
				got[name] = d
			}
		}
		for name, want := range expect {
			d, ok := got[name]
			if !ok {
				t.Errorf("trial %d: %s expected visible at %v, not discovered", trial, name, want.level)
				continue
			}
			if d.Level != want.level {
				t.Errorf("trial %d: %s discovered at %v, want %v", trial, name, d.Level, want.level)
			}
			for _, f := range d.Profile.Functions {
				if !want.funcs[f] {
					t.Errorf("trial %d: %s leaked function %q", trial, name, f)
				}
			}
			for f := range want.funcs {
				found := false
				for _, g := range d.Profile.Functions {
					if g == f {
						found = true
					}
				}
				if !found {
					t.Errorf("trial %d: %s missing function %q", trial, name, f)
				}
			}
		}
		for name := range got {
			if _, ok := expect[name]; !ok {
				t.Errorf("trial %d: %s visible but policy model says hidden — visibility leak", trial, name)
			}
		}
	}
}

// cert16 regenerates the deterministic ID the backend assigned.
func cert16(name string) cert.ID { return cert.IDFromName(name) }
