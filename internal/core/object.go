package core

import (
	"bytes"
	"sync/atomic"
	"time"

	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"
)

// Object is the object-side discovery engine: one per IoT device on the
// ground network. It implements transport.Handler and answers QUE1/QUE2 per
// its level and protocol version.
type Object struct {
	prov    *backend.ObjectProvision
	version wire.Version
	costs   Costs
	ep      transport.Endpoint

	sessions map[sessionKey]*objSession
	seen     map[sessionKey]bool // duplicate-query suppression via R_S (§IV-B)
	revoked  map[cert.ID]bool
	retry    RetryPolicy // zero value: one-shot seed behavior (see RetryPolicy)
	tel      *objectTelemetry

	// wheel coalesces session expiries onto one armed timer when
	// retry.Adaptive is set; nil on the legacy per-session timer path.
	wheel *timerWheel

	// pendingN mirrors len(sessions) for cross-goroutine reads (core.go
	// contract); vcache memoizes credential verifications (WithVerifyCache).
	pendingN atomic.Int64
	vcache   *cert.VerifyCache
}

// Resource bounds. DoS resistance is a non-goal of the paper (§III), but an
// unbounded session table would let any broadcaster exhaust object memory;
// constrained objects cap pending handshakes and periodically forget old
// duplicate-detection state.
const (
	maxPendingSessions = 256
	maxSeenQueries     = 4096
)

type objSession struct {
	subjAddr transport.Addr
	rs       []byte
	ro       []byte
	kex      *suite.KeyExchange
	que1Enc  []byte
	res1Enc  []byte

	// Retry-mode state: a duplicate query means the subject lost our answer,
	// so the cached encoding is resent verbatim — resends must be
	// byte-identical or MACs over the transcript would break, and re-running
	// the response path would leak through timing.
	public   bool   // Level 1 session, cached only for RES1 resends
	answered bool   // QUE2 consumed; the handshake outcome is fixed
	res2Enc  []byte // cached RES2 (nil while pending, and for silent answers)
}

// NewObject creates an engine from a backend provision, applying any
// construction options (see Option). version selects the protocol iteration
// (v3.0 for the full system).
func NewObject(prov *backend.ObjectProvision, version wire.Version, costs Costs, opts ...Option) *Object {
	o := &Object{
		prov:     prov,
		version:  version,
		costs:    costs,
		sessions: make(map[sessionKey]*objSession),
		seen:     make(map[sessionKey]bool),
		revoked:  make(map[cert.ID]bool),
	}
	for _, id := range prov.Revoked {
		o.revoked[id] = true
	}
	eo := applyOptions(opts)
	if eo.hasRetry {
		o.retry = eo.retry
	}
	if eo.hasTel {
		o.instrument(eo.reg)
	}
	o.vcache = eo.vcache
	if eo.ep != nil {
		o.Bind(eo.ep)
	}
	return o
}

// Bind attaches the engine to a transport endpoint and installs it as the
// endpoint's inbound handler. Call once, before traffic flows; engines
// constructed with WithEndpoint are already bound.
func (o *Object) Bind(ep transport.Endpoint) {
	o.ep = ep
	if o.retry.Enabled() && o.retry.Adaptive {
		o.wheel = newTimerWheel(ep)
	}
	ep.Bind(o)
}

// PendingSessions returns the number of sessions held (pending + answered).
// Safe to call from any goroutine (it reads a mirror the event loop
// maintains).
func (o *Object) PendingSessions() int { return int(o.pendingN.Load()) }

// syncPending republishes len(sessions) after a mutation; event-loop only.
func (o *Object) syncPending() { o.pendingN.Store(int64(len(o.sessions))) }

// instrument attaches a metrics registry. Like the subject's, object
// telemetry is purely observational and preserves fixed-seed runs.
func (o *Object) instrument(reg *obs.Registry) {
	if reg == nil {
		o.tel = nil
		return
	}
	o.tel = newObjectTelemetry(reg)
}

// ID returns the object's registered identity.
func (o *Object) ID() cert.ID { return o.prov.ID }

// Name returns the object's registered name.
func (o *Object) Name() string { return o.prov.Name }

// Level returns the object's secrecy level. The object keeps this to itself
// (§IV-A); it is exposed here for experiment bookkeeping only.
func (o *Object) Level() Level { return o.prov.Level }

// Refresh applies a re-provision (after backend churn: policy changes, group
// re-keying, revocation notifications). Cache hygiene: a changed trust anchor
// flushes the verification cache wholesale, and every subject revoked in the
// new provision is individually invalidated, so a blacklisted peer's warm
// credentials can never satisfy the next handshake.
func (o *Object) Refresh(prov *backend.ObjectProvision) {
	if !bytes.Equal(o.prov.CACert, prov.CACert) {
		o.vcache.Flush()
	}
	o.prov = prov
	o.revoked = make(map[cert.ID]bool, len(prov.Revoked))
	for _, id := range prov.Revoked {
		o.revoked[id] = true
		o.vcache.InvalidateEntity(id)
	}
}

// Revoke adds a subject to the object's local blacklist (a backend
// notification arriving on the ground, §VIII) and drops the subject's cached
// credential verifications.
func (o *Object) Revoke(subject cert.ID) {
	o.revoked[subject] = true
	o.vcache.InvalidateEntity(subject)
}

// Handle implements transport.Handler.
func (o *Object) Handle(from transport.Addr, payload []byte) {
	msg, err := wire.Decode(payload)
	if err != nil {
		// Malformed traffic (noise, or fault-injected corruption) is dropped,
		// but no longer silently: the counter makes corruption storms visible.
		o.tel.malformedDrop()
		return
	}
	switch m := msg.(type) {
	case *wire.QUE1:
		o.handleQUE1(from, m, payload)
	case *wire.QUE2:
		o.handleQUE2(from, m)
	}
}

func (o *Object) handleQUE1(from transport.Addr, m *wire.QUE1, raw []byte) {
	if len(m.RS) != suite.NonceSize {
		return
	}
	key := mkSessionKey(from, m.RS)
	if o.seen[key] {
		// A flooded QUE1 arriving via another path is ignored; but under
		// retry, a duplicate for a session still awaiting its QUE2 means the
		// subject likely lost our RES1 — resend the cached bytes. A duplicate
		// whose session already aged out entirely is a restart cue, not a
		// flood echo: the subject is still rebroadcasting past a full
		// SessionTTL, so suppressing it would strand the round forever (both
		// sides expired, nothing left to resend). Clear the dedup mark and
		// run the full fresh-QUE1 path — the same stance the coarse seen
		// reset below takes, with QUE2 signature freshness as the real
		// replay guard. Adaptive-only: the static schedule keeps the seed's
		// byte-exact suppression behavior.
		if sess, ok := o.sessions[key]; ok || o.wheel == nil {
			o.tel.que1Result(resultDuplicate)
			if o.retry.Enabled() && ok && !sess.answered && sess.res1Enc != nil {
				o.tel.retransmit(msgRES1)
				o.ep.Send(from, sess.res1Enc)
			}
			return
		}
		delete(o.seen, key)
	}
	if len(o.seen) >= maxSeenQueries {
		// Coarse reset: old R_S values have long completed or timed out;
		// replays of them are still caught by the signature freshness check.
		o.seen = make(map[sessionKey]bool)
	}
	o.seen[key] = true
	if len(o.sessions) >= maxPendingSessions {
		o.tel.que1Result(resultRefused)
		return // refuse new handshakes until pending ones complete
	}

	if o.prov.Level == L1 {
		// Level 1: return the signed profile in plaintext. No
		// compute-intensive operation on the object (Fig 6b).
		res := &wire.RES1{
			Version: o.version,
			Mode:    wire.ModePublic,
			Prof:    o.prov.PublicProfile.Encode(),
		}
		o.tel.que1Result(resultPublic)
		enc := res.Encode()
		if o.retry.Enabled() {
			// Cache the answer so a duplicate QUE1 can resend it (the
			// public path has no QUE2 to drive retransmission otherwise).
			sess := &objSession{subjAddr: from, public: true, res1Enc: enc}
			o.sessions[key] = sess
			o.syncPending()
			o.scheduleExpiry(key, sess)
			o.scheduleAnsweredGC(key, sess) // born answered: resend window only
		}
		o.ep.Send(from, enc)
		return
	}

	// Level 2/3: respond with handshake material and await QUE2.
	ro, err := suite.NewNonce(nil)
	if err != nil {
		return
	}
	kex, err := suite.NewKeyExchange(o.prov.Strength, nil)
	if err != nil {
		return
	}
	res := &wire.RES1{
		Version: o.version,
		Mode:    wire.ModeSecure,
		RO:      ro,
		CertO:   o.prov.CertDER,
		KEXMO:   kex.Public(),
	}
	signed := res.AppendSignedPart(wire.GetScratch(), m.RS)
	sig, err := o.prov.Key.Sign(signed)
	wire.PutScratch(signed)
	if err != nil {
		return
	}
	res.Sig = sig
	sess := &objSession{
		subjAddr: from,
		rs:       append([]byte(nil), m.RS...),
		ro:       ro,
		kex:      kex,
		que1Enc:  append([]byte(nil), raw...),
	}
	o.sessions[key] = sess
	o.syncPending()
	if o.retry.Enabled() {
		o.scheduleExpiry(key, sess)
	}

	cost := o.costs.KexGen + o.costs.Sign
	o.tel.que1Result(resultHandshake)
	o.tel.count(opsKexGen, 1)
	o.tel.count(opsSign, 1)
	o.ep.Compute(cost, func() {
		sess.res1Enc = res.Encode()
		o.ep.Send(from, sess.res1Enc)
	})
}

func (o *Object) handleQUE2(from transport.Addr, m *wire.QUE2) {
	key := mkSessionKey(from, m.RS)
	sess, ok := o.sessions[key]
	if !ok {
		// No live session for (peer, R_S): a replayed transcript, or a QUE2
		// retransmission that outlived the session TTL. Silence either way —
		// answering would confirm the service exists — but count it so replay
		// storms are visible to the adversary harness.
		o.tel.que2Result(resultOrphan)
		return
	}
	if o.prov.Level == L1 || sess.public {
		return
	}
	if sess.answered {
		// Duplicate QUE2: our RES2 was lost (or is still in flight). The
		// outcome is already fixed — resend the cached bytes verbatim; a
		// remembered silence stays silent. Never re-run the response path:
		// fresh crypto would desync the transcript MACs, and a second
		// compute charge would be a timing tell.
		if sess.res2Enc != nil {
			o.tel.retransmit(msgRES2)
			o.ep.Send(from, sess.res2Enc)
		}
		return
	}
	if !o.retry.Enabled() {
		// One-shot mode: the session is consumed by its first QUE2. Under
		// retry it instead stays pending on verification failure (the QUE2
		// may have been corrupted in flight — a clean retransmission must
		// still be able to complete) and is marked answered on success.
		delete(o.sessions, key)
		o.syncPending()
	}

	// Authenticate the subject: CERT chains to the admin, signature covers
	// the whole transcript, and the freshness of R_O defeats replay.
	info, err := o.vcache.VerifyCert(o.prov.CACert, m.CertS, o.prov.Strength)
	if err != nil || info.Role != cert.RoleSubject {
		o.tel.que2Result(resultRejected)
		return
	}
	if o.revoked[info.ID] {
		o.tel.que2Result(resultRejected)
		return // de-authorized subjects stop seeing services (§VIII)
	}
	// The signature input doubles as the transcript prefix (§V): build it
	// once in pooled scratch; if the signature holds, it seeds the transcript
	// cut below.
	sigInput := wire.AppendSigInputQUE2(wire.GetScratch(), sess.que1Enc, sess.res1Enc, m)
	if !info.Public.Verify(sigInput, m.Sig) {
		wire.PutScratch(sigInput)
		o.tel.que2Result(resultRejected)
		return
	}
	ts := wire.NewTranscript(len(sigInput) + len(m.Sig))
	ts.Add(sigInput)
	ts.Add(m.Sig)
	wire.PutScratch(sigInput)
	// ts is transient on the object side: every exit below releases it.

	prof, err := cert.DecodeProfile(m.ProfS)
	if err != nil || prof.Kind != cert.RoleSubject || prof.Entity != info.ID {
		ts.Release()
		o.tel.que2Result(resultRejected)
		return
	}
	if err := o.vcache.VerifyProfileAnchored(prof, m.ProfS, o.prov.CACert, o.prov.AdminPub, time.Now()); err != nil {
		ts.Release()
		o.tel.que2Result(resultRejected)
		return // PROF must be admin-signed: attributes cannot be self-claimed
	}

	// Key establishment.
	preK, err := sess.kex.Shared(m.KEXMS)
	if err != nil {
		ts.Release()
		o.tel.que2Result(resultRejected)
		return
	}
	k2 := suite.SessionKey2(preK, sess.rs, sess.ro)
	tsHash := ts.Hash()
	if !suite.VerifyMAC(k2, suite.LabelSubjectFinished, tsHash, m.MACS2) {
		ts.Release()
		o.tel.que2Result(resultRejected)
		return // handshake failure
	}

	// Level 3: test fellowship by verifying MAC_{S,3} against each group
	// key the object serves (§VI-A, §VI-C).
	var fellowVariant *backend.ObjectVariant
	var k3 []byte
	if o.prov.Level == L3 && len(m.MACS3) > 0 && o.version != wire.V10 {
		for i := range o.prov.Variants {
			v := &o.prov.Variants[i]
			if !v.IsCovert() {
				continue
			}
			cand := suite.SessionKey3(k2, v.GroupKey, sess.rs, sess.ro)
			if suite.VerifyMAC(cand, suite.LabelSubjectFinished, tsHash, m.MACS3) {
				fellowVariant, k3 = v, cand
				break
			}
		}
	}

	// Build the response. The virtual compute cost is charged identically on
	// every path — the paper's "constant response time" countermeasure to
	// timing attacks (§VI-B): verification work that a path skips is waited
	// out instead.
	cost := 2*o.costs.Verify + // CERT_S, SIG_S
		o.costs.Verify + // PROF_S admin signature
		o.costs.KexShared +
		o.costs.HMAC + // MAC_{S,2}
		o.costs.Cipher + o.costs.HMAC // RES2 ciphertext + MAC_{O,X}
	if o.version != wire.V10 && o.prov.Level == L3 {
		cost += time.Duration(o.covertVariantCount()) * 2 * o.costs.HMAC // K3 derivations + MAC_{S,3} trials
	}
	if o.tel != nil {
		o.tel.count(opsVerify, 3)
		o.tel.count(opsKexShared, 1)
		hmacs := int64(2) // MAC_{S,2} verify + MAC_{O,X}
		if o.version != wire.V10 && o.prov.Level == L3 {
			hmacs += int64(o.covertVariantCount()) * 2
		}
		o.tel.count(opsHMAC, hmacs)
		o.tel.count(opsCipher, 1)
	}

	var res *wire.RES2
	switch {
	case fellowVariant != nil:
		// Level 3 face: MAC_{O,3} and PROF encrypted under K3.
		res = o.buildRES2(ts, m, k3, fellowVariant.Profile)
		o.tel.que2Result(resultFellow)
	default:
		// Level 2 face (for true Level 2 objects and for Level 3 objects
		// answering non-fellows in v3.0). v2.0 Level 3 objects instead answer
		// with their Level 3 face unconditionally — the composition leak the
		// paper describes (§VI-B) and our attack tests exploit.
		if o.version == wire.V20 && o.prov.Level == L3 {
			v := o.firstCovertVariant()
			if v == nil {
				ts.Release()
				o.tel.que2Result(resultSilent)
				sess.answered = true // remembered silence: duplicates stay silent
				o.scheduleAnsweredGC(key, sess)
				return
			}
			kFirst := suite.SessionKey3(k2, v.GroupKey, sess.rs, sess.ro)
			res = o.buildRES2(ts, m, kFirst, v.Profile)
			o.tel.que2Result(resultFellow)
			break
		}
		v := o.matchVariant(prof)
		if v == nil {
			ts.Release()
			o.tel.que2Result(resultSilent)
			sess.answered = true // remembered silence: duplicates stay silent
			o.scheduleAnsweredGC(key, sess)
			return               // no policy admits this subject: silence, not a hint
		}
		res = o.buildRES2(ts, m, k2, v.Profile)
		o.tel.que2Result(resultL2)
	}
	ts.Release()
	if res == nil {
		return
	}
	sess.answered = true
	o.scheduleAnsweredGC(key, sess)
	o.tel.response(cost, len(res.Ciphertext))
	o.ep.Compute(cost, func() {
		enc := res.Encode()
		sess.res2Enc = enc
		o.ep.Send(from, enc)
	})
}

// scheduleExpiry garbage-collects the session (pending or answered — the
// object never learns whether the subject received RES2, so answered state
// can only age out) at SessionTTL. See Subject.scheduleExpiry for the
// pointer-equality rationale.
func (o *Object) scheduleExpiry(key sessionKey, sess *objSession) {
	o.scheduleGC(key, sess, o.retry.ttl())
}

// scheduleAnsweredGC collects an answered session after half the TTL, on the
// adaptive path only. An answered session holds no handshake liveness — it
// exists solely to serve idempotent duplicate resends — so its retention is
// a resend-service window, not a liveness window. Halving it halves how long
// the fleet's session tables (and a drain barrier waiting on them) trail the
// last wave. The full-TTL entry from scheduleExpiry simply no-ops when it
// finds the session already gone.
func (o *Object) scheduleAnsweredGC(key sessionKey, sess *objSession) {
	if o.wheel == nil {
		return
	}
	o.scheduleGC(key, sess, o.retry.ttl()/2)
}

func (o *Object) scheduleGC(key sessionKey, sess *objSession, ttl time.Duration) {
	expire := func() {
		if cur, ok := o.sessions[key]; ok && cur == sess {
			delete(o.sessions, key)
			o.syncPending()
			o.tel.sessionExpired()
		}
	}
	if o.wheel != nil {
		// One armed timer for the whole session table instead of one per
		// session. Expiries are never deferred — TTL semantics are exact.
		o.wheel.schedule(ttl, expire)
		return
	}
	o.ep.After(ttl, expire)
}

// buildRES2 encrypts the profile variant under the session key and computes
// MAC_{O,X} over the object-side transcript cut.
func (o *Object) buildRES2(ts *wire.Transcript, m *wire.QUE2, key []byte, prof *cert.Profile) *wire.RES2 {
	ct, err := suite.EncryptProfile(key, prof.Encode(), nil)
	if err != nil {
		return nil
	}
	mac := suite.FinishedMAC(key, suite.LabelObjectFinished, transcriptOHash(ts, m, ct))
	return &wire.RES2{Version: o.version, Ciphertext: ct, MACO: mac}
}

// matchVariant returns the first Level 2 variant whose predicate matches the
// subject's non-sensitive attributes (pred_i order fixed by the backend).
func (o *Object) matchVariant(prof *cert.Profile) *backend.ObjectVariant {
	for i := range o.prov.Variants {
		v := &o.prov.Variants[i]
		if v.IsCovert() {
			continue
		}
		if v.Pred.Eval(prof.Attrs) {
			return v
		}
	}
	return nil
}

func (o *Object) firstCovertVariant() *backend.ObjectVariant {
	for i := range o.prov.Variants {
		if o.prov.Variants[i].IsCovert() {
			return &o.prov.Variants[i]
		}
	}
	return nil
}

func (o *Object) covertVariantCount() int {
	n := 0
	for i := range o.prov.Variants {
		if o.prov.Variants[i].IsCovert() {
			n++
		}
	}
	return n
}
