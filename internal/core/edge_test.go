package core

import (
	"math/rand"
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/wire"
)

// TestEnginesIgnoreGarbage feeds random and truncated payloads to both
// engines: nothing may panic, nothing may be discovered — and none of it may
// vanish silently: every undecodable frame must land on the malformed-drop
// counter of the engine that received it.
func TestEnginesIgnoreGarbage(t *testing.T) {
	d := newDeployment(t)
	reg := obs.NewRegistry()
	d.addSubject("alice", attr.MustSet("position=staff"), wire.V30, WithTelemetry(reg, nil))
	o := d.addObject("thermo", L1, attr.MustSet("type=thermometer"), []string{"read"}, wire.V30,
		WithTelemetry(reg, nil))

	rng := rand.New(rand.NewSource(99))
	payloads := [][]byte{nil, {}, {0}, {255, 255}, {byte(wire.TQUE1)}, {byte(wire.TRES2), byte(wire.V30)}}
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		payloads = append(payloads, b)
	}
	// Also garble each real message type's header.
	for _, mt := range []wire.MsgType{wire.TQUE1, wire.TRES1, wire.TQUE2, wire.TRES2} {
		b := make([]byte, 40)
		rng.Read(b)
		b[0], b[1] = byte(mt), byte(wire.V30)
		payloads = append(payloads, b)
	}
	for _, p := range payloads {
		d.subject.Handle(netsim.AddrOf(1), p)
		o.Handle(netsim.AddrOf(0), p)
	}
	d.net.Run(0)
	if len(d.subject.Results()) != 0 {
		t.Fatal("garbage produced discoveries")
	}
	// Both engines saw the identical payload list, so their malformed-drop
	// counts must match — and be non-zero, or the drop accounting is dead.
	sub := counterValue(t, reg, obs.MMalformedDrops, obs.L("role", "subject"))
	obj := counterValue(t, reg, obs.MMalformedDrops, obs.L("role", "object"))
	if sub == 0 {
		t.Error("subject dropped garbage without counting it")
	}
	if sub != obj {
		t.Errorf("malformed-drop counts diverged: subject %d, object %d", sub, obj)
	}
}

// TestObjectRejectsObjectRoleCert: an entity holding a valid *object*
// certificate cannot act as a subject in phase 2.
func TestObjectRejectsObjectRoleCert(t *testing.T) {
	d := newDeployment(t)
	d.b.AddPolicy(attr.MustParse("true"), attr.MustParse("type=='safe'"), []string{"open"})
	// Give the rogue camera a variant so its provision carries an object PROF
	// the attacker can replay as if it were a subject profile.
	d.b.AddPolicy(attr.MustParse("true"), attr.MustParse("type=='cam'"), []string{"watch"})

	// Register a real object and wire its credentials into a Subject engine.
	rogueID, _, err := d.b.RegisterObject("rogue-cam", L2, attr.MustSet("type=cam"), []string{"watch"})
	if err != nil {
		t.Fatal(err)
	}
	oprov, err := d.b.ProvisionObject(rogueID)
	if err != nil {
		t.Fatal(err)
	}
	// Forge a subject provision reusing the object's key and CERT, with a
	// self-built (unsigned-by-admin) PROF claiming subject attributes.
	forged := &backend.SubjectProvision{
		ID:       rogueID,
		Name:     "rogue-cam",
		Strength: oprov.Strength,
		Key:      oprov.Key,
		CertDER:  oprov.CertDER,
		CACert:   oprov.CACert,
		AdminPub: oprov.AdminPub,
		Profile:  oprov.Variants[0].Profile, // an object PROF, not a subject one
	}
	ep := d.net.NewEndpoint()
	atk := NewSubject(forged, wire.V30, Costs{}, WithEndpoint(ep))
	d.subjNode = ep.Node()
	d.subject = atk
	d.addObject("safe", L2, attr.MustSet("type=safe"), []string{"open"}, wire.V30)

	if res := d.run(); len(res) != 0 {
		t.Fatalf("object-role certificate accepted as subject: %d results", len(res))
	}
}

// TestObjectRejectsBorrowedProfile: a subject presenting another entity's
// (validly signed) PROF with her own CERT must be refused — PROF.Entity must
// match the certificate identity.
func TestObjectRejectsBorrowedProfile(t *testing.T) {
	d := newDeployment(t)
	d.b.AddPolicy(attr.MustParse("position=='manager'"), attr.MustParse("type=='safe'"), []string{"open"})

	// A real manager exists; the attacker is registered staff.
	managerID, _, _ := d.b.RegisterSubject("manager", attr.MustSet("position=manager"))
	managerProv, _ := d.b.ProvisionSubject(managerID)

	attackerID, _, _ := d.b.RegisterSubject("staffer", attr.MustSet("position=staff"))
	attackerProv, _ := d.b.ProvisionSubject(attackerID)
	// Borrow the manager's signed PROF.
	attackerProv.Profile = managerProv.Profile

	ep := d.net.NewEndpoint()
	atk := NewSubject(attackerProv, wire.V30, Costs{}, WithEndpoint(ep))
	d.subjNode = ep.Node()
	d.subject = atk
	d.addObject("safe", L2, attr.MustSet("type=safe"), []string{"open"}, wire.V30)

	if res := d.run(); len(res) != 0 {
		t.Fatalf("borrowed PROF accepted: %d results", len(res))
	}
}

// TestExpiredProfileRejected: objects refuse PROFs outside their validity
// window (freshness, §III).
func TestExpiredProfileRejected(t *testing.T) {
	d := newDeployment(t)
	d.b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='safe'"), []string{"open"})
	sid, _, _ := d.b.RegisterSubject("alice", attr.MustSet("position=staff"))
	prov, _ := d.b.ProvisionSubject(sid)
	// Back-date the profile and re-sign it so only expiry fails.
	prov.Profile.Issued = prov.Profile.Issued.AddDate(-2, 0, 0)
	prov.Profile.Expires = prov.Profile.Expires.AddDate(-2, 0, 0)
	if err := d.b.Admin().SignProfile(prov.Profile); err != nil {
		t.Fatal(err)
	}
	ep := d.net.NewEndpoint()
	s := NewSubject(prov, wire.V30, Costs{}, WithEndpoint(ep))
	d.subjNode = ep.Node()
	d.subject = s
	d.addObject("safe", L2, attr.MustSet("type=safe"), []string{"open"}, wire.V30)

	if res := d.run(); len(res) != 0 {
		t.Fatalf("expired PROF accepted: %d results", len(res))
	}
}

// TestHigherStrengthDeployment runs a full discovery at 192-bit strength —
// the strength parameter threads through certificates, signatures, KEXM and
// session keys.
func TestHigherStrengthDeployment(t *testing.T) {
	b, err := backend.New(suite.S192)
	if err != nil {
		t.Fatal(err)
	}
	b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='lock'"), []string{"open"})
	sid, _, _ := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	oid, _, _ := b.RegisterObject("lock", backend.L2, attr.MustSet("type=lock"), []string{"open"})

	net := netsim.New(netsim.DefaultWiFi(), 1)
	sprov, _ := b.ProvisionSubject(sid)
	sep := net.NewEndpoint()
	s := NewSubject(sprov, wire.V30, Costs{}, WithEndpoint(sep))
	oprov, _ := b.ProvisionObject(oid)
	oep := net.NewEndpoint()
	NewObject(oprov, wire.V30, Costs{}, WithEndpoint(oep))
	net.Link(sep.Node(), oep.Node())

	if err := s.Discover(1); err != nil {
		t.Fatal(err)
	}
	net.Run(0)
	if got := len(s.Results()); got != 1 {
		t.Fatalf("192-bit discovery results = %d", got)
	}
}

// TestMultipleConcurrentSubjects: two subjects discover simultaneously; each
// sees her own differentiated view and sessions never cross.
func TestMultipleConcurrentSubjects(t *testing.T) {
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	b.AddPolicy(attr.MustParse("position=='manager'"), attr.MustParse("type=='hvac'"), []string{"set", "schedule"})
	b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='hvac'"), []string{"read"})
	mid, _, _ := b.RegisterSubject("manager", attr.MustSet("position=manager"))
	sid, _, _ := b.RegisterSubject("staff", attr.MustSet("position=staff"))
	oid, _, _ := b.RegisterObject("hvac", backend.L2, attr.MustSet("type=hvac"), []string{"set", "schedule", "read"})

	net := netsim.New(netsim.DefaultWiFi(), 4)
	mkSubj := func(id cert.ID) *Subject {
		prov, err := b.ProvisionSubject(id)
		if err != nil {
			t.Fatal(err)
		}
		return NewSubject(prov, wire.V30, Costs{}, WithEndpoint(net.NewEndpoint()))
	}
	manager := mkSubj(mid)
	staff := mkSubj(sid)
	oprov, _ := b.ProvisionObject(oid)
	oep := net.NewEndpoint()
	NewObject(oprov, wire.V30, Costs{}, WithEndpoint(oep))
	on := oep.Node()
	net.Link(0, on)
	net.Link(1, on)

	// Both broadcast before the network runs: fully interleaved handshakes.
	if err := manager.Discover(1); err != nil {
		t.Fatal(err)
	}
	if err := staff.Discover(1); err != nil {
		t.Fatal(err)
	}
	net.Run(0)

	mres, sres := manager.Results(), staff.Results()
	if len(mres) != 1 || len(sres) != 1 {
		t.Fatalf("results: manager %d, staff %d", len(mres), len(sres))
	}
	if len(mres[0].Profile.Functions) != 2 {
		t.Errorf("manager functions = %v", mres[0].Profile.Functions)
	}
	if len(sres[0].Profile.Functions) != 1 || sres[0].Profile.Functions[0] != "read" {
		t.Errorf("staff functions = %v", sres[0].Profile.Functions)
	}
}

// TestUnsolicitedRES2Dropped: a RES2 with no matching session is ignored.
func TestUnsolicitedRES2Dropped(t *testing.T) {
	d := newDeployment(t)
	d.addSubject("alice", attr.MustSet("position=staff"), wire.V30)
	fake := &wire.RES2{Version: wire.V30, Ciphertext: make([]byte, 64), MACO: make([]byte, 32)}
	d.subject.Handle(netsim.AddrOf(5), fake.Encode())
	if len(d.subject.Results()) != 0 {
		t.Fatal("unsolicited RES2 produced a discovery")
	}
}

// TestQUE2WithoutSessionDropped: an object receiving QUE2 for an unknown R_S
// stays silent.
func TestQUE2WithoutSessionDropped(t *testing.T) {
	d := newDeployment(t)
	d.addSubject("alice", attr.MustSet("position=staff"), wire.V30)
	o := d.addObject("safe", L2, attr.MustSet("type=safe"), []string{"open"}, wire.V30)
	rs, _ := suite.NewNonce(nil)
	fake := &wire.QUE2{
		Version: wire.V30, RS: rs,
		ProfS: make([]byte, 10), CertS: make([]byte, 10), KEXMS: make([]byte, 10),
		Sig: make([]byte, 64), MACS2: make([]byte, 32), MACS3: make([]byte, 32),
	}
	o.Handle(netsim.AddrOf(d.subjNode), fake.Encode())
	d.net.Run(0)
	if len(d.subject.Results()) != 0 {
		t.Fatal("sessionless QUE2 produced output")
	}
}

// TestVersionDowngradeInterop: engines at mismatched versions do not crash;
// a v1.0 object answering a v3.0 subject still completes Level 2 discovery
// (v3.0 is a superset of v1.0 message handling on the subject side).
func TestVersionMixing(t *testing.T) {
	d := newDeployment(t)
	d.b.AddPolicy(attr.MustParse("true"), attr.MustParse("type=='lock'"), []string{"open"})
	d.addSubject("alice", attr.MustSet("position=staff"), wire.V30)
	d.addObject("lock", L2, attr.MustSet("type=lock"), []string{"open"}, wire.V10)
	res := d.run()
	// The v1.0 object cannot parse a v3.0 QUE2's MACS3 field... but our codec
	// is version-tagged per message, so the object decodes by the message's
	// own version. Level 2 discovery completes.
	if len(res) != 1 || res[0].Level != L2 {
		t.Fatalf("cross-version results = %+v", res)
	}
}

// TestSessionCapBoundsMemory: an attacker flooding QUE1s cannot grow the
// object's pending-session table beyond the cap.
func TestSessionCapBoundsMemory(t *testing.T) {
	d := newDeployment(t)
	d.b.AddPolicy(attr.MustParse("true"), attr.MustParse("type=='lock'"), []string{"open"})
	d.addSubject("alice", attr.MustSet("position=staff"), wire.V30)
	o := d.addObject("lock", L2, attr.MustSet("type=lock"), []string{"open"}, wire.V30)

	for i := 0; i < 3*maxPendingSessions; i++ {
		rs, _ := suite.NewNonce(nil)
		q := &wire.QUE1{Version: wire.V30, RS: rs}
		o.Handle(netsim.AddrOf(d.subjNode), q.Encode())
	}
	if got := len(o.sessions); got > maxPendingSessions {
		t.Fatalf("pending sessions = %d, cap %d", got, maxPendingSessions)
	}
	// A legitimate discovery still completes once the flood stops: the
	// subject's fresh QUE1 is deduplicated against `seen`, not blocked —
	// though its session slot may be refused while the table is full, the
	// engine must not crash or leak.
	d.run()
}

// TestDiscoveryAcrossBridgedRadios: Argus is above the network layer (§II-A);
// a discovery crossing a WiFi→BLE bridging device works unchanged, just
// slower on the constrained radio.
func TestDiscoveryAcrossBridgedRadios(t *testing.T) {
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='sensor'"), []string{"read"})
	sid, _, _ := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	oid, _, _ := b.RegisterObject("ble-sensor", backend.L2, attr.MustSet("type=sensor"), []string{"read"})

	wifi := netsim.DefaultWiFi()
	ble := netsim.LinkModel{
		PerMessage:       10 * time.Millisecond,
		BytesPerSecond:   30_000,
		PropagationDelay: 20 * time.Millisecond,
	}
	net := netsim.New(wifi, 1)
	sprov, _ := b.ProvisionSubject(sid)
	sep := net.NewEndpoint()
	s := NewSubject(sprov, wire.V30, Costs{}, WithEndpoint(sep))
	sn := sep.Node()
	bridge := net.AddNode(nil)
	oprov, _ := b.ProvisionObject(oid)
	oep := net.NewEndpoint()
	NewObject(oprov, wire.V30, Costs{}, WithEndpoint(oep))
	on := oep.Node()
	net.LinkOn(sn, bridge, 0, wifi)
	net.LinkOn(bridge, on, 1, ble)

	if err := s.Discover(2); err != nil {
		t.Fatal(err)
	}
	net.Run(0)
	res := s.Results()
	if len(res) != 1 || res[0].Level != L2 {
		t.Fatalf("bridged discovery results = %+v", res)
	}
	// The BLE leg is slow: a 4-way handshake with ~1 KB QUE2 over 30 kB/s
	// takes hundreds of ms.
	if res[0].At < 300*time.Millisecond {
		t.Fatalf("bridged discovery at %v — BLE cost missing", res[0].At)
	}
}

// TestCrossSubBackendDiscovery: the §II-A hierarchy end to end. A subject
// provisioned by building A's sub-backend discovers an object provisioned by
// building B's sub-backend; both sides verify the peer's credentials through
// the CA chain up to the shared root anchor.
func TestCrossSubBackendDiscovery(t *testing.T) {
	root, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	buildingA, err := root.NewSubordinate("building-A")
	if err != nil {
		t.Fatal(err)
	}
	buildingB, err := root.NewSubordinate("building-B")
	if err != nil {
		t.Fatal(err)
	}
	// B's policy admits visiting staff from anywhere in the enterprise.
	buildingB.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='printer'"), []string{"print"})

	sid, _, err := buildingA.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := buildingB.RegisterObject("printer-B", backend.L2,
		attr.MustSet("type=printer"), []string{"print"})
	if err != nil {
		t.Fatal(err)
	}

	net := netsim.New(netsim.DefaultWiFi(), 3)
	sprov, err := buildingA.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	sep := net.NewEndpoint()
	s := NewSubject(sprov, wire.V30, Costs{}, WithEndpoint(sep))
	sn := sep.Node()
	oprov, err := buildingB.ProvisionObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	oep := net.NewEndpoint()
	NewObject(oprov, wire.V30, Costs{}, WithEndpoint(oep))
	on := oep.Node()
	net.Link(sn, on)

	if err := s.Discover(1); err != nil {
		t.Fatal(err)
	}
	net.Run(0)
	res := s.Results()
	if len(res) != 1 || res[0].Level != L2 {
		t.Fatalf("cross-building results = %+v, want one L2 discovery", res)
	}

	// A device from an unrelated enterprise (different root) is still
	// rejected despite speaking the same protocol.
	foreignRoot, _ := backend.New(suite.S128)
	foreignSub, _ := foreignRoot.NewSubordinate("intruder-hq")
	fid, _, _ := foreignSub.RegisterSubject("mallory", attr.MustSet("position=staff"))
	fprov, _ := foreignSub.ProvisionSubject(fid)
	mep := net.NewEndpoint()
	mallory := NewSubject(fprov, wire.V30, Costs{}, WithEndpoint(mep))
	net.Link(mep.Node(), on)
	if err := mallory.Discover(1); err != nil {
		t.Fatal(err)
	}
	net.Run(0)
	if len(mallory.Results()) != 0 {
		t.Fatal("foreign-enterprise subject discovered services")
	}
}

// TestProximityScopedVisibility: discovery is proximity-based (§I) — as the
// subject moves between rooms (links change), each round sees exactly the
// objects currently in radio range.
func TestProximityScopedVisibility(t *testing.T) {
	d := newDeployment(t)
	d.b.AddPolicy(attr.MustParse("true"), attr.MustParse("has(room)"), []string{"use"})
	d.addSubject("walker", attr.MustSet("position=staff"), wire.V30)
	d.addObject("room1-lock", L2, attr.MustSet("room=1"), []string{"use"}, wire.V30)
	d.addObject("room2-lock", L2, attr.MustSet("room=2"), []string{"use"}, wire.V30)
	room1 := netsim.NodeID(1)
	room2 := netsim.NodeID(2)
	// Start in room 1: out of range of room 2.
	d.net.Unlink(d.subjNode, room2)

	d.run()
	if got := len(d.subject.Results()); got != 1 {
		t.Fatalf("room 1 discoveries = %d, want 1", got)
	}
	if d.subject.Results()[0].Node != netsim.AddrOf(room1) {
		t.Fatal("discovered the wrong room's object")
	}

	// Walk to room 2.
	d.net.Unlink(d.subjNode, room1)
	d.net.Link(d.subjNode, room2)
	before := len(d.subject.Results())
	d.run()
	after := d.subject.Results()[before:]
	if len(after) != 1 || after[0].Node != netsim.AddrOf(room2) {
		t.Fatalf("room 2 discoveries = %+v", after)
	}
}
