package core

// These tests run the protocol engines on transport.Mesh — every node a real
// goroutine over a bounded mailbox, on the wall clock — instead of the
// deterministic simulator. They are the concurrency half of the transport
// abstraction's acceptance: the same engines that replay byte-identically
// under netsim must survive genuine parallelism under -race, and shed load
// with counted drops instead of deadlocking when flooded.

import (
	"fmt"
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"

	"argus/internal/transport/transporttest"
)

// meshRetry is tuned for wall-clock tests: fast retransmission, 1 s session
// GC so leak assertions converge quickly.
func meshRetry() RetryPolicy {
	return RetryPolicy{Que1Retries: 3, Que2Retries: 3, Timeout: 100 * time.Millisecond,
		Backoff: 2, SessionTTL: time.Second}
}

// meshPoll spins until cond holds or the deadline passes.
func meshPoll(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	transporttest.WaitUntil(t, timeout, cond, what)
}

// TestMeshDiscoveryRace: one subject and 32 objects, all concurrent, one
// discovery round. Every object must be found exactly once and no session may
// leak — with the race detector watching every actor goroutine.
func TestMeshDiscoveryRace(t *testing.T) {
	const n = 32
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"), []string{"use"}); err != nil {
		t.Fatal(err)
	}
	sid, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}

	mesh := transport.NewMesh()
	defer mesh.Close()

	sprov, err := b.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	sep := mesh.Join()
	subj := NewSubject(sprov, wire.V30, Costs{},
		WithEndpoint(sep), WithRetry(meshRetry()))

	objs := make([]*Object, n)
	for i := 0; i < n; i++ {
		oid, _, err := b.RegisterObject(fmt.Sprintf("device-%02d", i), L2,
			attr.MustSet("type=device"), []string{"use"})
		if err != nil {
			t.Fatal(err)
		}
		prov, err := b.ProvisionObject(oid)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = NewObject(prov, wire.V30, Costs{},
			WithEndpoint(mesh.Join()), WithRetry(meshRetry()))
	}

	// Discover must run on the subject's event loop; Do is the only safe
	// entry from the test goroutine.
	sep.Do(func() {
		if err := subj.Discover(1); err != nil {
			t.Errorf("Discover: %v", err)
		}
	})

	meshPoll(t, 20*time.Second, func() bool { return len(subj.Results()) >= n },
		fmt.Sprintf("%d concurrent discoveries", n))

	res := subj.Results()
	if len(res) != n {
		t.Fatalf("discoveries = %d, want exactly %d", len(res), n)
	}
	seen := map[transport.Addr]bool{}
	for _, r := range res {
		if r.Level != L2 {
			t.Errorf("node %s discovered at %v, want L2", r.Node, r.Level)
		}
		if seen[r.Node] {
			t.Errorf("node %s discovered twice", r.Node)
		}
		seen[r.Node] = true
	}

	// Sessions on both sides are garbage-collected within the TTL.
	meshPoll(t, 10*time.Second, func() bool {
		if subj.PendingSessions() != 0 {
			return false
		}
		for _, o := range objs {
			if o.PendingSessions() != 0 {
				return false
			}
		}
		return true
	}, "session GC on all engines")
}

// TestMeshBackpressureShedsNotDeadlocks wedges a slow object's event loop and
// floods its tiny mailbox. The transport must shed the excess with counted
// drops (argus_transport_mailbox_drops_total) — never block the sender or
// deadlock — and once the object wakes, real discovery still completes and
// its session table still drains.
func TestMeshBackpressureShedsNotDeadlocks(t *testing.T) {
	reg := obs.NewRegistry()
	mesh := transport.NewMesh(transport.WithMailbox(8), transport.WithRegistry(reg))
	defer mesh.Close()

	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='printer'"), []string{"print"})
	sid, _, _ := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	oid, _, _ := b.RegisterObject("printer", L2, attr.MustSet("type=printer"), []string{"print"})

	oprov, err := b.ProvisionObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	oep := mesh.Join()
	obj := NewObject(oprov, wire.V30, Costs{},
		WithEndpoint(oep), WithRetry(meshRetry()), WithTelemetry(reg, nil))

	// Wedge the object's actor loop so nothing drains, then flood well past
	// the 8-frame mailbox bound. Sends must all return immediately.
	block := make(chan struct{})
	started := make(chan struct{})
	oep.Do(func() { close(started); <-block })
	<-started

	flooder := mesh.Join()
	const flood = 1000
	for i := 0; i < flood; i++ {
		flooder.Send(oep.Addr(), []byte{0xde, 0xad})
	}
	if drops := oep.Drops(); drops < flood-8 {
		t.Fatalf("drops = %d, want >= %d (mailbox bound 8)", drops, flood-8)
	}
	if got := counterValue(t, reg, obs.MTransportMailboxDrops,
		obs.L("addr", string(oep.Addr()))); got != oep.Drops() {
		t.Fatalf("drop counter = %d, endpoint counted %d", got, oep.Drops())
	}

	// Wake the object. The queued garbage lands on the malformed-drop
	// counter; the engine survives and serves a genuine handshake.
	close(block)

	sprov, err := b.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	sep := mesh.Join()
	subj := NewSubject(sprov, wire.V30, Costs{},
		WithEndpoint(sep), WithRetry(meshRetry()))
	sep.Do(func() {
		if err := subj.Discover(1); err != nil {
			t.Errorf("Discover: %v", err)
		}
	})

	meshPoll(t, 15*time.Second, func() bool { return len(subj.Results()) == 1 },
		"discovery after flood")
	if res := subj.Results(); res[0].Level != L2 {
		t.Fatalf("post-flood discovery level = %v, want L2", res[0].Level)
	}
	meshPoll(t, 10*time.Second, func() bool {
		return subj.PendingSessions() == 0 && obj.PendingSessions() == 0
	}, "session GC after flood")
}
