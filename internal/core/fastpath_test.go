package core

import (
	"sync"
	"testing"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/obs"
	"argus/internal/wire"
)

// attachSubjectWith / attachObjectWith are thin aliases kept from before the
// fixture itself grew an options parameter.
func (d *deployment) attachSubjectWith(id cert.ID, version wire.Version, opts ...Option) *Subject {
	return d.attachSubject(id, version, opts...)
}

func (d *deployment) attachObjectWith(id cert.ID, version wire.Version, opts ...Option) *Object {
	return d.attachObject(id, version, opts...)
}

// l2Fixture builds a one-subject/one-L2-object deployment whose engines share
// the given verification cache.
func l2Fixture(t *testing.T, vc *cert.VerifyCache) *deployment {
	d := newDeployment(t)
	d.b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='printer'"), []string{"print"})
	sid, _, err := d.b.RegisterSubject("staff", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := d.b.RegisterObject("printer", L2, attr.MustSet("type=printer"), []string{"print"})
	if err != nil {
		t.Fatal(err)
	}
	d.attachSubjectWith(sid, wire.V30, WithVerifyCache(vc))
	d.attachObjectWith(oid, wire.V30, WithVerifyCache(vc))
	return d
}

// TestWarmHandshakeZeroCredentialVerifies is the acceptance criterion: on a
// warm peer the Level 2/3 handshake performs zero ECDSA credential
// verifications — every lookup hits — asserted through the obs hit/miss
// counters. The cold round performs exactly the four the paper charges
// (CERT_O + PROF_O on the subject, CERT_S + PROF_S on the object).
func TestWarmHandshakeZeroCredentialVerifies(t *testing.T) {
	vc := cert.NewVerifyCache(0)
	reg := obs.NewRegistry()
	vc.Instrument(reg)
	d := l2Fixture(t, vc)

	events := func(kind, result string) int64 {
		return counterValue(t, reg, obs.MVerifyCacheEvents,
			obs.L("kind", kind), obs.L("result", result))
	}

	if res := d.run(); len(res) != 1 || res[0].Level != L2 {
		t.Fatalf("cold round results = %+v", res)
	}
	if cm, pm := events("cert", "miss"), events("prof", "miss"); cm != 2 || pm != 2 {
		t.Fatalf("cold round misses: cert=%d prof=%d, want 2+2", cm, pm)
	}
	if ch, ph := events("cert", "hit"), events("prof", "hit"); ch != 0 || ph != 0 {
		t.Fatalf("cold round hits: cert=%d prof=%d, want 0", ch, ph)
	}

	if res := d.run(); len(res) != 2 {
		t.Fatalf("warm round results = %+v", res)
	}
	if cm, pm := events("cert", "miss"), events("prof", "miss"); cm != 2 || pm != 2 {
		t.Fatalf("warm round added misses: cert=%d prof=%d, want 2+2 (zero new)", cm, pm)
	}
	if ch, ph := events("cert", "hit"), events("prof", "hit"); ch != 2 || ph != 2 {
		t.Fatalf("warm round hits: cert=%d prof=%d, want 2+2", ch, ph)
	}
}

// TestLevel3WarmHandshakeZeroCredentialVerifies covers the covert path too:
// the L3 fellow handshake has the same four credential checks, all warm on
// the second round.
func TestLevel3WarmHandshakeZeroCredentialVerifies(t *testing.T) {
	vc := cert.NewVerifyCache(0)
	d, _ := covertFixture(t, wire.V30, true)
	// covertFixture built engines without a cache; rebuild on the same
	// provisions via the deprecated setters' replacement is not possible, so
	// re-attach fresh engines sharing vc.
	d2 := newDeployment(t)
	d2.b = d.b
	sid := d.subject.ID()
	var oid cert.ID
	for _, o := range d.objects {
		oid = o.ID()
	}
	d2.attachSubjectWith(sid, wire.V30, WithVerifyCache(vc))
	d2.attachObjectWith(oid, wire.V30, WithVerifyCache(vc))

	if res := d2.run(); len(res) != 1 || res[0].Level != L3 {
		t.Fatalf("cold round results = %+v", res)
	}
	hits, misses, _ := vc.Stats()
	if hits != 0 || misses != 4 {
		t.Fatalf("cold round: hits=%d misses=%d, want 0/4", hits, misses)
	}
	if res := d2.run(); len(res) != 2 {
		t.Fatalf("warm round results = %+v", res)
	}
	hits, misses, _ = vc.Stats()
	if hits != 4 || misses != 4 {
		t.Fatalf("warm round: hits=%d misses=%d, want 4/4", hits, misses)
	}
}

// TestRevokedSubjectNotServedWarm: revocation must invalidate the revoked
// subject's warm entries — the next QUE2 re-verifies from scratch (and is
// then refused by the blacklist).
func TestRevokedSubjectNotServedWarm(t *testing.T) {
	vc := cert.NewVerifyCache(0)
	d := l2Fixture(t, vc)
	obj := d.objects["printer"]

	d.run()
	d.run()
	hits, misses, entries := vc.Stats()
	if hits != 4 || misses != 4 || entries != 4 {
		t.Fatalf("warm baseline: hits=%d misses=%d entries=%d", hits, misses, entries)
	}

	obj.Revoke(d.subject.ID())
	// The subject's CERT_S and PROF_S entries must be gone; the object's own
	// credentials (cached by the subject side) remain.
	if _, _, entries := vc.Stats(); entries != 2 {
		t.Fatalf("after Revoke: %d entries, want 2", entries)
	}

	before := len(d.subject.Results())
	d.run()
	if got := len(d.subject.Results()) - before; got != 0 {
		t.Fatalf("revoked subject discovered %d services", got)
	}
	// Round 3: subject-side CERT_O hit (+1); object-side CERT_S was
	// invalidated → real verification (+1 miss), then the blacklist rejects
	// before PROF_S is reached.
	hits2, misses2, _ := vc.Stats()
	if misses2 != misses+1 {
		t.Fatalf("revoked subject's CERT served warm: misses %d→%d", misses, misses2)
	}
	if hits2 != hits+1 {
		t.Fatalf("unexpected hit pattern after revoke: hits %d→%d", hits, hits2)
	}
}

// TestRefreshedCredentialNotServedWarm: a rotated (re-issued) credential must
// never be satisfied by the stale entry — content-addressed keying guarantees
// the new bytes miss and re-verify.
func TestRefreshedCredentialNotServedWarm(t *testing.T) {
	vc := cert.NewVerifyCache(0)
	d := l2Fixture(t, vc)

	d.run()
	d.run()
	_, misses, _ := vc.Stats()

	// Rotate the subject's PROF (attribute update bumps the profile serial and
	// re-signs) and refresh the subject engine with the new provision.
	if _, err := d.b.UpdateSubjectAttrs(d.subject.ID(), attr.MustSet("position=staff,floor=2")); err != nil {
		t.Fatal(err)
	}
	prov, err := d.b.ProvisionSubject(d.subject.ID())
	if err != nil {
		t.Fatal(err)
	}
	d.subject.Refresh(prov)

	before := len(d.subject.Results())
	d.run()
	if got := len(d.subject.Results()) - before; got != 1 {
		t.Fatalf("refreshed subject discovered %d services, want 1", got)
	}
	// The object re-verified the rotated PROF_S for real (+1 miss); nothing
	// served the old entry for new bytes.
	_, misses2, _ := vc.Stats()
	if misses2 != misses+1 {
		t.Fatalf("rotated PROF handling: misses %d→%d, want +1", misses, misses2)
	}
}

// TestRefreshAnchorChangeFlushesCache: re-provisioning against a different
// trust anchor (backend re-key) must drop every memoized result.
func TestRefreshAnchorChangeFlushesCache(t *testing.T) {
	vc := cert.NewVerifyCache(0)
	d := l2Fixture(t, vc)
	d.run()
	if vc.Len() == 0 {
		t.Fatal("cache empty after a round")
	}
	// Same-anchor refresh keeps the cache warm.
	prov, err := d.b.ProvisionSubject(d.subject.ID())
	if err != nil {
		t.Fatal(err)
	}
	d.subject.Refresh(prov)
	if vc.Len() == 0 {
		t.Fatal("same-anchor Refresh flushed the cache")
	}
	// A provision whose anchor differs flushes.
	rotated := *prov
	rotated.CACert = append([]byte(nil), prov.CACert...)
	rotated.CACert[len(rotated.CACert)-1] ^= 0xFF
	d.subject.Refresh(&rotated)
	if vc.Len() != 0 {
		t.Fatalf("anchor change left %d entries", vc.Len())
	}
}

// TestOptionsConfigureEngine: each functional option lands in the engine
// state it documents, and an optionless engine stays unbound with defaults.
func TestOptionsConfigureEngine(t *testing.T) {
	d := newDeployment(t)
	sid, _, err := d.b.RegisterSubject("s", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := d.b.RegisterObject("o", L2, attr.MustSet("type=printer"), []string{"print"})
	if err != nil {
		t.Fatal(err)
	}
	sprov, err := d.b.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	oprov, err := d.b.ProvisionObject(oid)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	vc := cert.NewVerifyCache(0)
	rp := DefaultRetry()

	sep := d.net.NewEndpoint()
	s1 := NewSubject(sprov, wire.V30, Costs{},
		WithEndpoint(sep), WithRetry(rp), WithTelemetry(reg, tr), WithVerifyCache(vc))
	if s1.ep == nil || s1.ep.Addr() != sep.Addr() {
		t.Fatal("WithEndpoint did not bind the subject")
	}
	if s1.retry != rp {
		t.Fatalf("WithRetry not applied: %+v", s1.retry)
	}
	if s1.tel == nil {
		t.Fatal("WithTelemetry not applied to subject")
	}
	if s1.vcache != vc {
		t.Fatal("WithVerifyCache not applied")
	}

	oep := d.net.NewEndpoint()
	o1 := NewObject(oprov, wire.V30, Costs{},
		WithEndpoint(oep), WithRetry(rp), WithTelemetry(reg, nil), WithVerifyCache(vc))
	if o1.ep == nil || o1.ep.Addr() != oep.Addr() {
		t.Fatal("WithEndpoint did not bind the object")
	}
	if o1.retry != rp {
		t.Fatal("WithRetry not applied to object")
	}
	if o1.tel == nil {
		t.Fatal("WithTelemetry not applied to object")
	}
	if o1.vcache != vc {
		t.Fatal("WithVerifyCache not applied to object")
	}

	// Zero options leave the engine unbound in its default state.
	s3 := NewSubject(sprov, wire.V30, Costs{})
	if s3.ep != nil || s3.retry.Enabled() || s3.tel != nil || s3.vcache != nil {
		t.Fatal("optionless subject not in default state")
	}
}

// TestConcurrentResultsReaders enforces the core.go concurrency contract
// under -race: Results and PendingSessions may be polled from another
// goroutine (the telemetry HTTP handler) while the event loop mutates
// sessions and records discoveries.
func TestConcurrentResultsReaders(t *testing.T) {
	d := l2Fixture(t, nil)
	obj := d.objects["printer"]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = d.subject.Results()
			_ = d.subject.PendingSessions()
			_ = obj.PendingSessions()
		}
	}()

	for i := 0; i < 50; i++ {
		if err := d.subject.Discover(1); err != nil {
			t.Fatal(err)
		}
		d.net.Run(0)
	}
	close(stop)
	wg.Wait()

	if got := len(d.subject.Results()); got != 50 {
		t.Fatalf("discoveries = %d, want 50", got)
	}
	if d.subject.PendingSessions() != 0 || obj.PendingSessions() != 0 {
		t.Fatalf("sessions leaked: subject=%d object=%d",
			d.subject.PendingSessions(), obj.PendingSessions())
	}
}
