package core

import (
	"container/heap"
	"time"

	"argus/internal/transport"
)

// timerWheel coalesces an engine's pending deadlines onto a single armed
// transport timer. The per-message retry design arms one Endpoint.After per
// attempt per session — at 20k concurrent sessions that is tens of thousands
// of live timers, and every one that fires after its session completed is a
// spurious retransmission. The wheel instead keeps deadlines in a min-heap
// (event-loop-only, no locks) and arms at most one After for the earliest;
// entries can be canceled or deferred in O(log n) without touching the
// transport.
//
// Everything here runs on the engine's event loop (see the concurrency
// contract in core.go); the After callback is delivered on the same loop, so
// no synchronization is needed.
type timerWheel struct {
	ep transport.Endpoint
	h  wheelHeap
	// armedAt is the deadline the outstanding After targets, -1 when none.
	// Stale wakeups (an After superseded by an earlier arm) are dropped by
	// comparing their captured target against this.
	armedAt time.Duration
}

// wheelEntry is one pending deadline. Callers hold the pointer to cancel or
// defer it; index tracks the heap slot so deferral can heap.Fix in place.
type wheelEntry struct {
	at       time.Duration
	fn       func()
	index    int
	canceled bool
}

func newTimerWheel(ep transport.Endpoint) *timerWheel {
	return &timerWheel{ep: ep, armedAt: -1}
}

// schedule registers fn to run d from now and returns a handle for cancel /
// deferTo. The callback runs on the engine's event loop.
func (w *timerWheel) schedule(d time.Duration, fn func()) *wheelEntry {
	e := &wheelEntry{at: w.ep.Now() + d, fn: fn}
	heap.Push(&w.h, e)
	w.arm()
	return e
}

// cancel drops the entry. Lazy: the entry stays in the heap until it reaches
// the head, costing nothing but its slot — no transport timer is touched.
func (w *timerWheel) cancel(e *wheelEntry) {
	if e != nil {
		e.canceled = true
		e.fn = nil
	}
}

// deferTo pushes the entry's deadline out to at (never earlier). Used to
// extend a retransmission deadline when observed RTT says the answer is
// still plausibly in flight. The outstanding After is left alone: when it
// fires it finds the entry not yet due and re-arms.
func (w *timerWheel) deferTo(e *wheelEntry, at time.Duration) {
	if e == nil || e.canceled || e.index < 0 || at <= e.at {
		return
	}
	e.at = at
	heap.Fix(&w.h, e.index)
}

// arm ensures an After is outstanding for the earliest live deadline.
func (w *timerWheel) arm() {
	for len(w.h) > 0 && w.h[0].canceled {
		heap.Pop(&w.h)
	}
	if len(w.h) == 0 {
		return
	}
	earliest := w.h[0].at
	if w.armedAt >= 0 && w.armedAt <= earliest {
		return // the outstanding After fires early enough
	}
	w.armedAt = earliest
	d := earliest - w.ep.Now()
	if d < 0 {
		d = 0
	}
	target := earliest
	w.ep.After(d, func() { w.fire(target) })
}

// fire runs every due entry, then re-arms for the next deadline.
func (w *timerWheel) fire(target time.Duration) {
	if w.armedAt != target {
		return // superseded by an earlier arm; that wakeup owns the heap
	}
	w.armedAt = -1
	now := w.ep.Now()
	for len(w.h) > 0 {
		e := w.h[0]
		if e.canceled {
			heap.Pop(&w.h)
			continue
		}
		if e.at > now {
			break
		}
		heap.Pop(&w.h)
		e.index = -1
		fn := e.fn
		e.fn = nil
		fn()
		now = w.ep.Now()
	}
	w.arm()
}

// pending returns the number of live (non-canceled) entries; test hook.
func (w *timerWheel) pending() int {
	n := 0
	for _, e := range w.h {
		if !e.canceled {
			n++
		}
	}
	return n
}

// wheelHeap is a min-heap over deadlines with index maintenance.
type wheelHeap []*wheelEntry

func (h wheelHeap) Len() int            { return len(h) }
func (h wheelHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h wheelHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *wheelHeap) Push(x any)         { e := x.(*wheelEntry); e.index = len(*h); *h = append(*h, e) }
func (h *wheelHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// rttEstimator is the classic Jacobson/Karels smoothed round-trip estimator
// (RFC 6298 gains: srtt ← 7/8·srtt + 1/8·sample, rttvar ← 3/4·rttvar +
// 1/4·|srtt−sample|). The subject feeds it QUE1→RES1 and QUE2→RES2 intervals;
// the retransmission horizon srtt + 4·rttvar then tracks real handshake
// latency — including compute-queue delay under load, which is exactly what
// the static backoff schedule cannot see and why it fires spuriously.
type rttEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	valid  bool
}

// observe folds one round-trip sample in.
func (e *rttEstimator) observe(sample time.Duration) {
	if sample < 0 {
		return
	}
	if !e.valid {
		e.valid = true
		e.srtt = sample
		e.rttvar = sample / 2
		return
	}
	diff := e.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	e.rttvar += (diff - e.rttvar) / 4
	e.srtt += (sample - e.srtt) / 8
}

// rto returns the retransmission horizon, never below floor. Before any
// sample it returns floor unchanged, so an adaptive policy degrades to the
// configured schedule.
func (e *rttEstimator) rto(floor time.Duration) time.Duration {
	if !e.valid {
		return floor
	}
	r := e.srtt + 4*e.rttvar
	if r < floor {
		return floor
	}
	return r
}
