package core

// Race coverage for the retransmission machinery: several independent
// deployments run full discovery rounds concurrently — faults, retries,
// expiry timers and answer caches all live — while sharing one obs.Registry,
// so `go test -race ./internal/core` exercises every new counter and timer
// path under contention. Each simulated world is single-threaded by
// construction (the netsim event loop); the only shared state is telemetry,
// which must be safe to hammer from many worlds at once.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/wire"
)

func TestConcurrentDiscoveryUnderFaultsSharedRegistry(t *testing.T) {
	const workers = 4
	reg := obs.NewRegistry()

	// Build the worlds serially: the fixture uses t.Fatal, which must not be
	// called off the test goroutine.
	worlds := make([]*deployment, workers)
	for i := range worlds {
		d := newDeployment(t)
		if _, _, err := d.b.AddPolicy(attr.MustParse("position=='staff'"),
			attr.MustParse("type=='device'"), []string{"use"}); err != nil {
			t.Fatal(err)
		}
		d.addSubject("alice", attr.MustSet("position=staff"), wire.V30,
			WithRetry(DefaultRetry()), WithTelemetry(reg, nil))
		for j := 0; j < 3; j++ {
			d.addObject(fmt.Sprintf("obj-%d-%d", i, j), L2,
				attr.MustSet("type=device"), []string{"use"}, wire.V30,
				WithRetry(DefaultRetry()), WithTelemetry(reg, nil))
		}
		d.net.Instrument(reg)
		d.net.FaultSeed(int64(i + 1))
		d.net.SetFaults(netsim.FaultModel{
			Loss:          0.3,
			Corrupt:       0.1,
			Duplicate:     0.2,
			ReorderJitter: 5 * time.Millisecond,
		})
		worlds[i] = d
	}

	var wg sync.WaitGroup
	for i, d := range worlds {
		wg.Add(1)
		go func(i int, d *deployment) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				if err := d.subject.Discover(1); err != nil {
					t.Errorf("world %d round %d: %v", i, round, err)
					return
				}
				d.net.Run(0)
			}
			if got := d.subject.PendingSessions(); got != 0 {
				t.Errorf("world %d: subject leaked %d sessions", i, got)
			}
			if got := d.objectPending(); got != 0 {
				t.Errorf("world %d: objects leaked %d sessions", i, got)
			}
		}(i, d)
	}
	wg.Wait()

	// The shared registry survived concurrent increments and actually saw the
	// retransmission paths fire (30% loss guarantees retries in every world).
	if counterValue(t, reg, obs.MRetransmissions) == 0 {
		t.Error("no retransmissions recorded across any world at 30% loss")
	}
	for _, d := range worlds {
		if d.net.Stats().FaultLost == 0 {
			t.Error("a world ran with fault injection inactive")
		}
	}
}
