package core

// Wall-clock acceptance for RetryPolicy.Adaptive: on a lossless transport an
// adaptive subject finishes a discovery round with zero retransmissions —
// the deadline wheel keeps deferring while answers flow and CompleteRound
// drops the remaining deadlines — while a subject nobody answers still
// drives its full QUE1 rebroadcast schedule off the wheel (liveness: the
// wheel must actually fire, not just cancel quietly).

import (
	"fmt"
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"
)

// adaptiveRetry leaves lots of headroom between mesh RTT (sub-millisecond)
// and the retransmission floor so a healthy run never plausibly hits a
// deadline even on a slow CI machine.
func adaptiveRetry() RetryPolicy {
	return RetryPolicy{Que1Retries: 3, Que2Retries: 3, Timeout: 2 * time.Second,
		Backoff: 2, SessionTTL: 3 * time.Second, Adaptive: true}
}

func TestMeshAdaptiveLosslessZeroRetransmissions(t *testing.T) {
	const n = 8
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"), []string{"use"}); err != nil {
		t.Fatal(err)
	}
	sid, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}

	mesh := transport.NewMesh()
	defer mesh.Close()
	reg := obs.NewRegistry()

	sprov, err := b.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	sep := mesh.Join()
	subj := NewSubject(sprov, wire.V30, Costs{},
		WithEndpoint(sep), WithRetry(adaptiveRetry()), WithTelemetry(reg, nil))

	objs := make([]*Object, n)
	for i := 0; i < n; i++ {
		oid, _, err := b.RegisterObject(fmt.Sprintf("device-%02d", i), L2,
			attr.MustSet("type=device"), []string{"use"})
		if err != nil {
			t.Fatal(err)
		}
		prov, err := b.ProvisionObject(oid)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = NewObject(prov, wire.V30, Costs{},
			WithEndpoint(mesh.Join()), WithRetry(adaptiveRetry()), WithTelemetry(reg, nil))
	}

	sep.Do(func() {
		if err := subj.Discover(1); err != nil {
			t.Errorf("Discover: %v", err)
		}
	})
	meshPoll(t, 20*time.Second, func() bool { return len(subj.Results()) >= n },
		"adaptive discoveries")
	// The harness knows the round is over; the engine drops its remaining
	// QUE1/QUE2 deadlines without any of them firing.
	sep.Do(subj.CompleteRound)

	meshPoll(t, 10*time.Second, func() bool {
		if subj.PendingSessions() != 0 {
			return false
		}
		for _, o := range objs {
			if o.PendingSessions() != 0 {
				return false
			}
		}
		return true
	}, "session GC on adaptive engines")

	if got := counterValue(t, reg, obs.MRetransmissions); got != 0 {
		t.Fatalf("lossless adaptive round retransmitted %d times, want 0", got)
	}
	// Subject sessions complete and are deleted before TTL; only the object
	// side ages out its answered sessions (it never learns RES2 arrived).
	if got := counterValue(t, reg, obs.MSessionsExpired, obs.L("role", "subject")); got != 0 {
		t.Fatalf("%d subject sessions expired, want 0", got)
	}
}

// que2Dropper wraps a subject's endpoint and swallows the first QUE2 it
// unicasts, simulating a lost frame on an otherwise healthy transport.
type que2Dropper struct {
	transport.Endpoint
	dropped bool
}

func (d *que2Dropper) Send(to transport.Addr, payload []byte) {
	if !d.dropped {
		if m, err := wire.Decode(payload); err == nil {
			if _, ok := m.(*wire.QUE2); ok {
				d.dropped = true
				return
			}
		}
	}
	d.Endpoint.Send(to, payload)
}

// TestMeshAdaptiveQue2DeadlineRecoversLostFrame drops the subject's first
// QUE2 on the floor: the RES2 never comes, the session's wheel deadline
// fires, and the retransmitted QUE2 completes the handshake. This is the
// QUE2 leg of the wheel actually firing, not just being cancelled.
func TestMeshAdaptiveQue2DeadlineRecoversLostFrame(t *testing.T) {
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"), []string{"use"}); err != nil {
		t.Fatal(err)
	}
	sid, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := b.RegisterObject("device", L2, attr.MustSet("type=device"), []string{"use"})
	if err != nil {
		t.Fatal(err)
	}

	mesh := transport.NewMesh()
	defer mesh.Close()
	reg := obs.NewRegistry()
	retry := RetryPolicy{Que1Retries: 3, Que2Retries: 3, Timeout: 100 * time.Millisecond,
		Backoff: 2, SessionTTL: 5 * time.Second, Adaptive: true}

	sprov, err := b.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	sep := &que2Dropper{Endpoint: mesh.Join()}
	subj := NewSubject(sprov, wire.V30, Costs{},
		WithEndpoint(sep), WithRetry(retry), WithTelemetry(reg, nil))

	oprov, err := b.ProvisionObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	NewObject(oprov, wire.V30, Costs{},
		WithEndpoint(mesh.Join()), WithRetry(retry), WithTelemetry(reg, nil))

	sep.Do(func() {
		if err := subj.Discover(1); err != nil {
			t.Errorf("Discover: %v", err)
		}
	})
	meshPoll(t, 20*time.Second, func() bool { return len(subj.Results()) >= 1 },
		"discovery despite the dropped QUE2")
	if !sep.dropped {
		t.Fatal("harness never saw a QUE2 to drop")
	}
	if got := counterValue(t, reg, obs.MRetransmissions,
		obs.L("role", "subject"), obs.L("msg", "que2")); got < 1 {
		t.Fatalf("QUE2 retransmissions = %d, want >= 1 (the wheel deadline must have fired)", got)
	}
}

// TestMeshAdaptiveObjectRestartsExpiredSession proves the expired-duplicate
// restart cue: a QUE1 rebroadcast whose object-side session aged out
// entirely clears the duplicate-suppression entry and is served a fresh
// handshake, while a duplicate with a live session gets the cached RES1.
func TestMeshAdaptiveObjectRestartsExpiredSession(t *testing.T) {
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := b.RegisterObject("device", L2, attr.MustSet("type=device"), []string{"use"})
	if err != nil {
		t.Fatal(err)
	}
	oprov, err := b.ProvisionObject(oid)
	if err != nil {
		t.Fatal(err)
	}

	mesh := transport.NewMesh()
	defer mesh.Close()
	reg := obs.NewRegistry()
	retry := RetryPolicy{Que1Retries: 2, Que2Retries: 2, Timeout: 50 * time.Millisecond,
		Backoff: 2, SessionTTL: 300 * time.Millisecond, Adaptive: true}
	obj := NewObject(oprov, wire.V30, Costs{},
		WithEndpoint(mesh.Join()), WithRetry(retry), WithTelemetry(reg, nil))

	// A bare listener stands in for the subject: it sends raw QUE1 frames
	// and counts the RES1s the object answers with.
	lep := mesh.Join()
	var res1s int64
	lep.Bind(transport.HandlerFunc(func(from transport.Addr, payload []byte) {
		if m, err := wire.Decode(payload); err == nil {
			if _, ok := m.(*wire.RES1); ok {
				res1s++
			}
		}
	}))
	count := func() int64 {
		ch := make(chan int64, 1)
		lep.Do(func() { ch <- res1s })
		return <-ch
	}

	rs, err := suite.NewNonce(nil)
	if err != nil {
		t.Fatal(err)
	}
	q := (&wire.QUE1{Version: wire.V30, RS: rs}).Encode()

	lep.Do(func() { lep.Send(obj.ep.Addr(), q) })
	meshPoll(t, 5*time.Second, func() bool { return count() == 1 }, "first RES1")

	// Same R_S while the session is live: duplicate, served the cached RES1.
	lep.Do(func() { lep.Send(obj.ep.Addr(), q) })
	meshPoll(t, 5*time.Second, func() bool { return count() == 2 }, "cached RES1 resend")

	// Let the unanswered session age out entirely, then probe again: the
	// object must treat it as a restart and serve a fresh handshake rather
	// than staying silent forever.
	meshPoll(t, 5*time.Second, func() bool { return obj.PendingSessions() == 0 },
		"object session TTL GC")
	lep.Do(func() { lep.Send(obj.ep.Addr(), q) })
	meshPoll(t, 5*time.Second, func() bool { return count() == 3 }, "fresh RES1 after restart")
}

func TestMeshAdaptiveQue1ScheduleFiresWhenUnanswered(t *testing.T) {
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	sid, _, err := b.RegisterSubject("alone", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	sprov, err := b.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}

	mesh := transport.NewMesh()
	defer mesh.Close()
	reg := obs.NewRegistry()
	sep := mesh.Join()
	retry := RetryPolicy{Que1Retries: 2, Que2Retries: 2, Timeout: 30 * time.Millisecond,
		Backoff: 2, SessionTTL: time.Second, Adaptive: true}
	subj := NewSubject(sprov, wire.V30, Costs{},
		WithEndpoint(sep), WithRetry(retry), WithTelemetry(reg, nil))

	sep.Do(func() {
		if err := subj.Discover(1); err != nil {
			t.Errorf("Discover: %v", err)
		}
	})
	// With no answers there is no RTT to defer on: the wheel must walk the
	// whole configured rebroadcast schedule.
	meshPoll(t, 10*time.Second, func() bool {
		return counterValue(t, reg, obs.MRetransmissions,
			obs.L("role", "subject"), obs.L("msg", "que1")) == int64(retry.Que1Retries)
	}, "adaptive QUE1 rebroadcast schedule")
}
