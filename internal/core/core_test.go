package core

import (
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/groups"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/wire"
)

// deployment is a test fixture: a backend plus a star ground network with
// one subject and its engines.
type deployment struct {
	t   *testing.T
	b   *backend.Backend
	net *netsim.Network

	subjNode netsim.NodeID
	subject  *Subject

	objects map[string]*Object
}

func newDeployment(t *testing.T) *deployment {
	t.Helper()
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	return &deployment{
		t:       t,
		b:       b,
		net:     netsim.New(netsim.DefaultWiFi(), 1),
		objects: make(map[string]*Object),
	}
}

// addSubject registers and attaches the deployment's subject.
func (d *deployment) addSubject(name string, attrs attr.Set, version wire.Version, opts ...Option) *Subject {
	d.t.Helper()
	id, _, err := d.b.RegisterSubject(name, attrs)
	if err != nil {
		d.t.Fatal(err)
	}
	return d.attachSubject(id, version, opts...)
}

func (d *deployment) attachSubject(id cert.ID, version wire.Version, opts ...Option) *Subject {
	d.t.Helper()
	prov, err := d.b.ProvisionSubject(id)
	if err != nil {
		d.t.Fatal(err)
	}
	ep := d.net.NewEndpoint()
	s := NewSubject(prov, version, Costs{}, append(opts, WithEndpoint(ep))...)
	d.subjNode = ep.Node()
	d.subject = s
	return s
}

// addObject registers, provisions and attaches an object one hop from the
// subject.
func (d *deployment) addObject(name string, level Level, attrs attr.Set, funcs []string, version wire.Version, opts ...Option) *Object {
	d.t.Helper()
	id, _, err := d.b.RegisterObject(name, level, attrs, funcs)
	if err != nil {
		d.t.Fatal(err)
	}
	return d.attachObject(id, version, opts...)
}

func (d *deployment) attachObject(id cert.ID, version wire.Version, opts ...Option) *Object {
	d.t.Helper()
	prov, err := d.b.ProvisionObject(id)
	if err != nil {
		d.t.Fatal(err)
	}
	ep := d.net.NewEndpoint()
	o := NewObject(prov, version, Costs{}, append(opts, WithEndpoint(ep))...)
	d.net.Link(d.subjNode, ep.Node())
	d.objects[prov.Name] = o
	return o
}

// refreshObject re-provisions an attached object after backend churn.
func (d *deployment) refreshObject(name string) {
	d.t.Helper()
	o := d.objects[name]
	prov, err := d.b.ProvisionObject(o.ID())
	if err != nil {
		d.t.Fatal(err)
	}
	o.Refresh(prov)
}

// run performs one discovery round and drains the network.
func (d *deployment) run() []Discovery {
	d.t.Helper()
	if err := d.subject.Discover(1); err != nil {
		d.t.Fatal(err)
	}
	d.net.Run(0)
	return d.subject.Results()
}

func findByLevel(res []Discovery, l Level) []Discovery {
	var out []Discovery
	for _, r := range res {
		if r.Level == l {
			out = append(out, r)
		}
	}
	return out
}

func TestLevel1Discovery(t *testing.T) {
	for _, v := range []wire.Version{wire.V10, wire.V20, wire.V30} {
		d := newDeployment(t)
		d.addSubject("alice", attr.MustSet("position=visitor"), v)
		d.addObject("aisle-thermometer", L1, attr.MustSet("type=thermometer"), []string{"read-temperature"}, v)

		res := d.run()
		if len(res) != 1 {
			t.Fatalf("%v: discoveries = %d, want 1", v, len(res))
		}
		if res[0].Level != L1 {
			t.Errorf("%v: level = %v", v, res[0].Level)
		}
		if got := res[0].Profile.Functions; len(got) != 1 || got[0] != "read-temperature" {
			t.Errorf("%v: functions = %v", v, got)
		}
		if res[0].At <= 0 {
			t.Errorf("%v: no virtual time recorded", v)
		}
	}
}

func TestLevel2DifferentiatedByAttributes(t *testing.T) {
	for _, v := range []wire.Version{wire.V10, wire.V20, wire.V30} {
		d := newDeployment(t)
		d.b.AddPolicy(
			attr.MustParse("position=='manager' && department=='X'"),
			attr.MustParse("type=='multimedia'"),
			[]string{"play", "record"})
		d.addSubject("manager", attr.MustSet("position=manager,department=X"), v)
		d.addObject("office-multimedia", L2, attr.MustSet("type=multimedia,room=101"), []string{"play", "record", "admin"}, v)

		res := d.run()
		if len(res) != 1 || res[0].Level != L2 {
			t.Fatalf("%v: results = %+v, want one L2 discovery", v, res)
		}
		fns := res[0].Profile.Functions
		if len(fns) != 2 || fns[0] != "play" || fns[1] != "record" {
			t.Errorf("%v: functions = %v, want the policy rights only", v, fns)
		}
	}
}

func TestLevel2OutsiderSeesNothing(t *testing.T) {
	d := newDeployment(t)
	d.b.AddPolicy(
		attr.MustParse("position=='manager'"),
		attr.MustParse("type=='multimedia'"),
		[]string{"play"})
	d.addSubject("outsider", attr.MustSet("position=visitor"), wire.V30)
	d.addObject("office-multimedia", L2, attr.MustSet("type=multimedia"), []string{"play"}, wire.V30)

	res := d.run()
	if len(res) != 0 {
		t.Fatalf("outsider discovered %d services, want 0 — service information secrecy (§III)", len(res))
	}
}

func TestLevel2MultipleVariants(t *testing.T) {
	// Two policies on one object: managers see admin functions, staff see
	// basic ones — differentiated variants of the same device.
	for _, tc := range []struct {
		who   string
		attrs string
		want  int
	}{
		{"manager", "position=manager", 3},
		{"staff", "position=staff", 1},
	} {
		d := newDeployment(t)
		d.b.AddPolicy(attr.MustParse("position=='manager'"),
			attr.MustParse("type=='hvac'"), []string{"set-temperature", "schedule", "service-mode"})
		d.b.AddPolicy(attr.MustParse("position=='staff'"),
			attr.MustParse("type=='hvac'"), []string{"read-temperature"})
		d.addSubject(tc.who, attr.MustSet(tc.attrs), wire.V30)
		d.addObject("hvac", L2, attr.MustSet("type=hvac"), []string{"set-temperature", "schedule", "service-mode", "read-temperature"}, wire.V30)
		res := d.run()
		if len(res) != 1 {
			t.Fatalf("%s: discoveries = %d", tc.who, len(res))
		}
		if got := len(res[0].Profile.Functions); got != tc.want {
			t.Errorf("%s sees %d functions (%v), want %d", tc.who, got, res[0].Profile.Functions, tc.want)
		}
	}
}

// covertFixture builds the paper's running example: student S with a
// sensitive attribute, the magazine machine O serving S's secret group
// covertly while showing a Level 2 face to everyone.
func covertFixture(t *testing.T, v wire.Version, subjectInGroup bool) (*deployment, groups.ID) {
	d := newDeployment(t)
	g, err := d.b.Groups.CreateGroup("students with learning disability")
	if err != nil {
		t.Fatal(err)
	}
	// Level 2 face: any student can buy magazines.
	d.b.AddPolicy(attr.MustParse("position=='student'"),
		attr.MustParse("type=='magazine-machine'"), []string{"buy-magazine"})

	sid, _, err := d.b.RegisterSubject("student-S", attr.MustSet("position=student"))
	if err != nil {
		t.Fatal(err)
	}
	if subjectInGroup {
		if err := d.b.AddSubjectToGroup(sid, g.ID()); err != nil {
			t.Fatal(err)
		}
	}

	oid, _, err := d.b.RegisterObject("magazine-machine", L3,
		attr.MustSet("type=magazine-machine,building=library"), []string{"buy-magazine"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.b.AddCovertService(oid, g.ID(), []string{"buy-magazine", "counseling-flyers"}); err != nil {
		t.Fatal(err)
	}

	d.attachSubject(sid, v)
	d.attachObject(oid, v)
	return d, g.ID()
}

func TestLevel3FellowDiscoversCovertService(t *testing.T) {
	for _, v := range []wire.Version{wire.V20, wire.V30} {
		d, gid := covertFixture(t, v, true)
		res := d.run()
		if len(res) != 1 {
			t.Fatalf("%v: discoveries = %d, want 1", v, len(res))
		}
		r := res[0]
		if r.Level != L3 {
			t.Fatalf("%v: level = %v, want L3", v, r.Level)
		}
		if r.Group != uint64(gid) {
			t.Errorf("%v: group = %d, want %d", v, r.Group, gid)
		}
		found := false
		for _, f := range r.Profile.Functions {
			if f == "counseling-flyers" {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: covert functions missing: %v", v, r.Profile.Functions)
		}
	}
}

func TestLevel3NonFellowSeesLevel2Face(t *testing.T) {
	// v3.0 double-faced role: a student outside the secret group gets the
	// clean magazines — a Level 2 discovery — and cannot tell the machine is
	// Level 3.
	d, _ := covertFixture(t, wire.V30, false)
	res := d.run()
	if len(res) != 1 {
		t.Fatalf("discoveries = %d, want 1", len(res))
	}
	if res[0].Level != L2 {
		t.Fatalf("level = %v, want L2 (the object's public face)", res[0].Level)
	}
	for _, f := range res[0].Profile.Functions {
		if f == "counseling-flyers" {
			t.Fatal("covert function leaked to non-fellow")
		}
	}
}

func TestLevel3V20NonFellowDiscoveryFails(t *testing.T) {
	// In v2.0 a Level 3 object always answers with its Level 3 face; a
	// non-fellow cannot verify MAC_{O,3} and the discovery fails — secrecy
	// holds, but the failure itself is the distinguishability leak.
	d, _ := covertFixture(t, wire.V20, false)
	res := d.run()
	if len(res) != 0 {
		t.Fatalf("non-fellow discovered %d services under v2.0, want 0", len(res))
	}
}

func TestV10TreatsLevel3ObjectAsLevel2(t *testing.T) {
	d, _ := covertFixture(t, wire.V10, true)
	res := d.run()
	if len(res) != 1 || res[0].Level != L2 {
		t.Fatalf("v1.0 results = %+v, want one L2 discovery", res)
	}
}

func TestMultiGroupRotationFindsAllCovertServices(t *testing.T) {
	// §VI-C: a subject in two secret groups rotates keys across rounds and
	// finds the covert services of both.
	d := newDeployment(t)
	g1, _ := d.b.Groups.CreateGroup("group-one")
	g2, _ := d.b.Groups.CreateGroup("group-two")
	sid, _, _ := d.b.RegisterSubject("multi", attr.MustSet("position=student"))
	d.b.AddSubjectToGroup(sid, g1.ID())
	d.b.AddSubjectToGroup(sid, g2.ID())

	o1, _, _ := d.b.RegisterObject("covert-1", L3, attr.MustSet("type=kiosk"), []string{"use"})
	o2, _, _ := d.b.RegisterObject("covert-2", L3, attr.MustSet("type=kiosk"), []string{"use"})
	d.b.AddCovertService(o1, g1.ID(), []string{"use", "support-1"})
	d.b.AddCovertService(o2, g2.ID(), []string{"use", "support-2"})

	d.attachSubject(sid, wire.V30)
	d.attachObject(o1, wire.V30)
	d.attachObject(o2, wire.V30)

	if err := d.subject.DiscoverAll(1, func() { d.net.Run(0) }); err != nil {
		t.Fatal(err)
	}
	l3 := findByLevel(d.subject.Results(), L3)
	seen := map[string]bool{}
	for _, r := range l3 {
		for _, f := range r.Profile.Functions {
			seen[f] = true
		}
	}
	if !seen["support-1"] || !seen["support-2"] {
		t.Fatalf("multi-group rotation missed covert services: %v", seen)
	}
}

func TestRevokedSubjectIsRefused(t *testing.T) {
	// §VIII: after revocation, the notified objects reject the subject's
	// future discovery attempts.
	d := newDeployment(t)
	d.b.AddPolicy(attr.MustParse("position=='manager'"),
		attr.MustParse("type=='safe'"), []string{"open"})
	s := d.addSubject("manager", attr.MustSet("position=manager"), wire.V30)
	d.addObject("safe", L2, attr.MustSet("type=safe"), []string{"open"}, wire.V30)

	if res := d.run(); len(res) != 1 {
		t.Fatalf("pre-revocation discoveries = %d, want 1", len(res))
	}

	rep, err := d.b.RevokeSubject(s.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NotifiedObjects) != 1 {
		t.Fatalf("notified %d objects, want 1", len(rep.NotifiedObjects))
	}
	d.refreshObject("safe")

	before := len(d.subject.Results())
	d.run()
	if got := len(d.subject.Results()) - before; got != 0 {
		t.Fatalf("revoked subject discovered %d services, want 0", got)
	}
}

func TestDuplicateQUE1Suppressed(t *testing.T) {
	// Objects detect duplicate queries via R_S (§IV-B): a flooded QUE1
	// arriving over several paths triggers one RES1.
	d := newDeployment(t)
	d.addSubject("alice", attr.Set{}, wire.V30)
	o := d.addObject("thermo", L1, attr.MustSet("type=thermometer"), []string{"read"}, wire.V30)
	// Add a relay path subject → relay → object so the flood reaches the
	// object twice.
	relay := d.net.AddNode(nil)
	d.net.Link(d.subjNode, relay)
	objNode := netsim.NodeID(1) // first object added after subject
	_ = o
	d.net.Link(relay, objNode)

	if err := d.subject.Discover(3); err != nil {
		t.Fatal(err)
	}
	d.net.Run(0)
	if got := len(d.subject.Results()); got != 1 {
		t.Fatalf("discoveries = %d, want 1 (duplicate suppressed)", got)
	}
}

func TestTwentyObjectMixedDeployment(t *testing.T) {
	// An integration sweep shaped like the paper's testbed: 20 objects mixed
	// across levels, one subject discovering all of them concurrently.
	d := newDeployment(t)
	g, _ := d.b.Groups.CreateGroup("support")
	d.b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("has(room)"), []string{"use"})
	sid, _, _ := d.b.RegisterSubject("staff-member", attr.MustSet("position=staff"))
	d.b.AddSubjectToGroup(sid, g.ID())
	d.attachSubject(sid, wire.V30)

	wantL1, wantL2, wantL3 := 0, 0, 0
	for i := 0; i < 20; i++ {
		var level Level
		switch i % 3 {
		case 0:
			level = L1
			wantL1++
		case 1:
			level = L2
			wantL2++
		default:
			level = L3
			wantL3++
		}
		name := string(rune('a'+i)) + "-device"
		oid, _, err := d.b.RegisterObject(name, level,
			attr.MustSet("room=R1,type=device"), []string{"use"})
		if err != nil {
			t.Fatal(err)
		}
		if level == L3 {
			if err := d.b.AddCovertService(oid, g.ID(), []string{"use", "covert-use"}); err != nil {
				t.Fatal(err)
			}
		}
		d.attachObject(oid, wire.V30)
	}

	res := d.run()
	if len(res) != 20 {
		t.Fatalf("discoveries = %d, want 20", len(res))
	}
	if got := len(findByLevel(res, L1)); got != wantL1 {
		t.Errorf("L1 = %d, want %d", got, wantL1)
	}
	if got := len(findByLevel(res, L2)); got != wantL2 {
		t.Errorf("L2 = %d, want %d", got, wantL2)
	}
	if got := len(findByLevel(res, L3)); got != wantL3 {
		t.Errorf("L3 = %d, want %d", got, wantL3)
	}
}

// TestLevel3ObjectServesMultipleGroups: an object in m' secret groups holds
// m' PROF variants (§IV-A) and answers each fellow with their group's
// variant — two fellows of different groups see different covert functions.
func TestLevel3ObjectServesMultipleGroups(t *testing.T) {
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := b.Groups.CreateGroup("group-one")
	g2, _ := b.Groups.CreateGroup("group-two")
	oid, _, _ := b.RegisterObject("multi-kiosk", backend.L3, attr.MustSet("type=kiosk"), []string{"use"})
	b.AddCovertService(oid, g1.ID(), []string{"use", "covert-one"})
	b.AddCovertService(oid, g2.ID(), []string{"use", "covert-two"})

	s1, _, _ := b.RegisterSubject("fellow-one", attr.MustSet("position=staff"))
	s2, _, _ := b.RegisterSubject("fellow-two", attr.MustSet("position=staff"))
	b.AddSubjectToGroup(s1, g1.ID())
	b.AddSubjectToGroup(s2, g2.ID())

	covertFuncs := func(sid cert.ID) []string {
		net := netsim.New(netsim.DefaultWiFi(), 8)
		prov, err := b.ProvisionSubject(sid)
		if err != nil {
			t.Fatal(err)
		}
		sep := net.NewEndpoint()
		subj := NewSubject(prov, wire.V30, Costs{}, WithEndpoint(sep))
		oprov, err := b.ProvisionObject(oid)
		if err != nil {
			t.Fatal(err)
		}
		oep := net.NewEndpoint()
		NewObject(oprov, wire.V30, Costs{}, WithEndpoint(oep))
		net.Link(sep.Node(), oep.Node())
		if err := subj.Discover(1); err != nil {
			t.Fatal(err)
		}
		net.Run(0)
		res := subj.Results()
		if len(res) != 1 || res[0].Level != L3 {
			t.Fatalf("results = %+v", res)
		}
		return res[0].Profile.Functions
	}

	f1 := covertFuncs(s1)
	f2 := covertFuncs(s2)
	has := func(fs []string, want string) bool {
		for _, f := range fs {
			if f == want {
				return true
			}
		}
		return false
	}
	if !has(f1, "covert-one") || has(f1, "covert-two") {
		t.Fatalf("fellow-one sees %v", f1)
	}
	if !has(f2, "covert-two") || has(f2, "covert-one") {
		t.Fatalf("fellow-two sees %v", f2)
	}
}
