package core

import (
	"testing"
	"time"

	"argus/internal/transport"
)

// fakeClockEP is a minimal single-threaded Endpoint with a hand-driven
// clock, just enough to unit-test the timer wheel's arm/fire discipline
// without a transport behind it.
type fakeClockEP struct {
	now    time.Duration
	timers []fakeTimer
}

type fakeTimer struct {
	at time.Duration
	fn func()
}

func (f *fakeClockEP) Addr() transport.Addr               { return "fake" }
func (f *fakeClockEP) Now() time.Duration                 { return f.now }
func (f *fakeClockEP) Send(transport.Addr, []byte)        {}
func (f *fakeClockEP) Broadcast([]byte, int)              {}
func (f *fakeClockEP) Compute(_ time.Duration, fn func()) { fn() }
func (f *fakeClockEP) Do(fn func())                       { fn() }
func (f *fakeClockEP) Bind(transport.Handler)             {}
func (f *fakeClockEP) Close() error                       { return nil }

func (f *fakeClockEP) After(d time.Duration, fn func()) {
	f.timers = append(f.timers, fakeTimer{at: f.now + d, fn: fn})
}

// advanceTo moves the clock and runs every due transport timer in deadline
// order, including ones armed by the callbacks themselves.
func (f *fakeClockEP) advanceTo(t time.Duration) {
	for {
		best := -1
		for i, tm := range f.timers {
			if tm.at <= t && (best == -1 || tm.at < f.timers[best].at) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		tm := f.timers[best]
		f.timers = append(f.timers[:best], f.timers[best+1:]...)
		if tm.at > f.now {
			f.now = tm.at
		}
		tm.fn()
	}
	if t > f.now {
		f.now = t
	}
}

func TestTimerWheelFiresInDeadlineOrder(t *testing.T) {
	ep := &fakeClockEP{}
	w := newTimerWheel(ep)
	var order []int
	w.schedule(30*time.Millisecond, func() { order = append(order, 30) })
	w.schedule(10*time.Millisecond, func() { order = append(order, 10) })
	w.schedule(20*time.Millisecond, func() { order = append(order, 20) })
	if w.pending() != 3 {
		t.Fatalf("pending = %d, want 3", w.pending())
	}
	// Three deadlines, at most two armed transport timers: the 10 ms
	// schedule re-arms past the outstanding 30 ms one; the 20 ms schedule
	// is covered by it.
	if len(ep.timers) != 2 {
		t.Fatalf("armed %d transport timers, want 2", len(ep.timers))
	}
	ep.advanceTo(50 * time.Millisecond)
	if len(order) != 3 || order[0] != 10 || order[1] != 20 || order[2] != 30 {
		t.Fatalf("fire order = %v, want [10 20 30]", order)
	}
	if w.pending() != 0 {
		t.Fatalf("pending after drain = %d, want 0", w.pending())
	}
}

func TestTimerWheelCancel(t *testing.T) {
	ep := &fakeClockEP{}
	w := newTimerWheel(ep)
	var fired []int
	w.schedule(10*time.Millisecond, func() { fired = append(fired, 1) })
	e2 := w.schedule(20*time.Millisecond, func() { fired = append(fired, 2) })
	w.schedule(30*time.Millisecond, func() { fired = append(fired, 3) })
	w.cancel(e2)
	w.cancel(nil) // nil-safe
	if w.pending() != 2 {
		t.Fatalf("pending after cancel = %d, want 2", w.pending())
	}
	ep.advanceTo(time.Second)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [1 3]", fired)
	}
}

func TestTimerWheelDeferTo(t *testing.T) {
	ep := &fakeClockEP{}
	w := newTimerWheel(ep)
	fired := 0
	e := w.schedule(10*time.Millisecond, func() { fired++ })
	w.deferTo(e, 25*time.Millisecond)
	w.deferTo(e, 5*time.Millisecond) // earlier: ignored, deadlines only extend
	ep.advanceTo(15 * time.Millisecond)
	if fired != 0 {
		t.Fatal("entry fired at its original deadline despite deferral")
	}
	ep.advanceTo(25 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d after deferred deadline, want 1", fired)
	}
	// Deferring a spent entry is a no-op.
	w.deferTo(e, time.Second)
	ep.advanceTo(2 * time.Second)
	if fired != 1 {
		t.Fatalf("spent entry refired: %d", fired)
	}
}

// A wakeup superseded by an earlier arm must not double-run the heap: every
// entry fires exactly once even when several transport timers target the
// same pass.
func TestTimerWheelStaleWakeupsAreBenign(t *testing.T) {
	ep := &fakeClockEP{}
	w := newTimerWheel(ep)
	counts := map[int]int{}
	w.schedule(20*time.Millisecond, func() { counts[20]++ })
	w.schedule(10*time.Millisecond, func() { counts[10]++ })
	w.schedule(15*time.Millisecond, func() { counts[15]++ })
	ep.advanceTo(time.Second)
	for _, at := range []int{10, 15, 20} {
		if counts[at] != 1 {
			t.Fatalf("entry %dms fired %d times, want exactly once", at, counts[at])
		}
	}
	if len(ep.timers) != 0 {
		t.Fatalf("%d transport timers left unfired", len(ep.timers))
	}
}

// Callbacks scheduling follow-up deadlines (retry chains) keep the wheel
// armed.
func TestTimerWheelReschedulesFromCallback(t *testing.T) {
	ep := &fakeClockEP{}
	w := newTimerWheel(ep)
	hops := 0
	var chain func()
	chain = func() {
		hops++
		if hops < 3 {
			w.schedule(10*time.Millisecond, chain)
		}
	}
	w.schedule(10*time.Millisecond, chain)
	ep.advanceTo(time.Second)
	if hops != 3 {
		t.Fatalf("chain ran %d hops, want 3", hops)
	}
}

func TestRTTEstimator(t *testing.T) {
	var e rttEstimator
	floor := 100 * time.Millisecond
	if got := e.rto(floor); got != floor {
		t.Fatalf("rto before samples = %v, want floor %v", got, floor)
	}
	e.observe(-time.Millisecond) // negative samples (clock skew) ignored
	if e.valid {
		t.Fatal("negative sample accepted")
	}
	e.observe(8 * time.Millisecond)
	if e.srtt != 8*time.Millisecond || e.rttvar != 4*time.Millisecond {
		t.Fatalf("first sample: srtt=%v rttvar=%v", e.srtt, e.rttvar)
	}
	// srtt + 4·rttvar = 24ms < floor: floor holds.
	if got := e.rto(floor); got != floor {
		t.Fatalf("rto below floor: %v", got)
	}
	// Converges toward a steady stream of identical samples; variance decays.
	for i := 0; i < 64; i++ {
		e.observe(8 * time.Millisecond)
	}
	if e.srtt != 8*time.Millisecond {
		t.Fatalf("srtt diverged on constant input: %v", e.srtt)
	}
	if e.rttvar > time.Millisecond {
		t.Fatalf("rttvar did not decay: %v", e.rttvar)
	}
	// A latency spike widens the horizon above the floor.
	for i := 0; i < 8; i++ {
		e.observe(400 * time.Millisecond)
	}
	if got := e.rto(floor); got <= floor {
		t.Fatalf("rto ignored observed latency: %v", got)
	}
}
