package core

// Session-table garbage collection under targeted total loss: if a specific
// message type never arrives, the half-open handshakes it strands must be
// reclaimed at SessionTTL on BOTH sides — a lost RES2 may not leak sessions
// (ISSUE satellite: subject and object maps return to size 0).

import (
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/wire"
)

// dropType installs a drop filter that loses every frame of one wire type —
// "100% RES1 loss" etc. — something a probabilistic FaultModel cannot
// express. netsim stays wire-agnostic; the test supplies the decoder.
func dropType(net *netsim.Network, mt wire.MsgType) {
	net.SetDropFilter(func(_, _ netsim.NodeID, p []byte) bool {
		m, err := wire.Decode(p)
		return err == nil && m.Type() == mt
	})
}

// gcFixture builds a 3-object L2 deployment with retry enabled and a
// registry, returning it plus the policy in force.
func gcFixture(t *testing.T) (*deployment, RetryPolicy, *obs.Registry) {
	t.Helper()
	d := newDeployment(t)
	reg := obs.NewRegistry()
	d.b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"), []string{"use"})
	p := DefaultRetry()
	d.addSubject("alice", attr.MustSet("position=staff"), wire.V30,
		WithRetry(p), WithTelemetry(reg, nil))
	for _, n := range []string{"obj-a", "obj-b", "obj-c"} {
		d.addObject(n, L2, attr.MustSet("type=device"), []string{"use"}, wire.V30,
			WithRetry(p), WithTelemetry(reg, nil))
	}
	return d, p, reg
}

func (d *deployment) objectPending() int {
	n := 0
	for _, o := range d.objects {
		n += o.PendingSessions()
	}
	return n
}

// counterValue sums every counter of the family whose labels are a superset
// of the given ones.
func counterValue(t *testing.T, reg *obs.Registry, name string, labels ...obs.Label) int64 {
	t.Helper()
	var total int64
next:
	for _, m := range reg.Snapshot().Metrics {
		if m.Name != name {
			continue
		}
		for _, want := range labels {
			if m.Labels[want.Key] != want.Value {
				continue next
			}
		}
		total += int64(m.Value)
	}
	return total
}

func TestSessionGCUnderTotalRES1Loss(t *testing.T) {
	d, p, reg := gcFixture(t)
	dropType(d.net, wire.TRES1)

	if err := d.subject.Discover(1); err != nil {
		t.Fatal(err)
	}
	d.net.Run(0)

	// No RES1 ever arrived: the subject opened nothing, every object strands
	// one half-open session per QUE1 — all reclaimed by the expiry pass.
	if got := d.subject.PendingSessions(); got != 0 {
		t.Fatalf("subject pending = %d, want 0 (it never saw RES1)", got)
	}
	if got := d.objectPending(); got != 0 {
		t.Fatalf("objects leaked %d sessions after SessionTTL", got)
	}
	if got := counterValue(t, reg, obs.MSessionsExpired, obs.L("role", "object")); got != 3 {
		t.Fatalf("object expiry counter = %d, want 3 (one stranded session each)", got)
	}
	if len(d.subject.Results()) != 0 {
		t.Fatal("discoveries recorded with every RES1 dropped")
	}
	// Regression pin on the expiry budget: the whole round — retries plus
	// GC — settles within SessionTTL plus the last-retry tail and slack.
	// Growing this bound means the expiry schedule regressed.
	budget := p.ttl() + 2*time.Second
	if d.net.Now() > budget {
		t.Fatalf("round settled at %v, budget %v", d.net.Now(), budget)
	}
}

func TestSessionGCUnderTotalRES2Loss(t *testing.T) {
	d, p, reg := gcFixture(t)
	dropType(d.net, wire.TRES2)

	if err := d.subject.Discover(1); err != nil {
		t.Fatal(err)
	}
	d.net.Run(0)

	// The handshake ran to QUE2 on both sides; only the final RES2 vanished.
	// Both tables must drain: the subject's pending sessions and the
	// objects' answered sessions (kept for duplicate-QUE2 resends).
	if got := d.subject.PendingSessions(); got != 0 {
		t.Fatalf("subject leaked %d sessions after SessionTTL", got)
	}
	if got := d.objectPending(); got != 0 {
		t.Fatalf("objects leaked %d sessions after SessionTTL", got)
	}
	if got := counterValue(t, reg, obs.MSessionsExpired, obs.L("role", "subject")); got != 3 {
		t.Fatalf("subject expiry counter = %d, want 3", got)
	}
	if got := counterValue(t, reg, obs.MRetransmissions, obs.L("role", "subject"), obs.L("msg", "que2")); got == 0 {
		t.Fatal("subject never retransmitted QUE2 while RES2 was being dropped")
	}
	if len(d.subject.Results()) != 0 {
		t.Fatal("discoveries recorded with every RES2 dropped")
	}
	budget := p.ttl() + 2*time.Second
	if d.net.Now() > budget {
		t.Fatalf("round settled at %v, budget %v", d.net.Now(), budget)
	}
}

// TestRetryDisabledKeepsSeedSessionSemantics pins that the zero policy keeps
// the pre-retry behavior: no expiry timers (sessions prune by round age), no
// resends, and a lost RES2 leaves the session until the next-next round.
func TestRetryDisabledKeepsSeedSessionSemantics(t *testing.T) {
	d := newDeployment(t)
	d.b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"), []string{"use"})
	d.addSubject("alice", attr.MustSet("position=staff"), wire.V30)
	d.addObject("obj-a", L2, attr.MustSet("type=device"), []string{"use"}, wire.V30)
	dropType(d.net, wire.TRES2)

	d.run()
	if got := d.subject.PendingSessions(); got != 1 {
		t.Fatalf("subject pending = %d, want 1 (no expiry without retry)", got)
	}
	d.net.SetDropFilter(nil)
	d.run() // round 2: prune keeps round-1 sessions (age 1)
	d.run() // round 3: round-1 session pruned
	if got := d.subject.PendingSessions(); got != 0 {
		t.Fatalf("subject pending = %d after two more rounds, want 0 (round pruning)", got)
	}
}
