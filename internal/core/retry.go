package core

import "time"

// RetryPolicy makes the 4-way handshake survive a lossy ground network: the
// paper's testbed runs over real WiFi (§IX) where QUE/RES frames are lost,
// duplicated and reordered, and a protocol that hangs a session on one lost
// frame cannot reproduce its results there. The policy drives bounded
// retransmission with exponential backoff on the subject side, answer-caching
// idempotency on the object side, and session-table expiry on both — all on
// the simulator's virtual clock, so fixed-seed runs stay deterministic.
//
// The zero value disables everything: engines behave exactly like the
// pre-retry protocol (one shot per message, sessions pruned by round age),
// which keeps the calibrated latency experiments (Fig 6) untouched.
type RetryPolicy struct {
	// Que1Retries is how many times the subject rebroadcasts QUE1 after the
	// initial transmission of a round. Objects suppress duplicates via R_S
	// (§IV-B), so extra broadcasts only reach receivers that lost earlier
	// copies — and nudge objects with stalled sessions to resend RES1.
	Que1Retries int
	// Que2Retries is how many times the subject retransmits QUE2 while its
	// session is still pending (no verified RES2 yet).
	Que2Retries int
	// Timeout is the base retransmission timeout. Zero disables the whole
	// policy (Enabled reports false).
	Timeout time.Duration
	// Backoff is the multiplier applied to Timeout per attempt (values < 1
	// mean the default of 2).
	Backoff float64
	// SessionTTL bounds the lifetime of a pending or answered session; after
	// it, the session is garbage-collected and counted as expired. Zero means
	// the default of 8s.
	SessionTTL time.Duration
	// Adaptive switches the engines from per-message backoff timers to a
	// deadline-aware timer wheel keyed off observed RTT: retransmission
	// deadlines start at the configured schedule but extend while the
	// measured round-trip horizon (srtt + 4·rttvar) says the answer is still
	// plausibly in flight, and a completed or canceled session drops its
	// deadlines without the timer ever firing. On a lossless network an
	// adaptive engine retransmits ~never. The configured delays remain hard
	// floors and SessionTTL expiry is never deferred, so GC semantics are
	// unchanged.
	//
	// Off by default. The legacy path arms one transport timer per attempt
	// in a fixed order, and deterministic-simulation harnesses (netsim
	// fault schedules, chaos, exp fingerprints) depend on that exact event
	// sequence — they must leave Adaptive unset.
	Adaptive bool
}

// Enabled reports whether the policy is active.
func (p RetryPolicy) Enabled() bool { return p.Timeout > 0 }

// delay returns the wait before retransmission attempt (1-based):
// Timeout·Backoff^(attempt-1), capped at 10s so a misconfigured backoff
// cannot stall the virtual clock.
func (p RetryPolicy) delay(attempt int) time.Duration {
	b := p.Backoff
	if b < 1 {
		b = 2
	}
	d := float64(p.Timeout)
	for i := 1; i < attempt; i++ {
		d *= b
	}
	const maxDelay = 10 * time.Second
	if d > float64(maxDelay) {
		return maxDelay
	}
	return time.Duration(d)
}

// Schedule returns the cumulative transmission offsets of one message leg:
// the initial send at 0, then each of the retries attempts at
// Σ delay(1..i). Harnesses use it to reason about when copies of a frame hit
// the air — e.g. to prove a duty-cycled receiver's awake windows cover the
// schedule, or to wait out the retry tail of a drained wave.
func (p RetryPolicy) Schedule(retries int) []time.Duration {
	out := make([]time.Duration, 0, retries+1)
	var cum time.Duration
	out = append(out, 0)
	for i := 1; i <= retries; i++ {
		cum += p.delay(i)
		out = append(out, cum)
	}
	return out
}

// ttl returns the effective session lifetime.
func (p RetryPolicy) ttl() time.Duration {
	if p.SessionTTL > 0 {
		return p.SessionTTL
	}
	return 8 * time.Second
}

// DefaultRetry is the policy used by argus-sim when fault injection is on and
// by the chaos harness: sized so a 20% per-frame loss rate still completes
// discovery. Six QUE1 broadcasts put the all-lost tail at 0.2^6 ≈ 6e-5; a
// Level 1 exchange, whose only recovery channel is rebroadcast→RES1-resend
// (~64% per attempt at 20% loss), still fails less than ~0.3% of the time.
// The cumulative backoff schedule (250, 750, 1750, 3750, 7750 ms) keeps every
// retry inside SessionTTL — a rebroadcast after expiry would find the
// object's cached answer already garbage-collected. A fully partitioned
// network settles in one SessionTTL.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{
		Que1Retries: 5,
		Que2Retries: 5,
		Timeout:     250 * time.Millisecond,
		Backoff:     2,
		SessionTTL:  8 * time.Second,
	}
}
