package transport

import (
	"fmt"
	"testing"
	"time"

	"argus/internal/transport/transporttest"
)

// handlerFunc adapts a func to Handler for mailbox-level tests.
type handlerFunc func(from Addr, payload []byte)

func (f handlerFunc) Handle(from Addr, payload []byte) { f(from, payload) }

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	transporttest.WaitUntil(t, 10*time.Second, cond, what)
}

// Control work enqueued while a deep frame backlog drains must jump the
// queue at the next batch boundary — after at most mailboxBatch frames —
// not wait for the whole backlog. The interleaving is deterministic: the
// handler runs on the actor loop, so a ctrl fn it enqueues is visible at
// the boundary re-check that follows its batch.
func TestMailboxCtrlPreemptsFrameBacklog(t *testing.T) {
	mb := newMailbox(512)
	var order []string
	done := make(chan struct{})
	const total = 2*mailboxBatch + 20
	h := handlerFunc(func(_ Addr, payload []byte) {
		order = append(order, string(payload))
		if len(order) == 1 {
			mb.enqueueCtrl(func() { order = append(order, "ctrl") })
		}
		if string(payload) == fmt.Sprintf("f%03d", total-1) {
			// Runs on the loop after this batch: happens-after every append.
			mb.enqueueCtrl(func() { close(done) })
		}
	})

	// Park the loop in a blocking ctrl fn so the backlog builds up and the
	// next swap sees all frames at once.
	entered := make(chan struct{})
	gate := make(chan struct{})
	go mb.run(h)
	defer func() { mb.close(); <-mb.loopDone }()
	mb.enqueueCtrl(func() { close(entered); <-gate })
	<-entered

	for i := 0; i < total; i++ {
		mb.enqueueMsg("peer", []byte(fmt.Sprintf("f%03d", i)))
	}
	close(gate)
	<-done

	// order is only written by the loop; done closing happens-after the
	// final append.
	if len(order) != total+1 {
		t.Fatalf("got %d entries, want %d", len(order), total+1)
	}
	// The ctrl enqueued while frame 0 was being handled runs exactly at the
	// first batch boundary.
	if order[mailboxBatch] != "ctrl" {
		t.Fatalf("order[%d] = %q, want ctrl at the batch boundary", mailboxBatch, order[mailboxBatch])
	}
	// Frames stay FIFO around the preemption.
	want := 0
	for _, e := range order {
		if e == "ctrl" {
			continue
		}
		if e != fmt.Sprintf("f%03d", want) {
			t.Fatalf("frame order broken: got %q, want f%03d", e, want)
		}
		want++
	}
	if mb.delivered.Load() != int64(total) {
		t.Fatalf("delivered = %d, want %d", mb.delivered.Load(), total)
	}
}

// Shedding is unchanged by batching: frames beyond the bound are dropped
// with a counted drop while everything under it is delivered.
func TestMailboxShedAccountingUnderBacklog(t *testing.T) {
	const limit = 100
	mb := newMailbox(limit)
	delivered := 0
	h := handlerFunc(func(_ Addr, _ []byte) { delivered++ })

	entered := make(chan struct{})
	gate := make(chan struct{})
	go mb.run(h)
	defer func() { mb.close(); <-mb.loopDone }()
	mb.enqueueCtrl(func() { close(entered); <-gate })
	<-entered

	for i := 0; i < limit+25; i++ {
		mb.enqueueMsg("peer", []byte{1})
	}
	close(gate)
	waitCond(t, func() bool { return mb.delivered.Load() == limit }, "backlog drain")
	if got := mb.drops.Load(); got != 25 {
		t.Fatalf("drops = %d, want 25", got)
	}
}
