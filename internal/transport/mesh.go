package transport

import (
	"fmt"
	"sync"
	"time"

	"argus/internal/obs"
)

// Mesh is a concurrent in-memory transport on the wall clock: a single radio
// segment where every endpoint hears every broadcast and any endpoint can
// unicast any other. Each endpoint runs its own actor goroutine over a
// bounded mailbox, so a deployment of N nodes is N truly concurrent engines
// — the configuration the -race discovery tests hammer.
//
// Delivery is reliable except for backpressure: a receiver whose mailbox is
// full sheds the frame with a counted drop, like a saturated radio. There is
// no airtime model and no hop structure; any Broadcast ttl >= 1 reaches all
// peers.
type Mesh struct {
	mu      sync.RWMutex
	eps     map[Addr]*MeshEndpoint
	seq     int
	start   time.Time
	reg     *obs.Registry
	mailbox int
	closed  bool
}

// MeshOption configures a Mesh at construction.
type MeshOption func(*Mesh)

// WithMailbox bounds each endpoint's inbound queue (default DefaultMailbox).
func WithMailbox(n int) MeshOption {
	return func(m *Mesh) { m.mailbox = n }
}

// WithRegistry instruments every endpoint's mailbox under reg
// (argus_transport_mailbox_drops_total / argus_transport_deliveries_total,
// labeled by endpoint address).
func WithRegistry(reg *obs.Registry) MeshOption {
	return func(m *Mesh) { m.reg = reg }
}

// NewMesh creates an empty in-memory segment.
func NewMesh(opts ...MeshOption) *Mesh {
	m := &Mesh{
		eps:     make(map[Addr]*MeshEndpoint),
		start:   time.Now(),
		mailbox: DefaultMailbox,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Join adds a node to the segment and returns its endpoint. Bind a handler
// before traffic flows.
func (m *Mesh) Join() *MeshEndpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		panic("transport: Join on closed Mesh")
	}
	addr := Addr(fmt.Sprintf("mem-%d", m.seq))
	m.seq++
	ep := &MeshEndpoint{
		mesh: m,
		addr: addr,
		mb:   newMailbox(m.mailbox),
	}
	ep.mb.instrument(m.reg, addr)
	m.eps[addr] = ep
	return ep
}

// Close shuts down every endpoint and waits for their actor loops to drain.
func (m *Mesh) Close() {
	m.mu.Lock()
	m.closed = true
	eps := make([]*MeshEndpoint, 0, len(m.eps))
	for _, ep := range m.eps {
		eps = append(eps, ep)
	}
	m.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

// lookup resolves a live peer endpoint.
func (m *Mesh) lookup(a Addr) (*MeshEndpoint, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ep, ok := m.eps[a]
	return ep, ok
}

// peers snapshots every endpoint except self.
func (m *Mesh) peers(self Addr) []*MeshEndpoint {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*MeshEndpoint, 0, len(m.eps)-1)
	for a, ep := range m.eps {
		if a != self {
			out = append(out, ep)
		}
	}
	return out
}

// MeshEndpoint is one node on a Mesh. It implements Endpoint.
type MeshEndpoint struct {
	mesh *Mesh
	addr Addr
	mb   *mailbox

	mu     sync.Mutex
	bound  bool
	closed bool
}

var _ Endpoint = (*MeshEndpoint)(nil)

// Addr implements Endpoint.
func (e *MeshEndpoint) Addr() Addr { return e.addr }

// Now implements Endpoint: monotonic wall time since the Mesh was created.
func (e *MeshEndpoint) Now() time.Duration { return time.Since(e.mesh.start) }

// Bind implements Endpoint: installs h and starts the actor loop.
func (e *MeshEndpoint) Bind(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bound || e.closed {
		panic("transport: MeshEndpoint.Bind twice or after Close")
	}
	e.bound = true
	go e.mb.run(h)
}

// Send implements Endpoint: enqueue into the peer's mailbox (shed with a
// counted drop when full; unknown peers are dropped silently, radio
// semantics).
func (e *MeshEndpoint) Send(to Addr, payload []byte) {
	if peer, ok := e.mesh.lookup(to); ok {
		peer.mb.enqueueMsg(e.addr, payload)
	}
}

// Broadcast implements Endpoint: every other endpoint on the segment
// receives the frame once. The payload buffer is shared across receivers —
// handlers treat it as read-only.
func (e *MeshEndpoint) Broadcast(payload []byte, ttl int) {
	if ttl < 1 {
		return
	}
	for _, peer := range e.mesh.peers(e.addr) {
		peer.mb.enqueueMsg(e.addr, payload)
	}
}

// After implements Endpoint: fn runs on the actor loop, never shed.
func (e *MeshEndpoint) After(d time.Duration, fn func()) { e.mb.after(d, fn) }

// Compute implements Endpoint: wall-clock transports charge no modeled cost —
// the real crypto already spent real time — so fn runs immediately on the
// caller's (loop) goroutine.
func (e *MeshEndpoint) Compute(cost time.Duration, fn func()) { fn() }

// Do implements Endpoint: the entry point for external goroutines.
func (e *MeshEndpoint) Do(fn func()) { e.mb.enqueueCtrl(fn) }

// Drops reports how many inbound frames this endpoint shed to backpressure.
func (e *MeshEndpoint) Drops() int64 { return e.mb.drops.Load() }

// Close implements Endpoint: detaches from the segment and stops the loop.
func (e *MeshEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	bound := e.bound
	e.mu.Unlock()

	e.mesh.mu.Lock()
	delete(e.mesh.eps, e.addr)
	e.mesh.mu.Unlock()

	e.mb.close()
	if bound {
		<-e.mb.loopDone
	}
	return nil
}
