package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"argus/internal/obs"
)

// DefaultMailbox is the inbound-frame bound used when a transport is built
// without an explicit size.
const DefaultMailbox = 1024

// mailboxBatch is how many frames the actor loop delivers before re-checking
// for control work. Without the cap, a flooded endpoint that grabbed its
// whole backlog (up to the mailbox bound) would sit on freshly-armed timers
// and Do closures for the entire drain; with it, control latency is bounded
// by one batch regardless of backlog depth, while the common case — a few
// frames per wake — still drains in a single lock round-trip.
const mailboxBatch = 64

// inbound is one delivered frame awaiting the handler.
type inbound struct {
	from    Addr
	payload []byte
}

// mailbox serializes everything that touches engine state onto one actor
// goroutine: inbound frames (bounded, shed under overload) and control work
// — timers and injected closures — which is never shed. Control drains
// before frames on every wake, so a flooded node still runs its
// session-expiry timers.
type mailbox struct {
	mu     sync.Mutex
	ctrl   []func()
	msgs   []inbound
	spare  []inbound // drained frame buffer recycled back under mu
	limit  int
	wake   chan struct{}
	closed bool

	drops     atomic.Int64
	delivered atomic.Int64
	dropC     *obs.Counter // optional, set before Bind
	deliverC  *obs.Counter

	loopDone chan struct{}
}

func newMailbox(limit int) *mailbox {
	if limit <= 0 {
		limit = DefaultMailbox
	}
	return &mailbox{
		limit:    limit,
		wake:     make(chan struct{}, 1),
		loopDone: make(chan struct{}),
	}
}

// instrument resolves the backpressure counters for one endpoint.
func (mb *mailbox) instrument(reg *obs.Registry, addr Addr) {
	if reg == nil {
		return
	}
	mb.dropC = reg.Counter(obs.MTransportMailboxDrops,
		"Inbound frames shed because an endpoint's bounded mailbox was full.",
		obs.L("addr", string(addr)))
	mb.deliverC = reg.Counter(obs.MTransportDeliveries,
		"Inbound frames handed to an endpoint's handler.",
		obs.L("addr", string(addr)))
}

func (mb *mailbox) signal() {
	select {
	case mb.wake <- struct{}{}:
	default:
	}
}

// enqueueCtrl queues control work (timer fire, Do closure). Control is
// unbounded: dropping a retransmission or GC timer would wedge the protocol
// in a way no real network can.
func (mb *mailbox) enqueueCtrl(fn func()) {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return
	}
	mb.ctrl = append(mb.ctrl, fn)
	mb.mu.Unlock()
	mb.signal()
}

// enqueueMsg queues an inbound frame, shedding it with a counted drop when
// the mailbox is at its bound.
func (mb *mailbox) enqueueMsg(from Addr, payload []byte) {
	mb.mu.Lock()
	if mb.closed || len(mb.msgs) >= mb.limit {
		closed := mb.closed
		mb.mu.Unlock()
		if !closed {
			mb.drops.Add(1)
			if mb.dropC != nil {
				mb.dropC.Inc()
			}
		}
		return
	}
	mb.msgs = append(mb.msgs, inbound{from: from, payload: payload})
	mb.mu.Unlock()
	mb.signal()
}

// close stops the loop once the queues drain. Idempotent.
func (mb *mailbox) close() {
	mb.mu.Lock()
	already := mb.closed
	mb.closed = true
	mb.mu.Unlock()
	if !already {
		mb.signal()
	}
}

// run is the actor loop: drain control, then frames in batches of
// mailboxBatch — re-checking for control work between batches, so the
// ctrl-before-frame contract holds against an arbitrarily deep frame backlog
// — then sleep until woken. The frame queue is double-buffered: the drained
// slice is recycled as the producers' next append target, so steady-state
// delivery allocates nothing. run is the only goroutine that ever calls h,
// preserving the engines' single-writer contract.
func (mb *mailbox) run(h Handler) {
	defer close(mb.loopDone)
	for {
		mb.mu.Lock()
		ctrl := mb.ctrl
		mb.ctrl = nil
		msgs := mb.msgs
		mb.msgs = mb.spare[:0]
		mb.spare = nil
		closed := mb.closed
		mb.mu.Unlock()

		for _, fn := range ctrl {
			fn()
		}
		for rest := msgs; len(rest) > 0; {
			n := len(rest)
			if n > mailboxBatch {
				n = mailboxBatch
			}
			mb.delivered.Add(int64(n))
			if mb.deliverC != nil {
				mb.deliverC.Add(int64(n))
			}
			for _, m := range rest[:n] {
				h.Handle(m.from, m.payload)
			}
			rest = rest[n:]
			if len(rest) == 0 {
				break
			}
			// Control enqueued while the batch ran (timer fires, Do
			// closures from the handlers themselves) jumps the remaining
			// backlog, exactly as if the loop had gone back to sleep.
			mb.mu.Lock()
			mid := mb.ctrl
			mb.ctrl = nil
			mb.mu.Unlock()
			for _, fn := range mid {
				fn()
			}
		}
		// Recycle the drained buffer; zero it first so it doesn't pin the
		// delivered payloads until its next fill.
		for i := range msgs {
			msgs[i] = inbound{}
		}
		mb.mu.Lock()
		if mb.spare == nil || cap(msgs) > cap(mb.spare) {
			mb.spare = msgs[:0]
		}
		mb.mu.Unlock()
		if len(ctrl) == 0 && len(msgs) == 0 {
			if closed {
				return
			}
			<-mb.wake
		}
	}
}

// after arms a wall-clock timer whose callback runs on the actor loop.
func (mb *mailbox) after(d time.Duration, fn func()) {
	if d <= 0 {
		mb.enqueueCtrl(fn)
		return
	}
	time.AfterFunc(d, func() { mb.enqueueCtrl(fn) })
}
