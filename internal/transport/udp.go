package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"argus/internal/obs"
)

// UDPConfig describes one node's socket and its broadcast set.
type UDPConfig struct {
	// Listen is the local UDP address to bind, e.g. "127.0.0.1:0".
	Listen string
	// Peers is the broadcast fan-out set (host:port). Argus discovery is
	// proximity-scoped; on IP networks the "radio range" is this configured
	// neighbor list, and Broadcast is emulated as one unicast datagram per
	// peer. Unicast replies (Send) are not restricted to this list — any
	// address a frame arrived from can be answered.
	Peers []string
	// Mailbox bounds the inbound queue (default DefaultMailbox).
	Mailbox int
	// MaxFrame is the largest accepted datagram (default 64 KiB - 1).
	MaxFrame int
	// Registry, when set, instruments the mailbox backpressure counters.
	Registry *obs.Registry
}

// UDPEndpoint runs the Endpoint contract over one real UDP socket. Frames on
// the wire are the protocol bytes verbatim — no transport framing is added,
// so an eavesdropper sees exactly the message shapes the Case 7
// indistinguishability analysis reasons about.
//
// The socket doubles as the node identity: all sends leave from the same
// port the node listens on, so a receiver's packet source address is the
// peer's canonical Addr.
type UDPEndpoint struct {
	conn  *net.UDPConn
	addr  Addr
	mb    *mailbox
	start time.Time
	max   int

	mu     sync.Mutex
	peers  []*net.UDPAddr
	dst    map[Addr]*net.UDPAddr // resolved unicast destinations
	bound  bool
	closed bool
}

var _ Endpoint = (*UDPEndpoint)(nil)

// ListenUDP binds the socket and resolves the peer set. Bind a handler to
// start delivery.
func ListenUDP(cfg UDPConfig) (*UDPEndpoint, error) {
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen addr %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	ep := &UDPEndpoint{
		conn:  conn,
		addr:  Addr(conn.LocalAddr().String()),
		mb:    newMailbox(cfg.Mailbox),
		start: time.Now(),
		max:   cfg.MaxFrame,
		dst:   make(map[Addr]*net.UDPAddr),
	}
	if ep.max <= 0 {
		ep.max = 64<<10 - 1
	}
	for _, p := range cfg.Peers {
		ua, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: peer %q: %w", p, err)
		}
		ep.peers = append(ep.peers, ua)
	}
	ep.mb.instrument(cfg.Registry, ep.addr)
	return ep, nil
}

// AddPeer appends one address to the broadcast fan-out set after the socket
// is bound — ports chosen by the OS (":0") are only knowable once every
// participant is listening, so mutual peer sets need a second pass.
func (e *UDPEndpoint) AddPeer(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: peer %q: %w", addr, err)
	}
	e.mu.Lock()
	e.peers = append(e.peers, ua)
	e.mu.Unlock()
	return nil
}

// Addr implements Endpoint: the bound socket's host:port.
func (e *UDPEndpoint) Addr() Addr { return e.addr }

// Now implements Endpoint: monotonic wall time since the socket was bound.
func (e *UDPEndpoint) Now() time.Duration { return time.Since(e.start) }

// Bind implements Endpoint: starts the read loop and the actor loop.
func (e *UDPEndpoint) Bind(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bound || e.closed {
		panic("transport: UDPEndpoint.Bind twice or after Close")
	}
	e.bound = true
	go e.mb.run(h)
	go e.readLoop()
}

// readLoop copies each datagram into a fresh buffer and enqueues it; it
// exits when Close shuts the socket down.
func (e *UDPEndpoint) readLoop() {
	buf := make([]byte, e.max)
	for {
		n, src, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		e.mb.enqueueMsg(Addr(src.String()), payload)
	}
}

// resolve caches the destination lookup for an Addr.
func (e *UDPEndpoint) resolve(to Addr) *net.UDPAddr {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ua, ok := e.dst[to]; ok {
		return ua
	}
	ua, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return nil
	}
	e.dst[to] = ua
	return ua
}

// Send implements Endpoint: one datagram, best-effort (radio semantics —
// resolution or write failures drop the frame silently).
func (e *UDPEndpoint) Send(to Addr, payload []byte) {
	if ua := e.resolve(to); ua != nil {
		e.conn.WriteToUDP(payload, ua)
	}
}

// Broadcast implements Endpoint: one datagram per configured peer. Any
// ttl >= 1 reaches the whole neighbor list (a single IP segment is one hop).
func (e *UDPEndpoint) Broadcast(payload []byte, ttl int) {
	if ttl < 1 {
		return
	}
	e.mu.Lock()
	peers := append([]*net.UDPAddr(nil), e.peers...)
	e.mu.Unlock()
	for _, ua := range peers {
		e.conn.WriteToUDP(payload, ua)
	}
}

// After implements Endpoint: fn runs on the actor loop, never shed.
func (e *UDPEndpoint) After(d time.Duration, fn func()) { e.mb.after(d, fn) }

// Compute implements Endpoint: no modeled cost on real hardware; fn runs
// immediately on the caller's (loop) goroutine.
func (e *UDPEndpoint) Compute(cost time.Duration, fn func()) { fn() }

// Do implements Endpoint: the entry point for external goroutines.
func (e *UDPEndpoint) Do(fn func()) { e.mb.enqueueCtrl(fn) }

// Drops reports how many inbound frames this endpoint shed to backpressure.
func (e *UDPEndpoint) Drops() int64 { return e.mb.drops.Load() }

// Close implements Endpoint: shuts the socket, stops both loops.
func (e *UDPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	bound := e.bound
	e.mu.Unlock()

	err := e.conn.Close()
	e.mb.close()
	if bound {
		<-e.mb.loopDone
	}
	return err
}
