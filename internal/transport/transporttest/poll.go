// Package transporttest provides deadline-polling helpers for code that
// waits on real-clock transports (transport.Mesh, transport.UDP).
//
// Tolerance policy: tests and binaries built on wall-clock transports must
// never encode a fixed sleep as a correctness assumption — a loaded CI
// worker can stretch any "plenty of time" constant until it flakes, and an
// idle workstation wastes the rest of it. Instead, waits are expressed as a
// condition polled on a short step until a generous deadline:
//
//   - the step (default 2 ms) bounds how stale a positive answer can be, so
//     a met condition is observed almost immediately;
//   - the deadline (callers typically pass 5–30 s, far beyond any expected
//     completion) is only ever hit on genuine failure, so its size adds no
//     latency to passing runs.
//
// The helpers are dependency-free (no testing import) so non-test binaries
// such as cmd/argus-node and the internal/load driver can share the exact
// polling discipline the conformance tests are held to.
package transporttest

import "time"

// DefaultStep is the polling interval used when step <= 0: short enough
// that a satisfied condition is seen within a couple of milliseconds, long
// enough not to burn a CPU core while waiting.
const DefaultStep = 2 * time.Millisecond

// Poll invokes cond every step until it returns true or timeout elapses,
// and reports whether the condition was met. cond is always evaluated at
// least once, so a zero timeout degenerates to a single check.
func Poll(timeout, step time.Duration, cond func() bool) bool {
	if step <= 0 {
		step = DefaultStep
	}
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(step)
	}
}

// Failer is the slice of testing.TB the helpers need; keeping it an
// interface avoids linking package testing into non-test binaries.
type Failer interface {
	Helper()
	Fatalf(format string, args ...any)
}

// WaitUntil polls cond on DefaultStep until the deadline and fails the test
// if it is never met. what names the awaited condition in the failure
// message.
func WaitUntil(t Failer, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	if !Poll(timeout, DefaultStep, cond) {
		t.Fatalf("timed out after %v waiting for %s", timeout, what)
	}
}
