package transport_test

// Conformance suite for the transport.Endpoint contract. Every transport —
// the deterministic simulator adapter, the concurrent in-memory Mesh, and
// real UDP sockets — must deliver the same observable semantics to the
// protocol engines: verbatim payloads with truthful source addresses,
// TTL-gated broadcast, monotone clocks, timers and Do closures serialized
// onto the endpoint's event loop. The engines are transport-generic exactly
// to the extent this suite proves.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"argus/internal/netsim"
	"argus/internal/transport"
	"argus/internal/transport/transporttest"
)

// fixture builds n endpoints that can all reach each other in one hop.
// settle drives deliveries on transports that need an external pump (the
// simulator); on concurrent transports it is a no-op and tests poll.
type fixture struct {
	name string
	// concurrent marks transports whose Do may be called from any goroutine.
	// The simulator's Do runs inline by contract — the single goroutine
	// driving Network.Run owns the loop — so it is exempt from the
	// multi-goroutine injection test.
	concurrent bool
	build      func(t *testing.T, n int) (eps []transport.Endpoint, settle func())
}

func fixtures() []fixture {
	return []fixture{
		{name: "netsim", build: func(t *testing.T, n int) ([]transport.Endpoint, func()) {
			net := netsim.New(netsim.DefaultWiFi(), 1)
			eps := make([]transport.Endpoint, n)
			for i := range eps {
				eps[i] = net.NewEndpoint()
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					net.Link(eps[i].(*netsim.SimEndpoint).Node(), eps[j].(*netsim.SimEndpoint).Node())
				}
			}
			return eps, func() { net.Run(0) }
		}},
		{name: "mesh", concurrent: true, build: func(t *testing.T, n int) ([]transport.Endpoint, func()) {
			m := transport.NewMesh()
			t.Cleanup(m.Close)
			eps := make([]transport.Endpoint, n)
			for i := range eps {
				eps[i] = m.Join()
			}
			return eps, func() {}
		}},
		{name: "udp", concurrent: true, build: func(t *testing.T, n int) ([]transport.Endpoint, func()) {
			uds := make([]*transport.UDPEndpoint, n)
			for i := range uds {
				ep, err := transport.ListenUDP(transport.UDPConfig{Listen: "127.0.0.1:0"})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { ep.Close() })
				uds[i] = ep
			}
			eps := make([]transport.Endpoint, n)
			for i, ep := range uds {
				for j, peer := range uds {
					if i != j {
						if err := ep.AddPeer(string(peer.Addr())); err != nil {
							t.Fatal(err)
						}
					}
				}
				eps[i] = ep
			}
			return eps, func() {}
		}},
	}
}

// recorder is a Handler capturing every frame, safe to read concurrently.
type recorder struct {
	mu  sync.Mutex
	got []frame
}

type frame struct {
	from    transport.Addr
	payload []byte
}

func (r *recorder) Handle(from transport.Addr, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.got = append(r.got, frame{from, append([]byte(nil), payload...)})
}

func (r *recorder) frames() []frame {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]frame(nil), r.got...)
}

// waitFor pumps settle until cond holds or the deadline passes. Deadline
// and step policy live in transporttest so every real-clock transport test
// tolerates slow CI machines the same way.
func waitFor(t *testing.T, settle func(), cond func() bool, what string) {
	t.Helper()
	transporttest.WaitUntil(t, 10*time.Second, func() bool {
		settle()
		return cond()
	}, what)
}

func TestConformanceUnicastVerbatim(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			eps, settle := fx.build(t, 2)
			rec := &recorder{}
			eps[1].Bind(rec)
			eps[0].Bind(&recorder{})

			// The payload must arrive byte-for-byte — the Case 7 wire analysis
			// assumes no transport reframing — with the sender's true address.
			payload := []byte{0x01, 0x80, 0x00, 0xFF, 0x7F, 0x55}
			eps[0].Send(eps[1].Addr(), payload)
			waitFor(t, settle, func() bool { return len(rec.frames()) >= 1 }, "unicast delivery")
			got := rec.frames()[0]
			if !bytes.Equal(got.payload, payload) {
				t.Fatalf("payload corrupted: got % x want % x", got.payload, payload)
			}
			if got.from != eps[0].Addr() {
				t.Fatalf("source address %q, want %q", got.from, eps[0].Addr())
			}
		})
	}
}

func TestConformanceBroadcastScope(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			const n = 4
			eps, settle := fx.build(t, n)
			recs := make([]*recorder, n)
			for i := range eps {
				recs[i] = &recorder{}
				eps[i].Bind(recs[i])
			}

			// ttl < 1 sends nothing; the marker broadcast that follows proves
			// the silence is scoping, not latency.
			dead := []byte("dead")
			marker := []byte("marker")
			eps[0].Broadcast(dead, 0)
			eps[0].Broadcast(marker, 1)

			for i := 1; i < n; i++ {
				i := i
				waitFor(t, settle, func() bool { return len(recs[i].frames()) >= 1 },
					fmt.Sprintf("broadcast to peer %d", i))
			}
			for i := 1; i < n; i++ {
				for _, f := range recs[i].frames() {
					if bytes.Equal(f.payload, dead) {
						t.Fatalf("peer %d received a ttl<1 broadcast", i)
					}
				}
				seen := 0
				for _, f := range recs[i].frames() {
					if bytes.Equal(f.payload, marker) {
						seen++
						if f.from != eps[0].Addr() {
							t.Fatalf("broadcast source %q, want %q", f.from, eps[0].Addr())
						}
					}
				}
				if seen != 1 {
					t.Fatalf("peer %d saw the broadcast %d times, want exactly once", i, seen)
				}
			}
			// The sender never hears its own broadcast.
			if got := recs[0].frames(); len(got) != 0 {
				t.Fatalf("sender received its own broadcast: %v", got)
			}
		})
	}
}

func TestConformanceClockAndTimers(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			eps, settle := fx.build(t, 1)
			ep := eps[0]
			ep.Bind(&recorder{})

			before := ep.Now()
			var mu sync.Mutex
			var firedAt time.Duration
			fired := false
			ep.After(5*time.Millisecond, func() {
				mu.Lock()
				firedAt = ep.Now()
				fired = true
				mu.Unlock()
			})
			waitFor(t, settle, func() bool {
				mu.Lock()
				defer mu.Unlock()
				return fired
			}, "timer fire")

			mu.Lock()
			at := firedAt
			mu.Unlock()
			// The clock never runs backwards, and a timer never fires early.
			if at < before {
				t.Fatalf("clock went backwards: Now()=%v before scheduling, %v at fire", before, at)
			}
			if at-before < 5*time.Millisecond {
				t.Fatalf("timer fired after %v, scheduled for 5ms", at-before)
			}
			if now := ep.Now(); now < at {
				t.Fatalf("clock not monotone: %v after fire at %v", now, at)
			}
		})
	}
}

// TestConformanceLoopSerialization is the single-writer guarantee the engines
// are built on: Do closures, Compute continuations and deliveries all run on
// one logical event loop, so unsynchronized state they share never races.
// Under -race this test fails loudly if any transport breaks the contract.
func TestConformanceLoopSerialization(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			eps, settle := fx.build(t, 2)
			counter := 0 // deliberately unsynchronized: the loop is the lock
			rec := transport.HandlerFunc(func(from transport.Addr, payload []byte) {
				counter++
			})
			eps[1].Bind(rec)
			eps[0].Bind(&recorder{})

			const workers, perWorker = 8, 25
			if fx.concurrent {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < perWorker; i++ {
							eps[1].Do(func() { counter++ })
						}
					}()
				}
				wg.Wait()
			} else {
				// Single-threaded transport: the test goroutine owns the loop.
				for i := 0; i < workers*perWorker; i++ {
					eps[1].Do(func() { counter++ })
				}
			}
			eps[0].Send(eps[1].Addr(), []byte("frame"))
			eps[1].Do(func() { eps[1].Compute(time.Microsecond, func() { counter++ }) })

			want := workers*perWorker + 2
			read := func() (v int) {
				done := make(chan struct{})
				eps[1].Do(func() { v = counter; close(done) })
				settle()
				<-done
				return v
			}
			waitFor(t, settle, func() bool { return read() == want }, "serialized counter")
		})
	}
}
