// Package transport is the seam between the Argus protocol engines and
// whatever carries their frames. The paper positions the design "above the
// network layer and orthogonal to radios" (§IX); this package is that
// statement made executable: internal/core speaks only the small Endpoint
// interface below, and the ground network behind it is interchangeable —
//
//   - the deterministic discrete-event simulator (internal/netsim, via its
//     adapter), where fixed-seed runs replay byte-identically;
//   - Mesh, a concurrent channel-based in-memory transport on the wall
//     clock (one actor goroutine per node, bounded mailboxes);
//   - UDP, real sockets with peer-list broadcast emulation, so two OS
//     processes can complete a full L1/L2/L3 discovery (cmd/argus-node).
//
// # Actor/mailbox concurrency contract
//
// The engines are single-writer by design (see internal/core): all protocol
// state is mutated without locks, on one logical event loop. The simulator
// provides that loop for free. Real transports receive frames and fire
// timers from many goroutines, so every concurrent Endpoint owns a mailbox
// and a single actor goroutine that drains it; Handler invocations, After
// callbacks and Do closures all execute on that one goroutine, restoring the
// single-writer guarantee without adding locks to the engines.
//
// Mailboxes are bounded for inbound frames: a flooded slow node sheds load
// with a counted drop (argus_transport_mailbox_drops_total) instead of
// deadlocking or growing without bound — exactly what a saturated radio
// would do. Control work (timers, Do) is never shed, so retransmission and
// session-expiry timers survive overload and session tables still converge.
package transport

import "time"

// Addr is a transport-neutral node address. It is comparable (engines key
// session tables by it) and human-readable: the netsim adapter uses the
// decimal node ID, Mesh uses "mem-N", UDP uses the socket's host:port.
type Addr string

// Handler consumes inbound frames. Implementations are invoked on the
// endpoint's event loop — never concurrently — and must treat payload as
// read-only (broadcasts may share one buffer across receivers).
type Handler interface {
	Handle(from Addr, payload []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from Addr, payload []byte)

// Handle implements Handler.
func (f HandlerFunc) Handle(from Addr, payload []byte) { f(from, payload) }

// Endpoint is one node's port into a transport — everything the protocol
// engines need from a network: send/broadcast with a hop TTL, timers, a
// clock, a local address, and a way onto the node's event loop.
//
// Send, Broadcast, After, Compute and Now are safe from the event loop;
// external goroutines must enter through Do. Delivery is best-effort
// (radio semantics): frames may be lost, and unreachable destinations are
// dropped silently.
type Endpoint interface {
	// Addr returns the endpoint's own address, as peers will see it.
	Addr() Addr

	// Now returns the transport clock: virtual time on the simulator,
	// monotonic wall time since transport start on real transports.
	Now() time.Duration

	// Send unicasts payload to a peer address.
	Send(to Addr, payload []byte)

	// Broadcast floods payload to every node within ttl hops; ttl < 1 sends
	// nothing. Single-segment transports (Mesh, UDP) reach all peers at any
	// ttl >= 1.
	Broadcast(payload []byte, ttl int)

	// After schedules fn on the event loop at Now()+d. Timer callbacks are
	// control work: they are never shed by mailbox backpressure.
	After(d time.Duration, fn func())

	// Compute runs fn on the event loop after charging cost of modeled CPU
	// time. Only virtual-clock transports charge the cost (the simulator
	// serializes it per node); wall-clock transports run fn immediately —
	// the real crypto already spent real time.
	Compute(cost time.Duration, fn func())

	// Do injects fn onto the event loop, serialized with deliveries and
	// timers. This is the only safe entry point for external goroutines
	// (e.g. starting a discovery round on a live Mesh or UDP node). On the
	// simulator fn runs inline, because the caller owns the loop between
	// Run calls. Do is asynchronous on concurrent transports.
	Do(fn func())

	// Bind installs the inbound handler and starts delivery. Traffic
	// arriving before Bind is dropped. Bind once, before any frame flows.
	Bind(h Handler)

	// Close releases the endpoint's resources and stops its event loop.
	Close() error
}
