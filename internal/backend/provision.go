package backend

import (
	"fmt"
	"sort"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/groups"
	"argus/internal/suite"
)

// SubjectProvision is everything a subject device leaves bootstrapping with
// (§IV-A): private key, CERT, signed attribute PROF, the admin public key,
// and her secret-group memberships (at least a cover-up key, §VI-B).
type SubjectProvision struct {
	ID          cert.ID
	Name        string
	Strength    suite.Strength
	Key         *suite.SigningKey
	CertDER     []byte
	CACert      []byte
	AdminPub    suite.PublicKey
	Profile     *cert.Profile
	Memberships []groups.Membership
}

// ObjectVariant is one PROF variant held by a Level 2/3 object: either a
// predicate-selected Level 2 variant ({pred_i, PROF_{O,i}}) or a secret-group
// Level 3 variant ({K_i^grp, PROF_{O,i}}), per §IV-A.
type ObjectVariant struct {
	// Pred selects Level 2 subjects by non-sensitive attributes (nil for
	// Level 3 variants).
	Pred *attr.Predicate
	// Group and GroupKey identify the secret group served (zero for Level 2
	// variants).
	Group      groups.ID
	GroupKey   []byte
	KeyVersion uint64
	// Profile is the admin-signed PROF variant, padded so that all variants
	// of one object encode to the same length (§VI-B constant RES2 length).
	Profile *cert.Profile
}

// IsCovert reports whether the variant serves a secret group.
func (v ObjectVariant) IsCovert() bool { return v.Group != 0 }

// ObjectProvision is everything an object leaves bootstrapping with.
type ObjectProvision struct {
	ID       cert.ID
	Name     string
	Strength suite.Strength
	Level    Level
	Key      *suite.SigningKey
	CertDER  []byte
	CACert   []byte
	AdminPub suite.PublicKey
	// PublicProfile is the plaintext signed PROF broadcast by Level 1
	// objects; nil for Level 2/3.
	PublicProfile *cert.Profile
	// Variants are the Level 2 predicate variants followed by the Level 3
	// group variants; empty for Level 1. Order is deterministic: Level 2
	// variants by policy ID, then group variants by group ID.
	Variants []ObjectVariant
	// Revoked is the object's current subject blacklist.
	Revoked []cert.ID
}

// ProvisionSubject assembles a subject's credential bundle. Call again after
// churn to refresh (re-keyed groups, new attributes).
func (b *Backend) ProvisionSubject(id cert.ID) (*SubjectProvision, error) {
	s, err := b.Subject(id)
	if err != nil {
		return nil, err
	}
	if s.Revoked {
		return nil, fmt.Errorf("%w: subject %s", ErrRevoked, s.Name)
	}
	issued, expires := b.profValidity()
	prof := &cert.Profile{
		Kind:    cert.RoleSubject,
		Entity:  id,
		Serial:  1,
		Issued:  issued,
		Expires: expires,
		Attrs:   s.Attrs.Clone(),
	}
	if err := prof.PadNoteTo(b.profSizes); err != nil {
		return nil, err
	}
	if err := b.admin.SignProfile(prof); err != nil {
		return nil, err
	}
	ms, err := b.Groups.MembershipsFor(id, cert.RoleSubject)
	if err != nil {
		return nil, err
	}
	return &SubjectProvision{
		ID:          id,
		Name:        s.Name,
		Strength:    b.strength,
		Key:         b.keys[id],
		CertDER:     b.certs[id],
		CACert:      b.CACert(),
		AdminPub:    b.AdminPublic(),
		Profile:     prof,
		Memberships: ms,
	}, nil
}

// ProvisionObject assembles an object's credential bundle, compiling its PROF
// variants from the current policy database:
//
//   - Level 1: one public signed PROF.
//   - Level 2: one variant per policy governing the object.
//   - Level 3: Level 2 variants (its public face) plus one variant per secret
//     group it serves.
//
// All variants are padded to a common length so Level 2 and Level 3 RES2
// ciphertexts are indistinguishable by size (§VI-B).
func (b *Backend) ProvisionObject(id cert.ID) (*ObjectProvision, error) {
	o, err := b.Object(id)
	if err != nil {
		return nil, err
	}
	issued, expires := b.profValidity()
	base := func(variant uint32, functions []string, note string) *cert.Profile {
		return &cert.Profile{
			Kind:      cert.RoleObject,
			Entity:    id,
			Variant:   variant,
			Serial:    1,
			Issued:    issued,
			Expires:   expires,
			Attrs:     o.Attrs.Clone(),
			Functions: append([]string(nil), functions...),
			Note:      note,
		}
	}

	p := &ObjectProvision{
		ID:       id,
		Name:     o.Name,
		Strength: b.strength,
		Level:    o.Level,
		Key:      b.keys[id],
		CertDER:  b.certs[id],
		CACert:   b.CACert(),
		AdminPub: b.AdminPublic(),
	}
	revoked, err := b.RevokedFor(id)
	if err != nil {
		return nil, err
	}
	p.Revoked = revoked

	if o.Level == L1 {
		prof := base(0, o.Functions, "public service")
		if err := prof.PadNoteTo(b.profSizes); err != nil {
			return nil, err
		}
		if err := b.admin.SignProfile(prof); err != nil {
			return nil, err
		}
		p.PublicProfile = prof
		return p, nil
	}

	// Level 2 variants: one per governing policy, ordered by policy ID.
	var variant uint32
	for _, pol := range b.Policies() {
		if !pol.Object.Eval(o.Attrs) {
			continue
		}
		variant++
		prof := base(variant, pol.Rights, "differentiated service")
		p.Variants = append(p.Variants, ObjectVariant{Pred: pol.Subject, Profile: prof})
	}

	// Level 3 group variants, ordered by group ID.
	if o.Level == L3 {
		gids := make([]groups.ID, 0, len(o.covert))
		for gid := range o.covert {
			gids = append(gids, gid)
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
		for _, gid := range gids {
			ms, err := b.Groups.MembershipsFor(id, cert.RoleObject)
			if err != nil {
				return nil, err
			}
			var key []byte
			var kv uint64
			for _, m := range ms {
				if m.Group == gid {
					key, kv = m.Key, m.KeyVersion
					break
				}
			}
			if key == nil {
				return nil, fmt.Errorf("%w: object %s lost membership of group %d", ErrCorruptState, o.Name, gid)
			}
			variant++
			prof := base(variant, o.covert[gid], "covert service")
			p.Variants = append(p.Variants, ObjectVariant{
				Group: gid, GroupKey: key, KeyVersion: kv, Profile: prof,
			})
		}
	}

	// Pad every variant to the object's maximum encoded size (at least the
	// deployment default) so all RES2 ciphertexts have one length. The
	// admin signature added afterwards has a fixed width, so padding the
	// unsigned bodies to one size is sufficient.
	target := b.profSizes
	for _, v := range p.Variants {
		if n := v.Profile.EncodedLen(); n > target {
			target = n
		}
	}
	for _, v := range p.Variants {
		if err := v.Profile.PadNoteTo(target); err != nil {
			return nil, err
		}
		if err := b.admin.SignProfile(v.Profile); err != nil {
			return nil, err
		}
	}
	return p, nil
}
