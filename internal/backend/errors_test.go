package backend

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/suite"
)

// TestTypedErrors pins every failure class to its sentinel (errors.Is — the
// contract the HTTP status mapping in internal/backendsvc depends on) and to
// its message prefix (so operator logs stay stable).
func TestTypedErrors(t *testing.T) {
	b, err := New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	sid, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := b.RegisterObject("kiosk", L3, attr.MustSet("type=kiosk"), []string{"use"})
	if err != nil {
		t.Fatal(err)
	}
	pid, _, err := b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='kiosk'"), []string{"use"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RemovePolicy(pid); err != nil {
		t.Fatal(err)
	}
	revoked, _, err := b.RegisterSubject("mallory", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RevokeSubject(revoked); err != nil {
		t.Fatal(err)
	}
	ghost := cert.IDFromName("nobody")

	cases := []struct {
		name     string
		op       func() error
		sentinel error
		msg      string // required substring, pinned
	}{
		{"unknown subject", func() error { _, err := b.Subject(ghost); return err },
			ErrNotFound, "backend: not found: subject"},
		{"unknown object", func() error { _, err := b.Object(ghost); return err },
			ErrNotFound, "backend: not found: object"},
		{"unknown policy", func() error { _, err := b.RemovePolicy(9999); return err },
			ErrNotFound, "backend: not found: policy 9999"},
		{"duplicate subject", func() error { _, _, err := b.RegisterSubject("alice", attr.Set{}); return err },
			ErrDuplicate, `backend: already registered: "alice"`},
		{"duplicate batch", func() error {
			_, err := b.RegisterSubjects([]SubjectSpec{{Name: "alice"}}, 1)
			return err
		}, ErrDuplicate, `backend: already registered: "alice"`},
		{"invalid level", func() error { _, _, err := b.RegisterObject("x", Level(9), attr.Set{}, nil); return err },
			ErrInvalidLevel, "backend: invalid level: 9"},
		{"invalid batch level", func() error {
			_, err := b.RegisterObjects([]ObjectSpec{{Name: "x", Level: Level(0)}}, 1)
			return err
		}, ErrInvalidLevel, "backend: invalid level: 0"},
		{"bad predicate", func() error { _, _, err := b.AddPolicy(nil, nil, nil); return err },
			ErrBadPredicate, "backend: bad predicate: policy predicates required"},
		{"revoke twice", func() error { _, err := b.RevokeSubject(revoked); return err },
			ErrRevoked, "already revoked"},
		{"provision revoked", func() error { _, err := b.ProvisionSubject(revoked); return err },
			ErrRevoked, "backend: revoked: subject"},
		{"update revoked attrs", func() error { _, err := b.UpdateSubjectAttrs(revoked, attr.Set{}); return err },
			ErrRevoked, "backend: revoked: subject"},
		{"covert on unknown", func() error { return b.AddCovertService(ghost, 1, nil) },
			ErrNotFound, "backend: not found: object"},
		{"covert on non-L3", func() error {
			id, _, err := b.RegisterObject("printer", L2, attr.MustSet("type=printer"), nil)
			if err != nil {
				return err
			}
			return b.AddCovertService(id, 1, nil)
		}, ErrNotCovert, "backend: not a covert object: printer is Level 2, not Level 3"},
		{"remove unknown object", func() error { _, err := b.RemoveObject(ghost); return err },
			ErrNotFound, "backend: not found: object"},
		{"corrupt snapshot", func() error { _, err := Restore([]byte{0xFF}); return err },
			ErrCorruptState, "backend: corrupt state: unsupported snapshot version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.op()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Errorf("message %q missing pinned substring %q", err, tc.msg)
			}
		})
	}
	_ = sid
	_ = oid
	_ = fmt.Sprint() // keep fmt imported if cases change
}

func TestOptionsClockAndTelemetryShards(t *testing.T) {
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	b, err := New(suite.S128, WithClock(func() time.Time { return fixed }), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if b.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", b.Shards())
	}
	sid, _, err := b.RegisterSubject("clocked", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := b.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Profile.Issued.Equal(fixed.Truncate(time.Second)) {
		t.Fatalf("profile issued %v, want fixed clock %v", p1.Profile.Issued, fixed)
	}
	// Re-provisioning under a fixed clock pins the validity window (the PROF
	// signature itself is randomized ECDSA, so bytes legitimately differ).
	p2, err := b.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Profile.Issued.Equal(p2.Profile.Issued) || !p1.Profile.Expires.Equal(p2.Profile.Expires) {
		t.Fatal("fixed-clock reprovision drifted the validity window")
	}
	// ShardOf is stable and in range.
	for i := 0; i < 64; i++ {
		id := cert.IDFromName(fmt.Sprintf("entity-%d", i))
		s := b.ShardOf(id)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf out of range: %d", s)
		}
		if s != b.ShardOf(id) {
			t.Fatal("ShardOf unstable")
		}
	}
}

// TestShardedProvisionMatchesSerial proves the per-shard pools produce the
// same bundles (modulo nothing: state is read-only during provisioning) as
// the flat sequential path.
func TestShardedProvisionMatchesSerial(t *testing.T) {
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	b, err := New(suite.S128, WithClock(func() time.Time { return fixed }), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"), []string{"use"}); err != nil {
		t.Fatal(err)
	}
	specs := make([]ObjectSpec, 24)
	for i := range specs {
		specs[i] = ObjectSpec{
			Name:      fmt.Sprintf("dev-%d", i),
			Level:     L2,
			Attrs:     attr.MustSet("type=device"),
			Functions: []string{"use"},
		}
	}
	ids, err := b.RegisterObjects(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := b.ProvisionObjects(ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		serial, err := b.ProvisionObject(id)
		if err != nil {
			t.Fatal(err)
		}
		p := parallel[i]
		if p.ID != serial.ID || p.Name != serial.Name || p.Level != serial.Level ||
			len(p.Variants) != len(serial.Variants) || len(p.Revoked) != len(serial.Revoked) {
			t.Fatalf("object %d: sharded bundle differs from serial: %+v vs %+v", i, p, serial)
		}
		for j := range p.Variants {
			if !p.Variants[j].Profile.Issued.Equal(serial.Variants[j].Profile.Issued) {
				t.Fatalf("object %d variant %d: issued time drift", i, j)
			}
		}
	}
}
