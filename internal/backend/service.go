package backend

import (
	"context"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/groups"
	"argus/internal/suite"
)

// TrustAnchor is the public bootstrap material a device needs before it can
// verify anything: the ROOT CA certificate, the admin's public signing key,
// and the deployment strength. It contains no secrets and is served
// unauthenticated tenant-scoped by the backend service.
type TrustAnchor struct {
	Strength suite.Strength
	CACert   []byte // ROOT trust-anchor certificate, DER
	AdminPub []byte // admin public signing key, marshaled point
}

// PublicKey decodes the admin key.
func (t TrustAnchor) PublicKey() (suite.PublicKey, error) {
	return suite.PublicKeyFromBytes(t.Strength, t.AdminPub)
}

// Service is the transport-agnostic backend API: everything cmd/argus-node,
// the load harness and the HTTP layer need from an enterprise backend,
// whether it lives in-process (Local) or across the network
// (internal/backendclient). Every method takes a Context first — churn RPCs
// honor cancellation and deadlines over the wire; the in-process adapter
// ignores the context, costing one word per call.
//
// Errors wrap the package sentinels (ErrNotFound, ErrDuplicate, ErrRevoked,
// ErrBadPredicate, ErrInvalidLevel, ErrNotCovert), checked with errors.Is on
// both sides of the wire.
type Service interface {
	// TrustAnchor returns the tenant's bootstrap material.
	TrustAnchor(ctx context.Context) (TrustAnchor, error)

	// RegisterSubject registers a subject and issues her credentials.
	RegisterSubject(ctx context.Context, name string, attrs attr.Set) (cert.ID, UpdateReport, error)
	// RegisterObject registers an object at the given visibility level.
	RegisterObject(ctx context.Context, name string, level Level, attrs attr.Set, functions []string) (cert.ID, UpdateReport, error)

	// ProvisionSubject assembles a subject's credential bundle.
	ProvisionSubject(ctx context.Context, id cert.ID) (*SubjectProvision, error)
	// ProvisionObject assembles an object's credential bundle.
	ProvisionObject(ctx context.Context, id cert.ID) (*ObjectProvision, error)

	// AddPolicy installs a Level 2 policy.
	AddPolicy(ctx context.Context, subjectPred, objectPred *attr.Predicate, rights []string) (uint64, UpdateReport, error)
	// RemovePolicy deletes a policy.
	RemovePolicy(ctx context.Context, id uint64) (UpdateReport, error)

	// RevokeSubject removes a subject (blacklists + group re-key).
	RevokeSubject(ctx context.Context, id cert.ID) (UpdateReport, error)
	// UpdateSubjectAttrs rotates a subject's non-sensitive attributes.
	UpdateSubjectAttrs(ctx context.Context, id cert.ID, attrs attr.Set) (UpdateReport, error)

	// CreateGroup registers a new secret group.
	CreateGroup(ctx context.Context, description string) (groups.ID, error)
	// AddSubjectToGroup makes the subject a fellow of the group.
	AddSubjectToGroup(ctx context.Context, subject cert.ID, gid groups.ID) error
	// AddCovertService puts a Level 3 object into a secret group with the
	// covert functions it offers that group's fellows.
	AddCovertService(ctx context.Context, object cert.ID, gid groups.ID, functions []string) error

	// StateFingerprint digests the full backend state (see
	// Backend.StateFingerprint); byte-identical iff the states are.
	StateFingerprint(ctx context.Context) (string, error)
}

// Local adapts an in-process *Backend to the Service interface. The context
// is ignored: every operation is a handful of map touches and signatures,
// and the snapshot-file deployments that use Local have no transport to
// cancel.
type Local struct{ b *Backend }

// NewLocal wraps b as a Service.
func NewLocal(b *Backend) Local { return Local{b: b} }

// Backend returns the wrapped backend (for deployments that still need the
// concrete admin, e.g. to run an update.Distributor).
func (l Local) Backend() *Backend { return l.b }

func (l Local) TrustAnchor(context.Context) (TrustAnchor, error) {
	return TrustAnchor{
		Strength: l.b.Strength(),
		CACert:   l.b.CACert(),
		AdminPub: l.b.AdminPublic().Bytes(),
	}, nil
}

func (l Local) RegisterSubject(_ context.Context, name string, attrs attr.Set) (cert.ID, UpdateReport, error) {
	return l.b.RegisterSubject(name, attrs)
}

func (l Local) RegisterObject(_ context.Context, name string, level Level, attrs attr.Set, functions []string) (cert.ID, UpdateReport, error) {
	return l.b.RegisterObject(name, level, attrs, functions)
}

func (l Local) ProvisionSubject(_ context.Context, id cert.ID) (*SubjectProvision, error) {
	return l.b.ProvisionSubject(id)
}

func (l Local) ProvisionObject(_ context.Context, id cert.ID) (*ObjectProvision, error) {
	return l.b.ProvisionObject(id)
}

func (l Local) AddPolicy(_ context.Context, subjectPred, objectPred *attr.Predicate, rights []string) (uint64, UpdateReport, error) {
	return l.b.AddPolicy(subjectPred, objectPred, rights)
}

func (l Local) RemovePolicy(_ context.Context, id uint64) (UpdateReport, error) {
	return l.b.RemovePolicy(id)
}

func (l Local) RevokeSubject(_ context.Context, id cert.ID) (UpdateReport, error) {
	return l.b.RevokeSubject(id)
}

func (l Local) UpdateSubjectAttrs(_ context.Context, id cert.ID, attrs attr.Set) (UpdateReport, error) {
	return l.b.UpdateSubjectAttrs(id, attrs)
}

func (l Local) CreateGroup(_ context.Context, description string) (groups.ID, error) {
	g, err := l.b.Groups.CreateGroup(description)
	if err != nil {
		return 0, err
	}
	return g.ID(), nil
}

func (l Local) AddSubjectToGroup(_ context.Context, subject cert.ID, gid groups.ID) error {
	return l.b.AddSubjectToGroup(subject, gid)
}

func (l Local) AddCovertService(_ context.Context, object cert.ID, gid groups.ID, functions []string) error {
	return l.b.AddCovertService(object, gid, functions)
}

func (l Local) StateFingerprint(context.Context) (string, error) {
	return l.b.StateFingerprint(), nil
}

// Service is satisfied by the in-process adapter by construction.
var _ Service = Local{}
