package backend

import (
	"fmt"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/enc"
	"argus/internal/groups"
	"argus/internal/suite"
)

// Binary codecs for the provisioning bundles. The HTTP service ships
// provisions as one opaque blob (base64 inside the JSON envelope) rather
// than field-by-field JSON: the bundle is dominated by DER certificates,
// marshaled keys and signed PROFs that have exact binary encodings already,
// and a single codec keeps the in-process and over-the-wire deployments
// byte-identical. The blob contains the entity's PRIVATE key — it only ever
// travels the authenticated provisioning channel (§VII: the backend↔device
// channel is confidential).

const (
	subjectProvisionVersion = 1
	objectProvisionVersion  = 1
)

func writeMembership(w *enc.Writer, m groups.Membership) {
	w.U64(uint64(m.Group))
	w.Bytes16(m.Key)
	w.U64(m.KeyVersion)
	if m.CoverUp {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

func readMembership(r *enc.Reader) groups.Membership {
	return groups.Membership{
		Group:      groups.ID(r.U64()),
		Key:        r.Bytes16(),
		KeyVersion: r.U64(),
		CoverUp:    r.U8() == 1,
	}
}

// EncodeSubjectProvision serializes a subject's credential bundle.
func EncodeSubjectProvision(p *SubjectProvision) []byte {
	w := enc.NewWriter(2048)
	w.U8(subjectProvisionVersion)
	w.Raw(p.ID[:])
	w.String16(p.Name)
	w.U16(uint16(p.Strength))
	w.Bytes16(p.Key.Marshal())
	w.Bytes16(p.CertDER)
	w.Bytes16(p.CACert)
	w.Bytes16(p.AdminPub.Bytes())
	w.Bytes16(p.Profile.Encode())
	w.U16(uint16(len(p.Memberships)))
	for _, m := range p.Memberships {
		writeMembership(w, m)
	}
	return w.Bytes()
}

// DecodeSubjectProvision parses EncodeSubjectProvision output.
func DecodeSubjectProvision(b []byte) (*SubjectProvision, error) {
	r := enc.NewReader(b)
	if v := r.U8(); v != subjectProvisionVersion && r.Err() == nil {
		return nil, fmt.Errorf("%w: subject provision version %d", ErrCorruptState, v)
	}
	p := &SubjectProvision{}
	copy(p.ID[:], r.Raw(len(cert.ID{})))
	p.Name = r.String16()
	p.Strength = suite.Strength(r.U16())
	keyBytes := r.Bytes16()
	p.CertDER = r.Bytes16()
	p.CACert = r.Bytes16()
	adminPub := r.Bytes16()
	profBytes := r.Bytes16()
	n := int(r.U16())
	// A forged count cannot pre-size past what the buffer could hold: each
	// membership is at least 19 bytes on the wire.
	if max := r.Remaining() / 19; n > max {
		n = max
	}
	p.Memberships = make([]groups.Membership, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Memberships = append(p.Memberships, readMembership(r))
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	var err error
	if p.Key, err = suite.UnmarshalSigningKey(keyBytes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	if p.AdminPub, err = suite.PublicKeyFromBytes(p.Strength, adminPub); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	if p.Profile, err = cert.DecodeProfile(profBytes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	return p, nil
}

// EncodeObjectProvision serializes an object's credential bundle.
func EncodeObjectProvision(p *ObjectProvision) []byte {
	w := enc.NewWriter(4096)
	w.U8(objectProvisionVersion)
	w.Raw(p.ID[:])
	w.String16(p.Name)
	w.U16(uint16(p.Strength))
	w.U8(byte(p.Level))
	w.Bytes16(p.Key.Marshal())
	w.Bytes16(p.CertDER)
	w.Bytes16(p.CACert)
	w.Bytes16(p.AdminPub.Bytes())
	if p.PublicProfile != nil {
		w.U8(1)
		w.Bytes16(p.PublicProfile.Encode())
	} else {
		w.U8(0)
	}
	w.U16(uint16(len(p.Variants)))
	for _, v := range p.Variants {
		if v.Pred != nil {
			w.U8(1)
			w.String16(v.Pred.String())
		} else {
			w.U8(0)
		}
		w.U64(uint64(v.Group))
		w.Bytes16(v.GroupKey)
		w.U64(v.KeyVersion)
		w.Bytes16(v.Profile.Encode())
	}
	w.U16(uint16(len(p.Revoked)))
	for _, id := range p.Revoked {
		w.Raw(id[:])
	}
	return w.Bytes()
}

// DecodeObjectProvision parses EncodeObjectProvision output.
func DecodeObjectProvision(b []byte) (*ObjectProvision, error) {
	r := enc.NewReader(b)
	if v := r.U8(); v != objectProvisionVersion && r.Err() == nil {
		return nil, fmt.Errorf("%w: object provision version %d", ErrCorruptState, v)
	}
	p := &ObjectProvision{}
	copy(p.ID[:], r.Raw(len(cert.ID{})))
	p.Name = r.String16()
	p.Strength = suite.Strength(r.U16())
	p.Level = Level(r.U8())
	keyBytes := r.Bytes16()
	p.CertDER = r.Bytes16()
	p.CACert = r.Bytes16()
	adminPub := r.Bytes16()
	var err error
	if r.U8() == 1 {
		if p.PublicProfile, err = cert.DecodeProfile(r.Bytes16()); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
		}
	}
	nv := int(r.U16())
	// Each variant costs at least 22 wire bytes; clamp forged counts.
	if max := r.Remaining() / 22; nv > max {
		nv = max
	}
	p.Variants = make([]ObjectVariant, 0, nv)
	for i := 0; i < nv && r.Err() == nil; i++ {
		var v ObjectVariant
		if r.U8() == 1 {
			if v.Pred, err = attr.Parse(r.String16()); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
			}
		}
		v.Group = groups.ID(r.U64())
		v.GroupKey = r.Bytes16()
		v.KeyVersion = r.U64()
		if v.Profile, err = cert.DecodeProfile(r.Bytes16()); err != nil && r.Err() == nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
		}
		p.Variants = append(p.Variants, v)
	}
	nr := int(r.U16())
	if max := r.Remaining() / len(cert.ID{}); nr > max {
		nr = max
	}
	p.Revoked = make([]cert.ID, 0, nr)
	for i := 0; i < nr && r.Err() == nil; i++ {
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		p.Revoked = append(p.Revoked, id)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	if !p.Level.Valid() {
		return nil, fmt.Errorf("%w: object provision has invalid level", ErrCorruptState)
	}
	if p.Key, err = suite.UnmarshalSigningKey(keyBytes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	if p.AdminPub, err = suite.PublicKeyFromBytes(p.Strength, adminPub); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	return p, nil
}
