package backend

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/groups"
	"argus/internal/suite"
)

// WAL replay support (internal/backendsvc). Registration draws fresh random
// key material, so replaying a register op through the normal entry points
// would produce a different enterprise than the one that crashed. The
// service's write-ahead log therefore records *effects* — the issued key and
// certificate — and replay installs them verbatim through the APIs below,
// reconstructing a byte-identical state (StateFingerprint) without touching
// the RNG. Churn operations whose effects are pure functions of existing
// state (policy add/remove, attribute updates, revocation blacklists) replay
// through the public entry points; only their group-rotation side effects
// are overwritten from the logged groups blob (ImportGroups).

// StateFingerprint digests the complete backend state — admin key, serial,
// registrations, policies, blacklists, issued credentials, groups — into a
// hex string. Two backends answer every future provisioning request
// byte-identically iff their fingerprints match; the WAL crash tests and the
// argus-backend kill/restart e2e gate on it.
func (b *Backend) StateFingerprint() string {
	sum := sha256.Sum256(b.Snapshot())
	return hex.EncodeToString(sum[:])
}

// InstallSubject installs a previously issued subject registration: record,
// escrowed key and certificate chain, exactly as RegisterSubject created
// them. The admin's certificate serial fast-forwards so subsequently issued
// certificates never reuse a serial.
func (b *Backend) InstallSubject(rec SubjectRecord, key *suite.SigningKey, certDER []byte, adminSerial int64) error {
	if _, dup := b.keys[rec.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, rec.Name)
	}
	r := rec
	r.Attrs = rec.Attrs.Clone()
	b.keys[rec.ID] = key
	b.certs[rec.ID] = certDER
	b.subjects[rec.ID] = &r
	b.admin.RestoreSerial(adminSerial)
	b.countChurn("register_subject", UpdateReport{})
	return nil
}

// InstallObject installs a previously issued object registration (see
// InstallSubject).
func (b *Backend) InstallObject(id cert.ID, name string, level Level, attrs attr.Set, functions []string, key *suite.SigningKey, certDER []byte, adminSerial int64) error {
	if !level.Valid() {
		return fmt.Errorf("%w: %d", ErrInvalidLevel, int(level))
	}
	if _, dup := b.keys[id]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	b.keys[id] = key
	b.certs[id] = certDER
	b.objects[id] = &ObjectRecord{
		ID: id, Name: name, Level: level,
		Attrs:     attrs.Clone(),
		Functions: append([]string(nil), functions...),
		covert:    make(map[groups.ID][]string),
		revoked:   make(map[cert.ID]bool),
	}
	b.admin.RestoreSerial(adminSerial)
	b.countChurn("register_object", UpdateReport{NotifiedObjects: []cert.ID{id}})
	return nil
}

// KeyFor returns the escrowed private key and certificate chain issued to an
// entity — the effect material the WAL records for registrations.
func (b *Backend) KeyFor(id cert.ID) (*suite.SigningKey, []byte, error) {
	key, ok := b.keys[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: entity %v", ErrNotFound, id)
	}
	return key, b.certs[id], nil
}

// AdminSerial exposes the admin's certificate-serial counter for effect
// records.
func (b *Backend) AdminSerial() int64 {
	_, _, serial, _ := b.admin.Export()
	return serial
}

// ImportGroups replaces the secret-group registry with the exported blob —
// the replay path for operations whose group side effects drew fresh key
// material (CreateGroup, membership changes, revocation re-keys).
func (b *Backend) ImportGroups(blob []byte) error {
	g, err := groups.Import(blob)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	b.Groups = g
	return nil
}

// ExportGroups returns the secret-group registry blob for effect records.
func (b *Backend) ExportGroups() []byte { return b.Groups.Export() }
