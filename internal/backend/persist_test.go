package backend

import (
	"bytes"
	"testing"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/suite"
)

// buildRichBackend populates a backend with every kind of state.
func buildRichBackend(t *testing.T) (*Backend, cert.ID, cert.ID) {
	t.Helper()
	b := newTestBackend(t)
	b.AddPolicy(attr.MustParse("position=='manager'"),
		attr.MustParse("type=='safe'"), []string{"open", "close"})
	b.AddPolicy(attr.MustParse("position=='staff' || position=='manager'"),
		attr.MustParse("type=='printer'"), []string{"print"})

	g, _ := b.Groups.CreateGroup("support circle")
	alice, _, _ := b.RegisterSubject("alice", attr.MustSet("position=manager,department=X"))
	bob, _, _ := b.RegisterSubject("bob", attr.MustSet("position=staff"))
	b.AddSubjectToGroup(alice, g.ID())

	safe, _, _ := b.RegisterObject("safe", L2, attr.MustSet("type=safe"), []string{"open", "close"})
	kiosk, _, _ := b.RegisterObject("kiosk", L3, attr.MustSet("type=kiosk"), []string{"browse"})
	b.RegisterObject("thermo", L1, attr.MustSet("type=thermometer"), []string{"read"})
	b.AddCovertService(kiosk, g.ID(), []string{"browse", "support"})

	// Revoke bob so an object-side blacklist exists... bob has no access, so
	// demote alice instead to create a blacklist entry, then give bob one.
	b.RevokeSubject(bob)
	_ = safe
	return b, alice, kiosk
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	b, alice, kiosk := buildRichBackend(t)
	blob := b.Snapshot()

	r, err := Restore(blob)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// Determinism: a second snapshot of the restored backend is identical.
	if !bytes.Equal(blob, r.Snapshot()) {
		t.Fatal("restored backend snapshots differently")
	}

	// The restored backend issues working credentials chained to the SAME
	// admin key.
	if !r.AdminPublic().Equal(b.AdminPublic()) {
		t.Fatal("admin key changed across restore")
	}
	prov, err := r.ProvisionSubject(alice)
	if err != nil {
		t.Fatal(err)
	}
	if err := prov.Profile.Verify(b.AdminPublic(), prov.Profile.Issued); err != nil {
		t.Fatalf("restored backend's PROF not verifiable by original admin key: %v", err)
	}
	if _, err := cert.VerifyCert(b.CACert(), prov.CertDER, suite.S128); err != nil {
		t.Fatalf("restored CERT invalid: %v", err)
	}
	// Group memberships survive.
	if len(prov.Memberships) != 1 || prov.Memberships[0].CoverUp {
		t.Fatalf("memberships after restore: %+v", prov.Memberships)
	}

	// Object state: covert services and variants survive.
	oprov, err := r.ProvisionObject(kiosk)
	if err != nil {
		t.Fatal(err)
	}
	if oprov.Level != L3 {
		t.Fatalf("kiosk level = %v", oprov.Level)
	}
	covert := 0
	for _, v := range oprov.Variants {
		if v.IsCovert() {
			covert++
		}
	}
	if covert != 1 {
		t.Fatalf("covert variants after restore = %d", covert)
	}

	// Policies survive.
	if len(r.Policies()) != 2 {
		t.Fatalf("policies after restore = %d", len(r.Policies()))
	}

	// Revocation state survives: bob stays revoked.
	bobID := cert.IDFromName("bob")
	if _, err := r.ProvisionSubject(bobID); err == nil {
		t.Fatal("revoked subject re-provisioned after restore")
	}

	// The restored backend keeps functioning: new registrations work and get
	// fresh serials.
	nid, _, err := r.RegisterSubject("carol", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	nprov, err := r.ProvisionSubject(nid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cert.VerifyCert(b.CACert(), nprov.CertDER, suite.S128); err != nil {
		t.Fatalf("post-restore CERT invalid: %v", err)
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	b, _, _ := buildRichBackend(t)
	blob := b.Snapshot()

	if _, err := Restore(nil); err == nil {
		t.Error("empty snapshot restored")
	}
	if _, err := Restore(blob[:len(blob)/2]); err == nil {
		t.Error("truncated snapshot restored")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 99 // version
	if _, err := Restore(bad); err == nil {
		t.Error("unknown version restored")
	}
	if _, err := Restore(append(blob, 0)); err == nil {
		t.Error("snapshot with trailing bytes restored")
	}
}
