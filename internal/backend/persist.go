package backend

import (
	"fmt"
	"sort"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/enc"
	"argus/internal/groups"
	"argus/internal/suite"
)

// Persistence: the backend is the enterprise's durable authority (§II-A:
// "a hierarchy of servers ... resists collapse under the load and a single
// point of failure"), so its state — admin key, registrations, policies,
// groups, issued credentials, revocations — must survive restarts. Snapshot
// produces a single deterministic blob; Restore reconstructs a backend that
// issues byte-identical credentials. The blob contains private keys: store
// it accordingly.

const snapshotVersion = 1

// Snapshot serializes the complete backend state.
func (b *Backend) Snapshot() []byte {
	w := enc.NewWriter(4096)
	w.U8(snapshotVersion)
	w.U16(uint16(b.strength))

	adminKey, caDER, serial, chain := b.admin.Export()
	w.Bytes16(adminKey)
	w.Bytes16(caDER)
	w.U64(uint64(serial))
	w.U8(byte(len(chain)))
	for _, c := range chain {
		w.Bytes16(c)
	}
	w.Bytes16(b.anchor)
	w.U32(uint32(b.profSizes))
	w.U64(b.nextPol)

	// Subjects, sorted for determinism.
	sids := make([]cert.ID, 0, len(b.subjects))
	for id := range b.subjects {
		sids = append(sids, id)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i].Less(sids[j]) })
	w.U32(uint32(len(sids)))
	for _, id := range sids {
		s := b.subjects[id]
		w.Raw(id[:])
		w.String16(s.Name)
		w.String16(s.Attrs.String())
		if s.Revoked {
			w.U8(1)
		} else {
			w.U8(0)
		}
	}

	// Objects.
	oids := b.Objects()
	w.U32(uint32(len(oids)))
	for _, id := range oids {
		o := b.objects[id]
		w.Raw(id[:])
		w.String16(o.Name)
		w.U8(byte(o.Level))
		w.String16(o.Attrs.String())
		w.U16(uint16(len(o.Functions)))
		for _, f := range o.Functions {
			w.String16(f)
		}
		// Covert services, sorted by group.
		gids := make([]groups.ID, 0, len(o.covert))
		for gid := range o.covert {
			gids = append(gids, gid)
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
		w.U16(uint16(len(gids)))
		for _, gid := range gids {
			w.U64(uint64(gid))
			fns := o.covert[gid]
			w.U16(uint16(len(fns)))
			for _, f := range fns {
				w.String16(f)
			}
		}
		writeIDList(w, o.revoked)
	}

	// Policies.
	pols := b.Policies()
	w.U32(uint32(len(pols)))
	for _, p := range pols {
		w.U64(p.ID)
		w.String16(p.Subject.String())
		w.String16(p.Object.String())
		w.U16(uint16(len(p.Rights)))
		for _, r := range p.Rights {
			w.String16(r)
		}
	}

	// Issued keys and certificates.
	kids := make([]cert.ID, 0, len(b.keys))
	for id := range b.keys {
		kids = append(kids, id)
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].Less(kids[j]) })
	w.U32(uint32(len(kids)))
	for _, id := range kids {
		w.Raw(id[:])
		w.Bytes16(b.keys[id].Marshal())
		w.Bytes16(b.certs[id])
	}

	// Groups registry.
	w.Bytes32(b.Groups.Export())
	return w.Bytes()
}

func writeIDList(w *enc.Writer, set map[cert.ID]bool) {
	ids := make([]cert.ID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.Raw(id[:])
	}
}

func readIDList(r *enc.Reader) map[cert.ID]bool {
	n := int(r.U32())
	// Cap the allocation hint by what the input could actually hold: a
	// forged count must not pre-size a huge map before truncation is
	// detected.
	hint := n
	if max := r.Remaining() / len(cert.ID{}); hint > max {
		hint = max
	}
	out := make(map[cert.ID]bool, hint)
	for i := 0; i < n && r.Err() == nil; i++ {
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		out[id] = true
	}
	return out
}

// Restore reconstructs a backend from a Snapshot blob. Options apply after
// reconstruction (telemetry, clock, shard layout — none of them are part of
// the persisted state).
func Restore(blob []byte, opts ...Option) (*Backend, error) {
	r := enc.NewReader(blob)
	if v := r.U8(); v != snapshotVersion && r.Err() == nil {
		return nil, fmt.Errorf("%w: unsupported snapshot version", ErrCorruptState)
	}
	strength := suite.Strength(r.U16())
	adminKey := r.Bytes16()
	caDER := r.Bytes16()
	serial := int64(r.U64())
	nChain := int(r.U8())
	var chain [][]byte
	for i := 0; i < nChain && r.Err() == nil; i++ {
		chain = append(chain, r.Bytes16())
	}
	anchor := r.Bytes16()
	profSizes := int(r.U32())
	nextPol := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	admin, err := cert.ImportAdmin(adminKey, caDER, serial, chain)
	if err != nil {
		return nil, err
	}
	b := &Backend{
		admin:     admin,
		anchor:    anchor,
		strength:  strength,
		subjects:  make(map[cert.ID]*SubjectRecord),
		objects:   make(map[cert.ID]*ObjectRecord),
		policies:  make(map[uint64]*Policy),
		nextPol:   nextPol,
		keys:      make(map[cert.ID]*suite.SigningKey),
		certs:     make(map[cert.ID][]byte),
		profSizes: profSizes,
		shards:    1,
	}
	for _, o := range opts {
		o(b)
	}

	nSubjects := int(r.U32())
	for i := 0; i < nSubjects && r.Err() == nil; i++ {
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		name := r.String16()
		attrText := r.String16()
		revoked := r.U8() == 1
		attrs, err := attr.ParseSet(attrText)
		if err != nil {
			return nil, err
		}
		b.subjects[id] = &SubjectRecord{ID: id, Name: name, Attrs: attrs, Revoked: revoked}
	}

	nObjects := int(r.U32())
	for i := 0; i < nObjects && r.Err() == nil; i++ {
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		o := &ObjectRecord{
			ID:     id,
			Name:   r.String16(),
			Level:  Level(r.U8()),
			covert: make(map[groups.ID][]string),
		}
		attrs, err := attr.ParseSet(r.String16())
		if err != nil {
			return nil, err
		}
		o.Attrs = attrs
		nf := int(r.U16())
		for j := 0; j < nf && r.Err() == nil; j++ {
			o.Functions = append(o.Functions, r.String16())
		}
		ng := int(r.U16())
		for j := 0; j < ng && r.Err() == nil; j++ {
			gid := groups.ID(r.U64())
			nfn := int(r.U16())
			var fns []string
			for k := 0; k < nfn && r.Err() == nil; k++ {
				fns = append(fns, r.String16())
			}
			o.covert[gid] = fns
		}
		o.revoked = readIDList(r)
		if !o.Level.Valid() {
			return nil, fmt.Errorf("%w: snapshot has invalid object level", ErrCorruptState)
		}
		b.objects[id] = o
	}

	nPols := int(r.U32())
	for i := 0; i < nPols && r.Err() == nil; i++ {
		p := &Policy{ID: r.U64()}
		subjPred, err := attr.Parse(r.String16())
		if err != nil {
			return nil, err
		}
		objPred, err := attr.Parse(r.String16())
		if err != nil {
			return nil, err
		}
		p.Subject, p.Object = subjPred, objPred
		nr := int(r.U16())
		for j := 0; j < nr && r.Err() == nil; j++ {
			p.Rights = append(p.Rights, r.String16())
		}
		b.policies[p.ID] = p
	}

	nKeys := int(r.U32())
	for i := 0; i < nKeys && r.Err() == nil; i++ {
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		keyBytes := r.Bytes16()
		der := r.Bytes16()
		if r.Err() != nil {
			break
		}
		key, err := suite.UnmarshalSigningKey(keyBytes)
		if err != nil {
			return nil, err
		}
		b.keys[id] = key
		b.certs[id] = der
	}

	groupBlob := r.Bytes32()
	if err := r.Done(); err != nil {
		return nil, err
	}
	g, err := groups.Import(groupBlob)
	if err != nil {
		return nil, err
	}
	b.Groups = g
	return b, nil
}
