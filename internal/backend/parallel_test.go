package backend

import (
	"fmt"
	"testing"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/suite"
)

func batchSpecs(n int) []ObjectSpec {
	specs := make([]ObjectSpec, n)
	for i := range specs {
		level := L2
		if i%3 == 2 {
			level = L1
		}
		specs[i] = ObjectSpec{
			Name:      fmt.Sprintf("batch-%02d", i),
			Level:     level,
			Attrs:     attr.MustSet("type=device,room=R1"),
			Functions: []string{"use"},
		}
	}
	return specs
}

// TestRegisterObjectsMatchesSequential: batch registration must be
// observationally identical to repeated RegisterObject calls — same IDs, same
// certificate sizes (serials and signatures are size-pinned), same records.
func TestRegisterObjectsMatchesSequential(t *testing.T) {
	specs := batchSpecs(8)

	seq, err := New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if _, _, err := seq.RegisterObject(sp.Name, sp.Level, sp.Attrs, sp.Functions); err != nil {
			t.Fatal(err)
		}
	}

	par, err := New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := par.RegisterObjects(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(specs) {
		t.Fatalf("got %d ids", len(ids))
	}
	for i, sp := range specs {
		if ids[i] != cert.IDFromName(sp.Name) {
			t.Fatalf("id %d out of spec order", i)
		}
		so, err := seq.Object(cert.IDFromName(sp.Name))
		if err != nil {
			t.Fatal(err)
		}
		po, err := par.Object(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if so.Level != po.Level || so.Name != po.Name {
			t.Fatalf("record %d diverged: %+v vs %+v", i, so, po)
		}
		if len(seq.certs[so.ID]) != len(par.certs[po.ID]) {
			t.Fatalf("cert %d sizes diverged: %d vs %d", i, len(seq.certs[so.ID]), len(par.certs[po.ID]))
		}
		// Every batch-issued chain verifies against the anchor.
		info, err := cert.VerifyCertChain(par.CACert(), par.certs[po.ID], par.Strength())
		if err != nil {
			t.Fatalf("chain %d: %v", i, err)
		}
		if info.ID != ids[i] || info.Role != cert.RoleObject {
			t.Fatalf("chain %d bound wrong identity", i)
		}
	}
}

func TestRegisterObjectsRejectsDuplicates(t *testing.T) {
	b, err := New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.RegisterObject("taken", L1, attr.MustSet("type=x"), nil); err != nil {
		t.Fatal(err)
	}
	specs := []ObjectSpec{{Name: "fresh", Level: L1}, {Name: "taken", Level: L1}}
	if _, err := b.RegisterObjects(specs, 2); err == nil {
		t.Fatal("existing name accepted")
	}
	// The failed batch must not have partially registered anything.
	if _, err := b.Object(cert.IDFromName("fresh")); err == nil {
		t.Fatal("partial batch state leaked")
	}
	dup := []ObjectSpec{{Name: "twin", Level: L1}, {Name: "twin", Level: L1}}
	if _, err := b.RegisterObjects(dup, 2); err == nil {
		t.Fatal("intra-batch duplicate accepted")
	}
}

func TestRegisterSubjectsBatch(t *testing.T) {
	b, err := New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	specs := []SubjectSpec{
		{Name: "ann", Attrs: attr.MustSet("position=staff")},
		{Name: "bob", Attrs: attr.MustSet("position=visitor")},
		{Name: "cyd", Attrs: attr.MustSet("position=staff")},
	}
	ids, err := b.RegisterSubjects(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		s, err := b.Subject(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != sp.Name || s.Attrs["position"] != sp.Attrs["position"] {
			t.Fatalf("subject %d diverged: %+v", i, s)
		}
		if _, err := b.ProvisionSubject(ids[i]); err != nil {
			t.Fatalf("provision %s: %v", sp.Name, err)
		}
	}
}

// TestProvisionObjectsSerialParallelEquivalence: provisioning the same
// objects with one worker and with eight yields structurally identical
// bundles — same variant counts, profile sizes, groups and blacklists.
// (Signature bytes differ between any two provisioning calls, serial or not:
// ECDSA is randomized. Sizes and structure are what the simulation observes.)
func TestProvisionObjectsSerialParallelEquivalence(t *testing.T) {
	b, err := New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"), []string{"use"}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Groups.CreateGroup("batch-group")
	if err != nil {
		t.Fatal(err)
	}
	specs := batchSpecs(6)
	specs[5].Level = L3
	ids, err := b.RegisterObjects(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddCovertService(ids[5], g.ID(), []string{"use", "covert"}); err != nil {
		t.Fatal(err)
	}

	serial, err := b.ProvisionObjects(ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := b.ProvisionObjects(ids, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		s, p := serial[i], parallel[i]
		if s.ID != p.ID || s.Level != p.Level || len(s.Variants) != len(p.Variants) {
			t.Fatalf("provision %d structure diverged: %+v vs %+v", i, s, p)
		}
		if (s.PublicProfile == nil) != (p.PublicProfile == nil) {
			t.Fatalf("provision %d public profile diverged", i)
		}
		if s.PublicProfile != nil && s.PublicProfile.EncodedLen() != p.PublicProfile.EncodedLen() {
			t.Fatalf("provision %d public profile sizes diverged", i)
		}
		for j := range s.Variants {
			sv, pv := s.Variants[j], p.Variants[j]
			if sv.Group != pv.Group || sv.Profile.EncodedLen() != pv.Profile.EncodedLen() {
				t.Fatalf("provision %d variant %d diverged: group %d/%d size %d/%d",
					i, j, sv.Group, pv.Group, sv.Profile.EncodedLen(), pv.Profile.EncodedLen())
			}
			if err := pv.Profile.VerifyAnchored(b.CACert(), b.AdminPublic(), pv.Profile.Issued); err != nil {
				t.Fatalf("provision %d variant %d does not verify: %v", i, j, err)
			}
		}
		if len(s.Revoked) != len(p.Revoked) {
			t.Fatalf("provision %d blacklist diverged", i)
		}
	}
}
