package backend

import "errors"

// Sentinel errors for every failure class a backend churn or provisioning
// operation can produce. Callers branch with errors.Is — never by matching
// message text — and the HTTP service layer (internal/backendsvc) maps each
// sentinel to a status code. Every error returned by this package wraps
// exactly one sentinel; the wrapped message carries the specifics (entity
// name, ID, policy number).
var (
	// ErrNotFound: the referenced subject, object, policy or group is not
	// registered. HTTP 404.
	ErrNotFound = errors.New("backend: not found")
	// ErrDuplicate: the name is already registered (IDs derive from names,
	// so re-registration would silently alias credentials). HTTP 409.
	ErrDuplicate = errors.New("backend: already registered")
	// ErrRevoked: the subject has been revoked — it can neither be
	// re-provisioned nor revoked twice. HTTP 410.
	ErrRevoked = errors.New("backend: revoked")
	// ErrBadPredicate: a policy predicate is missing or unparsable. HTTP 400.
	ErrBadPredicate = errors.New("backend: bad predicate")
	// ErrInvalidLevel: the visibility level is outside L1..L3. HTTP 400.
	ErrInvalidLevel = errors.New("backend: invalid level")
	// ErrNotCovert: a covert-service operation addressed an object that is
	// not Level 3. HTTP 409.
	ErrNotCovert = errors.New("backend: not a covert object")
	// ErrCorruptState: a snapshot or WAL blob failed structural validation.
	// HTTP 500 (server-side durability fault, never a client error).
	ErrCorruptState = errors.New("backend: corrupt state")
)
