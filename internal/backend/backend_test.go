package backend

import (
	"fmt"
	"testing"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/suite"
)

func newTestBackend(t *testing.T) *Backend {
	t.Helper()
	b, err := New(suite.S128)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

func TestRegisterSubjectOverheadIsZero(t *testing.T) {
	b := newTestBackend(t)
	_, rep, err := b.RegisterSubject("alice", attr.MustSet("position=manager,department=X"))
	if err != nil {
		t.Fatal(err)
	}
	// Table I: adding a subject in Argus costs 1 backend contact, 0 object
	// notifications — vs N for ID-based ACL.
	if rep.Total() != 0 {
		t.Fatalf("add-subject ground overhead = %d, want 0", rep.Total())
	}
}

func TestDuplicateRegistrationFails(t *testing.T) {
	b := newTestBackend(t)
	if _, _, err := b.RegisterSubject("alice", attr.Set{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.RegisterSubject("alice", attr.Set{}); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
}

func TestPolicyCompilation(t *testing.T) {
	b := newTestBackend(t)
	// Two conference door locks and one office lock.
	ids := make([]cert.ID, 0, 3)
	for i, room := range []string{"conference", "conference", "office"} {
		id, _, err := b.RegisterObject(
			fmt.Sprintf("lock-%d", i), L2,
			attr.MustSet("type=door lock,room_type="+room),
			[]string{"open", "close", "status"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// The paper's example policy: managers may open/close conference locks.
	_, rep, err := b.AddPolicy(
		attr.MustParse("position=='manager'"),
		attr.MustParse("type=='door lock' && room_type=='conference'"),
		[]string{"open", "close"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NotifiedObjects) != 2 {
		t.Fatalf("policy add notified %d objects, want β = 2", len(rep.NotifiedObjects))
	}

	p, err := b.ProvisionObject(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Variants) != 1 {
		t.Fatalf("conference lock variants = %d, want 1", len(p.Variants))
	}
	v := p.Variants[0]
	if v.IsCovert() {
		t.Fatal("policy variant marked covert")
	}
	if !v.Pred.Eval(attr.MustSet("position=manager")) {
		t.Fatal("variant predicate rejects managers")
	}
	if len(v.Profile.Functions) != 2 || v.Profile.Functions[0] != "open" {
		t.Fatalf("variant functions = %v, want policy rights", v.Profile.Functions)
	}
	// The office lock is not governed.
	po, _ := b.ProvisionObject(ids[2])
	if len(po.Variants) != 0 {
		t.Fatalf("office lock variants = %d, want 0", len(po.Variants))
	}
}

func TestAccessibleObjectsAndRevocation(t *testing.T) {
	b := newTestBackend(t)
	alice, _, _ := b.RegisterSubject("alice", attr.MustSet("position=manager,department=X"))
	bob, _, _ := b.RegisterSubject("bob", attr.MustSet("position=staff,department=X"))

	var lockIDs []cert.ID
	for i := 0; i < 5; i++ {
		id, _, _ := b.RegisterObject(fmt.Sprintf("lock-%d", i), L2,
			attr.MustSet("type=lock"), []string{"open"})
		lockIDs = append(lockIDs, id)
	}
	b.AddPolicy(attr.MustParse("position=='manager'"), attr.MustParse("type=='lock'"), []string{"open"})

	acc, err := b.AccessibleObjects(alice)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc) != 5 {
		t.Fatalf("alice accesses %d objects, want N = 5", len(acc))
	}
	accBob, _ := b.AccessibleObjects(bob)
	if len(accBob) != 0 {
		t.Fatalf("bob accesses %d objects, want 0", len(accBob))
	}

	// Table I: removing a subject notifies exactly the N objects she could
	// access.
	rep, err := b.RevokeSubject(alice)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NotifiedObjects) != 5 {
		t.Fatalf("revocation notified %d objects, want N = 5", len(rep.NotifiedObjects))
	}
	for _, oid := range lockIDs {
		revoked, _ := b.RevokedFor(oid)
		if len(revoked) != 1 || revoked[0] != alice {
			t.Fatalf("object %v revocation list = %v", oid, revoked)
		}
	}
	// Revoked subjects cannot be re-provisioned.
	if _, err := b.ProvisionSubject(alice); err == nil {
		t.Fatal("revoked subject re-provisioned")
	}
	if _, err := b.RevokeSubject(alice); err == nil {
		t.Fatal("double revocation succeeded")
	}
}

func TestRevokeSubjectRotatesHerGroups(t *testing.T) {
	b := newTestBackend(t)
	s, _, _ := b.RegisterSubject("s", attr.MustSet("position=student"))
	fellow, _, _ := b.RegisterSubject("fellow", attr.MustSet("position=student"))
	g, _ := b.Groups.CreateGroup("needs support")
	b.AddSubjectToGroup(s, g.ID())
	b.AddSubjectToGroup(fellow, g.ID())

	before, _ := b.ProvisionSubject(fellow)
	rep, err := b.RevokeSubject(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NotifiedSubjects) != 1 || rep.NotifiedSubjects[0] != fellow {
		t.Fatalf("rekey notifications = %v, want just the fellow", rep.NotifiedSubjects)
	}
	after, _ := b.ProvisionSubject(fellow)
	if string(before.Memberships[0].Key) == string(after.Memberships[0].Key) {
		t.Fatal("group key unchanged after member revocation")
	}
}

func TestProvisionSubject(t *testing.T) {
	b := newTestBackend(t)
	id, _, _ := b.RegisterSubject("alice", attr.MustSet("position=manager"))
	p, err := b.ProvisionSubject(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Key == nil || len(p.CertDER) == 0 || p.Profile == nil {
		t.Fatal("incomplete provision")
	}
	// Credentials chain to the admin.
	info, err := cert.VerifyCert(p.CACert, p.CertDER, suite.S128)
	if err != nil {
		t.Fatalf("CERT does not verify: %v", err)
	}
	if info.ID != id || info.Role != cert.RoleSubject {
		t.Fatal("CERT binds wrong identity")
	}
	if err := p.Profile.Verify(p.AdminPub, p.Profile.Issued); err != nil {
		t.Fatalf("PROF does not verify: %v", err)
	}
	if p.Profile.EncodedLen() < DefaultProfileSize {
		t.Fatalf("PROF size %d below default %d", p.Profile.EncodedLen(), DefaultProfileSize)
	}
	// Even without sensitive attributes she gets a (cover-up) key.
	if len(p.Memberships) != 1 || !p.Memberships[0].CoverUp {
		t.Fatalf("memberships = %+v, want one cover-up", p.Memberships)
	}
}

func TestProvisionLevel1Object(t *testing.T) {
	b := newTestBackend(t)
	id, _, _ := b.RegisterObject("thermo", L1, attr.MustSet("type=thermometer"), []string{"read"})
	p, err := b.ProvisionObject(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.PublicProfile == nil || len(p.Variants) != 0 {
		t.Fatal("Level 1 object should have exactly a public profile")
	}
	if err := p.PublicProfile.Verify(p.AdminPub, p.PublicProfile.Issued); err != nil {
		t.Fatalf("public PROF unsigned: %v", err)
	}
}

func TestProvisionLevel3ObjectConstantVariantLength(t *testing.T) {
	b := newTestBackend(t)
	id, _, _ := b.RegisterObject("magazine-machine", L3,
		attr.MustSet("type=vending,building=library"),
		[]string{"dispense"})
	s, _, _ := b.RegisterSubject("student", attr.MustSet("position=student"))
	g, _ := b.Groups.CreateGroup("learning disability support")
	b.AddSubjectToGroup(s, g.ID())
	if err := b.AddCovertService(id, g.ID(), []string{"dispense", "counseling-flyers", "policy-info"}); err != nil {
		t.Fatal(err)
	}
	// Give it a Level 2 public face too.
	b.AddPolicy(attr.MustParse("position=='student'"), attr.MustParse("type=='vending'"), []string{"dispense"})

	p, err := b.ProvisionObject(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Variants) != 2 {
		t.Fatalf("variants = %d, want 2 (one policy + one group)", len(p.Variants))
	}
	var covert, open int
	sizes := make(map[int]bool)
	for _, v := range p.Variants {
		if v.IsCovert() {
			covert++
			if len(v.GroupKey) != suite.KeySize {
				t.Fatal("covert variant missing group key")
			}
		} else {
			open++
		}
		sizes[v.Profile.EncodedLen()] = true
		if err := v.Profile.Verify(p.AdminPub, v.Profile.Issued); err != nil {
			t.Fatalf("variant unsigned: %v", err)
		}
	}
	if covert != 1 || open != 1 {
		t.Fatalf("covert=%d open=%d", covert, open)
	}
	// §VI-B constant RES2 length: all variants encode to one size.
	if len(sizes) != 1 {
		t.Fatalf("variant sizes differ: %v", sizes)
	}
}

func TestAddCovertServiceRequiresLevel3(t *testing.T) {
	b := newTestBackend(t)
	id, _, _ := b.RegisterObject("lock", L2, attr.MustSet("type=lock"), []string{"open"})
	g, _ := b.Groups.CreateGroup("g")
	if err := b.AddCovertService(id, g.ID(), []string{"x"}); err == nil {
		t.Fatal("covert service added to Level 2 object")
	}
}

func TestRemovePolicy(t *testing.T) {
	b := newTestBackend(t)
	oid, _, _ := b.RegisterObject("lock", L2, attr.MustSet("type=lock"), []string{"open"})
	pid, _, _ := b.AddPolicy(attr.MustParse("true"), attr.MustParse("type=='lock'"), []string{"open"})
	rep, err := b.RemovePolicy(pid)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NotifiedObjects) != 1 || rep.NotifiedObjects[0] != oid {
		t.Fatalf("remove-policy notifications = %v", rep.NotifiedObjects)
	}
	p, _ := b.ProvisionObject(oid)
	if len(p.Variants) != 0 {
		t.Fatal("variants survive policy removal")
	}
	if _, err := b.RemovePolicy(pid); err == nil {
		t.Fatal("double removal succeeded")
	}
}

func TestRemoveObject(t *testing.T) {
	b := newTestBackend(t)
	id, _, _ := b.RegisterObject("lock", L2, attr.MustSet("type=lock"), []string{"open"})
	rep, err := b.RemoveObject(id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 1 {
		t.Fatalf("remove-object overhead = %d, want 1", rep.Total())
	}
	if _, err := b.Object(id); err == nil {
		t.Fatal("object still present")
	}
	if _, err := b.RemoveObject(id); err == nil {
		t.Fatal("double removal succeeded")
	}
}

func TestInvalidLevelRejected(t *testing.T) {
	b := newTestBackend(t)
	if _, _, err := b.RegisterObject("x", Level(9), attr.Set{}, nil); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestUpdateSubjectAttrsPromotion(t *testing.T) {
	// Promotion widens access: no object updates needed (overhead 0); the
	// subject just fetches her new PROF.
	b := newTestBackend(t)
	b.AddPolicy(attr.MustParse("position=='manager'"), attr.MustParse("type=='safe'"), []string{"open"})
	id, _, _ := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	b.RegisterObject("safe", L2, attr.MustSet("type=safe"), []string{"open"})

	rep, err := b.UpdateSubjectAttrs(id, attr.MustSet("position=manager"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 0 {
		t.Fatalf("promotion overhead = %d, want 0", rep.Total())
	}
	prov, _ := b.ProvisionSubject(id)
	if prov.Profile.Attrs["position"] != "manager" {
		t.Fatal("re-issued PROF lacks new attributes")
	}
	acc, _ := b.AccessibleObjects(id)
	if len(acc) != 1 {
		t.Fatalf("promoted subject accesses %d objects, want 1", len(acc))
	}
}

func TestUpdateSubjectAttrsDemotion(t *testing.T) {
	// Demotion shrinks access: the objects that would still accept the OLD
	// signed PROF must blacklist the subject.
	b := newTestBackend(t)
	b.AddPolicy(attr.MustParse("position=='manager'"), attr.MustParse("type=='safe'"), []string{"open"})
	id, _, _ := b.RegisterSubject("alice", attr.MustSet("position=manager"))
	oid, _, _ := b.RegisterObject("safe", L2, attr.MustSet("type=safe"), []string{"open"})

	rep, err := b.UpdateSubjectAttrs(id, attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NotifiedObjects) != 1 || rep.NotifiedObjects[0] != oid {
		t.Fatalf("demotion notified %v, want just the safe", rep.NotifiedObjects)
	}
	revoked, _ := b.RevokedFor(oid)
	if len(revoked) != 1 || revoked[0] != id {
		t.Fatalf("safe blacklist = %v", revoked)
	}
	// Reinstate clears the entry once the fresh PROF is in force.
	if err := b.Reinstate(oid, id); err != nil {
		t.Fatal(err)
	}
	revoked, _ = b.RevokedFor(oid)
	if len(revoked) != 0 {
		t.Fatal("reinstate did not clear the blacklist")
	}
	if err := b.Reinstate(cert.IDFromName("ghost"), id); err == nil {
		t.Fatal("reinstate on unknown object succeeded")
	}
}

func TestUpdateSubjectAttrsRevoked(t *testing.T) {
	b := newTestBackend(t)
	id, _, _ := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	b.RevokeSubject(id)
	if _, err := b.UpdateSubjectAttrs(id, attr.MustSet("position=manager")); err == nil {
		t.Fatal("attribute update on revoked subject succeeded")
	}
	if _, err := b.UpdateSubjectAttrs(cert.IDFromName("ghost"), attr.Set{}); err == nil {
		t.Fatal("attribute update on unknown subject succeeded")
	}
}

func TestUpdateObjectAttrs(t *testing.T) {
	b := newTestBackend(t)
	b.AddPolicy(attr.MustParse("true"), attr.MustParse("room=='101'"), []string{"use"})
	b.AddPolicy(attr.MustParse("true"), attr.MustParse("room=='202'"), []string{"use", "audit"})
	id, _, _ := b.RegisterObject("cart", L2, attr.MustSet("room=101,type=cart"), []string{"use", "audit"})

	before, _ := b.ProvisionObject(id)
	if len(before.Variants) != 1 || len(before.Variants[0].Profile.Functions) != 1 {
		t.Fatalf("pre-move variants = %+v", before.Variants)
	}
	// The cart is wheeled into room 202: its variants recompile under the
	// other room's policy.
	rep, err := b.UpdateObjectAttrs(id, attr.MustSet("room=202,type=cart"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 1 {
		t.Fatalf("overhead = %d, want 1", rep.Total())
	}
	after, _ := b.ProvisionObject(id)
	if len(after.Variants) != 1 || len(after.Variants[0].Profile.Functions) != 2 {
		t.Fatalf("post-move variants = %+v", after.Variants)
	}
	if _, err := b.UpdateObjectAttrs(cert.IDFromName("ghost"), attr.Set{}); err == nil {
		t.Fatal("unknown object updated")
	}
}
