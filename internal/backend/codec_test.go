package backend

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"argus/internal/attr"
	"argus/internal/suite"
)

// enterprise for codec tests: a subject in a secret group, an L3 object with
// a covert service, a policy, and one revoked fellow so Revoked lists and
// memberships are all non-trivial.
func codecFixture(t *testing.T) (*Backend, *SubjectProvision, *ObjectProvision) {
	t.Helper()
	b, err := New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	sid, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := b.RegisterObject("kiosk", L3, attr.MustSet("type=kiosk"), []string{"use", "admin"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='kiosk'"), []string{"use"}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Groups.CreateGroup("fellows")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddSubjectToGroup(sid, g.ID()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddCovertService(oid, g.ID(), []string{"admin"}); err != nil {
		t.Fatal(err)
	}
	mallory, _, err := b.RegisterSubject("mallory", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RevokeSubject(mallory); err != nil {
		t.Fatal(err)
	}
	sp, err := b.ProvisionSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	op, err := b.ProvisionObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	return b, sp, op
}

func TestSubjectProvisionCodecRoundTrip(t *testing.T) {
	_, sp, _ := codecFixture(t)
	blob := EncodeSubjectProvision(sp)
	got, err := DecodeSubjectProvision(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encoding the decoded bundle must be byte-identical: the codec is the
	// wire format, and byte identity is what the e2e fingerprint check leans on.
	if !bytes.Equal(EncodeSubjectProvision(got), blob) {
		t.Fatal("subject provision did not survive the round trip byte-identically")
	}
	if got.Name != sp.Name || got.ID != sp.ID || len(got.Memberships) != len(sp.Memberships) {
		t.Fatalf("decoded fields differ: %+v vs %+v", got, sp)
	}
}

func TestObjectProvisionCodecRoundTrip(t *testing.T) {
	_, _, op := codecFixture(t)
	blob := EncodeObjectProvision(op)
	got, err := DecodeObjectProvision(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeObjectProvision(got), blob) {
		t.Fatal("object provision did not survive the round trip byte-identically")
	}
	if got.Name != op.Name || got.Level != op.Level ||
		len(got.Variants) != len(op.Variants) || len(got.Revoked) != len(op.Revoked) {
		t.Fatalf("decoded fields differ: %+v vs %+v", got, op)
	}
}

func TestProvisionCodecRejectsCorruption(t *testing.T) {
	_, sp, op := codecFixture(t)
	for _, blob := range [][]byte{EncodeSubjectProvision(sp), EncodeObjectProvision(op)} {
		// Truncations must error, never panic, and always as ErrCorruptState.
		for cut := 0; cut < len(blob); cut += 7 {
			_, errS := DecodeSubjectProvision(blob[:cut])
			_, errO := DecodeObjectProvision(blob[:cut])
			if errS == nil && errO == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", cut)
			}
			for _, err := range []error{errS, errO} {
				if err != nil && !errors.Is(err, ErrCorruptState) {
					t.Fatalf("truncated decode: got %v, want ErrCorruptState", err)
				}
			}
		}
	}
	// Bad version byte.
	bad := append([]byte(nil), EncodeSubjectProvision(sp)...)
	bad[0] = 0xEE
	if _, err := DecodeSubjectProvision(bad); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("bad version: got %v, want ErrCorruptState", err)
	}
}

// TestLocalAdapter exercises the full Service surface through the in-process
// adapter and checks it matches direct *Backend calls.
func TestLocalAdapter(t *testing.T) {
	b, err := New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	var svc Service = NewLocal(b)
	ctx := context.Background()

	ta, err := svc.TrustAnchor(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.CACert, b.CACert()) {
		t.Fatal("TrustAnchor CA differs from backend CA")
	}
	if _, err := ta.PublicKey(); err != nil {
		t.Fatalf("trust anchor admin key does not decode: %v", err)
	}

	sid, _, err := svc.RegisterSubject(ctx, "alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := svc.RegisterObject(ctx, "kiosk", L3, attr.MustSet("type=kiosk"), []string{"use"})
	if err != nil {
		t.Fatal(err)
	}
	gid, err := svc.CreateGroup(ctx, "fellows")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddSubjectToGroup(ctx, sid, gid); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddCovertService(ctx, oid, gid, []string{"use"}); err != nil {
		t.Fatal(err)
	}
	pid, _, err := svc.AddPolicy(ctx, attr.MustParse("position=='staff'"),
		attr.MustParse("type=='kiosk'"), []string{"use"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.UpdateSubjectAttrs(ctx, sid, attr.MustSet("position=visitor")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RemovePolicy(ctx, pid); err != nil {
		t.Fatal(err)
	}
	sp, err := svc.ProvisionSubject(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Memberships) != 1 {
		t.Fatalf("want 1 membership, got %d", len(sp.Memberships))
	}
	if _, err := svc.ProvisionObject(ctx, oid); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RevokeSubject(ctx, sid); err != nil {
		t.Fatal(err)
	}
	fp, err := svc.StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fp != b.StateFingerprint() {
		t.Fatal("adapter fingerprint differs from backend fingerprint")
	}
}

// TestInstallRoundTrip proves effect replay: a backend rebuilt by installing
// the logged effects reaches the exact fingerprint of the original.
func TestInstallRoundTrip(t *testing.T) {
	b, _, _ := codecFixture(t)

	// Rebuild from the first snapshot-able moment: restore an empty twin from
	// nothing and install each entity's effects.
	blob := b.Snapshot()
	twin, err := Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	if twin.StateFingerprint() != b.StateFingerprint() {
		t.Fatal("snapshot restore does not reproduce the fingerprint")
	}

	// Effect install path: a new subject on b, mirrored onto twin via
	// InstallSubject + ImportGroups.
	sid, _, err := b.RegisterSubject("bob", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := b.Subject(sid)
	if err != nil {
		t.Fatal(err)
	}
	key, certDER, err := b.KeyFor(sid)
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.InstallSubject(*rec, key, certDER, b.AdminSerial()); err != nil {
		t.Fatal(err)
	}
	if twin.StateFingerprint() != b.StateFingerprint() {
		t.Fatal("install replay does not reproduce the fingerprint")
	}

	// Group-touching op: mirror structural change, then overwrite group state
	// from the effect blob.
	gid, err := b.Groups.CreateGroup("late-group")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddSubjectToGroup(sid, gid.ID()); err != nil {
		t.Fatal(err)
	}
	if err := twin.AddSubjectToGroup(sid, gid.ID()); err == nil {
		// twin has no such group yet; expected to fail before import
		t.Log("twin accepted unknown group (tolerated; groups imported next)")
	}
	if err := twin.ImportGroups(b.ExportGroups()); err != nil {
		t.Fatal(err)
	}
	if twin.StateFingerprint() != b.StateFingerprint() {
		t.Fatal("groups import does not reproduce the fingerprint")
	}
}
