package backend

import (
	"fmt"
	"sync"
	"sync/atomic"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/groups"
	"argus/internal/suite"
)

// Batch registration and provisioning. Bootstrapping a §VIII-scale crowd
// (10³ entities) sequentially is dominated by ECDSA key generation and
// certificate signing — embarrassingly parallel work. These entry points fan
// exactly that work across a worker pool while keeping everything observable
// deterministic:
//
//   - identifiers, certificate serials and churn accounting are assigned
//     serially in request order before any worker starts;
//   - workers write only to their own index, and results merge by index;
//   - all signature and certificate encodings are fixed-size (see
//     suite.SigningKey.Sign and cert.createSizedCert), so the provisioned
//     bundles are byte-structurally identical to the sequential path's — key
//     material differs (it is random either way), wire sizes and therefore
//     fixed-seed simulation transcripts do not.
//
// The Backend itself stays single-threaded: shared maps are only touched
// before the fan-out and after the merge.

// SubjectSpec describes one subject in a batch registration.
type SubjectSpec struct {
	Name  string
	Attrs attr.Set
}

// ObjectSpec describes one object in a batch registration.
type ObjectSpec struct {
	Name      string
	Level     Level
	Attrs     attr.Set
	Functions []string
}

// RegisterSubjects registers the given subjects like repeated RegisterSubject
// calls, running key generation and certificate issuance on up to `workers`
// goroutines (workers <= 1 is fully sequential). IDs return in spec order.
func (b *Backend) RegisterSubjects(specs []SubjectSpec, workers int) ([]cert.ID, error) {
	ids, keys, chains, err := b.registerBatch(len(specs), workers, cert.RoleSubject,
		func(i int) string { return specs[i].Name })
	if err != nil {
		return nil, err
	}
	for i, sp := range specs {
		b.keys[ids[i]] = keys[i]
		b.certs[ids[i]] = chains[i]
		b.subjects[ids[i]] = &SubjectRecord{ID: ids[i], Name: sp.Name, Attrs: sp.Attrs.Clone()}
		b.countChurn("register_subject", UpdateReport{})
	}
	return ids, nil
}

// RegisterObjects registers the given objects like repeated RegisterObject
// calls, parallelizing the per-entity crypto. IDs return in spec order.
func (b *Backend) RegisterObjects(specs []ObjectSpec, workers int) ([]cert.ID, error) {
	for _, sp := range specs {
		if !sp.Level.Valid() {
			return nil, fmt.Errorf("%w: %d", ErrInvalidLevel, int(sp.Level))
		}
	}
	ids, keys, chains, err := b.registerBatch(len(specs), workers, cert.RoleObject,
		func(i int) string { return specs[i].Name })
	if err != nil {
		return nil, err
	}
	for i, sp := range specs {
		b.keys[ids[i]] = keys[i]
		b.certs[ids[i]] = chains[i]
		b.objects[ids[i]] = &ObjectRecord{
			ID: ids[i], Name: sp.Name, Level: sp.Level,
			Attrs:     sp.Attrs.Clone(),
			Functions: append([]string(nil), sp.Functions...),
			covert:    make(map[groups.ID][]string),
			revoked:   make(map[cert.ID]bool),
		}
		b.countChurn("register_object", UpdateReport{NotifiedObjects: []cert.ID{ids[i]}})
	}
	return ids, nil
}

// registerBatch performs the shared crypto fan-out: duplicate checks and ID
// derivation serially up front, then parallel key generation, then batch
// certificate issuance (which reserves serials in index order itself).
// Nothing is written to Backend state — callers merge on success.
func (b *Backend) registerBatch(n, workers int, role cert.Role, name func(int) string) ([]cert.ID, []*suite.SigningKey, [][]byte, error) {
	ids := make([]cert.ID, n)
	seen := make(map[cert.ID]bool, n)
	for i := 0; i < n; i++ {
		id := cert.IDFromName(name(i))
		if _, dup := b.keys[id]; dup || seen[id] {
			return nil, nil, nil, fmt.Errorf("%w: %q", ErrDuplicate, name(i))
		}
		seen[id] = true
		ids[i] = id
	}
	keys := make([]*suite.SigningKey, n)
	if err := forEachIndex(n, workers, func(i int) error {
		key, err := suite.GenerateSigningKey(b.strength, nil)
		keys[i] = key
		return err
	}); err != nil {
		return nil, nil, nil, err
	}
	reqs := make([]cert.CertRequest, n)
	for i := 0; i < n; i++ {
		reqs[i] = cert.CertRequest{ID: ids[i], Name: name(i), Role: role, Pub: keys[i].Public()}
	}
	chains, err := b.admin.IssueCertChainBatch(reqs, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	return ids, keys, chains, nil
}

// ProvisionObjects assembles the credential bundles of many objects on up to
// `workers` goroutines, returning them in id order. Safe because
// ProvisionObject only reads shared backend state (records, policies, group
// memberships — object-side membership lookups create nothing) and profile
// signing uses the immutable admin key; each worker writes its own index.
//
// On a sharded backend (WithShards) the batch is partitioned by ShardOf and
// each cell/building shard gets its own worker pool, all pools running
// concurrently — PROF-variant compilation for one building never queues
// behind another's. Output order stays the input id order either way.
func (b *Backend) ProvisionObjects(ids []cert.ID, workers int) ([]*ObjectProvision, error) {
	out := make([]*ObjectProvision, len(ids))
	provision := func(i int) error {
		p, err := b.ProvisionObject(ids[i])
		out[i] = p
		return err
	}
	if b.shards <= 1 {
		if err := forEachIndex(len(ids), workers, provision); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := b.forEachShard(ids, workers, provision); err != nil {
		return nil, err
	}
	return out, nil
}

// forEachShard partitions ids by ShardOf and runs fn over each partition on
// its own worker pool, all shards concurrently. The per-shard pools split
// the worker budget so total parallelism stays ≈ workers; every shard gets
// at least one. The first error (by shard, then index) wins.
func (b *Backend) forEachShard(ids []cert.ID, workers int, fn func(i int) error) error {
	byShard := make([][]int, b.shards)
	for i, id := range ids {
		s := b.ShardOf(id)
		byShard[s] = append(byShard[s], i)
	}
	perShard := workers / b.shards
	if perShard < 1 {
		perShard = 1
	}
	errs := make([]error, b.shards)
	var wg sync.WaitGroup
	for s, idx := range byShard {
		if len(idx) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idx []int) {
			defer wg.Done()
			errs[s] = forEachIndex(len(idx), perShard, func(k int) error {
				return fn(idx[k])
			})
		}(s, idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachIndex runs fn(0..n-1) on up to `workers` goroutines (sequentially
// for workers <= 1) and returns the first error by index order. Mirrors the
// unexported helper in internal/cert.
func forEachIndex(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
