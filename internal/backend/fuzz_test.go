package backend

import (
	"bytes"
	"testing"

	"argus/internal/attr"
	"argus/internal/suite"
)

// fuzzSeedSnapshot builds a small but fully populated enterprise — subjects
// (one revoked), objects at all three levels, a covert service, policies,
// group membership, issued credentials — and returns its snapshot, the
// richest valid input the fuzzer can mutate from.
func fuzzSeedSnapshot(f *testing.F) []byte {
	f.Helper()
	b, err := New(suite.S128)
	if err != nil {
		f.Fatalf("New: %v", err)
	}
	b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='device'"), []string{"use"})
	g, err := b.Groups.CreateGroup("fuzz circle")
	if err != nil {
		f.Fatal(err)
	}
	alice, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		f.Fatal(err)
	}
	if err := b.AddSubjectToGroup(alice, g.ID()); err != nil {
		f.Fatal(err)
	}
	bob, _, err := b.RegisterSubject("bob", attr.MustSet("position=staff"))
	if err != nil {
		f.Fatal(err)
	}
	b.RegisterObject("thermo", L1, attr.MustSet("type=device"), []string{"read"})
	b.RegisterObject("printer", L2, attr.MustSet("type=device"), []string{"print"})
	kiosk, _, err := b.RegisterObject("kiosk", L3, attr.MustSet("type=device"), []string{"use"})
	if err != nil {
		f.Fatal(err)
	}
	if err := b.AddCovertService(kiosk, g.ID(), []string{"use", "covert"}); err != nil {
		f.Fatal(err)
	}
	if _, err := b.ProvisionSubject(alice); err != nil {
		f.Fatal(err)
	}
	if _, err := b.RevokeSubject(bob); err != nil {
		f.Fatal(err)
	}
	return b.Snapshot()
}

// FuzzRestore holds the snapshot decoder to its contract: arbitrary input
// must either restore cleanly or return an error — never panic, never hang,
// never allocate absurdly off a forged length prefix. A successful restore
// must additionally survive re-snapshotting and restore again to the same
// bytes (the decoder's output is always re-encodable).
func FuzzRestore(f *testing.F) {
	seed := fuzzSeedSnapshot(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{snapshotVersion})
	f.Add(seed[:len(seed)/2]) // truncated mid-structure
	for _, off := range []int{0, 1, 3, len(seed) / 4, len(seed) / 2, len(seed) - 1} {
		mut := append([]byte(nil), seed...)
		mut[off] ^= 0xFF
		f.Add(mut)
	}
	// Forged section counts: stamp huge values over the length fields near
	// the front so count-validation paths get seeded too.
	forged := append([]byte(nil), seed...)
	for i := 3; i < 40 && i < len(forged); i++ {
		forged[i] = 0xFF
	}
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Restore(data)
		if err != nil {
			return // malformed input rejected cleanly: the contract held
		}
		// Valid input: the decoded state must re-encode deterministically.
		blob := b.Snapshot()
		b2, err := Restore(blob)
		if err != nil {
			t.Fatalf("re-restore of re-snapshot failed: %v", err)
		}
		if !bytes.Equal(blob, b2.Snapshot()) {
			t.Fatal("snapshot not a fixed point across restore")
		}
	})
}
