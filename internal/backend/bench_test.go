package backend

import (
	"fmt"
	"testing"

	"argus/internal/attr"
	"argus/internal/suite"
)

// BenchmarkSnapshotRestore measures persistence of a populated backend.
func BenchmarkSnapshotRestore(b *testing.B) {
	bk, err := New(suite.S128)
	if err != nil {
		b.Fatal(err)
	}
	bk.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='lock'"), []string{"open"})
	for i := 0; i < 20; i++ {
		bk.RegisterObject(fmt.Sprintf("o%02d", i), L2, attr.MustSet("type=lock"), []string{"open"})
		bk.RegisterSubject(fmt.Sprintf("s%02d", i), attr.MustSet("position=staff"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := bk.Snapshot()
		if _, err := Restore(blob); err != nil {
			b.Fatal(err)
		}
	}
}
