// Package backend implements the enterprise backend of §IV-A: the (logically
// hierarchical) trusted authority at which every subject and object registers
// out of band. It maintains the access-control policy database, compiles
// per-object PROF variants, manages secret groups, and issues each entity its
// private key, CERT and PROFs.
//
// The backend is also where churn lands (§II-C item 4, §VIII): adding or
// removing subjects, objects and policies. Every mutating operation returns
// an UpdateReport counting the ground-network entities that must be notified
// — the updating overhead that Table I compares across Argus, ID-based ACL
// and ABE.
package backend

import (
	"fmt"
	"sort"
	"time"

	"argus/internal/attr"
	"argus/internal/cert"
	"argus/internal/groups"
	"argus/internal/obs"
	"argus/internal/suite"
)

// Level is an object's secrecy level (§IV-A). It is assigned by the admin and
// the object "must keep that to itself" — it never appears in any credential
// or wire message.
type Level int

// The three visibility levels.
const (
	L1 Level = 1 // public: identical service information for everyone
	L2 Level = 2 // differentiated: visibility by non-sensitive attributes
	L3 Level = 3 // covert: visibility by sensitive attributes, hidden in L2
)

// String implements fmt.Stringer.
func (l Level) String() string { return fmt.Sprintf("Level %d", int(l)) }

// Valid reports whether l is a defined level.
func (l Level) Valid() bool { return l >= L1 && l <= L3 }

// DefaultProfileSize is the padded size of every issued PROF body, matching
// the paper's ~200 B average (§IX-A). Variants of one object are padded
// further, to the object's maximum, for constant-RES2-length (§VI-B).
const DefaultProfileSize = 200

// Policy is one attribute-based access-control rule (§II-B):
//
//	[subject: position=='manager'; object: type=='door lock'; rights: {open}]
//
// Subjects matching Subject may discover, on objects matching Object, a PROF
// variant exposing Rights.
type Policy struct {
	ID      uint64
	Subject *attr.Predicate // predicate over subjects' non-sensitive attributes
	Object  *attr.Predicate // predicate selecting the governed objects
	Rights  []string        // the service functions made visible
}

// SubjectRecord is the backend's view of a registered subject.
type SubjectRecord struct {
	ID      cert.ID
	Name    string
	Attrs   attr.Set // non-sensitive
	Revoked bool
}

// ObjectRecord is the backend's view of a registered object.
type ObjectRecord struct {
	ID        cert.ID
	Name      string
	Level     Level
	Attrs     attr.Set
	Functions []string // the full function set the object implements
	// covert maps each secret group the object serves to the covert service
	// functions offered to that group's fellows (Level 3 only).
	covert map[groups.ID][]string
	// revoked is the object's local list of de-authorized subject IDs,
	// maintained by backend notifications (§VIII: "remove ID_S from their
	// ACLs and refuse her future discovery").
	revoked map[cert.ID]bool
}

// UpdateReport quantifies the ground-network propagation cost of one backend
// mutation: which entities had to be notified or re-keyed. Its Total is the
// "updating overhead" metric of §VIII.
type UpdateReport struct {
	// NotifiedObjects had to update local state (ACL entries, PROF variants).
	NotifiedObjects []cert.ID
	// NotifiedSubjects had to receive new credentials or keys.
	NotifiedSubjects []cert.ID
}

// Total returns the number of affected ground entities.
func (r UpdateReport) Total() int { return len(r.NotifiedObjects) + len(r.NotifiedSubjects) }

// Backend is the in-memory enterprise backend.
type Backend struct {
	admin *cert.Admin
	// anchor is the ROOT trust anchor loaded onto devices. For a root backend
	// it is the admin's own CA cert; for a subordinate backend (§II-A
	// hierarchy) it is the parent hierarchy's root, so devices provisioned
	// anywhere in the enterprise authenticate each other.
	anchor   []byte
	strength suite.Strength
	Groups   *groups.Manager

	subjects map[cert.ID]*SubjectRecord
	objects  map[cert.ID]*ObjectRecord
	policies map[uint64]*Policy
	nextPol  uint64

	keys      map[cert.ID]*suite.SigningKey // issued private keys (escrow for re-provisioning)
	certs     map[cert.ID][]byte
	profSizes int

	// shards is the cell/building partition count: batch provisioning and
	// policy recompilation run one worker pool per shard (parallel.go), and
	// the service layer fans churn fan-out across shards. 1 = unsharded.
	shards int
	now    func() time.Time // profile-validity clock; nil = time.Now

	reg *obs.Registry // optional churn telemetry; nil = off
}

// Option customizes New and NewSubordinate, mirroring the functional-options
// style of internal/core.
type Option func(*Backend)

// WithTelemetry attaches a metrics registry: every churn operation is
// counted (argus_backend_churn_ops_total by op, and the notified ground
// entities behind Table I's updating overhead as
// argus_backend_notified_total by kind).
func WithTelemetry(reg *obs.Registry) Option { return func(b *Backend) { b.reg = reg } }

// WithClock overrides the profile-validity clock (issuance and expiry
// stamps on provisioned PROFs). Tests and WAL replay use a fixed clock so
// re-provisioned credentials are byte-identical.
func WithClock(now func() time.Time) Option { return func(b *Backend) { b.now = now } }

// WithShards partitions the backend's entity space into n cell/building
// shards (ShardOf). Batch provisioning and recompilation then run one
// worker pool per shard concurrently. Values < 1 keep the single-shard
// default.
func WithShards(n int) Option {
	return func(b *Backend) {
		if n >= 1 {
			b.shards = n
		}
	}
}

// countChurn records one churn operation and its propagation fan-out. The
// backend is not a hot path, so handles are resolved per call (the registry
// deduplicates); with no registry attached this is a nil-receiver no-op
// inside the obs package.
func (b *Backend) countChurn(op string, rep UpdateReport) {
	if b.reg == nil {
		return
	}
	b.reg.Counter(obs.MBackendChurnOps, "Backend churn operations, by kind.", obs.L("op", op)).Inc()
	b.reg.Counter(obs.MBackendNotified, "Ground entities notified by churn operations, by kind.",
		obs.L("kind", "object")).Add(int64(len(rep.NotifiedObjects)))
	b.reg.Counter(obs.MBackendNotified, "Ground entities notified by churn operations, by kind.",
		obs.L("kind", "subject")).Add(int64(len(rep.NotifiedSubjects)))
}

// newBackend builds the shared skeleton and applies options.
func newBackend(admin *cert.Admin, anchor []byte, s suite.Strength, opts []Option) *Backend {
	b := &Backend{
		admin:     admin,
		anchor:    anchor,
		strength:  s,
		Groups:    groups.NewManager(nil),
		subjects:  make(map[cert.ID]*SubjectRecord),
		objects:   make(map[cert.ID]*ObjectRecord),
		policies:  make(map[uint64]*Policy),
		nextPol:   1,
		keys:      make(map[cert.ID]*suite.SigningKey),
		certs:     make(map[cert.ID][]byte),
		profSizes: DefaultProfileSize,
		shards:    1,
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// New creates a backend with a fresh admin identity at the given strength.
func New(s suite.Strength, opts ...Option) (*Backend, error) {
	admin, err := cert.NewAdmin(s, "Argus Admin")
	if err != nil {
		return nil, err
	}
	return newBackend(admin, admin.CACert(), s, opts), nil
}

// NewSubordinate creates a sub-backend (e.g. one building's server in the
// §II-A hierarchy): its admin key is certified by this backend's admin, and
// the credentials it issues carry the CA chain, so devices holding the root
// anchor verify them without knowing the sub-backend. Registries, policies
// and secret groups are per-sub-backend.
func (b *Backend) NewSubordinate(name string, opts ...Option) (*Backend, error) {
	sub, err := b.admin.NewSubordinate(name)
	if err != nil {
		return nil, err
	}
	return newBackend(sub, append([]byte(nil), b.anchor...), b.strength, opts), nil
}

// Admin exposes the signing authority (for test fixtures).
func (b *Backend) Admin() *cert.Admin { return b.admin }

// Strength returns the deployment's security strength.
func (b *Backend) Strength() suite.Strength { return b.strength }

// AdminPublic returns K_admin^pub, loaded onto every device.
func (b *Backend) AdminPublic() suite.PublicKey { return b.admin.Public() }

// CACert returns the ROOT trust-anchor certificate (DER) loaded onto
// devices — the hierarchy root, not necessarily this backend's own CA.
func (b *Backend) CACert() []byte { return append([]byte(nil), b.anchor...) }

// Shards returns the configured cell/building shard count.
func (b *Backend) Shards() int { return b.shards }

// ShardOf maps an entity to its cell/building shard: a stable hash of the
// ID, so assignment survives restarts and is identical on every replica.
func (b *Backend) ShardOf(id cert.ID) int {
	if b.shards <= 1 {
		return 0
	}
	// IDs are SHA-256-derived (cert.IDFromName), so the first bytes are
	// already uniform.
	h := uint64(id[0])<<24 | uint64(id[1])<<16 | uint64(id[2])<<8 | uint64(id[3])
	return int(h % uint64(b.shards))
}

func (b *Backend) register(name string, role cert.Role) (cert.ID, error) {
	id := cert.IDFromName(name)
	if _, dup := b.keys[id]; dup {
		return cert.ID{}, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	key, err := suite.GenerateSigningKey(b.strength, nil)
	if err != nil {
		return cert.ID{}, err
	}
	der, err := b.admin.IssueCertChain(id, name, role, key.Public())
	if err != nil {
		return cert.ID{}, err
	}
	b.keys[id] = key
	b.certs[id] = der
	return id, nil
}

// RegisterSubject registers a new subject with the given non-sensitive
// attributes and issues her credentials. Per Table I ("Add a subject"), the
// returned report is empty: a newcomer only contacts the backend once for her
// attribute profile; no object needs updating (overhead 1 at the backend,
// 0 on the ground).
func (b *Backend) RegisterSubject(name string, attrs attr.Set) (cert.ID, UpdateReport, error) {
	id, err := b.register(name, cert.RoleSubject)
	if err != nil {
		return cert.ID{}, UpdateReport{}, err
	}
	b.subjects[id] = &SubjectRecord{ID: id, Name: name, Attrs: attrs.Clone()}
	b.countChurn("register_subject", UpdateReport{})
	return id, UpdateReport{}, nil
}

// RegisterObject registers a new object at the given level. Overhead: only
// the new object itself is provisioned.
func (b *Backend) RegisterObject(name string, level Level, attrs attr.Set, functions []string) (cert.ID, UpdateReport, error) {
	if !level.Valid() {
		return cert.ID{}, UpdateReport{}, fmt.Errorf("%w: %d", ErrInvalidLevel, int(level))
	}
	id, err := b.register(name, cert.RoleObject)
	if err != nil {
		return cert.ID{}, UpdateReport{}, err
	}
	b.objects[id] = &ObjectRecord{
		ID: id, Name: name, Level: level,
		Attrs:     attrs.Clone(),
		Functions: append([]string(nil), functions...),
		covert:    make(map[groups.ID][]string),
		revoked:   make(map[cert.ID]bool),
	}
	rep := UpdateReport{NotifiedObjects: []cert.ID{id}}
	b.countChurn("register_object", rep)
	return id, rep, nil
}

// Subject returns the record for a registered subject.
func (b *Backend) Subject(id cert.ID) (*SubjectRecord, error) {
	s, ok := b.subjects[id]
	if !ok {
		return nil, fmt.Errorf("%w: subject %v", ErrNotFound, id)
	}
	return s, nil
}

// Object returns the record for a registered object.
func (b *Backend) Object(id cert.ID) (*ObjectRecord, error) {
	o, ok := b.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: object %v", ErrNotFound, id)
	}
	return o, nil
}

// Objects returns all registered object IDs in stable order.
func (b *Backend) Objects() []cert.ID {
	ids := make([]cert.ID, 0, len(b.objects))
	for id := range b.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// AddPolicy installs a Level 2 policy and recompiles the PROF variants of the
// β objects it governs. The report lists those objects (§VIII: "to add/remove
// an object/policy, mostly just ... the objects mentioned in that policy
// should be updated, thus the overhead is 1 or β").
func (b *Backend) AddPolicy(subjectPred, objectPred *attr.Predicate, rights []string) (uint64, UpdateReport, error) {
	if subjectPred == nil || objectPred == nil {
		return 0, UpdateReport{}, fmt.Errorf("%w: policy predicates required", ErrBadPredicate)
	}
	p := &Policy{
		ID:      b.nextPol,
		Subject: subjectPred,
		Object:  objectPred,
		Rights:  append([]string(nil), rights...),
	}
	b.nextPol++
	b.policies[p.ID] = p
	rep := UpdateReport{NotifiedObjects: b.governedBy(p)}
	b.countChurn("add_policy", rep)
	return p.ID, rep, nil
}

// RemovePolicy deletes a policy; the report lists the objects whose variants
// change (overhead β).
func (b *Backend) RemovePolicy(id uint64) (UpdateReport, error) {
	p, ok := b.policies[id]
	if !ok {
		return UpdateReport{}, fmt.Errorf("%w: policy %d", ErrNotFound, id)
	}
	affected := b.governedBy(p)
	delete(b.policies, id)
	rep := UpdateReport{NotifiedObjects: affected}
	b.countChurn("remove_policy", rep)
	return rep, nil
}

// Policies returns all installed policies sorted by ID.
func (b *Backend) Policies() []*Policy {
	out := make([]*Policy, 0, len(b.policies))
	for _, p := range b.policies {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// governedBy returns the objects matched by a policy's object predicate, in
// stable order.
func (b *Backend) governedBy(p *Policy) []cert.ID {
	var ids []cert.ID
	for id, o := range b.objects {
		if o.Level != L1 && p.Object.Eval(o.Attrs) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// AccessibleObjects returns the IDs of the Level 2/3 objects a subject can
// currently discover under at least one policy — the N of §VIII.
func (b *Backend) AccessibleObjects(subject cert.ID) ([]cert.ID, error) {
	s, err := b.Subject(subject)
	if err != nil {
		return nil, err
	}
	seen := make(map[cert.ID]bool)
	for _, p := range b.policies {
		if !p.Subject.Eval(s.Attrs) {
			continue
		}
		for _, oid := range b.governedBy(p) {
			seen[oid] = true
		}
	}
	ids := make([]cert.ID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids, nil
}

// mergeSortedIDs unions k ascending cert.ID lists into one ascending,
// deduplicated list. The one-list case (an entity in a single secret group —
// the norm) is a plain clone.
func mergeSortedIDs(lists [][]cert.ID) []cert.ID {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]cert.ID(nil), lists[0]...)
	}
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]cert.ID, 0, n)
	idx := make([]int, len(lists))
	for {
		best := -1
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if best < 0 || l[idx[i]].Less(lists[best][idx[best]]) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		next := lists[best][idx[best]]
		idx[best]++
		if len(out) == 0 || out[len(out)-1] != next {
			out = append(out, next)
		}
	}
}

// RevokeSubject removes a subject from the system. Per Table I ("Rmv a
// subject": overhead N), the backend notifies every object the subject could
// access to blacklist her ID, and rotates the keys of every secret group she
// belonged to (γ−1 fellows each, §VIII "Level 1 & 3 Scalability").
func (b *Backend) RevokeSubject(id cert.ID) (UpdateReport, error) {
	s, err := b.Subject(id)
	if err != nil {
		return UpdateReport{}, err
	}
	if s.Revoked {
		return UpdateReport{}, fmt.Errorf("%w: subject %v already revoked", ErrRevoked, id)
	}
	accessible, err := b.AccessibleObjects(id)
	if err != nil {
		return UpdateReport{}, err
	}
	var report UpdateReport
	for _, oid := range accessible {
		b.objects[oid].revoked[id] = true
		report.NotifiedObjects = append(report.NotifiedObjects, oid)
	}
	// Rotate the subject's secret groups. RemoveMember returns each group's
	// surviving fellows already sorted, so the union is a k-way sorted merge
	// (k = the subject's group count, usually 1) — no set, no re-sort: with
	// bulk revocation the per-removal re-sort of γ fellows was the single
	// hottest non-crypto path in the churn profile.
	var rekeyedLists [][]cert.ID
	for _, gid := range b.Groups.Groups() {
		if !b.Groups.IsMember(gid, id) {
			continue
		}
		rekeyed, err := b.Groups.RemoveMember(gid, id)
		if err != nil {
			return UpdateReport{}, err
		}
		if len(rekeyed) > 0 {
			rekeyedLists = append(rekeyedLists, rekeyed)
		}
	}
	report.NotifiedSubjects = mergeSortedIDs(rekeyedLists)
	s.Revoked = true
	b.countChurn("revoke_subject", report)
	return report, nil
}

// UpdateSubjectAttrs changes a subject's non-sensitive attributes —
// promotion, demotion or rotation (§II-C item 4). The subject needs a fresh
// PROF from the backend; objects evaluate predicates against the presented
// PROF at discovery time, so none of them needs updating UNLESS the change
// shrinks her access: objects she could previously discover but no longer
// matches must blacklist her old PROF by ID until it expires. The report
// lists exactly those objects.
func (b *Backend) UpdateSubjectAttrs(id cert.ID, attrs attr.Set) (UpdateReport, error) {
	s, err := b.Subject(id)
	if err != nil {
		return UpdateReport{}, err
	}
	if s.Revoked {
		return UpdateReport{}, fmt.Errorf("%w: subject %v", ErrRevoked, id)
	}
	before, err := b.AccessibleObjects(id)
	if err != nil {
		return UpdateReport{}, err
	}
	s.Attrs = attrs.Clone()
	after, err := b.AccessibleObjects(id)
	if err != nil {
		return UpdateReport{}, err
	}
	stillVisible := make(map[cert.ID]bool, len(after))
	for _, oid := range after {
		stillVisible[oid] = true
	}
	var report UpdateReport
	for _, oid := range before {
		if !stillVisible[oid] {
			// The old signed PROF would still match this object's predicate;
			// blacklist the subject until the PROF expires and she presents
			// the re-issued one.
			b.objects[oid].revoked[id] = true
			report.NotifiedObjects = append(report.NotifiedObjects, oid)
		}
	}
	b.countChurn("update_subject_attrs", report)
	return report, nil
}

// Reinstate clears a subject's ID from an object's blacklist (used after the
// subject provably holds a fresh PROF, e.g. post-demotion re-issue).
func (b *Backend) Reinstate(object, subject cert.ID) error {
	o, err := b.Object(object)
	if err != nil {
		return err
	}
	delete(o.revoked, subject)
	return nil
}

// UpdateObjectAttrs changes an object's non-sensitive attributes (device
// reconfiguration or relocation). Only the object itself needs re-provision:
// its PROF variants are recompiled from the policies its new attributes
// match (overhead 1, §VIII).
func (b *Backend) UpdateObjectAttrs(id cert.ID, attrs attr.Set) (UpdateReport, error) {
	o, err := b.Object(id)
	if err != nil {
		return UpdateReport{}, err
	}
	o.Attrs = attrs.Clone()
	rep := UpdateReport{NotifiedObjects: []cert.ID{id}}
	b.countChurn("update_object_attrs", rep)
	return rep, nil
}

// RemoveObject decommissions an object (overhead 1).
func (b *Backend) RemoveObject(id cert.ID) (UpdateReport, error) {
	if _, ok := b.objects[id]; !ok {
		return UpdateReport{}, fmt.Errorf("%w: object %v", ErrNotFound, id)
	}
	delete(b.objects, id)
	rep := UpdateReport{NotifiedObjects: []cert.ID{id}}
	b.countChurn("remove_object", rep)
	return rep, nil
}

// AddCovertService puts an object into a secret group and defines the covert
// functions it offers fellows of that group (§IV-A Level 3: the object gets
// one PROF variant per secret group).
func (b *Backend) AddCovertService(object cert.ID, gid groups.ID, functions []string) error {
	o, err := b.Object(object)
	if err != nil {
		return err
	}
	if o.Level != L3 {
		return fmt.Errorf("%w: %s is %v, not Level 3", ErrNotCovert, o.Name, o.Level)
	}
	if err := b.Groups.AddMember(gid, object, cert.RoleObject); err != nil {
		return err
	}
	o.covert[gid] = append([]string(nil), functions...)
	return nil
}

// AddSubjectToGroup puts a subject into a secret group (her sensitive
// attribute was verified out of band, e.g. student S showing his diagnosis,
// §IV-A).
func (b *Backend) AddSubjectToGroup(subject cert.ID, gid groups.ID) error {
	if _, err := b.Subject(subject); err != nil {
		return err
	}
	return b.Groups.AddMember(gid, subject, cert.RoleSubject)
}

// RevokedFor returns the revocation entries an object must enforce.
func (b *Backend) RevokedFor(object cert.ID) ([]cert.ID, error) {
	o, err := b.Object(object)
	if err != nil {
		return nil, err
	}
	ids := make([]cert.ID, 0, len(o.revoked))
	for id := range o.revoked {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids, nil
}

// profValidity returns the profile validity anchor from the backend's
// clock (WithClock; time.Now by default).
func (b *Backend) profValidity() (issued, expires time.Time) {
	now := time.Now
	if b.now != nil {
		now = b.now
	}
	n := now().Truncate(time.Second).UTC()
	return n, n.Add(365 * 24 * time.Hour)
}
