package baseline

import (
	"bytes"
	"testing"

	"argus/internal/abe"
	"argus/internal/netsim"
	"argus/internal/pbc"
)

func TestABEDiscoveryAuthorized(t *testing.T) {
	pk, mk, err := abe.Setup()
	if err != nil {
		t.Fatal(err)
	}
	profile := []byte("multimedia station: play, record")
	v, err := EncryptVariant(pk, abe.And(abe.Leaf("position:staff"), abe.Leaf("department:X")), profile)
	if err != nil {
		t.Fatal(err)
	}

	net := netsim.New(netsim.DefaultWiFi(), 1)
	sk, _ := abe.KeyGen(pk, mk, []string{"position:staff", "department:X"})
	subj := &ABESubject{PK: pk, SK: sk}
	sn := net.AddNode(subj)
	subj.Attach(sn)
	obj := &ABEObject{Variants: []ABEVariant{v}}
	on := net.AddNode(obj)
	obj.Attach(on)
	net.Link(sn, on)

	subj.Discover(net, 1)
	net.Run(0)
	if len(subj.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(subj.Results))
	}
	if !bytes.Equal(subj.Results[0].Profile, profile) {
		t.Fatal("recovered profile differs")
	}
	if subj.Results[0].At <= 0 {
		t.Fatal("decryption cost not charged to virtual clock")
	}
}

func TestABEDiscoveryUnauthorized(t *testing.T) {
	pk, mk, err := abe.Setup()
	if err != nil {
		t.Fatal(err)
	}
	v, err := EncryptVariant(pk, abe.Leaf("position:manager"), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(netsim.DefaultWiFi(), 1)
	sk, _ := abe.KeyGen(pk, mk, []string{"position:staff"})
	subj := &ABESubject{PK: pk, SK: sk}
	sn := net.AddNode(subj)
	subj.Attach(sn)
	obj := &ABEObject{Variants: []ABEVariant{v}}
	on := net.AddNode(obj)
	obj.Attach(on)
	net.Link(sn, on)

	subj.Discover(net, 1)
	net.Run(0)
	if len(subj.Results) != 0 {
		t.Fatalf("unauthorized subject decrypted %d variants", len(subj.Results))
	}
}

func TestPBCDiscoveryFellow(t *testing.T) {
	auth, err := pbc.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	profile := []byte("covert support service")
	net := netsim.New(netsim.DefaultWiFi(), 1)

	subj := &PBCSubject{Cred: auth.Issue("subject-S"), Candidates: []string{"kiosk-1"}}
	sn := net.AddNode(subj)
	subj.Attach(sn)
	obj := &PBCObject{Cred: auth.Issue("kiosk-1"), Profile: profile}
	on := net.AddNode(obj)
	obj.Attach(on)
	net.Link(sn, on)

	if err := subj.Discover(net, 1); err != nil {
		t.Fatal(err)
	}
	net.Run(0)
	if len(subj.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(subj.Results))
	}
	if !bytes.Equal(subj.Results[0].Profile, profile) {
		t.Fatal("recovered profile differs")
	}
	// One pairing per side ⇒ virtual completion well above the link latency.
	if subj.Results[0].At < 100*1e6 {
		t.Fatalf("completion at %v — pairing cost apparently not charged", subj.Results[0].At)
	}
}

func TestPBCDiscoveryOutsiderFails(t *testing.T) {
	authA, _ := pbc.NewAuthority()
	authB, _ := pbc.NewAuthority() // different community
	net := netsim.New(netsim.DefaultWiFi(), 1)

	subj := &PBCSubject{Cred: authB.Issue("outsider"), Candidates: []string{"kiosk-1"}}
	sn := net.AddNode(subj)
	subj.Attach(sn)
	obj := &PBCObject{Cred: authA.Issue("kiosk-1"), Profile: []byte("covert")}
	on := net.AddNode(obj)
	obj.Attach(on)
	net.Link(sn, on)

	subj.Discover(net, 1)
	net.Run(0)
	if len(subj.Results) != 0 {
		t.Fatalf("outsider discovered %d covert services", len(subj.Results))
	}
}

func TestPBCAddressedProbes(t *testing.T) {
	// A probe addressed to kiosk-1 must not cost kiosk-2 a pairing, and
	// kiosk-2 must not answer it.
	auth, _ := pbc.NewAuthority()
	net := netsim.New(netsim.DefaultWiFi(), 1)
	subj := &PBCSubject{Cred: auth.Issue("s"), Candidates: []string{"kiosk-1"}}
	sn := net.AddNode(subj)
	subj.Attach(sn)
	o1 := &PBCObject{Cred: auth.Issue("kiosk-1"), Profile: []byte("p1")}
	n1 := net.AddNode(o1)
	o1.Attach(n1)
	net.Link(sn, n1)
	o2 := &PBCObject{Cred: auth.Issue("kiosk-2"), Profile: []byte("p2")}
	n2 := net.AddNode(o2)
	o2.Attach(n2)
	net.Link(sn, n2)

	subj.Discover(net, 1)
	net.Run(0)
	if len(subj.Results) != 1 || subj.Results[0].PeerID != "kiosk-1" {
		t.Fatalf("results = %+v, want kiosk-1 only", subj.Results)
	}
}

func TestMalformedBaselineTraffic(t *testing.T) {
	pk, mk, _ := abe.Setup()
	sk, _ := abe.KeyGen(pk, mk, nil)
	net := netsim.New(netsim.DefaultWiFi(), 1)
	subj := &ABESubject{PK: pk, SK: sk}
	sn := net.AddNode(subj)
	subj.Attach(sn)
	// Garbage and wrong-magic payloads are ignored without panics.
	for _, p := range [][]byte{nil, {0xFF}, {abeResponseMagic}, {abeResponseMagic, 0, 5, 1, 2}} {
		subj.HandleMessage(net, 0, p)
	}
	if len(subj.Results) != 0 {
		t.Fatal("garbage produced results")
	}

	auth, _ := pbc.NewAuthority()
	obj := &PBCObject{Cred: auth.Issue("o"), Profile: []byte("p")}
	on := net.AddNode(obj)
	obj.Attach(on)
	for _, p := range [][]byte{nil, {0xEE}, {pbcQueryMagic, 0, 1}} {
		obj.HandleMessage(net, sn, p)
	}
}
