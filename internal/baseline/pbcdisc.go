package baseline

import (
	"time"

	"argus/internal/enc"
	"argus/internal/netsim"
	"argus/internal/pbc"
	"argus/internal/suite"
)

// PBC-based Level 3 discovery, adapted from MASHaBLE-style secret handshakes
// (§IX): subject and object hold SOK credentials from the community
// authority; each derives the pairwise key with ONE PAIRING and proves
// possession via HMAC. The object returns the covert profile encrypted under
// the pairwise key. Every peer interaction costs a pairing on each side —
// the structural weakness Fig 6(d) quantifies.

// PBCObject is a community member serving a covert profile.
type PBCObject struct {
	node    netsim.NodeID
	Cred    *pbc.Credential
	Profile []byte
}

// Attach records the object's network address.
func (o *PBCObject) Attach(node netsim.NodeID) { o.node = node }

// HandleMessage implements netsim.Handler: on query, derive the pairwise key
// (one pairing — measured and charged), verify the subject's proof, respond
// with proof + encrypted profile.
func (o *PBCObject) HandleMessage(net *netsim.Network, from netsim.NodeID, payload []byte) {
	if len(payload) == 0 || payload[0] != pbcQueryMagic {
		return
	}
	r := enc.NewReader(payload[1:])
	to := r.String16()
	peerID := r.String16()
	rs := r.Bytes16()
	proof := r.Bytes16()
	if r.Err() != nil || r.Remaining() != 0 {
		return
	}
	if to != o.Cred.ID {
		return // probe addressed to another candidate identity
	}

	start := time.Now()
	key := o.Cred.PairwiseKey(peerID) // one pairing
	elapsed := time.Since(start)

	transcript := append([]byte(peerID), rs...)
	if !pbc.Verify(key, transcript, proof) {
		// Not a fellow: silence. The failed verification still cost the
		// pairing — charge it.
		net.Compute(o.node, elapsed, func() {})
		return
	}
	ct, err := suite.EncryptProfile(key[:], o.Profile, nil)
	if err != nil {
		return
	}
	respTranscript := append(append([]byte(o.Cred.ID), transcript...), ct...)
	respProof := pbc.Prove(key, respTranscript)

	w := enc.NewWriter(128 + len(ct))
	w.U8(pbcResponseMagic)
	w.String16(o.Cred.ID)
	w.Bytes16(respProof)
	w.Bytes16(ct)
	net.Compute(o.node, elapsed, func() {
		net.Send(o.node, from, w.Bytes())
	})
}

// PBCDiscovery is one covert service found via secret handshake.
type PBCDiscovery struct {
	Node    netsim.NodeID
	PeerID  string
	Profile []byte
	At      time.Duration
}

// PBCSubject is the subject engine: it broadcasts a proof of community
// membership toward each known/candidate peer. Following MASHaBLE, peers are
// addressed by identity: the subject derives one pairwise key per candidate
// peer (one pairing each — the cost the paper contrasts with Argus's two
// HMACs).
type PBCSubject struct {
	node netsim.NodeID
	Cred *pbc.Credential
	// Candidates are the object identities to probe (MASHaBLE discovers
	// community members by identity set).
	Candidates []string

	rs      []byte
	keys    map[string][32]byte
	Results []PBCDiscovery
}

// Attach records the subject's network address.
func (s *PBCSubject) Attach(node netsim.NodeID) { s.node = node }

// Discover derives pairwise keys for all candidates (pairings, measured and
// charged) and broadcasts the proof.
func (s *PBCSubject) Discover(net *netsim.Network, ttl int) error {
	rs, err := suite.NewNonce(nil)
	if err != nil {
		return err
	}
	s.rs = rs
	s.keys = make(map[string][32]byte, len(s.Candidates))

	start := time.Now()
	for _, cand := range s.Candidates {
		s.keys[cand] = s.Cred.PairwiseKey(cand) // one pairing per candidate
	}
	elapsed := time.Since(start)

	net.Compute(s.node, elapsed, func() {
		for _, cand := range s.Candidates {
			key := s.keys[cand]
			transcript := append([]byte(s.Cred.ID), rs...)
			w := enc.NewWriter(128)
			w.U8(pbcQueryMagic)
			w.String16(cand) // addressed probe: only that identity pairs
			w.String16(s.Cred.ID)
			w.Bytes16(rs)
			w.Bytes16(pbc.Prove(key, transcript))
			net.Broadcast(s.node, w.Bytes(), ttl)
		}
	})
	return nil
}

// HandleMessage implements netsim.Handler.
func (s *PBCSubject) HandleMessage(net *netsim.Network, from netsim.NodeID, payload []byte) {
	if len(payload) == 0 || payload[0] != pbcResponseMagic {
		return
	}
	r := enc.NewReader(payload[1:])
	peerID := r.String16()
	proof := r.Bytes16()
	ct := r.Bytes16()
	if r.Err() != nil || r.Remaining() != 0 {
		return
	}
	key, ok := s.keys[peerID]
	if !ok {
		return
	}
	transcript := append([]byte(s.Cred.ID), s.rs...)
	respTranscript := append(append([]byte(peerID), transcript...), ct...)
	if !pbc.Verify(key, respTranscript, proof) {
		return
	}
	profile, err := suite.DecryptProfile(key[:], ct)
	if err != nil {
		return
	}
	s.Results = append(s.Results, PBCDiscovery{Node: from, PeerID: peerID, Profile: profile, At: net.Now()})
}
