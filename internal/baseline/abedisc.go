// Package baseline implements the two alternative discovery schemes the
// paper builds for comparison (§IX): Level 2 discovery on ciphertext-policy
// ABE, and Level 3 discovery on pairing-based secret handshakes (the
// MASHaBLE adaptation). Both run on the same ground-network simulator as
// Argus, with their *real* cryptographic cost injected into the virtual
// clock, so end-to-end discovery times are directly comparable
// (`argus-bench -exp comparison`).
package baseline

import (
	"errors"
	"time"

	"argus/internal/abe"
	"argus/internal/enc"
	"argus/internal/netsim"
	"argus/internal/suite"
)

// Message magic bytes: distinct from wire (1–4) and update (0xA5).
const (
	abeQueryMagic    byte = 0xB1
	abeResponseMagic byte = 0xB2
	pbcQueryMagic    byte = 0xB3
	pbcResponseMagic byte = 0xB4
)

// ABEObject is a Level 2 object under the ABE scheme: it holds its PROF
// variants pre-encrypted by the backend (one ciphertext per policy) and
// returns them to any query — access control is entirely in the ciphertext.
// Note the structural trade (§VIII): the object does no per-subject work and
// needs no revocation list, but revoking one subject forces the backend to
// re-encrypt everything the subject's attributes could open.
type ABEObject struct {
	node netsim.NodeID
	// Variants are the encrypted PROFs: ABE ciphertext plus the profile
	// encrypted under the KEM key.
	Variants []ABEVariant
}

// ABEVariant is one pre-encrypted profile.
type ABEVariant struct {
	CT      []byte // marshaled abe.Ciphertext (KEM)
	Payload []byte // suite.EncryptProfile(kemKey, PROF)
}

// EncryptVariant is the backend-side preparation: encapsulate a key under the
// policy and encrypt the profile with it.
func EncryptVariant(pk *abe.PublicKey, policy *abe.Policy, profile []byte) (ABEVariant, error) {
	ct, key, err := abe.Encrypt(pk, policy)
	if err != nil {
		return ABEVariant{}, err
	}
	ctBytes, err := ct.Marshal()
	if err != nil {
		return ABEVariant{}, err
	}
	payload, err := suite.EncryptProfile(key[:], profile, nil)
	if err != nil {
		return ABEVariant{}, err
	}
	return ABEVariant{CT: ctBytes, Payload: payload}, nil
}

// Attach records the object's network address.
func (o *ABEObject) Attach(node netsim.NodeID) { o.node = node }

// HandleMessage implements netsim.Handler: any query gets all variants
// (2-way discovery; the ciphertexts do the scoping).
func (o *ABEObject) HandleMessage(net *netsim.Network, from netsim.NodeID, payload []byte) {
	if len(payload) == 0 || payload[0] != abeQueryMagic {
		return
	}
	w := enc.NewWriter(256)
	w.U8(abeResponseMagic)
	w.U16(uint16(len(o.Variants)))
	for _, v := range o.Variants {
		w.Bytes32(v.CT)
		w.Bytes16(v.Payload)
	}
	// No object-side computation: ciphertexts were prepared by the backend.
	net.Send(o.node, from, w.Bytes())
}

// ABEDiscovery is one successful decryption at the subject.
type ABEDiscovery struct {
	Node    netsim.NodeID
	Profile []byte
	At      time.Duration
}

// ABESubject is the subject engine: broadcast a query, then attempt ABE
// decryption of every returned variant. The real decryption time is charged
// to the virtual clock — this is where the scheme loses (Fig 6c).
type ABESubject struct {
	node netsim.NodeID
	PK   *abe.PublicKey
	SK   *abe.PrivateKey

	Results []ABEDiscovery
}

// Attach records the subject's network address.
func (s *ABESubject) Attach(node netsim.NodeID) { s.node = node }

// Discover broadcasts the query.
func (s *ABESubject) Discover(net *netsim.Network, ttl int) {
	net.Broadcast(s.node, []byte{abeQueryMagic}, ttl)
}

// HandleMessage implements netsim.Handler.
func (s *ABESubject) HandleMessage(net *netsim.Network, from netsim.NodeID, payload []byte) {
	if len(payload) == 0 || payload[0] != abeResponseMagic {
		return
	}
	r := enc.NewReader(payload[1:])
	n := int(r.U16())
	for i := 0; i < n; i++ {
		ctBytes := r.Bytes32()
		encProf := r.Bytes16()
		if r.Err() != nil {
			return
		}
		profile, elapsed, err := s.tryDecrypt(ctBytes, encProf)
		if err != nil {
			// Unauthorized for this variant; the failed attempt still cost
			// real time (satisfiability is checked first, so mismatches are
			// cheap — mirroring real CP-ABE implementations).
			net.Compute(s.node, elapsed, func() {})
			continue
		}
		net.Compute(s.node, elapsed, func() {
			s.Results = append(s.Results, ABEDiscovery{Node: from, Profile: profile, At: net.Now()})
		})
	}
}

// tryDecrypt runs the real KEM decryption and measures it.
func (s *ABESubject) tryDecrypt(ctBytes, encProf []byte) (profile []byte, elapsed time.Duration, err error) {
	start := time.Now()
	defer func() { elapsed = time.Since(start) }()
	ct, err := abe.UnmarshalCiphertext(ctBytes)
	if err != nil {
		return nil, 0, err
	}
	key, err := abe.Decrypt(s.PK, s.SK, ct)
	if err != nil {
		return nil, 0, err
	}
	profile, err = suite.DecryptProfile(key[:], encProf)
	if err != nil {
		return nil, 0, errors.New("baseline: KEM key decrypts ABE but not payload")
	}
	return profile, 0, nil
}
