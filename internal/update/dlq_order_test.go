package update

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/transport/transporttest"
)

// TestDLQOfflineWindowInterleaving pins the wire contract across repeated
// offline windows: live pushes, parked pushes and redeliveries interleave
// into one strictly increasing sequence stream, each notification
// effectuating exactly once in push order.
func TestDLQOfflineWindowInterleaving(t *testing.T) {
	r := newDLQRig(t)

	push := func(k Kind) {
		t.Helper()
		var err error
		if k == KindRevokeSubject {
			err = r.dist.RevokeSubject(r.sid, []cert.ID{r.off})
		} else {
			err = r.dist.Reprovision([]cert.ID{r.off})
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	want := []Kind{KindReprovision, KindRevokeSubject, KindReprovision, KindReprovision, KindRevokeSubject}
	push(KindReprovision) // live
	r.dist.MarkOffline(r.off)
	push(KindRevokeSubject) // parked
	if got := r.dist.Reattach(r.off, ""); got != 1 {
		t.Fatalf("first reattach redelivered %d, want 1", got)
	}
	push(KindReprovision) // live again
	r.dist.MarkOffline(r.off)
	push(KindReprovision)   // parked
	push(KindRevokeSubject) // parked
	if got := r.dist.Reattach(r.off, ""); got != 2 {
		t.Fatalf("second reattach redelivered %d, want 2", got)
	}
	r.net.Run(0)

	if len(r.applied) != len(want) {
		t.Fatalf("applied %d notifications, want %d: seqs %v", len(r.applied), len(want), r.applied)
	}
	for i := 1; i < len(r.applied); i++ {
		if r.applied[i] <= r.applied[i-1] {
			t.Fatalf("sequence regressed on the wire: %v", r.applied)
		}
	}
	for i, k := range r.kinds {
		if k != want[i] {
			t.Fatalf("kind order = %v, want %v", r.kinds, want)
		}
	}
	if r.offAg.Rejected() != 0 {
		t.Fatalf("rejected = %d, want 0 (replay check fired on reordered delivery)", r.offAg.Rejected())
	}
	if got := r.dist.Redelivered(); got != 3 {
		t.Fatalf("redelivered = %d, want 3", got)
	}
}

// TestDLQConcurrentPushReattach is the regression for a wire-ordering bug:
// push used to release the distributor lock before handing the frame to the
// transport, so a concurrent push — or a MarkOffline/Reattach cycle, which
// redelivers under the lock — could put a higher sequence number on the wire
// first. The destination's replay check then silently dropped the stalled
// lower sequence: lost, not reordered. Hammering pushes against
// offline/reattach churn on the concurrent Mesh transport makes that
// interleaving likely; with sends issued under the lock, nothing is lost and
// the destination observes strictly increasing sequences.
func TestDLQConcurrentPushReattach(t *testing.T) {
	const (
		pushers   = 8
		perPusher = 150
		cycles    = 300
		total     = pushers * perPusher
	)

	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := b.RegisterObject("lock", backend.L2, attr.MustSet("type=lock"), []string{"open"})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	// Mailbox and DLQ capacity are sized to the run so neither backpressure
	// nor eviction can account for a missing notification.
	mesh := transport.NewMesh(transport.WithMailbox(total+64), transport.WithRegistry(reg))
	defer mesh.Close()

	var mu sync.Mutex
	var seqs []uint64
	agent := NewAgent(b.AdminPublic(), nil, func(n *Notification) {
		mu.Lock()
		seqs = append(seqs, n.Seq)
		mu.Unlock()
	})
	ep := mesh.Join()
	ep.Bind(agent)

	dist := NewDistributor(b.Admin(), mesh.Join(), WithDLQCapacity(total))
	dist.Instrument(reg)
	dist.Register(oid, ep.Addr())

	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < cycles; i++ {
			dist.MarkOffline(oid)
			runtime.Gosched()
			dist.Reattach(oid, "")
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPusher; i++ {
				if err := dist.Reprovision([]cert.ID{oid}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-churnDone
	dist.Reattach(oid, "") // flush anything parked in the final offline window

	applied := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(seqs)
	}
	transporttest.WaitUntil(t, 30*time.Second, func() bool { return applied() == total },
		"every pushed notification to effectuate")
	drops := ep.Drops()
	mesh.Close() // drain the actor loop so the agent's counters are settled

	if agent.Applied() != total || agent.Rejected() != 0 {
		t.Fatalf("applied/rejected = %d/%d, want %d/0 — a send raced a redelivery and was replay-dropped",
			agent.Applied(), agent.Rejected(), total)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("destination observed non-increasing sequences at %d: %d then %d", i, seqs[i-1], seqs[i])
		}
	}
	if got := dist.Sent(); got != total {
		t.Fatalf("sent = %d, want %d (live sends + redeliveries, nothing lost)", got, total)
	}
	if got := dist.DLQDepth(); got != 0 {
		t.Fatalf("DLQ depth = %d, want 0 after final reattach", got)
	}
	if v := counterValue(reg, obs.MUpdateDLQEvictions); v != 0 {
		t.Fatalf("evictions = %v, want 0 (capacity sized to the run)", v)
	}
	if drops != 0 {
		t.Fatalf("mailbox shed %d frames; accounting is untrustworthy", drops)
	}
}
