// Package update implements the backend→ground propagation path of §IV-A and
// §VIII: "changes on the backend may need to be immediately propagated to the
// ground network and effectuated on the affected subjects/objects, such that
// newly authorized subjects can discover services, or de-authorized subjects
// stop seeing previously visible services."
//
// The backend signs every notification with the admin key; devices verify the
// signature and a strictly increasing sequence number before applying it, so
// notifications cannot be forged or replayed even though they travel the same
// radios as discovery traffic. Per the §VII threat model the backend↔device
// channel is confidential; sensitive payloads (rotated group keys) are
// therefore carried symbolically — the device re-pulls its provision through
// the ApplyFunc callback, which models the secure channel.
//
// The Distributor's delivery counts are exactly the updating overhead of
// Table I, and the propagation experiment (`argus-bench -exp propagation`)
// measures how long revocation takes to *effectuate* across N objects.
package update

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"argus/internal/cert"
	"argus/internal/enc"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport"
)

// Kind enumerates notification types.
type Kind byte

const (
	// KindRevokeSubject tells an object to blacklist a subject ID.
	KindRevokeSubject Kind = 1
	// KindReprovision tells a device to refresh its credential bundle from
	// the backend (policy change, PROF-variant recompilation, group re-key).
	KindReprovision Kind = 2
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRevokeSubject:
		return "revoke-subject"
	case KindReprovision:
		return "reprovision"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// envelopeMagic distinguishes admin notifications from discovery messages on
// the shared radio. wire message types are 1–4; this byte cannot collide.
const envelopeMagic byte = 0xA5

// Notification is one admin-signed update.
type Notification struct {
	Kind    Kind
	Seq     uint64  // strictly increasing per deployment; replay protection
	Subject cert.ID // KindRevokeSubject: who to blacklist
	Sig     []byte
}

func (n *Notification) body() []byte {
	w := enc.NewWriter(32)
	w.U8(envelopeMagic)
	w.U8(byte(n.Kind))
	w.U64(n.Seq)
	w.Raw(n.Subject[:])
	return w.Bytes()
}

// Encode returns the signed wire form.
func (n *Notification) Encode() []byte {
	w := enc.NewWriter(64 + len(n.Sig))
	w.Raw(n.body())
	w.Bytes16(n.Sig)
	return w.Bytes()
}

// Decode parses a notification; it returns ok=false when the payload is not
// an update envelope at all (so callers can fall through to discovery
// handling), and an error when it is a malformed envelope.
func Decode(b []byte) (n *Notification, ok bool, err error) {
	if len(b) == 0 || b[0] != envelopeMagic {
		return nil, false, nil
	}
	r := enc.NewReader(b)
	r.U8() // magic
	n = &Notification{}
	n.Kind = Kind(r.U8())
	n.Seq = r.U64()
	copy(n.Subject[:], r.Raw(len(cert.ID{})))
	n.Sig = r.Bytes16()
	if err := r.Done(); err != nil {
		return nil, true, err
	}
	if n.Kind != KindRevokeSubject && n.Kind != KindReprovision {
		return nil, true, errors.New("update: unknown notification kind")
	}
	return n, true, nil
}

// Verify checks the admin signature.
func (n *Notification) Verify(adminPub suite.PublicKey) bool {
	return adminPub.Verify(n.body(), n.Sig)
}

// Agent wraps a device's discovery engine: it intercepts admin notifications
// (verify signature → check sequence → apply) and passes every other message
// through. It is a transport.Handler middleware: either install it as the
// endpoint handler directly (with inner set), or — the usual way — bind the
// engine to Wrap(ep) so the agent interposes transparently.
type Agent struct {
	adminPub suite.PublicKey
	inner    transport.Handler
	apply    func(*Notification)
	now      func() time.Duration
	lastSeq  uint64
	applied  int
	rejected int

	appliedC    *obs.Counter
	rejectedC   *obs.Counter
	propagation *obs.Histogram
	sentAt      func(seq uint64) (time.Duration, bool)
	vmemo       *suite.VerifyMemo // optional shared memo (see UseVerifyMemo)
}

// NewAgent builds an agent. apply is invoked for each fresh, authentic
// notification (typically: re-pull the provision and Refresh the engine).
// inner may be nil when the engine is attached later through Wrap.
func NewAgent(adminPub suite.PublicKey, inner transport.Handler, apply func(*Notification)) *Agent {
	return &Agent{adminPub: adminPub, inner: inner, apply: apply}
}

// UseVerifyMemo shares a memo of successful signature verifications with
// this agent. One churn operation fans the same signed notification out to
// γ−1 co-located agents; with a shared memo the fleet pays one ECDSA
// verification per notification instead of one per recipient. Verification
// outcomes are unchanged (see suite.VerifyMemo); rejected traffic never
// consults the memo's fast path. Call before traffic flows.
func (a *Agent) UseVerifyMemo(vm *suite.VerifyMemo) { a.vmemo = vm }

// Wrap interposes the agent on an endpoint's inbound path: binding an engine
// to the returned endpoint installs the agent as the real handler with the
// engine as its passthrough, so update envelopes are consumed by the agent
// and everything else reaches the engine unchanged. All other Endpoint
// methods delegate to ep untouched.
func (a *Agent) Wrap(ep transport.Endpoint) transport.Endpoint {
	a.now = ep.Now
	return &agentEndpoint{Endpoint: ep, agent: a}
}

type agentEndpoint struct {
	transport.Endpoint
	agent *Agent
}

func (w *agentEndpoint) Bind(h transport.Handler) {
	w.agent.inner = h
	w.Endpoint.Bind(w.agent)
}

// Instrument attaches a metrics registry. sentAt, when non-nil (typically
// (*Distributor).SentAt of an instrumented distributor), lets the agent
// observe the backend→ground propagation lag of each effectuated
// notification — the §VIII effectuation latency — into
// argus_update_propagation_seconds.
func (a *Agent) Instrument(reg *obs.Registry, sentAt func(seq uint64) (time.Duration, bool)) {
	if reg == nil {
		a.appliedC, a.rejectedC, a.propagation, a.sentAt = nil, nil, nil, nil
		return
	}
	a.appliedC = reg.Counter(obs.MUpdateApplied, "Admin notifications verified and effectuated.")
	a.rejectedC = reg.Counter(obs.MUpdateRejected, "Admin notifications rejected (bad signature or replayed sequence).")
	a.propagation = reg.Histogram(obs.MUpdatePropagation,
		"Virtual lag from backend push to on-device effectuation.", obs.LatencyBuckets())
	a.sentAt = sentAt
}

// Applied returns how many notifications have been effectuated.
func (a *Agent) Applied() int { return a.applied }

// Rejected returns how many notifications failed verification or replay
// checks.
func (a *Agent) Rejected() int { return a.rejected }

// Handle implements transport.Handler.
func (a *Agent) Handle(from transport.Addr, payload []byte) {
	n, isUpdate, err := Decode(payload)
	if !isUpdate {
		if a.inner != nil {
			a.inner.Handle(from, payload)
		}
		return
	}
	if err != nil || !a.verify(n) || n.Seq <= a.lastSeq {
		a.rejected++
		a.rejectedC.Inc()
		return
	}
	a.lastSeq = n.Seq
	a.applied++
	a.appliedC.Inc()
	if a.sentAt != nil && a.now != nil {
		if t, ok := a.sentAt(n.Seq); ok {
			a.propagation.ObserveDuration(a.now() - t)
		}
	}
	if a.apply != nil {
		a.apply(n)
	}
}

// verify checks the notification signature through the shared memo when one
// is installed (a nil memo verifies directly).
func (a *Agent) verify(n *Notification) bool {
	return a.vmemo.Verify(a.adminPub, n.body(), n.Sig)
}

// Distributor is the backend's ground gateway: it signs notifications and
// unicasts them to affected devices over its transport endpoint. Destinations
// marked offline have their notifications parked in a bounded per-destination
// dead-letter queue (see dlq.go) and redelivered in push order on Reattach.
// All methods are safe for concurrent use.
type Distributor struct {
	admin *cert.Admin
	ep    transport.Endpoint

	mu          sync.Mutex
	addr        map[cert.ID]transport.Addr
	seq         uint64
	sent        int
	offline     map[cert.ID]bool
	dlq         map[cert.ID][]letter
	dlqCap      int
	parked      int
	redelivered int
	journal     Journal

	reg     *obs.Registry
	sentAts map[uint64]time.Duration // seq → virtual push time, for lag measurement
	depthG  *obs.Gauge
	evictC  *obs.Counter
	lagH    *obs.Histogram
}

// NewDistributor builds a backend gateway sending through ep (the gateway
// itself receives nothing, so ep stays unbound). Under the simulator, pass
// net.NewEndpoint() and link its Node into the topology.
func NewDistributor(admin *cert.Admin, ep transport.Endpoint, opts ...DistributorOption) *Distributor {
	d := &Distributor{
		admin:   admin,
		ep:      ep,
		addr:    make(map[cert.ID]transport.Addr),
		offline: make(map[cert.ID]bool),
		dlq:     make(map[cert.ID][]letter),
		dlqCap:  DefaultDLQCapacity,
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Addr returns the gateway's transport address.
func (d *Distributor) Addr() transport.Addr { return d.ep.Addr() }

// Instrument attaches a metrics registry: pushes are counted by kind and
// stamped with their virtual send time so instrumented agents can measure
// propagation lag, and the dead-letter queue exports depth, evictions and
// redelivery lag. Passing nil detaches.
func (d *Distributor) Instrument(reg *obs.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reg = reg
	if reg == nil {
		d.sentAts, d.depthG, d.evictC, d.lagH = nil, nil, nil, nil
		return
	}
	d.sentAts = make(map[uint64]time.Duration)
	d.depthG = reg.Gauge(obs.MUpdateDLQDepth, "Churn notifications parked awaiting redelivery.")
	d.evictC = reg.Counter(obs.MUpdateDLQEvictions,
		"Parked notifications discarded at the per-destination DLQ bound.")
	d.lagH = reg.Histogram(obs.MUpdateRedeliveryLag,
		"Lag from parking an undeliverable notification to its redelivery.", obs.LatencyBuckets())
}

// SentAt returns the virtual time the notification with the given sequence
// number was pushed (only tracked while instrumented). For a parked
// notification this is the park time, so agent-side propagation lag includes
// the destination's offline window. Pass this method to (*Agent).Instrument
// to wire the propagation-lag histogram.
func (d *Distributor) SentAt(seq uint64) (time.Duration, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.sentAts[seq]
	return t, ok
}

// Register maps a device identity to its transport address.
func (d *Distributor) Register(id cert.ID, addr transport.Addr) {
	d.mu.Lock()
	d.addr[id] = addr
	d.mu.Unlock()
}

// Sent returns the number of notifications actually put on the wire so far
// (live sends plus redeliveries) — the measured updating overhead. Parked
// notifications are not counted until redelivered.
func (d *Distributor) Sent() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sent
}

func (d *Distributor) countSent(k Kind) {
	d.reg.Counter(obs.MUpdateSent, "Admin notifications pushed to the ground, by kind.",
		obs.L("kind", k.String())).Inc()
}

// push signs one notification, then either unicasts it or — when the
// destination is offline — parks it for redelivery.
func (d *Distributor) push(to cert.ID, n *Notification) error {
	d.mu.Lock()
	addr, ok := d.addr[to]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("update: no ground address for %v", to)
	}
	d.seq++
	n.Seq = d.seq
	sig, err := d.admin.Sign(n.body())
	if err != nil {
		d.mu.Unlock()
		return err
	}
	n.Sig = sig
	if d.reg != nil {
		d.sentAts[d.seq] = d.ep.Now()
	}
	if d.offline[to] {
		d.park(to, n)
		d.mu.Unlock()
		return nil
	}
	d.countSent(n.Kind)
	d.sent++
	// Send while still holding d.mu: sequence numbers are assigned under the
	// lock, so the wire order must be decided under it too. Unlocking first
	// would let a concurrent push — or a MarkOffline/Reattach cycle, which
	// redelivers under the lock — put a higher sequence on the wire before
	// this one, and the agents' replay check would then drop this
	// notification as a replay: silently lost, not reordered. Transport sends
	// are asynchronous (mailbox enqueue / socket write), so no callback can
	// re-enter the distributor here.
	d.ep.Send(addr, n.Encode())
	d.mu.Unlock()
	return nil
}

// RevokeSubject notifies each listed object to blacklist the subject —
// the N notifications of Table I's "Rmv a subject" row.
func (d *Distributor) RevokeSubject(subject cert.ID, objects []cert.ID) error {
	for _, oid := range objects {
		if err := d.push(oid, &Notification{Kind: KindRevokeSubject, Subject: subject}); err != nil {
			return err
		}
	}
	return nil
}

// Reprovision notifies each listed device to refresh its credentials
// (group re-key: the γ−1 fellows; policy change: the β governed objects).
func (d *Distributor) Reprovision(devices []cert.ID) error {
	for _, id := range devices {
		if err := d.push(id, &Notification{Kind: KindReprovision}); err != nil {
			return err
		}
	}
	return nil
}
