package update

import (
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/wire"
)

// dlqRig is one distributor, one online object and one offline-able object,
// wired over the simulator with full instrumentation.
type dlqRig struct {
	b       *backend.Backend
	net     *netsim.Network
	reg     *obs.Registry
	dist    *Distributor
	sid     cert.ID
	on, off cert.ID        // object IDs
	onAg    *Agent         // agent of the always-online object
	offAg   *Agent         // agent of the offline-able object
	offEP   *netsim.SimEndpoint
	applied []uint64 // seqs effectuated by the offline-able object, in order
	kinds   []Kind   // kinds effectuated by the offline-able object, in order
}

func newDLQRig(t *testing.T, opts ...DistributorOption) *dlqRig {
	t.Helper()
	r := &dlqRig{}
	var err error
	r.b, err = backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	r.b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='lock'"), []string{"open"})
	r.sid, _, _ = r.b.RegisterSubject("alice", attr.MustSet("position=staff"))

	r.reg = obs.NewRegistry()
	r.net = netsim.New(netsim.DefaultWiFi(), 17)
	hub := r.net.AddNode(nil)
	dep := r.net.NewEndpoint()
	r.dist = NewDistributor(r.b.Admin(), dep, opts...)
	r.dist.Instrument(r.reg)
	r.net.Link(hub, dep.Node())

	mk := func(name string, record bool) (cert.ID, *Agent, *netsim.SimEndpoint) {
		oid, _, err := r.b.RegisterObject(name, backend.L2, attr.MustSet("type=lock"), []string{"open"})
		if err != nil {
			t.Fatal(err)
		}
		prov, _ := r.b.ProvisionObject(oid)
		eng := core.NewObject(prov, wire.V30, core.Costs{})
		agent := NewAgent(r.b.AdminPublic(), nil, func(n *Notification) {
			if record {
				r.applied = append(r.applied, n.Seq)
				r.kinds = append(r.kinds, n.Kind)
			}
		})
		agent.Instrument(r.reg, r.dist.SentAt)
		ep := r.net.NewEndpoint()
		eng.Bind(agent.Wrap(ep))
		r.net.Link(hub, ep.Node())
		r.dist.Register(oid, ep.Addr())
		return oid, agent, ep
	}
	r.on, r.onAg, _ = mk("lock-on", false)
	r.off, r.offAg, r.offEP = mk("lock-off", true)
	return r
}

func counterValue(reg *obs.Registry, name string, labels ...obs.Label) float64 {
	if m := reg.Snapshot().Get(name, labels...); m != nil {
		return m.Value
	}
	return 0
}

// TestDLQParkAndRedeliver: pushes to an offline destination park (counted
// undeliverable, nothing on the wire), online peers are unaffected, and
// Reattach drains the queue with lag recorded across the offline window.
func TestDLQParkAndRedeliver(t *testing.T) {
	r := newDLQRig(t)
	r.dist.MarkOffline(r.off)

	rep, err := r.b.RevokeSubject(r.sid)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.dist.RevokeSubject(r.sid, rep.NotifiedObjects); err != nil {
		t.Fatal(err)
	}
	r.net.Run(0) // delivers the online object's copy; virtual time advances

	if got := r.dist.DLQDepth(); got != 1 {
		t.Fatalf("DLQ depth = %d, want 1", got)
	}
	if got := r.dist.Sent(); got != 1 {
		t.Fatalf("sent = %d, want 1 (online object only)", got)
	}
	if v := counterValue(r.reg, obs.MUpdateUndeliverable, obs.L("kind", "revoke-subject")); v != 1 {
		t.Fatalf("undeliverable counter = %v, want 1", v)
	}
	if r.onAg.Applied() != 1 || r.offAg.Applied() != 0 {
		t.Fatalf("applied on/off = %d/%d, want 1/0", r.onAg.Applied(), r.offAg.Applied())
	}
	if m := r.reg.Snapshot().Get(obs.MUpdateDLQDepth); m == nil || m.Value != 1 {
		t.Fatalf("depth gauge = %+v, want 1", m)
	}

	if got := r.dist.Reattach(r.off, ""); got != 1 {
		t.Fatalf("Reattach redelivered %d, want 1", got)
	}
	r.net.Run(0)

	if got := r.dist.DLQDepth(); got != 0 {
		t.Fatalf("DLQ depth after reattach = %d, want 0", got)
	}
	if r.offAg.Applied() != 1 {
		t.Fatalf("offline object applied %d after reattach, want 1", r.offAg.Applied())
	}
	if got := r.dist.Redelivered(); got != 1 {
		t.Fatalf("redelivered = %d, want 1", got)
	}
	snap := r.reg.Snapshot()
	if m := snap.Get(obs.MUpdateRedelivered, obs.L("kind", "revoke-subject")); m == nil || m.Value != 1 {
		t.Fatalf("redelivered counter = %+v, want 1", m)
	}
	lag := snap.Get(obs.MUpdateRedeliveryLag)
	if lag == nil || lag.Count != 1 {
		t.Fatalf("lag histogram = %+v, want count 1", lag)
	}
	if lag.Sum <= 0 {
		t.Fatal("redelivery lag consumed no virtual time (offline window not measured)")
	}
	// Propagation lag is measured from the original park time, so the
	// offline window is included in the agent-side histogram too.
	if prop := snap.Get(obs.MUpdatePropagation); prop == nil || prop.Count != 2 {
		t.Fatalf("propagation histogram = %+v, want count 2", prop)
	}
	if m := snap.Get(obs.MUpdateDLQDepth); m == nil || m.Value != 0 {
		t.Fatalf("depth gauge after drain = %+v, want 0", m)
	}
}

// TestDLQInOrderExactlyOnce: a mixed-kind backlog is redelivered in push
// order and effectuated exactly once, even across a second Reattach.
func TestDLQInOrderExactlyOnce(t *testing.T) {
	r := newDLQRig(t)
	r.dist.MarkOffline(r.off)

	wantKinds := []Kind{KindRevokeSubject, KindReprovision, KindRevokeSubject, KindReprovision}
	if err := r.dist.RevokeSubject(r.sid, []cert.ID{r.off}); err != nil {
		t.Fatal(err)
	}
	if err := r.dist.Reprovision([]cert.ID{r.off}); err != nil {
		t.Fatal(err)
	}
	if err := r.dist.RevokeSubject(r.sid, []cert.ID{r.off}); err != nil {
		t.Fatal(err)
	}
	if err := r.dist.Reprovision([]cert.ID{r.off}); err != nil {
		t.Fatal(err)
	}
	if got := r.dist.DLQDepth(); got != 4 {
		t.Fatalf("depth = %d, want 4", got)
	}

	if got := r.dist.Reattach(r.off, ""); got != 4 {
		t.Fatalf("redelivered %d, want 4", got)
	}
	r.net.Run(0)

	if len(r.applied) != 4 {
		t.Fatalf("applied %d notifications, want 4: %v", len(r.applied), r.applied)
	}
	for i := 1; i < len(r.applied); i++ {
		if r.applied[i] <= r.applied[i-1] {
			t.Fatalf("out-of-order effectuation: seqs %v", r.applied)
		}
	}
	for i, k := range r.kinds {
		if k != wantKinds[i] {
			t.Fatalf("kind order = %v, want %v", r.kinds, wantKinds)
		}
	}
	if r.offAg.Rejected() != 0 {
		t.Fatalf("rejected = %d, want 0", r.offAg.Rejected())
	}

	// A second reattach has nothing to redeliver; nothing is double-applied.
	if got := r.dist.Reattach(r.off, ""); got != 0 {
		t.Fatalf("second reattach redelivered %d, want 0", got)
	}
	r.net.Run(0)
	if r.offAg.Applied() != 4 {
		t.Fatalf("applied after second reattach = %d, want 4 (exactly once)", r.offAg.Applied())
	}

	// Back online: pushes go straight to the wire again.
	if err := r.dist.Reprovision([]cert.ID{r.off}); err != nil {
		t.Fatal(err)
	}
	if got := r.dist.DLQDepth(); got != 0 {
		t.Fatalf("depth after online push = %d, want 0", got)
	}
	r.net.Run(0)
	if r.offAg.Applied() != 5 {
		t.Fatalf("applied after online push = %d, want 5", r.offAg.Applied())
	}
}

// TestDLQBoundedEviction: the per-destination bound sheds the oldest letters,
// counted, and the survivors still effectuate in order.
func TestDLQBoundedEviction(t *testing.T) {
	r := newDLQRig(t, WithDLQCapacity(4))
	r.dist.MarkOffline(r.off)

	const pushes = 7
	for i := 0; i < pushes; i++ {
		if err := r.dist.Reprovision([]cert.ID{r.off}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.dist.DLQDepth(); got != 4 {
		t.Fatalf("depth = %d, want cap 4", got)
	}
	if v := counterValue(r.reg, obs.MUpdateDLQEvictions); v != pushes-4 {
		t.Fatalf("evictions = %v, want %d", v, pushes-4)
	}
	if v := counterValue(r.reg, obs.MUpdateUndeliverable, obs.L("kind", "reprovision")); v != pushes {
		t.Fatalf("undeliverable = %v, want %d", v, pushes)
	}

	r.dist.Reattach(r.off, "")
	r.net.Run(0)
	if len(r.applied) != 4 {
		t.Fatalf("applied %d, want the 4 retained", len(r.applied))
	}
	// The retained letters are the newest: seqs 4..7.
	for i, seq := range r.applied {
		if want := uint64(pushes - 4 + i + 1); seq != want {
			t.Fatalf("applied seqs = %v, want [4 5 6 7]", r.applied)
		}
	}
}

// TestReattachUpdatesAddress: a node that comes back on a different address
// (rebind, DHCP) gets its backlog at the new one.
func TestReattachUpdatesAddress(t *testing.T) {
	r := newDLQRig(t)
	r.dist.MarkOffline(r.off)
	if err := r.dist.Reprovision([]cert.ID{r.off}); err != nil {
		t.Fatal(err)
	}

	// The "rebinding" node: a fresh endpoint joined to the same cell, with a
	// pass-through agent recording what arrives.
	got := 0
	reAgent := NewAgent(r.b.AdminPublic(), nil, func(*Notification) { got++ })
	ep2 := r.net.NewEndpoint()
	ep2.Bind(reAgent)
	r.net.Link(r.offEP.Node(), ep2.Node())

	r.dist.Reattach(r.off, ep2.Addr())
	r.net.Run(0)
	if got != 1 {
		t.Fatalf("new address received %d notifications, want 1", got)
	}
	if r.offAg.Applied() != 0 {
		t.Fatal("old address still received the backlog")
	}
}
