package update

import (
	"fmt"
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"
)

func TestNotificationCodecAndSignature(t *testing.T) {
	admin, err := cert.NewAdmin(suite.S128, "admin")
	if err != nil {
		t.Fatal(err)
	}
	n := &Notification{Kind: KindRevokeSubject, Seq: 7, Subject: cert.IDFromName("alice")}
	sig, err := admin.Sign(n.body())
	if err != nil {
		t.Fatal(err)
	}
	n.Sig = sig

	got, isUpdate, err := Decode(n.Encode())
	if !isUpdate || err != nil {
		t.Fatalf("Decode: %v %v", isUpdate, err)
	}
	if got.Kind != n.Kind || got.Seq != n.Seq || got.Subject != n.Subject {
		t.Fatal("round trip mismatch")
	}
	if !got.Verify(admin.Public()) {
		t.Fatal("valid signature rejected")
	}
	other, _ := cert.NewAdmin(suite.S128, "foreign")
	if got.Verify(other.Public()) {
		t.Fatal("signature valid under foreign admin")
	}
	// Tampering with the body breaks the signature.
	got.Subject = cert.IDFromName("bob")
	if got.Verify(admin.Public()) {
		t.Fatal("tampered notification verified")
	}
}

func TestDecodeFallThrough(t *testing.T) {
	// Discovery messages must not be consumed as updates.
	q := &wire.QUE1{Version: wire.V30, RS: make([]byte, suite.NonceSize)}
	if _, isUpdate, _ := Decode(q.Encode()); isUpdate {
		t.Fatal("QUE1 classified as update")
	}
	if _, isUpdate, _ := Decode(nil); isUpdate {
		t.Fatal("empty payload classified as update")
	}
	// A malformed envelope is an update with an error.
	if _, isUpdate, err := Decode([]byte{envelopeMagic, 1, 2}); !isUpdate || err == nil {
		t.Fatal("malformed envelope not rejected")
	}
	if _, _, err := Decode((&Notification{Kind: Kind(9)}).Encode()); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestAgentVerifiesAndDeduplicates(t *testing.T) {
	admin, _ := cert.NewAdmin(suite.S128, "admin")
	applied := 0
	agent := NewAgent(admin.Public(), nil, func(*Notification) { applied++ })

	mk := func(seq uint64, signer *cert.Admin) []byte {
		n := &Notification{Kind: KindReprovision, Seq: seq}
		sig, _ := signer.Sign(n.body())
		n.Sig = sig
		return n.Encode()
	}

	from := netsim.AddrOf(0)
	agent.Handle(from, mk(1, admin))
	agent.Handle(from, mk(1, admin)) // replay
	agent.Handle(from, mk(2, admin))
	forged, _ := cert.NewAdmin(suite.S128, "attacker")
	agent.Handle(from, mk(3, forged)) // forged signature
	agent.Handle(from, mk(0, admin))  // stale sequence

	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if agent.Applied() != 2 || agent.Rejected() != 3 {
		t.Fatalf("applied/rejected = %d/%d, want 2/3", agent.Applied(), agent.Rejected())
	}
}

func TestAgentPassesDiscoveryTrafficThrough(t *testing.T) {
	admin, _ := cert.NewAdmin(suite.S128, "admin")
	var passed []byte
	inner := transport.HandlerFunc(func(_ transport.Addr, p []byte) { passed = p })
	agent := NewAgent(admin.Public(), inner, nil)
	q := (&wire.QUE1{Version: wire.V30, RS: make([]byte, suite.NonceSize)}).Encode()
	agent.Handle(netsim.AddrOf(0), q)
	if passed == nil {
		t.Fatal("discovery message not passed to inner handler")
	}
}

// TestEndToEndRevocationPropagation is the full §VIII story on the wire:
// the backend revokes a subject, the distributor pushes signed notifications
// over the ground network, objects effectuate them, and the revoked subject's
// next discovery round comes back empty — without any out-of-band Refresh.
func TestEndToEndRevocationPropagation(t *testing.T) {
	const n = 8
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='lock'"), []string{"open"})
	sid, _, _ := b.RegisterSubject("alice", attr.MustSet("position=staff"))

	net := netsim.New(netsim.DefaultWiFi(), 9)
	sprov, _ := b.ProvisionSubject(sid)
	sep := net.NewEndpoint()
	subj := core.NewSubject(sprov, wire.V30, core.Costs{}, core.WithEndpoint(sep))
	sn := sep.Node()

	dep := net.NewEndpoint()
	dist := NewDistributor(b.Admin(), dep)
	net.Link(sn, dep.Node()) // gateway reaches objects via the subject's cell

	var objIDs []cert.ID
	for i := 0; i < n; i++ {
		oid, _, err := b.RegisterObject(fmt.Sprintf("lock-%d", i), backend.L2,
			attr.MustSet("type=lock"), []string{"open"})
		if err != nil {
			t.Fatal(err)
		}
		prov, _ := b.ProvisionObject(oid)
		eng := core.NewObject(prov, wire.V30, core.Costs{})
		agent := NewAgent(b.AdminPublic(), nil, func(u *Notification) {
			if u.Kind == KindRevokeSubject {
				eng.Revoke(u.Subject)
			}
		})
		oep := net.NewEndpoint()
		eng.Bind(agent.Wrap(oep))
		net.Link(sn, oep.Node())
		dist.Register(oid, oep.Addr())
		objIDs = append(objIDs, oid)
	}

	// Round 1: full visibility.
	subj.Discover(1)
	net.Run(0)
	if got := len(subj.Results()); got != n {
		t.Fatalf("round 1 discovered %d/%d", got, n)
	}

	// Revoke at the backend; propagate over the air.
	rep, err := b.RevokeSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.RevokeSubject(sid, rep.NotifiedObjects); err != nil {
		t.Fatal(err)
	}
	start := net.Now()
	net.Run(0)
	propagation := net.Now() - start
	if dist.Sent() != n {
		t.Fatalf("distributor sent %d notifications, want N = %d", dist.Sent(), n)
	}
	if propagation <= 0 {
		t.Fatal("propagation consumed no virtual time")
	}

	// Round 2: the revoked subject sees nothing new.
	before := len(subj.Results())
	subj.Discover(1)
	net.Run(0)
	if got := len(subj.Results()) - before; got != 0 {
		t.Fatalf("revoked subject discovered %d services after on-air effectuation", got)
	}
}

func TestDistributorUnknownAddress(t *testing.T) {
	b, _ := backend.New(suite.S128)
	net := netsim.New(netsim.DefaultWiFi(), 1)
	dist := NewDistributor(b.Admin(), net.NewEndpoint())
	if err := dist.RevokeSubject(cert.IDFromName("s"), []cert.ID{cert.IDFromName("ghost")}); err == nil {
		t.Fatal("push to unregistered device succeeded")
	}
}

func TestKindString(t *testing.T) {
	if KindRevokeSubject.String() != "revoke-subject" || KindReprovision.String() != "reprovision" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

// TestGroupRekeyPropagation: the Level 3 re-key path over the air. When a
// fellow is revoked, the remaining γ−1 fellows receive Reprovision
// notifications; applying them (re-pull + Refresh) restores covert
// discovery under the rotated key.
func TestGroupRekeyPropagation(t *testing.T) {
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := b.Groups.CreateGroup("circle")
	leaver, _, _ := b.RegisterSubject("leaver", attr.MustSet("position=staff"))
	stayer, _, _ := b.RegisterSubject("stayer", attr.MustSet("position=staff"))
	b.AddSubjectToGroup(leaver, g.ID())
	b.AddSubjectToGroup(stayer, g.ID())
	kiosk, _, _ := b.RegisterObject("kiosk", backend.L3, attr.MustSet("type=kiosk"), []string{"use"})
	b.AddCovertService(kiosk, g.ID(), []string{"use", "covert"})

	net := netsim.New(netsim.DefaultWiFi(), 21)
	sprov, _ := b.ProvisionSubject(stayer)
	sep := net.NewEndpoint()
	sn := sep.Node()
	var subj *core.Subject
	subjAgent := NewAgent(b.AdminPublic(), nil, func(u *Notification) {
		if u.Kind == KindReprovision {
			if p, err := b.ProvisionSubject(stayer); err == nil {
				subj.Refresh(p)
			}
		}
	})
	subj = core.NewSubject(sprov, wire.V30, core.Costs{},
		core.WithEndpoint(subjAgent.Wrap(sep)))

	oprov, _ := b.ProvisionObject(kiosk)
	oep := net.NewEndpoint()
	on := oep.Node()
	var obj *core.Object
	objAgent := NewAgent(b.AdminPublic(), nil, func(u *Notification) {
		if u.Kind == KindReprovision {
			if p, err := b.ProvisionObject(kiosk); err == nil {
				obj.Refresh(p)
			}
		}
	})
	obj = core.NewObject(oprov, wire.V30, core.Costs{},
		core.WithEndpoint(objAgent.Wrap(oep)))
	net.Link(sn, on)

	dep := net.NewEndpoint()
	dist := NewDistributor(b.Admin(), dep)
	net.Link(dep.Node(), sn)
	dist.Register(stayer, sep.Addr())
	dist.Register(kiosk, oep.Addr())

	// The leaver is revoked: group key rotates; distributor pushes
	// reprovision notices to the remaining fellows (subject AND object).
	rep, err := b.RevokeSubject(leaver)
	if err != nil {
		t.Fatal(err)
	}
	fellows := append(rep.NotifiedSubjects, kiosk)
	if err := dist.Reprovision(fellows); err != nil {
		t.Fatal(err)
	}
	net.Run(0)

	// Post-re-key, the stayer still discovers the covert service.
	subj.Discover(1)
	net.Run(0)
	found := false
	for _, d := range subj.Results() {
		if d.Level == backend.L3 {
			found = true
		}
	}
	if !found {
		t.Fatal("remaining fellow lost covert discovery after on-air re-key")
	}
}
