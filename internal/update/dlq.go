package update

import (
	"time"

	"argus/internal/cert"
	"argus/internal/obs"
	"argus/internal/transport"
)

// The dead-letter queue turns a missed churn notification into a measured
// redelivery instead of a silent hole (DESIGN.md §11). The transport is
// fire-and-forget radio semantics with no delivery acknowledgment, so
// admission is connection-state driven: the operator (or the liveness layer
// above) marks a destination offline with MarkOffline, and every subsequent
// push to it parks instead of sending. Guarantees:
//
//   - Bounded, never silent. Each destination holds at most DLQCapacity
//     letters; past the bound the oldest is discarded and counted
//     (argus_update_dlq_evictions_total). Every park is counted
//     (argus_update_undeliverable_total by kind).
//   - In-order redelivery. Sequence numbers are assigned at push time, park
//     preserves push order, and Reattach drains the whole queue under the
//     same lock that serializes pushes — so a destination always observes
//     strictly increasing sequence numbers.
//   - Exactly-once effectuation. In-order redelivery composes with the
//     agent's replay check (Seq <= lastSeq rejected): each notification is
//     applied exactly once even across repeated Reattach calls.

// DefaultDLQCapacity is the per-destination dead-letter bound.
const DefaultDLQCapacity = 256

// Journal persists dead-letter mutations so parked notifications survive a
// gateway crash: every park, eviction and drain is recorded as it happens
// (under the distributor lock, so the journal sees them in queue order).
// On restart the embedder folds the journal back into parked letters and
// hands them to RestoreParked. backendsvc.DLQLog is the file-backed
// implementation, built on the same fsynced record framing as the
// backend WAL.
type Journal interface {
	// Park records one parked letter (Notification.Encode bytes).
	Park(to cert.ID, letter []byte)
	// Evict records that the destination's oldest letter was discarded at
	// the capacity bound.
	Evict(to cert.ID)
	// Drain records that the destination's whole queue was redelivered.
	Drain(to cert.ID)
}

// WithDLQJournal attaches a dead-letter journal (nil detaches).
func WithDLQJournal(j Journal) DistributorOption {
	return func(d *Distributor) { d.journal = j }
}

// letter is one parked notification: fully signed, sequence assigned.
type letter struct {
	n  *Notification
	at time.Duration // ep.Now() at park time, for redelivery lag
}

// DistributorOption customizes NewDistributor.
type DistributorOption func(*Distributor)

// WithDLQCapacity overrides the per-destination dead-letter bound
// (values < 1 keep the default).
func WithDLQCapacity(n int) DistributorOption {
	return func(d *Distributor) {
		if n >= 1 {
			d.dlqCap = n
		}
	}
}

// park appends one letter to the destination's queue, evicting the oldest
// at the bound. Caller holds d.mu.
func (d *Distributor) park(to cert.ID, n *Notification) {
	q := d.dlq[to]
	if len(q) >= d.dlqCap {
		q = q[1:]
		d.parked--
		d.evictC.Inc()
		d.depthG.Add(-1)
		if d.journal != nil {
			d.journal.Evict(to)
		}
	}
	q = append(q, letter{n: n, at: d.ep.Now()})
	d.dlq[to] = q
	d.parked++
	if d.journal != nil {
		d.journal.Park(to, n.Encode())
	}
	d.reg.Counter(obs.MUpdateUndeliverable,
		"Notifications not deliverable because the destination was offline, by kind.",
		obs.L("kind", n.Kind.String())).Inc()
	// Delta, not Set: several distributors (one per cell in the load
	// harness) may share a registry, and the family gauge is their sum.
	d.depthG.Add(1)
}

// MarkOffline marks a destination unreachable: subsequent pushes to it are
// parked instead of sent.
func (d *Distributor) MarkOffline(id cert.ID) {
	d.mu.Lock()
	d.offline[id] = true
	d.mu.Unlock()
}

// Reattach marks the destination reachable again — at a new address when
// addr is non-empty — and immediately redelivers every parked letter in
// original push order. Returns the number of letters redelivered. Reattach
// on an already-online destination with an empty queue is a no-op.
func (d *Distributor) Reattach(id cert.ID, addr transport.Addr) int {
	d.mu.Lock()
	delete(d.offline, id)
	if addr != "" {
		d.addr[id] = addr
	}
	dst, ok := d.addr[id]
	q := d.dlq[id]
	if !ok || len(q) == 0 {
		d.mu.Unlock()
		return 0
	}
	delete(d.dlq, id)
	d.parked -= len(q)
	d.redelivered += len(q)
	if d.journal != nil {
		d.journal.Drain(id)
	}
	now := d.ep.Now()
	for _, l := range q {
		d.countSent(l.n.Kind)
		d.reg.Counter(obs.MUpdateRedelivered,
			"Parked notifications redelivered after reattach, by kind.",
			obs.L("kind", l.n.Kind.String())).Inc()
		d.lagH.ObserveDuration(now - l.at)
		d.sent++
		d.ep.Send(dst, l.n.Encode())
	}
	d.depthG.Add(-int64(len(q)))
	d.mu.Unlock()
	return len(q)
}

// RestoreParked reloads journaled letters after a restart: every destination
// with parked letters comes back offline (it missed those notifications for
// a reason, and redelivery must wait for an explicit Reattach), queue order
// is preserved, and the distributor's sequence counter fast-forwards past
// the highest restored Seq so post-restart pushes never collide with a
// parked letter — the agent replay check (Seq <= lastSeq) depends on it.
// Restored letters are NOT re-journaled: the journal already holds them.
func (d *Distributor) RestoreParked(parked map[cert.ID][]*Notification) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.ep.Now()
	for to, ns := range parked {
		if len(ns) == 0 {
			continue
		}
		d.offline[to] = true
		q := d.dlq[to]
		for _, n := range ns {
			q = append(q, letter{n: n, at: now})
			d.parked++
			d.depthG.Add(1)
			if n.Seq > d.seq {
				d.seq = n.Seq
			}
		}
		d.dlq[to] = q
	}
}

// DLQDepth returns the total number of parked letters across destinations.
func (d *Distributor) DLQDepth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.parked
}

// Redelivered returns how many parked letters have been redelivered.
func (d *Distributor) Redelivered() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.redelivered
}
