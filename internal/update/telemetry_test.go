package update

import (
	"fmt"
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/wire"
)

// TestPropagationTelemetry wires an instrumented distributor/agent pair and
// checks the churn counters and the backend→ground propagation-lag histogram
// (§VIII effectuation latency).
func TestPropagationTelemetry(t *testing.T) {
	const n = 3
	b, err := backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	b.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='lock'"), []string{"open"})
	sid, _, _ := b.RegisterSubject("alice", attr.MustSet("position=staff"))

	reg := obs.NewRegistry()
	net := netsim.New(netsim.DefaultWiFi(), 3)
	hub := net.AddNode(nil)
	dep := net.NewEndpoint()
	dist := NewDistributor(b.Admin(), dep)
	dist.Instrument(reg)
	net.Link(hub, dep.Node())

	var agents []*Agent
	for i := 0; i < n; i++ {
		oid, _, err := b.RegisterObject(fmt.Sprintf("lock-%d", i), backend.L2,
			attr.MustSet("type=lock"), []string{"open"})
		if err != nil {
			t.Fatal(err)
		}
		prov, _ := b.ProvisionObject(oid)
		eng := core.NewObject(prov, wire.V30, core.Costs{})
		agent := NewAgent(b.AdminPublic(), nil, nil)
		agent.Instrument(reg, dist.SentAt)
		ep := net.NewEndpoint()
		eng.Bind(agent.Wrap(ep))
		net.Link(hub, ep.Node())
		dist.Register(oid, ep.Addr())
		agents = append(agents, agent)
	}

	rep, err := b.RevokeSubject(sid)
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.RevokeSubject(sid, rep.NotifiedObjects); err != nil {
		t.Fatal(err)
	}
	net.Run(0)

	snap := reg.Snapshot()
	if m := snap.Get(obs.MUpdateSent, obs.L("kind", KindRevokeSubject.String())); m == nil || m.Value != n {
		t.Fatalf("sent counter = %+v, want %d", m, n)
	}
	if m := snap.Get(obs.MUpdateApplied); m == nil || m.Value != n {
		t.Fatalf("applied counter = %+v, want %d", m, n)
	}
	prop := snap.Get(obs.MUpdatePropagation)
	if prop == nil || prop.Count != n {
		t.Fatalf("propagation histogram = %+v, want count %d", prop, n)
	}
	if prop.Sum <= 0 {
		t.Fatal("propagation lag consumed no virtual time")
	}

	// A replayed notification is rejected and counted as such.
	replay := &Notification{Kind: KindRevokeSubject, Seq: 1, Subject: sid}
	sig, _ := b.Admin().Sign(replay.body())
	replay.Sig = sig
	agents[0].Handle(netsim.AddrOf(hub), replay.Encode())
	if m := reg.Snapshot().Get(obs.MUpdateRejected); m == nil || m.Value != 1 {
		t.Fatalf("rejected counter = %+v, want 1", m)
	}
}
