package wire

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics hammers Decode with random bytes and mutated valid
// messages: every input must return cleanly (message or error).
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))

	// Pure random inputs.
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(128))
		rng.Read(b)
		m, err := Decode(b)
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	}

	// Mutations of valid messages (bit flips, truncations, extensions).
	valid := [][]byte{
		(&QUE1{Version: V30, RS: make([]byte, 28)}).Encode(),
		(&RES1{Version: V30, Mode: ModePublic, Prof: make([]byte, 200)}).Encode(),
		(&RES1{Version: V20, Mode: ModeSecure, RO: make([]byte, 28),
			CertO: make([]byte, 500), KEXMO: make([]byte, 64), Sig: make([]byte, 64)}).Encode(),
		que2For(V30, true).Encode(),
		(&RES2{Version: V10, Ciphertext: make([]byte, 256), MACO: make([]byte, 32)}).Encode(),
	}
	for _, base := range valid {
		for i := 0; i < 500; i++ {
			b := append([]byte(nil), base...)
			switch rng.Intn(3) {
			case 0: // bit flip
				b[rng.Intn(len(b))] ^= 1 << uint(rng.Intn(8))
			case 1: // truncate
				b = b[:rng.Intn(len(b))]
			case 2: // extend
				b = append(b, byte(rng.Intn(256)))
			}
			Decode(b) // must not panic
		}
	}
}

// TestDecodeEncodedIdempotent: decoding an encoding and re-encoding yields
// identical bytes for each message type (canonical form).
func TestDecodeEncodedIdempotent(t *testing.T) {
	msgs := []Message{
		&QUE1{Version: V30, RS: make([]byte, 28)},
		&RES1{Version: V30, Mode: ModePublic, Prof: []byte("prof")},
		&RES1{Version: V30, Mode: ModeSecure, RO: make([]byte, 28),
			CertO: make([]byte, 100), KEXMO: make([]byte, 64), Sig: make([]byte, 64)},
		que2For(V20, true),
		que2For(V10, false),
		&RES2{Version: V30, Ciphertext: make([]byte, 64), MACO: make([]byte, 32)},
	}
	for i, m := range msgs {
		enc1 := m.Encode()
		dec, err := Decode(enc1)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		enc2 := dec.Encode()
		if string(enc1) != string(enc2) {
			t.Errorf("msg %d: re-encoding differs", i)
		}
	}
}
