package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics hammers Decode with random bytes and mutated valid
// messages: every input must return cleanly (message or error).
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))

	// Pure random inputs.
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(128))
		rng.Read(b)
		m, err := Decode(b)
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	}

	// Mutations of valid messages (bit flips, truncations, extensions).
	valid := [][]byte{
		(&QUE1{Version: V30, RS: make([]byte, 28)}).Encode(),
		(&RES1{Version: V30, Mode: ModePublic, Prof: make([]byte, 200)}).Encode(),
		(&RES1{Version: V20, Mode: ModeSecure, RO: make([]byte, 28),
			CertO: make([]byte, 500), KEXMO: make([]byte, 64), Sig: make([]byte, 64)}).Encode(),
		que2For(V30, true).Encode(),
		(&RES2{Version: V10, Ciphertext: make([]byte, 256), MACO: make([]byte, 32)}).Encode(),
	}
	for _, base := range valid {
		for i := 0; i < 500; i++ {
			b := append([]byte(nil), base...)
			switch rng.Intn(3) {
			case 0: // bit flip
				b[rng.Intn(len(b))] ^= 1 << uint(rng.Intn(8))
			case 1: // truncate
				b = b[:rng.Intn(len(b))]
			case 2: // extend
				b = append(b, byte(rng.Intn(256)))
			}
			Decode(b) // must not panic
		}
	}
}

// TestDecodeEncodedIdempotent: decoding an encoding and re-encoding yields
// identical bytes for each message type (canonical form).
func TestDecodeEncodedIdempotent(t *testing.T) {
	msgs := []Message{
		&QUE1{Version: V30, RS: make([]byte, 28)},
		&RES1{Version: V30, Mode: ModePublic, Prof: []byte("prof")},
		&RES1{Version: V30, Mode: ModeSecure, RO: make([]byte, 28),
			CertO: make([]byte, 100), KEXMO: make([]byte, 64), Sig: make([]byte, 64)},
		que2For(V20, true),
		que2For(V10, false),
		&RES2{Version: V30, Ciphertext: make([]byte, 64), MACO: make([]byte, 32)},
	}
	for i, m := range msgs {
		enc1 := m.Encode()
		dec, err := Decode(enc1)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		enc2 := dec.Encode()
		if string(enc1) != string(enc2) {
			t.Errorf("msg %d: re-encoding differs", i)
		}
	}
}

// Native fuzz targets. Seed corpora are golden encodings of every message
// shape the protocol puts on the air, so the fuzzer starts from valid frames
// and mutates toward the decoder's edges. The property under fuzz is the one
// retransmission depends on: any accepted input re-encodes canonically
// (Decode∘Encode is a fixpoint), because resent frames must be byte-identical
// to the originals their MACs were computed over.

// goldenEncodings is the seed corpus shared by the fuzz targets.
func goldenEncodings() [][]byte {
	return [][]byte{
		(&QUE1{Version: V10, RS: bytes.Repeat([]byte{1}, 28)}).Encode(),
		(&QUE1{Version: V30, RS: bytes.Repeat([]byte{2}, 28)}).Encode(),
		(&RES1{Version: V30, Mode: ModePublic, Prof: bytes.Repeat([]byte{3}, 200)}).Encode(),
		(&RES1{Version: V20, Mode: ModeSecure, RO: bytes.Repeat([]byte{4}, 28),
			CertO: bytes.Repeat([]byte{5}, 500), KEXMO: bytes.Repeat([]byte{6}, 64),
			Sig: bytes.Repeat([]byte{7}, 64)}).Encode(),
		que2For(V10, false).Encode(),
		que2For(V20, true).Encode(),
		que2For(V30, true).Encode(),
		(&RES2{Version: V10, Ciphertext: bytes.Repeat([]byte{8}, 256),
			MACO: bytes.Repeat([]byte{9}, 32)}).Encode(),
		(&RES2{Version: V30, Ciphertext: bytes.Repeat([]byte{10}, 64),
			MACO: bytes.Repeat([]byte{11}, 32)}).Encode(),
	}
}

// FuzzDecode: Decode must never panic, never return (nil, nil), and every
// accepted input must re-encode canonically.
func FuzzDecode(f *testing.F) {
	for _, b := range goldenEncodings() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil message with nil error")
		}
		enc := m.Encode()
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !bytes.Equal(enc, m2.Encode()) {
			t.Fatalf("encoding not canonical:\n1st %x\n2nd %x", enc, m2.Encode())
		}
	})
}

// FuzzDecodeQUE2 narrows the corpus to QUE2, the most field-rich frame (and
// the one the subject retransmits verbatim): accepted QUE2s must round-trip
// with MAC_{S,3} present exactly when the version carries it.
func FuzzDecodeQUE2(f *testing.F) {
	f.Add(que2For(V10, false).Encode())
	f.Add(que2For(V20, false).Encode())
	f.Add(que2For(V20, true).Encode())
	f.Add(que2For(V30, true).Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		q, ok := m.(*QUE2)
		if !ok {
			return
		}
		if !bytes.Equal(q.Encode(), mustDecode(t, q.Encode()).Encode()) {
			t.Fatal("QUE2 encoding not canonical")
		}
		if q.Version == V10 && len(q.MACS3) != 0 {
			t.Fatalf("v1.0 QUE2 decoded with MAC_{S,3} (%d bytes)", len(q.MACS3))
		}
	})
}

// FuzzDecodeRES2 narrows the corpus to RES2, the frame whose length is the
// Case 7 side channel: accepted RES2s must round-trip bytes-identically so a
// cached resend can never change the on-air shape.
func FuzzDecodeRES2(f *testing.F) {
	f.Add((&RES2{Version: V10, Ciphertext: bytes.Repeat([]byte{1}, 256),
		MACO: bytes.Repeat([]byte{2}, 32)}).Encode())
	f.Add((&RES2{Version: V20, Ciphertext: bytes.Repeat([]byte{3}, 128),
		MACO: bytes.Repeat([]byte{4}, 32)}).Encode())
	f.Add((&RES2{Version: V30, Ciphertext: nil, MACO: bytes.Repeat([]byte{5}, 32)}).Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		r, ok := m.(*RES2)
		if !ok {
			return
		}
		enc := r.Encode()
		if !bytes.Equal(enc, mustDecode(t, enc).Encode()) {
			t.Fatal("RES2 encoding not canonical")
		}
	})
}

func mustDecode(t *testing.T, b []byte) Message {
	t.Helper()
	m, err := Decode(b)
	if err != nil {
		t.Fatalf("canonical encoding rejected: %v", err)
	}
	return m
}
