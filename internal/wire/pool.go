package wire

import "sync"

// Scratch buffers for the encode hot path. One discovery session assembles
// several transient byte strings — QUE2 signature inputs, transcript cuts,
// hash preimages — that live for a single handler call and then die. At load
// (20k concurrent sessions) those transients dominated the allocation
// profile, so the engines borrow them here instead of allocating.
//
// Contract: a buffer obtained from GetScratch is returned with length 0 and
// must not be retained after PutScratch. Never put a buffer that anything
// still aliases (cached encodings, live transcripts); the pool is only for
// bytes whose lifetime provably ends inside one event-loop call.

// scratchCap is the default capacity of a pooled buffer: comfortably above
// the largest per-session transient at 128-bit strength (QUE2 signature
// input ≈ 1.8 KiB, object transcript cut ≈ 2.1 KiB).
const scratchCap = 4096

var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, scratchCap)
		return &b
	},
}

// GetScratch borrows a zero-length scratch buffer from the pool. Append to
// it freely; the result of appends may be a different slice, and that is the
// one to hand back.
func GetScratch() []byte {
	return (*scratchPool.Get().(*[]byte))[:0]
}

// PutScratch returns a scratch buffer to the pool. Buffers that grew beyond
// 64 KiB are dropped so one pathological message cannot pin memory forever.
func PutScratch(b []byte) {
	if cap(b) == 0 || cap(b) > 1<<16 {
		return
	}
	b = b[:0]
	scratchPool.Put(&b)
}
