package wire

import (
	"bytes"
	"testing"

	"argus/internal/enc"
)

// The append-style codec seam must emit byte-identical frames to the
// original writer-based Encode. The legacy encoders are reproduced here
// verbatim (against enc.Writer) so the equivalence is checked against the
// actual pre-refactor bytes, not against the new code's own output.

func legacyEncode(m Message) []byte {
	switch m := m.(type) {
	case *QUE1:
		w := enc.NewWriter(2 + 1 + len(m.RS))
		w.U8(byte(TQUE1))
		w.U8(byte(m.Version))
		w.U8(byte(len(m.RS)))
		w.Raw(m.RS)
		return w.Bytes()
	case *RES1:
		w := enc.NewWriter(64 + len(m.Prof) + len(m.CertO) + len(m.KEXMO))
		w.U8(byte(TRES1))
		w.U8(byte(m.Version))
		w.U8(byte(m.Mode))
		switch m.Mode {
		case ModePublic:
			w.Bytes16(m.Prof)
		case ModeSecure:
			w.Bytes16(m.RO)
			w.Bytes16(m.CertO)
			w.Bytes16(m.KEXMO)
			w.Bytes16(m.Sig)
		}
		return w.Bytes()
	case *QUE2:
		cw := enc.NewWriter(64 + len(m.ProfS) + len(m.CertS) + len(m.KEXMS))
		cw.U8(byte(len(m.RS)))
		cw.Raw(m.RS)
		cw.Bytes16(m.ProfS)
		cw.Bytes16(m.CertS)
		cw.Bytes16(m.KEXMS)
		core := cw.Bytes()
		w := enc.NewWriter(8 + len(core) + len(m.Sig) + len(m.MACS2) + len(m.MACS3))
		w.U8(byte(TQUE2))
		w.U8(byte(m.Version))
		w.Raw(core)
		w.Bytes16(m.Sig)
		w.Bytes16(m.MACS2)
		if m.Version != V10 {
			w.Bytes16(m.MACS3)
		}
		return w.Bytes()
	case *RES2:
		w := enc.NewWriter(8 + len(m.Ciphertext) + len(m.MACO))
		w.U8(byte(TRES2))
		w.U8(byte(m.Version))
		w.Bytes16(m.Ciphertext)
		w.Bytes16(m.MACO)
		return w.Bytes()
	}
	panic("unknown message")
}

// goldenCorpusMessages covers every message shape the protocol puts on the
// air plus the degenerate shapes (empty fields, unknown RES1 mode) the old
// encoder handled.
func goldenCorpusMessages() []Message {
	return []Message{
		&QUE1{Version: V10, RS: bytes.Repeat([]byte{1}, 28)},
		&QUE1{Version: V30, RS: bytes.Repeat([]byte{2}, 28)},
		&QUE1{Version: V20, RS: []byte{9}},
		&RES1{Version: V30, Mode: ModePublic, Prof: bytes.Repeat([]byte{3}, 200)},
		&RES1{Version: V10, Mode: ModePublic},
		&RES1{Version: V20, Mode: ModeSecure, RO: bytes.Repeat([]byte{4}, 28),
			CertO: bytes.Repeat([]byte{5}, 500), KEXMO: bytes.Repeat([]byte{6}, 64),
			Sig: bytes.Repeat([]byte{7}, 64)},
		&RES1{Version: V30, Mode: ModeSecure},
		&RES1{Version: V30, Mode: ResponseMode(0xEE)}, // unknown mode: header only
		que2For(V10, false),
		que2For(V20, false),
		que2For(V20, true),
		que2For(V30, true),
		&QUE2{Version: V30},
		&RES2{Version: V10, Ciphertext: bytes.Repeat([]byte{8}, 256),
			MACO: bytes.Repeat([]byte{9}, 32)},
		&RES2{Version: V30, Ciphertext: bytes.Repeat([]byte{10}, 64),
			MACO: bytes.Repeat([]byte{11}, 32)},
		&RES2{Version: V20},
	}
}

func TestAppendToMatchesLegacyEncode(t *testing.T) {
	for i, m := range goldenCorpusMessages() {
		want := legacyEncode(m)
		if got := m.Encode(); !bytes.Equal(got, want) {
			t.Errorf("msg %d (%T): Encode differs from legacy:\n got %x\nwant %x", i, m, got, want)
		}
		if got := m.AppendTo(nil); !bytes.Equal(got, want) {
			t.Errorf("msg %d (%T): AppendTo(nil) differs from legacy", i, m)
		}
		// Appending after a prefix must leave the prefix intact and add the
		// same bytes.
		prefix := []byte{0xAA, 0xBB}
		got := m.AppendTo(append([]byte(nil), prefix...))
		if !bytes.Equal(got[:2], prefix) || !bytes.Equal(got[2:], want) {
			t.Errorf("msg %d (%T): AppendTo(prefix) corrupted output", i, m)
		}
		if n := m.EncodedSize(); n != len(want) {
			t.Errorf("msg %d (%T): EncodedSize = %d, want %d", i, m, n, len(want))
		}
	}
}

func TestAppendSigInputQUE2Matches(t *testing.T) {
	q := que2For(V30, true)
	que1Enc := (&QUE1{Version: V30, RS: q.RS}).Encode()
	res1Enc := (&RES1{Version: V30, Mode: ModeSecure, RO: bytes.Repeat([]byte{4}, 28),
		CertO: bytes.Repeat([]byte{5}, 500), KEXMO: bytes.Repeat([]byte{6}, 64),
		Sig: bytes.Repeat([]byte{7}, 64)}).Encode()

	want := SigInputQUE2(que1Enc, res1Enc, q)
	got := AppendSigInputQUE2(nil, que1Enc, res1Enc, q)
	if !bytes.Equal(got, want) {
		t.Fatal("AppendSigInputQUE2 differs from SigInputQUE2")
	}
	if n := SigInputSizeQUE2(que1Enc, res1Enc, q); n != len(want) {
		t.Fatalf("SigInputSizeQUE2 = %d, want %d", n, len(want))
	}
}

func TestTranscriptPooledHelpers(t *testing.T) {
	ref := &Transcript{}
	ref.Add([]byte("abc"))
	ref.Add([]byte("defg"))

	ts := NewTranscript(7)
	ts.Add([]byte("abc"))
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ts.Len())
	}
	ts.Add([]byte("defg"))
	if ts.Hash() != ref.Hash() {
		t.Fatal("pooled transcript hash differs from plain transcript")
	}

	c := ts.CloneInto(16)
	c.Add([]byte("tail"))
	if ts.Hash() != ref.Hash() {
		t.Fatal("CloneInto mutated the source transcript")
	}
	want := &Transcript{}
	want.Add([]byte("abcdefg"))
	want.Add([]byte("tail"))
	if c.Hash() != want.Hash() {
		t.Fatal("CloneInto copy diverged")
	}
	c.Release()
	ts.Release()
	if ts.Len() != 0 {
		t.Fatal("Release did not empty the transcript")
	}

	// Oversized transcripts fall back to a plain allocation and may still be
	// released safely (the pool drops oversized buffers).
	big := NewTranscript(scratchCap + 1)
	big.Add(bytes.Repeat([]byte{1}, scratchCap+1))
	big.Release()
}

func TestScratchPoolRoundTrip(t *testing.T) {
	b := GetScratch()
	if len(b) != 0 {
		t.Fatalf("GetScratch returned len %d", len(b))
	}
	b = append(b, bytes.Repeat([]byte{7}, 100)...)
	PutScratch(b)
	PutScratch(nil)                      // cap 0: dropped, no panic
	PutScratch(make([]byte, 0, 1<<16+1)) // oversized: dropped
}

func BenchmarkEncodeQUE2(b *testing.B) {
	m := que2For(V30, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Encode()
	}
}

func BenchmarkAppendToQUE2(b *testing.B) {
	m := que2For(V30, true)
	buf := make([]byte, 0, m.EncodedSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.AppendTo(buf[:0])
	}
}

func BenchmarkDecodeQUE2(b *testing.B) {
	raw := que2For(V30, true).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSigInputQUE2(b *testing.B) {
	q := que2For(V30, true)
	que1Enc := (&QUE1{Version: V30, RS: q.RS}).Encode()
	res1Enc := (&RES1{Version: V30, Mode: ModeSecure, RO: bytes.Repeat([]byte{4}, 28),
		CertO: bytes.Repeat([]byte{5}, 500), KEXMO: bytes.Repeat([]byte{6}, 64),
		Sig: bytes.Repeat([]byte{7}, 64)}).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetScratch()
		buf = AppendSigInputQUE2(buf, que1Enc, res1Enc, q)
		PutScratch(buf)
	}
}
