package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"argus/internal/suite"
)

func nonce(b byte) []byte { return bytes.Repeat([]byte{b}, suite.NonceSize) }

func TestQUE1RoundTrip(t *testing.T) {
	for _, v := range []Version{V10, V20, V30} {
		m := &QUE1{Version: v, RS: nonce(1)}
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("%v: Decode: %v", v, err)
		}
		q, ok := got.(*QUE1)
		if !ok {
			t.Fatalf("%v: decoded wrong type %T", v, got)
		}
		if q.Version != v || !bytes.Equal(q.RS, m.RS) {
			t.Errorf("%v: round trip mismatch", v)
		}
	}
}

func TestRES1RoundTripPublic(t *testing.T) {
	m := &RES1{Version: V30, Mode: ModePublic, Prof: []byte("signed-profile-bytes")}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	r := got.(*RES1)
	if r.Mode != ModePublic || !bytes.Equal(r.Prof, m.Prof) {
		t.Error("public RES1 round trip mismatch")
	}
}

func TestRES1RoundTripSecure(t *testing.T) {
	m := &RES1{
		Version: V30, Mode: ModeSecure,
		RO:    nonce(2),
		CertO: bytes.Repeat([]byte{3}, 565),
		KEXMO: bytes.Repeat([]byte{4}, 64),
		Sig:   bytes.Repeat([]byte{5}, 64),
	}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	r := got.(*RES1)
	if !bytes.Equal(r.RO, m.RO) || !bytes.Equal(r.CertO, m.CertO) ||
		!bytes.Equal(r.KEXMO, m.KEXMO) || !bytes.Equal(r.Sig, m.Sig) {
		t.Error("secure RES1 round trip mismatch")
	}
}

func TestRES1SignedPart(t *testing.T) {
	m := &RES1{Mode: ModeSecure, RO: []byte{2, 2}, KEXMO: []byte{4}}
	got := m.SignedPart([]byte{1, 1, 1})
	want := []byte{1, 1, 1, 2, 2, 4}
	if !bytes.Equal(got, want) {
		t.Errorf("SignedPart = %v, want R_S‖R_O‖KEXM_O = %v", got, want)
	}
}

func que2For(v Version, withMAC3 bool) *QUE2 {
	m := &QUE2{
		Version: v,
		RS:      nonce(1),
		ProfS:   bytes.Repeat([]byte{6}, 200),
		CertS:   bytes.Repeat([]byte{7}, 565),
		KEXMS:   bytes.Repeat([]byte{8}, 64),
		Sig:     bytes.Repeat([]byte{9}, 64),
		MACS2:   bytes.Repeat([]byte{10}, 32),
	}
	if withMAC3 {
		m.MACS3 = bytes.Repeat([]byte{11}, 32)
	}
	return m
}

func TestQUE2RoundTrip(t *testing.T) {
	cases := []struct {
		v        Version
		withMAC3 bool
	}{{V10, false}, {V20, false}, {V20, true}, {V30, true}}
	for _, c := range cases {
		m := que2For(c.v, c.withMAC3)
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("%v mac3=%v: %v", c.v, c.withMAC3, err)
		}
		q := got.(*QUE2)
		if !bytes.Equal(q.RS, m.RS) || !bytes.Equal(q.ProfS, m.ProfS) ||
			!bytes.Equal(q.CertS, m.CertS) || !bytes.Equal(q.KEXMS, m.KEXMS) ||
			!bytes.Equal(q.Sig, m.Sig) || !bytes.Equal(q.MACS2, m.MACS2) {
			t.Errorf("%v: QUE2 round trip mismatch", c.v)
		}
		if c.v == V10 && q.MACS3 != nil {
			t.Errorf("v1.0 QUE2 decoded a MAC_{S,3}")
		}
		if c.withMAC3 && !bytes.Equal(q.MACS3, m.MACS3) {
			t.Errorf("%v: MAC_{S,3} lost", c.v)
		}
	}
}

func TestQUE2V20CompositionLeak(t *testing.T) {
	// §VI-B: in v2.0, QUE2 has one more component (MAC_{S,3}) when seeking a
	// Level 3 object — the lengths differ, which is the distinguishability
	// leak v3.0 closes.
	l2only := que2For(V20, false).Encode()
	l3 := que2For(V20, true).Encode()
	if len(l3) <= len(l2only) {
		t.Fatal("v2.0 Level 3 QUE2 should be longer than Level 2 QUE2")
	}
	if len(l3)-len(l2only) != suite.MACSize {
		t.Errorf("length delta = %d, want %d (one HMAC)", len(l3)-len(l2only), suite.MACSize)
	}
	// In v3.0 every QUE2 carries both MACs: identical structure whenever.
	a := que2For(V30, true).Encode()
	b := que2For(V30, true)
	b.MACS3 = bytes.Repeat([]byte{0xEE}, 32) // different cover-up MAC, same shape
	if len(a) != len(b.Encode()) {
		t.Error("v3.0 QUE2 lengths differ across subjects")
	}
}

func TestRES2RoundTripAndShape(t *testing.T) {
	m := &RES2{Version: V30, Ciphertext: bytes.Repeat([]byte{12}, 256), MACO: bytes.Repeat([]byte{13}, 32)}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	r := got.(*RES2)
	if !bytes.Equal(r.Ciphertext, m.Ciphertext) || !bytes.Equal(r.MACO, m.MACO) {
		t.Error("RES2 round trip mismatch")
	}
	// A MAC_{O,2} RES2 and a MAC_{O,3} RES2 with equal-length ciphertexts are
	// byte-length identical: nothing on the wire says which key was used.
	m2 := &RES2{Version: V30, Ciphertext: bytes.Repeat([]byte{1}, 256), MACO: bytes.Repeat([]byte{2}, 32)}
	if len(m.Encode()) != len(m2.Encode()) {
		t.Error("RES2 shapes differ")
	}
}

func TestDecodeErrors(t *testing.T) {
	good := (&QUE1{Version: V30, RS: nonce(1)}).Encode()
	cases := map[string][]byte{
		"empty":            {},
		"one byte":         {byte(TQUE1)},
		"bad type":         {99, byte(V30), 0},
		"bad version":      {byte(TQUE1), 99, 0},
		"truncated":        good[:len(good)-5],
		"trailing":         append(append([]byte{}, good...), 1, 2),
		"que1 empty nonce": {byte(TQUE1), byte(V30), 0},
		"res1 bad mode":    {byte(TRES1), byte(V30), 9},
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode succeeded, want error", name)
		}
	}
}

func TestTranscript(t *testing.T) {
	a := &Transcript{}
	b := &Transcript{}
	a.Add([]byte("que1"))
	a.Add([]byte("res1"))
	b.Add([]byte("que1res1"))
	if a.Hash() != b.Hash() {
		t.Fatal("transcript hash depends on chunking — both sides must agree")
	}
	c := a.Clone()
	c.Add([]byte("res2"))
	if a.Hash() == c.Hash() {
		t.Fatal("clone aliases parent")
	}
	a.Add([]byte("res2"))
	if a.Hash() != c.Hash() {
		t.Fatal("clone diverges from identical additions")
	}
}

func TestSigInputQUE2CoversTranscript(t *testing.T) {
	q := que2For(V30, true)
	in1 := SigInputQUE2([]byte("q1"), []byte("r1"), q)
	in2 := SigInputQUE2([]byte("q1"), []byte("r2"), q)
	if bytes.Equal(in1, in2) {
		t.Fatal("signature input ignores RES1 — replay across sessions possible")
	}
	q2 := que2For(V30, true)
	q2.ProfS = bytes.Repeat([]byte{0xAA}, 200)
	if bytes.Equal(in1, SigInputQUE2([]byte("q1"), []byte("r1"), q2)) {
		t.Fatal("signature input ignores PROF_S")
	}
	// The MACs themselves are not under the signature (they are computed
	// after it), so changing them must not change the signature input.
	q3 := que2For(V30, true)
	q3.MACS2 = bytes.Repeat([]byte{0xBB}, 32)
	if !bytes.Equal(in1, SigInputQUE2([]byte("q1"), []byte("r1"), q3)) {
		t.Fatal("signature input should not cover the finished MACs")
	}
}

// Property: all four messages round-trip through Encode/Decode for random
// field contents.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}

	f1 := func() bool {
		m := &QUE1{Version: V30, RS: randBytes(suite.NonceSize)}
		got, err := Decode(m.Encode())
		return err == nil && reflect.DeepEqual(got, m)
	}
	f2 := func() bool {
		m := &RES1{Version: V20, Mode: ModeSecure,
			RO: randBytes(28), CertO: randBytes(1 + rng.Intn(600)),
			KEXMO: randBytes(64), Sig: randBytes(64)}
		got, err := Decode(m.Encode())
		return err == nil && reflect.DeepEqual(got, m)
	}
	f3 := func() bool {
		m := que2For(V30, true)
		m.ProfS = randBytes(1 + rng.Intn(400))
		got, err := Decode(m.Encode())
		return err == nil && reflect.DeepEqual(got, m)
	}
	f4 := func() bool {
		m := &RES2{Version: V30, Ciphertext: randBytes(1 + rng.Intn(512)), MACO: randBytes(32)}
		got, err := Decode(m.Encode())
		return err == nil && reflect.DeepEqual(got, m)
	}
	for i, f := range []func() bool{f1, f2, f3, f4} {
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("message %d: %v", i+1, err)
		}
	}
}

func TestVersionAndTypeStrings(t *testing.T) {
	if V10.String() != "v1.0" || V20.String() != "v2.0" || V30.String() != "v3.0" {
		t.Error("version strings wrong")
	}
	if Version(9).Valid() {
		t.Error("version 9 valid")
	}
	if TQUE1.String() != "QUE1" || TRES2.String() != "RES2" {
		t.Error("type strings wrong")
	}
}
