// Package wire defines the four Argus discovery messages — QUE1, RES1, QUE2,
// RES2 — for the three protocol versions the paper develops (Fig 3, 4, 5),
// with a deterministic binary codec and the transcript-hash machinery behind
// the finished MACs ("*" in the paper: all the content sent and received so
// far).
//
// Message-size accounting here drives the §IX-A message-overhead experiment:
// at 128-bit strength QUE1 is 28 B of nonce plus a fixed 3-byte header,
// RES1/QUE2/RES2 sizes land within a few bytes of the paper's 772/1008/280.
//
// The codec is canonical: Encode is a pure function of the message fields and
// Decode(Encode(m)).Encode() == Encode(m) for every valid message (fuzzed in
// fuzz_test.go). Retransmission relies on this — a resent QUE2/RES2 must be
// byte-identical to the original its transcript MAC was computed over, and an
// eavesdropper must not be able to tell a resend from a first transmission by
// shape (Case 7).
package wire

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"argus/internal/enc"
)

// Version selects the protocol iteration from the paper.
type Version byte

const (
	// V10 is Fig 3: concurrent Level 1 + Level 2 discovery.
	V10 Version = 1
	// V20 is Fig 4: adds Level 3 sensitive-attribute secrecy (MAC_{S,3} and
	// MAC_{O,3}), but Levels 2 and 3 remain distinguishable on the wire.
	V20 Version = 2
	// V30 is Fig 5: indistinguishability — QUE2 always carries both subject
	// MACs, Level 3 objects are double-faced.
	V30 Version = 3
)

// String implements fmt.Stringer.
func (v Version) String() string {
	switch v {
	case V10:
		return "v1.0"
	case V20:
		return "v2.0"
	case V30:
		return "v3.0"
	}
	return fmt.Sprintf("v?(%d)", byte(v))
}

// Valid reports whether v is a defined protocol version.
func (v Version) Valid() bool { return v == V10 || v == V20 || v == V30 }

// MsgType tags each wire message.
type MsgType byte

const (
	TQUE1 MsgType = 1
	TRES1 MsgType = 2
	TQUE2 MsgType = 3
	TRES2 MsgType = 4
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TQUE1:
		return "QUE1"
	case TRES1:
		return "RES1"
	case TQUE2:
		return "QUE2"
	case TRES2:
		return "RES2"
	}
	return fmt.Sprintf("MSG(%d)", byte(t))
}

// ResponseMode distinguishes the two RES1 bodies of the concurrent protocol:
// Level 1 objects answer with a plaintext signed profile; Level 2/3 objects
// answer with handshake material and wait for QUE2.
type ResponseMode byte

const (
	ModePublic ResponseMode = 1 // Level 1: plaintext PROF_O
	ModeSecure ResponseMode = 2 // Level 2/3: R_O, CERT_O, KEXM_O, SIG
)

// Message is implemented by all four wire messages.
type Message interface {
	// Type returns the message tag.
	Type() MsgType
	// Encode returns the wire bytes (self-describing: Type, Version, body).
	Encode() []byte
}

// QUE1 is the broadcast discovery query (all levels): it carries the random
// R_S that objects use to detect duplicate queries and that salts the session
// keys.
type QUE1 struct {
	Version Version
	RS      []byte // NonceSize bytes
}

// Type implements Message.
func (m *QUE1) Type() MsgType { return TQUE1 }

// Encode implements Message.
func (m *QUE1) Encode() []byte {
	w := enc.NewWriter(2 + 1 + len(m.RS))
	w.U8(byte(TQUE1))
	w.U8(byte(m.Version))
	w.U8(byte(len(m.RS)))
	w.Raw(m.RS)
	return w.Bytes()
}

// RES1 is the per-object response to QUE1. Exactly one of the two bodies is
// present, selected by Mode.
type RES1 struct {
	Version Version
	Mode    ResponseMode

	// ModePublic (Level 1): the plaintext admin-signed profile.
	Prof []byte

	// ModeSecure (Level 2/3): object nonce, certificate, ephemeral ECDH
	// public value, and the object's signature over R_S ‖ R_O ‖ KEXM_O.
	RO    []byte
	CertO []byte
	KEXMO []byte
	Sig   []byte
}

// Type implements Message.
func (m *RES1) Type() MsgType { return TRES1 }

// SignedPart returns the bytes the object signs: m = R_S ‖ R_O ‖ KEXM_O (§V).
func (m *RES1) SignedPart(rs []byte) []byte {
	out := make([]byte, 0, len(rs)+len(m.RO)+len(m.KEXMO))
	out = append(out, rs...)
	out = append(out, m.RO...)
	out = append(out, m.KEXMO...)
	return out
}

// Encode implements Message.
func (m *RES1) Encode() []byte {
	w := enc.NewWriter(64 + len(m.Prof) + len(m.CertO) + len(m.KEXMO))
	w.U8(byte(TRES1))
	w.U8(byte(m.Version))
	w.U8(byte(m.Mode))
	switch m.Mode {
	case ModePublic:
		w.Bytes16(m.Prof)
	case ModeSecure:
		w.Bytes16(m.RO)
		w.Bytes16(m.CertO)
		w.Bytes16(m.KEXMO)
		w.Bytes16(m.Sig)
	}
	return w.Bytes()
}

// QUE2 is the subject's second query, unicast to each Level 2/3 object found
// in phase 1. It carries the subject's profile, certificate and ephemeral
// ECDH value, a signature over the whole transcript so far, and the finished
// MACs.
type QUE2 struct {
	Version Version
	RS      []byte // echoes QUE1's R_S so the object can locate its session
	ProfS   []byte
	CertS   []byte
	KEXMS   []byte
	Sig     []byte // subject signature over "*" (transcript core, see Transcript)
	MACS2   []byte // MAC_{S,2} — always present
	// MACS3 is MAC_{S,3}: absent in v1.0; present in v2.0 only when the
	// subject performs Level 3 discovery (the distinguishability leak);
	// always present in v3.0 (cover-up keys make it universal, §VI-B).
	MACS3 []byte
}

// Type implements Message.
func (m *QUE2) Type() MsgType { return TQUE2 }

// core encodes the fields covered by the subject's signature.
func (m *QUE2) core() []byte {
	w := enc.NewWriter(64 + len(m.ProfS) + len(m.CertS) + len(m.KEXMS))
	w.U8(byte(len(m.RS)))
	w.Raw(m.RS)
	w.Bytes16(m.ProfS)
	w.Bytes16(m.CertS)
	w.Bytes16(m.KEXMS)
	return w.Bytes()
}

// Encode implements Message.
func (m *QUE2) Encode() []byte {
	core := m.core()
	w := enc.NewWriter(8 + len(core) + len(m.Sig) + len(m.MACS2) + len(m.MACS3))
	w.U8(byte(TQUE2))
	w.U8(byte(m.Version))
	w.Raw(core)
	w.Bytes16(m.Sig)
	w.Bytes16(m.MACS2)
	if m.Version != V10 {
		// v2.0 carries MAC_{S,3} only during Level 3 discovery; v3.0 always.
		w.Bytes16(m.MACS3)
	}
	return w.Bytes()
}

// RES2 is the object's final response: the encrypted profile variant and one
// finished MAC. Which key produced the MAC (K2 or K3) is invisible on the
// wire — the field layout is identical, which is what the v3.0
// indistinguishability argument rests on.
type RES2 struct {
	Version    Version
	Ciphertext []byte // [PROF_O] encrypted under K2 or K3
	MACO       []byte // MAC_{O,2} or MAC_{O,3}
}

// Type implements Message.
func (m *RES2) Type() MsgType { return TRES2 }

// Encode implements Message.
func (m *RES2) Encode() []byte {
	w := enc.NewWriter(8 + len(m.Ciphertext) + len(m.MACO))
	w.U8(byte(TRES2))
	w.U8(byte(m.Version))
	w.Bytes16(m.Ciphertext)
	w.Bytes16(m.MACO)
	return w.Bytes()
}

// Decode parses any wire message.
func Decode(b []byte) (Message, error) {
	if len(b) < 2 {
		return nil, enc.ErrTruncated
	}
	ver := Version(b[1])
	if !ver.Valid() {
		return nil, fmt.Errorf("wire: unknown version %d", b[1])
	}
	r := enc.NewReader(b[2:])
	switch MsgType(b[0]) {
	case TQUE1:
		m := &QUE1{Version: ver}
		m.RS = r.Raw(int(r.U8()))
		if err := r.Done(); err != nil {
			return nil, err
		}
		if len(m.RS) == 0 {
			return nil, errors.New("wire: QUE1 missing R_S")
		}
		return m, nil
	case TRES1:
		m := &RES1{Version: ver}
		m.Mode = ResponseMode(r.U8())
		switch m.Mode {
		case ModePublic:
			m.Prof = r.Bytes16()
		case ModeSecure:
			m.RO = r.Bytes16()
			m.CertO = r.Bytes16()
			m.KEXMO = r.Bytes16()
			m.Sig = r.Bytes16()
		default:
			return nil, fmt.Errorf("wire: unknown RES1 mode %d", m.Mode)
		}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return m, nil
	case TQUE2:
		m := &QUE2{Version: ver}
		m.RS = r.Raw(int(r.U8()))
		m.ProfS = r.Bytes16()
		m.CertS = r.Bytes16()
		m.KEXMS = r.Bytes16()
		m.Sig = r.Bytes16()
		m.MACS2 = r.Bytes16()
		if ver != V10 {
			m.MACS3 = r.Bytes16()
		}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return m, nil
	case TRES2:
		m := &RES2{Version: ver}
		m.Ciphertext = r.Bytes16()
		m.MACO = r.Bytes16()
		if err := r.Done(); err != nil {
			return nil, err
		}
		return m, nil
	}
	return nil, fmt.Errorf("wire: unknown message type %d", b[0])
}

// Transcript accumulates "*": all the content sent and received so far, in
// order, on either side of a discovery session. Both sides must feed the
// identical byte sequence to derive matching finished MACs. The buffer is
// retained (rather than a streaming hash) because the two sides hash at
// different cut points: MAC_{S,l} covers the transcript up to QUE2's core,
// MAC_{O,l} additionally covers the RES2 ciphertext.
type Transcript struct {
	data []byte
}

// Add appends message bytes to the transcript.
func (t *Transcript) Add(b []byte) { t.data = append(t.data, b...) }

// Hash returns SHA-256 over the accumulated transcript.
func (t *Transcript) Hash() [sha256.Size]byte { return sha256.Sum256(t.data) }

// Clone returns an independent copy of the transcript state.
func (t *Transcript) Clone() *Transcript {
	return &Transcript{data: append([]byte(nil), t.data...)}
}

// SigInputQUE2 returns the bytes the subject signs in QUE2: the transcript so
// far (QUE1 ‖ RES1) followed by QUE2's core fields (PROF_S, CERT_S, KEXM_S) —
// "all the content sent and received so far" per §V.
func SigInputQUE2(que1Enc, res1Enc []byte, q *QUE2) []byte {
	out := make([]byte, 0, len(que1Enc)+len(res1Enc)+256)
	out = append(out, que1Enc...)
	out = append(out, res1Enc...)
	out = append(out, q.core()...)
	return out
}
