// Package wire defines the four Argus discovery messages — QUE1, RES1, QUE2,
// RES2 — for the three protocol versions the paper develops (Fig 3, 4, 5),
// with a deterministic binary codec and the transcript-hash machinery behind
// the finished MACs ("*" in the paper: all the content sent and received so
// far).
//
// Message-size accounting here drives the §IX-A message-overhead experiment:
// at 128-bit strength QUE1 is 28 B of nonce plus a fixed 3-byte header,
// RES1/QUE2/RES2 sizes land within a few bytes of the paper's 772/1008/280.
//
// The codec is canonical: Encode is a pure function of the message fields and
// Decode(Encode(m)).Encode() == Encode(m) for every valid message (fuzzed in
// fuzz_test.go). Retransmission relies on this — a resent QUE2/RES2 must be
// byte-identical to the original its transcript MAC was computed over, and an
// eavesdropper must not be able to tell a resend from a first transmission by
// shape (Case 7).
package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"argus/internal/enc"
)

// Version selects the protocol iteration from the paper.
type Version byte

const (
	// V10 is Fig 3: concurrent Level 1 + Level 2 discovery.
	V10 Version = 1
	// V20 is Fig 4: adds Level 3 sensitive-attribute secrecy (MAC_{S,3} and
	// MAC_{O,3}), but Levels 2 and 3 remain distinguishable on the wire.
	V20 Version = 2
	// V30 is Fig 5: indistinguishability — QUE2 always carries both subject
	// MACs, Level 3 objects are double-faced.
	V30 Version = 3
)

// String implements fmt.Stringer.
func (v Version) String() string {
	switch v {
	case V10:
		return "v1.0"
	case V20:
		return "v2.0"
	case V30:
		return "v3.0"
	}
	return fmt.Sprintf("v?(%d)", byte(v))
}

// Valid reports whether v is a defined protocol version.
func (v Version) Valid() bool { return v == V10 || v == V20 || v == V30 }

// MsgType tags each wire message.
type MsgType byte

const (
	TQUE1 MsgType = 1
	TRES1 MsgType = 2
	TQUE2 MsgType = 3
	TRES2 MsgType = 4
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TQUE1:
		return "QUE1"
	case TRES1:
		return "RES1"
	case TQUE2:
		return "QUE2"
	case TRES2:
		return "RES2"
	}
	return fmt.Sprintf("MSG(%d)", byte(t))
}

// ResponseMode distinguishes the two RES1 bodies of the concurrent protocol:
// Level 1 objects answer with a plaintext signed profile; Level 2/3 objects
// answer with handshake material and wait for QUE2.
type ResponseMode byte

const (
	ModePublic ResponseMode = 1 // Level 1: plaintext PROF_O
	ModeSecure ResponseMode = 2 // Level 2/3: R_O, CERT_O, KEXM_O, SIG
)

// Message is implemented by all four wire messages.
type Message interface {
	// Type returns the message tag.
	Type() MsgType
	// Encode returns the wire bytes (self-describing: Type, Version, body).
	Encode() []byte
	// EncodedSize returns exactly len(Encode()) without encoding.
	EncodedSize() int
	// AppendTo appends the wire bytes to buf and returns the extended slice.
	// It is the zero-alloc seam under Encode: callers that own a buffer (a
	// pooled scratch, a batch frame) encode into it directly; Encode is a
	// thin wrapper allocating exactly EncodedSize. The bytes produced are
	// identical to Encode's — pinned by the golden-corpus equivalence test.
	AppendTo(buf []byte) []byte
}

// appendBytes16 appends a 2-byte big-endian length prefix followed by b —
// the append-style twin of enc.Writer.Bytes16, with the same >64 KiB panic.
func appendBytes16(dst, b []byte) []byte {
	if len(b) > 0xFFFF {
		panic(fmt.Sprintf("enc: field too long (%d bytes)", len(b)))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(b)))
	return append(dst, b...)
}

// QUE1 is the broadcast discovery query (all levels): it carries the random
// R_S that objects use to detect duplicate queries and that salts the session
// keys.
type QUE1 struct {
	Version Version
	RS      []byte // NonceSize bytes
}

// Type implements Message.
func (m *QUE1) Type() MsgType { return TQUE1 }

// EncodedSize implements Message.
func (m *QUE1) EncodedSize() int { return 3 + len(m.RS) }

// AppendTo implements Message.
func (m *QUE1) AppendTo(buf []byte) []byte {
	buf = append(buf, byte(TQUE1), byte(m.Version), byte(len(m.RS)))
	return append(buf, m.RS...)
}

// Encode implements Message.
func (m *QUE1) Encode() []byte {
	return m.AppendTo(make([]byte, 0, m.EncodedSize()))
}

// RES1 is the per-object response to QUE1. Exactly one of the two bodies is
// present, selected by Mode.
type RES1 struct {
	Version Version
	Mode    ResponseMode

	// ModePublic (Level 1): the plaintext admin-signed profile.
	Prof []byte

	// ModeSecure (Level 2/3): object nonce, certificate, ephemeral ECDH
	// public value, and the object's signature over R_S ‖ R_O ‖ KEXM_O.
	RO    []byte
	CertO []byte
	KEXMO []byte
	Sig   []byte
}

// Type implements Message.
func (m *RES1) Type() MsgType { return TRES1 }

// AppendSignedPart appends the bytes the object signs — R_S ‖ R_O ‖ KEXM_O
// (§V) — to dst; the zero-alloc form of SignedPart for scratch-buffer
// callers.
func (m *RES1) AppendSignedPart(dst, rs []byte) []byte {
	dst = append(dst, rs...)
	dst = append(dst, m.RO...)
	return append(dst, m.KEXMO...)
}

// SignedPart returns the bytes the object signs: m = R_S ‖ R_O ‖ KEXM_O (§V).
func (m *RES1) SignedPart(rs []byte) []byte {
	return m.AppendSignedPart(make([]byte, 0, len(rs)+len(m.RO)+len(m.KEXMO)), rs)
}

// EncodedSize implements Message.
func (m *RES1) EncodedSize() int {
	switch m.Mode {
	case ModePublic:
		return 3 + 2 + len(m.Prof)
	case ModeSecure:
		return 3 + 8 + len(m.RO) + len(m.CertO) + len(m.KEXMO) + len(m.Sig)
	}
	return 3
}

// AppendTo implements Message.
func (m *RES1) AppendTo(buf []byte) []byte {
	buf = append(buf, byte(TRES1), byte(m.Version), byte(m.Mode))
	switch m.Mode {
	case ModePublic:
		buf = appendBytes16(buf, m.Prof)
	case ModeSecure:
		buf = appendBytes16(buf, m.RO)
		buf = appendBytes16(buf, m.CertO)
		buf = appendBytes16(buf, m.KEXMO)
		buf = appendBytes16(buf, m.Sig)
	}
	return buf
}

// Encode implements Message.
func (m *RES1) Encode() []byte {
	return m.AppendTo(make([]byte, 0, m.EncodedSize()))
}

// QUE2 is the subject's second query, unicast to each Level 2/3 object found
// in phase 1. It carries the subject's profile, certificate and ephemeral
// ECDH value, a signature over the whole transcript so far, and the finished
// MACs.
type QUE2 struct {
	Version Version
	RS      []byte // echoes QUE1's R_S so the object can locate its session
	ProfS   []byte
	CertS   []byte
	KEXMS   []byte
	Sig     []byte // subject signature over "*" (transcript core, see Transcript)
	MACS2   []byte // MAC_{S,2} — always present
	// MACS3 is MAC_{S,3}: absent in v1.0; present in v2.0 only when the
	// subject performs Level 3 discovery (the distinguishability leak);
	// always present in v3.0 (cover-up keys make it universal, §VI-B).
	MACS3 []byte
}

// Type implements Message.
func (m *QUE2) Type() MsgType { return TQUE2 }

// coreSize returns the encoded length of the signature-covered core fields.
func (m *QUE2) coreSize() int {
	return 1 + len(m.RS) + 6 + len(m.ProfS) + len(m.CertS) + len(m.KEXMS)
}

// appendCore appends the fields covered by the subject's signature.
func (m *QUE2) appendCore(buf []byte) []byte {
	buf = append(buf, byte(len(m.RS)))
	buf = append(buf, m.RS...)
	buf = appendBytes16(buf, m.ProfS)
	buf = appendBytes16(buf, m.CertS)
	return appendBytes16(buf, m.KEXMS)
}

// EncodedSize implements Message.
func (m *QUE2) EncodedSize() int {
	n := 2 + m.coreSize() + 2 + len(m.Sig) + 2 + len(m.MACS2)
	if m.Version != V10 {
		n += 2 + len(m.MACS3)
	}
	return n
}

// AppendTo implements Message.
func (m *QUE2) AppendTo(buf []byte) []byte {
	buf = append(buf, byte(TQUE2), byte(m.Version))
	buf = m.appendCore(buf)
	buf = appendBytes16(buf, m.Sig)
	buf = appendBytes16(buf, m.MACS2)
	if m.Version != V10 {
		// v2.0 carries MAC_{S,3} only during Level 3 discovery; v3.0 always.
		buf = appendBytes16(buf, m.MACS3)
	}
	return buf
}

// Encode implements Message.
func (m *QUE2) Encode() []byte {
	return m.AppendTo(make([]byte, 0, m.EncodedSize()))
}

// RES2 is the object's final response: the encrypted profile variant and one
// finished MAC. Which key produced the MAC (K2 or K3) is invisible on the
// wire — the field layout is identical, which is what the v3.0
// indistinguishability argument rests on.
type RES2 struct {
	Version    Version
	Ciphertext []byte // [PROF_O] encrypted under K2 or K3
	MACO       []byte // MAC_{O,2} or MAC_{O,3}
}

// Type implements Message.
func (m *RES2) Type() MsgType { return TRES2 }

// EncodedSize implements Message.
func (m *RES2) EncodedSize() int { return 2 + 4 + len(m.Ciphertext) + len(m.MACO) }

// AppendTo implements Message.
func (m *RES2) AppendTo(buf []byte) []byte {
	buf = append(buf, byte(TRES2), byte(m.Version))
	buf = appendBytes16(buf, m.Ciphertext)
	return appendBytes16(buf, m.MACO)
}

// Encode implements Message.
func (m *RES2) Encode() []byte {
	return m.AppendTo(make([]byte, 0, m.EncodedSize()))
}

// Decode parses any wire message.
func Decode(b []byte) (Message, error) {
	if len(b) < 2 {
		return nil, enc.ErrTruncated
	}
	ver := Version(b[1])
	if !ver.Valid() {
		return nil, fmt.Errorf("wire: unknown version %d", b[1])
	}
	r := enc.NewReader(b[2:])
	switch MsgType(b[0]) {
	case TQUE1:
		m := &QUE1{Version: ver}
		m.RS = r.Raw(int(r.U8()))
		if err := r.Done(); err != nil {
			return nil, err
		}
		if len(m.RS) == 0 {
			return nil, errors.New("wire: QUE1 missing R_S")
		}
		return m, nil
	case TRES1:
		m := &RES1{Version: ver}
		m.Mode = ResponseMode(r.U8())
		switch m.Mode {
		case ModePublic:
			m.Prof = r.Bytes16()
		case ModeSecure:
			m.RO = r.Bytes16()
			m.CertO = r.Bytes16()
			m.KEXMO = r.Bytes16()
			m.Sig = r.Bytes16()
		default:
			return nil, fmt.Errorf("wire: unknown RES1 mode %d", m.Mode)
		}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return m, nil
	case TQUE2:
		m := &QUE2{Version: ver}
		m.RS = r.Raw(int(r.U8()))
		m.ProfS = r.Bytes16()
		m.CertS = r.Bytes16()
		m.KEXMS = r.Bytes16()
		m.Sig = r.Bytes16()
		m.MACS2 = r.Bytes16()
		if ver != V10 {
			m.MACS3 = r.Bytes16()
		}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return m, nil
	case TRES2:
		m := &RES2{Version: ver}
		m.Ciphertext = r.Bytes16()
		m.MACO = r.Bytes16()
		if err := r.Done(); err != nil {
			return nil, err
		}
		return m, nil
	}
	return nil, fmt.Errorf("wire: unknown message type %d", b[0])
}

// Transcript accumulates "*": all the content sent and received so far, in
// order, on either side of a discovery session. Both sides must feed the
// identical byte sequence to derive matching finished MACs. The buffer is
// retained (rather than a streaming hash) because the two sides hash at
// different cut points: MAC_{S,l} covers the transcript up to QUE2's core,
// MAC_{O,l} additionally covers the RES2 ciphertext.
type Transcript struct {
	data []byte
}

// NewTranscript returns a transcript whose buffer is borrowed from the
// scratch pool when capacity fits, so short-lived transcripts (the object
// side builds and hashes two per QUE2, then drops both) recycle their memory
// via Release instead of churning the allocator. A transcript that outlives
// its handler call (the subject's per-session cut) is simply never Released.
func NewTranscript(capacity int) *Transcript {
	if capacity <= scratchCap {
		return &Transcript{data: GetScratch()}
	}
	return &Transcript{data: make([]byte, 0, capacity)}
}

// Release returns the transcript's buffer to the scratch pool and empties
// the transcript. Only call when nothing aliases the accumulated bytes.
func (t *Transcript) Release() {
	PutScratch(t.data)
	t.data = nil
}

// Len returns the number of accumulated transcript bytes.
func (t *Transcript) Len() int { return len(t.data) }

// Add appends message bytes to the transcript.
func (t *Transcript) Add(b []byte) { t.data = append(t.data, b...) }

// Hash returns SHA-256 over the accumulated transcript.
func (t *Transcript) Hash() [sha256.Size]byte { return sha256.Sum256(t.data) }

// Clone returns an independent copy of the transcript state.
func (t *Transcript) Clone() *Transcript {
	return &Transcript{data: append([]byte(nil), t.data...)}
}

// CloneInto returns an independent copy with room for extra more bytes,
// pool-backed like NewTranscript — the object side extends its subject cut
// by the finished MACs and ciphertext, and sizing the clone once avoids the
// growth copies.
func (t *Transcript) CloneInto(extra int) *Transcript {
	c := NewTranscript(len(t.data) + extra)
	c.data = append(c.data, t.data...)
	return c
}

// SigInputSizeQUE2 returns exactly len(SigInputQUE2(que1Enc, res1Enc, q)).
func SigInputSizeQUE2(que1Enc, res1Enc []byte, q *QUE2) int {
	return len(que1Enc) + len(res1Enc) + q.coreSize()
}

// AppendSigInputQUE2 appends the QUE2 signature input to dst — the
// zero-alloc form of SigInputQUE2 for callers holding a scratch buffer.
func AppendSigInputQUE2(dst []byte, que1Enc, res1Enc []byte, q *QUE2) []byte {
	dst = append(dst, que1Enc...)
	dst = append(dst, res1Enc...)
	return q.appendCore(dst)
}

// SigInputQUE2 returns the bytes the subject signs in QUE2: the transcript so
// far (QUE1 ‖ RES1) followed by QUE2's core fields (PROF_S, CERT_S, KEXM_S) —
// "all the content sent and received so far" per §V.
func SigInputQUE2(que1Enc, res1Enc []byte, q *QUE2) []byte {
	return AppendSigInputQUE2(make([]byte, 0, SigInputSizeQUE2(que1Enc, res1Enc, q)), que1Enc, res1Enc, q)
}
