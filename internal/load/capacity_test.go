package load

import (
	"errors"
	"strings"
	"testing"
)

// syntheticOracle is a fake TrialFunc with a known knee: rates at or below
// the knee pass; rates above fail with the configured counter regime. No
// engines, no clocks — the search tests run in microseconds.
type syntheticOracle struct {
	knee   float64
	fail   func(t *Trial) // decorates a failing trial with its regime
	trials []float64      // every offered rate, in call order
}

func (o *syntheticOracle) run(offered float64) (Trial, error) {
	o.trials = append(o.trials, offered)
	t := Trial{Offered: offered, Seconds: 5, Armed: int64(offered * 5)}
	if offered <= o.knee {
		t.Pass = true
		t.Achieved = offered
		t.Completed = t.Armed
		return t, nil
	}
	t.Achieved = o.knee
	t.Violations = []string{"synthetic: over the knee"}
	if o.fail != nil {
		o.fail(&t)
	}
	return t, nil
}

func TestSearchCapacityConverges(t *testing.T) {
	for _, knee := range []float64{137, 800, 2500} {
		o := &syntheticOracle{knee: knee}
		res, err := SearchCapacity(CapacityConfig{Start: 100, Growth: 2, Tolerance: 0.1, MaxTrials: 32}, o.run)
		if err != nil {
			t.Fatalf("knee %v: %v", knee, err)
		}
		if !res.Converged {
			t.Errorf("knee %v: did not converge (%d trials)", knee, len(res.Trials))
		}
		if res.Knee > knee || res.Knee < knee*0.85 {
			t.Errorf("knee %v: found %v, want within [%.1f, %.1f]", knee, res.Knee, knee*0.85, knee)
		}
		if res.FirstFail <= knee {
			t.Errorf("knee %v: first fail %v should be above the knee", knee, res.FirstFail)
		}
		if res.FirstFail-res.Knee > 0.1*res.Knee+1e-9 {
			t.Errorf("knee %v: bracket [%v, %v] wider than tolerance", knee, res.Knee, res.FirstFail)
		}
	}
}

func TestSearchCapacityMonotoneBracketLadder(t *testing.T) {
	o := &syntheticOracle{knee: 900}
	res, err := SearchCapacity(CapacityConfig{Start: 100, Growth: 2, Tolerance: 0.1, MaxTrials: 32}, o.run)
	if err != nil {
		t.Fatal(err)
	}
	// The ladder is strictly increasing until the first failure...
	firstFail := -1
	for i, tr := range res.Trials {
		if !tr.Pass {
			firstFail = i
			break
		}
		if i > 0 && tr.Offered <= res.Trials[i-1].Offered {
			t.Errorf("bracket ladder not increasing at %d: %v after %v", i, tr.Offered, res.Trials[i-1].Offered)
		}
	}
	if firstFail < 0 {
		t.Fatal("oracle never failed; bad test setup")
	}
	// ...and every probe after it stays inside the open bracket.
	lo, hi := res.Trials[firstFail-1].Offered, res.Trials[firstFail].Offered
	for _, r := range o.trials[firstFail+1:] {
		if r <= lo || r >= hi {
			t.Errorf("bisection probe %v outside bracket (%v, %v)", r, lo, hi)
		}
		if res.Trials[len(res.Trials)-1].Pass {
			lo = res.Trials[len(res.Trials)-1].Offered
		}
	}
}

func TestSearchCapacityBoundedTrials(t *testing.T) {
	// A needle-thin tolerance cannot run past the trial budget.
	o := &syntheticOracle{knee: 777}
	res, err := SearchCapacity(CapacityConfig{Start: 10, Growth: 2, Tolerance: 1e-9, MaxTrials: 12}, o.run)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) > 12 {
		t.Errorf("ran %d trials, budget 12", len(res.Trials))
	}
	if res.Converged {
		t.Error("cannot have converged to 1e-9 tolerance in 12 trials")
	}
	if res.Knee <= 0 || res.Knee > 777 {
		t.Errorf("budget-exhausted knee %v should still be a passing rate <= 777", res.Knee)
	}
}

func TestSearchCapacityBracketsDownward(t *testing.T) {
	// Start far above the knee: the search must divide its way down.
	o := &syntheticOracle{knee: 50}
	res, err := SearchCapacity(CapacityConfig{Start: 6400, Growth: 2, Tolerance: 0.1, MaxTrials: 32}, o.run)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Knee > 50 || res.Knee < 40 {
		t.Errorf("downward-bracketed knee %v, want within [40, 50]", res.Knee)
	}
}

func TestSearchCapacityNothingSustains(t *testing.T) {
	o := &syntheticOracle{knee: 0} // every rate fails
	res, err := SearchCapacity(CapacityConfig{Start: 100, Growth: 2, Tolerance: 0.1, MaxTrials: 40}, o.run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Knee != 0 || res.Converged {
		t.Errorf("nothing sustains: knee %v converged %v, want 0 and false", res.Knee, res.Converged)
	}
	if len(res.Trials) >= 40 {
		t.Errorf("downward bracket must give up before the budget, ran %d", len(res.Trials))
	}
}

func TestSearchCapacityCeiling(t *testing.T) {
	o := &syntheticOracle{knee: 1e12} // effectively infinite capacity
	res, err := SearchCapacity(CapacityConfig{Start: 100, Growth: 2, Tolerance: 0.1, MaxTrials: 32, Ceiling: 500}, o.run)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitCeiling || res.Knee != 500 {
		t.Errorf("ceiling: knee %v hitCeiling %v, want 500 and true", res.Knee, res.HitCeiling)
	}
	for _, r := range o.trials {
		if r > 500 {
			t.Errorf("offered %v above the ceiling", r)
		}
	}
}

func TestSearchCapacityPropagatesTrialError(t *testing.T) {
	boom := errors.New("fleet broke")
	_, err := SearchCapacity(CapacityConfig{}, func(float64) (Trial, error) { return Trial{}, boom })
	if !errors.Is(err, boom) {
		t.Errorf("got %v, want wrapped %v", err, boom)
	}
}

func TestSearchCapacityBottleneckPerRegime(t *testing.T) {
	regimes := []struct {
		name string
		fail func(t *Trial)
		want string
	}{
		{"mailbox", func(t *Trial) { t.Counters.MailboxDrops = t.Armed / 10 }, "mailbox-drops"},
		{"vcache", func(t *Trial) { t.Counters.VCacheMisses = t.Armed / 2 }, "vcache-misses"},
		{"retrans", func(t *Trial) { t.Counters.Retransmissions = t.Armed / 4 }, "retransmissions"},
		{"expiry", func(t *Trial) { t.Counters.SessionExpiries = t.Armed / 20 }, "session-expiries"},
		{"backlog", func(t *Trial) { t.SkipFraction = 0.4 }, "arrival-backlog"},
		{"compute", func(*Trial) {}, "compute-saturation"},
		// Causal precedence: drops upstream of retransmissions win even when
		// the downstream counter is larger.
		{"precedence", func(t *Trial) {
			t.Counters.MailboxDrops = t.Armed / 10
			t.Counters.Retransmissions = t.Armed
			t.Counters.SessionExpiries = t.Armed
		}, "mailbox-drops"},
		// Sub-threshold counters (<1% of armed) are noise, not a verdict.
		{"noise", func(t *Trial) { t.Counters.MailboxDrops = t.Armed / 1000 }, "compute-saturation"},
	}
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			o := &syntheticOracle{knee: 300, fail: rg.fail}
			res, err := SearchCapacity(CapacityConfig{Start: 100, Growth: 2, Tolerance: 0.1, MaxTrials: 32}, o.run)
			if err != nil {
				t.Fatal(err)
			}
			if res.Bottleneck != rg.want {
				t.Errorf("bottleneck %q, want %q", res.Bottleneck, rg.want)
			}
		})
	}
}

func TestEvalTrial(t *testing.T) {
	rep := &Report{Counters: map[string]int64{
		"mailbox_drops":            0,
		"vcache_misses":            3,
		"retransmissions":          1,
		"subject_sessions_expired": 0,
	}}
	rep.Totals.Armed = 1000
	rep.Totals.Completed = 1000
	rep.Totals.SkippedArrivals = 0
	tr := EvalTrial(200, 5, 2, rep, TrialSLO(SLO{}), 0.05)
	if !tr.Pass {
		t.Fatalf("clean window must pass: %v", tr.Violations)
	}
	if tr.Achieved != 200 {
		t.Errorf("achieved %v, want 200", tr.Achieved)
	}
	if tr.Counters.VCacheMisses != 3 || tr.Counters.Retransmissions != 1 {
		t.Errorf("counters not threaded through: %+v", tr.Counters)
	}

	// 30 skipped arrivals × 2 sessions each against 1000 armed = 5.7% shed.
	rep.Totals.SkippedArrivals = 30
	tr = EvalTrial(200, 5, 2, rep, TrialSLO(SLO{}), 0.05)
	if tr.Pass {
		t.Fatal("saturated window (skip fraction 5.7%) must fail")
	}
	found := false
	for _, v := range tr.Violations {
		if strings.Contains(v, "skip fraction") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing skip-fraction violation: %v", tr.Violations)
	}
	if tr.SkipFraction < 0.056 || tr.SkipFraction > 0.058 {
		t.Errorf("skip fraction %v, want ~0.0566", tr.SkipFraction)
	}

	// Lost sessions trip the strict trial gate.
	rep.Totals.SkippedArrivals = 0
	rep.Totals.Lost = 2
	tr = EvalTrial(200, 5, 2, rep, TrialSLO(SLO{}), 0.05)
	if tr.Pass {
		t.Fatal("window with lost sessions must fail")
	}
}

func TestTrialSLOOverrides(t *testing.T) {
	base := SLO{MaxRetransmissions: 5, MinPeakConcurrent: 100, CovertnessAlpha: 0.01}
	s := TrialSLO(base)
	if s.MaxRetransmissions != -1 || s.MaxWarmRetransmissions != -1 {
		t.Error("retransmission gates must be disabled for trials")
	}
	if s.MinPeakConcurrent != 0 || s.CovertnessAlpha != 0 {
		t.Error("concurrency floor and covertness gate must be off for trials")
	}
	if s.MaxLost != 0 || s.MaxMailboxDrops != 0 || s.MaxExpiredExtra != 0 {
		t.Error("loss gates must be strict for trials")
	}
}
