package load

import (
	"encoding/json"
	"io"
	"runtime"
	"strconv"
	"time"

	"argus/internal/adversary"
	"argus/internal/obs"
)

// Report is the machine-readable result of one load run — the payload of
// BENCH_5.json. Every number is either harness ground truth (the
// expectation ledger) or pulled from the run's obs snapshot, so the report
// double-checks the telemetry pipeline against independent accounting.
type Report struct {
	Profile     string `json:"profile"`
	Description string `json:"description,omitempty"`
	Transport   string `json:"transport"`
	Seed        int64  `json:"seed"`

	Fleet  FleetStats  `json:"fleet"`
	Waves  []WaveStats `json:"waves,omitempty"`
	Totals Totals      `json:"totals"`

	// Latency maps level ("1".."3") to end-to-end handshake quantiles in
	// seconds (phase=total of argus_discovery_phase_seconds).
	Latency map[string]Quantiles `json:"latency"`

	// RedeliveryLag summarizes how long parked notifications waited in the
	// dead-letter queue before redelivery (crash-window churn only).
	RedeliveryLag *Quantiles `json:"redelivery_lag,omitempty"`

	// Counters summarizes the obs counter families the SLOs reference.
	Counters map[string]int64 `json:"counters"`

	// PredictedSubjectExpiries is the ledger's expected subject-side session
	// expiry count (revoked subjects' silently refused handshakes).
	PredictedSubjectExpiries int64 `json:"predicted_subject_expiries"`

	// Adversary ledgers the injected-vs-counted accounting of the replay and
	// Sybil personas (profiles with ReplayTargets/SybilRounds only).
	Adversary *AdversaryReport `json:"adversary,omitempty"`

	// Covertness is the passive crowd observer's statistical verdict
	// (profiles with Observer only).
	Covertness *adversary.Covertness `json:"covertness,omitempty"`

	SLO SLOResult `json:"slo"`
}

// AdversaryReport pairs what the adversarial personas injected with how the
// object-side outcome counters moved while they ran. Under strict accounting
// the deltas must equal the injections exactly: every orphan replay one
// orphan, every duplicate one cached resend, every stale or forged QUE2 one
// rejection — nothing more, nothing unexplained.
type AdversaryReport struct {
	Replay *adversary.ReplayStats `json:"replay,omitempty"`
	Sybil  *adversary.SybilStats  `json:"sybil,omitempty"`

	// Counter movements observed at the objects over the adversary phase.
	OrphanDelta    int64 `json:"orphan_delta"`
	DuplicateDelta int64 `json:"duplicate_delta"`
	RejectedDelta  int64 `json:"rejected_delta"`
}

// FleetStats describes the run's population.
type FleetStats struct {
	Cells           int `json:"cells"`
	SubjectsPerCell int `json:"subjects_per_cell"`
	ObjectsPerCell  int `json:"objects_per_cell"`
	Subjects        int `json:"subjects"`
	Objects         int `json:"objects"`
	Revoked         int `json:"revoked,omitempty"`
	Added           int `json:"added,omitempty"`
	Crashed         int `json:"crashed,omitempty"`
	Roamed          int `json:"roamed,omitempty"`
	Sleepy          int `json:"sleepy,omitempty"`
}

// WaveStats is one closed-loop wave's summary.
type WaveStats struct {
	Index           int     `json:"index"`
	Subjects        int     `json:"subjects"`
	Armed           int64   `json:"armed"`
	Lost            int64   `json:"lost"`
	Seconds         float64 `json:"seconds"`
	VCacheHits      int64   `json:"vcache_hits"`
	VCacheMisses    int64   `json:"vcache_misses"`
	Retransmissions int64   `json:"retransmissions"`
}

// Totals aggregates the whole run.
type Totals struct {
	Armed             int64   `json:"armed"`
	Completed         int64   `json:"completed"`
	Lost              int64   `json:"lost"`
	Unexpected        int64   `json:"unexpected"`
	Late              int64   `json:"late"`
	LevelMismatch     int64   `json:"level_mismatch"`
	SkippedArrivals   int64   `json:"skipped_arrivals,omitempty"`
	PeakInflight      int64   `json:"peak_inflight"`
	PeakOpenHandshake int64   `json:"peak_open_handshakes"`
	LeakedSessions    int64   `json:"leaked_sessions"`
	WallSeconds       float64 `json:"wall_seconds"`
	SessionsPerSecond float64 `json:"sessions_per_second"`
	HeapAllocMB       float64 `json:"heap_alloc_mb"`
}

// Quantiles is one level's latency summary in seconds. Overflow counts
// sessions beyond the last histogram bucket, where quantile estimates
// saturate.
type Quantiles struct {
	Count    uint64  `json:"count"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	Overflow int64   `json:"overflow"`
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// sumFamily totals a counter family across every label set matching the
// given labels.
func sumFamily(snap *obs.Snapshot, name string, labels ...obs.Label) int64 {
	var total int64
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		if m.Name != name {
			continue
		}
		match := true
		for _, l := range labels {
			if m.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if match {
			total += int64(m.Value)
		}
	}
	return total
}

// buildReport assembles the report from the ledger and a final snapshot.
func (r *runner) buildReport(wall time.Duration, leaked int64) *Report {
	snap := r.reg.Snapshot()
	p := r.p

	rep := &Report{
		Profile:     p.Name,
		Description: p.Description,
		Transport:   string(p.Transport),
		Seed:        p.Seed,
		Fleet: FleetStats{
			Cells:           p.Cells,
			SubjectsPerCell: p.SubjectsPerCell,
			ObjectsPerCell:  p.ObjectsPerCell,
			Subjects:        p.Subjects() + r.addedCount,
			Objects:         p.Objects(),
			Revoked:         r.revokedCount,
			Added:           r.addedCount,
			Crashed:         r.crashedCount,
			Roamed:          r.roamedCount,
			Sleepy:          r.fleet.sleepy,
		},
		Waves:                    r.waves,
		Latency:                  map[string]Quantiles{},
		Counters:                 map[string]int64{},
		PredictedSubjectExpiries: r.predictedSubjExpiries,
		Adversary:                r.advReport,
		Covertness:               r.covert,
	}

	// Collect before sampling so HeapAlloc reports live heap rather than an
	// arbitrary point in the GC cycle — raw samples on identical runs swung
	// ~2x depending on where the last collection landed.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	completed := r.completed.Load()
	rep.Totals = Totals{
		Armed:             r.armed.Load(),
		Completed:         completed,
		Lost:              r.lost.Load(),
		Unexpected:        r.unexpected.Load(),
		Late:              r.late.Load(),
		LevelMismatch:     r.levelMismatch.Load(),
		SkippedArrivals:   r.skippedArrivals.Load(),
		PeakInflight:      r.inflight.peak.Load(),
		PeakOpenHandshake: r.peakOpen.Load(),
		LeakedSessions:    leaked,
		WallSeconds:       wall.Seconds(),
		HeapAllocMB:       float64(ms.HeapAlloc) / (1 << 20),
	}
	if wall > 0 {
		rep.Totals.SessionsPerSecond = float64(completed) / wall.Seconds()
	}

	fillLatency(rep, snap)
	fillCounters(rep, snap)
	return rep
}

// quantilesOf lifts one snapshot histogram into the report's summary form.
func quantilesOf(m *obs.Metric) Quantiles {
	return Quantiles{Count: m.Count, P50: m.P50, P95: m.P95, P99: m.P99, Overflow: int64(m.Overflow)}
}

// fillLatency populates the per-level end-to-end quantiles and the DLQ
// redelivery lag from one snapshot.
func fillLatency(rep *Report, snap *obs.Snapshot) {
	for lvl := 1; lvl <= 3; lvl++ {
		key := strconv.Itoa(lvl)
		m := snap.Get(obs.MDiscoveryPhaseSeconds, obs.L("level", key), obs.L("phase", obs.PhaseAll))
		if m == nil || m.Count == 0 {
			continue
		}
		rep.Latency[key] = quantilesOf(m)
	}
	if m := snap.Get(obs.MUpdateRedeliveryLag); m != nil && m.Count > 0 {
		q := quantilesOf(m)
		rep.RedeliveryLag = &q
	}
}

// fillCounters populates the counter families the SLOs and the ops tail
// reference from one snapshot.
func fillCounters(rep *Report, snap *obs.Snapshot) {
	rep.Counters["discoveries"] = sumFamily(snap, obs.MDiscoveries)
	rep.Counters["mailbox_drops"] = sumFamily(snap, obs.MTransportMailboxDrops)
	rep.Counters["malformed_drops"] = sumFamily(snap, obs.MMalformedDrops)
	rep.Counters["retransmissions"] = sumFamily(snap, obs.MRetransmissions)
	rep.Counters["subject_sessions_expired"] = sumFamily(snap, obs.MSessionsExpired, obs.L("role", "subject"))
	rep.Counters["object_sessions_expired"] = sumFamily(snap, obs.MSessionsExpired, obs.L("role", "object"))
	rep.Counters["vcache_hits"] = sumFamily(snap, obs.MVerifyCacheEvents, obs.L("result", "hit"))
	rep.Counters["vcache_misses"] = sumFamily(snap, obs.MVerifyCacheEvents, obs.L("result", "miss"))
	rep.Counters["updates_applied"] = sumFamily(snap, obs.MUpdateApplied)
	rep.Counters["updates_rejected"] = sumFamily(snap, obs.MUpdateRejected)
	rep.Counters["update_sent"] = sumFamily(snap, obs.MUpdateSent)
	rep.Counters["update_undeliverable"] = sumFamily(snap, obs.MUpdateUndeliverable)
	rep.Counters["update_redelivered"] = sumFamily(snap, obs.MUpdateRedelivered)
	rep.Counters["dlq_evictions"] = sumFamily(snap, obs.MUpdateDLQEvictions)
	rep.Counters["dlq_depth"] = sumFamily(snap, obs.MUpdateDLQDepth)
	rep.Counters["faults_lost"] = sumFamily(snap, obs.MNetFaultLost)
	rep.Counters["faults_corrupted"] = sumFamily(snap, obs.MNetFaultCorrupted)
	rep.Counters["faults_duplicated"] = sumFamily(snap, obs.MNetFaultDuplicated)
	rep.Counters["roams"] = sumFamily(snap, obs.MLoadRoams)
	rep.Counters["sleepy_drops"] = sumFamily(snap, obs.MLoadSleepyDrops)
	rep.Counters["adversary_injected"] = sumFamily(snap, obs.MAdversaryInjected)
	rep.Counters["observer_samples"] = sumFamily(snap, obs.MAdversarySamples)
	rep.Counters["que2_orphans"] = sumFamily(snap, obs.MObjectQue2, obs.L("result", "orphan"))
	rep.Counters["que2_rejected"] = sumFamily(snap, obs.MObjectQue2, obs.L("result", "rejected"))
	// Covertness p-value gauges (ppm). -1 = observer present but not yet
	// evaluated; absent gauges (no observer) also read -1.
	rep.Counters["covert_timing_p_ppm"] = gaugeOr(snap, obs.MAdversaryCovertPpm, -1, obs.L("channel", "timing"))
	rep.Counters["covert_length_p_ppm"] = gaugeOr(snap, obs.MAdversaryCovertPpm, -1, obs.L("channel", "length"))
}

// gaugeOr reads one gauge from the snapshot, or def when it is absent.
func gaugeOr(snap *obs.Snapshot, name string, def int64, labels ...obs.Label) int64 {
	if m := snap.Get(name, labels...); m != nil {
		return int64(m.Value)
	}
	return def
}

// SnapshotReport derives the snapshot-computable slice of a Report from one
// obs snapshot: latency quantiles, redelivery lag, counter families, and the
// load totals the harness's own counters expose. argus-ops evaluates the
// streaming SLO gates against this, so a live tail and the finished report
// share one set of definitions. Ledger-derived fields (expectation
// arithmetic, peaks, wave stats) are zero.
func SnapshotReport(snap *obs.Snapshot) *Report {
	rep := &Report{Latency: map[string]Quantiles{}, Counters: map[string]int64{}}
	fillLatency(rep, snap)
	fillCounters(rep, snap)
	rep.Totals.Armed = sumFamily(snap, obs.MLoadRoundsArmed)
	rep.Totals.Completed = sumFamily(snap, obs.MLoadCompletions)
	rep.Totals.Lost = sumFamily(snap, obs.MLoadLost)
	rep.Totals.Unexpected = sumFamily(snap, obs.MLoadUnexpected)
	rep.Totals.PeakInflight = sumFamily(snap, obs.MLoadPeakInflight)
	rep.Totals.SkippedArrivals = sumFamily(snap, obs.MLoadSkipped)
	return rep
}
