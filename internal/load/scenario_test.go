package load

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"argus/internal/adversary"
)

// TestAdversarySoak runs the built-in adversary-soak profile: three honest
// waves with roaming subjects and duty-cycled (sleepy) objects, then the
// replay and Sybil personas against every cell. The acceptance bar is exact:
// the honest fleet stays lossless with its SLOs green, and every injected
// hostile frame is accounted for by exactly one object-side counter
// increment — no skips, no idempotency violations, nothing unexplained.
func TestAdversarySoak(t *testing.T) {
	p := Profiles()["adversary-soak"]
	p.Logf = t.Logf
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}

	// Honest traffic is unharmed: lossless, fully accounted, no leaks.
	if rep.Totals.Lost != 0 {
		t.Fatalf("lost completions: %d", rep.Totals.Lost)
	}
	if rep.Totals.Completed != rep.Totals.Armed {
		t.Fatalf("completed %d != armed %d", rep.Totals.Completed, rep.Totals.Armed)
	}
	if rep.Totals.Unexpected != 0 || rep.Totals.LevelMismatch != 0 {
		t.Fatalf("unexpected %d, level mismatches %d", rep.Totals.Unexpected, rep.Totals.LevelMismatch)
	}
	if rep.Totals.LeakedSessions != 0 {
		t.Fatalf("leaked sessions: %d", rep.Totals.LeakedSessions)
	}

	// Roaming arithmetic: 2 of each cell's 6 subjects migrate at each of the
	// 2 wave boundaries, in 6 cells — and the telemetry counter must agree
	// with the harness ledger.
	if rep.Fleet.Roamed != 24 {
		t.Fatalf("roamed %d, want 24", rep.Fleet.Roamed)
	}
	if got := rep.Counters["roams"]; got != 24 {
		t.Fatalf("roams counter %d, want 24", got)
	}
	// Every roamer arrives with re-issued credentials at a cell whose verify
	// cache has never seen it: the warm waves must show fresh misses (each
	// roamer costs at least a cert and a profile miss at its new cell).
	warmMisses := rep.Waves[1].VCacheMisses + rep.Waves[2].VCacheMisses
	if warmMisses < 24 {
		t.Fatalf("warm-wave vcache misses %d, want >= 24 (roamer re-verification)", warmMisses)
	}
	if rep.Waves[0].VCacheMisses == 0 {
		t.Fatal("wave 0 saw no verify-cache misses (cold phase missing)")
	}

	// Sleepy devices: one duty-cycled object per cell, which must actually
	// have slept through frames — recovered by retransmission, not by luck.
	if rep.Fleet.Sleepy != 6 {
		t.Fatalf("sleepy objects %d, want 6", rep.Fleet.Sleepy)
	}
	if rep.Counters["sleepy_drops"] == 0 {
		t.Fatal("sleepy objects dropped nothing: the duty cycle never gated a frame")
	}
	if rep.Counters["retransmissions"] == 0 {
		t.Fatal("no retransmissions: sleepy recovery never exercised the retry path")
	}

	// Replay persona ledger: per cell, 1 target, 1 orphan QUE2, 1 QUE1 replay,
	// 2 duplicate QUE1s, 1 stale QUE2.
	if rep.Adversary == nil || rep.Adversary.Replay == nil {
		t.Fatal("report missing replay stats")
	}
	rp := rep.Adversary.Replay
	if rp.Targets != 6 || rp.Skipped != 0 {
		t.Fatalf("replay targets %d (skipped %d), want 6 (0)", rp.Targets, rp.Skipped)
	}
	if rp.OrphanQue2 != 6 || rp.Que1 != 6 || rp.DupQue1 != 12 || rp.StaleQue2 != 6 {
		t.Fatalf("replay injections = %+v, want orphan 6 / que1 6 / dup 12 / stale 6", rp)
	}
	if rp.IdempotencyViolations != 0 {
		t.Fatalf("duplicate-QUE1 idempotency violations: %d", rp.IdempotencyViolations)
	}

	// Sybil persona ledger: one flood per cell; every secure object offers a
	// handshake (3 per cell), the L1 object answers in the clear, and every
	// forged QUE2 targets a secure responder.
	if rep.Adversary.Sybil == nil {
		t.Fatal("report missing sybil stats")
	}
	sy := rep.Adversary.Sybil
	if sy.Identities != 6 || sy.Broadcasts != 6 {
		t.Fatalf("sybil identities %d, broadcasts %d, want 6/6", sy.Identities, sy.Broadcasts)
	}
	if sy.SecureRes1 != 18 || sy.PublicRes1 != 6 || sy.Forged != 18 {
		t.Fatalf("sybil responses = %+v, want secure 18 / public 6 / forged 18", sy)
	}

	// The exact-delta accounting: every hostile frame shows up as exactly one
	// object-side outcome — 6 orphans, 12 duplicates, 24 rejections (6 stale
	// replays + 18 forged Sybil QUE2s). The SLO gate already enforced this;
	// re-assert the raw numbers so a loosened gate cannot rot silently.
	if rep.Adversary.OrphanDelta != 6 || rep.Adversary.DuplicateDelta != 12 || rep.Adversary.RejectedDelta != 24 {
		t.Fatalf("adversary deltas orphan %d / dup %d / rejected %d, want 6/12/24",
			rep.Adversary.OrphanDelta, rep.Adversary.DuplicateDelta, rep.Adversary.RejectedDelta)
	}
	// Total injected: replay 3 QUE1 + 2 QUE2 per cell, sybil 1 QUE1 + 3 QUE2.
	if got := rep.Counters["adversary_injected"]; got != 54 {
		t.Fatalf("adversary_injected %d, want 54", got)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}

// TestCovertObserver runs the built-in covert-observer profile: non-fellow
// subjects against a half-L2 / half-L3 fleet with the passive crowd observer
// sampling every exchange. With the countermeasures intact (v3.0 cover-ups,
// uniform-length padding) the two populations must be statistically
// indistinguishable, and the covertness SLO gate must pass.
func TestCovertObserver(t *testing.T) {
	p := Profiles()["covert-observer"]
	p.Logf = t.Logf
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	c := rep.Covertness
	if c == nil || !c.Evaluated {
		t.Fatalf("covertness verdict missing or unevaluated: %+v", c)
	}
	// 12 objects per population × 6 subjects × 3 waves = 216 exchanges each.
	if c.PlainSamples < p.ObserverMinSamples || c.CovertSamples < p.ObserverMinSamples {
		t.Fatalf("observer starved: plain %d, covert %d, need %d", c.PlainSamples, c.CovertSamples, p.ObserverMinSamples)
	}
	// Uniform-length padding is exact, not approximate: the KS statistic over
	// frame lengths must be literally zero.
	if c.LengthD != 0 || c.LengthP != 1 {
		t.Fatalf("length channel leaked: D=%v p=%v (padding must make lengths identical)", c.LengthD, c.LengthP)
	}
	if c.TimingP < p.SLO.CovertnessAlpha {
		t.Fatalf("timing channel rejected: p=%v < alpha %v", c.TimingP, p.SLO.CovertnessAlpha)
	}
	// The ppm gauges feed the ops tail; length p=1 must read as 1e6.
	if got := rep.Counters["covert_length_p_ppm"]; got != 1_000_000 {
		t.Fatalf("covert_length_p_ppm = %d, want 1000000", got)
	}
}

// TestCovertObserverBrokenScoping is the negative control the statistical
// gate is worthless without: the same fleet with BreakScoping set — engines
// at wire v2.0, whose L3 objects answer non-fellows with the covert variant
// under a key the subject cannot derive, and covert profiles inflated past
// the uniform pad. The observer must catch the length leak decisively and
// the covertness SLO must fail.
func TestCovertObserverBrokenScoping(t *testing.T) {
	p := Profiles()["covert-observer"]
	p.Logf = t.Logf
	p.BreakScoping = true
	// One wave is enough evidence: 72 plain exchanges, and the covert
	// population inflates further because the undecryptable RES2s keep the
	// subjects retransmitting QUE2 (each retry earns a cached resend).
	p.Waves = 1
	p.ObserverMinSamples = 60
	p.ObserverMaxSamples = 0 // observer default: 4× min
	p.DrainTimeout = 5 * time.Second
	// The leak's collateral is expected, not a harness failure: every
	// non-fellow↔L3 session hangs (the subject cannot decrypt the cover-up)
	// and expires at TTL.
	p.SLO.MaxLost = -1
	p.SLO.MaxExpiredExtra = -1
	p.SLO.MinPeakConcurrent = 0

	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The composition leak itself: 6 subjects × 2 L3 objects × 6 cells never
	// complete.
	if rep.Totals.Lost != 72 {
		t.Fatalf("lost %d, want 72 (every non-fellow↔L3 session must hang at v2.0)", rep.Totals.Lost)
	}
	c := rep.Covertness
	if c == nil || !c.Evaluated {
		t.Fatalf("covertness verdict missing or unevaluated: %+v", c)
	}
	// The inflated covert profiles make the two length distributions
	// disjoint: the KS test must reject at any reasonable alpha.
	if c.LengthD != 1 {
		t.Fatalf("length KS statistic %v, want 1 (distributions are disjoint)", c.LengthD)
	}
	if c.LengthP >= 1e-3 {
		t.Fatalf("length channel p=%v, want < 1e-3 (the leak must be decisive)", c.LengthP)
	}
	if rep.SLO.Pass {
		t.Fatal("SLO passed on a deliberately leaky deployment")
	}
	found := false
	for _, v := range rep.SLO.Violations {
		if strings.Contains(v, "covertness") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v missing a covertness rejection", rep.SLO.Violations)
	}
}

// TestStreamGatesCovertness pins the streaming form of the covertness gate:
// a floor on the p-value gauges, with negative (pending) readings reported
// but never violated — a tail early in a run must not scream before the
// observer has evidence.
func TestStreamGatesCovertness(t *testing.T) {
	slo := SLO{CovertnessAlpha: 1e-3}
	mk := func(timingPpm, lengthPpm int64) *Report {
		return &Report{
			Latency: map[string]Quantiles{},
			Counters: map[string]int64{
				"covert_timing_p_ppm": timingPpm,
				"covert_length_p_ppm": lengthPpm,
			},
		}
	}
	find := func(gates []GateStatus, name string) GateStatus {
		for _, g := range gates {
			if g.Name == name {
				return g
			}
		}
		t.Fatalf("gate %q missing from %v", name, gates)
		return GateStatus{}
	}

	pending := slo.StreamGates(mk(-1, -1), nil, 0)
	if g := find(pending, "covert_timing_p"); g.Violated {
		t.Fatalf("pending timing gauge must not violate: %+v", g)
	}
	healthy := slo.StreamGates(mk(400_000, 1_000_000), nil, 0)
	for _, name := range []string{"covert_timing_p", "covert_length_p"} {
		if g := find(healthy, name); g.Violated {
			t.Fatalf("healthy %s violated: %+v", name, g)
		}
	}
	leaky := slo.StreamGates(mk(500, 0), nil, 0)
	if g := find(leaky, "covert_timing_p"); !g.Violated {
		t.Fatalf("timing p=500ppm must violate alpha 1e-3: %+v", g)
	}
	if g := find(leaky, "covert_length_p"); !g.Violated {
		t.Fatalf("length p=0 must violate: %+v", g)
	}
	// No alpha, no gates.
	if gates := (SLO{}).StreamGates(mk(0, 0), nil, 0); len(gates) != 6 {
		t.Fatalf("covert gates must be absent without an alpha, got %d gates", len(gates))
	}
}

// TestSLOCheckAdversary pins the report-level covertness and strict
// accounting gates.
func TestSLOCheckAdversary(t *testing.T) {
	base := func() *Report {
		return &Report{
			Totals:   Totals{Armed: 10, Completed: 10},
			Latency:  map[string]Quantiles{},
			Counters: map[string]int64{},
		}
	}
	goodLedger := func() *AdversaryReport {
		return &AdversaryReport{
			Replay:      &adversary.ReplayStats{Targets: 6, OrphanQue2: 6, Que1: 6, DupQue1: 12, StaleQue2: 6},
			Sybil:       &adversary.SybilStats{Identities: 6, Forged: 18},
			OrphanDelta: 6, DuplicateDelta: 12, RejectedDelta: 24,
		}
	}
	cases := []struct {
		name    string
		slo     SLO
		mutate  func(*Report)
		wantOK  bool
		wantHit string
	}{
		{name: "covertness gate needs an observer", slo: SLO{CovertnessAlpha: 1e-3},
			mutate: func(*Report) {}, wantHit: "observer"},
		{name: "starved observer fails", slo: SLO{CovertnessAlpha: 1e-3},
			mutate: func(r *Report) {
				r.Covertness = &adversary.Covertness{PlainSamples: 10, CovertSamples: 200, MinSamples: 150}
			}, wantHit: "starved"},
		{name: "rejected null fails", slo: SLO{CovertnessAlpha: 1e-3},
			mutate: func(r *Report) {
				r.Covertness = &adversary.Covertness{Evaluated: true, TimingP: 0.8, LengthP: 1e-9}
			}, wantHit: "rejected"},
		{name: "indistinguishable passes", slo: SLO{CovertnessAlpha: 1e-3},
			mutate: func(r *Report) {
				r.Covertness = &adversary.Covertness{Evaluated: true, TimingP: 0.4, LengthP: 1}
			}, wantOK: true},
		{name: "strict accounting needs a phase", slo: SLO{StrictAdversaryAccounting: true},
			mutate: func(*Report) {}, wantHit: "adversary"},
		{name: "exact ledger passes", slo: SLO{StrictAdversaryAccounting: true},
			mutate: func(r *Report) { r.Adversary = goodLedger() }, wantOK: true},
		{name: "skipped target fails", slo: SLO{StrictAdversaryAccounting: true},
			mutate: func(r *Report) {
				a := goodLedger()
				a.Replay.Skipped = 1
				r.Adversary = a
			}, wantHit: "skipped"},
		{name: "idempotency violation fails", slo: SLO{StrictAdversaryAccounting: true},
			mutate: func(r *Report) {
				a := goodLedger()
				a.Replay.IdempotencyViolations = 2
				r.Adversary = a
			}, wantHit: "idempotency"},
		{name: "unexplained rejection fails", slo: SLO{StrictAdversaryAccounting: true},
			mutate: func(r *Report) {
				a := goodLedger()
				a.RejectedDelta = 25
				r.Adversary = a
			}, wantHit: "rejected QUE2 delta"},
		{name: "missing duplicate fails", slo: SLO{StrictAdversaryAccounting: true},
			mutate: func(r *Report) {
				a := goodLedger()
				a.DuplicateDelta = 11
				r.Adversary = a
			}, wantHit: "duplicate QUE1 delta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := base()
			tc.mutate(rep)
			res := tc.slo.Check(rep)
			if tc.wantOK {
				if !res.Pass {
					t.Fatalf("want pass, got violations %v", res.Violations)
				}
				return
			}
			if res.Pass {
				t.Fatalf("want violation containing %q, got pass", tc.wantHit)
			}
			found := false
			for _, v := range res.Violations {
				if strings.Contains(v, tc.wantHit) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v missing %q", res.Violations, tc.wantHit)
			}
		})
	}
}
