package load

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"argus/internal/adversary"
	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport/transporttest"
)

// peakGauge is an atomic gauge that latches its high-water mark.
type peakGauge struct{ cur, peak atomic.Int64 }

func (g *peakGauge) add(n int64) int64 {
	v := g.cur.Add(n)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return v
		}
	}
}

// runner executes one profile: it owns the fleet, the expectation ledger,
// and the sampler. All orchestration (arming, churn, drain waits) happens
// on the Run goroutine; completions arrive on engine event loops through
// onDiscovery and touch only atomics and per-slot mutexes.
type runner struct {
	p       Profile
	reg     *obs.Registry
	fleet   *fleet
	levelOf map[cert.ID]backend.Level
	rng     *rand.Rand

	inflight peakGauge
	peakOpen atomic.Int64 // sampled Σ PendingSessions high-water mark

	armed, completed, lost  atomic.Int64
	unexpected, late        atomic.Int64
	levelMismatch           atomic.Int64
	roundsArmed, roundsDone atomic.Int64
	skippedArrivals         atomic.Int64

	inflightG, peakG     *obs.Gauge
	armedC, completionsC *obs.Counter
	lostC, unexpectedC   *obs.Counter
	skippedC             *obs.Counter

	// Ledger the SLO checks compare telemetry against.
	predictedSubjExpiries int64
	revokedCount          int
	addedCount            int
	crashedCount          int
	redeliveredCount      int
	roamedCount           int

	roamsC    *obs.Counter
	observer  *adversary.Observer
	advReport *AdversaryReport
	covert    *adversary.Covertness

	waves []WaveStats

	samplerStop chan struct{}
	samplerDone chan struct{}
}

// Run builds the profile's fleet, drives it, and returns the report. err is
// non-nil only for harness-level failures (invalid profile, provisioning or
// transport setup errors); SLO violations are reported in Report.SLO so the
// caller still gets the full numbers.
func Run(p Profile) (*Report, error) {
	start := time.Now()
	r, err := newRunner(p)
	if err != nil {
		return nil, err
	}
	p = r.p
	observer := r.observer
	defer r.fleet.close()

	r.startSampler()
	if p.Rate > 0 {
		r.runOpenLoop()
	} else {
		if err := r.runClosedLoop(); err != nil {
			r.stopSampler()
			return nil, err
		}
		if p.ReplayTargets > 0 || p.SybilRounds > 0 {
			if err := r.adversaryPhase(); err != nil {
				r.stopSampler()
				return nil, err
			}
		}
	}
	leaked := r.drainTail()
	r.stopSampler()
	if observer != nil {
		v := observer.Verdict()
		r.covert = &v
		p.logf("load: %s", v)
	}

	rep := r.buildReport(time.Since(start), leaked)
	rep.SLO = p.SLO.Check(rep)
	r.publish("report", rep)
	r.publishSnapshot()
	return rep, nil
}

// newRunner validates the profile, registers the harness metric families and
// builds the fleet. The caller owns r.fleet.close(). Factored out of Run so
// the capacity search can hold one fleet across many open-loop trials.
func newRunner(p Profile) (*runner, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	reg := p.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &runner{
		p:   p,
		reg: reg,
		rng: rand.New(rand.NewSource(p.Seed)),
	}
	r.inflightG = r.reg.Gauge(obs.MLoadInflight, "armed discovery sessions not yet completed")
	r.peakG = r.reg.Gauge(obs.MLoadPeakInflight, "high-water mark of inflight sessions")
	r.armedC = r.reg.Counter(obs.MLoadRoundsArmed, "sessions armed (expected completions)")
	r.completionsC = r.reg.Counter(obs.MLoadCompletions, "sessions completed")
	r.lostC = r.reg.Counter(obs.MLoadLost, "sessions reaped at the drain deadline")
	r.unexpectedC = r.reg.Counter(obs.MLoadUnexpected, "completions that violated the expectation ledger")
	r.roamsC = r.reg.Counter(obs.MLoadRoams, "subjects migrated between cells at wave boundaries")
	r.skippedC = r.reg.Counter(obs.MLoadSkipped, "open-loop arrivals that found every subject busy")

	if p.Observer {
		r.observer = adversary.NewObserver(reg, p.ObserverMinSamples, p.ObserverMaxSamples)
	}

	start := time.Now()
	fl, err := buildFleet(p, r.reg, r.observer, r.onDiscovery)
	if err != nil {
		return nil, err
	}
	r.fleet = fl
	r.levelOf = fl.levelOf()
	p.logf("load: fleet up in %.1fs — %d cells × (%d subj + %d obj) over %s",
		time.Since(start).Seconds(), p.Cells, p.SubjectsPerCell, p.ObjectsPerCell, p.Transport)
	return r, nil
}

// publish emits one progress frame to the profile's live event hub, if any.
func (r *runner) publish(kind string, v any) {
	if r.p.Events != nil {
		_ = r.p.Events.PublishData(kind, v)
	}
}

func (r *runner) publishSnapshot() {
	if r.p.Events != nil {
		r.p.Events.PublishSnapshot()
	}
}

// onDiscovery is the completion hook, invoked on subject event loops.
func (r *runner) onDiscovery(s *subjectSlot, d core.Discovery) {
	s.mu.Lock()
	switch {
	case d.Round != s.round || s.lostRound:
		// A straggler from a superseded or reaped round: its absence was
		// already accounted; never double-credit.
		s.mu.Unlock()
		r.late.Add(1)
		return
	case s.revoked && d.Level > backend.L1:
		s.mu.Unlock()
		r.unexpected.Add(1)
		r.unexpectedC.Inc()
		return
	case s.got >= s.expected:
		s.mu.Unlock()
		r.unexpected.Add(1)
		r.unexpectedC.Inc()
		return
	}
	if !s.revoked && d.Level != r.wantLevel(s, d.Object) {
		r.levelMismatch.Add(1)
	}
	s.got++
	done := s.got == s.expected
	if done {
		s.busy = false
	}
	s.mu.Unlock()
	r.completed.Add(1)
	r.completionsC.Inc()
	r.inflight.add(-1)
	r.inflightG.Add(-1)
	if done {
		r.roundsDone.Add(1)
		// The ledger knows the round is over before the engine possibly can;
		// drop its remaining retry deadlines so none fires spuriously. The
		// hook runs on the subject's event loop, so the call is direct.
		s.eng.CompleteRound()
	}
}

// wantLevel is the ground-truth visibility level a live subject must see a
// given object at. A fellow provisioned after a revocation rotated the
// covert group key holds a newer key than the objects, so its L3 visibility
// degrades to L2 — exactly what the deployed system would do until the
// objects are reprovisioned.
func (r *runner) wantLevel(s *subjectSlot, obj cert.ID) backend.Level {
	switch r.levelOf[obj] {
	case backend.L1:
		return backend.L1
	case backend.L3:
		if r.p.Fellow && !s.staleGroup {
			return backend.L3
		}
		return backend.L2
	default:
		return backend.L2
	}
}

// armSlot opens the slot's next round and returns its expected completions.
// The caller pre-credits the inflight gauge for the whole batch before any
// Discover is issued, so the gauge's peak is the true armed concurrency.
func (r *runner) armSlot(s *subjectSlot) int {
	exp := s.expectedRound()
	s.mu.Lock()
	s.round++
	s.got = 0
	s.expected = exp
	s.busy = exp > 0
	s.lostRound = false
	s.mu.Unlock()
	r.armed.Add(int64(exp))
	r.armedC.Add(int64(exp))
	r.roundsArmed.Add(1)
	if exp == 0 {
		r.roundsDone.Add(1)
	}
	return exp
}

// fire issues the slot's Discover on its event loop. A round armed with
// zero expected completions (a revoked subject in an all-secure cell) is
// declared complete in the same breath: it still broadcasts — the silence
// it meets is part of the scenario — but nothing will ever credit it, so
// its retry deadlines would all be misfires.
func (r *runner) fire(s *subjectSlot) {
	eng := s.eng
	s.mu.Lock()
	exp := s.expected
	s.mu.Unlock()
	s.ep.Do(func() {
		_ = eng.Discover(1)
		if exp == 0 {
			eng.CompleteRound()
		}
	})
}

// reapLost retires every unfinished round at a drain deadline, converting
// the missing completions into lost counts and balancing the gauges.
func (r *runner) reapLost(slots []*subjectSlot) int64 {
	var lost int64
	for _, s := range slots {
		s.mu.Lock()
		if s.busy {
			miss := int64(s.expected - s.got)
			s.busy = false
			s.lostRound = true
			s.mu.Unlock()
			lost += miss
			r.roundsDone.Add(1)
			r.inflight.add(-miss)
			r.inflightG.Add(-miss)
		} else {
			s.mu.Unlock()
		}
	}
	if lost > 0 {
		r.lost.Add(lost)
		r.lostC.Add(lost)
	}
	return lost
}

// allSubjects snapshots the current subject population.
func (r *runner) allSubjects() []*subjectSlot {
	r.fleet.mu.RLock()
	defer r.fleet.mu.RUnlock()
	var out []*subjectSlot
	for _, c := range r.fleet.cells {
		out = append(out, c.subjects...)
	}
	return out
}

// runClosedLoop drives synchronized waves with churn before the final wave.
func (r *runner) runClosedLoop() error {
	p := r.p
	churnWave := -1
	if (p.RevokeFrac > 0 || p.AddFrac > 0) && p.Waves >= 2 {
		churnWave = p.Waves - 1 // churn right before the last wave
	}
	for w := 0; w < p.Waves; w++ {
		if w > 0 && p.RoamFrac > 0 {
			if err := r.roam(w); err != nil {
				return err
			}
		}
		if w == churnWave {
			if err := r.churn(); err != nil {
				return err
			}
		}
		slots := r.allSubjects()
		base := r.roundsDone.Load()
		wave := WaveStats{Index: w, Subjects: len(slots)}
		snapBefore := r.counterTotals()
		var pre int64
		for _, s := range slots {
			pre += int64(r.armSlot(s))
		}
		r.inflight.add(pre)
		r.inflightG.Add(pre)
		waveStart := time.Now()
		// Pace round starts across ArmWindow in ~64 evenly spaced chunks
		// (sleep granularity, not per-slot precision). The expectation
		// ledger is fully armed above, so the pacing is invisible to
		// accounting — it only flattens the handshake compute queue.
		chunk := len(slots)
		var pause time.Duration
		if p.ArmWindow > 0 && len(slots) > 1 {
			steps := min(64, len(slots))
			chunk = (len(slots) + steps - 1) / steps
			pause = p.ArmWindow / time.Duration((len(slots)+chunk-1)/chunk)
		}
		for i, s := range slots {
			if pause > 0 && i > 0 && i%chunk == 0 {
				time.Sleep(pause)
			}
			r.fire(s)
		}
		target := base + int64(len(slots))
		drained := transporttest.Poll(p.DrainTimeout, transporttest.DefaultStep, func() bool {
			return r.roundsDone.Load() >= target
		})
		if !drained {
			wave.Lost = r.reapLost(slots)
		}
		wave.Armed = pre
		wave.Seconds = time.Since(waveStart).Seconds()
		snapAfter := r.counterTotals()
		wave.VCacheHits = snapAfter.vcacheHits - snapBefore.vcacheHits
		wave.VCacheMisses = snapAfter.vcacheMisses - snapBefore.vcacheMisses
		wave.Retransmissions = snapAfter.retrans - snapBefore.retrans
		r.waves = append(r.waves, wave)
		r.publish("wave", wave)
		r.publishSnapshot()
		p.logf("load: wave %d — %d sessions in %.2fs (lost %d, vcache %d hit / %d miss, %d retrans)",
			w, wave.Armed, wave.Seconds, wave.Lost, wave.VCacheHits, wave.VCacheMisses, wave.Retransmissions)
		if p.ThinkTime > 0 && w < p.Waves-1 {
			time.Sleep(p.ThinkTime)
		}
	}
	return nil
}

// ChurnEvent is the live progress frame published after the churn window.
type ChurnEvent struct {
	Revoked     int `json:"revoked"`
	Added       int `json:"added"`
	Crashed     int `json:"crashed"`
	Parked      int `json:"parked"`
	Redelivered int `json:"redelivered"`
}

// churn revokes RevokeFrac of each cell's subjects (pushing signed
// notifications through the cell distributor and waiting for on-device
// effectuation) and registers AddFrac new subjects per cell, which join the
// following wave with cold credentials. With CrashFrac set it also opens a
// crash window: a fraction of each cell's objects drop offline at the
// distributor before the pushes, so their notifications park in the
// dead-letter queue; once the live population has effectuated, the crashed
// nodes reattach and the whole backlog must redeliver in order before the
// final wave fires.
func (r *runner) churn() error {
	p := r.p
	var pushed, parked int
	base := r.snapshotCounter(obs.MUpdateApplied)
	baseEvict := r.snapshotCounter(obs.MUpdateDLQEvictions)

	// Crash window opens before any push. Only the update plane goes dark —
	// the crashed objects keep answering discovery, and every revocation is
	// fully effectuated (live + redelivered) before the next wave, so the
	// expectation arithmetic is unchanged.
	crashed := make([][]*objectSlot, len(r.fleet.cells))
	if p.CrashFrac > 0 {
		for ci, c := range r.fleet.cells {
			k := int(p.CrashFrac * float64(len(c.objects)))
			if k > len(c.objects) {
				k = len(c.objects)
			}
			for _, idx := range r.rng.Perm(len(c.objects))[:k] {
				o := c.objects[idx]
				c.dist.MarkOffline(o.id)
				crashed[ci] = append(crashed[ci], o)
				r.crashedCount++
			}
		}
	}

	for _, c := range r.fleet.cells {
		k := int(p.RevokeFrac * float64(p.SubjectsPerCell))
		if k > len(c.subjects) {
			k = len(c.subjects)
		}
		if k == 0 {
			continue
		}
		// Deterministic victim choice from the harness seed.
		perm := r.rng.Perm(len(c.subjects))[:k]
		for _, idx := range perm {
			s := c.subjects[idx]
			s.mu.Lock()
			already := s.revoked
			s.mu.Unlock()
			if already {
				continue
			}
			if _, err := r.fleet.svc.RevokeSubject(context.Background(), s.id); err != nil {
				return fmt.Errorf("revoke %s: %w", s.name, err)
			}
			if err := c.dist.RevokeSubject(s.id, c.objIDs); err != nil {
				return fmt.Errorf("push revocation %s: %w", s.name, err)
			}
			pushed += len(c.objIDs)
			r.revokedCount++
			// Each future round of this subject leaves one silently refused
			// session per secure object to expire on the subject side.
			secure := len(c.objects) - c.l1Count
			wavesLeft := 1 // churn happens before exactly one final wave
			r.predictedSubjExpiries += int64(secure * wavesLeft)
			s.mu.Lock()
			s.revoked = true
			s.mu.Unlock()
		}
	}
	if pushed > 0 {
		// The crashed nodes' copies are parked (minus any bound evictions),
		// not on the wire; the live population must effectuate the rest.
		parked = r.fleetDLQDepth()
		evicted := r.snapshotCounter(obs.MUpdateDLQEvictions) - baseEvict
		wantLive := base + int64(pushed-parked) - evicted
		ok := transporttest.Poll(p.DrainTimeout, transporttest.DefaultStep, func() bool {
			return r.snapshotCounter(obs.MUpdateApplied) >= wantLive
		})
		if !ok {
			return fmt.Errorf("revocations not effectuated: applied %d, want %d",
				r.snapshotCounter(obs.MUpdateApplied), wantLive)
		}

		// Crash window closes: reattach every crashed node. Reattach drains
		// its queue in push order and the agents' replay checks reject any
		// duplicate, so waiting for exact effectuation with the fleet-wide
		// DLQ back at depth zero asserts exactly-once in-order redelivery
		// end to end.
		if r.crashedCount > 0 {
			for ci, c := range r.fleet.cells {
				for _, o := range crashed[ci] {
					r.redeliveredCount += c.dist.Reattach(o.id, o.addr)
				}
			}
			wantAll := base + int64(pushed) - evicted
			ok := transporttest.Poll(p.DrainTimeout, transporttest.DefaultStep, func() bool {
				return r.snapshotCounter(obs.MUpdateApplied) >= wantAll && r.fleetDLQDepth() == 0
			})
			if !ok {
				return fmt.Errorf("redelivery incomplete: applied %d (want %d), DLQ depth %d",
					r.snapshotCounter(obs.MUpdateApplied), wantAll, r.fleetDLQDepth())
			}
		}
	}

	if p.AddFrac > 0 {
		// Revoking a fellow rotates the covert group key
		// (backend.RevokeSubject), and the object engines keep the key they
		// were provisioned with. Fellows provisioned from here on therefore
		// see L3 services at L2 until the fleet reprovisions — the
		// expectation model tracks that per slot.
		rotated := p.Fellow && r.revokedCount > 0
		add := int(p.AddFrac * float64(p.SubjectsPerCell))
		for ci, c := range r.fleet.cells {
			for k := 0; k < add; k++ {
				name := fmt.Sprintf("s-add-%d-%d", ci, k)
				id, _, err := r.fleet.svc.RegisterSubject(context.Background(), name, attr.MustSet("position=staff"))
				if err != nil {
					return err
				}
				if p.Fellow {
					if err := r.fleet.svc.AddSubjectToGroup(context.Background(), id, r.fleet.group); err != nil {
						return err
					}
				}
				if err := r.fleet.addSubject(c, id, name, rotated, r.onDiscovery); err != nil {
					return err
				}
				r.addedCount++
			}
		}
	}
	p.logf("load: churn — revoked %d subjects (%d notifications), added %d subjects, crashed %d objects (%d parked, %d redelivered)",
		r.revokedCount, pushed, r.addedCount, r.crashedCount, parked, r.redeliveredCount)
	r.publish("churn", ChurnEvent{
		Revoked: r.revokedCount, Added: r.addedCount,
		Crashed: r.crashedCount, Parked: parked, Redelivered: r.redeliveredCount,
	})
	r.publishSnapshot()
	return nil
}

// fleetDLQDepth sums parked letters across every cell distributor.
func (r *runner) fleetDLQDepth() int {
	n := 0
	for _, c := range r.fleet.cells {
		n += c.dist.DLQDepth()
	}
	return n
}

// RoamEvent is the live progress frame published after a roam boundary.
type RoamEvent struct {
	Wave  int `json:"wave"`
	Moved int `json:"moved"`
}

// roam migrates RoamFrac of each cell's subjects to the next cell before
// wave w fires: the old radio powers down (pending retry timers die with
// it), and a fresh engine joins the destination segment with re-issued
// credentials. The destination cell has never verified the roamer, so its
// first round there must repopulate the cell-local verify cache — the
// re-discovery cost the roam counters and per-wave miss deltas expose.
func (r *runner) roam(wave int) error {
	p := r.p
	k := int(p.RoamFrac * float64(p.SubjectsPerCell))
	if k == 0 {
		return nil
	}
	type mover struct {
		slot *subjectSlot
		dst  *cell
	}
	var movers []mover
	f := r.fleet
	f.mu.Lock()
	for ci, c := range f.cells {
		dst := f.cells[(ci+1)%len(f.cells)]
		n := min(k, len(c.subjects))
		pick := make(map[int]bool, n)
		for _, idx := range r.rng.Perm(len(c.subjects))[:n] {
			pick[idx] = true
		}
		kept := c.subjects[:0:0]
		for idx, s := range c.subjects {
			if pick[idx] {
				movers = append(movers, mover{s, dst})
			} else {
				kept = append(kept, s)
			}
		}
		c.subjects = kept
	}
	f.mu.Unlock()
	for _, m := range movers {
		m.slot.ep.Close()
		if err := f.addSubject(m.dst, m.slot.id, m.slot.name, m.slot.staleGroup, r.onDiscovery); err != nil {
			return fmt.Errorf("roam %s: %w", m.slot.name, err)
		}
		r.roamedCount++
		r.roamsC.Inc()
	}
	p.logf("load: roam — %d subjects migrated to their next cell before wave %d", len(movers), wave)
	r.publish("roam", RoamEvent{Wave: wave, Moved: len(movers)})
	return nil
}

// advCounters is the trio of object-side outcome counters the adversary
// phase holds to exact deltas.
type advCounters struct{ orphan, duplicate, rejected int64 }

func (r *runner) advCountersNow() advCounters {
	snap := r.reg.Snapshot()
	return advCounters{
		orphan:    sumFamily(snap, obs.MObjectQue2, obs.L("result", "orphan")),
		duplicate: sumFamily(snap, obs.MObjectQue1, obs.L("result", "duplicate")),
		rejected:  sumFamily(snap, obs.MObjectQue2, obs.L("result", "rejected")),
	}
}

// adversaryPhase drives the replay and Sybil personas against every cell
// after the honest waves drain, and ledgers the object-side counter deltas
// they produced. StrictAdversaryAccounting holds these deltas to exactly
// the injected amounts.
func (r *runner) adversaryPhase() error {
	p := r.p
	// The QUE1 rebroadcast schedule is unconditional — a subject cannot know
	// which objects exist, so completing a round never cancels it. The last
	// wave's retry tail therefore keeps landing duplicates at objects after
	// the wave drains; sleep it out (the schedule is computable) so the
	// baseline below is quiescent and the personas' deltas stay exact.
	sch := p.Retry.Schedule(p.Retry.Que1Retries)
	time.Sleep(sch[len(sch)-1] + 250*time.Millisecond)
	r.fleet.wakeAll()

	base := r.advCountersNow()
	ad := &AdversaryReport{}
	var wantOrphan, wantDup, wantRejected int64

	if p.ReplayTargets > 0 {
		var total adversary.ReplayStats
		for _, c := range r.fleet.cells {
			ep, err := c.join()
			if err != nil {
				return err
			}
			stats, err := adversary.ExecuteReplay(ep, c.replays, p.AdversaryTimeout, r.reg)
			total.Merge(stats)
			ep.Close()
			if err != nil {
				return fmt.Errorf("load: replay persona, cell %d: %w", c.index, err)
			}
		}
		ad.Replay = &total
		wantOrphan += total.OrphanQue2
		wantDup += total.DupQue1
		wantRejected += total.StaleQue2
	}
	if p.SybilRounds > 0 {
		prov, err := adversary.RogueProvision(suite.S128)
		if err != nil {
			return err
		}
		var total adversary.SybilStats
		for _, c := range r.fleet.cells {
			stats, err := adversary.ExecuteSybil(c.join, prov, p.SybilRounds, p.AdversaryTimeout, r.reg)
			total.Merge(stats)
			if err != nil {
				return fmt.Errorf("load: sybil persona, cell %d: %w", c.index, err)
			}
		}
		ad.Sybil = &total
		wantRejected += total.Forged
	}

	// The personas' last frames (stale and forged QUE2s) are fire-and-forget;
	// give the fleet time to finish judging them before taking the deltas.
	transporttest.Poll(p.DrainTimeout, transporttest.DefaultStep, func() bool {
		cur := r.advCountersNow()
		return cur.orphan-base.orphan >= wantOrphan &&
			cur.duplicate-base.duplicate >= wantDup &&
			cur.rejected-base.rejected >= wantRejected
	})
	cur := r.advCountersNow()
	ad.OrphanDelta = cur.orphan - base.orphan
	ad.DuplicateDelta = cur.duplicate - base.duplicate
	ad.RejectedDelta = cur.rejected - base.rejected
	r.advReport = ad
	p.logf("load: adversary phase — deltas orphan %d, duplicate %d, rejected %d", ad.OrphanDelta, ad.DuplicateDelta, ad.RejectedDelta)
	r.publish("adversary", ad)
	r.publishSnapshot()
	return nil
}

func (r *runner) runOpenLoop() { r.openLoopAt(r.p.Rate, r.p.Duration) }

// openLoopAt issues discovery rounds as a Poisson process over the subject
// pool at `rate` rounds/s for `duration`. Arrival times are a deterministic
// Exp-gap schedule accumulated from the loop's start: after every sleep the
// loop fires all arrivals whose scheduled time has passed, so the sleeper's
// millisecond granularity can shift an arrival slightly late but never
// erases it — a naive sleep-per-gap loop silently caps the offered rate at
// ~1/granularity. An arrival that finds every subject busy is counted
// skipped; offered load is never queued (the definition of open-loop).
//
// The tail drain at the end makes each call self-contained: every round
// armed by this call either completes or is reaped before it returns, so
// back-to-back calls (the capacity search's trials) observe disjoint
// counter windows.
func (r *runner) openLoopAt(rate float64, duration time.Duration) {
	slots := r.allSubjects()
	start := time.Now()
	next := 0
	var tNext time.Duration // next scheduled arrival, as an offset from start
	for {
		tNext += time.Duration(r.rng.ExpFloat64() / rate * float64(time.Second))
		if tNext >= duration {
			break
		}
		if wait := tNext - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		// Find an idle subject, scanning at most one full lap.
		fired := false
		for i := 0; i < len(slots); i++ {
			s := slots[(next+i)%len(slots)]
			s.mu.Lock()
			idle := !s.busy
			s.mu.Unlock()
			if !idle {
				continue
			}
			next = (next + i + 1) % len(slots)
			exp := r.armSlot(s)
			r.inflight.add(int64(exp))
			r.inflightG.Add(int64(exp))
			r.fire(s)
			fired = true
			break
		}
		if !fired {
			r.skippedArrivals.Add(1)
			r.skippedC.Inc()
		}
	}
	// Let the tail of armed rounds complete.
	target := r.roundsArmed.Load()
	drained := transporttest.Poll(r.p.DrainTimeout, transporttest.DefaultStep, func() bool {
		return r.roundsDone.Load() >= target
	})
	if !drained {
		r.reapLost(slots)
	}
}

// drainTail waits out the session TTL so both engines' session tables empty
// (answered object sessions and dark-wave subject sessions age out at TTL),
// then reports how many sessions remain leaked.
func (r *runner) drainTail() int64 {
	ttl := r.p.Retry.SessionTTL
	if ttl <= 0 {
		ttl = 8 * time.Second
	}
	// The tail is bounded by session-GC timers, not by message flow, so a
	// coarse poll step suffices; each pendingSessions call walks every engine
	// in the fleet, which at 10 ms cadence showed up in the CPU profile.
	ok := transporttest.Poll(ttl+3*time.Second, 50*time.Millisecond, func() bool {
		return r.fleet.pendingSessions() == 0
	})
	if ok {
		return 0
	}
	return int64(r.fleet.pendingSessions())
}

// startSampler launches the concurrency sampler: every 25 ms it mirrors the
// inflight gauge's peak into the registry and records the high-water mark
// of actually open handshakes (Σ PendingSessions over every engine). Each
// sample walks every engine in the fleet — at 11k+ engines the old 10 ms
// cadence showed up as ~8% of run CPU on a single-core profile — so the
// cadence stays just fine enough to catch a wave's concurrency plateau.
func (r *runner) startSampler() {
	r.samplerStop = make(chan struct{})
	r.samplerDone = make(chan struct{})
	go func() {
		defer close(r.samplerDone)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-r.samplerStop:
				return
			case <-tick.C:
				open := int64(r.fleet.pendingSessions())
				for {
					p := r.peakOpen.Load()
					if open <= p || r.peakOpen.CompareAndSwap(p, open) {
						break
					}
				}
				r.peakG.Set(r.inflight.peak.Load())
			}
		}
	}()
}

func (r *runner) stopSampler() {
	close(r.samplerStop)
	<-r.samplerDone
}

// counterTotals gathers the counter families whose per-wave deltas the wave
// stats report.
type counterTotals struct {
	vcacheHits, vcacheMisses int64
	retrans                  int64
}

func (r *runner) counterTotals() counterTotals {
	snap := r.reg.Snapshot()
	return counterTotals{
		vcacheHits:   sumFamily(snap, obs.MVerifyCacheEvents, obs.L("result", "hit")),
		vcacheMisses: sumFamily(snap, obs.MVerifyCacheEvents, obs.L("result", "miss")),
		retrans:      sumFamily(snap, obs.MRetransmissions),
	}
}

// snapshotCounter sums one counter family across all label sets.
func (r *runner) snapshotCounter(name string) int64 {
	return sumFamily(r.reg.Snapshot(), name)
}
