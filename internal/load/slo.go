package load

import (
	"fmt"
	"time"
)

// SLO is the pass/fail contract a load run is held to. Integer fields are
// maximums: the zero value is the strictest setting (nothing tolerated),
// and -1 disables a check — so a default-constructed SLO asserts a
// fault-free lossless run. Latency ceilings of 0 are disabled (there is no
// meaningful "zero latency budget").
type SLO struct {
	// MaxLost bounds sessions still incomplete at a drain deadline. The
	// headline profiles demand 0; lossy-fault profiles may budget a few.
	MaxLost int64
	// MaxUnexpected bounds completions violating the expectation ledger:
	// above-L1 discoveries by revoked subjects, or double-credits.
	MaxUnexpected int64
	// MaxLevelMismatch bounds discoveries at the wrong visibility level
	// (e.g. a fellow resolving an L3 service at L2).
	MaxLevelMismatch int64
	// MinPeakConcurrent is the least armed-session concurrency the run must
	// reach (0 = no floor).
	MinPeakConcurrent int64
	// MaxMailboxDrops bounds inbound frames shed by transport backpressure.
	MaxMailboxDrops int64
	// MaxMalformed bounds wire-decode drops (only injected corruption
	// produces them).
	MaxMalformed int64
	// MaxRetransmissions bounds protocol retransmissions across both roles
	// and all message legs. On a lossless transport with an adaptive retry
	// policy a retransmission is a timer misfire, not recovery, so the
	// headline profile holds an exact near-zero ceiling; lossy and
	// duty-cycled profiles disable the gate (-1) because there
	// retransmission IS the recovery mechanism.
	MaxRetransmissions int64
	// MaxWarmRetransmissions bounds retransmissions on waves after the
	// first. The cold wave fires quiescence probes while the RTT estimator
	// is still unsampled, which is inherently noisy under a deep compute
	// backlog — but once the wheel has observed round trips, a lossless run
	// must retransmit exactly zero, so the headline profile pins this at 0.
	// -1 disables (lossy profiles, where retransmission is recovery).
	MaxWarmRetransmissions int64
	// MaxExpiredExtra bounds subject-side session expiries beyond the
	// harness's prediction (revoked subjects' silently refused handshakes
	// are predicted; anything above is unexplained).
	MaxExpiredExtra int64
	// MaxDLQDepth bounds notifications still parked in dead-letter queues
	// when the run ends — a crash window that never fully redelivered.
	MaxDLQDepth int64
	// P50Ceiling / P99Ceiling bound the end-to-end (QUE1→recorded) latency
	// quantiles per level; 0 disables.
	P50Ceiling time.Duration
	P99Ceiling time.Duration
	// MaxSlowSessions bounds sessions falling beyond the last histogram
	// bucket (~13 s) — the honest backstop for quantile estimates that
	// saturate at the bucket range.
	MaxSlowSessions int64
	// CovertnessAlpha, when > 0, is the significance level of the passive
	// observer's indistinguishability gate (paper Case 7): the run fails
	// unless the observer evaluated and failed to reject the null — on both
	// the timing and the frame-length channel — at this alpha. A run with no
	// observer attached also fails: the gate demands evidence, not absence.
	CovertnessAlpha float64
	// StrictAdversaryAccounting, when set, demands the adversary phase ran
	// and its object-side counter deltas exactly equal the injected amounts:
	// no skipped targets, no idempotency violations, no unexplained
	// rejections.
	StrictAdversaryAccounting bool
}

// exceeded reports a max-style check failure, honoring -1 = disabled.
func exceeded(limit, actual int64) bool { return limit >= 0 && actual > limit }

// Check evaluates the SLO over a finished run's report and returns the
// violations (empty = pass).
func (s SLO) Check(rep *Report) SLOResult {
	var v []string
	add := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if exceeded(s.MaxLost, rep.Totals.Lost) {
		add("lost completions: %d > max %d", rep.Totals.Lost, s.MaxLost)
	}
	if exceeded(s.MaxUnexpected, rep.Totals.Unexpected) {
		add("unexpected completions: %d > max %d", rep.Totals.Unexpected, s.MaxUnexpected)
	}
	if exceeded(s.MaxLevelMismatch, rep.Totals.LevelMismatch) {
		add("level mismatches: %d > max %d", rep.Totals.LevelMismatch, s.MaxLevelMismatch)
	}
	if s.MinPeakConcurrent > 0 && rep.Totals.PeakInflight < s.MinPeakConcurrent {
		add("peak concurrency: %d < min %d", rep.Totals.PeakInflight, s.MinPeakConcurrent)
	}
	if exceeded(s.MaxMailboxDrops, rep.Counters["mailbox_drops"]) {
		add("mailbox drops: %d > max %d", rep.Counters["mailbox_drops"], s.MaxMailboxDrops)
	}
	if exceeded(s.MaxMalformed, rep.Counters["malformed_drops"]) {
		add("malformed drops: %d > max %d", rep.Counters["malformed_drops"], s.MaxMalformed)
	}
	if exceeded(s.MaxRetransmissions, rep.Counters["retransmissions"]) {
		add("retransmissions: %d > max %d", rep.Counters["retransmissions"], s.MaxRetransmissions)
	}
	var warm int64
	for _, w := range rep.Waves {
		if w.Index > 0 {
			warm += w.Retransmissions
		}
	}
	if exceeded(s.MaxWarmRetransmissions, warm) {
		add("warm-wave retransmissions: %d > max %d", warm, s.MaxWarmRetransmissions)
	}
	extra := rep.Counters["subject_sessions_expired"] - rep.PredictedSubjectExpiries
	if exceeded(s.MaxExpiredExtra, extra) {
		add("unexplained subject session expiries: %d (observed %d, predicted %d) > max %d",
			extra, rep.Counters["subject_sessions_expired"], rep.PredictedSubjectExpiries, s.MaxExpiredExtra)
	}
	if exceeded(s.MaxDLQDepth, rep.Counters["dlq_depth"]) {
		add("parked dead-letter notifications: %d > max %d", rep.Counters["dlq_depth"], s.MaxDLQDepth)
	}
	if rep.Totals.LeakedSessions > 0 {
		add("leaked sessions after TTL drain: %d", rep.Totals.LeakedSessions)
	}
	for lvl, q := range rep.Latency {
		if q.Count == 0 {
			continue
		}
		if s.P50Ceiling > 0 && q.P50 > s.P50Ceiling.Seconds() {
			add("L%s p50 latency %.3fs > ceiling %.3fs", lvl, q.P50, s.P50Ceiling.Seconds())
		}
		if s.P99Ceiling > 0 && q.P99 > s.P99Ceiling.Seconds() {
			add("L%s p99 latency %.3fs > ceiling %.3fs", lvl, q.P99, s.P99Ceiling.Seconds())
		}
		if exceeded(s.MaxSlowSessions, q.Overflow) {
			add("L%s sessions beyond histogram range: %d > max %d", lvl, q.Overflow, s.MaxSlowSessions)
		}
	}
	if s.CovertnessAlpha > 0 {
		switch c := rep.Covertness; {
		case c == nil:
			add("covertness gate requires an observer, but none ran")
		case !c.Evaluated:
			add("covertness observer starved: plain %d, covert %d samples, need %d each",
				c.PlainSamples, c.CovertSamples, c.MinSamples)
		case !c.Pass(s.CovertnessAlpha):
			add("covertness rejected at alpha %g: timing p=%.4g, length p=%.4g",
				s.CovertnessAlpha, c.TimingP, c.LengthP)
		}
	}
	if s.StrictAdversaryAccounting {
		if a := rep.Adversary; a == nil {
			add("strict adversary accounting requires an adversary phase, but none ran")
		} else {
			var wantOrphan, wantDup, wantRejected int64
			if a.Replay != nil {
				if a.Replay.Skipped > 0 {
					add("replay persona skipped %d targets (no complete transcript captured)", a.Replay.Skipped)
				}
				if a.Replay.IdempotencyViolations > 0 {
					add("duplicate-QUE1 idempotency violations: %d", a.Replay.IdempotencyViolations)
				}
				wantOrphan += a.Replay.OrphanQue2
				wantDup += a.Replay.DupQue1
				wantRejected += a.Replay.StaleQue2
			}
			if a.Sybil != nil {
				wantRejected += a.Sybil.Forged
			}
			if a.OrphanDelta != wantOrphan {
				add("orphan QUE2 delta %d != injected %d", a.OrphanDelta, wantOrphan)
			}
			if a.DuplicateDelta != wantDup {
				add("duplicate QUE1 delta %d != injected %d", a.DuplicateDelta, wantDup)
			}
			if a.RejectedDelta != wantRejected {
				add("rejected QUE2 delta %d != injected %d", a.RejectedDelta, wantRejected)
			}
		}
	}
	return SLOResult{Pass: len(v) == 0, Violations: v}
}

// SLOResult is the verdict attached to a report.
type SLOResult struct {
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}
