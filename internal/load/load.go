// Package load is the load-generation and soak subsystem: it drives
// configurable fleets of L1/L2/L3 discovery sessions over the concurrent
// transports (transport.Mesh, transport.UDP) and asserts service-level
// objectives from internal/obs snapshots, so throughput or latency
// collapses in the engines, mailboxes, or verify cache surface as test and
// CI failures rather than anecdotes.
//
// # Topology
//
// A fleet is sharded into independent "cells": each cell is one broadcast
// domain (a Mesh, or a UDP peer group) holding SubjectsPerCell subject
// engines and ObjectsPerCell object engines. Cells model the paper's
// proximity scoping — discovery is radio-range-local, so an enterprise
// deployment is many small broadcast domains, not one giant one — and keep
// the harness clear of the object-side session-table bound
// (core's maxPendingSessions) while still multiplying to arbitrarily many
// concurrent sessions. All cells share one backend (single trust anchor),
// one obs.Registry, and one credential verify cache.
//
// # Drivers
//
// The closed-loop driver arms synchronized waves: every subject runs one
// discovery round per wave, and the next wave starts only when the previous
// has drained (think time in between). Wave 0 runs against a cold verify
// cache; later waves are warm. The open-loop driver instead issues rounds
// as a Poisson arrival process at Rate rounds/second over the subject pool,
// so queueing is driven by offered load rather than by completion.
//
// # Accounting
//
// One armed session = one subject↔object handshake expected to complete.
// Expectations are derived from ground truth the harness owns: a live
// subject discovers every object in its cell exactly once per round (the
// engines' duplicate suppression makes delivery exactly-once per round); a
// revoked subject discovers only the Level 1 objects. Completions are
// observed via Subject.OnDiscovery, so zero lost completions is asserted
// by exact counting, not by sampling. Mid-run churn (revocations pushed
// through internal/update agents, subjects added live) and optional fault
// injection (reusing the netsim.FaultModel knobs at the transport seam)
// perturb the run without changing the arithmetic.
package load

import (
	"fmt"
	"sort"
	"time"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/obs"
)

// Publisher receives live progress frames from a running profile — wave and
// churn summaries, the final report, and registry snapshots at phase
// boundaries. Satisfied by *realtime.Hub; nil disables publishing.
type Publisher interface {
	PublishSnapshot()
	PublishData(kind string, v any) error
}

// Transport selects the concurrent transport a profile runs over.
type Transport string

const (
	// TransportMesh runs every cell as an in-memory transport.Mesh.
	TransportMesh Transport = "mesh"
	// TransportUDP runs every cell as real UDP sockets on loopback.
	TransportUDP Transport = "udp"
)

// Profile fully describes one load run: fleet shape, driver, churn, faults,
// and the SLOs the run is held to.
type Profile struct {
	Name        string
	Description string
	Transport   Transport

	// Fleet shape: Cells broadcast domains of SubjectsPerCell subjects and
	// ObjectsPerCell objects each. Levels is the repeating level pattern
	// assigned to objects in creation order (default all L2). Fellow puts
	// every subject in the covert group served by L3 objects, so L3
	// services resolve at L3; without it they resolve at their L2 face.
	Cells           int
	SubjectsPerCell int
	ObjectsPerCell  int
	Levels          []backend.Level
	Fellow          bool

	// Closed-loop driver: Waves discovery rounds per subject, separated by
	// ThinkTime once the previous wave has fully drained.
	Waves     int
	ThinkTime time.Duration
	// ArmWindow, when > 0, paces each wave's round starts uniformly across
	// the window instead of firing every subject at once. A wave of N
	// handshakes needs ~N×(crypto cost) of CPU no matter how it is armed; an
	// instantaneous burst converts all of that into queue wait for the
	// last-served sessions, which on a big wave can exceed SessionTTL and
	// turn a healthy run into expiry/restart churn. Pacing bounds per-session
	// queue wait at roughly (compute time − window) without stretching the
	// wave, which stays compute-bound.
	ArmWindow time.Duration

	// Open-loop driver (replaces the wave loop when Rate > 0): Poisson
	// arrivals at Rate rounds/second across the subject pool for Duration.
	// An arrival finding every subject busy is counted as skipped, never
	// queued — the defining property of open-loop load.
	Rate     float64
	Duration time.Duration

	// Churn, applied between the last two waves (closed loop only):
	// RevokeFrac of each cell's subjects are revoked (backend bookkeeping +
	// signed update notifications pushed to their cell's objects), and
	// AddFrac new subjects per cell are registered, provisioned, and join
	// the final wave with cold credentials.
	RevokeFrac float64
	AddFrac    float64

	// CrashFrac crashes that fraction of each cell's objects for the
	// duration of the churn window: they drop offline at the cell's update
	// distributor before the revocations are pushed, so their notifications
	// park in the per-destination dead-letter queue and are redelivered in
	// order when the harness reattaches them — after the live population has
	// effectuated. Exercises the DLQ contract (DESIGN.md §11) under load;
	// requires revocation churn (closed loop, RevokeFrac > 0).
	CrashFrac float64

	// Faults, when active, wraps every engine endpoint in a lossy layer
	// reusing the netsim fault-model knobs (see WrapFaults). Fault runs
	// need Retry enabled to stay complete.
	Faults    netsim.FaultModel
	FaultSeed int64

	// RoamFrac migrates that fraction of each cell's subjects to the next
	// cell at every wave boundary after the first (closed loop only, no
	// churn): the roamer's old radio powers down, a fresh engine joins the
	// destination segment with re-issued credentials, and it re-discovers a
	// full cell of objects that have never verified it — so verify-cache
	// locality effects surface as per-wave miss deltas. Requires Cells >= 2
	// and Waves >= 2.
	RoamFrac float64

	// SleepyFrac duty-cycles that fraction of each cell's objects (the first
	// k per cell): their radios listen only during the first SleepAwake of
	// every SleepPeriod, so broadcasts landing in the sleep window are
	// silently missed and must be recovered by the retry schedule. validate
	// proves the schedule's transmission offsets cover every sleep phase, so
	// sleepy fleets stay lossless by construction.
	SleepyFrac  float64
	SleepPeriod time.Duration // default 260ms
	SleepAwake  time.Duration // default 150ms

	// Adversary personas, driven against every cell after the honest waves
	// drain (closed loop only, no fault injection — their accounting is
	// exact). ReplayTargets wiretaps that many secure awake objects per cell
	// during the waves and replays the captured transcripts against them;
	// SybilRounds floods each cell that many times with discovery traffic
	// from rogue-provisioned identities. AdversaryTimeout bounds each
	// persona's response waits.
	ReplayTargets    int
	SybilRounds      int
	AdversaryTimeout time.Duration

	// Observer installs the passive crowd observer on every secure object:
	// true Level 2 objects feed the "plain" population and Level 3 objects
	// the "covert" one, so with Fellow false (every L3 answer is a cover-up)
	// the two populations must be statistically indistinguishable on timing
	// and length — the paper's Case-7 covertness claim, gated by
	// SLO.CovertnessAlpha. Sample bounds default to the observer's own
	// (min 50, max 4×min).
	Observer           bool
	ObserverMinSamples int
	ObserverMaxSamples int

	// BreakScoping deliberately sabotages the covertness countermeasures:
	// every engine speaks wire.V20 (whose L3 objects answer non-fellows with
	// the covert variant — the composition leak of §VI-B) and covert
	// variants' profiles are inflated past the fleet-wide pad, so their
	// answers are length-distinguishable. Observer runs use it to prove the
	// statistical gate actually fires on a leaky deployment.
	BreakScoping bool

	// Retry is installed on every engine. SessionTTL doubles as the drain
	// horizon for leak checks.
	Retry core.RetryPolicy

	// Seed drives every harness random choice (churn victim selection,
	// open-loop arrivals); fixed seed = fixed schedule.
	Seed int64

	// Mailbox overrides the transport inbound queue depth (0 = transport
	// default). Workers bounds provisioning parallelism. DrainTimeout is
	// the per-wave completion deadline; sessions still missing when it
	// expires are counted lost. VerifyCacheCap sizes the shared credential
	// cache (entries).
	Mailbox        int
	Workers        int
	DrainTimeout   time.Duration
	VerifyCacheCap int

	// SLO is asserted over the finished run's report.
	SLO SLO

	// Live observability hooks. Registry, when non-nil, receives all run
	// telemetry instead of a fresh private registry, so an obs endpoint can
	// serve the run's metrics while it executes. Tracer, when non-nil, is
	// wired into the subject engines so discovery spans stream to live
	// subscribers. Events, when non-nil, receives progress frames and
	// snapshot frames at phase boundaries.
	Registry *obs.Registry
	Tracer   *obs.Tracer
	Events   Publisher

	// Logf, when set, receives progress lines (plug in t.Logf or log.Printf).
	Logf func(format string, args ...any)
}

// Subjects returns the initial fleet-wide subject count.
func (p *Profile) Subjects() int { return p.Cells * p.SubjectsPerCell }

// Objects returns the fleet-wide object count.
func (p *Profile) Objects() int { return p.Cells * p.ObjectsPerCell }

func (p *Profile) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

// withDefaults fills zero fields with workable values.
func (p Profile) withDefaults() Profile {
	if p.Transport == "" {
		p.Transport = TransportMesh
	}
	if p.Cells <= 0 {
		p.Cells = 1
	}
	if p.SubjectsPerCell <= 0 {
		p.SubjectsPerCell = 1
	}
	if p.ObjectsPerCell <= 0 {
		p.ObjectsPerCell = 1
	}
	if len(p.Levels) == 0 {
		p.Levels = []backend.Level{backend.L2}
	}
	if p.Waves <= 0 {
		p.Waves = 1
	}
	if !p.Retry.Enabled() {
		p.Retry = core.RetryPolicy{
			Que1Retries: 2, Que2Retries: 3,
			Timeout: 2 * time.Second, Backoff: 2, SessionTTL: 5 * time.Second,
		}
	}
	if p.DrainTimeout <= 0 {
		p.DrainTimeout = 60 * time.Second
	}
	if p.VerifyCacheCap <= 0 {
		p.VerifyCacheCap = 1 << 16
	}
	if p.Workers <= 0 {
		p.Workers = 4
	}
	if p.SleepyFrac > 0 {
		if p.SleepPeriod <= 0 {
			p.SleepPeriod = 260 * time.Millisecond
		}
		if p.SleepAwake <= 0 {
			p.SleepAwake = 150 * time.Millisecond
		}
	}
	if p.AdversaryTimeout <= 0 {
		p.AdversaryTimeout = 5 * time.Second
	}
	return p
}

// sleepyPerCell is how many of a cell's objects the profile duty-cycles.
func (p *Profile) sleepyPerCell() int {
	if p.SleepyFrac <= 0 {
		return 0
	}
	return int(p.SleepyFrac * float64(p.ObjectsPerCell))
}

// replayIndices picks which of cell ci's objects are wiretapped and replayed:
// secure only (public objects take no QUE2) and never sleepy (a duty-cycled
// radio may miss injected frames, which would falsify the exact
// injected-vs-counted accounting, not the defense). Targets are taken from
// the end of the cell so the sleepy prefix never collides.
func (p *Profile) replayIndices(ci int) (map[int]bool, error) {
	out := make(map[int]bool, p.ReplayTargets)
	if p.ReplayTargets <= 0 {
		return out, nil
	}
	need := p.ReplayTargets
	for k := p.ObjectsPerCell - 1; k >= p.sleepyPerCell() && need > 0; k-- {
		if p.Levels[(ci*p.ObjectsPerCell+k)%len(p.Levels)] == backend.L1 {
			continue
		}
		out[k] = true
		need--
	}
	if need > 0 {
		return nil, fmt.Errorf("load: cell %d has only %d secure awake objects, need %d replay targets",
			ci, p.ReplayTargets-need, p.ReplayTargets)
	}
	return out, nil
}

// dutyCycleCovered proves that a retransmission schedule always reaches a
// duty-cycled receiver regardless of phase: the awake windows anchored at
// each transmission offset (mod period) must cover the whole circle, which
// holds iff the largest circular gap between consecutive offsets is smaller
// than the awake window.
func dutyCycleCovered(offsets []time.Duration, period, awake time.Duration) bool {
	mods := make([]time.Duration, len(offsets))
	for i, o := range offsets {
		mods[i] = o % period
	}
	sort.Slice(mods, func(i, j int) bool { return mods[i] < mods[j] })
	maxGap := period - mods[len(mods)-1] + mods[0] // wraparound gap
	for i := 1; i < len(mods); i++ {
		if g := mods[i] - mods[i-1]; g > maxGap {
			maxGap = g
		}
	}
	return maxGap < awake
}

// validate rejects shapes the engines cannot serve losslessly.
func (p *Profile) validate() error {
	switch p.Transport {
	case TransportMesh, TransportUDP:
	default:
		return fmt.Errorf("load: unknown transport %q", p.Transport)
	}
	// An object keeps one session per subject round until SessionTTL; the
	// engine refuses new handshakes past its session-table cap (256). Bound
	// the per-object session pressure so refusals — which would surface as
	// lost completions — cannot happen by construction.
	if p.SubjectsPerCell > 64 {
		return fmt.Errorf("load: SubjectsPerCell %d > 64 would risk the object session-table cap; add cells instead", p.SubjectsPerCell)
	}
	if p.Rate > 0 && (p.RevokeFrac > 0 || p.AddFrac > 0) {
		return fmt.Errorf("load: churn is a closed-loop feature (Rate must be 0)")
	}
	if p.CrashFrac < 0 || p.CrashFrac > 1 {
		return fmt.Errorf("load: CrashFrac %v outside [0,1]", p.CrashFrac)
	}
	if p.CrashFrac > 0 && p.RevokeFrac <= 0 {
		return fmt.Errorf("load: CrashFrac needs revocation churn to park (RevokeFrac > 0)")
	}
	if p.Faults.Active() && !p.Retry.Enabled() {
		return fmt.Errorf("load: fault injection requires an enabled retry policy")
	}
	for _, l := range p.Levels {
		if !l.Valid() {
			return fmt.Errorf("load: invalid level %d in Levels", int(l))
		}
	}

	churn := p.RevokeFrac > 0 || p.AddFrac > 0 || p.CrashFrac > 0
	if p.RoamFrac < 0 || p.RoamFrac > 1 {
		return fmt.Errorf("load: RoamFrac %v outside [0,1]", p.RoamFrac)
	}
	if p.RoamFrac > 0 {
		if p.Rate > 0 {
			return fmt.Errorf("load: roaming is a closed-loop feature (Rate must be 0)")
		}
		if p.Cells < 2 || p.Waves < 2 {
			return fmt.Errorf("load: roaming needs Cells >= 2 and Waves >= 2 (got %d cells, %d waves)", p.Cells, p.Waves)
		}
		if churn {
			return fmt.Errorf("load: roaming cannot be combined with churn (the expectation arithmetic would entangle)")
		}
	}

	if p.SleepyFrac < 0 || p.SleepyFrac > 1 {
		return fmt.Errorf("load: SleepyFrac %v outside [0,1]", p.SleepyFrac)
	}
	if p.SleepyFrac > 0 {
		if !p.Retry.Enabled() || p.Retry.Que1Retries == 0 || p.Retry.Que2Retries == 0 {
			return fmt.Errorf("load: sleepy objects need retransmission on both legs (Que1Retries and Que2Retries > 0)")
		}
		if p.Retry.Adaptive {
			// The losslessness proof below reasons over the exact static
			// transmission schedule; an adaptive policy defers deadlines
			// past it, so a sleepy object's awake windows are no longer
			// guaranteed to intersect any transmission.
			return fmt.Errorf("load: adaptive retry defers the transmission schedule the sleepy duty-cycle coverage proof depends on; use a static policy with SleepyFrac")
		}
		if churn {
			return fmt.Errorf("load: sleepy objects would sleep through update pushes; no churn")
		}
		if p.SleepAwake <= 0 || p.SleepAwake >= p.SleepPeriod {
			return fmt.Errorf("load: need 0 < SleepAwake (%v) < SleepPeriod (%v)", p.SleepAwake, p.SleepPeriod)
		}
		// Losslessness proof: every sleep phase must be covered by some
		// transmission of each leg, and the session must outlive the
		// worst-case two-leg recovery.
		if !dutyCycleCovered(p.Retry.Schedule(p.Retry.Que1Retries), p.SleepPeriod, p.SleepAwake) {
			return fmt.Errorf("load: QUE1 schedule %v does not cover a %v/%v duty cycle; a sleepy object could miss every broadcast",
				p.Retry.Schedule(p.Retry.Que1Retries), p.SleepAwake, p.SleepPeriod)
		}
		if !dutyCycleCovered(p.Retry.Schedule(p.Retry.Que2Retries), p.SleepPeriod, p.SleepAwake) {
			return fmt.Errorf("load: QUE2 schedule %v does not cover a %v/%v duty cycle; a sleepy object could miss every QUE2",
				p.Retry.Schedule(p.Retry.Que2Retries), p.SleepAwake, p.SleepPeriod)
		}
		q1 := p.Retry.Schedule(p.Retry.Que1Retries)
		q2 := p.Retry.Schedule(p.Retry.Que2Retries)
		ttl := p.Retry.SessionTTL
		if ttl <= 0 {
			ttl = 8 * time.Second
		}
		if tail := q1[len(q1)-1] + q2[len(q2)-1]; ttl <= tail {
			return fmt.Errorf("load: SessionTTL %v does not outlive the worst-case sleepy recovery tail %v", ttl, tail)
		}
	}

	if p.ReplayTargets > 0 || p.SybilRounds > 0 {
		if p.Rate > 0 {
			return fmt.Errorf("load: adversary personas are a closed-loop feature (Rate must be 0)")
		}
		if p.Faults.Active() {
			return fmt.Errorf("load: adversary personas need a fault-free transport (their accounting is exact)")
		}
	}
	for ci := 0; ci < p.Cells; ci++ {
		if _, err := p.replayIndices(ci); err != nil {
			return err
		}
	}

	if p.Observer || p.BreakScoping {
		if p.Fellow {
			return fmt.Errorf("load: observer and broken-scoping runs need Fellow false (every L3 answer must be a cover-up)")
		}
	}
	if p.Observer {
		var hasL2, hasL3 bool
		for _, l := range p.Levels {
			hasL2 = hasL2 || l == backend.L2
			hasL3 = hasL3 || l == backend.L3
		}
		if !hasL2 || !hasL3 {
			return fmt.Errorf("load: the observer compares L2 against L3 populations; Levels must contain both")
		}
	}
	return nil
}

// Profiles returns the built-in profile registry keyed by name. The
// returned map is freshly built; callers may mutate their copy.
func Profiles() map[string]Profile {
	quickRetry := core.RetryPolicy{
		Que1Retries: 3, Que2Retries: 3,
		Timeout: 100 * time.Millisecond, Backoff: 2, SessionTTL: time.Second,
	}
	ps := []Profile{
		{
			Name:        "ci-soak",
			Description: "deterministic short soak for CI under -race: 96 subjects × 24 objects over Mesh, 3 waves (cold → warm → post-churn), revocation + live-add churn with a crash-windowed DLQ redelivery",
			Transport:   TransportMesh,
			Cells:       12, SubjectsPerCell: 8, ObjectsPerCell: 2,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Waves:  3, ThinkTime: 50 * time.Millisecond,
			RevokeFrac: 0.25, AddFrac: 0.25,
			CrashFrac:    0.5, // one of each cell's two objects rides the DLQ
			Retry:        quickRetry,
			Seed:         1,
			DrainTimeout: 30 * time.Second,
			SLO: SLO{
				MinPeakConcurrent: 150,
				P50Ceiling:        2 * time.Second,
				P99Ceiling:        8 * time.Second,
				// The static backoff schedule fires under -race scheduling
				// jitter; benign duplicates, not losses.
				MaxRetransmissions: -1, MaxWarmRetransmissions: -1,
			},
		},
		{
			Name:        "standard",
			Description: "the headline Mesh soak: 10,000 subjects × 1,000 objects (500 cells), 20,000 concurrent sessions per wave, 3 waves with 10% revocation + 5% live-add churn",
			Transport:   TransportMesh,
			Cells:       500, SubjectsPerCell: 20, ObjectsPerCell: 2,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Waves:  3, ThinkTime: 100 * time.Millisecond,
			// A 20k-session wave is ~12s of handshake crypto on one core;
			// pacing round starts across 12s keeps every session's compute
			// queue wait far inside the 10s SessionTTL (an instantaneous
			// burst pushes the tail past it, forcing expiry/restart churn).
			ArmWindow:  12 * time.Second,
			RevokeFrac: 0.10, AddFrac: 0.05,
			Retry: core.RetryPolicy{
				Que1Retries: 2, Que2Retries: 3,
				// SessionTTL must exceed the worst-case handshake completion
				// time or healthy sessions expire mid-handshake and churn
				// through expiry/restart recovery: a cold 20k-session wave is
				// ~12s of ECDSA on one core, so 10s (the old static-schedule
				// value) sat inside the compute backlog.
				Timeout: 4 * time.Second, Backoff: 2, SessionTTL: 20 * time.Second,
				Adaptive: true,
			},
			Seed:         1,
			Workers:      8,
			DrainTimeout: 180 * time.Second,
			SLO: SLO{
				MinPeakConcurrent: 10000,
				P50Ceiling:        10 * time.Second,
				P99Ceiling:        13 * time.Second,
				MaxSlowSessions:   0,
				// Mesh is lossless and the retry policy is adaptive, so once
				// the RTT estimator has samples a retransmission is a timer
				// misfire: waves after the first must retransmit exactly
				// zero, and that invariant is pinned hard. The cold first
				// wave is different — QUE1 quiescence probes fire against the
				// initial conservative RTO while the fleet's handshake
				// backlog is deepest, measured at 0.8k–4.8k probes per run on
				// one core depending on scheduling jitter — so the total gate
				// is a cold-start noise ceiling, not a loss budget (the
				// static schedule produced 94k+ on this profile).
				MaxRetransmissions:     10000,
				MaxWarmRetransmissions: 0,
			},
		},
		{
			Name:        "udp-smoke",
			Description: "small fleet over real UDP loopback sockets: 20 subjects × 8 objects in 4 cells, 2 waves",
			Transport:   TransportUDP,
			Cells:       4, SubjectsPerCell: 5, ObjectsPerCell: 2,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Waves:  2, ThinkTime: 50 * time.Millisecond,
			Retry: core.RetryPolicy{
				Que1Retries: 3, Que2Retries: 3,
				Timeout: 250 * time.Millisecond, Backoff: 2, SessionTTL: 2 * time.Second,
			},
			Seed:         1,
			DrainTimeout: 30 * time.Second,
			SLO: SLO{
				MinPeakConcurrent:  40,
				P50Ceiling:         2 * time.Second,
				P99Ceiling:         8 * time.Second,
				MaxRetransmissions: -1, MaxWarmRetransmissions: -1,
			},
		},
		{
			Name:        "open-loop",
			Description: "Poisson arrivals at 400 rounds/s over 500 subjects × 100 objects for 5 s — queueing from offered load, skipped arrivals reported",
			Transport:   TransportMesh,
			Cells:       50, SubjectsPerCell: 10, ObjectsPerCell: 2,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Rate:   400, Duration: 5 * time.Second,
			Retry:        quickRetry,
			Seed:         1,
			DrainTimeout: 30 * time.Second,
			SLO: SLO{
				P50Ceiling:         2 * time.Second,
				P99Ceiling:         8 * time.Second,
				MaxRetransmissions: -1, MaxWarmRetransmissions: -1,
			},
		},
		{
			Name:        "soak-faulty",
			Description: "400 subjects × 80 objects over Mesh with 5% loss, 5% duplication and 20 ms jitter injected at the transport seam; retransmission keeps the run complete",
			Transport:   TransportMesh,
			Cells:       40, SubjectsPerCell: 10, ObjectsPerCell: 2,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Waves:  2, ThinkTime: 100 * time.Millisecond,
			Faults: netsim.FaultModel{
				Loss: 0.05, Duplicate: 0.05, ReorderJitter: 20 * time.Millisecond,
			},
			FaultSeed: 7,
			Retry:     core.DefaultRetry(),
			Seed:      1,
			// Injected loss can in principle exhaust the retry budget; a
			// handful of misses out of 1,600 sessions is within spec.
			DrainTimeout: 60 * time.Second,
			SLO: SLO{
				MaxLost:           4,
				MinPeakConcurrent: 700,
				P50Ceiling:        4 * time.Second,
				P99Ceiling:        13 * time.Second,
				// Each lost session also shows up as (at most) one expiry on
				// each side beyond the predicted count.
				MaxExpiredExtra: 8,
				// Retransmission is the recovery mechanism here.
				MaxRetransmissions: -1, MaxWarmRetransmissions: -1,
			},
		},
		{
			Name:        "adversary-soak",
			Description: "hostile-scenario soak: 36 roaming subjects × 24 objects (one sleepy per cell) over Mesh, 3 waves, then transcript replay + Sybil floods against every cell with exact-delta accounting",
			Transport:   TransportMesh,
			Cells:       6, SubjectsPerCell: 6, ObjectsPerCell: 4,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Waves:  3, ThinkTime: 30 * time.Millisecond,
			RoamFrac:   0.34, // 2 of 6 subjects per cell migrate at each of 2 boundaries
			SleepyFrac: 0.25, // the L1 object of each cell duty-cycles its radio
			// {0, 100, 300, 700} ms mod 260 = {0, 100, 40, 180}: max circular
			// gap 80ms < 150ms awake, so every sleep phase is covered.
			Retry: core.RetryPolicy{
				Que1Retries: 3, Que2Retries: 3,
				Timeout: 100 * time.Millisecond, Backoff: 2, SessionTTL: 4 * time.Second,
			},
			ReplayTargets: 1, SybilRounds: 1,
			Seed:         1,
			DrainTimeout: 30 * time.Second,
			SLO: SLO{
				MinPeakConcurrent:         100,
				P50Ceiling:                2 * time.Second,
				P99Ceiling:                8 * time.Second,
				StrictAdversaryAccounting: true,
				// Sleepy objects miss broadcasts by design; rebroadcast is
				// what reaches them.
				MaxRetransmissions: -1, MaxWarmRetransmissions: -1,
			},
		},
		{
			Name:        "covert-observer",
			Description: "Case-7 covertness at load: 36 non-fellow subjects × 24 objects (half L2, half L3 answering with cover-ups) over Mesh, a passive crowd observer sampling timing and length, indistinguishability gated at alpha 1e-3",
			Transport:   TransportMesh,
			Cells:       6, SubjectsPerCell: 6, ObjectsPerCell: 4,
			Levels: []backend.Level{backend.L2, backend.L3},
			Fellow: false,
			Waves:  3, ThinkTime: 30 * time.Millisecond,
			Observer:           true,
			ObserverMinSamples: 150, // 216 QUE2→RES2 pairs per population over 3 waves
			ObserverMaxSamples: 400,
			Retry: core.RetryPolicy{
				Que1Retries: 3, Que2Retries: 3,
				Timeout: 100 * time.Millisecond, Backoff: 2, SessionTTL: 2 * time.Second,
			},
			Seed:         1,
			DrainTimeout: 30 * time.Second,
			SLO: SLO{
				MinPeakConcurrent: 100,
				P50Ceiling:        2 * time.Second,
				P99Ceiling:        8 * time.Second,
				CovertnessAlpha:   1e-3,
				// Legacy static schedule under bursty waves.
				MaxRetransmissions: -1, MaxWarmRetransmissions: -1,
			},
		},
	}
	m := make(map[string]Profile, len(ps))
	for _, p := range ps {
		m[p.Name] = p
	}
	return m
}
