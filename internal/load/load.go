// Package load is the load-generation and soak subsystem: it drives
// configurable fleets of L1/L2/L3 discovery sessions over the concurrent
// transports (transport.Mesh, transport.UDP) and asserts service-level
// objectives from internal/obs snapshots, so throughput or latency
// collapses in the engines, mailboxes, or verify cache surface as test and
// CI failures rather than anecdotes.
//
// # Topology
//
// A fleet is sharded into independent "cells": each cell is one broadcast
// domain (a Mesh, or a UDP peer group) holding SubjectsPerCell subject
// engines and ObjectsPerCell object engines. Cells model the paper's
// proximity scoping — discovery is radio-range-local, so an enterprise
// deployment is many small broadcast domains, not one giant one — and keep
// the harness clear of the object-side session-table bound
// (core's maxPendingSessions) while still multiplying to arbitrarily many
// concurrent sessions. All cells share one backend (single trust anchor),
// one obs.Registry, and one credential verify cache.
//
// # Drivers
//
// The closed-loop driver arms synchronized waves: every subject runs one
// discovery round per wave, and the next wave starts only when the previous
// has drained (think time in between). Wave 0 runs against a cold verify
// cache; later waves are warm. The open-loop driver instead issues rounds
// as a Poisson arrival process at Rate rounds/second over the subject pool,
// so queueing is driven by offered load rather than by completion.
//
// # Accounting
//
// One armed session = one subject↔object handshake expected to complete.
// Expectations are derived from ground truth the harness owns: a live
// subject discovers every object in its cell exactly once per round (the
// engines' duplicate suppression makes delivery exactly-once per round); a
// revoked subject discovers only the Level 1 objects. Completions are
// observed via Subject.OnDiscovery, so zero lost completions is asserted
// by exact counting, not by sampling. Mid-run churn (revocations pushed
// through internal/update agents, subjects added live) and optional fault
// injection (reusing the netsim.FaultModel knobs at the transport seam)
// perturb the run without changing the arithmetic.
package load

import (
	"fmt"
	"time"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/obs"
)

// Publisher receives live progress frames from a running profile — wave and
// churn summaries, the final report, and registry snapshots at phase
// boundaries. Satisfied by *realtime.Hub; nil disables publishing.
type Publisher interface {
	PublishSnapshot()
	PublishData(kind string, v any) error
}

// Transport selects the concurrent transport a profile runs over.
type Transport string

const (
	// TransportMesh runs every cell as an in-memory transport.Mesh.
	TransportMesh Transport = "mesh"
	// TransportUDP runs every cell as real UDP sockets on loopback.
	TransportUDP Transport = "udp"
)

// Profile fully describes one load run: fleet shape, driver, churn, faults,
// and the SLOs the run is held to.
type Profile struct {
	Name        string
	Description string
	Transport   Transport

	// Fleet shape: Cells broadcast domains of SubjectsPerCell subjects and
	// ObjectsPerCell objects each. Levels is the repeating level pattern
	// assigned to objects in creation order (default all L2). Fellow puts
	// every subject in the covert group served by L3 objects, so L3
	// services resolve at L3; without it they resolve at their L2 face.
	Cells           int
	SubjectsPerCell int
	ObjectsPerCell  int
	Levels          []backend.Level
	Fellow          bool

	// Closed-loop driver: Waves discovery rounds per subject, separated by
	// ThinkTime once the previous wave has fully drained.
	Waves     int
	ThinkTime time.Duration

	// Open-loop driver (replaces the wave loop when Rate > 0): Poisson
	// arrivals at Rate rounds/second across the subject pool for Duration.
	// An arrival finding every subject busy is counted as skipped, never
	// queued — the defining property of open-loop load.
	Rate     float64
	Duration time.Duration

	// Churn, applied between the last two waves (closed loop only):
	// RevokeFrac of each cell's subjects are revoked (backend bookkeeping +
	// signed update notifications pushed to their cell's objects), and
	// AddFrac new subjects per cell are registered, provisioned, and join
	// the final wave with cold credentials.
	RevokeFrac float64
	AddFrac    float64

	// CrashFrac crashes that fraction of each cell's objects for the
	// duration of the churn window: they drop offline at the cell's update
	// distributor before the revocations are pushed, so their notifications
	// park in the per-destination dead-letter queue and are redelivered in
	// order when the harness reattaches them — after the live population has
	// effectuated. Exercises the DLQ contract (DESIGN.md §11) under load;
	// requires revocation churn (closed loop, RevokeFrac > 0).
	CrashFrac float64

	// Faults, when active, wraps every engine endpoint in a lossy layer
	// reusing the netsim fault-model knobs (see WrapFaults). Fault runs
	// need Retry enabled to stay complete.
	Faults    netsim.FaultModel
	FaultSeed int64

	// Retry is installed on every engine. SessionTTL doubles as the drain
	// horizon for leak checks.
	Retry core.RetryPolicy

	// Seed drives every harness random choice (churn victim selection,
	// open-loop arrivals); fixed seed = fixed schedule.
	Seed int64

	// Mailbox overrides the transport inbound queue depth (0 = transport
	// default). Workers bounds provisioning parallelism. DrainTimeout is
	// the per-wave completion deadline; sessions still missing when it
	// expires are counted lost. VerifyCacheCap sizes the shared credential
	// cache (entries).
	Mailbox        int
	Workers        int
	DrainTimeout   time.Duration
	VerifyCacheCap int

	// SLO is asserted over the finished run's report.
	SLO SLO

	// Live observability hooks. Registry, when non-nil, receives all run
	// telemetry instead of a fresh private registry, so an obs endpoint can
	// serve the run's metrics while it executes. Tracer, when non-nil, is
	// wired into the subject engines so discovery spans stream to live
	// subscribers. Events, when non-nil, receives progress frames and
	// snapshot frames at phase boundaries.
	Registry *obs.Registry
	Tracer   *obs.Tracer
	Events   Publisher

	// Logf, when set, receives progress lines (plug in t.Logf or log.Printf).
	Logf func(format string, args ...any)
}

// Subjects returns the initial fleet-wide subject count.
func (p *Profile) Subjects() int { return p.Cells * p.SubjectsPerCell }

// Objects returns the fleet-wide object count.
func (p *Profile) Objects() int { return p.Cells * p.ObjectsPerCell }

func (p *Profile) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

// withDefaults fills zero fields with workable values.
func (p Profile) withDefaults() Profile {
	if p.Transport == "" {
		p.Transport = TransportMesh
	}
	if p.Cells <= 0 {
		p.Cells = 1
	}
	if p.SubjectsPerCell <= 0 {
		p.SubjectsPerCell = 1
	}
	if p.ObjectsPerCell <= 0 {
		p.ObjectsPerCell = 1
	}
	if len(p.Levels) == 0 {
		p.Levels = []backend.Level{backend.L2}
	}
	if p.Waves <= 0 {
		p.Waves = 1
	}
	if !p.Retry.Enabled() {
		p.Retry = core.RetryPolicy{
			Que1Retries: 2, Que2Retries: 3,
			Timeout: 2 * time.Second, Backoff: 2, SessionTTL: 5 * time.Second,
		}
	}
	if p.DrainTimeout <= 0 {
		p.DrainTimeout = 60 * time.Second
	}
	if p.VerifyCacheCap <= 0 {
		p.VerifyCacheCap = 1 << 16
	}
	if p.Workers <= 0 {
		p.Workers = 4
	}
	return p
}

// validate rejects shapes the engines cannot serve losslessly.
func (p *Profile) validate() error {
	switch p.Transport {
	case TransportMesh, TransportUDP:
	default:
		return fmt.Errorf("load: unknown transport %q", p.Transport)
	}
	// An object keeps one session per subject round until SessionTTL; the
	// engine refuses new handshakes past its session-table cap (256). Bound
	// the per-object session pressure so refusals — which would surface as
	// lost completions — cannot happen by construction.
	if p.SubjectsPerCell > 64 {
		return fmt.Errorf("load: SubjectsPerCell %d > 64 would risk the object session-table cap; add cells instead", p.SubjectsPerCell)
	}
	if p.Rate > 0 && (p.RevokeFrac > 0 || p.AddFrac > 0) {
		return fmt.Errorf("load: churn is a closed-loop feature (Rate must be 0)")
	}
	if p.CrashFrac < 0 || p.CrashFrac > 1 {
		return fmt.Errorf("load: CrashFrac %v outside [0,1]", p.CrashFrac)
	}
	if p.CrashFrac > 0 && p.RevokeFrac <= 0 {
		return fmt.Errorf("load: CrashFrac needs revocation churn to park (RevokeFrac > 0)")
	}
	if p.Faults.Active() && !p.Retry.Enabled() {
		return fmt.Errorf("load: fault injection requires an enabled retry policy")
	}
	for _, l := range p.Levels {
		if !l.Valid() {
			return fmt.Errorf("load: invalid level %d in Levels", int(l))
		}
	}
	return nil
}

// Profiles returns the built-in profile registry keyed by name. The
// returned map is freshly built; callers may mutate their copy.
func Profiles() map[string]Profile {
	quickRetry := core.RetryPolicy{
		Que1Retries: 3, Que2Retries: 3,
		Timeout: 100 * time.Millisecond, Backoff: 2, SessionTTL: time.Second,
	}
	ps := []Profile{
		{
			Name:        "ci-soak",
			Description: "deterministic short soak for CI under -race: 96 subjects × 24 objects over Mesh, 3 waves (cold → warm → post-churn), revocation + live-add churn with a crash-windowed DLQ redelivery",
			Transport:   TransportMesh,
			Cells:       12, SubjectsPerCell: 8, ObjectsPerCell: 2,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Waves:  3, ThinkTime: 50 * time.Millisecond,
			RevokeFrac: 0.25, AddFrac: 0.25,
			CrashFrac:    0.5, // one of each cell's two objects rides the DLQ
			Retry:        quickRetry,
			Seed:         1,
			DrainTimeout: 30 * time.Second,
			SLO: SLO{
				MinPeakConcurrent: 150,
				P50Ceiling:        2 * time.Second,
				P99Ceiling:        8 * time.Second,
			},
		},
		{
			Name:        "standard",
			Description: "the headline Mesh soak: 10,000 subjects × 1,000 objects (500 cells), 20,000 concurrent sessions per wave, 3 waves with 10% revocation + 5% live-add churn",
			Transport:   TransportMesh,
			Cells:       500, SubjectsPerCell: 20, ObjectsPerCell: 2,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Waves:  3, ThinkTime: 100 * time.Millisecond,
			RevokeFrac: 0.10, AddFrac: 0.05,
			Retry: core.RetryPolicy{
				Que1Retries: 2, Que2Retries: 3,
				Timeout: 4 * time.Second, Backoff: 2, SessionTTL: 10 * time.Second,
			},
			Seed:         1,
			Workers:      8,
			DrainTimeout: 180 * time.Second,
			SLO: SLO{
				MinPeakConcurrent: 10000,
				P50Ceiling:        10 * time.Second,
				P99Ceiling:        13 * time.Second,
				MaxSlowSessions:   0,
			},
		},
		{
			Name:        "udp-smoke",
			Description: "small fleet over real UDP loopback sockets: 20 subjects × 8 objects in 4 cells, 2 waves",
			Transport:   TransportUDP,
			Cells:       4, SubjectsPerCell: 5, ObjectsPerCell: 2,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Waves:  2, ThinkTime: 50 * time.Millisecond,
			Retry: core.RetryPolicy{
				Que1Retries: 3, Que2Retries: 3,
				Timeout: 250 * time.Millisecond, Backoff: 2, SessionTTL: 2 * time.Second,
			},
			Seed:         1,
			DrainTimeout: 30 * time.Second,
			SLO: SLO{
				MinPeakConcurrent: 40,
				P50Ceiling:        2 * time.Second,
				P99Ceiling:        8 * time.Second,
			},
		},
		{
			Name:        "open-loop",
			Description: "Poisson arrivals at 400 rounds/s over 500 subjects × 100 objects for 5 s — queueing from offered load, skipped arrivals reported",
			Transport:   TransportMesh,
			Cells:       50, SubjectsPerCell: 10, ObjectsPerCell: 2,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Rate:   400, Duration: 5 * time.Second,
			Retry:        quickRetry,
			Seed:         1,
			DrainTimeout: 30 * time.Second,
			SLO: SLO{
				P50Ceiling: 2 * time.Second,
				P99Ceiling: 8 * time.Second,
			},
		},
		{
			Name:        "soak-faulty",
			Description: "400 subjects × 80 objects over Mesh with 5% loss, 5% duplication and 20 ms jitter injected at the transport seam; retransmission keeps the run complete",
			Transport:   TransportMesh,
			Cells:       40, SubjectsPerCell: 10, ObjectsPerCell: 2,
			Levels: []backend.Level{backend.L1, backend.L2, backend.L3, backend.L2},
			Fellow: true,
			Waves:  2, ThinkTime: 100 * time.Millisecond,
			Faults: netsim.FaultModel{
				Loss: 0.05, Duplicate: 0.05, ReorderJitter: 20 * time.Millisecond,
			},
			FaultSeed: 7,
			Retry:     core.DefaultRetry(),
			Seed:      1,
			// Injected loss can in principle exhaust the retry budget; a
			// handful of misses out of 1,600 sessions is within spec.
			DrainTimeout: 60 * time.Second,
			SLO: SLO{
				MaxLost:           4,
				MinPeakConcurrent: 700,
				P50Ceiling:        4 * time.Second,
				P99Ceiling:        13 * time.Second,
				// Each lost session also shows up as (at most) one expiry on
				// each side beyond the predicted count.
				MaxExpiredExtra: 8,
			},
		},
	}
	m := make(map[string]Profile, len(ps))
	for _, p := range ps {
		m[p.Name] = p
	}
	return m
}
