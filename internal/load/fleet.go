package load

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"argus/internal/adversary"
	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/groups"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/update"
	"argus/internal/wire"
)

// subjectSlot is the harness's view of one subject engine. The mutex guards
// the per-round expectation counters, which are written by the orchestrator
// (arming) and by the engine's event loop (OnDiscovery).
type subjectSlot struct {
	id   cert.ID
	name string
	eng  *core.Subject
	ep   transport.Endpoint // the engine's endpoint; Do is the arming door
	cell *cell

	mu        sync.Mutex
	round     int  // mirrors the engine's round counter (one Discover per arm)
	expected  int  // completions this round must deliver
	got       int  // completions seen this round
	busy      bool // a round is in flight
	lostRound bool // the current round was reaped at the drain deadline
	revoked   bool // revocation effectuated; only L1 may arrive

	// staleGroup marks a fellow provisioned after a revocation rotated the
	// covert group key: the objects still hold the provisioning-time key,
	// so this subject's L3 visibility legitimately degrades to L2.
	staleGroup bool
}

// objectSlot is the harness's view of one object engine.
type objectSlot struct {
	id    cert.ID
	eng   *core.Object
	agent *update.Agent
	level backend.Level
	addr  transport.Addr // pre-fault endpoint address, for DLQ Reattach
}

// objHolder lets the update agent's apply callback (wired before the engine
// exists) reach the engine built one statement later. The write happens
// before any notification can possibly be enqueued, and the mailbox mutex
// orders it against the event loop's read.
type objHolder struct{ obj *core.Object }

// cell is one broadcast domain: a Mesh (or UDP peer group) of subjects and
// objects plus the cell's update distributor.
type cell struct {
	index    int
	mesh     *transport.Mesh // nil for UDP cells
	udps     []*transport.UDPEndpoint
	join     func() (transport.Endpoint, error) // mints one more member endpoint
	subjects []*subjectSlot
	objects  []*objectSlot
	dist     *update.Distributor
	objIDs   []cert.ID
	l1Count  int // L1 objects remain visible to revoked subjects

	// vcache is the cell's credential verification cache. Caches are
	// per-cell because verification is radio-range-local in the deployed
	// system: a roaming subject arrives at a cell that has never verified
	// it, which is exactly the locality effect RoamFrac measures.
	vcache *cert.VerifyCache
	// sleepy are the cell's duty-cycled object radios (wake override).
	sleepy []*sleepyEndpoint
	// replays are the cell's wiretapped objects and their captured
	// transcripts, for the replay persona.
	replays []adversary.ReplayTarget
}

// fleet is the fully provisioned run state. mu guards the per-cell slot
// slices: the orchestrator appends subjects during add-churn while the
// sampler goroutine walks the fleet for open-handshake counts.
type fleet struct {
	p   Profile
	reg *obs.Registry
	// backend is the concrete enterprise — kept for what only the concrete
	// type offers (the distributor admin, batch registration). All churn
	// goes through svc, the transport-agnostic Service seam, so the harness
	// exercises the same surface a remote backend serves.
	backend  *backend.Backend
	svc      backend.Service
	group    groups.ID
	cells    []*cell
	observer *adversary.Observer // nil unless Profile.Observer
	sleepy   int                 // fleet-wide duty-cycled object count

	// vmemo dedups the fan-out of identically-signed update notifications
	// across every agent in the fleet (see suite.VerifyMemo).
	vmemo *suite.VerifyMemo

	mu           sync.RWMutex
	subjectCount atomic.Int64
}

// engineVersion is the wire version every engine speaks: v3.0 normally,
// v2.0 when the profile deliberately breaks the covertness countermeasures.
func (p *Profile) engineVersion() wire.Version {
	if p.BreakScoping {
		return wire.V20
	}
	return wire.V30
}

// onDiscovery is installed on every subject engine by the runner before any
// traffic flows; declared here as a type to keep fleet.go engine-agnostic.
type discoveryHook func(*subjectSlot, core.Discovery)

// buildFleet provisions the backend and constructs every cell, engine, and
// distributor. hook receives completion events on engine event loops;
// observer, when non-nil, is tapped onto every secure object.
func buildFleet(p Profile, reg *obs.Registry, observer *adversary.Observer, hook discoveryHook) (*fleet, error) {
	b, err := backend.New(suite.S128, backend.WithTelemetry(reg), backend.WithShards(p.Cells))
	if err != nil {
		return nil, err
	}
	if _, _, err := b.AddPolicy(
		attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"),
		[]string{"use"}); err != nil {
		return nil, err
	}
	grp, err := b.Groups.CreateGroup("load covert group")
	if err != nil {
		return nil, err
	}

	f := &fleet{p: p, reg: reg, backend: b, svc: backend.NewLocal(b), group: grp.ID(), observer: observer}

	// One signed churn notification fans out to every affected agent in this
	// process; a fleet-shared memo verifies each distinct notification once.
	vmemo := suite.NewVerifyMemo(0)
	f.vmemo = vmemo

	// Register + provision the whole population through the batch APIs.
	nSubj, nObj := p.Subjects(), p.Objects()
	subjSpecs := make([]backend.SubjectSpec, nSubj)
	for i := range subjSpecs {
		subjSpecs[i] = backend.SubjectSpec{
			Name:  fmt.Sprintf("s-%d", i),
			Attrs: attr.MustSet("position=staff"),
		}
	}
	sids, err := b.RegisterSubjects(subjSpecs, p.Workers)
	if err != nil {
		return nil, err
	}
	objSpecs := make([]backend.ObjectSpec, nObj)
	levels := make([]backend.Level, nObj)
	for i := range objSpecs {
		levels[i] = p.Levels[i%len(p.Levels)]
		objSpecs[i] = backend.ObjectSpec{
			Name:      fmt.Sprintf("o-%d", i),
			Level:     levels[i],
			Attrs:     attr.MustSet("type=device"),
			Functions: []string{"use"},
		}
	}
	oids, err := b.RegisterObjects(objSpecs, p.Workers)
	if err != nil {
		return nil, err
	}
	for i, oid := range oids {
		if levels[i] == backend.L3 {
			if err := b.AddCovertService(oid, grp.ID(), []string{"use", "covert"}); err != nil {
				return nil, err
			}
		}
	}
	if p.Fellow {
		for _, sid := range sids {
			if err := b.AddSubjectToGroup(sid, grp.ID()); err != nil {
				return nil, err
			}
		}
	}
	oprovs, err := b.ProvisionObjects(oids, p.Workers)
	if err != nil {
		return nil, err
	}
	if p.BreakScoping {
		// Undo the backend's uniform-length padding: inflate every covert
		// variant's profile past the fleet-wide pad target, so its cover-up
		// answers run measurably long — the un-countermeasured deployment the
		// observer's statistical gate must catch. Only non-fellows ever see
		// these bytes (validate enforces Fellow false), so the broken admin
		// signature is never checked.
		for _, prov := range oprovs {
			for i := range prov.Variants {
				if prov.Variants[i].IsCovert() {
					prov.Variants[i].Profile.Note += strings.Repeat(".", 64)
				}
			}
		}
	}

	// Assemble cells.
	f.cells = make([]*cell, p.Cells)
	si, oi := 0, 0
	for ci := range f.cells {
		c := &cell{index: ci}
		f.cells[ci] = c
		c.vcache = cert.NewVerifyCache(p.VerifyCacheCap)
		c.vcache.Instrument(reg)
		replayIdx, err := p.replayIndices(ci)
		if err != nil {
			return nil, err
		}
		join, err := f.openCell(c)
		if err != nil {
			return nil, err
		}
		c.join = join
		distEP, err := join()
		if err != nil {
			return nil, err
		}
		// The gateway only sends, but as a cell member it still receives
		// discovery broadcasts; drain them so an idle queue never fills up
		// and charges the run with mailbox drops.
		distEP.Bind(transport.HandlerFunc(func(transport.Addr, []byte) {}))
		c.dist = update.NewDistributor(b.Admin(), distEP)
		c.dist.Instrument(reg)

		for k := 0; k < p.ObjectsPerCell; k++ {
			prov := oprovs[oi]
			ep, err := join()
			if err != nil {
				return nil, err
			}
			addr := ep.Addr()
			// Taps sit innermost so the antenna sees every frame on the air —
			// inbound even if the sleep gate then drops it, outbound only if
			// it survived the fault layer (i.e. was actually transmitted).
			var taps []adversary.Tap
			if f.observer != nil && levels[oi] != backend.L1 {
				pop := adversary.PopPlain
				if levels[oi] == backend.L3 {
					pop = adversary.PopCovert
				}
				taps = append(taps, f.observer.Tap(pop))
			}
			var capture *adversary.Capture
			if replayIdx[k] {
				capture = adversary.NewCapture()
				taps = append(taps, capture)
			}
			ep = adversary.WrapTap(ep, taps...)
			if k < p.sleepyPerCell() {
				// Stagger sleep phases across the fleet so sleepy radios
				// don't blink in lockstep.
				phase := time.Duration(oi) * p.SleepPeriod / time.Duration(max(1, p.Objects()))
				sl := wrapSleepy(ep, p.SleepPeriod, p.SleepAwake, phase, reg)
				c.sleepy = append(c.sleepy, sl)
				f.sleepy++
				ep = sl
			}
			ep = WrapFaults(ep, p.Faults, p.FaultSeed+int64(oi)*2+1, reg)
			hold := &objHolder{}
			agent := update.NewAgent(b.AdminPublic(), nil, func(n *update.Notification) {
				// Runs on the object's event loop, where Revoke is legal.
				if n.Kind == update.KindRevokeSubject && hold.obj != nil {
					hold.obj.Revoke(n.Subject)
				}
			})
			// The distributor's push-time map is mutex-guarded, so the
			// agents' propagation histogram works on the concurrent
			// transports too — and measures from park time across any DLQ
			// crash window.
			agent.UseVerifyMemo(f.vmemo)
			agent.Instrument(reg, c.dist.SentAt)
			obj := core.NewObject(prov, p.engineVersion(), core.Costs{},
				core.WithEndpoint(agent.Wrap(ep)),
				core.WithRetry(p.Retry),
				core.WithTelemetry(reg, nil),
				core.WithVerifyCache(c.vcache))
			hold.obj = obj
			slot := &objectSlot{id: prov.ID, eng: obj, agent: agent, level: levels[oi], addr: addr}
			c.objects = append(c.objects, slot)
			c.objIDs = append(c.objIDs, prov.ID)
			if levels[oi] == backend.L1 {
				c.l1Count++
			}
			if capture != nil {
				c.replays = append(c.replays, adversary.ReplayTarget{Object: addr, Capture: capture})
			}
			c.dist.Register(prov.ID, addr)
			oi++
		}

		for k := 0; k < p.SubjectsPerCell; k++ {
			if err := f.addSubject(c, sids[si], subjSpecs[si].Name, false, hook); err != nil {
				return nil, err
			}
			si++
		}
	}
	return f, nil
}

// openCell creates the cell's broadcast domain and returns a join function
// minting one endpoint per engine.
func (f *fleet) openCell(c *cell) (func() (transport.Endpoint, error), error) {
	switch f.p.Transport {
	case TransportMesh:
		var opts []transport.MeshOption
		if f.p.Mailbox > 0 {
			opts = append(opts, transport.WithMailbox(f.p.Mailbox))
		}
		opts = append(opts, transport.WithRegistry(f.reg))
		c.mesh = transport.NewMesh(opts...)
		return func() (transport.Endpoint, error) { return c.mesh.Join(), nil }, nil
	case TransportUDP:
		return func() (transport.Endpoint, error) {
			ep, err := transport.ListenUDP(transport.UDPConfig{
				Listen:   "127.0.0.1:0",
				Mailbox:  f.p.Mailbox,
				Registry: f.reg,
			})
			if err != nil {
				return nil, err
			}
			// Full peer mesh within the cell: everyone already present
			// learns the newcomer and vice versa, so broadcasts reach the
			// whole cell regardless of join order.
			for _, prev := range c.udps {
				if err := prev.AddPeer(string(ep.Addr())); err != nil {
					return nil, err
				}
				if err := ep.AddPeer(string(prev.Addr())); err != nil {
					return nil, err
				}
			}
			c.udps = append(c.udps, ep)
			return ep, nil
		}, nil
	default:
		return nil, fmt.Errorf("load: unknown transport %q", f.p.Transport)
	}
}

// addSubject provisions and attaches one subject engine to the cell. Used
// at build time and for mid-run add-churn; staleGroup is true when the
// covert group key has rotated since the objects were provisioned.
func (f *fleet) addSubject(c *cell, id cert.ID, name string, staleGroup bool, hook discoveryHook) error {
	prov, err := f.svc.ProvisionSubject(context.Background(), id)
	if err != nil {
		return fmt.Errorf("provision %s: %w", name, err)
	}
	ep, err := c.join()
	if err != nil {
		return err
	}
	ep = WrapFaults(ep, f.p.Faults, f.p.FaultSeed+f.subjectCount.Load()*2+2, f.reg)
	subj := core.NewSubject(prov, f.p.engineVersion(), core.Costs{},
		core.WithEndpoint(ep),
		core.WithRetry(f.p.Retry),
		core.WithTelemetry(f.reg, f.p.Tracer),
		core.WithVerifyCache(c.vcache))
	slot := &subjectSlot{id: id, name: name, eng: subj, ep: ep, cell: c, staleGroup: staleGroup}
	// The hook write is ordered before any traffic by the mailbox mutex on
	// the first Do/Send that can trigger it.
	subj.OnDiscovery = func(d core.Discovery) { hook(slot, d) }
	f.mu.Lock()
	c.subjects = append(c.subjects, slot)
	f.mu.Unlock()
	f.subjectCount.Add(1)
	return nil
}

// expectedRound returns how many completions one discovery round of this
// slot must produce: every object in the cell, or only the L1 objects once
// the subject's revocation has been effectuated.
func (s *subjectSlot) expectedRound() int {
	if s.revoked {
		return s.cell.l1Count
	}
	return len(s.cell.objects)
}

// levelOf returns the object population's level map for mismatch checks.
func (f *fleet) levelOf() map[cert.ID]backend.Level {
	m := make(map[cert.ID]backend.Level, f.p.Objects())
	for _, c := range f.cells {
		for _, o := range c.objects {
			m[o.id] = o.level
		}
	}
	return m
}

// pendingSessions sums PendingSessions across every engine (both roles);
// safe to call from any goroutine.
func (f *fleet) pendingSessions() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, c := range f.cells {
		for _, s := range c.subjects {
			n += s.eng.PendingSessions()
		}
		for _, o := range c.objects {
			n += o.eng.PendingSessions()
		}
	}
	return n
}

// subjectPendingSessions sums only the subject side (subject sessions close
// exactly at completion, so this hits zero as soon as a wave drains).
func (f *fleet) subjectPendingSessions() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, c := range f.cells {
		for _, s := range c.subjects {
			n += s.eng.PendingSessions()
		}
	}
	return n
}

// wakeAll pins every duty-cycled radio awake for the rest of the run. The
// adversary phase calls it first: its ledger holds object counters to exact
// injected deltas, and a target sleeping through a forged frame would
// falsify the accounting rather than prove anything about the defense.
func (f *fleet) wakeAll() {
	for _, c := range f.cells {
		for _, s := range c.sleepy {
			s.wake()
		}
	}
}

// close tears down every transport; engine loops exit with their mailboxes.
func (f *fleet) close() {
	for _, c := range f.cells {
		if c.mesh != nil {
			c.mesh.Close()
		}
		for _, ep := range c.udps {
			ep.Close()
		}
	}
}
