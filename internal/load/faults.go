package load

import (
	"math/rand"
	"sync"
	"time"

	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/transport"
)

// faultEndpoint injects faults at the transport seam, reusing the
// netsim.FaultModel knobs over real concurrent transports. Unlike the
// simulator — which draws loss independently per receiver — the wrapper
// sits on the sender, so each knob is drawn once per outgoing frame:
// a lost broadcast is lost for every receiver. That is the coarser model,
// but it needs no knowledge of the peer set and it strictly stresses the
// retry machinery harder, which is the point of a fault run.
//
// Duplication re-sends a private copy of the frame, and ReorderJitter
// delays delivery via a wall-clock timer firing Send/Broadcast from a
// timer goroutine — legal on Mesh and UDP endpoints, whose senders are
// thread-safe (and a no-op after Close, which both tolerate).
type faultEndpoint struct {
	inner transport.Endpoint
	model netsim.FaultModel

	mu  sync.Mutex
	rng *rand.Rand

	lost, corrupted, duplicated *obs.Counter
}

// WrapFaults returns ep wrapped in the fault model m (ep unchanged if m is
// inactive). seed fixes the draw sequence for this endpoint; reg, when
// non-nil, counts injected faults under the netsim fault families.
func WrapFaults(ep transport.Endpoint, m netsim.FaultModel, seed int64, reg *obs.Registry) transport.Endpoint {
	if !m.Active() {
		return ep
	}
	f := &faultEndpoint{inner: ep, model: m, rng: rand.New(rand.NewSource(seed))}
	if reg != nil {
		f.lost = reg.Counter(obs.MNetFaultLost, "frames dropped by injected loss")
		f.corrupted = reg.Counter(obs.MNetFaultCorrupted, "frames corrupted in flight")
		f.duplicated = reg.Counter(obs.MNetFaultDuplicated, "frames delivered twice")
	}
	return f
}

// draw rolls every knob once under the lock; the rng is shared between the
// engine loop and jitter timer goroutines only through this method.
func (f *faultEndpoint) draw() (lose, corrupt, dup bool, delay time.Duration, flip int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.model
	lose = m.Loss > 0 && f.rng.Float64() < m.Loss
	corrupt = m.Corrupt > 0 && f.rng.Float64() < m.Corrupt
	dup = m.Duplicate > 0 && f.rng.Float64() < m.Duplicate
	if m.ReorderJitter > 0 {
		delay = time.Duration(f.rng.Int63n(int64(m.ReorderJitter)))
	}
	flip = f.rng.Int()
	return
}

// transmit applies one frame's fault draws to the given delivery function.
func (f *faultEndpoint) transmit(payload []byte, deliver func([]byte)) {
	lose, corrupt, dup, delay, flip := f.draw()
	if lose {
		if f.lost != nil {
			f.lost.Inc()
		}
		return
	}
	out := payload
	if corrupt && len(payload) > 0 {
		// Flip one byte on a private copy; receivers must reject the frame
		// via decode or MAC/signature failure, never crash.
		out = append([]byte(nil), payload...)
		out[flip%len(out)] ^= 0xFF
		if f.corrupted != nil {
			f.corrupted.Inc()
		}
	}
	copies := 1
	if dup {
		copies = 2
		if f.duplicated != nil {
			f.duplicated.Inc()
		}
	}
	for i := 0; i < copies; i++ {
		frame := out
		if delay > 0 || copies > 1 {
			// The engine may reuse its buffer once Send returns; anything
			// delivered asynchronously needs its own copy.
			frame = append([]byte(nil), out...)
		}
		if delay > 0 {
			time.AfterFunc(delay, func() { deliver(frame) })
		} else {
			deliver(frame)
		}
	}
}

func (f *faultEndpoint) Send(to transport.Addr, payload []byte) {
	f.transmit(payload, func(p []byte) { f.inner.Send(to, p) })
}

func (f *faultEndpoint) Broadcast(payload []byte, ttl int) {
	f.transmit(payload, func(p []byte) { f.inner.Broadcast(p, ttl) })
}

func (f *faultEndpoint) Addr() transport.Addr               { return f.inner.Addr() }
func (f *faultEndpoint) Now() time.Duration                 { return f.inner.Now() }
func (f *faultEndpoint) After(d time.Duration, fn func())   { f.inner.After(d, fn) }
func (f *faultEndpoint) Compute(c time.Duration, fn func()) { f.inner.Compute(c, fn) }
func (f *faultEndpoint) Do(fn func())                       { f.inner.Do(fn) }
func (f *faultEndpoint) Bind(h transport.Handler)           { f.inner.Bind(h) }
func (f *faultEndpoint) Close() error                       { return f.inner.Close() }
