package load

import (
	"sync/atomic"
	"time"

	"argus/internal/obs"
	"argus/internal/transport"
)

// sleepyEndpoint models a duty-cycled IoT radio: the device listens only
// during the first awake window of every period and is deaf otherwise, so
// broadcasts that land in the sleep window are silently missed and must be
// recovered by the subject's retransmission schedule. Gating happens on the
// inbound path only — an object engine transmits purely in reaction to
// inbound frames (RES1/RES2 answers, cached resends), so a device that heard
// nothing has nothing to say, and outbound needs no gate.
//
// The phase offset staggers the fleet so sleepy devices don't sleep in
// lockstep; wake() pins the radio on for good (used by the adversary phase,
// whose exact injected-vs-rejected accounting cannot tolerate a target that
// slept through a forged frame).
type sleepyEndpoint struct {
	inner  transport.Endpoint
	period time.Duration
	awake  time.Duration
	start  time.Duration // inner.Now() at creation, minus the phase offset
	forced atomic.Bool   // stay-awake override
	drops  *obs.Counter
}

// wrapSleepy returns ep duty-cycled at (period, awake) with the given phase
// offset, counting missed frames under obs.MLoadSleepyDrops.
func wrapSleepy(ep transport.Endpoint, period, awake, phase time.Duration, reg *obs.Registry) *sleepyEndpoint {
	return &sleepyEndpoint{
		inner:  ep,
		period: period,
		awake:  awake,
		start:  ep.Now() - phase,
		drops: reg.Counter(obs.MLoadSleepyDrops,
			"inbound frames missed by duty-cycled (sleepy) objects"),
	}
}

// wake pins the radio awake for the rest of the run.
func (s *sleepyEndpoint) wake() { s.forced.Store(true) }

func (s *sleepyEndpoint) asleep() bool {
	if s.forced.Load() {
		return false
	}
	return (s.inner.Now()-s.start)%s.period >= s.awake
}

func (s *sleepyEndpoint) Bind(h transport.Handler) {
	s.inner.Bind(transport.HandlerFunc(func(from transport.Addr, payload []byte) {
		if s.asleep() {
			s.drops.Inc()
			return
		}
		h.Handle(from, payload)
	}))
}

func (s *sleepyEndpoint) Send(to transport.Addr, payload []byte) { s.inner.Send(to, payload) }
func (s *sleepyEndpoint) Broadcast(payload []byte, ttl int)      { s.inner.Broadcast(payload, ttl) }
func (s *sleepyEndpoint) Addr() transport.Addr                   { return s.inner.Addr() }
func (s *sleepyEndpoint) Now() time.Duration                     { return s.inner.Now() }
func (s *sleepyEndpoint) After(d time.Duration, fn func())       { s.inner.After(d, fn) }
func (s *sleepyEndpoint) Compute(c time.Duration, fn func())     { s.inner.Compute(c, fn) }
func (s *sleepyEndpoint) Do(fn func())                           { s.inner.Do(fn) }
func (s *sleepyEndpoint) Close() error                           { return s.inner.Close() }
