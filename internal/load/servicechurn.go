package load

// The service-churn benchmark closes the loop between §VIII's closed-form
// updating overhead (internal/scale, Table I) and a live multi-tenant
// backend: it drives every Service churn operation against a real
// backendsvc tenant — over the versioned /v1 HTTP API or in-process — and
// checks that the observed number of affected ground entities matches
// scale.Of(SchemeArgus, params) exactly, while measuring the wire latency of
// each durable (WAL-fsynced) operation. `argus-load -service-churn` runs it
// and commits the result as BENCH_8.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/backendclient"
	"argus/internal/backendsvc"
	"argus/internal/cert"
	"argus/internal/scale"
	"argus/internal/suite"
)

// ServiceChurnConfig sizes the live enterprise and the measurement.
type ServiceChurnConfig struct {
	// N is the number of objects the measured subjects can access
	// (scale.Params.N); Beta the object-category size behind the policy
	// ops; Gamma the secret-group size.
	N, Beta, Gamma int
	// Ops is how many times each operation repeats for the latency
	// percentiles.
	Ops int
	// Shards is the tenant's worker-shard count (0 = serial).
	Shards int
	// HTTP routes every churn call through a real TCP listener and
	// internal/backendclient; false keeps it in-process (the same Service
	// interface, zero wire) — the pair isolates the HTTP+WAL cost.
	HTTP bool
	// Logf receives progress lines (nil = silent).
	Logf func(string, ...any)
}

// DefaultServiceChurnConfig is CI-sized: a few seconds end to end.
func DefaultServiceChurnConfig() ServiceChurnConfig {
	return ServiceChurnConfig{N: 40, Beta: 15, Gamma: 6, Ops: 5, HTTP: true}
}

// ServiceChurnOp is one operation's comparison row.
type ServiceChurnOp struct {
	Name string `json:"name"`
	// Measured is the observed updating overhead (affected ground entities,
	// plus the one backend contact for the add operations, matching the
	// Table I accounting).
	Measured   int  `json:"measured"`
	ClosedForm int  `json:"closed_form"`
	Match      bool `json:"match"`
	// Latency of the live call, over Ops repetitions.
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
	MaxMicros float64 `json:"max_micros"`
}

// ServiceChurnReport is the BENCH_8 artifact.
type ServiceChurnReport struct {
	Transport string            `json:"transport"` // "http" or "local"
	Shards    int               `json:"shards"`
	Params    scale.Params      `json:"params"`
	Ops       []ServiceChurnOp  `json:"ops"`
	Match     bool              `json:"match"` // every row matched the closed form
	Advantage map[string]string `json:"advantage"`
}

// WriteJSON writes the indented report.
func (r *ServiceChurnReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func quantile(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Microsecond)
}

// measureOp runs an operation Ops times. prep does per-repetition setup
// outside the timed window and returns the churn call to measure; the
// overhead must be identical across repetitions (each is constructed to cost
// the same) or the run is rejected as mis-built.
func measureOp(name string, reps int, prep func(rep int) (func() (int, error), error)) (ServiceChurnOp, error) {
	var (
		lats     []time.Duration
		overhead int
	)
	for i := 0; i < reps; i++ {
		call, err := prep(i)
		if err != nil {
			return ServiceChurnOp{}, fmt.Errorf("%s rep %d setup: %w", name, i, err)
		}
		start := time.Now()
		n, err := call()
		if err != nil {
			return ServiceChurnOp{}, fmt.Errorf("%s rep %d: %w", name, i, err)
		}
		lats = append(lats, time.Since(start))
		if i == 0 {
			overhead = n
		} else if n != overhead {
			return ServiceChurnOp{}, fmt.Errorf("%s: overhead drifted across reps: %d then %d", name, overhead, n)
		}
	}
	return ServiceChurnOp{
		Name:      name,
		Measured:  overhead,
		P50Micros: quantile(lats, 0.50),
		P99Micros: quantile(lats, 0.99),
		MaxMicros: quantile(lats, 1.0),
	}, nil
}

// RunServiceChurn builds a live tenant sized to cfg, churns it through the
// Service interface, and reports measured-vs-closed-form updating overheads.
func RunServiceChurn(cfg ServiceChurnConfig) (*ServiceChurnReport, error) {
	if cfg.N < 1 || cfg.Beta < 1 || cfg.Gamma < 2 || cfg.Ops < 1 {
		return nil, fmt.Errorf("load: service churn needs N≥1, Beta≥1, Gamma≥2, Ops≥1: %+v", cfg)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dir, err := os.MkdirTemp("", "argus-servicechurn-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := backendsvc.OpenStore(dir, nil)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	tn, err := store.Create("bench", suite.S128, cfg.Shards)
	if err != nil {
		return nil, err
	}

	var svc backend.Service = tn
	transport := "local"
	if cfg.HTTP {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: backendsvc.NewServer(store, "bench-admin", nil).Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		svc = backendclient.New("http://"+ln.Addr().String(), "bench", tn.AuthKey())
		transport = "http"
	}
	ctx := context.Background()

	// The enterprise under test. One staff→device policy makes every staff
	// subject's accessible set exactly the N device objects; the Beta sensor
	// objects back the policy ops; the fellows live in a category no policy
	// touches, so revoking one isolates the γ−1 group re-key.
	logf("service-churn: provisioning N=%d devices, β=%d sensors, %d groups of γ=%d over %s",
		cfg.N, cfg.Beta, cfg.Ops, cfg.Gamma, transport)
	if _, _, err := svc.AddPolicy(ctx, attr.MustParse("position=='staff'"),
		attr.MustParse("type=='device'"), []string{"use"}); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.N; i++ {
		if _, _, err := svc.RegisterObject(ctx, fmt.Sprintf("dev-%d", i), backend.L2,
			attr.MustSet("type=device"), []string{"use"}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Beta; i++ {
		if _, _, err := svc.RegisterObject(ctx, fmt.Sprintf("sensor-%d", i), backend.L2,
			attr.MustSet("type=sensor"), []string{"read"}); err != nil {
			return nil, err
		}
	}

	params := scale.Params{N: cfg.N, Alpha: cfg.Ops, Beta: cfg.Beta, Gamma: cfg.Gamma, XiO: 1.5, XiS: 1.5}
	want := scale.Of(scale.SchemeArgus, params)
	rep := &ServiceChurnReport{Transport: transport, Shards: cfg.Shards, Params: params, Match: true}

	addRow := func(op ServiceChurnOp, closed int, err error) error {
		if err != nil {
			return err
		}
		op.ClosedForm = closed
		op.Match = op.Measured == closed
		if !op.Match {
			rep.Match = false
		}
		rep.Ops = append(rep.Ops, op)
		logf("service-churn: %-18s measured=%d closed-form=%d p50=%.0fµs p99=%.0fµs",
			op.Name, op.Measured, op.ClosedForm, op.P50Micros, op.P99Micros)
		return nil
	}

	// Add a subject: 1 backend contact, zero ground entities (Table I).
	row, err := measureOp("add_subject", cfg.Ops, func(i int) (func() (int, error), error) {
		return func() (int, error) {
			_, r, err := svc.RegisterSubject(ctx, fmt.Sprintf("staff-%d", i), attr.MustSet("position=staff"))
			return 1 + r.Total(), err
		}, nil
	})
	if err := addRow(row, want.AddSubject, err); err != nil {
		return nil, err
	}

	// Remove a subject: the N accessible objects are notified to blacklist.
	row, err = measureOp("remove_subject", cfg.Ops, func(i int) (func() (int, error), error) {
		id, _, err := svc.RegisterSubject(ctx, fmt.Sprintf("victim-%d", i), attr.MustSet("position=staff"))
		if err != nil {
			return nil, err
		}
		return func() (int, error) {
			r, err := svc.RevokeSubject(ctx, id)
			return r.Total(), err
		}, nil
	})
	if err := addRow(row, want.RemoveSubject, err); err != nil {
		return nil, err
	}

	// Add an object: only the new object itself is provisioned — the report
	// already carries it, so no backend-contact correction here.
	row, err = measureOp("add_object", cfg.Ops, func(i int) (func() (int, error), error) {
		return func() (int, error) {
			_, r, err := svc.RegisterObject(ctx, fmt.Sprintf("iso-%d", i), backend.L2,
				attr.MustSet("type=isolated"), []string{"use"})
			return r.Total(), err
		}, nil
	})
	if err := addRow(row, want.AddObject, err); err != nil {
		return nil, err
	}

	// Add / remove a policy: the β objects of the governed category update
	// their ACL variants.
	pids := make([]uint64, 0, cfg.Ops)
	row, err = measureOp("add_policy", cfg.Ops, func(i int) (func() (int, error), error) {
		return func() (int, error) {
			pid, r, err := svc.AddPolicy(ctx, attr.MustParse("position=='auditor'"),
				attr.MustParse("type=='sensor'"), []string{"read"})
			pids = append(pids, pid)
			return r.Total(), err
		}, nil
	})
	if err := addRow(row, want.AddPolicy, err); err != nil {
		return nil, err
	}
	row, err = measureOp("remove_policy", cfg.Ops, func(i int) (func() (int, error), error) {
		return func() (int, error) {
			r, err := svc.RemovePolicy(ctx, pids[i])
			return r.Total(), err
		}, nil
	})
	if err := addRow(row, want.RemovePolicy, err); err != nil {
		return nil, err
	}

	// Remove a group member: γ−1 fellows re-keyed. One fresh group per rep
	// keeps every repetition at the same γ; the fellows match no policy, so
	// the measurement isolates the Level 3 re-key from object notifications.
	row, err = measureOp("remove_group_member", cfg.Ops, func(i int) (func() (int, error), error) {
		gid, err := svc.CreateGroup(ctx, fmt.Sprintf("g-%d", i))
		if err != nil {
			return nil, err
		}
		var victim cert.ID
		for k := 0; k < cfg.Gamma; k++ {
			id, _, err := svc.RegisterSubject(ctx, fmt.Sprintf("fellow-%d-%d", i, k),
				attr.MustSet("position=fellow"))
			if err != nil {
				return nil, err
			}
			if err := svc.AddSubjectToGroup(ctx, id, gid); err != nil {
				return nil, err
			}
			if k == 0 {
				victim = id
			}
		}
		return func() (int, error) {
			r, err := svc.RevokeSubject(ctx, victim)
			return r.Total(), err
		}, nil
	})
	if err := addRow(row, want.RemoveGroupMember, err); err != nil {
		return nil, err
	}

	rep.Advantage = map[string]string{
		"add_subject_vs_idacl":   fmt.Sprintf("%.0fx", scale.AddSubjectAdvantage(params)),
		"remove_subject_vs_abe":  fmt.Sprintf("%.1fx", scale.RemoveSubjectAdvantage(params)),
		"closed_form_parameters": fmt.Sprintf("N=%d β=%d γ=%d", cfg.N, cfg.Beta, cfg.Gamma),
	}
	return rep, nil
}
