package load

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/transport"

	"argus/internal/transport/transporttest"
)

// TestCISoak is the deterministic short soak CI runs under -race: the
// built-in ci-soak profile (96 subjects × 24 objects over Mesh, three waves
// with cold→warm verify-cache phases and revocation + live-add churn
// before the last wave). Everything the big profiles assert is asserted
// here at a size that finishes in seconds.
func TestCISoak(t *testing.T) {
	p := Profiles()["ci-soak"]
	p.Logf = t.Logf
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	if rep.Totals.Lost != 0 {
		t.Fatalf("lost completions: %d", rep.Totals.Lost)
	}
	if rep.Totals.Completed != rep.Totals.Armed {
		t.Fatalf("completed %d != armed %d", rep.Totals.Completed, rep.Totals.Armed)
	}
	if rep.Totals.Unexpected != 0 || rep.Totals.LevelMismatch != 0 {
		t.Fatalf("unexpected %d, level mismatches %d",
			rep.Totals.Unexpected, rep.Totals.LevelMismatch)
	}

	// Deterministic churn arithmetic: 25% of 8 subjects per cell revoked
	// and 25% added, in 12 cells.
	if rep.Fleet.Revoked != 24 || rep.Fleet.Added != 24 {
		t.Fatalf("churn: revoked %d added %d, want 24/24", rep.Fleet.Revoked, rep.Fleet.Added)
	}
	if got, want := rep.Counters["updates_applied"], int64(24*p.ObjectsPerCell); got != want {
		t.Fatalf("updates applied %d, want %d", got, want)
	}
	if rep.Counters["updates_rejected"] != 0 {
		t.Fatalf("updates rejected: %d", rep.Counters["updates_rejected"])
	}

	// Crash window: one of each cell's two objects rides the DLQ through the
	// churn (CrashFrac 0.5 × 12 cells), missing 2 revocations each; all 24
	// parked letters must redeliver with the queues back at depth zero.
	if rep.Fleet.Crashed != 12 {
		t.Fatalf("crashed objects: %d, want 12", rep.Fleet.Crashed)
	}
	if got := rep.Counters["update_undeliverable"]; got != 24 {
		t.Fatalf("undeliverable: %d, want 24", got)
	}
	if got := rep.Counters["update_redelivered"]; got != 24 {
		t.Fatalf("redelivered: %d, want 24", got)
	}
	if rep.Counters["dlq_depth"] != 0 || rep.Counters["dlq_evictions"] != 0 {
		t.Fatalf("DLQ residue: depth %d, evictions %d",
			rep.Counters["dlq_depth"], rep.Counters["dlq_evictions"])
	}
	if rep.RedeliveryLag == nil || rep.RedeliveryLag.Count != 24 {
		t.Fatalf("redelivery lag quantiles = %+v, want count 24", rep.RedeliveryLag)
	}

	// Wave shape: wave 0 arms 96 subjects × 2 objects; the last wave runs
	// with 24 revoked (each still finding the cell's single L1 object... or
	// none) and 24 fresh subjects.
	if len(rep.Waves) != 3 {
		t.Fatalf("waves: %d", len(rep.Waves))
	}
	if rep.Waves[0].Armed != int64(96*2) {
		t.Fatalf("wave 0 armed %d, want %d", rep.Waves[0].Armed, 96*2)
	}
	// Cold → warm: the first wave must miss, later waves must hit.
	if rep.Waves[0].VCacheMisses == 0 {
		t.Fatal("wave 0 saw no verify-cache misses (cold phase missing)")
	}
	if rep.Waves[1].VCacheHits == 0 {
		t.Fatal("wave 1 saw no verify-cache hits (warm phase missing)")
	}
	// A freshly added subject's first handshake is cold again.
	if rep.Waves[2].VCacheMisses == 0 {
		t.Fatal("post-churn wave saw no new cold handshakes")
	}

	// The expectation ledger and the engines' own telemetry must agree:
	// every completion the harness counted was recorded as a discovery
	// (late post-reap completions would add discoveries, but a lossless
	// run has none).
	if got := rep.Counters["discoveries"]; got != rep.Totals.Completed {
		t.Fatalf("telemetry cross-check: discoveries %d != completed %d", got, rep.Totals.Completed)
	}
	if rep.Counters["mailbox_drops"] != 0 {
		t.Fatalf("mailbox drops: %d", rep.Counters["mailbox_drops"])
	}
	if rep.Totals.LeakedSessions != 0 {
		t.Fatalf("leaked sessions: %d", rep.Totals.LeakedSessions)
	}
	if rep.Totals.PeakInflight < p.SLO.MinPeakConcurrent {
		t.Fatalf("peak inflight %d below profile floor %d",
			rep.Totals.PeakInflight, p.SLO.MinPeakConcurrent)
	}

	// The report must serialize.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}

// TestChurnDLQRedelivery is the acceptance-criteria churn scenario: a
// crash-windowed fraction of each cell's objects miss the revocation storm,
// their notifications park in the per-destination dead-letter queue, and on
// reattach the whole backlog redelivers exactly once and in order — proven
// end to end by exact applied counts, zero rejections (the agents reject any
// replay or reordering), queues back at depth zero, and a populated
// redelivery-lag histogram.
func TestChurnDLQRedelivery(t *testing.T) {
	p := Profile{
		Name:      "dlq-churn-test",
		Transport: TransportMesh,
		Cells:     4, SubjectsPerCell: 4, ObjectsPerCell: 3,
		Levels: []backend.Level{backend.L1, backend.L2, backend.L2},
		Waves:  2, ThinkTime: 10 * time.Millisecond,
		RevokeFrac: 0.5,  // 2 of 4 subjects per cell
		CrashFrac:  0.34, // 1 of 3 objects per cell
		Retry: core.RetryPolicy{
			Que1Retries: 3, Que2Retries: 3,
			Timeout: 100 * time.Millisecond, Backoff: 2, SessionTTL: time.Second,
		},
		Seed:         5,
		DrainTimeout: 30 * time.Second,
		SLO:          SLO{P99Ceiling: 8 * time.Second, MaxRetransmissions: -1},
		Logf:         t.Logf,
	}
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	if rep.Totals.Lost != 0 || rep.Totals.Completed != rep.Totals.Armed {
		t.Fatalf("run incomplete: %+v", rep.Totals)
	}

	// 2 revoked subjects × 3 objects × 4 cells = 24 notifications pushed;
	// the crashed object in each cell parks its 2.
	if rep.Fleet.Crashed != 4 {
		t.Fatalf("crashed: %d, want 4", rep.Fleet.Crashed)
	}
	const parked = 2 * 4
	if got := rep.Counters["update_undeliverable"]; got != parked {
		t.Fatalf("undeliverable: %d, want %d", got, parked)
	}
	if got := rep.Counters["update_redelivered"]; got != parked {
		t.Fatalf("redelivered: %d, want %d", got, parked)
	}
	if got := rep.Counters["updates_applied"]; got != 24 {
		t.Fatalf("applied: %d, want 24 (exactly once)", got)
	}
	if rep.Counters["updates_rejected"] != 0 {
		t.Fatalf("rejected: %d (replay or reorder reached an agent)", rep.Counters["updates_rejected"])
	}
	if rep.Counters["dlq_depth"] != 0 || rep.Counters["dlq_evictions"] != 0 {
		t.Fatalf("DLQ residue: depth %d, evictions %d",
			rep.Counters["dlq_depth"], rep.Counters["dlq_evictions"])
	}
	if rep.RedeliveryLag == nil || rep.RedeliveryLag.Count != parked {
		t.Fatalf("redelivery lag = %+v, want count %d", rep.RedeliveryLag, parked)
	}
	// Every delivered notification (live + redelivered) lands in the
	// agent-side propagation accounting via the distributor's SentAt.
	if got := rep.Counters["update_sent"]; got != 24 {
		t.Fatalf("sent: %d, want 24", got)
	}
}

// eventRecorder captures frames published by a run (the Publisher seam).
type eventRecorder struct {
	mu    sync.Mutex
	kinds []string
	snaps int
}

func (e *eventRecorder) PublishSnapshot() {
	e.mu.Lock()
	e.snaps++
	e.mu.Unlock()
}

func (e *eventRecorder) PublishData(kind string, v any) error {
	e.mu.Lock()
	e.kinds = append(e.kinds, kind)
	e.mu.Unlock()
	return nil
}

func (e *eventRecorder) count(kind string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, k := range e.kinds {
		if k == kind {
			n++
		}
	}
	return n
}

// TestRunLiveObservability: a caller-supplied registry receives the run's
// telemetry, the tracer receives discovery spans, and the event hook sees
// wave/churn/report frames with snapshots at each boundary.
func TestRunLiveObservability(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	rec := &eventRecorder{}
	p := Profile{
		Name:      "live-obs-test",
		Transport: TransportMesh,
		Cells:     2, SubjectsPerCell: 2, ObjectsPerCell: 2,
		Levels: []backend.Level{backend.L1, backend.L2},
		Waves:  2, ThinkTime: 10 * time.Millisecond,
		RevokeFrac: 0.5,
		Retry: core.RetryPolicy{
			Que1Retries: 3, Que2Retries: 3,
			Timeout: 100 * time.Millisecond, Backoff: 2, SessionTTL: time.Second,
		},
		Seed:         3,
		DrainTimeout: 30 * time.Second,
		SLO:          SLO{P99Ceiling: 8 * time.Second, MaxRetransmissions: -1},
		Registry:     reg,
		Tracer:       tr,
		Events:       rec,
		Logf:         t.Logf,
	}
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	// The caller's registry is the run's registry.
	if got := sumFamily(reg.Snapshot(), obs.MLoadCompletions); got != rep.Totals.Completed {
		t.Fatalf("caller registry completions %d != report %d", got, rep.Totals.Completed)
	}
	if tr.Len() == 0 {
		t.Fatal("caller tracer recorded no discovery spans")
	}
	if got := rec.count("wave"); got != p.Waves {
		t.Fatalf("wave frames: %d, want %d", got, p.Waves)
	}
	if rec.count("churn") != 1 || rec.count("report") != 1 {
		t.Fatalf("frames %v, want one churn and one report", rec.kinds)
	}
	if rec.snaps < p.Waves+2 { // per wave + churn + final
		t.Fatalf("snapshot frames: %d, want >= %d", rec.snaps, p.Waves+2)
	}

	// SnapshotReport over the live registry agrees with the gates the final
	// report is held to.
	sr := SnapshotReport(reg.Snapshot())
	if sr.Totals.Completed != rep.Totals.Completed || sr.Totals.Lost != 0 {
		t.Fatalf("SnapshotReport totals %+v disagree with report %+v", sr.Totals, rep.Totals)
	}
	for _, g := range p.SLO.StreamGates(sr, nil, 0) {
		if g.Violated {
			t.Fatalf("streaming gate %s violated on a passing run: %+v", g.Name, g)
		}
	}
}

// TestStreamGates checks the burn-rate arithmetic over synthetic reports.
func TestStreamGates(t *testing.T) {
	slo := SLO{MaxLost: 4, P99Ceiling: time.Second}
	prev := &Report{Latency: map[string]Quantiles{}, Counters: map[string]int64{}}
	cur := &Report{
		Totals:   Totals{Lost: 2},
		Latency:  map[string]Quantiles{"2": {Count: 10, P50: 0.1, P99: 1.5}},
		Counters: map[string]int64{"dlq_depth": 3},
	}
	gates := slo.StreamGates(cur, prev, time.Minute)
	byName := map[string]GateStatus{}
	for _, g := range gates {
		byName[g.Name] = g
	}
	lost := byName["lost"]
	if lost.Violated || lost.BudgetUsed != 0.5 {
		t.Fatalf("lost gate = %+v, want 50%% budget, no violation", lost)
	}
	// 2 of 4 budget in one minute = 30 budgets/hour.
	if lost.BurnPerHour < 29.9 || lost.BurnPerHour > 30.1 {
		t.Fatalf("lost burn = %v, want 30/h", lost.BurnPerHour)
	}
	// Strict gate (MaxDLQDepth zero value): any depth is a violation.
	depth := byName["dlq_depth"]
	if !depth.Violated || depth.BudgetUsed != 1 {
		t.Fatalf("dlq_depth gate = %+v, want strict violation", depth)
	}
	p99 := byName["L2_p99"]
	if !p99.Violated || p99.Value != 1.5 {
		t.Fatalf("p99 gate = %+v, want ceiling violation at 1.5s", p99)
	}
	if _, ok := byName["L2_p50"]; ok {
		t.Fatal("p50 gate emitted with no P50Ceiling configured")
	}
}

// TestUDPSoakSmall runs a shrunken udp-smoke over real loopback sockets.
func TestUDPSoakSmall(t *testing.T) {
	p := Profiles()["udp-smoke"]
	p.Cells, p.SubjectsPerCell, p.ObjectsPerCell = 2, 3, 2
	p.SLO.MinPeakConcurrent = 6
	p.Logf = t.Logf
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	if rep.Totals.Lost != 0 || rep.Totals.Completed != rep.Totals.Armed {
		t.Fatalf("udp run incomplete: %+v", rep.Totals)
	}
	if rep.Transport != "udp" {
		t.Fatalf("transport %q", rep.Transport)
	}
}

// TestOpenLoopSmall drives a small Poisson arrival schedule and checks the
// open-loop invariants: every armed round completes, skipped arrivals are
// counted rather than queued.
func TestOpenLoopSmall(t *testing.T) {
	p := Profile{
		Name:      "open-loop-test",
		Transport: TransportMesh,
		Cells:     2, SubjectsPerCell: 4, ObjectsPerCell: 2,
		Levels: []backend.Level{backend.L1, backend.L2},
		Rate:   200, Duration: 500 * time.Millisecond,
		Retry: core.RetryPolicy{
			Que1Retries: 3, Que2Retries: 3,
			Timeout: 100 * time.Millisecond, Backoff: 2, SessionTTL: time.Second,
		},
		Seed: 42,
		SLO:  SLO{P99Ceiling: 8 * time.Second, MaxRetransmissions: -1},
		Logf: t.Logf,
	}
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	if rep.Totals.Completed == 0 {
		t.Fatal("open loop completed nothing")
	}
	if rep.Totals.Lost != 0 {
		t.Fatalf("lost: %d", rep.Totals.Lost)
	}
	if rep.Totals.Completed != rep.Totals.Armed {
		t.Fatalf("completed %d != armed %d", rep.Totals.Completed, rep.Totals.Armed)
	}
}

// TestFaultySoakSmall injects loss, duplication and jitter on a small fleet
// and checks that retransmission keeps the run essentially complete. The
// loss budget makes the test deterministic-in-outcome despite random draws:
// with 6 QUE1 attempts and 6 QUE2 attempts per session the chance of even
// 4 losses among 64 sessions is negligible.
func TestFaultySoakSmall(t *testing.T) {
	p := Profile{
		Name:      "faulty-test",
		Transport: TransportMesh,
		Cells:     4, SubjectsPerCell: 4, ObjectsPerCell: 2,
		Levels: []backend.Level{backend.L2, backend.L3},
		Fellow: true,
		Waves:  2, ThinkTime: 50 * time.Millisecond,
		Faults: netsim.FaultModel{
			Loss: 0.15, Duplicate: 0.10, ReorderJitter: 5 * time.Millisecond,
		},
		FaultSeed: 99,
		Retry: core.RetryPolicy{
			Que1Retries: 5, Que2Retries: 5,
			Timeout: 50 * time.Millisecond, Backoff: 2, SessionTTL: 2 * time.Second,
		},
		Seed:         7,
		DrainTimeout: 20 * time.Second,
		SLO: SLO{
			MaxLost:                3,
			MaxExpiredExtra:        3,
			P99Ceiling:             10 * time.Second,
			MaxRetransmissions:     -1,
			MaxWarmRetransmissions: -1,
		},
		Logf: t.Logf,
	}
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	if rep.Counters["faults_lost"] == 0 {
		t.Fatal("fault injection never dropped a frame — wrapper not wired?")
	}
	if rep.Counters["retransmissions"] == 0 {
		t.Fatal("no retransmissions under 15% loss — retry not wired?")
	}
	if rep.Totals.Completed < rep.Totals.Armed-3 {
		t.Fatalf("completed %d of %d armed", rep.Totals.Completed, rep.Totals.Armed)
	}
}

// recordingEndpoint is a stub transport capturing deliveries for the fault
// wrapper unit tests.
type recordingEndpoint struct {
	mu     sync.Mutex
	sent   [][]byte
	bcast  [][]byte
	closed atomic.Bool
}

func (r *recordingEndpoint) Addr() transport.Addr { return "stub" }
func (r *recordingEndpoint) Now() time.Duration   { return 0 }
func (r *recordingEndpoint) Send(to transport.Addr, p []byte) {
	r.mu.Lock()
	r.sent = append(r.sent, append([]byte(nil), p...))
	r.mu.Unlock()
}
func (r *recordingEndpoint) Broadcast(p []byte, ttl int) {
	r.mu.Lock()
	r.bcast = append(r.bcast, append([]byte(nil), p...))
	r.mu.Unlock()
}
func (r *recordingEndpoint) After(d time.Duration, fn func())   { time.AfterFunc(d, fn) }
func (r *recordingEndpoint) Compute(c time.Duration, fn func()) { fn() }
func (r *recordingEndpoint) Do(fn func())                       { fn() }
func (r *recordingEndpoint) Bind(h transport.Handler)           {}
func (r *recordingEndpoint) Close() error                       { r.closed.Store(true); return nil }

func (r *recordingEndpoint) counts() (sent, bcast int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sent), len(r.bcast)
}

func TestWrapFaultsInactiveIsIdentity(t *testing.T) {
	ep := &recordingEndpoint{}
	if got := WrapFaults(ep, netsim.FaultModel{}, 1, nil); got != transport.Endpoint(ep) {
		t.Fatal("inactive model must return the endpoint unchanged")
	}
}

func TestWrapFaultsLossDropsEverything(t *testing.T) {
	ep := &recordingEndpoint{}
	f := WrapFaults(ep, netsim.FaultModel{Loss: 1}, 1, nil)
	for i := 0; i < 50; i++ {
		f.Send("x", []byte{1})
		f.Broadcast([]byte{2}, 1)
	}
	if s, b := ep.counts(); s != 0 || b != 0 {
		t.Fatalf("total loss delivered %d sends, %d broadcasts", s, b)
	}
}

func TestWrapFaultsDuplicateDoubles(t *testing.T) {
	ep := &recordingEndpoint{}
	f := WrapFaults(ep, netsim.FaultModel{Duplicate: 1}, 1, nil)
	for i := 0; i < 10; i++ {
		f.Send("x", []byte{1})
	}
	if s, _ := ep.counts(); s != 20 {
		t.Fatalf("certain duplication delivered %d sends, want 20", s)
	}
}

func TestWrapFaultsCorruptFlipsAByte(t *testing.T) {
	ep := &recordingEndpoint{}
	f := WrapFaults(ep, netsim.FaultModel{Corrupt: 1}, 1, nil)
	orig := []byte{10, 20, 30, 40}
	f.Send("x", append([]byte(nil), orig...))
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.sent) != 1 {
		t.Fatalf("deliveries: %d", len(ep.sent))
	}
	if bytes.Equal(ep.sent[0], orig) {
		t.Fatal("certain corruption delivered the frame unmodified")
	}
}

func TestWrapFaultsJitterDelaysDelivery(t *testing.T) {
	ep := &recordingEndpoint{}
	f := WrapFaults(ep, netsim.FaultModel{ReorderJitter: 30 * time.Millisecond}, 1, nil)
	f.Send("x", []byte{1})
	transporttest.WaitUntil(t, 5*time.Second, func() bool {
		s, _ := ep.counts()
		return s == 1
	}, "jittered frame delivery")
}

func TestSLOCheck(t *testing.T) {
	base := func() *Report {
		return &Report{
			Totals: Totals{
				Armed: 100, Completed: 100,
				PeakInflight: 100,
			},
			Latency: map[string]Quantiles{
				"2": {Count: 100, P50: 0.010, P99: 0.050},
			},
			Counters: map[string]int64{},
		}
	}
	cases := []struct {
		name    string
		slo     SLO
		mutate  func(*Report)
		wantOK  bool
		wantHit string
	}{
		{name: "clean run passes strict zero-value SLO", slo: SLO{}, mutate: func(*Report) {}, wantOK: true},
		{name: "lost", slo: SLO{}, mutate: func(r *Report) { r.Totals.Lost = 1 }, wantHit: "lost"},
		{name: "lost within budget", slo: SLO{MaxLost: 2}, mutate: func(r *Report) { r.Totals.Lost = 2 }, wantOK: true},
		{name: "lost disabled", slo: SLO{MaxLost: -1}, mutate: func(r *Report) { r.Totals.Lost = 999 }, wantOK: true},
		{name: "unexpected", slo: SLO{}, mutate: func(r *Report) { r.Totals.Unexpected = 1 }, wantHit: "unexpected"},
		{name: "level mismatch", slo: SLO{}, mutate: func(r *Report) { r.Totals.LevelMismatch = 1 }, wantHit: "level"},
		{name: "peak floor", slo: SLO{MinPeakConcurrent: 101}, mutate: func(*Report) {}, wantHit: "peak"},
		{name: "mailbox drops", slo: SLO{}, mutate: func(r *Report) { r.Counters["mailbox_drops"] = 1 }, wantHit: "mailbox"},
		{name: "malformed", slo: SLO{}, mutate: func(r *Report) { r.Counters["malformed_drops"] = 3 }, wantHit: "malformed"},
		{name: "retransmissions strict", slo: SLO{}, mutate: func(r *Report) { r.Counters["retransmissions"] = 1 }, wantHit: "retransmissions"},
		{name: "retransmissions within budget", slo: SLO{MaxRetransmissions: 50}, mutate: func(r *Report) { r.Counters["retransmissions"] = 50 }, wantOK: true},
		{name: "retransmissions disabled", slo: SLO{MaxRetransmissions: -1}, mutate: func(r *Report) { r.Counters["retransmissions"] = 99999 }, wantOK: true},
		{name: "warm-wave retransmissions strict", slo: SLO{}, mutate: func(r *Report) {
			r.Waves = append(r.Waves, WaveStats{Index: 0}, WaveStats{Index: 1, Retransmissions: 1})
		}, wantHit: "warm-wave"},
		{name: "cold-wave retransmissions exempt from warm gate", slo: SLO{MaxRetransmissions: 10}, mutate: func(r *Report) {
			r.Counters["retransmissions"] = 7
			r.Waves = append(r.Waves, WaveStats{Index: 0, Retransmissions: 7}, WaveStats{Index: 1})
		}, wantOK: true},
		{name: "warm-wave gate disabled", slo: SLO{MaxWarmRetransmissions: -1, MaxRetransmissions: -1}, mutate: func(r *Report) {
			r.Waves = append(r.Waves, WaveStats{Index: 1, Retransmissions: 500})
		}, wantOK: true},
		{name: "unexplained expiries", slo: SLO{}, mutate: func(r *Report) { r.Counters["subject_sessions_expired"] = 2 }, wantHit: "expir"},
		{name: "predicted expiries pass", slo: SLO{}, mutate: func(r *Report) {
			r.Counters["subject_sessions_expired"] = 2
			r.PredictedSubjectExpiries = 2
		}, wantOK: true},
		{name: "leak", slo: SLO{}, mutate: func(r *Report) { r.Totals.LeakedSessions = 1 }, wantHit: "leak"},
		{name: "p50 ceiling", slo: SLO{P50Ceiling: 5 * time.Millisecond}, mutate: func(*Report) {}, wantHit: "p50"},
		{name: "p99 ceiling", slo: SLO{P99Ceiling: 20 * time.Millisecond}, mutate: func(*Report) {}, wantHit: "p99"},
		{name: "slow sessions", slo: SLO{}, mutate: func(r *Report) {
			q := r.Latency["2"]
			q.Overflow = 1
			r.Latency["2"] = q
		}, wantHit: "histogram range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := base()
			tc.mutate(rep)
			res := tc.slo.Check(rep)
			if tc.wantOK {
				if !res.Pass {
					t.Fatalf("want pass, got violations %v", res.Violations)
				}
				return
			}
			if res.Pass {
				t.Fatalf("want violation containing %q, got pass", tc.wantHit)
			}
			found := false
			for _, v := range res.Violations {
				if bytes.Contains([]byte(v), []byte(tc.wantHit)) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v missing %q", res.Violations, tc.wantHit)
			}
		})
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"unknown transport", func(p *Profile) { p.Transport = "carrier-pigeon" }},
		{"session-table pressure", func(p *Profile) { p.SubjectsPerCell = 65 }},
		{"open-loop churn", func(p *Profile) { p.Rate = 10; p.Duration = time.Second; p.RevokeFrac = 0.5 }},
		{"crash without churn", func(p *Profile) { p.RevokeFrac = 0; p.AddFrac = 0; p.CrashFrac = 0.5 }},
		{"roam with churn", func(p *Profile) { p.RoamFrac = 0.5 }},
		{"roam single cell", func(p *Profile) {
			p.RevokeFrac, p.AddFrac, p.CrashFrac = 0, 0, 0
			p.RoamFrac = 0.5
			p.Cells = 1
		}},
		{"sleepy without retransmission", func(p *Profile) {
			p.RevokeFrac, p.AddFrac, p.CrashFrac = 0, 0, 0
			p.SleepyFrac = 0.5
			p.Retry = core.RetryPolicy{Timeout: 100 * time.Millisecond}
		}},
		{"sleepy uncovered schedule", func(p *Profile) {
			p.RevokeFrac, p.AddFrac, p.CrashFrac = 0, 0, 0
			p.SleepyFrac = 0.5
			p.SleepPeriod = 10 * time.Second
			p.SleepAwake = 100 * time.Millisecond
		}},
		{"replay persona with faults", func(p *Profile) {
			p.RevokeFrac, p.AddFrac, p.CrashFrac = 0, 0, 0
			p.ReplayTargets = 1
			p.Faults = netsim.FaultModel{Loss: 0.5}
		}},
		{"replay targets exceed secure objects", func(p *Profile) {
			p.RevokeFrac, p.AddFrac, p.CrashFrac = 0, 0, 0
			p.ReplayTargets = 2 // ci-soak cells hold 2 objects, at most 1 secure in cell 0
		}},
		{"observer with fellow", func(p *Profile) { p.Observer = true }},
		{"broken scoping with fellow", func(p *Profile) { p.BreakScoping = true }},
		{"observer without L3 population", func(p *Profile) {
			p.Fellow = false
			p.Observer = true
			p.Levels = []backend.Level{backend.L2}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Profiles()["ci-soak"]
			tc.mut(&p)
			if _, err := Run(p); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestProfilesRegistryShapes(t *testing.T) {
	ps := Profiles()
	for _, name := range []string{"ci-soak", "standard", "udp-smoke", "open-loop", "soak-faulty", "adversary-soak", "covert-observer"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing built-in profile %q", name)
		}
		pd := p.withDefaults()
		if err := pd.validate(); err != nil {
			t.Fatalf("profile %q invalid: %v", name, err)
		}
	}
	// The headline profile must actually be able to reach its advertised
	// concurrency: armed sessions per wave ≥ the SLO floor.
	std := ps["standard"]
	if got := int64(std.Subjects() * std.ObjectsPerCell); got < std.SLO.MinPeakConcurrent {
		t.Fatalf("standard profile arms %d < floor %d", got, std.SLO.MinPeakConcurrent)
	}
	if std.Subjects() < 10000 || std.Objects() < 1000 {
		t.Fatalf("standard fleet too small: %d subjects, %d objects", std.Subjects(), std.Objects())
	}
}
