package load

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/transport"
)

// TestCISoak is the deterministic short soak CI runs under -race: the
// built-in ci-soak profile (96 subjects × 24 objects over Mesh, three waves
// with cold→warm verify-cache phases and revocation + live-add churn
// before the last wave). Everything the big profiles assert is asserted
// here at a size that finishes in seconds.
func TestCISoak(t *testing.T) {
	p := Profiles()["ci-soak"]
	p.Logf = t.Logf
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	if rep.Totals.Lost != 0 {
		t.Fatalf("lost completions: %d", rep.Totals.Lost)
	}
	if rep.Totals.Completed != rep.Totals.Armed {
		t.Fatalf("completed %d != armed %d", rep.Totals.Completed, rep.Totals.Armed)
	}
	if rep.Totals.Unexpected != 0 || rep.Totals.LevelMismatch != 0 {
		t.Fatalf("unexpected %d, level mismatches %d",
			rep.Totals.Unexpected, rep.Totals.LevelMismatch)
	}

	// Deterministic churn arithmetic: 25% of 8 subjects per cell revoked
	// and 25% added, in 12 cells.
	if rep.Fleet.Revoked != 24 || rep.Fleet.Added != 24 {
		t.Fatalf("churn: revoked %d added %d, want 24/24", rep.Fleet.Revoked, rep.Fleet.Added)
	}
	if got, want := rep.Counters["updates_applied"], int64(24*p.ObjectsPerCell); got != want {
		t.Fatalf("updates applied %d, want %d", got, want)
	}
	if rep.Counters["updates_rejected"] != 0 {
		t.Fatalf("updates rejected: %d", rep.Counters["updates_rejected"])
	}

	// Wave shape: wave 0 arms 96 subjects × 2 objects; the last wave runs
	// with 24 revoked (each still finding the cell's single L1 object... or
	// none) and 24 fresh subjects.
	if len(rep.Waves) != 3 {
		t.Fatalf("waves: %d", len(rep.Waves))
	}
	if rep.Waves[0].Armed != int64(96*2) {
		t.Fatalf("wave 0 armed %d, want %d", rep.Waves[0].Armed, 96*2)
	}
	// Cold → warm: the first wave must miss, later waves must hit.
	if rep.Waves[0].VCacheMisses == 0 {
		t.Fatal("wave 0 saw no verify-cache misses (cold phase missing)")
	}
	if rep.Waves[1].VCacheHits == 0 {
		t.Fatal("wave 1 saw no verify-cache hits (warm phase missing)")
	}
	// A freshly added subject's first handshake is cold again.
	if rep.Waves[2].VCacheMisses == 0 {
		t.Fatal("post-churn wave saw no new cold handshakes")
	}

	// The expectation ledger and the engines' own telemetry must agree:
	// every completion the harness counted was recorded as a discovery
	// (late post-reap completions would add discoveries, but a lossless
	// run has none).
	if got := rep.Counters["discoveries"]; got != rep.Totals.Completed {
		t.Fatalf("telemetry cross-check: discoveries %d != completed %d", got, rep.Totals.Completed)
	}
	if rep.Counters["mailbox_drops"] != 0 {
		t.Fatalf("mailbox drops: %d", rep.Counters["mailbox_drops"])
	}
	if rep.Totals.LeakedSessions != 0 {
		t.Fatalf("leaked sessions: %d", rep.Totals.LeakedSessions)
	}
	if rep.Totals.PeakInflight < p.SLO.MinPeakConcurrent {
		t.Fatalf("peak inflight %d below profile floor %d",
			rep.Totals.PeakInflight, p.SLO.MinPeakConcurrent)
	}

	// The report must serialize.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}

// TestUDPSoakSmall runs a shrunken udp-smoke over real loopback sockets.
func TestUDPSoakSmall(t *testing.T) {
	p := Profiles()["udp-smoke"]
	p.Cells, p.SubjectsPerCell, p.ObjectsPerCell = 2, 3, 2
	p.SLO.MinPeakConcurrent = 6
	p.Logf = t.Logf
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	if rep.Totals.Lost != 0 || rep.Totals.Completed != rep.Totals.Armed {
		t.Fatalf("udp run incomplete: %+v", rep.Totals)
	}
	if rep.Transport != "udp" {
		t.Fatalf("transport %q", rep.Transport)
	}
}

// TestOpenLoopSmall drives a small Poisson arrival schedule and checks the
// open-loop invariants: every armed round completes, skipped arrivals are
// counted rather than queued.
func TestOpenLoopSmall(t *testing.T) {
	p := Profile{
		Name:      "open-loop-test",
		Transport: TransportMesh,
		Cells:     2, SubjectsPerCell: 4, ObjectsPerCell: 2,
		Levels: []backend.Level{backend.L1, backend.L2},
		Rate:   200, Duration: 500 * time.Millisecond,
		Retry: core.RetryPolicy{
			Que1Retries: 3, Que2Retries: 3,
			Timeout: 100 * time.Millisecond, Backoff: 2, SessionTTL: time.Second,
		},
		Seed: 42,
		SLO:  SLO{P99Ceiling: 8 * time.Second},
		Logf: t.Logf,
	}
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	if rep.Totals.Completed == 0 {
		t.Fatal("open loop completed nothing")
	}
	if rep.Totals.Lost != 0 {
		t.Fatalf("lost: %d", rep.Totals.Lost)
	}
	if rep.Totals.Completed != rep.Totals.Armed {
		t.Fatalf("completed %d != armed %d", rep.Totals.Completed, rep.Totals.Armed)
	}
}

// TestFaultySoakSmall injects loss, duplication and jitter on a small fleet
// and checks that retransmission keeps the run essentially complete. The
// loss budget makes the test deterministic-in-outcome despite random draws:
// with 6 QUE1 attempts and 6 QUE2 attempts per session the chance of even
// 4 losses among 64 sessions is negligible.
func TestFaultySoakSmall(t *testing.T) {
	p := Profile{
		Name:      "faulty-test",
		Transport: TransportMesh,
		Cells:     4, SubjectsPerCell: 4, ObjectsPerCell: 2,
		Levels: []backend.Level{backend.L2, backend.L3},
		Fellow: true,
		Waves:  2, ThinkTime: 50 * time.Millisecond,
		Faults: netsim.FaultModel{
			Loss: 0.15, Duplicate: 0.10, ReorderJitter: 5 * time.Millisecond,
		},
		FaultSeed: 99,
		Retry: core.RetryPolicy{
			Que1Retries: 5, Que2Retries: 5,
			Timeout: 50 * time.Millisecond, Backoff: 2, SessionTTL: 2 * time.Second,
		},
		Seed:         7,
		DrainTimeout: 20 * time.Second,
		SLO: SLO{
			MaxLost:         3,
			MaxExpiredExtra: 3,
			P99Ceiling:      10 * time.Second,
		},
		Logf: t.Logf,
	}
	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO violations: %v", rep.SLO.Violations)
	}
	if rep.Counters["faults_lost"] == 0 {
		t.Fatal("fault injection never dropped a frame — wrapper not wired?")
	}
	if rep.Counters["retransmissions"] == 0 {
		t.Fatal("no retransmissions under 15% loss — retry not wired?")
	}
	if rep.Totals.Completed < rep.Totals.Armed-3 {
		t.Fatalf("completed %d of %d armed", rep.Totals.Completed, rep.Totals.Armed)
	}
}

// recordingEndpoint is a stub transport capturing deliveries for the fault
// wrapper unit tests.
type recordingEndpoint struct {
	mu     sync.Mutex
	sent   [][]byte
	bcast  [][]byte
	closed atomic.Bool
}

func (r *recordingEndpoint) Addr() transport.Addr { return "stub" }
func (r *recordingEndpoint) Now() time.Duration   { return 0 }
func (r *recordingEndpoint) Send(to transport.Addr, p []byte) {
	r.mu.Lock()
	r.sent = append(r.sent, append([]byte(nil), p...))
	r.mu.Unlock()
}
func (r *recordingEndpoint) Broadcast(p []byte, ttl int) {
	r.mu.Lock()
	r.bcast = append(r.bcast, append([]byte(nil), p...))
	r.mu.Unlock()
}
func (r *recordingEndpoint) After(d time.Duration, fn func())   { time.AfterFunc(d, fn) }
func (r *recordingEndpoint) Compute(c time.Duration, fn func()) { fn() }
func (r *recordingEndpoint) Do(fn func())                       { fn() }
func (r *recordingEndpoint) Bind(h transport.Handler)           {}
func (r *recordingEndpoint) Close() error                       { r.closed.Store(true); return nil }

func (r *recordingEndpoint) counts() (sent, bcast int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sent), len(r.bcast)
}

func TestWrapFaultsInactiveIsIdentity(t *testing.T) {
	ep := &recordingEndpoint{}
	if got := WrapFaults(ep, netsim.FaultModel{}, 1, nil); got != transport.Endpoint(ep) {
		t.Fatal("inactive model must return the endpoint unchanged")
	}
}

func TestWrapFaultsLossDropsEverything(t *testing.T) {
	ep := &recordingEndpoint{}
	f := WrapFaults(ep, netsim.FaultModel{Loss: 1}, 1, nil)
	for i := 0; i < 50; i++ {
		f.Send("x", []byte{1})
		f.Broadcast([]byte{2}, 1)
	}
	if s, b := ep.counts(); s != 0 || b != 0 {
		t.Fatalf("total loss delivered %d sends, %d broadcasts", s, b)
	}
}

func TestWrapFaultsDuplicateDoubles(t *testing.T) {
	ep := &recordingEndpoint{}
	f := WrapFaults(ep, netsim.FaultModel{Duplicate: 1}, 1, nil)
	for i := 0; i < 10; i++ {
		f.Send("x", []byte{1})
	}
	if s, _ := ep.counts(); s != 20 {
		t.Fatalf("certain duplication delivered %d sends, want 20", s)
	}
}

func TestWrapFaultsCorruptFlipsAByte(t *testing.T) {
	ep := &recordingEndpoint{}
	f := WrapFaults(ep, netsim.FaultModel{Corrupt: 1}, 1, nil)
	orig := []byte{10, 20, 30, 40}
	f.Send("x", append([]byte(nil), orig...))
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.sent) != 1 {
		t.Fatalf("deliveries: %d", len(ep.sent))
	}
	if bytes.Equal(ep.sent[0], orig) {
		t.Fatal("certain corruption delivered the frame unmodified")
	}
}

func TestWrapFaultsJitterDelaysDelivery(t *testing.T) {
	ep := &recordingEndpoint{}
	f := WrapFaults(ep, netsim.FaultModel{ReorderJitter: 30 * time.Millisecond}, 1, nil)
	f.Send("x", []byte{1})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s, _ := ep.counts(); s == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("jittered frame never delivered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSLOCheck(t *testing.T) {
	base := func() *Report {
		return &Report{
			Totals: Totals{
				Armed: 100, Completed: 100,
				PeakInflight: 100,
			},
			Latency: map[string]Quantiles{
				"2": {Count: 100, P50: 0.010, P99: 0.050},
			},
			Counters: map[string]int64{},
		}
	}
	cases := []struct {
		name    string
		slo     SLO
		mutate  func(*Report)
		wantOK  bool
		wantHit string
	}{
		{name: "clean run passes strict zero-value SLO", slo: SLO{}, mutate: func(*Report) {}, wantOK: true},
		{name: "lost", slo: SLO{}, mutate: func(r *Report) { r.Totals.Lost = 1 }, wantHit: "lost"},
		{name: "lost within budget", slo: SLO{MaxLost: 2}, mutate: func(r *Report) { r.Totals.Lost = 2 }, wantOK: true},
		{name: "lost disabled", slo: SLO{MaxLost: -1}, mutate: func(r *Report) { r.Totals.Lost = 999 }, wantOK: true},
		{name: "unexpected", slo: SLO{}, mutate: func(r *Report) { r.Totals.Unexpected = 1 }, wantHit: "unexpected"},
		{name: "level mismatch", slo: SLO{}, mutate: func(r *Report) { r.Totals.LevelMismatch = 1 }, wantHit: "level"},
		{name: "peak floor", slo: SLO{MinPeakConcurrent: 101}, mutate: func(*Report) {}, wantHit: "peak"},
		{name: "mailbox drops", slo: SLO{}, mutate: func(r *Report) { r.Counters["mailbox_drops"] = 1 }, wantHit: "mailbox"},
		{name: "malformed", slo: SLO{}, mutate: func(r *Report) { r.Counters["malformed_drops"] = 3 }, wantHit: "malformed"},
		{name: "unexplained expiries", slo: SLO{}, mutate: func(r *Report) { r.Counters["subject_sessions_expired"] = 2 }, wantHit: "expir"},
		{name: "predicted expiries pass", slo: SLO{}, mutate: func(r *Report) {
			r.Counters["subject_sessions_expired"] = 2
			r.PredictedSubjectExpiries = 2
		}, wantOK: true},
		{name: "leak", slo: SLO{}, mutate: func(r *Report) { r.Totals.LeakedSessions = 1 }, wantHit: "leak"},
		{name: "p50 ceiling", slo: SLO{P50Ceiling: 5 * time.Millisecond}, mutate: func(*Report) {}, wantHit: "p50"},
		{name: "p99 ceiling", slo: SLO{P99Ceiling: 20 * time.Millisecond}, mutate: func(*Report) {}, wantHit: "p99"},
		{name: "slow sessions", slo: SLO{}, mutate: func(r *Report) {
			q := r.Latency["2"]
			q.Overflow = 1
			r.Latency["2"] = q
		}, wantHit: "histogram range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := base()
			tc.mutate(rep)
			res := tc.slo.Check(rep)
			if tc.wantOK {
				if !res.Pass {
					t.Fatalf("want pass, got violations %v", res.Violations)
				}
				return
			}
			if res.Pass {
				t.Fatalf("want violation containing %q, got pass", tc.wantHit)
			}
			found := false
			for _, v := range res.Violations {
				if bytes.Contains([]byte(v), []byte(tc.wantHit)) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v missing %q", res.Violations, tc.wantHit)
			}
		})
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"unknown transport", func(p *Profile) { p.Transport = "carrier-pigeon" }},
		{"session-table pressure", func(p *Profile) { p.SubjectsPerCell = 65 }},
		{"open-loop churn", func(p *Profile) { p.Rate = 10; p.Duration = time.Second; p.RevokeFrac = 0.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Profiles()["ci-soak"]
			tc.mut(&p)
			if _, err := Run(p); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestProfilesRegistryShapes(t *testing.T) {
	ps := Profiles()
	for _, name := range []string{"ci-soak", "standard", "udp-smoke", "open-loop", "soak-faulty"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing built-in profile %q", name)
		}
		pd := p.withDefaults()
		if err := pd.validate(); err != nil {
			t.Fatalf("profile %q invalid: %v", name, err)
		}
	}
	// The headline profile must actually be able to reach its advertised
	// concurrency: armed sessions per wave ≥ the SLO floor.
	std := ps["standard"]
	if got := int64(std.Subjects() * std.ObjectsPerCell); got < std.SLO.MinPeakConcurrent {
		t.Fatalf("standard profile arms %d < floor %d", got, std.SLO.MinPeakConcurrent)
	}
	if std.Subjects() < 10000 || std.Objects() < 1000 {
		t.Fatalf("standard fleet too small: %d subjects, %d objects", std.Subjects(), std.Objects())
	}
}
