package load

import (
	"fmt"
	"sort"
	"time"
)

// GateStatus is one SLO gate evaluated against a live (or final) report:
// the current value, the configured budget, how much of the budget is
// consumed, and — when a previous observation is supplied — the burn rate.
// argus-ops renders these from streamed snapshots using the very same gate
// definitions the harness enforces at the end of a run, so a tail that shows
// green and a report that fails cannot disagree about what was measured.
type GateStatus struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Limit is the gate budget: > 0 a real budget, 0 strict (nothing
	// tolerated), < 0 disabled.
	Limit float64 `json:"limit"`
	// BudgetUsed is Value/Limit for budgeted gates; strict gates report 1
	// the moment the value is nonzero.
	BudgetUsed float64 `json:"budget_used"`
	// BurnPerHour is the fraction of the budget the run consumed per hour
	// over the observation window (budgeted, cumulative gates only).
	BurnPerHour float64 `json:"burn_per_hour,omitempty"`
	Violated    bool    `json:"violated"`
}

func (g GateStatus) String() string {
	state := "ok"
	if g.Violated {
		state = "VIOLATED"
	}
	switch {
	case g.Limit < 0:
		return fmt.Sprintf("%-24s %10.3g  (disabled)", g.Name, g.Value)
	case g.Limit == 0:
		return fmt.Sprintf("%-24s %10.3g  strict  %s", g.Name, g.Value, state)
	default:
		return fmt.Sprintf("%-24s %10.3g  budget %.3g  used %3.0f%%  burn %.2f/h  %s",
			g.Name, g.Value, g.Limit, g.BudgetUsed*100, g.BurnPerHour, state)
	}
}

// StreamGates evaluates the SLO's snapshot-computable gates over a report
// (typically from SnapshotReport on a streamed frame). prev and dt, when
// supplied, give the previous observation and the time between the two, from
// which cumulative gates get a burn rate. Latency-ceiling gates are
// point-in-time and never burn. Gates appear in deterministic order.
func (s SLO) StreamGates(cur, prev *Report, dt time.Duration) []GateStatus {
	var out []GateStatus
	gate := func(name string, limit int64, get func(*Report) int64) {
		val := get(cur)
		g := GateStatus{Name: name, Value: float64(val), Limit: float64(limit), Violated: exceeded(limit, val)}
		switch {
		case limit > 0:
			g.BudgetUsed = g.Value / g.Limit
			if prev != nil && dt > 0 {
				g.BurnPerHour = (g.Value - float64(get(prev))) / g.Limit *
					float64(time.Hour) / float64(dt)
			}
		case limit == 0 && val > 0:
			g.BudgetUsed = 1
		}
		out = append(out, g)
	}

	gate("lost", s.MaxLost, func(r *Report) int64 { return r.Totals.Lost })
	gate("unexpected", s.MaxUnexpected, func(r *Report) int64 { return r.Totals.Unexpected })
	gate("mailbox_drops", s.MaxMailboxDrops, func(r *Report) int64 { return r.Counters["mailbox_drops"] })
	gate("malformed_drops", s.MaxMalformed, func(r *Report) int64 { return r.Counters["malformed_drops"] })
	gate("retransmissions", s.MaxRetransmissions, func(r *Report) int64 { return r.Counters["retransmissions"] })
	gate("dlq_depth", s.MaxDLQDepth, func(r *Report) int64 { return r.Counters["dlq_depth"] })

	levels := make([]string, 0, len(cur.Latency))
	for lvl := range cur.Latency {
		levels = append(levels, lvl)
	}
	sort.Strings(levels)
	ceiling := func(name string, q float64, lim time.Duration) {
		if lim <= 0 {
			return
		}
		g := GateStatus{Name: name, Value: q, Limit: lim.Seconds(), Violated: q > lim.Seconds()}
		g.BudgetUsed = g.Value / g.Limit
		out = append(out, g)
	}
	for _, lvl := range levels {
		q := cur.Latency[lvl]
		if q.Count == 0 {
			continue
		}
		ceiling("L"+lvl+"_p50", q.P50, s.P50Ceiling)
		ceiling("L"+lvl+"_p99", q.P99, s.P99Ceiling)
		gate("L"+lvl+"_slow_sessions", s.MaxSlowSessions,
			func(r *Report) int64 { return r.Latency[lvl].Overflow })
	}

	// Covertness gates are floors, not budgets: the observed p-value (ppm
	// gauge, scaled back to [0,1]) must stay at or above alpha. A negative
	// gauge means the observer has not evaluated yet — pending, not violated,
	// so a tail early in a run doesn't scream before the evidence is in.
	if s.CovertnessAlpha > 0 {
		floor := func(name, key string) {
			ppm := cur.Counters[key]
			p := float64(ppm) / 1e6
			out = append(out, GateStatus{
				Name:     name,
				Value:    p,
				Limit:    s.CovertnessAlpha,
				Violated: ppm >= 0 && p < s.CovertnessAlpha,
			})
		}
		floor("covert_timing_p", "covert_timing_p_ppm")
		floor("covert_length_p", "covert_length_p_ppm")
	}
	return out
}
