package load

import "testing"

// TestServiceChurnMatchesClosedForm holds the live multi-tenant backend to
// the §VIII analysis over both transports: every measured updating overhead
// must equal scale.Of(SchemeArgus, params) exactly.
func TestServiceChurnMatchesClosedForm(t *testing.T) {
	for _, http := range []bool{false, true} {
		cfg := ServiceChurnConfig{N: 12, Beta: 5, Gamma: 4, Ops: 3, Shards: 2, HTTP: http, Logf: t.Logf}
		rep, err := RunServiceChurn(cfg)
		if err != nil {
			t.Fatalf("http=%v: %v", http, err)
		}
		if !rep.Match {
			for _, op := range rep.Ops {
				if !op.Match {
					t.Errorf("http=%v %s: measured %d, closed form %d", http, op.Name, op.Measured, op.ClosedForm)
				}
			}
			t.Fatalf("http=%v: live churn diverged from the closed form", http)
		}
		if want := 6; len(rep.Ops) != want {
			t.Fatalf("http=%v: %d ops measured, want %d", http, len(rep.Ops), want)
		}
		wantTransport := "local"
		if http {
			wantTransport = "http"
		}
		if rep.Transport != wantTransport {
			t.Fatalf("transport %q, want %q", rep.Transport, wantTransport)
		}
		for _, op := range rep.Ops {
			if op.P50Micros <= 0 || op.P99Micros < op.P50Micros {
				t.Fatalf("http=%v %s: nonsense latencies %+v", http, op.Name, op)
			}
		}
	}
}

func TestServiceChurnRejectsBadConfig(t *testing.T) {
	if _, err := RunServiceChurn(ServiceChurnConfig{N: 0, Beta: 1, Gamma: 2, Ops: 1}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := RunServiceChurn(ServiceChurnConfig{N: 1, Beta: 1, Gamma: 1, Ops: 1}); err == nil {
		t.Fatal("gamma=1 accepted (no fellows to re-key)")
	}
}
