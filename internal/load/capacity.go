package load

import (
	"fmt"
	"time"

	"argus/internal/obs"
	"argus/internal/transport/transporttest"
)

// waitPoll is deadline polling at the coarse step the fleet-walking
// predicates want (each pendingSessions call visits every engine).
func waitPoll(timeout time.Duration, cond func() bool) bool {
	return transporttest.Poll(timeout, 50*time.Millisecond, cond)
}

// This file is the saturation-knee finder: a bracket-then-bisect search over
// the open-loop offered rate (sessions/s) that reports the highest rate the
// fleet sustains under the SLO gates and, at the first failing rate, which
// resource gave out. The search itself is pure control logic over a
// TrialFunc, so the deterministic tests drive it with a synthetic oracle and
// the binaries drive it with a live fleet (in-process via CapacitySession,
// cross-process via fleetcoord).

// TrialCounters is the per-trial slice of obs counters the bottleneck
// attribution reads, each summed over the trial's diff window.
type TrialCounters struct {
	MailboxDrops    int64 `json:"mailbox_drops"`
	VCacheMisses    int64 `json:"vcache_misses"`
	Retransmissions int64 `json:"retransmissions"`
	SessionExpiries int64 `json:"session_expiries"`
}

// Trial is one measured point on the rate ladder.
type Trial struct {
	// Offered is the open-loop arrival rate in sessions/s the trial asked
	// for; Achieved is completions over the offered window.
	Offered  float64 `json:"offered_sessions_per_second"`
	Achieved float64 `json:"achieved_sessions_per_second"`
	Seconds  float64 `json:"seconds"`

	Armed     int64 `json:"armed"`
	Completed int64 `json:"completed"`
	Lost      int64 `json:"lost"`
	// Skipped counts arrivals that found every subject busy. SkipFraction
	// is skipped offered sessions over all offered sessions — the
	// open-loop's honest utilization signal, since skipped arrivals are
	// dropped, never queued.
	Skipped      int64   `json:"skipped_arrivals"`
	SkipFraction float64 `json:"skip_fraction"`

	Pass       bool          `json:"pass"`
	Violations []string      `json:"violations,omitempty"`
	Counters   TrialCounters `json:"counters"`
}

// TrialFunc measures one offered rate (sessions/s). An error aborts the
// whole search — it means the harness broke, not that the rate failed.
type TrialFunc func(offered float64) (Trial, error)

// CapacityConfig tunes the search.
type CapacityConfig struct {
	Start     float64 // first offered rate, sessions/s (default 100)
	Growth    float64 // bracket multiplier (default 2)
	Tolerance float64 // stop when hi-lo <= Tolerance*lo (default 0.1)
	MaxTrials int     // hard trial budget (default 16)
	Ceiling   float64 // optional: never offer beyond this rate (0 = none)
	Logf      func(format string, args ...any)
}

func (c CapacityConfig) withDefaults() CapacityConfig {
	if c.Start <= 0 {
		c.Start = 100
	}
	if c.Growth <= 1 {
		c.Growth = 2
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 16
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// CapacityResult is the search's verdict.
type CapacityResult struct {
	// Knee is the highest offered rate that passed (0 if none did).
	Knee float64 `json:"knee_sessions_per_second"`
	// FirstFail is the lowest offered rate that failed (0 if none did).
	FirstFail float64 `json:"first_fail_sessions_per_second"`
	// Bottleneck attributes the lowest failing trial: "mailbox-drops",
	// "vcache-misses", "retransmissions", "session-expiries",
	// "arrival-backlog", "compute-saturation", or "" when nothing failed.
	Bottleneck string `json:"bottleneck,omitempty"`
	// Converged: the bracket closed to within Tolerance. HitCeiling: the
	// fleet passed at the configured Ceiling, so the knee is a lower bound.
	Converged  bool    `json:"converged"`
	HitCeiling bool    `json:"hit_ceiling,omitempty"`
	Trials     []Trial `json:"trials"`
}

// SearchCapacity brackets the knee (multiplying by Growth while trials
// pass, dividing while even Start fails) and then bisects until the
// bracket is within Tolerance or the trial budget runs out. The rate
// ladder is monotone during bracketing by construction; bisection probes
// only inside the bracket.
func SearchCapacity(cfg CapacityConfig, run TrialFunc) (*CapacityResult, error) {
	cfg = cfg.withDefaults()
	res := &CapacityResult{}
	var lo, hi float64 // highest pass, lowest fail
	var firstFail *Trial
	rate := cfg.Start
	if cfg.Ceiling > 0 && rate > cfg.Ceiling {
		rate = cfg.Ceiling
	}
	for len(res.Trials) < cfg.MaxTrials {
		t, err := run(rate)
		if err != nil {
			return res, fmt.Errorf("capacity trial at %.1f/s: %w", rate, err)
		}
		res.Trials = append(res.Trials, t)
		if t.Pass {
			cfg.Logf("capacity: %.1f/s PASS (achieved %.1f/s, skip %.1f%%)",
				t.Offered, t.Achieved, 100*t.SkipFraction)
			if t.Offered > lo {
				lo = t.Offered
			}
			if cfg.Ceiling > 0 && t.Offered >= cfg.Ceiling {
				res.HitCeiling = true
				break
			}
		} else {
			cfg.Logf("capacity: %.1f/s FAIL (%v)", t.Offered, t.Violations)
			if hi == 0 || t.Offered < hi {
				hi = t.Offered
			}
			if firstFail == nil || t.Offered < firstFail.Offered {
				ff := t
				firstFail = &ff
			}
		}
		switch {
		case lo == 0 && hi > 0:
			// Even the smallest rate tried so far fails: bracket downward.
			rate = hi / cfg.Growth
			if rate < cfg.Start/1024 {
				// Nothing sustains; give up rather than chase zero.
				goto done
			}
		case lo > 0 && hi == 0:
			// Everything passes so far: bracket upward.
			rate = lo * cfg.Growth
			if cfg.Ceiling > 0 && rate > cfg.Ceiling {
				rate = cfg.Ceiling
			}
		default:
			// Bracket closed: bisect or stop.
			if hi-lo <= cfg.Tolerance*lo {
				res.Converged = true
				goto done
			}
			rate = (lo + hi) / 2
		}
	}
	// Trial budget exhausted; converged only if the bracket already closed.
	res.Converged = lo > 0 && hi > 0 && hi-lo <= cfg.Tolerance*lo

done:
	res.Knee = lo
	res.FirstFail = hi
	if res.HitCeiling {
		res.Converged = true
	}
	if firstFail != nil {
		res.Bottleneck = AttributeBottleneck(*firstFail)
	}
	return res, nil
}

// attributionThreshold: a counter family must reach this fraction of armed
// sessions before it is blamed — below it, the counters are noise and the
// fallback verdicts apply.
const attributionThreshold = 0.01

// AttributeBottleneck names the resource that gave out in a failing trial.
// Counter families are checked in causal order — mailbox drops cause
// retransmissions, retransmissions cause expiries — so the most upstream
// signal above threshold wins. With no counter signal, a high skip
// fraction means subjects never came free (arrival backlog), and anything
// else is raw compute saturation (latency gates tripped with clean
// counters).
func AttributeBottleneck(t Trial) string {
	armed := t.Armed
	if armed <= 0 {
		armed = 1
	}
	over := func(c int64) bool { return float64(c)/float64(armed) >= attributionThreshold }
	switch {
	case over(t.Counters.MailboxDrops):
		return "mailbox-drops"
	case over(t.Counters.VCacheMisses):
		return "vcache-misses"
	case over(t.Counters.Retransmissions):
		return "retransmissions"
	case over(t.Counters.SessionExpiries):
		return "session-expiries"
	case t.SkipFraction > attributionThreshold:
		return "arrival-backlog"
	default:
		return "compute-saturation"
	}
}

// TrialSLO derives the per-trial gate set from a profile SLO. Trials judge
// a short open-loop window from a snapshot diff, so the ledger-backed and
// whole-run gates are retuned: retransmission ceilings off (the window
// boundary splits retry cycles arbitrarily), concurrency floor off (a
// low-rate trial legitimately idles), loss/drops/expiries strict (at a
// sustainable rate the window is loss-free), latency ceilings kept.
func TrialSLO(s SLO) SLO {
	s.MaxRetransmissions = -1
	s.MaxWarmRetransmissions = -1
	s.MinPeakConcurrent = 0
	s.MaxLost = 0
	s.MaxMailboxDrops = 0
	s.MaxExpiredExtra = 0
	s.CovertnessAlpha = 0
	s.StrictAdversaryAccounting = false
	return s
}

// EvalTrial folds a trial window's report into a Trial verdict. offered is
// the arrival rate in sessions/s, seconds the offered-window length,
// sessionsPerArrival how many sessions one open-loop arrival arms (the
// subject's per-round fan-out — ObjectsPerCell for the standard fleets).
// maxSkipFrac bounds the skip fraction (<=0 means 5%): an open-loop fleet
// that sheds more offered load than that is saturated no matter how clean
// the completions look.
func EvalTrial(offered, seconds, sessionsPerArrival float64, rep *Report, slo SLO, maxSkipFrac float64) Trial {
	if maxSkipFrac <= 0 {
		maxSkipFrac = 0.05
	}
	if sessionsPerArrival <= 0 {
		sessionsPerArrival = 1
	}
	t := Trial{
		Offered:   offered,
		Seconds:   seconds,
		Armed:     rep.Totals.Armed,
		Completed: rep.Totals.Completed,
		Lost:      rep.Totals.Lost,
		Skipped:   rep.Totals.SkippedArrivals,
		Counters: TrialCounters{
			MailboxDrops:    rep.Counters["mailbox_drops"],
			VCacheMisses:    rep.Counters["vcache_misses"],
			Retransmissions: rep.Counters["retransmissions"],
			SessionExpiries: rep.Counters["subject_sessions_expired"],
		},
	}
	if seconds > 0 {
		t.Achieved = float64(t.Completed) / seconds
	}
	offeredSessions := float64(t.Armed) + float64(t.Skipped)*sessionsPerArrival
	if offeredSessions > 0 {
		t.SkipFraction = float64(t.Skipped) * sessionsPerArrival / offeredSessions
	}
	t.Violations = append(t.Violations, slo.Check(rep).Violations...)
	if t.SkipFraction > maxSkipFrac {
		t.Violations = append(t.Violations, fmt.Sprintf(
			"skip fraction %.1f%% > max %.1f%% (offered load shed, fleet saturated)",
			100*t.SkipFraction, 100*maxSkipFrac))
	}
	t.Pass = len(t.Violations) == 0
	return t
}

// CapacitySession holds one in-process fleet across many open-loop trials,
// so the (expensive) fleet build is paid once and each trial is a
// snapshot-diff window over the shared registry.
type CapacitySession struct {
	r           *runner
	trialDur    time.Duration
	slo         SLO
	maxSkipFrac float64

	// Warmup measurement, for calibrating the scale model: sessions
	// completed by the closed warm wave and the wall seconds it took.
	WarmSessions int64
	WarmSeconds  float64
}

// OpenCapacitySession builds the profile's fleet and runs one closed
// warm wave (every subject fires one round) so verify caches, ARP-style
// peer state and the RTT estimators are warm before the first trial — and
// so the session has a per-session cost measurement to calibrate the scale
// model with.
func OpenCapacitySession(p Profile, trialDur time.Duration) (*CapacitySession, error) {
	r, err := newRunner(p)
	if err != nil {
		return nil, err
	}
	cs := &CapacitySession{
		r:        r,
		trialDur: trialDur,
		slo:      TrialSLO(r.p.SLO),
	}
	if cs.trialDur <= 0 {
		cs.trialDur = 5 * time.Second
	}
	if err := cs.warm(); err != nil {
		cs.Close()
		return nil, err
	}
	return cs, nil
}

// warm fires one closed wave and waits for it to complete and quiesce.
func (cs *CapacitySession) warm() error {
	r := cs.r
	slots := r.allSubjects()
	start := time.Now()
	var armed int64
	for _, s := range slots {
		exp := r.armSlot(s)
		armed += int64(exp)
		r.inflight.add(int64(exp))
		r.inflightG.Add(int64(exp))
	}
	for _, s := range slots {
		r.fire(s)
	}
	target := r.roundsArmed.Load()
	if !waitPoll(r.p.DrainTimeout, func() bool { return r.roundsDone.Load() >= target }) {
		return fmt.Errorf("warm wave did not complete: %d/%d rounds", r.roundsDone.Load(), target)
	}
	cs.WarmSessions = armed
	cs.WarmSeconds = time.Since(start).Seconds()
	cs.quiesce()
	return nil
}

// Trial offers `offered` sessions/s for the session's trial duration and
// judges the window. Each arrival arms one subject round of ObjectsPerCell
// sessions, so the round rate handed to the open loop is scaled down
// accordingly.
func (cs *CapacitySession) Trial(offered float64) (Trial, error) {
	r := cs.r
	perArrival := float64(r.p.ObjectsPerCell)
	before := r.reg.Snapshot()
	r.openLoopAt(offered/perArrival, cs.trialDur)
	// Quiesce before the after-snapshot so a reaped round's session
	// expiries land in this trial's window, not the next one's.
	cs.quiesce()
	diff := obs.DiffSnapshots(r.reg.Snapshot(), before)
	rep := SnapshotReport(diff)
	return EvalTrial(offered, cs.trialDur.Seconds(), perArrival, rep, cs.slo, cs.maxSkipFrac), nil
}

// quiesce waits for every engine's session table to empty (bounded by the
// session TTL plus slack).
func (cs *CapacitySession) quiesce() {
	ttl := cs.r.p.Retry.SessionTTL
	if ttl <= 0 {
		ttl = 8 * time.Second
	}
	waitPoll(ttl+3*time.Second, func() bool { return cs.r.fleet.pendingSessions() == 0 })
}

// Close tears the fleet down.
func (cs *CapacitySession) Close() { cs.r.fleet.close() }
