package groups

import (
	"bytes"
	"testing"

	"argus/internal/cert"
)

func TestCreateAndMembership(t *testing.T) {
	m := NewManager(nil)
	g, err := m.CreateGroup("students with learning disability")
	if err != nil {
		t.Fatal(err)
	}
	s := cert.IDFromName("student-S")
	o := cert.IDFromName("magazine-machine")
	if err := m.AddMember(g.ID(), s, cert.RoleSubject); err != nil {
		t.Fatal(err)
	}
	if err := m.AddMember(g.ID(), o, cert.RoleObject); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Fatalf("γ = %d, want 2", g.Size())
	}
	if !m.IsMember(g.ID(), s) || !m.IsMember(g.ID(), o) {
		t.Fatal("members not registered")
	}

	ms, err := m.MembershipsFor(s, cert.RoleSubject)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := m.MembershipsFor(o, cert.RoleObject)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || len(mo) != 1 {
		t.Fatalf("memberships: subject %d, object %d", len(ms), len(mo))
	}
	if !bytes.Equal(ms[0].Key, mo[0].Key) {
		t.Fatal("fellows hold different group keys")
	}
	if ms[0].CoverUp || mo[0].CoverUp {
		t.Fatal("real membership marked cover-up")
	}
}

func TestCoverUpKeys(t *testing.T) {
	m := NewManager(nil)
	g, _ := m.CreateGroup("g")
	member := cert.IDFromName("member")
	m.AddMember(g.ID(), member, cert.RoleSubject)

	plain := cert.IDFromName("subject-without-sensitive-attrs")
	ms, err := m.MembershipsFor(plain, cert.RoleSubject)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || !ms[0].CoverUp {
		t.Fatalf("expected exactly one cover-up membership, got %+v", ms)
	}
	// Stable across queries.
	again, _ := m.MembershipsFor(plain, cert.RoleSubject)
	if !bytes.Equal(ms[0].Key, again[0].Key) || ms[0].Group != again[0].Group {
		t.Fatal("cover-up membership not stable")
	}
	// Unique per entity: "there is no second entity owning it" (§VI-B).
	other, _ := m.MembershipsFor(cert.IDFromName("another-subject"), cert.RoleSubject)
	if bytes.Equal(ms[0].Key, other[0].Key) {
		t.Fatal("two subjects share a cover-up key")
	}
	// Objects outside any group get nothing (only Level 3 objects hold keys).
	mo, _ := m.MembershipsFor(cert.IDFromName("plain-object"), cert.RoleObject)
	if len(mo) != 0 {
		t.Fatalf("object got memberships: %+v", mo)
	}
	// Structural indistinguishability: same key length, version layout.
	real, _ := m.MembershipsFor(member, cert.RoleSubject)
	if len(real[0].Key) != len(ms[0].Key) {
		t.Fatal("cover-up key length differs from real key")
	}
}

func TestRemoveMemberRotatesKey(t *testing.T) {
	m := NewManager(nil)
	g, _ := m.CreateGroup("g")
	ids := []cert.ID{
		cert.IDFromName("a"), cert.IDFromName("b"), cert.IDFromName("c"),
	}
	m.AddMember(g.ID(), ids[0], cert.RoleSubject)
	m.AddMember(g.ID(), ids[1], cert.RoleSubject)
	m.AddMember(g.ID(), ids[2], cert.RoleObject)

	before, _ := m.MembershipsFor(ids[0], cert.RoleSubject)
	oldKey := before[0].Key

	rekeyed, err := m.RemoveMember(g.ID(), ids[1])
	if err != nil {
		t.Fatal(err)
	}
	// §VIII: removing one of γ members notifies the other γ−1 fellows.
	if len(rekeyed) != 2 {
		t.Fatalf("rekeyed %d fellows, want γ−1 = 2", len(rekeyed))
	}
	if m.IsMember(g.ID(), ids[1]) {
		t.Fatal("removed member still present")
	}
	after, _ := m.MembershipsFor(ids[0], cert.RoleSubject)
	if bytes.Equal(oldKey, after[0].Key) {
		t.Fatal("group key not rotated on removal — removed member could still discover fellows")
	}
	if after[0].KeyVersion != 2 {
		t.Fatalf("key version = %d, want 2", after[0].KeyVersion)
	}
}

func TestRemoveNonMemberFails(t *testing.T) {
	m := NewManager(nil)
	g, _ := m.CreateGroup("g")
	if _, err := m.RemoveMember(g.ID(), cert.IDFromName("nobody")); err == nil {
		t.Fatal("removing a non-member succeeded")
	}
	if _, err := m.RemoveMember(999, cert.IDFromName("nobody")); err == nil {
		t.Fatal("removing from unknown group succeeded")
	}
	if err := m.AddMember(999, cert.IDFromName("x"), cert.RoleSubject); err == nil {
		t.Fatal("adding to unknown group succeeded")
	}
	if err := m.AddMember(g.ID(), cert.IDFromName("x"), cert.Role(9)); err == nil {
		t.Fatal("invalid role accepted")
	}
}

func TestMultipleGroups(t *testing.T) {
	// §VI-C: a subject may hold multiple sensitive attributes and thus be in
	// several secret groups.
	m := NewManager(nil)
	g1, _ := m.CreateGroup("attr-1")
	g2, _ := m.CreateGroup("attr-2")
	g3, _ := m.CreateGroup("attr-3")
	s := cert.IDFromName("multi")
	m.AddMember(g1.ID(), s, cert.RoleSubject)
	m.AddMember(g3.ID(), s, cert.RoleSubject)

	ms, _ := m.MembershipsFor(s, cert.RoleSubject)
	if len(ms) != 2 {
		t.Fatalf("memberships = %d, want 2", len(ms))
	}
	if ms[0].Group != g1.ID() || ms[1].Group != g3.ID() {
		t.Fatalf("membership groups = %v, %v", ms[0].Group, ms[1].Group)
	}
	if m.IsMember(g2.ID(), s) {
		t.Fatal("spurious membership")
	}
	if got := len(m.Groups()); got != 3 {
		t.Fatalf("Groups() = %d, want 3", got)
	}
}

func TestGroupDescriptionsStayAdminSide(t *testing.T) {
	// The group→attribute mapping is kept to the admin only (§VII Case 5):
	// issued memberships carry only the opaque ID and key.
	m := NewManager(nil)
	g, _ := m.CreateGroup("employees with depression")
	s := cert.IDFromName("s")
	m.AddMember(g.ID(), s, cert.RoleSubject)
	ms, _ := m.MembershipsFor(s, cert.RoleSubject)
	if g.Description() != "employees with depression" {
		t.Fatal("admin lost the mapping")
	}
	// Membership struct has no description field — compile-time guarantee —
	// so just confirm the key material does not embed it.
	if bytes.Contains(ms[0].Key, []byte("depression")) {
		t.Fatal("group key leaks the sensitive attribute")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	m := NewManager(nil)
	g1, _ := m.CreateGroup("alpha")
	g2, _ := m.CreateGroup("beta")
	s := cert.IDFromName("s")
	o := cert.IDFromName("o")
	m.AddMember(g1.ID(), s, cert.RoleSubject)
	m.AddMember(g1.ID(), o, cert.RoleObject)
	m.AddMember(g2.ID(), s, cert.RoleSubject)
	// Materialize a cover-up key for an outsider.
	outsider := cert.IDFromName("outsider")
	cuBefore, _ := m.MembershipsFor(outsider, cert.RoleSubject)

	blob := m.Export()
	r, err := Import(blob)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if !bytes.Equal(blob, r.Export()) {
		t.Fatal("re-export differs")
	}
	// Memberships and keys survive.
	ms, _ := r.MembershipsFor(s, cert.RoleSubject)
	if len(ms) != 2 {
		t.Fatalf("memberships after import = %d", len(ms))
	}
	orig, _ := m.MembershipsFor(s, cert.RoleSubject)
	if !bytes.Equal(ms[0].Key, orig[0].Key) {
		t.Fatal("group key changed across import")
	}
	// Cover-up keys stay stable (the cover must not flicker on restart).
	cuAfter, _ := r.MembershipsFor(outsider, cert.RoleSubject)
	if !bytes.Equal(cuBefore[0].Key, cuAfter[0].Key) {
		t.Fatal("cover-up key changed across import")
	}
	// New groups get fresh IDs beyond the horizon.
	g3, _ := r.CreateGroup("gamma")
	if g3.ID() <= g2.ID() {
		t.Fatalf("new group ID %d not beyond %d", g3.ID(), g2.ID())
	}
	// Corruption rejected.
	if _, err := Import(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated registry imported")
	}
}
