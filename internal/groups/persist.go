package groups

import (
	"errors"
	"sort"

	"argus/internal/cert"
	"argus/internal/enc"
)

// Export serializes the full registry state (group keys included — this is
// the backend's private store, never wire material).
func (m *Manager) Export() []byte {
	w := enc.NewWriter(512)
	w.U64(uint64(m.nextID))
	w.U64(uint64(m.nextCover))

	ids := m.Groups()
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		g := m.groups[id]
		w.U64(uint64(g.id))
		w.String16(g.description)
		w.Bytes16(g.key)
		w.U64(g.keyVersion)
		writeIDSet(w, g.subjects)
		writeIDSet(w, g.objects)
	}

	coverIDs := make([]cert.ID, 0, len(m.coverUps))
	for id := range m.coverUps {
		coverIDs = append(coverIDs, id)
	}
	sort.Slice(coverIDs, func(i, j int) bool { return coverIDs[i].Less(coverIDs[j]) })
	w.U32(uint32(len(coverIDs)))
	for _, id := range coverIDs {
		cu := m.coverUps[id]
		w.Raw(id[:])
		w.U64(uint64(cu.Group))
		w.Bytes16(cu.Key)
		w.U64(cu.KeyVersion)
	}
	return w.Bytes()
}

func writeIDSet(w *enc.Writer, set map[cert.ID]bool) {
	ids := make([]cert.ID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.Raw(id[:])
	}
}

func readIDSet(r *enc.Reader) map[cert.ID]bool {
	n := int(r.U32())
	// Cap the allocation hint by what the input could actually hold so a
	// forged count can't pre-size a huge map before truncation surfaces.
	hint := n
	if max := r.Remaining() / len(cert.ID{}); hint > max {
		hint = max
	}
	set := make(map[cert.ID]bool, hint)
	for i := 0; i < n && r.Err() == nil; i++ {
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		set[id] = true
	}
	return set
}

// Import restores a registry exported by Export.
func Import(b []byte) (*Manager, error) {
	r := enc.NewReader(b)
	m := NewManager(nil)
	m.nextID = ID(r.U64())
	m.nextCover = ID(r.U64())

	nGroups := int(r.U32())
	for i := 0; i < nGroups && r.Err() == nil; i++ {
		g := &Group{
			id:          ID(r.U64()),
			description: r.String16(),
			key:         r.Bytes16(),
			keyVersion:  r.U64(),
		}
		g.subjects = readIDSet(r)
		g.objects = readIDSet(r)
		m.groups[g.id] = g
	}
	nCover := int(r.U32())
	for i := 0; i < nCover && r.Err() == nil; i++ {
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		cu := Membership{
			Group:      ID(r.U64()),
			Key:        r.Bytes16(),
			KeyVersion: r.U64(),
			CoverUp:    true,
		}
		m.coverUps[id] = cu
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	for id, g := range m.groups {
		if len(g.key) == 0 {
			return nil, errors.New("groups: imported group without key")
		}
		if id >= m.nextID {
			return nil, errors.New("groups: imported group beyond ID horizon")
		}
	}
	return m, nil
}
