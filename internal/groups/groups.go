// Package groups manages secret groups and fellows (§IV-A, §VI): subjects
// and objects whose sensitive attributes allow them to recognize each other
// share one symmetric group key K_i^grp. The mapping between group IDs and
// the sensitive attributes they represent is kept to the admin only (§VII
// Case 5) — nothing in this package's issued material names the attribute.
//
// Subjects with no sensitive attribute still receive a cover-up key: a unique
// random key owned by nobody else, so their Level 3 MACs look exactly like a
// real fellow's (§VI-B).
//
// Removing a member rotates the group key and re-issues it to the remaining
// fellows; the returned notification count (γ−1) is the Level 3 updating
// overhead analyzed in §VIII.
package groups

import (
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"

	"argus/internal/cert"
	"argus/internal/suite"
)

// ID identifies a secret group. IDs are opaque; only the admin knows which
// sensitive attribute a group corresponds to.
type ID uint64

// Membership is the material a fellow holds for one secret group: the group
// ID and the current symmetric key. A cover-up membership is structurally
// identical — CoverUp is known only to the backend and to the owning device
// (which must treat it like a real key to keep the cover).
type Membership struct {
	Group      ID
	Key        []byte
	KeyVersion uint64
	CoverUp    bool
}

// Group is the backend-side record of one secret group.
type Group struct {
	id          ID
	description string // admin-only: the sensitive attribute this group serves
	key         []byte
	keyVersion  uint64
	subjects    map[cert.ID]bool
	objects     map[cert.ID]bool
	// sorted holds every member (subject or object fellow, each once) in
	// cert.ID order, maintained incrementally on Add/RemoveMember. Rekey
	// notification fan-out is γ−1 per removal; re-deriving and re-sorting the
	// list per removal made bulk revocation churn O(γ² log γ) and dominated
	// the churn phase's CPU profile.
	sorted []cert.ID
}

// insertSorted adds id to g.sorted in order; no-op if already present.
func (g *Group) insertSorted(id cert.ID) {
	i, found := slices.BinarySearchFunc(g.sorted, id, cert.ID.Compare)
	if !found {
		g.sorted = slices.Insert(g.sorted, i, id)
	}
}

// removeSorted deletes id from g.sorted; no-op if absent.
func (g *Group) removeSorted(id cert.ID) {
	if i, found := slices.BinarySearchFunc(g.sorted, id, cert.ID.Compare); found {
		g.sorted = slices.Delete(g.sorted, i, i+1)
	}
}

// ID returns the group's identifier.
func (g *Group) ID() ID { return g.id }

// Description returns the admin-only sensitive-attribute description.
func (g *Group) Description() string { return g.description }

// Size returns γ: the number of fellows (subjects + objects).
func (g *Group) Size() int { return len(g.subjects) + len(g.objects) }

// KeyVersion returns the current key's version, bumped on every rotation.
func (g *Group) KeyVersion() uint64 { return g.keyVersion }

// Manager is the backend's secret-group registry.
type Manager struct {
	rng    io.Reader // nil → crypto/rand
	nextID ID
	groups map[ID]*Group
	// coverUps remembers each entity's issued cover-up membership so repeated
	// queries return stable material.
	coverUps map[cert.ID]Membership
	// coverUpSpace is the ID space cover-up groups are drawn from; real and
	// fake group IDs are interleaved so an ID alone reveals nothing.
	nextCover ID
}

// NewManager creates an empty registry. rng supplies key material
// (crypto/rand.Reader if nil).
func NewManager(rng io.Reader) *Manager {
	return &Manager{
		rng:       rng,
		nextID:    1,
		nextCover: 1 << 32, // disjoint from real IDs internally; opaque externally
		groups:    make(map[ID]*Group),
		coverUps:  make(map[cert.ID]Membership),
	}
}

// CreateGroup registers a new secret group for the given sensitive attribute
// description and draws its first key.
func (m *Manager) CreateGroup(description string) (*Group, error) {
	key, err := suite.NewGroupKey(m.rng)
	if err != nil {
		return nil, err
	}
	g := &Group{
		id:          m.nextID,
		description: description,
		key:         key,
		keyVersion:  1,
		subjects:    make(map[cert.ID]bool),
		objects:     make(map[cert.ID]bool),
	}
	m.nextID++
	m.groups[g.id] = g
	return g, nil
}

// Get returns the group with the given ID.
func (m *Manager) Get(id ID) (*Group, error) {
	g, ok := m.groups[id]
	if !ok {
		return nil, fmt.Errorf("groups: no group %d", id)
	}
	return g, nil
}

// Groups returns all group IDs in ascending order.
func (m *Manager) Groups() []ID {
	ids := make([]ID, 0, len(m.groups))
	for id := range m.groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AddMember adds an entity to a group as a subject or object fellow.
func (m *Manager) AddMember(gid ID, entity cert.ID, role cert.Role) error {
	g, err := m.Get(gid)
	if err != nil {
		return err
	}
	switch role {
	case cert.RoleSubject:
		g.subjects[entity] = true
	case cert.RoleObject:
		g.objects[entity] = true
	default:
		return errors.New("groups: invalid role")
	}
	g.insertSorted(entity)
	return nil
}

// RemoveMember removes an entity from a group and rotates the group key so
// the removed member can no longer participate in Level 3 discovery. It
// returns the fellows that must be re-keyed — the Level 3 updating overhead,
// γ−1 notifications (§VIII).
func (m *Manager) RemoveMember(gid ID, entity cert.ID) (rekeyed []cert.ID, err error) {
	g, err := m.Get(gid)
	if err != nil {
		return nil, err
	}
	if !g.subjects[entity] && !g.objects[entity] {
		return nil, fmt.Errorf("groups: %v is not a member of group %d", entity, gid)
	}
	delete(g.subjects, entity)
	delete(g.objects, entity)
	g.removeSorted(entity)
	key, err := suite.NewGroupKey(m.rng)
	if err != nil {
		return nil, err
	}
	g.key = key
	g.keyVersion++
	return slices.Clone(g.sorted), nil
}

// IsMember reports whether the entity currently belongs to the group.
func (m *Manager) IsMember(gid ID, entity cert.ID) bool {
	g, ok := m.groups[gid]
	if !ok {
		return false
	}
	return g.subjects[entity] || g.objects[entity]
}

// MembershipsFor returns the current group material for an entity: one
// Membership per real group, sorted by group ID. If the entity belongs to no
// group and role is RoleSubject, a stable cover-up membership is issued
// instead — every subject leaves bootstrapping with at least one key (§VI-B).
func (m *Manager) MembershipsFor(entity cert.ID, role cert.Role) ([]Membership, error) {
	var out []Membership
	for _, gid := range m.Groups() {
		g := m.groups[gid]
		if g.subjects[entity] || g.objects[entity] {
			out = append(out, Membership{
				Group:      gid,
				Key:        append([]byte(nil), g.key...),
				KeyVersion: g.keyVersion,
			})
		}
	}
	if len(out) == 0 && role == cert.RoleSubject {
		cu, err := m.coverUpFor(entity)
		if err != nil {
			return nil, err
		}
		out = append(out, cu)
	}
	return out, nil
}

// coverUpFor returns the entity's cover-up membership, creating it on first
// use. The key is a unique random value: no second entity owns it, so the
// MAC_{S,3} it produces never completes a handshake, yet is indistinguishable
// from a real fellow's MAC (§VI-B).
func (m *Manager) coverUpFor(entity cert.ID) (Membership, error) {
	if cu, ok := m.coverUps[entity]; ok {
		return cu, nil
	}
	key, err := suite.NewGroupKey(m.rng)
	if err != nil {
		return Membership{}, err
	}
	cu := Membership{Group: m.nextCover, Key: key, KeyVersion: 1, CoverUp: true}
	m.nextCover++
	m.coverUps[entity] = cu
	return cu, nil
}
