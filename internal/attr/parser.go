package attr

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a predicate expression. Grammar:
//
//	expr    := orExpr
//	orExpr  := andExpr ( '||' andExpr )*
//	andExpr := unary   ( '&&' unary )*
//	unary   := '!' unary | '(' expr ')' | atom
//	atom    := 'true' | 'false'
//	         | 'has' '(' ident ')'
//	         | ident op literal
//	op      := '==' | '!=' | '<' | '<=' | '>' | '>='
//	literal := '\'' chars '\'' | integer
//
// Identifiers are [A-Za-z_][A-Za-z0-9_.-]*. Single-quoted string literals may
// not contain quotes. Unquoted integer literals select numeric comparison.
func Parse(text string) (*Predicate, error) {
	p := &parser{input: text}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("attr: trailing input at offset %d: %q", p.pos, p.input[p.pos:])
	}
	var b strings.Builder
	root.render(&b)
	return &Predicate{root: root, text: b.String()}, nil
}

// MustParse is Parse that panics on error; for tests, examples and
// compile-time-constant policies.
func MustParse(text string) *Predicate {
	p, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return p
}

// True returns the predicate that matches every attribute set.
func True() *Predicate { return &Predicate{root: &boolLit{val: true}, text: "true"} }

// maxParseDepth bounds expression nesting ('!' chains, parenthesis depth) so
// adversarial input cannot drive unbounded recursion through the parser —
// and, since evaluation and rendering recurse over the same tree, through
// them either. 64 levels is far beyond any legitimate policy.
const maxParseDepth = 64

type parser struct {
	input string
	pos   int
	depth int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek(s string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.input[p.pos:], s)
}

func (p *parser) accept(s string) bool {
	if p.peek(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("attr: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseExpr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binary{op: "||", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binary{op: "&&", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, p.errf("expression nested deeper than %d levels", maxParseDepth)
	}
	p.skipSpace()
	if p.pos < len(p.input) && p.input[p.pos] == '!' && !strings.HasPrefix(p.input[p.pos:], "!=") {
		p.pos++
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &not{inner: inner}, nil
	}
	if p.accept("(") {
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, p.errf("expected ')'")
		}
		return inner, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (node, error) {
	ident, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	switch ident {
	case "true":
		return &boolLit{val: true}, nil
	case "false":
		return &boolLit{val: false}, nil
	case "has":
		if !p.accept("(") {
			return nil, p.errf("expected '(' after has")
		}
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, p.errf("expected ')' after has(%s", name)
		}
		return &has{name: name}, nil
	}
	var op cmpOp
	switch {
	case p.accept("=="):
		op = opEq
	case p.accept("!="):
		op = opNe
	case p.accept("<="):
		op = opLe
	case p.accept(">="):
		op = opGe
	case p.accept("<"):
		op = opLt
	case p.accept(">"):
		op = opGt
	default:
		return nil, p.errf("expected comparison operator after %q", ident)
	}
	lit, numeric, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &cmp{name: ident, op: op, lit: lit, numeric: numeric}, nil
}

func (p *parser) parseIdent() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.pos >= len(p.input) {
		return "", p.errf("expected identifier, got end of input")
	}
	c := p.input[p.pos]
	if !(c == '_' || unicode.IsLetter(rune(c))) {
		return "", p.errf("expected identifier, got %q", c)
	}
	p.pos++
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c == '_' || c == '.' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
			p.pos++
			continue
		}
		break
	}
	return p.input[start:p.pos], nil
}

func (p *parser) parseLiteral() (lit string, numeric bool, err error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return "", false, p.errf("expected literal, got end of input")
	}
	if p.input[p.pos] == '\'' {
		p.pos++
		start := p.pos
		for p.pos < len(p.input) && p.input[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.input) {
			return "", false, p.errf("unterminated string literal")
		}
		lit = p.input[start:p.pos]
		p.pos++ // closing quote
		return lit, false, nil
	}
	start := p.pos
	if p.input[p.pos] == '-' {
		p.pos++
	}
	for p.pos < len(p.input) && unicode.IsDigit(rune(p.input[p.pos])) {
		p.pos++
	}
	if p.pos == start || (p.input[start] == '-' && p.pos == start+1) {
		return "", false, p.errf("expected quoted string or integer literal")
	}
	return p.input[start:p.pos], true, nil
}
