package attr

import "testing"

func TestMonotoneConversion(t *testing.T) {
	m, err := MustParse("a=='1' && (b=='2' || c=='3')").Monotone()
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != MonotoneAnd || len(m.Children) != 2 {
		t.Fatalf("root = %+v", m)
	}
	if m.Children[0].Op != MonotoneLeaf || m.Children[0].Pair.String() != "a:1" {
		t.Fatalf("first child = %+v", m.Children[0])
	}
	if m.Children[1].Op != MonotoneOr || len(m.Children[1].Children) != 2 {
		t.Fatalf("second child = %+v", m.Children[1])
	}
	leaves := m.Leaves()
	if len(leaves) != 3 || leaves[0].String() != "a:1" || leaves[2].String() != "c:3" {
		t.Fatalf("leaves = %v", leaves)
	}
}

func TestMonotoneFlattening(t *testing.T) {
	// a && b && c parses left-nested; the monotone form flattens it.
	m, err := MustParse("a=='1' && b=='2' && c=='3'").Monotone()
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != MonotoneAnd || len(m.Children) != 3 {
		t.Fatalf("flattened AND has %d children", len(m.Children))
	}
	m2, _ := MustParse("a=='1' || b=='2' || c=='3' || d=='4'").Monotone()
	if m2.Op != MonotoneOr || len(m2.Children) != 4 {
		t.Fatalf("flattened OR has %d children", len(m2.Children))
	}
}

func TestMonotoneRejectsNonMonotone(t *testing.T) {
	for _, text := range []string{
		"a!='1'", "!a=='1'", "has(a)", "a<5", "a>='2'",
		"a=='1' && b!='2'", "true", "false",
		"a=='1' || !(b=='2')",
	} {
		if _, err := MustParse(text).Monotone(); err == nil {
			t.Errorf("%q converted, want error", text)
		}
	}
	var nilPred *Predicate
	if _, err := nilPred.Monotone(); err == nil {
		t.Error("nil predicate converted")
	}
}

func TestMonotoneEvalAgreement(t *testing.T) {
	texts := []string{
		"a=='1'",
		"a=='1' && b=='2'",
		"(a=='1' || b=='2') && c=='3'",
	}
	sets := []Set{{}, MustSet("a=1"), MustSet("a=1,c=3"), MustSet("b=2,c=3"), MustSet("a=1,b=2,c=3")}
	for _, text := range texts {
		p := MustParse(text)
		m, err := p.Monotone()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sets {
			if p.Eval(s) != m.Eval(s) {
				t.Errorf("%q: monotone form disagrees on %v", text, s)
			}
		}
	}
}
