package attr

import (
	"errors"
	"fmt"
)

// MonotoneOp is a node kind in a monotone normal form.
type MonotoneOp int

// Monotone node kinds.
const (
	MonotoneLeaf MonotoneOp = iota
	MonotoneAnd
	MonotoneOr
)

// Monotone is a predicate reduced to leaves (attribute equality tests)
// combined by AND/OR — the fragment expressible as a CP-ABE access tree.
// Negations, inequalities and ordered comparisons are not monotone and
// cannot be mapped (revoking by negative condition is exactly what ABE
// cannot do cheaply — part of the §VIII story).
type Monotone struct {
	Op       MonotoneOp
	Pair     AttrPair // MonotoneLeaf only
	Children []*Monotone
}

// ErrNotMonotone reports a predicate outside the monotone fragment.
var ErrNotMonotone = errors.New("attr: predicate is not monotone (only ==, && and || map to ABE policies)")

// Monotone converts the predicate into monotone normal form, or fails with
// ErrNotMonotone. The trivial predicate (true) has no ABE encoding either —
// it matches everyone, which Level 1 handles without cryptography.
func (p *Predicate) Monotone() (*Monotone, error) {
	if p == nil || p.root == nil {
		return nil, errors.New("attr: empty predicate has no monotone form")
	}
	return monotone(p.root)
}

func monotone(n node) (*Monotone, error) {
	switch v := n.(type) {
	case *cmp:
		if v.op != opEq {
			return nil, ErrNotMonotone
		}
		return &Monotone{Op: MonotoneLeaf, Pair: AttrPair{Name: v.name, Value: v.lit}}, nil
	case *binary:
		left, err := monotone(v.left)
		if err != nil {
			return nil, err
		}
		right, err := monotone(v.right)
		if err != nil {
			return nil, err
		}
		op := MonotoneAnd
		if v.op == "||" {
			op = MonotoneOr
		}
		// Flatten nested same-op nodes for compact trees.
		children := make([]*Monotone, 0, 2)
		for _, c := range []*Monotone{left, right} {
			if c.Op == op {
				children = append(children, c.Children...)
			} else {
				children = append(children, c)
			}
		}
		return &Monotone{Op: op, Children: children}, nil
	case *boolLit, *has, *not:
		return nil, ErrNotMonotone
	}
	return nil, fmt.Errorf("attr: unknown node %T", n)
}

// Eval evaluates the monotone form against an attribute set (used to
// cross-check the conversion against the original predicate).
func (m *Monotone) Eval(s Set) bool {
	switch m.Op {
	case MonotoneLeaf:
		return s[m.Pair.Name] == m.Pair.Value
	case MonotoneAnd:
		for _, c := range m.Children {
			if !c.Eval(s) {
				return false
			}
		}
		return true
	case MonotoneOr:
		for _, c := range m.Children {
			if c.Eval(s) {
				return true
			}
		}
		return false
	}
	return false
}

// Leaves returns all attribute pairs referenced, in tree order.
func (m *Monotone) Leaves() []AttrPair {
	if m.Op == MonotoneLeaf {
		return []AttrPair{m.Pair}
	}
	var out []AttrPair
	for _, c := range m.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}
