package attr

import (
	"strings"
	"testing"
)

// TestParseErrorMessages pins the parser's error surface: every malformed
// input must fail with a stable, diagnosable message — callers (and the
// backend's policy API) match on these — and must never panic.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"empty", "", "expected identifier, got end of input"},
		{"operator only", "&&", "expected identifier"},
		{"missing rhs", "position==", "expected literal, got end of input"},
		{"unterminated string", "position=='unterminated", "unterminated string literal"},
		{"unterminated string then more", "a=='x && b=='y'", "trailing input"},
		{"bad operator tilde", "position ~ 'a'", "expected comparison operator after \"position\""},
		{"bad operator single eq", "position = 'a'", "expected comparison operator"},
		{"double negation of nothing", "!!", "expected identifier"},
		{"unclosed paren", "(position=='a'", "expected ')'"},
		{"unopened paren", "position=='a')", "trailing input at offset 13"},
		{"has without paren", "has position", "expected '(' after has"},
		{"has unclosed", "has(position", "expected ')' after has(position"},
		{"has empty", "has()", "expected identifier"},
		{"numeric lhs", "7==7", "expected identifier, got '7'"},
		{"bare minus literal", "n == -", "expected quoted string or integer literal"},
		{"trailing garbage", "position == 'a' extra", "trailing input at offset 16"},
		{"dangling and", "position=='a' &&", "expected identifier, got end of input"},
		{"dangling or", "position=='a' ||", "expected identifier, got end of input"},
		{"deep bang nesting", strings.Repeat("!", 200) + "true", "nested deeper than 64 levels"},
		{"deep paren nesting", strings.Repeat("(", 200) + "true" + strings.Repeat(")", 200), "nested deeper than 64 levels"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse(tc.input)
			if err == nil {
				t.Fatalf("Parse(%q) = %q, want error", tc.input, p.String())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) error = %q, want substring %q", tc.input, err, tc.want)
			}
		})
	}
}

// TestParseDepthLimitBoundary checks that the recursion guard rejects only
// truly pathological nesting: realistic policies stay parseable.
func TestParseDepthLimitBoundary(t *testing.T) {
	// 40 levels of parens plus negations — deeper than any real policy,
	// comfortably under the limit.
	deep := strings.Repeat("!(", 30) + "position=='staff'" + strings.Repeat(")", 30)
	p, err := Parse(deep)
	if err != nil {
		t.Fatalf("Parse rejected legitimate nesting: %v", err)
	}
	if !p.Eval(MustSet("position=staff")) {
		t.Fatal("30 double negations should be the identity")
	}

	// One past the limit must fail; the boundary is exact, so a crafted
	// expression can't blow the stack by a single frame either.
	over := strings.Repeat("!", maxParseDepth) + "true" // atom adds level maxParseDepth+1
	if _, err := Parse(over); err == nil {
		t.Fatalf("Parse accepted %d-deep nesting", maxParseDepth+1)
	}
	under := strings.Repeat("!", maxParseDepth-1) + "true"
	if _, err := Parse(under); err != nil {
		t.Fatalf("Parse rejected %d-deep nesting: %v", maxParseDepth, err)
	}
}

// TestParseNoPanicSweep throws structurally hostile inputs at the parser;
// anything but a clean error (or a clean parse) fails the test via panic.
func TestParseNoPanicSweep(t *testing.T) {
	inputs := []string{
		"'", "''", "'''", "!'", "(!", ")(", "((((", "))))",
		"has(has(x))", "!has", "a==''", "a!=''", "a<'b'", "a<=-",
		"a==5x", "a==--5", "\x00", "a=='\x00'", "π=='x'", "a==π",
		strings.Repeat("a&&", 500) + "a==1",
		strings.Repeat("!(", 500),
		strings.Repeat("has(", 100),
	}
	for _, in := range inputs {
		p, err := Parse(in)
		if err == nil && p == nil {
			t.Fatalf("Parse(%q) returned nil, nil", in)
		}
	}
}
