package attr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSetRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"position=manager",
		"department=X,position=manager",
		"building=B2,department=CS,position=student,year=3",
	}
	for _, text := range cases {
		s, err := ParseSet(text)
		if err != nil {
			t.Fatalf("ParseSet(%q): %v", text, err)
		}
		if got := s.String(); got != text {
			t.Errorf("round trip %q → %q", text, got)
		}
	}
}

func TestParseSetErrors(t *testing.T) {
	for _, text := range []string{"nopair", "=v", "a=1,a=2", "a=1,,b=2"} {
		if _, err := ParseSet(text); err == nil {
			t.Errorf("ParseSet(%q) succeeded, want error", text)
		}
	}
}

func TestSetCloneIndependence(t *testing.T) {
	s := MustSet("a=1,b=2")
	c := s.Clone()
	c["a"] = "9"
	if s["a"] != "1" {
		t.Fatal("Clone aliases original")
	}
	if !s.Equal(MustSet("b=2,a=1")) {
		t.Fatal("Equal is order sensitive")
	}
	if s.Equal(c) {
		t.Fatal("Equal misses difference")
	}
}

func TestPredicateEval(t *testing.T) {
	manager := MustSet("position=manager,department=X")
	student := MustSet("position=student,department=CS,year=3")
	empty := Set{}

	cases := []struct {
		pred string
		set  Set
		want bool
	}{
		// The paper's running example (§II-B).
		{"position=='manager' && department=='X'", manager, true},
		{"position=='manager' && department=='X'", student, false},
		{"position=='manager' && department=='X'", empty, false},
		{"position=='manager' || position=='student'", student, true},
		{"position!='manager'", student, true},
		{"position!='manager'", manager, false},
		{"position!='manager'", empty, true}, // absent attribute satisfies !=
		{"has(year)", student, true},
		{"has(year)", manager, false},
		{"!has(year)", manager, true},
		{"year==3", student, true},
		{"year>=2", student, true},
		{"year>3", student, false},
		{"year<5 && year>1", student, true},
		{"year==3", manager, false}, // absent numeric attribute
		{"true", empty, true},
		{"false", manager, false},
		{"(position=='manager' || position=='director') && department=='X'", manager, true},
		{"!(position=='manager' && department=='X')", manager, false},
		{"position<'n'", manager, true},  // string ordering: "manager" < "n"
		{"position>='s'", student, true}, // "student" >= "s"
	}
	for _, c := range cases {
		p, err := Parse(c.pred)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.pred, err)
		}
		if got := p.Eval(c.set); got != c.want {
			t.Errorf("Eval(%q, %v) = %v, want %v", c.pred, c.set, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"", "position==", "position=='unterminated", "&&", "position=='a' &&",
		"(position=='a'", "position ~ 'a'", "has(", "has()", "position=='a')",
		"7==7", "position == 'a' extra",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestCanonicalFormReparses(t *testing.T) {
	preds := []string{
		"position == 'manager'   &&  department=='X'",
		"a=='1' || b=='2' && c=='3'",
		"(a=='1' || b=='2') && c=='3'",
		"!(a=='1' || b=='2')",
		"!has(x) && y != 'q'",
		"n>=10 && n<20",
	}
	sets := []Set{
		{}, MustSet("a=1"), MustSet("b=2,c=3"), MustSet("a=1,c=3"),
		MustSet("x=1,y=q"), MustSet("n=15"), MustSet("n=20"),
		MustSet("position=manager,department=X"),
	}
	for _, text := range preds {
		p1 := MustParse(text)
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", p1.String(), err)
		}
		for _, s := range sets {
			if p1.Eval(s) != p2.Eval(s) {
				t.Errorf("%q: canonical form %q disagrees on %v", text, p1.String(), s)
			}
		}
	}
}

func TestAttributes(t *testing.T) {
	p := MustParse("position=='manager' && (department=='X' || department=='Y') && has(badge)")
	got := p.Attributes()
	want := []string{"badge", "department", "position"}
	if len(got) != len(want) {
		t.Fatalf("Attributes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Attributes = %v, want %v", got, want)
		}
	}
}

func TestConjunctionDetection(t *testing.T) {
	conj := MustParse("a=='1' && b=='2' && c=='3'")
	if !conj.IsConjunction() {
		t.Fatal("conjunction not detected")
	}
	pairs, ok := conj.EqualityPairs()
	if !ok || len(pairs) != 3 {
		t.Fatalf("EqualityPairs = %v, %v", pairs, ok)
	}
	if pairs[0].String() != "a:1" || pairs[2].String() != "c:3" {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, text := range []string{"a=='1' || b=='2'", "a!='1'", "!a=='1'", "has(a)", "a<3"} {
		if MustParse(text).IsConjunction() {
			t.Errorf("%q wrongly detected as conjunction", text)
		}
		if _, ok := MustParse(text).EqualityPairs(); ok {
			t.Errorf("%q EqualityPairs should fail", text)
		}
	}
}

func TestNilPredicateMatchesAll(t *testing.T) {
	var p *Predicate
	if !p.Eval(MustSet("a=1")) {
		t.Fatal("nil predicate should match everything")
	}
	if p.String() != "true" {
		t.Fatalf("nil predicate String = %q", p.String())
	}
	if p.Attributes() != nil {
		t.Fatal("nil predicate has attributes")
	}
	if !True().Eval(Set{}) {
		t.Fatal("True() rejects")
	}
}

// randomPredText builds a random predicate over a small attribute universe.
func randomPredText(rng *rand.Rand, depth int) string {
	if depth == 0 || rng.Intn(3) == 0 {
		name := string(rune('a' + rng.Intn(4)))
		switch rng.Intn(4) {
		case 0:
			return name + "=='" + string(rune('0'+rng.Intn(3))) + "'"
		case 1:
			return name + "!='" + string(rune('0'+rng.Intn(3))) + "'"
		case 2:
			return "has(" + name + ")"
		default:
			ops := []string{"<", "<=", ">", ">="}
			return name + ops[rng.Intn(4)] + string(rune('0'+rng.Intn(3)))
		}
	}
	l := randomPredText(rng, depth-1)
	r := randomPredText(rng, depth-1)
	op := " && "
	if rng.Intn(2) == 0 {
		op = " || "
	}
	out := l + op + r
	if rng.Intn(2) == 0 {
		out = "(" + out + ")"
	}
	if rng.Intn(4) == 0 {
		out = "!(" + out + ")"
	}
	return out
}

// Property: for random predicates, the canonical rendering reparses to a
// predicate that agrees on random attribute sets.
func TestCanonicalizationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		text := randomPredText(rng, 3)
		p1, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("reparse of %q (canonical %q): %v", text, p1.String(), err)
		}
		for j := 0; j < 20; j++ {
			s := Set{}
			for _, name := range []string{"a", "b", "c", "d"} {
				if rng.Intn(2) == 0 {
					s[name] = string(rune('0' + rng.Intn(3)))
				}
			}
			if p1.Eval(s) != p2.Eval(s) {
				t.Fatalf("%q vs canonical %q disagree on %v", text, p1.String(), s)
			}
		}
	}
}

// Property: set round trip through String/ParseSet for letter-only pairs.
func TestSetRoundTripProperty(t *testing.T) {
	sanitize := func(in string) string {
		var b strings.Builder
		for _, r := range in {
			if r >= 'a' && r <= 'z' {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	f := func(keys, vals [3]string) bool {
		s := Set{}
		for i := range keys {
			k, v := sanitize(keys[i]), sanitize(vals[i])
			if k == "" {
				continue
			}
			s[k] = v
		}
		got, err := ParseSet(s.String())
		return err == nil && got.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
