package attr

import "testing"

func BenchmarkParse(b *testing.B) {
	const text = "position=='manager' && (department=='X' || department=='Y') && has(badge)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEval(b *testing.B) {
	p := MustParse("position=='manager' && (department=='X' || department=='Y') && has(badge)")
	s := MustSet("position=manager,department=Y,badge=77")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Eval(s) {
			b.Fatal("eval failed")
		}
	}
}
