// Package attr implements the attribute model underlying Argus policies:
// typed attribute sets carried by subject/object profiles, and the predicate
// language used by access-control policies and Level-2 PROF variants, e.g.
//
//	position=='manager' && department=='X'
//
// (§II-B of the paper). Predicates are parsed into an AST that can be
// evaluated against an attribute set, canonicalized, and serialized. The same
// predicates drive the CP-ABE baseline, where the number of attributes
// referenced by a policy determines decryption cost (Fig 6c).
package attr

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a collection of named attributes. Values are strings; numeric
// comparisons in predicates parse values as integers on demand.
//
// Non-sensitive attributes (e.g. position, department) live in signed PROFs
// and may be publicly disclosed; sensitive attributes never appear in any
// message — they exist only in the backend's database, where they map to
// secret groups (§II-B, §VI).
type Set map[string]string

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Names returns the attribute names in sorted order.
func (s Set) Names() []string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the set deterministically as "k1=v1,k2=v2" with sorted keys.
func (s Set) String() string {
	var b strings.Builder
	for i, k := range s.Names() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s[k])
	}
	return b.String()
}

// ParseSet parses the "k1=v1,k2=v2" form produced by String. Whitespace
// around keys and values is trimmed. An empty string yields an empty set.
func ParseSet(text string) (Set, error) {
	s := make(Set)
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, pair := range strings.Split(text, ",") {
		k, v, ok := strings.Cut(pair, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" {
			return nil, fmt.Errorf("attr: malformed pair %q", pair)
		}
		if _, dup := s[k]; dup {
			return nil, fmt.Errorf("attr: duplicate attribute %q", k)
		}
		s[k] = v
	}
	return s, nil
}

// MustSet is ParseSet that panics on error; for tests and examples.
func MustSet(text string) Set {
	s, err := ParseSet(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Equal reports whether two sets contain exactly the same attributes.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}
