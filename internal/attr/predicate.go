package attr

import (
	"sort"
	"strconv"
	"strings"
)

// Predicate is a parsed policy expression over an attribute set, e.g.
// "position=='manager' && department=='X'". It is immutable after parsing.
type Predicate struct {
	root node
	text string // canonical rendering
}

// node is one AST node of a predicate.
type node interface {
	eval(s Set) bool
	render(b *strings.Builder)
	collect(names map[string]bool)
}

// Eval reports whether the attribute set satisfies the predicate.
// Attributes absent from the set fail every comparison (and satisfy "!=" —
// the predicate compares against the empty value).
func (p *Predicate) Eval(s Set) bool {
	if p == nil || p.root == nil {
		return true // the empty predicate matches everyone (Level 1 semantics)
	}
	return p.root.eval(s)
}

// String returns the canonical text form; parsing it again yields an
// equivalent predicate.
func (p *Predicate) String() string {
	if p == nil || p.root == nil {
		return "true"
	}
	return p.text
}

// Attributes returns the sorted set of attribute names the predicate
// references. The CP-ABE baseline's policy size — and thus its decryption
// cost (Fig 6c) — is the length of this list.
func (p *Predicate) Attributes() []string {
	if p == nil || p.root == nil {
		return nil
	}
	names := make(map[string]bool)
	p.root.collect(names)
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsConjunction reports whether the predicate is a pure conjunction of
// equality tests (the common enterprise-policy shape, and the only shape the
// ABE baseline's AND-policies accept directly).
func (p *Predicate) IsConjunction() bool {
	if p == nil || p.root == nil {
		return true
	}
	return isConj(p.root)
}

func isConj(n node) bool {
	switch v := n.(type) {
	case *boolLit:
		return v.val
	case *cmp:
		return v.op == opEq
	case *binary:
		return v.op == "&&" && isConj(v.left) && isConj(v.right)
	}
	return false
}

// EqualityPairs returns the attribute name/value pairs of a conjunction
// predicate, sorted by name. It returns ok=false if the predicate is not a
// pure conjunction of equality tests.
func (p *Predicate) EqualityPairs() (pairs []AttrPair, ok bool) {
	if p == nil || p.root == nil {
		return nil, true
	}
	if !p.IsConjunction() {
		return nil, false
	}
	var walk func(n node)
	walk = func(n node) {
		switch v := n.(type) {
		case *cmp:
			pairs = append(pairs, AttrPair{Name: v.name, Value: v.lit})
		case *binary:
			walk(v.left)
			walk(v.right)
		}
	}
	walk(p.root)
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Name != pairs[j].Name {
			return pairs[i].Name < pairs[j].Name
		}
		return pairs[i].Value < pairs[j].Value
	})
	return pairs, true
}

// AttrPair is one name=value equality requirement.
type AttrPair struct {
	Name  string
	Value string
}

// String renders the pair as "name:value" — the attribute-token form used by
// the ABE baseline (one token per ABE key component).
func (a AttrPair) String() string { return a.Name + ":" + a.Value }

// --- AST nodes ---

type boolLit struct{ val bool }

func (n *boolLit) eval(Set) bool { return n.val }
func (n *boolLit) render(b *strings.Builder) {
	if n.val {
		b.WriteString("true")
	} else {
		b.WriteString("false")
	}
}
func (n *boolLit) collect(map[string]bool) {}

type cmpOp int

const (
	opEq cmpOp = iota
	opNe
	opLt
	opLe
	opGt
	opGe
)

var opText = map[cmpOp]string{opEq: "==", opNe: "!=", opLt: "<", opLe: "<=", opGt: ">", opGe: ">="}

type cmp struct {
	name    string
	op      cmpOp
	lit     string
	numeric bool // literal was an unquoted integer: compare numerically
}

func (n *cmp) eval(s Set) bool {
	got, present := s[n.name]
	if n.numeric {
		if !present {
			return n.op == opNe
		}
		g, err := strconv.ParseInt(got, 10, 64)
		if err != nil {
			return n.op == opNe
		}
		w, _ := strconv.ParseInt(n.lit, 10, 64)
		switch n.op {
		case opEq:
			return g == w
		case opNe:
			return g != w
		case opLt:
			return g < w
		case opLe:
			return g <= w
		case opGt:
			return g > w
		case opGe:
			return g >= w
		}
		return false
	}
	switch n.op {
	case opEq:
		return present && got == n.lit
	case opNe:
		return !present || got != n.lit
	case opLt:
		return present && got < n.lit
	case opLe:
		return present && got <= n.lit
	case opGt:
		return present && got > n.lit
	case opGe:
		return present && got >= n.lit
	}
	return false
}

func (n *cmp) render(b *strings.Builder) {
	b.WriteString(n.name)
	b.WriteString(opText[n.op])
	if n.numeric {
		b.WriteString(n.lit)
	} else {
		b.WriteByte('\'')
		b.WriteString(n.lit)
		b.WriteByte('\'')
	}
}
func (n *cmp) collect(names map[string]bool) { names[n.name] = true }

type has struct{ name string }

func (n *has) eval(s Set) bool {
	_, ok := s[n.name]
	return ok
}
func (n *has) render(b *strings.Builder) {
	b.WriteString("has(")
	b.WriteString(n.name)
	b.WriteByte(')')
}
func (n *has) collect(names map[string]bool) { names[n.name] = true }

type not struct{ inner node }

func (n *not) eval(s Set) bool { return !n.inner.eval(s) }
func (n *not) render(b *strings.Builder) {
	b.WriteByte('!')
	if _, isBin := n.inner.(*binary); isBin {
		b.WriteByte('(')
		n.inner.render(b)
		b.WriteByte(')')
	} else {
		n.inner.render(b)
	}
}
func (n *not) collect(names map[string]bool) { n.inner.collect(names) }

type binary struct {
	op          string // "&&" or "||"
	left, right node
}

func (n *binary) eval(s Set) bool {
	if n.op == "&&" {
		return n.left.eval(s) && n.right.eval(s)
	}
	return n.left.eval(s) || n.right.eval(s)
}

func (n *binary) render(b *strings.Builder) {
	renderChild := func(c node) {
		if cb, ok := c.(*binary); ok && cb.op != n.op {
			b.WriteByte('(')
			c.render(b)
			b.WriteByte(')')
			return
		}
		c.render(b)
	}
	renderChild(n.left)
	b.WriteString(" " + n.op + " ")
	renderChild(n.right)
}

func (n *binary) collect(names map[string]bool) {
	n.left.collect(names)
	n.right.collect(names)
}
