package attr_test

import (
	"fmt"

	"argus/internal/attr"
)

// Example shows the policy predicate language from §II-B of the paper.
func Example() {
	pred := attr.MustParse("position=='manager' && department=='X'")
	manager := attr.MustSet("position=manager,department=X")
	staff := attr.MustSet("position=staff,department=X")
	fmt.Println(pred.Eval(manager))
	fmt.Println(pred.Eval(staff))
	fmt.Println(pred.Attributes())
	// Output:
	// true
	// false
	// [department position]
}

// ExamplePredicate_Monotone converts a predicate to the monotone form the
// ABE baseline compiles into access trees.
func ExamplePredicate_Monotone() {
	pred := attr.MustParse("(position=='manager' && department=='X') || clearance=='top'")
	m, err := pred.Monotone()
	fmt.Println(err, len(m.Children))

	_, err = attr.MustParse("position!='visitor'").Monotone()
	fmt.Println(err)
	// Output:
	// <nil> 2
	// attr: predicate is not monotone (only ==, && and || map to ABE policies)
}
