// Package enc provides the small deterministic binary codec used by Argus
// credentials and wire messages: big-endian fixed-width integers and
// length-prefixed byte strings, with a reader that accumulates a single error
// so decoders can be written without per-field error checks.
package enc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a decoder runs past the end of input.
var ErrTruncated = errors.New("enc: truncated input")

// Writer builds a byte buffer of deterministically encoded fields.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity hint n.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends a single byte.
func (w *Writer) U8(v byte) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// I64 appends a big-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Raw appends b verbatim (fixed-width field; the reader must know the width).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Bytes16 appends a 2-byte length prefix followed by b. Panics if b exceeds
// 64 KiB — wire fields never do.
func (w *Writer) Bytes16(b []byte) {
	if len(b) > 0xFFFF {
		panic(fmt.Sprintf("enc: field too long (%d bytes)", len(b)))
	}
	w.U16(uint16(len(b)))
	w.Raw(b)
}

// Bytes32 appends a 4-byte length prefix followed by b.
func (w *Writer) Bytes32(b []byte) {
	if len(b) > 0x7FFFFFFF {
		panic("enc: field too long")
	}
	w.U32(uint32(len(b)))
	w.Raw(b)
}

// String16 appends a 2-byte length prefix followed by the string bytes.
func (w *Writer) String16(s string) { w.Bytes16([]byte(s)) }

// Reader decodes fields written by Writer. The first decoding error sticks;
// check Err (or use Done) after reading all fields.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// Done returns an error if decoding failed or input remains unconsumed.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("enc: %d trailing bytes", len(r.buf)-r.pos)
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Raw reads exactly n bytes (a fixed-width field). The returned slice is a
// copy and safe to retain.
func (r *Reader) Raw(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Bytes16 reads a 2-byte length-prefixed byte string (copied).
func (r *Reader) Bytes16() []byte {
	n := int(r.U16())
	return r.Raw(n)
}

// Bytes32 reads a 4-byte length-prefixed byte string (copied).
func (r *Reader) Bytes32() []byte {
	n := int(r.U32())
	return r.Raw(n)
}

// String16 reads a 2-byte length-prefixed string.
func (r *Reader) String16() string { return string(r.Bytes16()) }
