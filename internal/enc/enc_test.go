package enc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xAB)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.I64(-42)

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %x", got)
	}
	if got := r.U16(); got != 0xBEEF {
		t.Errorf("U16 = %x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %x", got)
	}
	if got := r.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

func TestBytesAndStrings(t *testing.T) {
	w := NewWriter(0)
	w.Bytes16([]byte("alpha"))
	w.Bytes32([]byte("beta"))
	w.String16("gamma")
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.Bytes16(); !bytes.Equal(got, []byte("alpha")) {
		t.Errorf("Bytes16 = %q", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte("beta")) {
		t.Errorf("Bytes32 = %q", got)
	}
	if got := r.String16(); got != "gamma" {
		t.Errorf("String16 = %q", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Raw = %v", got)
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

func TestEmptyFields(t *testing.T) {
	w := NewWriter(0)
	w.Bytes16(nil)
	w.String16("")
	r := NewReader(w.Bytes())
	if got := r.Bytes16(); len(got) != 0 {
		t.Errorf("empty Bytes16 = %v", got)
	}
	if got := r.String16(); got != "" {
		t.Errorf("empty String16 = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Error(err)
	}
}

func TestTruncationSticksAsError(t *testing.T) {
	w := NewWriter(0)
	w.U32(7)
	r := NewReader(w.Bytes()[:2])
	if r.U32() != 0 {
		t.Error("truncated U32 returned data")
	}
	if r.Err() != ErrTruncated {
		t.Errorf("Err = %v", r.Err())
	}
	// Subsequent reads stay zero and do not panic.
	if r.U64() != 0 || r.U8() != 0 || r.Bytes16() != nil {
		t.Error("reads after error returned data")
	}
	if r.Done() != ErrTruncated {
		t.Errorf("Done = %v", r.Done())
	}
}

func TestLengthPrefixBeyondInput(t *testing.T) {
	w := NewWriter(0)
	w.U16(1000) // claims 1000 bytes follow
	w.Raw([]byte("short"))
	r := NewReader(w.Bytes())
	if r.Bytes16() != nil {
		t.Error("overlong prefix returned data")
	}
	if r.Err() == nil {
		t.Error("no error for overlong prefix")
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	w := NewWriter(0)
	w.U8(1)
	w.U8(2)
	r := NewReader(w.Bytes())
	r.U8()
	if err := r.Done(); err == nil {
		t.Error("trailing byte not detected")
	}
	if r.Remaining() != 1 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestRawReturnsCopy(t *testing.T) {
	src := []byte{9, 9, 9}
	r := NewReader(src)
	got := r.Raw(3)
	src[0] = 1
	if got[0] != 9 {
		t.Error("Raw aliases input")
	}
}

func TestOversizeFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bytes16 with 64KiB+1 did not panic")
		}
	}()
	NewWriter(0).Bytes16(make([]byte, 0x10000))
}

// Property: arbitrary field sequences round-trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(a byte, b uint16, c uint32, d uint64, e int64, blob []byte, s string) bool {
		if len(blob) > 0xFFFF || len(s) > 0xFFFF {
			return true
		}
		w := NewWriter(0)
		w.U8(a)
		w.U16(b)
		w.U32(c)
		w.U64(d)
		w.I64(e)
		w.Bytes16(blob)
		w.String16(s)
		r := NewReader(w.Bytes())
		ok := r.U8() == a && r.U16() == b && r.U32() == c && r.U64() == d && r.I64() == e
		gotBlob := r.Bytes16()
		gotStr := r.String16()
		if !ok || !bytes.Equal(gotBlob, blob) && !(len(blob) == 0 && len(gotBlob) == 0) || gotStr != s {
			return false
		}
		return r.Done() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
