package acl

import (
	"fmt"
	"testing"
)

func TestGrantAndDiscover(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.AddObject(fmt.Sprintf("lock-%d", i))
	}
	n, err := s.GrantAccess("alice", []string{"lock-0", "lock-1", "lock-2"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("grant notified %d, want N = 3", n)
	}
	o0, _ := s.Object("lock-0")
	o4, _ := s.Object("lock-4")
	if !o0.MayDiscover("alice") {
		t.Fatal("granted object rejects alice")
	}
	if o4.MayDiscover("alice") {
		t.Fatal("ungranted object admits alice")
	}
	if o0.MayDiscover("bob") {
		t.Fatal("unknown subject admitted")
	}
}

func TestGrantIdempotent(t *testing.T) {
	s := New()
	s.AddObject("o")
	s.GrantAccess("alice", []string{"o"})
	n, _ := s.GrantAccess("alice", []string{"o"})
	if n != 0 {
		t.Fatalf("re-grant notified %d, want 0", n)
	}
}

func TestRevokeNotifiesAllGrantedObjects(t *testing.T) {
	s := New()
	objs := make([]string, 100)
	for i := range objs {
		objs[i] = fmt.Sprintf("obj-%03d", i)
		s.AddObject(objs[i])
	}
	s.GrantAccess("alice", objs)
	notified := s.RevokeSubject("alice")
	// Table I: removing a subject costs N notifications.
	if len(notified) != 100 {
		t.Fatalf("revocation notified %d objects, want N = 100", len(notified))
	}
	for _, oid := range objs {
		o, _ := s.Object(oid)
		if o.MayDiscover("alice") {
			t.Fatalf("object %s still admits alice", oid)
		}
	}
	// Second revocation is a no-op.
	if len(s.RevokeSubject("alice")) != 0 {
		t.Fatal("double revocation notified objects")
	}
}

func TestGrantUnknownObject(t *testing.T) {
	s := New()
	if _, err := s.GrantAccess("alice", []string{"ghost"}); err == nil {
		t.Fatal("grant to unknown object succeeded")
	}
	if _, err := s.Object("ghost"); err == nil {
		t.Fatal("unknown object returned")
	}
}

func TestACLSizeGrowsWithSubjects(t *testing.T) {
	// The structural weakness vs Argus: the object's state is linear in the
	// number of authorized individuals, not categories.
	s := New()
	s.AddObject("door")
	for i := 0; i < 50; i++ {
		s.GrantAccess(fmt.Sprintf("user-%d", i), []string{"door"})
	}
	o, _ := s.Object("door")
	if o.Size() != 50 {
		t.Fatalf("ACL size = %d, want 50", o.Size())
	}
}
