// Package acl implements the ID-based access-control-list baseline of §VIII:
// every object locally stores the enumerated identities of the subjects
// allowed to discover it. Discovery is a trivial membership check; the cost
// of the scheme is churn — adding or removing a subject requires notifying
// every one of the N objects she can access, which is what Table I charges
// against it.
package acl

import (
	"fmt"
	"sort"
)

// System is a deployment of ID-ACL objects.
type System struct {
	objects map[string]*ObjectACL
	// grants remembers which objects each subject was granted, so revocation
	// knows whom to notify.
	grants map[string]map[string]bool
}

// ObjectACL is one object's local access list.
type ObjectACL struct {
	ID      string
	allowed map[string]bool
}

// MayDiscover reports whether the subject is on the object's list — the
// entirety of the baseline's discovery-time policy check.
func (o *ObjectACL) MayDiscover(subject string) bool { return o.allowed[subject] }

// Size returns the number of enumerated identities the object stores.
func (o *ObjectACL) Size() int { return len(o.allowed) }

// New creates an empty deployment.
func New() *System {
	return &System{
		objects: make(map[string]*ObjectACL),
		grants:  make(map[string]map[string]bool),
	}
}

// AddObject registers an object.
func (s *System) AddObject(id string) *ObjectACL {
	o := &ObjectACL{ID: id, allowed: make(map[string]bool)}
	s.objects[id] = o
	return o
}

// Object returns a registered object.
func (s *System) Object(id string) (*ObjectACL, error) {
	o, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("acl: unknown object %q", id)
	}
	return o, nil
}

// GrantAccess adds the subject to the ACLs of the given objects — the
// "add a subject" operation. The returned count is the updating overhead:
// one notification per object (N in Table I).
func (s *System) GrantAccess(subject string, objects []string) (notified int, err error) {
	for _, oid := range objects {
		o, ok := s.objects[oid]
		if !ok {
			return notified, fmt.Errorf("acl: unknown object %q", oid)
		}
		if !o.allowed[subject] {
			o.allowed[subject] = true
			notified++
		}
		if s.grants[subject] == nil {
			s.grants[subject] = make(map[string]bool)
		}
		s.grants[subject][oid] = true
	}
	return notified, nil
}

// RevokeSubject removes the subject from every ACL that lists her — the
// "remove a subject" operation, again N notifications.
func (s *System) RevokeSubject(subject string) (notified []string) {
	for oid := range s.grants[subject] {
		if o, ok := s.objects[oid]; ok && o.allowed[subject] {
			delete(o.allowed, subject)
			notified = append(notified, oid)
		}
	}
	delete(s.grants, subject)
	sort.Strings(notified)
	return notified
}
