package chaos

import (
	"fmt"
	"testing"
	"time"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/wire"
)

// mixedLevels is the canonical deployment shape: all three visibility levels
// present at once (the 3-in-1 protocol's whole point).
var mixedLevels = []backend.Level{
	backend.L1, backend.L2, backend.L3, backend.L3, backend.L2, backend.L1,
}

// TestCompletenessUnderLoss is the headline property: below the loss
// threshold the retransmission machinery makes discovery complete — every
// object found at its provisioned level — and repeating a run with identical
// seeds reproduces identical results.
func TestCompletenessUnderLoss(t *testing.T) {
	for _, loss := range []float64{0.1, 0.2} {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("loss=%.1f/seed=%d", loss, seed), func(t *testing.T) {
				sc := Scenario{
					Seed:   seed,
					Levels: mixedLevels,
					Faults: netsim.FaultModel{Loss: loss},
					Retry:  core.DefaultRetry(),
					Fellow: true,
				}
				out, err := Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				if missing := out.Missing(mixedLevels); len(missing) > 0 {
					t.Fatalf("incomplete discovery (FaultLost=%d, retries should cover %v loss):\n%v",
						out.Stats.FaultLost, loss, missing)
				}
				if dups := out.Duplicates(); len(dups) > 0 {
					t.Fatalf("duplicate discovery records:\n%v", dups)
				}
				if out.Stats.FaultLost == 0 {
					t.Fatal("fault injection inactive: no frames were lost at 10%+ loss")
				}
				again, err := Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				if out.Fingerprint() != again.Fingerprint() {
					t.Fatalf("identical seeds diverged:\nrun1:\n%srun2:\n%s",
						out.Fingerprint(), again.Fingerprint())
				}
				if out.VirtualTime != again.VirtualTime {
					t.Fatalf("virtual end times diverged: %v vs %v", out.VirtualTime, again.VirtualTime)
				}
			})
		}
	}
}

// TestGracefulDegradationAtExtremeLoss: at 50% and 100% loss — with
// corruption, duplication and reordering layered on top — the run must
// terminate in bounded virtual time with zero leaked sessions on either
// side; at total loss it must find exactly nothing.
func TestGracefulDegradationAtExtremeLoss(t *testing.T) {
	for _, loss := range []float64{0.5, 1.0} {
		t.Run(fmt.Sprintf("loss=%.1f", loss), func(t *testing.T) {
			out, err := Run(Scenario{
				Seed:   7,
				Levels: mixedLevels,
				Faults: netsim.FaultModel{
					Loss:          loss,
					Corrupt:       0.2,
					Duplicate:     0.2,
					ReorderJitter: 25 * time.Millisecond,
				},
				Retry:  core.DefaultRetry(),
				Fellow: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.SubjectPending != 0 {
				t.Fatalf("subject leaked %d sessions", out.SubjectPending)
			}
			if out.ObjectPending != 0 {
				t.Fatalf("objects leaked %d sessions", out.ObjectPending)
			}
			// Bounded virtual clock: rounds × (retry tail + SessionTTL) with
			// slack — a stuck retransmission loop would blow far past this.
			const clockBudget = 60 * time.Second
			if out.VirtualTime > clockBudget {
				t.Fatalf("virtual clock ran to %v (budget %v) — retransmission not terminating",
					out.VirtualTime, clockBudget)
			}
			if loss == 1.0 && len(out.Discoveries) != 0 {
				t.Fatalf("discovered %d services across a totally lossy network", len(out.Discoveries))
			}
		})
	}
}

// TestCrashRecoveryDuringRound: an object that crashes through the initial
// QUE1 is still discovered in the same round — a later QUE1 rebroadcast
// reaches it after recovery.
func TestCrashRecoveryDuringRound(t *testing.T) {
	levels := []backend.Level{backend.L2, backend.L2, backend.L2}
	out, err := Run(Scenario{
		Seed:   11,
		Levels: levels,
		Retry:  core.DefaultRetry(),
		// Crash object 0 from the start through the first QUE1 and its first
		// rebroadcast (350 ms); the 1050 ms rebroadcast finds it recovered.
		Crashes: []Crash{{Object: 0, At: 0, For: 600 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if missing := out.Missing(levels); len(missing) > 0 {
		t.Fatalf("crashed-then-recovered object not rediscovered:\n%v", missing)
	}
	if out.Stats.CrashDrops == 0 {
		t.Fatal("crash window never dropped a frame — schedule ineffective")
	}
}

// TestCase7IndistinguishabilityUnderLoss re-runs the attack-test Case 7
// property with 20% loss and retransmission live: every QUE2 on the air
// (original or resend) must have one shape net of CERT_S whether the subject
// holds a real or a cover-up key, and every RES2 from the double-faced L3
// object must have one length whether it answers a fellow or not.
func TestCase7IndistinguishabilityUnderLoss(t *testing.T) {
	shapes := func(fellow bool) (que2 map[int]bool, res2 map[int]bool) {
		que2, res2 = make(map[int]bool), make(map[int]bool)
		_, err := Run(Scenario{
			Seed:   5,
			Levels: []backend.Level{backend.L3},
			Faults: netsim.FaultModel{Loss: 0.2},
			Retry:  core.DefaultRetry(),
			Fellow: fellow,
			Snoop: func(_, _ netsim.NodeID, p []byte) {
				m, err := wire.Decode(p)
				if err != nil {
					return
				}
				switch v := m.(type) {
				case *wire.QUE2:
					if len(v.MACS3) != suite.MACSize {
						t.Error("v3.0 QUE2 on the air without MAC_{S,3}")
					}
					que2[len(p)-len(v.CertS)] = true
				case *wire.RES2:
					res2[len(p)] = true
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(que2) == 0 || len(res2) == 0 {
			t.Fatalf("no QUE2/RES2 captured (fellow=%v)", fellow)
		}
		return que2, res2
	}
	eq := func(a, b map[int]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	fq, fr := shapes(true)
	cq, cr := shapes(false)
	if len(fq) != 1 || len(fr) != 1 {
		t.Errorf("retransmitted copies changed shape: que2 lengths %v, res2 lengths %v", fq, fr)
	}
	if !eq(fq, cq) {
		t.Errorf("QUE2 shapes differ under loss: fellow %v vs cover-up %v (net of CERT)", fq, cq)
	}
	if !eq(fr, cr) {
		t.Errorf("RES2 lengths differ under loss: fellow %v vs non-fellow %v — length leaks Level 3", fr, cr)
	}
}

// TestDuplicationLeavesResultsExactlyOnce: heavy link-layer duplication plus
// loss must not double-record discoveries — handler idempotency, not luck.
func TestDuplicationLeavesResultsExactlyOnce(t *testing.T) {
	out, err := Run(Scenario{
		Seed:   13,
		Levels: mixedLevels,
		Faults: netsim.FaultModel{Loss: 0.1, Duplicate: 0.4},
		Retry:  core.DefaultRetry(),
		Fellow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.FaultDuplicated == 0 {
		t.Fatal("duplication never fired")
	}
	if dups := out.Duplicates(); len(dups) > 0 {
		t.Fatalf("duplicate discovery records:\n%v", dups)
	}
	if missing := out.Missing(mixedLevels); len(missing) > 0 {
		t.Fatalf("incomplete under duplication+loss:\n%v", missing)
	}
}
