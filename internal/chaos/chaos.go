// Package chaos is a property-based fault-injection harness for the Argus
// discovery protocol: it deploys a provisioned testbed (internal/exp) on a
// faulty ground network (netsim.FaultModel) with retransmission enabled
// (core.RetryPolicy) and exposes the run's observable outcome — discoveries,
// leaked sessions, fault counters, final virtual time — so tests can sweep
// seeds × loss rates × levels and assert the paper-level properties:
//
//   - eventual completeness: below a loss threshold, every provisioned object
//     is discovered at its provisioned level, and repeated runs of one seed
//     produce identical results (the simulator stays deterministic with
//     faults on);
//   - graceful degradation: at any loss rate — including total loss — the
//     run terminates in bounded virtual time with zero leaked sessions and
//     no panics;
//   - indistinguishability under retransmission: the Case 7 traffic-shape
//     equality (attack tests) still holds when frames are being resent.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/exp"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/transport"
	"argus/internal/wire"
)

// Crash schedules a crash/recovery window for one object.
type Crash struct {
	Object int           // index into Scenario.Levels
	At     time.Duration // window start (virtual time)
	For    time.Duration // window length
}

// Scenario is one chaos run: a deployment shape plus the fault environment.
type Scenario struct {
	Seed      int64
	FaultSeed int64 // 0: derived from Seed (netsim default)
	Levels    []backend.Level
	Version   wire.Version // 0: v3.0
	Faults    netsim.FaultModel
	Retry     core.RetryPolicy
	Fellow    bool // subject holds the covert group key of L3 objects
	TTL       int  // hop TTL for QUE1 (0: 1)
	Crashes   []Crash
	Registry  *obs.Registry
	// Snoop, when set, is installed on the network before discovery starts
	// (eavesdropper taps for indistinguishability properties).
	Snoop func(from, to netsim.NodeID, payload []byte)
}

// Outcome is everything a property can assert about a finished run.
type Outcome struct {
	Deployment     *exp.Deployment
	Discoveries    []core.Discovery
	VirtualTime    time.Duration // final virtual clock — bounded ⇒ not stuck
	Stats          netsim.Stats
	SubjectPending int // leaked subject sessions after the final drain
	ObjectPending  int // leaked object sessions, summed over all objects
}

// Run executes the scenario: deploy, schedule crashes, DiscoverAll (one
// round per held group key), and drain every remaining timer so session
// expiry has fired before leaks are counted.
func Run(s Scenario) (*Outcome, error) {
	d, err := exp.Deploy(exp.DeployConfig{
		Levels:    s.Levels,
		Version:   s.Version,
		Seed:      s.Seed,
		FaultSeed: s.FaultSeed,
		Faults:    s.Faults,
		Retry:     s.Retry,
		Fellow:    s.Fellow,
		Registry:  s.Registry,
	})
	if err != nil {
		return nil, err
	}
	if s.Snoop != nil {
		d.Net.Snoop(s.Snoop)
	}
	for _, c := range s.Crashes {
		d.Net.ScheduleCrash(d.ObjNode[c.Object], c.At, c.For)
	}
	ttl := s.TTL
	if ttl < 1 {
		ttl = 1
	}
	if err := d.Subject.DiscoverAll(ttl, func() { d.Net.Run(0) }); err != nil {
		return nil, err
	}
	d.Net.Run(0) // outstanding expiry timers of the last round

	out := &Outcome{
		Deployment:     d,
		Discoveries:    d.Subject.Results(),
		VirtualTime:    d.Net.Now(),
		Stats:          d.Net.Stats(),
		SubjectPending: d.Subject.PendingSessions(),
	}
	for _, o := range d.Objects {
		out.ObjectPending += o.PendingSessions()
	}
	return out, nil
}

// Fingerprint canonicalizes the run's results for run-to-run comparison:
// the sorted multiset of (node, level, round) records. Node IDs and the
// round sequence are allocation-order deterministic; certificate identities
// are not (fresh keys per deployment), so they are deliberately excluded.
func (o *Outcome) Fingerprint() string {
	lines := make([]string, len(o.Discoveries))
	for i, d := range o.Discoveries {
		lines[i] = fmt.Sprintf("node=%s level=%d round=%d", d.Node, d.Level, d.Round)
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// Missing returns a line per object that was not discovered at the expected
// level (empty ⇒ the run was complete). want gives the expected perceived
// level per object — usually the provisioned level, except L3 objects seen
// by a non-fellow, which are expected at L2.
func (o *Outcome) Missing(want []backend.Level) []string {
	best := make(map[transport.Addr]core.Level)
	for _, d := range o.Discoveries {
		if d.Level > best[d.Node] {
			best[d.Node] = d.Level
		}
	}
	var out []string
	for i, w := range want {
		node := o.Deployment.ObjNode[i]
		addr := netsim.AddrOf(node)
		if best[addr] != w {
			out = append(out, fmt.Sprintf("object %d (node %d): want L%d, got L%d", i, node, w, best[addr]))
		}
	}
	return out
}

// Duplicates returns a line per (node, level, round) discovery recorded more
// than once — retransmission and link-layer duplication must stay invisible
// in the result set.
func (o *Outcome) Duplicates() []string {
	seen := make(map[string]int)
	for _, d := range o.Discoveries {
		seen[fmt.Sprintf("node=%s level=%d round=%d", d.Node, d.Level, d.Round)]++
	}
	var out []string
	for k, n := range seen {
		if n > 1 {
			out = append(out, fmt.Sprintf("%s recorded %d times", k, n))
		}
	}
	sort.Strings(out)
	return out
}
